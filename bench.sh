#!/usr/bin/env bash
# bench.sh — measure the simulation-substrate benchmarks and emit
# BENCH_sim.json.
#
# Usage:
#   ./bench.sh                 # measure the current tree only
#   BASELINE_REF=<git-ref> ./bench.sh
#                              # also measure <git-ref> from a temporary
#                              # worktree, interleaved run-by-run with the
#                              # current tree, and report speedups
#
# Interleaving matters: on a shared machine the run-to-run variance of the
# GC-heavy micro-benchmarks is large (±30% has been observed), so comparing
# a baseline measured at one time against a new tree measured at another
# mostly measures the machine. Each round runs baseline then current
# back-to-back and the minimum over rounds is reported for both sides.
# Allocation counts (allocs/op) are exact and machine-independent; prefer
# them when judging the result.
set -euo pipefail
cd "$(dirname "$0")"

COUNT="${COUNT:-3}"
BASELINE_REF="${BASELINE_REF:-}"
OUT="${OUT:-BENCH_sim.json}"

MICRO='BenchmarkTimerChurn|BenchmarkProcContextSwitch|BenchmarkQueueHandoff|BenchmarkManyProcs|BenchmarkSimKernel'
FIGS='BenchmarkFig8aJobFrequency|BenchmarkFig9Utilization'

run_micro() { # $1 = dir
  (cd "$1" && go test ./internal/sim/ -run xxx -bench "$MICRO" -benchtime 1s -benchmem 2>/dev/null | grep '^Benchmark' || true)
}
run_figs() { # $1 = dir
  (cd "$1" && go test . -run xxx -bench "$FIGS" -benchtime 1x 2>/dev/null | grep '^Benchmark' || true)
}

BASEDIR=""
cleanup() {
  if [ -n "$BASEDIR" ] && [ -d "$BASEDIR" ]; then
    git worktree remove --force "$BASEDIR" >/dev/null 2>&1 || rm -rf "$BASEDIR"
  fi
}
trap cleanup EXIT

if [ -n "$BASELINE_REF" ]; then
  BASEDIR="$(mktemp -d /tmp/bench-baseline.XXXXXX)"
  rmdir "$BASEDIR"
  git worktree add --detach "$BASEDIR" "$BASELINE_REF" >/dev/null
fi

NEW_RAW="$(mktemp)"
BASE_RAW="$(mktemp)"
trap 'rm -f "$NEW_RAW" "$BASE_RAW"; cleanup' EXIT

for ((i = 1; i <= COUNT; i++)); do
  echo "round $i/$COUNT..." >&2
  if [ -n "$BASEDIR" ]; then
    run_micro "$BASEDIR" >>"$BASE_RAW"
    run_figs "$BASEDIR" >>"$BASE_RAW"
  fi
  run_micro . >>"$NEW_RAW"
  run_figs . >>"$NEW_RAW"
done

# min_ns <raw-file> <bench-name>: minimum ns/op over rounds, or empty.
min_ns() {
  awk -v name="$2" '$1 ~ "^"name"(-[0-9]+)?$" {
    for (i = 1; i <= NF; i++) if ($i == "ns/op") v = $(i-1)
    if (v != "" && (best == "" || v + 0 < best + 0)) best = v
  } END { if (best != "") printf "%s", best }' "$1"
}
allocs_of() {
  awk -v name="$2" '$1 ~ "^"name"(-[0-9]+)?$" {
    for (i = 1; i <= NF; i++) if ($i == "allocs/op") { printf "%s", $(i-1); exit }
  }' "$1"
}

BENCHES='BenchmarkTimerChurn BenchmarkProcContextSwitch BenchmarkQueueHandoff BenchmarkManyProcs BenchmarkSimKernelSameInstant BenchmarkSimKernelTimerStop BenchmarkSimKernelDeepHeap BenchmarkFig8aJobFrequency BenchmarkFig9Utilization'

{
  echo '{'
  echo '  "generated_by": "bench.sh",'
  echo "  \"go\": \"$(go version | awk '{print $3}')\","
  echo "  \"cpus\": $(nproc),"
  echo "  \"rounds\": $COUNT,"
  if [ -n "$BASELINE_REF" ]; then
    echo "  \"baseline_ref\": \"$(git rev-parse "$BASELINE_REF")\","
  fi
  echo '  "note": "min ns/op over interleaved rounds; wall-clock ratios are noisy on shared machines, allocs/op are exact",'
  echo '  "benchmarks": {'
  first=1
  for b in $BENCHES; do
    new="$(min_ns "$NEW_RAW" "$b")"
    [ -z "$new" ] && continue
    [ $first -eq 0 ] && echo ','
    first=0
    printf '    "%s": {' "$b"
    printf '"ns_op": %s' "$new"
    na="$(allocs_of "$NEW_RAW" "$b")"
    [ -n "$na" ] && printf ', "allocs_op": %s' "$na"
    if [ -n "$BASEDIR" ]; then
      base="$(min_ns "$BASE_RAW" "$b")"
      if [ -n "$base" ]; then
        printf ', "baseline_ns_op": %s' "$base"
        ba="$(allocs_of "$BASE_RAW" "$b")"
        [ -n "$ba" ] && printf ', "baseline_allocs_op": %s' "$ba"
        printf ', "speedup": %s' "$(awk -v a="$base" -v b="$new" 'BEGIN { printf "%.2f", a / b }')"
      fi
    fi
    printf '}'
  done
  echo ''
  echo '  }'
  echo '}'
} >"$OUT"
echo "wrote $OUT" >&2

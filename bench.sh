#!/usr/bin/env bash
# bench.sh — measure the simulation-substrate benchmarks plus the
# observability-spine overhead and append one dated record to BENCH.json.
#
# Usage:
#   ./bench.sh                 # measure the current tree only
#   BASELINE_REF=<git-ref> ./bench.sh
#                              # also measure <git-ref> from a temporary
#                              # worktree, interleaved run-by-run with the
#                              # current tree, and report speedups
#
# Interleaving matters: on a shared machine the run-to-run variance of the
# GC-heavy micro-benchmarks is large (±30% has been observed), so comparing
# a baseline measured at one time against a new tree measured at another
# mostly measures the machine. Each round runs baseline then current
# back-to-back and the minimum over rounds is reported for both sides.
# Allocation counts (allocs/op) are exact and machine-independent; prefer
# them when judging the result.
#
# The obs_overhead section runs BenchmarkFig9Obs/on and /off (the identical
# Figure 9 KubeShare workload with telemetry recording enabled vs disabled),
# each arm in its own `go test` process so one arm's heap/GC state cannot
# color the other. Budget: on/off - 1 <= 5%.
#
# BENCH.json accumulates every run as a dated record (oldest first);
# tools/benchmerge does the JSON appending.
set -euo pipefail
cd "$(dirname "$0")"

COUNT="${COUNT:-3}"
OBS_COUNT="${OBS_COUNT:-5}"
BASELINE_REF="${BASELINE_REF:-}"
OUT="${OUT:-BENCH.json}"

# Every benchmark section records the cpus/gomaxprocs it ran under: wall-clock
# numbers are meaningless without them (a 4-lane sweep on 1 CPU timeslices
# instead of parallelizing), and tools/benchmerge rejects records that omit
# them. Most sections run at the Go default; the fig16 lane sweep pins
# GOMAXPROCS=4 so the lane-speedup column is comparable across machines.
CPUS="$(nproc)"
GMP="${GOMAXPROCS:-$CPUS}"
FIG16_GMP=4

MICRO='BenchmarkTimerChurn|BenchmarkProcContextSwitch|BenchmarkQueueHandoff|BenchmarkManyProcs|BenchmarkSimKernel'
FIGS='BenchmarkFig8aJobFrequency|BenchmarkFig9Utilization'

run_micro() { # $1 = dir
  (cd "$1" && go test ./internal/sim/ -run xxx -bench "$MICRO" -benchtime 1s -benchmem 2>/dev/null | grep '^Benchmark' || true)
}
run_figs() { # $1 = dir
  (cd "$1" && go test . -run xxx -bench "$FIGS" -benchtime 1x 2>/dev/null | grep '^Benchmark' || true)
}

BASEDIR=""
cleanup() {
  if [ -n "$BASEDIR" ] && [ -d "$BASEDIR" ]; then
    git worktree remove --force "$BASEDIR" >/dev/null 2>&1 || rm -rf "$BASEDIR"
  fi
}
trap cleanup EXIT

if [ -n "$BASELINE_REF" ]; then
  BASEDIR="$(mktemp -d /tmp/bench-baseline.XXXXXX)"
  rmdir "$BASEDIR"
  git worktree add --detach "$BASEDIR" "$BASELINE_REF" >/dev/null
fi

NEW_RAW="$(mktemp)"
BASE_RAW="$(mktemp)"
OBS_RAW="$(mktemp)"
FIG15_RAW="$(mktemp)"
FIG16_RAW="$(mktemp)"
FIG17_RAW="$(mktemp)"
FIG18_RAW="$(mktemp)"
FIG19_RAW="$(mktemp)"
RECORD="$(mktemp)"
trap 'rm -f "$NEW_RAW" "$BASE_RAW" "$OBS_RAW" "$FIG15_RAW" "$FIG16_RAW" "$FIG17_RAW" "$FIG18_RAW" "$FIG19_RAW" "$RECORD"; cleanup' EXIT

for ((i = 1; i <= COUNT; i++)); do
  echo "round $i/$COUNT..." >&2
  if [ -n "$BASEDIR" ]; then
    run_micro "$BASEDIR" >>"$BASE_RAW"
    run_figs "$BASEDIR" >>"$BASE_RAW"
  fi
  run_micro . >>"$NEW_RAW"
  run_figs . >>"$NEW_RAW"
done

for ((i = 1; i <= OBS_COUNT; i++)); do
  echo "obs round $i/$OBS_COUNT..." >&2
  for arm in on off; do
    go test . -run xxx -bench "BenchmarkFig9Obs/$arm\$" -benchtime 3x 2>/dev/null |
      grep '^BenchmarkFig9Obs' >>"$OBS_RAW"
  done
done

# Scheduler-throughput point (Figure 15): one run of the full-scale sweep;
# the reported metrics are virtual-clock ratios, so rounds add nothing.
echo "fig15 (scheduler throughput, 10k sharePods)..." >&2
go test . -run xxx -bench 'BenchmarkFig15SchedulerThroughput/full$' -benchtime 1x 2>/dev/null |
  grep '^BenchmarkFig15' >"$FIG15_RAW" || true

# Hot-path scale sweep (Figure 16): 1k → 10k → 100k sharePods at 1 and 4
# event lanes under GOMAXPROCS=4. The run itself verifies placements are
# byte-identical across lane counts; the recorded numbers are wall-clock.
echo "fig16 (scale sweep to 100k sharePods, GOMAXPROCS=$FIG16_GMP)..." >&2
GOMAXPROCS=$FIG16_GMP go test . -run xxx -bench 'BenchmarkFig16ScaleSweep/full$' -benchtime 1x 2>/dev/null |
  grep '^BenchmarkFig16' >"$FIG16_RAW" || true

# Control-plane recovery sweep (Figure 17): restart intensity × checkpoint
# cadence under apiserver crash/restart chaos. The metrics are virtual-side
# (replayed records, modeled unavailability), so one run suffices; the run
# itself enforces the quiescence invariants per cell.
echo "fig17 (control-plane recovery sweep)..." >&2
go test . -run xxx -bench 'BenchmarkFig17RecoverySweep/full$' -benchtime 1x 2>/dev/null |
  grep '^BenchmarkFig17' >"$FIG17_RAW" || true

# Sharing-strategy comparison (Figure 18): token vs MPS-overlap vs replica
# time-slicing on small/large-kernel mixes, plus the memory-quantity mode's
# typed-rejection and byte-placement witness. The metrics are virtual-clock
# throughputs from identical seeded workloads, so one run suffices.
echo "fig18 (sharing-strategy comparison)..." >&2
go test . -run xxx -bench 'BenchmarkFig18StrategyComparison/full$' -benchtime 1x 2>/dev/null |
  grep '^BenchmarkFig18' >"$FIG18_RAW" || true

# Latency attribution (Figure 19): the fig18 grid replayed with
# critical-path attribution on; per-arm phase budgets (token-wait, e2e) in
# virtual milliseconds. Virtual-clock, so one run suffices; the run itself
# enforces the exact phase-sum invariant per chain.
echo "fig19 (latency attribution)..." >&2
go test . -run xxx -bench 'BenchmarkFig19Attribution/full$' -benchtime 1x 2>/dev/null |
  grep '^BenchmarkFig19' >"$FIG19_RAW" || true

# min_ns <raw-file> <bench-name>: minimum ns/op over rounds, or empty.
min_ns() {
  awk -v name="$2" '$1 ~ "^"name"(-[0-9]+)?$" {
    for (i = 1; i <= NF; i++) if ($i == "ns/op") v = $(i-1)
    if (v != "" && (best == "" || v + 0 < best + 0)) best = v
  } END { if (best != "") printf "%s", best }' "$1"
}
# metric_of <raw-file> <unit>: value of a b.ReportMetric column, or empty.
metric_of() {
  awk -v unit="$2" '{
    for (i = 2; i <= NF; i++) if ($i == unit) { printf "%s", $(i-1); exit }
  }' "$1"
}
allocs_of() {
  awk -v name="$2" '$1 ~ "^"name"(-[0-9]+)?$" {
    for (i = 1; i <= NF; i++) if ($i == "allocs/op") { printf "%s", $(i-1); exit }
  }' "$1"
}

BENCHES='BenchmarkTimerChurn BenchmarkProcContextSwitch BenchmarkQueueHandoff BenchmarkManyProcs BenchmarkSimKernelSameInstant BenchmarkSimKernelTimerStop BenchmarkSimKernelDeepHeap BenchmarkFig8aJobFrequency BenchmarkFig9Utilization'

ON="$(min_ns "$OBS_RAW" 'BenchmarkFig9Obs/on')"
OFF="$(min_ns "$OBS_RAW" 'BenchmarkFig9Obs/off')"
if [ -z "$ON" ] || [ -z "$OFF" ]; then
  echo "bench.sh: BenchmarkFig9Obs produced no output" >&2
  exit 1
fi
OVERHEAD="$(awk -v on="$ON" -v off="$OFF" 'BEGIN { printf "%.4f", on / off - 1 }')"
WITHIN="$(awk -v o="$OVERHEAD" 'BEGIN { print (o <= 0.05) ? "true" : "false" }')"

{
  echo '{'
  echo "  \"date\": \"$(date -u +%Y-%m-%dT%H:%M:%SZ)\","
  echo "  \"commit\": \"$(git rev-parse --short HEAD 2>/dev/null || echo unknown)\","
  echo "  \"go\": \"$(go version | awk '{print $3}')\","
  echo "  \"cpus\": $CPUS,"
  echo "  \"rounds\": $COUNT,"
  if [ -n "$BASELINE_REF" ]; then
    echo "  \"baseline_ref\": \"$(git rev-parse "$BASELINE_REF")\","
  fi
  echo '  "note": "min ns/op over interleaved rounds; wall-clock ratios are noisy on shared machines, allocs/op are exact",'
  echo '  "benchmarks": {'
  first=1
  for b in $BENCHES; do
    new="$(min_ns "$NEW_RAW" "$b")"
    [ -z "$new" ] && continue
    [ $first -eq 0 ] && echo ','
    first=0
    printf '    "%s": {' "$b"
    printf '"cpus": %s, "gomaxprocs": %s, ' "$CPUS" "$GMP"
    printf '"ns_op": %s' "$new"
    na="$(allocs_of "$NEW_RAW" "$b")"
    [ -n "$na" ] && printf ', "allocs_op": %s' "$na"
    if [ -n "$BASEDIR" ]; then
      base="$(min_ns "$BASE_RAW" "$b")"
      if [ -n "$base" ]; then
        printf ', "baseline_ns_op": %s' "$base"
        ba="$(allocs_of "$BASE_RAW" "$b")"
        [ -n "$ba" ] && printf ', "baseline_allocs_op": %s' "$ba"
        printf ', "speedup": %s' "$(awk -v a="$base" -v b="$new" 'BEGIN { printf "%.2f", a / b }')"
      fi
    fi
    printf '}'
  done
  echo ''
  echo '  },'
  if [ -s "$FIG15_RAW" ]; then
    SINGLE="$(metric_of "$FIG15_RAW" single-dps)"
    BATCHED="$(metric_of "$FIG15_RAW" batched-dps)"
    GANG="$(metric_of "$FIG15_RAW" gang-dps)"
    SPEEDUP="$(metric_of "$FIG15_RAW" batched-speedup)"
    echo '  "fig15_scheduler_throughput": {'
    echo '    "benchmark": "BenchmarkFig15SchedulerThroughput/full (10000 pending sharePods, batch 64, gang 4)",'
    echo "    \"cpus\": $CPUS,"
    echo "    \"gomaxprocs\": $GMP,"
    echo "    \"single_decisions_per_sec\": $SINGLE,"
    echo "    \"batched_decisions_per_sec\": $BATCHED,"
    echo "    \"gang_decisions_per_sec\": $GANG,"
    echo "    \"batched_speedup\": $SPEEDUP,"
    echo "    \"meets_3x\": $(awk -v s="$SPEEDUP" 'BEGIN { print (s + 0 >= 3) ? "true" : "false" }')"
    echo '  },'
  fi
  if [ -s "$FIG16_RAW" ]; then
    echo '  "fig16_scale_sweep": {'
    echo "    \"benchmark\": \"BenchmarkFig16ScaleSweep/full (churn workload, 1 vs 4 event lanes, GOMAXPROCS=$FIG16_GMP)\","
    echo "    \"cpus\": $CPUS,"
    echo "    \"gomaxprocs\": $FIG16_GMP,"
    BEST=""
    for n in 1000 10000 100000; do
      WALL="$(metric_of "$FIG16_RAW" "$n-wall-ms")"
      SPD="$(metric_of "$FIG16_RAW" "$n-lane-speedup")"
      [ -z "$WALL" ] && continue
      echo "    \"sharepods_$n\": {\"wall_ms_4lane\": $WALL, \"lane_speedup\": $SPD},"
      BEST="$(awk -v a="${BEST:-0}" -v b="$SPD" 'BEGIN { printf "%s", (b + 0 > a + 0) ? b : a }')"
    done
    echo "    \"best_lane_speedup\": ${BEST:-0},"
    echo "    \"meets_2_5x\": $(awk -v s="${BEST:-0}" 'BEGIN { print (s + 0 >= 2.5) ? "true" : "false" }'),"
    echo "    \"cpu_bound\": $(awk -v c="$CPUS" -v g="$FIG16_GMP" 'BEGIN { print (c + 0 < g + 0) ? "true" : "false" }')"
    echo '  },'
  fi
  if [ -s "$FIG17_RAW" ]; then
    echo '  "fig17_recovery_sweep": {'
    echo '    "benchmark": "BenchmarkFig17RecoverySweep/full (restart means 40/20/10s, checkpoint 5s vs disabled)",'
    echo "    \"cpus\": $CPUS,"
    echo "    \"gomaxprocs\": $GMP,"
    WORST=""
    for m in 40 20 10; do
      CR="$(metric_of "$FIG17_RAW" "mean${m}s-ckpt-replayed")"
      NR="$(metric_of "$FIG17_RAW" "mean${m}s-nockpt-replayed")"
      CO="$(metric_of "$FIG17_RAW" "mean${m}s-ckpt-outage-ms")"
      NO="$(metric_of "$FIG17_RAW" "mean${m}s-nockpt-outage-ms")"
      [ -z "$CR" ] && continue
      echo "    \"restart_mean_${m}s\": {\"ckpt_replayed\": $CR, \"nockpt_replayed\": $NR, \"ckpt_outage_ms\": $CO, \"nockpt_outage_ms\": $NO},"
      WORST="$(awk -v a="${WORST:-0}" -v b="$NO" 'BEGIN { printf "%s", (b + 0 > a + 0) ? b : a }')"
    done
    echo "    \"worst_nockpt_outage_ms\": ${WORST:-0}"
    echo '  },'
  fi
  if [ -s "$FIG18_RAW" ]; then
    RATIO="$(metric_of "$FIG18_RAW" mps-over-token-small)"
    echo '  "fig18_strategy_comparison": {'
    echo '    "benchmark": "BenchmarkFig18StrategyComparison/full (token vs mps vs replica, small/large-kernel mixes)",'
    echo "    \"cpus\": $CPUS,"
    echo "    \"gomaxprocs\": $GMP,"
    for mix in small large; do
      T="$(metric_of "$FIG18_RAW" "$mix-token-tput")"
      M="$(metric_of "$FIG18_RAW" "$mix-mps-tput")"
      R="$(metric_of "$FIG18_RAW" "$mix-replica-tput")"
      TS="$(metric_of "$FIG18_RAW" "$mix-token-stretch")"
      MS="$(metric_of "$FIG18_RAW" "$mix-mps-stretch")"
      [ -z "$T" ] && continue
      echo "    \"${mix}_kernel\": {\"token_tput\": $T, \"mps_tput\": $M, \"replica_tput\": $R, \"token_stretch\": $TS, \"mps_stretch\": $MS},"
    done
    echo "    \"mps_over_token_small\": ${RATIO:-0},"
    echo "    \"mps_beats_token_small\": $(awk -v r="${RATIO:-0}" 'BEGIN { print (r + 0 > 1) ? "true" : "false" }'),"
    echo "    \"membytes_rejected_typed\": $(metric_of "$FIG18_RAW" membytes-rejected-typed),"
    echo "    \"membytes_completed\": $(metric_of "$FIG18_RAW" membytes-completed),"
    echo "    \"membytes_failed\": $(metric_of "$FIG18_RAW" membytes-failed)"
    echo '  },'
  fi
  if [ -s "$FIG19_RAW" ]; then
    echo '  "fig19_attribution": {'
    echo '    "benchmark": "BenchmarkFig19Attribution/full (per-strategy phase budgets, completed chains only)",'
    echo "    \"cpus\": $CPUS,"
    echo "    \"gomaxprocs\": $GMP,"
    for mix in small large; do
      TW="$(metric_of "$FIG19_RAW" "$mix-token-tokenwait-ms")"
      MW="$(metric_of "$FIG19_RAW" "$mix-mps-tokenwait-ms")"
      RW="$(metric_of "$FIG19_RAW" "$mix-replica-tokenwait-ms")"
      TE="$(metric_of "$FIG19_RAW" "$mix-token-e2e-ms")"
      ME="$(metric_of "$FIG19_RAW" "$mix-mps-e2e-ms")"
      RE="$(metric_of "$FIG19_RAW" "$mix-replica-e2e-ms")"
      [ -z "$TW" ] && continue
      echo "    \"${mix}_kernel\": {\"token_wait_ms\": $TW, \"mps_wait_ms\": $MW, \"replica_wait_ms\": $RW, \"token_e2e_ms\": $TE, \"mps_e2e_ms\": $ME, \"replica_e2e_ms\": $RE},"
    done
    echo "    \"open_chains\": $(metric_of "$FIG19_RAW" open-chains)"
    echo '  },'
  fi
  echo '  "obs_overhead": {'
  echo '    "benchmark": "BenchmarkFig9Obs (Figure 9 KubeShare arm, quick scale, labeled metrics)",'
  echo "    \"cpus\": $CPUS,"
  echo "    \"gomaxprocs\": $GMP,"
  echo "    \"rounds\": $OBS_COUNT,"
  echo "    \"on_ns\": $ON,"
  echo "    \"off_ns\": $OFF,"
  echo "    \"overhead\": $OVERHEAD,"
  echo "    \"within_budget\": $WITHIN"
  echo '  }'
  echo '}'
} >"$RECORD"

go run ./tools/benchmerge -out "$OUT" <"$RECORD"
echo "appended record to $OUT (obs overhead $(awk -v o="$OVERHEAD" 'BEGIN { printf "%.1f%%", o * 100 }'))" >&2

#!/usr/bin/env bash
# bench_obs.sh — measure the observability spine's instrumentation overhead
# and emit BENCH_obs.json.
#
# Runs BenchmarkFig9Obs/on and /off (the identical Figure 9 KubeShare
# workload with telemetry recording enabled vs disabled) interleaved over
# several rounds and reports the minimum wall-clock of each arm plus the
# overhead ratio. The budget is <= 5% overhead; the JSON records whether
# the measured run met it.
#
# Usage:
#   ./bench_obs.sh            # 5 interleaved rounds (COUNT=N to override)
set -euo pipefail
cd "$(dirname "$0")"

COUNT="${COUNT:-5}"
OUT="${OUT:-BENCH_obs.json}"

RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

# Each arm runs in its own `go test` process so the heap/GC state one arm
# leaves behind cannot color the other's wall-clock.
for ((i = 1; i <= COUNT; i++)); do
  echo "round $i/$COUNT..." >&2
  for arm in on off; do
    go test . -run xxx -bench "BenchmarkFig9Obs/$arm\$" -benchtime 3x 2>/dev/null |
      grep '^BenchmarkFig9Obs' >>"$RAW"
  done
done

# min_ns <arm>: minimum ns/op over rounds for BenchmarkFig9Obs/<arm>.
min_ns() {
  awk -v name="BenchmarkFig9Obs/$1" '$1 ~ "^"name"(-[0-9]+)?$" {
    for (i = 1; i <= NF; i++) if ($i == "ns/op") v = $(i-1)
    if (v != "" && (best == "" || v + 0 < best + 0)) best = v
  } END { if (best != "") printf "%s", best }' "$RAW"
}

ON="$(min_ns on)"
OFF="$(min_ns off)"
if [ -z "$ON" ] || [ -z "$OFF" ]; then
  echo "bench_obs.sh: benchmark produced no output" >&2
  exit 1
fi
OVERHEAD="$(awk -v on="$ON" -v off="$OFF" 'BEGIN { printf "%.4f", on / off - 1 }')"
WITHIN="$(awk -v o="$OVERHEAD" 'BEGIN { print (o <= 0.05) ? "true" : "false" }')"

{
  echo '{'
  echo '  "generated_by": "bench_obs.sh",'
  echo "  \"go\": \"$(go version | awk '{print $3}')\","
  echo "  \"cpus\": $(nproc),"
  echo "  \"rounds\": $COUNT,"
  echo '  "benchmark": "BenchmarkFig9Obs (Figure 9 KubeShare arm, quick scale)",'
  echo '  "note": "min ns/op over interleaved rounds; obs_overhead = on/off - 1, budget 0.05",'
  echo "  \"obs_on_ns\": $ON,"
  echo "  \"obs_off_ns\": $OFF,"
  echo "  \"obs_overhead\": $OVERHEAD,"
  echo "  \"within_budget\": $WITHIN"
  echo '}'
} >"$OUT"
echo "wrote $OUT (overhead $(awk -v o="$OVERHEAD" 'BEGIN { printf "%.1f%%", o * 100 }'))" >&2

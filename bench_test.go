// Benchmarks regenerating every table and figure of the paper's evaluation.
// Each benchmark runs the corresponding experiment from
// internal/experiments (at a scale reduced from the paper's 8×4-GPU
// testbed to keep iterations fast — cmd/kubeshare-sim runs full scale) and
// reports the figure's headline quantity through b.ReportMetric, so
// `go test -bench=.` reproduces the paper's qualitative results table by
// table. BenchmarkFig11SchedulingTime measures real CPU time of the actual
// Algorithm 1 implementation, which is what Figure 11 is about.
package kubeshare

import (
	"strconv"
	"testing"
	"time"

	"kubeshare/internal/core"
	"kubeshare/internal/cuda"
	"kubeshare/internal/devlib"
	"kubeshare/internal/experiments"
	"kubeshare/internal/gpusim"
	"kubeshare/internal/sim"
)

// cellF parses a table cell as float64.
func cellF(b *testing.B, s string) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		b.Fatalf("cell %q: %v", s, err)
	}
	return v
}

// BenchmarkTable1Fragmentation regenerates the Table 1 / Figure 3
// comparison: over-commitment and active-GPU counts under the
// scheduler-extender baseline vs KubeShare.
func BenchmarkTable1Fragmentation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Table1(experiments.Table1Config{})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(cellF(b, t.Rows[0][3]), "extender-active-gpus")
			b.ReportMetric(cellF(b, t.Rows[0][4]), "kubeshare-active-gpus")
			b.ReportMetric(cellF(b, t.Rows[4][3]), "extender-overcommitted")
		}
	}
}

// BenchmarkFig5InferenceUsage regenerates Figure 5: inference GPU usage
// under increasing client request rates.
func BenchmarkFig5InferenceUsage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig5(experiments.Fig5Config{
			Rates: []float64{4, 12, 24}, Duration: 30 * time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(cellF(b, t.Rows[1][1]), "util-at-12rps")
		}
	}
}

// BenchmarkFig6Isolation regenerates Figure 6: the three-job isolation
// timeline on one shared GPU.
func BenchmarkFig6Isolation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(experiments.Fig6Config{Stagger: 100 * time.Second})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(cellF(b, res.Table.Rows[0][2]), "jobA-solo-usage")
			b.ReportMetric(cellF(b, res.Table.Rows[1][2]), "jobA-shared-usage")
		}
	}
}

// BenchmarkFig7QuotaOverhead regenerates Figure 7: normalized training
// throughput across token quotas.
func BenchmarkFig7QuotaOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig7(experiments.Fig7Config{
			Quotas: []time.Duration{30 * time.Millisecond, 100 * time.Millisecond},
			Steps:  2000,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(cellF(b, t.Rows[0][2]), "normalized-tput-30ms")
			b.ReportMetric(cellF(b, t.Rows[1][2]), "normalized-tput-100ms")
		}
	}
}

// fig8Scale is the reduced-scale configuration shared by the Fig 8 benches.
var fig8Scale = experiments.Fig8Config{
	Jobs: 60, Nodes: 2, GPUsPerNode: 4, JobDuration: 30 * time.Second,
}

// BenchmarkFig8aJobFrequency regenerates Figure 8a: throughput vs job
// frequency for Kubernetes and KubeShare.
func BenchmarkFig8aJobFrequency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig8a(fig8Scale, []float64{1, 6})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(cellF(b, t.Rows[1][2]), "k8s-jobs-per-min")
			b.ReportMetric(cellF(b, t.Rows[1][3]), "kubeshare-jobs-per-min")
			b.ReportMetric(cellF(b, t.Rows[1][4]), "saturated-speedup")
		}
	}
}

// BenchmarkFig8bMeanDemand regenerates Figure 8b: throughput vs mean GPU
// demand.
func BenchmarkFig8bMeanDemand(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig8b(fig8Scale, []float64{0.2, 0.6})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(cellF(b, t.Rows[0][3]), "speedup-at-20pct")
			b.ReportMetric(cellF(b, t.Rows[1][3]), "speedup-at-60pct")
		}
	}
}

// BenchmarkFig8cDemandVariance regenerates Figure 8c: throughput vs demand
// variance (flat).
func BenchmarkFig8cDemandVariance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig8c(fig8Scale, []float64{0.5, 4})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(cellF(b, t.Rows[0][2]), "kubeshare-at-var0.5")
			b.ReportMetric(cellF(b, t.Rows[1][2]), "kubeshare-at-var4")
		}
	}
}

// BenchmarkFig9Utilization regenerates Figure 9: utilization and active
// GPUs over time for both systems.
func BenchmarkFig9Utilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9(experiments.Fig9Config{
			Fig8Config: fig8Scale,
			FreqFactor: 2.5,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Makespan[experiments.Kubernetes].Seconds(), "k8s-makespan-s")
			b.ReportMetric(res.Makespan[experiments.KubeShare].Seconds(), "kubeshare-makespan-s")
		}
	}
}

// BenchmarkFig9Obs runs the KubeShare arm of the Figure 9 workload with the
// observability spine on and off — the instrumentation-overhead check. Both
// sub-benchmarks run identical simulations; the only difference is whether
// every layer's spans, events and metrics are being recorded. The recorded
// overhead budget is ≤5% wall-clock (see the obs_overhead record in BENCH.json).
func BenchmarkFig9Obs(b *testing.B) {
	cfg := experiments.Fig9Config{Fig8Config: fig8Scale, FreqFactor: 2.5}
	for _, arm := range []struct {
		name    string
		disable bool
	}{{"on", false}, {"off", true}} {
		b.Run(arm.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := experiments.Fig9Sharing(cfg, arm.disable)
				if err != nil {
					b.Fatal(err)
				}
				if res.Completed == 0 {
					b.Fatal("workload completed no jobs")
				}
			}
		})
	}
}

// BenchmarkFig10PodCreation regenerates Figure 10: pod creation latency for
// native pods, sharePods without vGPU creation, and with vGPU creation.
func BenchmarkFig10PodCreation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig10(experiments.Fig10Config{
			Concurrency: []int{1, 8}, Nodes: 2, GPUsPerNode: 4,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(cellF(b, t.Rows[0][4]), "no-vgpu-overhead-x")
			b.ReportMetric(cellF(b, t.Rows[0][5]), "with-vgpu-overhead-x")
		}
	}
}

// BenchmarkFig11SchedulingTime measures one full KubeShare-Sched decision
// against real state with N existing SharePods — the real-CPU-time figure.
// The paper's claim: linear in N, ≪400ms at 100. Two variants: the seed's
// full rebuild (list everything, re-place every tenant) and the incremental
// snapshot the scheduler now maintains from watch deltas, which only pays
// for pool materialization.
func BenchmarkFig11SchedulingTime(b *testing.B) {
	counts := []int{10, 25, 50, 100, 200, 400, 1000, 10000}
	b.Run("full-rebuild", func(b *testing.B) {
		for _, n := range counts {
			b.Run("sharepods="+strconv.Itoa(n), func(b *testing.B) {
				srv := experiments.PopulateSchedulingState(n)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					experiments.ScheduleOnce(srv)
				}
			})
		}
	})
	b.Run("incremental", func(b *testing.B) {
		for _, n := range counts {
			b.Run("sharepods="+strconv.Itoa(n), func(b *testing.B) {
				srv := experiments.PopulateSchedulingState(n)
				snap := experiments.PopulateSnapshot(srv)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					experiments.ScheduleOnceIncremental(snap)
				}
			})
		}
	})
}

// BenchmarkFig12Interference regenerates Figure 12: per-combination
// slowdowns on a shared GPU.
func BenchmarkFig12Interference(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig12(experiments.Fig12Config{Steps: 2000})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			report := map[string]float64{}
			for _, row := range t.Rows {
				v := cellF(b, row[2])
				if v > report[row[0]] {
					report[row[0]] = v
				}
			}
			b.ReportMetric(report["A+A"], "slowdown-A+A")
			b.ReportMetric(report["B+B"], "slowdown-B+B")
			b.ReportMetric(report["A+B"], "slowdown-A+B")
		}
	}
}

// BenchmarkFig13AntiAffinity regenerates Figure 13: throughput of the three
// settings across the Job-A ratio.
func BenchmarkFig13AntiAffinity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig13(experiments.Fig13Config{
			Jobs: 24, Steps: 800, Nodes: 1, GPUsPerNode: 4, Ratios: []float64{0, 1},
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(cellF(b, t.Rows[0][2]), "ratio0-kubeshare")
			b.ReportMetric(cellF(b, t.Rows[0][1]), "ratio0-kubernetes")
			b.ReportMetric(cellF(b, t.Rows[1][3]), "ratio1-antiaffinity")
		}
	}
}

// --- Ablation benches (design choices called out in DESIGN.md §4) ---

// BenchmarkAblationPlacement compares Algorithm 1's paper placement policy
// (best fit + worst fit) against alternatives on a synthetic request mix,
// reporting how many devices each policy ends up using.
func BenchmarkAblationPlacement(b *testing.B) {
	policies := map[string]core.PlacementPolicy{
		"paper-best+worst": core.PaperPolicy,
		"best+best":        core.BestBest,
		"worst+worst":      core.WorstWorst,
		"first-fit":        core.FirstFit,
	}
	for name, policy := range policies {
		b.Run(name, func(b *testing.B) {
			devices := 0.0
			for i := 0; i < b.N; i++ {
				pool := &core.Pool{
					FreePhysical: map[string]int{"n0": 16, "n1": 16},
					NewID:        newIDGen(),
				}
				// A mix of plain, affinity and anti-affinity requests.
				for j := 0; j < 64; j++ {
					r := core.Request{Util: []float64{0.5, 0.3, 0.2, 0.6}[j%4], Mem: 0.2}
					switch j % 5 {
					case 3:
						r.Aff = []string{"g1", "g2"}[j%2]
					case 4:
						r.Anti = "spread"
					}
					core.ScheduleWithPolicy(r, pool, policy)
				}
				devices = float64(len(pool.Devices))
			}
			b.ReportMetric(devices, "devices-used")
		})
	}
}

// BenchmarkAblationQuota sweeps the token quota and reports the effective
// training throughput ratio (the Figure 7 knob as an ablation).
func BenchmarkAblationQuota(b *testing.B) {
	for _, quota := range []time.Duration{10 * time.Millisecond, 50 * time.Millisecond, 200 * time.Millisecond} {
		b.Run(quota.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				t, err := experiments.Fig7(experiments.Fig7Config{
					Quotas: []time.Duration{quota}, Steps: 1000,
				})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(cellF(b, t.Rows[0][2]), "normalized-tput")
				}
			}
		})
	}
}

// BenchmarkAblationPoolPolicy compares on-demand vs reservation vGPU pools
// on repeat-submission latency (the §4.4 trade-off).
func BenchmarkAblationPoolPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig10(experiments.Fig10Config{
			Concurrency: []int{4}, Nodes: 1, GPUsPerNode: 4,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(cellF(b, t.Rows[0][2]), "reservation-create-s")
			b.ReportMetric(cellF(b, t.Rows[0][3]), "ondemand-create-s")
		}
	}
}

// BenchmarkAblationMemOvercommit contrasts fitting working sets with
// over-committed swapped ones (the §6 trade-off): same jobs, the swap
// traffic stretches the makespan.
func BenchmarkAblationMemOvercommit(b *testing.B) {
	run := func(b *testing.B, mem float64, factor float64) float64 {
		opts := []Option{WithGPUsPerNode(1)}
		if factor > 1 {
			opts = append(opts, WithMemOvercommit(factor))
		}
		s, err := New(opts...)
		if err != nil {
			b.Fatal(err)
		}
		s.RegisterImage("burn", func(ctx *ContainerCtx) error {
			if _, err := ctx.CUDA.MemAlloc(ctx.Proc, int64(mem*0.95*float64(16<<30))); err != nil {
				return err
			}
			for i := 0; i < 100; i++ {
				if err := ctx.CUDA.LaunchKernel(ctx.Proc, 10*time.Millisecond); err != nil {
					return err
				}
			}
			return nil
		})
		s.Go("submit", func(p *Proc) {
			for _, n := range []string{"a", "b"} {
				s.CreateSharePod(&SharePod{
					ObjectMeta: ObjectMeta{Name: n},
					Spec: SharePodSpec{
						GPURequest: 0.5, GPULimit: 1, GPUMem: mem,
						Pod: PodSpec{Containers: []Container{{Name: "c", Image: "burn"}}},
					},
				})
			}
		})
		s.Run()
		return s.Now().Seconds()
	}
	b.Run("fitting-0.4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.ReportMetric(run(b, 0.4, 1), "makespan-s")
		}
	})
	b.Run("overcommit-0.7x1.5", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.ReportMetric(run(b, 0.7, 1.5), "makespan-s")
		}
	})
}

// BenchmarkAblationResidualPolicy contrasts the paper's lowest-usage-first
// residual distribution with plain FIFO: one big-kernel tenant against two
// small-kernel ones, reporting the big tenant's share (≈0.33 fair vs ≈0.67
// under FIFO turn rotation).
func BenchmarkAblationResidualPolicy(b *testing.B) {
	run := func(policy devlib.ResidualPolicy) float64 {
		env := sim.NewEnv()
		dev := gpusim.NewDevice(env, gpusim.Config{NodeName: "n"})
		mgr := devlib.NewBackend(env, devlib.Config{Residual: policy}).Manager(dev.UUID())
		launch := func(id string, kernel time.Duration) {
			f, err := devlib.NewFrontend(cuda.Open(dev, id), mgr, id,
				devlib.Share{Request: 0.05, Limit: 1, Memory: 0.2})
			if err != nil {
				b.Fatal(err)
			}
			env.Go(id, func(p *sim.Proc) {
				for !p.Killed() {
					if err := f.LaunchKernel(p, kernel); err != nil {
						return
					}
				}
			})
		}
		launch("big", 20*time.Millisecond)
		launch("small1", 5*time.Millisecond)
		launch("small2", 5*time.Millisecond)
		env.RunUntil(20 * time.Second)
		return mgr.UsageRate("big")
	}
	for i := 0; i < b.N; i++ {
		if i == 0 {
			b.ReportMetric(run(devlib.LowestUsageFirst), "big-share-lowest-usage")
			b.ReportMetric(run(devlib.FIFOResidual), "big-share-fifo")
		} else {
			run(devlib.LowestUsageFirst)
		}
	}
}

func newIDGen() func() string {
	n := 0
	return func() string {
		n++
		return "d" + strconv.Itoa(n)
	}
}

// BenchmarkFig15SchedulerThroughput regenerates Figure 15: sustained
// scheduling decisions per second of the plugin-phase framework at depth,
// comparing the single-decision cycle against batched and batched+gang
// driving. The headline metric is the batched/single virtual-throughput
// ratio (the cycle-latency amortization; acceptance bar 3x at the 10k
// point, reached by ~60x in practice). The quick variant is the check.sh
// smoke; the full variant is the BENCH.json point.
func BenchmarkFig15SchedulerThroughput(b *testing.B) {
	for _, scale := range []struct {
		name  string
		count int
	}{{"quick", 1000}, {"full", 10000}} {
		b.Run(scale.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				t, err := experiments.Fig15(experiments.Fig15Config{Counts: []int{scale.count}})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					single := cellF(b, t.Rows[0][2])
					batched := cellF(b, t.Rows[1][2])
					gang := cellF(b, t.Rows[2][2])
					b.ReportMetric(single, "single-dps")
					b.ReportMetric(batched, "batched-dps")
					b.ReportMetric(gang, "gang-dps")
					b.ReportMetric(batched/single, "batched-speedup")
				}
			}
		})
	}
}

// BenchmarkFig16ScaleSweep regenerates Figure 16: wall-clock time of the
// partitioned hot path (sharded store + event lanes + parallel phase
// windows) as the sharePod count climbs 1k → 10k → 100k, at 1 and 4 lanes.
// Per order of magnitude it reports the 4-lane wall time and the
// lane-speedup ratio (lane-1 wall / lane-4 wall). The virtual-side metrics
// are verified byte-identical across lane counts inside Fig16 itself, so a
// passing run is also the determinism witness. Speedup above 1x requires
// GOMAXPROCS > 1 *and* spare physical cores; bench.sh records both next to
// the numbers. The quick variant is the check.sh smoke.
func BenchmarkFig16ScaleSweep(b *testing.B) {
	for _, scale := range []struct {
		name string
		cfg  experiments.Fig16Config
	}{
		{"quick", experiments.Fig16Config{Sizes: []int{500}, Lanes: []int{1, 4}, Nodes: 16}},
		{"full", experiments.Fig16Config{Lanes: []int{1, 4}}},
	} {
		b.Run(scale.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				t, err := experiments.Fig16(scale.cfg)
				if err != nil {
					b.Fatal(err)
				}
				if i != 0 {
					continue
				}
				// Rows come in (lane-1, lane-4) pairs per size; report the
				// 4-lane wall and speedup for each order of magnitude.
				for r := 0; r+1 < len(t.Rows); r += 2 {
					size := t.Rows[r][0]
					b.ReportMetric(cellF(b, t.Rows[r+1][2]), size+"-wall-ms")
					b.ReportMetric(cellF(b, t.Rows[r+1][6]), size+"-lane-speedup")
				}
			}
		})
	}
}

// BenchmarkFig17RecoverySweep regenerates Figure 17: the durable control
// plane's recovery cost under apiserver crash/restart chaos, sweeping
// restart intensity against checkpoint cadence. Per restart-mean it reports
// the replayed-record count and modeled unavailability of the tightest
// checkpoint cadence versus checkpoints disabled (every restart replays the
// whole WAL) — the trade the checkpoint interval buys. Quiescence invariants
// and jobs-all-succeed are enforced inside Fig17 per cell, so a passing run
// is also the warm-recovery witness. The quick variant is the check.sh smoke.
func BenchmarkFig17RecoverySweep(b *testing.B) {
	for _, scale := range []struct {
		name string
		cfg  experiments.Fig17Config
	}{
		{"quick", experiments.Fig17Config{Nodes: 2, Jobs: 12, JobDuration: 10 * time.Second,
			RestartMeans:        []time.Duration{10 * time.Second},
			CheckpointIntervals: []time.Duration{5 * time.Second, -1}}},
		{"full", experiments.Fig17Config{}},
	} {
		b.Run(scale.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				t, err := experiments.Fig17(scale.cfg)
				if err != nil {
					b.Fatal(err)
				}
				if i != 0 {
					continue
				}
				// Rows group by restart mean, one row per checkpoint interval;
				// contrast the first (tightest cadence) and last (disabled)
				// rows of each group.
				per := len(scale.cfg.CheckpointIntervals)
				if per == 0 {
					per = 3 // withDefaults sweep
				}
				for r := 0; r+per-1 < len(t.Rows); r += per {
					mean := t.Rows[r][0]
					ckpt, never := t.Rows[r], t.Rows[r+per-1]
					b.ReportMetric(cellF(b, ckpt[4]), "mean"+mean+"s-ckpt-replayed")
					b.ReportMetric(cellF(b, never[4]), "mean"+mean+"s-nockpt-replayed")
					b.ReportMetric(cellF(b, ckpt[5]), "mean"+mean+"s-ckpt-outage-ms")
					b.ReportMetric(cellF(b, never[5]), "mean"+mean+"s-nockpt-outage-ms")
				}
			}
		})
	}
}

// BenchmarkFig18StrategyComparison regenerates Figure 18: the same seeded
// serving workload replayed under each sharing strategy (token time-slicing,
// MPS overlap, replica time-slicing) on a small-kernel and a large-kernel
// mix, plus the memory-quantity mode's admission/placement witness. The
// headline contrast is the small-kernel mix, where the token path's
// per-grant handoff is pure overhead and the overlap strategies pull ahead;
// on large kernels the gap amortizes away. The quick variant is the
// check.sh smoke.
func BenchmarkFig18StrategyComparison(b *testing.B) {
	for _, scale := range []struct {
		name string
		cfg  experiments.Fig18Config
	}{
		{"quick", experiments.Fig18Config{Nodes: 1, GPUsPerNode: 4, Jobs: 16,
			JobDuration: 10 * time.Second}},
		{"full", experiments.Fig18Config{}},
	} {
		b.Run(scale.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				t, err := experiments.Fig18(scale.cfg)
				if err != nil {
					b.Fatal(err)
				}
				mb, err := experiments.Fig18MemBytes(scale.cfg)
				if err != nil {
					b.Fatal(err)
				}
				if i != 0 {
					continue
				}
				// Rows come in mix-major order: small-kernel then
				// large-kernel, each token/mps/replica.
				for _, row := range t.Rows {
					mix := "small"
					if row[1] == "large-kernel" {
						mix = "large"
					}
					b.ReportMetric(cellF(b, row[4]), mix+"-"+row[0]+"-tput")
					b.ReportMetric(cellF(b, row[5]), mix+"-"+row[0]+"-stretch")
				}
				b.ReportMetric(cellF(b, t.Rows[1][4])/cellF(b, t.Rows[0][4]),
					"mps-over-token-small")
				b.ReportMetric(cellF(b, mb.Rows[0][4]), "membytes-rejected-typed")
				b.ReportMetric(cellF(b, mb.Rows[1][2]), "membytes-completed")
				b.ReportMetric(cellF(b, mb.Rows[1][3]), "membytes-failed")
			}
		})
	}
}

// BenchmarkFig19Attribution regenerates Figure 19: the Fig 18 strategy ×
// kernel-mix grid replayed with critical-path attribution on, reporting
// each arm's phase-level latency budget — where the submit-to-launch
// interval actually goes per strategy. The reported metrics are
// virtual-clock means over completed chains (token-wait and end-to-end
// per arm, plus the open-chain count, which is zero by construction on
// these workloads). The quick variant is the check.sh smoke.
func BenchmarkFig19Attribution(b *testing.B) {
	for _, scale := range []struct {
		name string
		cfg  experiments.Fig19Config
	}{
		{"quick", experiments.Fig19Config{Fig18Config: experiments.Fig18Config{
			Nodes: 1, GPUsPerNode: 4, Jobs: 16, JobDuration: 10 * time.Second}}},
		{"full", experiments.Fig19Config{}},
	} {
		b.Run(scale.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				t, err := experiments.Fig19(scale.cfg)
				if err != nil {
					b.Fatal(err)
				}
				if i != 0 {
					continue
				}
				open := 0.0
				// Rows come in mix-major order: small-kernel then
				// large-kernel, each token/mps/replica. Columns: strategy,
				// mix, chains, open, 8 phase_ms columns, e2e_ms.
				for _, row := range t.Rows {
					mix := "small"
					if row[1] == "large-kernel" {
						mix = "large"
					}
					open += cellF(b, row[3])
					b.ReportMetric(cellF(b, row[10]), mix+"-"+row[0]+"-tokenwait-ms")
					b.ReportMetric(cellF(b, row[12]), mix+"-"+row[0]+"-e2e-ms")
				}
				b.ReportMetric(open, "open-chains")
			}
		})
	}
}

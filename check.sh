#!/bin/sh
# Tier-1 verification: build, vet, full test suite, and a race-detector
# pass over the concurrency-sensitive packages — the control plane, the
# coroutine-based simulation kernel, the device library, and the parallel
# experiment harness (forced onto the multi-worker path via GOMAXPROCS).
set -ex
go build ./...
go vet ./...
# Determinism vet: simulation code must not read the wall clock, print to
# stdout, or use the global RNG (see tools/detvet).
go run ./tools/detvet ./internal
go test ./...
go test -race ./internal/kube/... ./internal/core/...
go test -race ./internal/sim/... ./internal/devlib/...
GOMAXPROCS=4 go test -race -run 'TestRunIndexed|TestFig8DeterminismGolden|TestTraceDeterminismGolden' ./internal/experiments/
# Chaos soak under the race detector: the multi-seed recovery suite (node
# crashes, holder kills, device faults, watch drops) must satisfy every
# quiescence invariant; failures print the seed to reproduce. The plain
# `go test ./...` pass above already ran it race-free.
GOMAXPROCS=4 go test -race ./internal/chaos/
# Smoke the kernel micro-benchmarks so a regression that only breaks bench
# setup (not the unit tests) is caught here.
go test ./internal/sim/ -run xxx -bench BenchmarkSimKernel -benchtime 1x
# Smoke the instrumentation-overhead benchmark (obs on vs off on the Fig 9
# workload); ./bench_obs.sh measures it properly into BENCH_obs.json.
go test . -run xxx -bench BenchmarkFig9Obs -benchtime 1x

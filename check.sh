#!/bin/sh
# Tier-1 verification: build, vet, full test suite, and a race-detector
# pass over the concurrency-sensitive packages — the control plane, the
# coroutine-based simulation kernel, the device library, and the parallel
# experiment harness (forced onto the multi-worker path via GOMAXPROCS).
set -ex
go build ./...
go vet ./...
# Determinism vet: simulation code must not read the wall clock, print to
# stdout, or use the global RNG; metric names must be kubeshare_-prefixed
# snake_case with label keys from the bounded vocabulary; every registered
# kubeshare_ family must have a docs/METRICS.md row and vice versa (see
# tools/detvet).
go run ./tools/detvet -metricsdoc docs/METRICS.md ./internal
# The metrics reference itself must be freshly generated, not hand-edited.
go run ./tools/metricsdoc -check
# Perf-regression gate over BENCH.json: newest vs previous record per
# watched section, declared tolerances (see tools/benchgate).
go run ./tools/benchgate
go test ./...
# Telemetry export surface: the SLO alert engine and fairness auditor must
# replay byte-identically at a fixed seed, and every `kubeshare-sim serve`
# endpoint must answer over HTTP (httptest smoke in cmd/kubeshare-sim).
go test -run 'TestAlertDeterminismGolden|TestAuditDeterminismGolden' ./internal/experiments/
go test -run TestServeEndpoints ./cmd/kubeshare-sim/
go test -race ./internal/kube/... ./internal/core/...
go test -race ./internal/sim/... ./internal/devlib/...
# Sharing-strategy suites on the multi-worker path: the strategy interface
# (token/mps/replica) and the frontend refactor behind it must hold under
# the race detector with parallel test workers.
GOMAXPROCS=4 go test -race ./internal/devlib/... ./internal/gpusim/...
GOMAXPROCS=4 go test -race -run 'TestRunIndexed|TestFig8DeterminismGolden|TestTraceDeterminismGolden' ./internal/experiments/
# Labeled-family interning and the TSDB under the race detector: family
# lookup is the one obs path exercised off the simulation goroutine. This
# pass also covers internal/obs/attr — the critical-path attribution
# engine and virtual-time profiler.
GOMAXPROCS=4 go test -race ./internal/obs/...
# Chaos soak under the race detector: the multi-seed recovery suite (node
# crashes, holder kills, device faults, watch drops, apiserver
# crash/restarts with WAL-tail corruption) must satisfy every quiescence
# invariant — including the final warm-recovery audit after one more
# restart at quiescence; failures print the seed to reproduce. The plain
# `go test ./...` pass above already ran it race-free.
GOMAXPROCS=4 go test -race ./internal/chaos/
# Durable-store and restart-recovery suites under the race detector: WAL
# replay composition (restore∘churn == live churn), torn-tail
# truncate-and-recover, epoch-fenced relists, and the no-double-delivery
# goldens across restart + drop.
GOMAXPROCS=4 go test -race -run 'TestRestore|TestCheckpoint|TestTornTail|TestWatchFencing|TestCrash|TestReflector|TestResume|TestEventSinkRestart' ./internal/kube/store/ ./internal/kube/apiserver/
# Scheduling-framework suite under the race detector on the multi-worker
# path: engine/Algorithm-1 equivalence properties, transaction rollback,
# batched-vs-sequential, conflict retry, gang all-or-nothing, and the
# parallel-phase lane windows (FanOut ranking must be lane-count- and
# GOMAXPROCS-invariant).
GOMAXPROCS=4 go test -race ./internal/core/schedfw/...
# Multi-core hot path under the race detector with lanes actually running
# concurrently: event-lane routing/merge/mailbox in the kernel, and the
# sharded store's churn-vs-filtered-watch equivalence property.
GOMAXPROCS=4 go test -race -run 'TestLane|TestFanOut|TestSetLanes|TestShard|TestIndex' ./internal/sim/ ./internal/kube/store/
# Smoke the kernel micro-benchmarks so a regression that only breaks bench
# setup (not the unit tests) is caught here.
go test ./internal/sim/ -run xxx -bench BenchmarkSimKernel -benchtime 1x
# Smoke the scheduler-throughput bench (Figure 15) at quick scale; bench.sh
# measures the full 10k point into BENCH.json.
go test . -run xxx -bench 'BenchmarkFig15SchedulerThroughput/quick' -benchtime 1x
# Smoke the scale sweep (Figure 16) at quick scale under GOMAXPROCS=4: the
# lane-partitioned churn workload must place identically at 1 and 4 lanes
# (Fig16 errors out on any metrics divergence); bench.sh measures the full
# 1k/10k/100k sweep into BENCH.json.
GOMAXPROCS=4 go test . -run xxx -bench 'BenchmarkFig16ScaleSweep/quick' -benchtime 1x
# Smoke the control-plane recovery sweep (Figure 17) at quick scale: one
# restart mean, checkpointed vs checkpoint-free recovery, quiescence
# invariants enforced per cell; bench.sh measures the full sweep into
# BENCH.json.
go test . -run xxx -bench 'BenchmarkFig17RecoverySweep/quick' -benchtime 1x
# Smoke the sharing-strategy comparison (Figure 18) at quick scale: all
# three strategies plus the memory-quantity admission/placement witness run
# deterministically per seed; bench.sh measures the full grid into
# BENCH.json.
go test . -run xxx -bench 'BenchmarkFig18StrategyComparison/quick' -benchtime 1x
# Smoke the latency-attribution experiment (Figure 19) at quick scale: the
# fig18 grid with critical-path attribution on; the run enforces the exact
# phase-sum invariant per chain and zero open chains; bench.sh measures the
# full grid into BENCH.json.
go test . -run xxx -bench 'BenchmarkFig19Attribution/quick' -benchtime 1x
# Smoke the instrumentation-overhead benchmark (obs on vs off on the Fig 9
# workload); ./bench.sh measures it properly into BENCH.json.
go test . -run xxx -bench BenchmarkFig9Obs -benchtime 1x

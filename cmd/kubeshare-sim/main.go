// Command kubeshare-sim regenerates the paper's evaluation tables and
// figures on the simulated cluster.
//
// Usage:
//
//	kubeshare-sim [-scale quick|full] [-csv] [-seed N] [experiment ...]
//	kubeshare-sim [-seed N] trace [-key KEY]
//	kubeshare-sim [-seed N] profile [-folded]
//	kubeshare-sim [-scale quick|full] [-seed N] serve [-addr HOST:PORT] [-speed X]
//	kubeshare-sim [-scale quick|full] [-seed N] [-csv] audit
//
// Experiments: table1 fig5 fig6 fig7 fig8a fig8b fig8c fig9 fig10 fig11
// fig12 fig13 fig14 fig15 fig16 fig17 fig18 fig19 latency, or "all" (the
// default). Full scale matches the paper's 8-node × 4-GPU testbed and 5-run
// averages; quick scale shrinks the cluster and workloads for fast iteration.
//
// The -strategy flag selects the GPU-sharing strategy (token, mps or
// replica) for the trace and -replay runs, e.g.
//
//	kubeshare-sim -strategy mps trace
//
// stamps every sharePod with the mps sharing-mode annotation and sets the
// node default to match; fig18 compares all strategies side by side.
//
// The trace subcommand runs a small seeded workload with the observability
// spine on and prints one object's causal span chain — submission through
// scheduling, binding, holder readiness, kubelet sync, token grant and first
// kernel launch — followed by the events involving it. The default key is
// SharePod/job-000; pass -key (or a positional key, e.g. "VGPU/vgpu-0001")
// to follow a different chain, or "all" for the complete span log.
//
// The profile subcommand runs the same workload with critical-path
// attribution on and prints where the latency went: the phase-level budget
// (queue wait, retry, scheduling, binding, handoff, pod sync, token wait,
// launch) over every completed sharePod chain, plus the flat virtual-time
// span profile per (component, op). With -folded it emits collapsed-stack
// lines that flamegraph.pl or speedscope render directly.
//
// The serve subcommand replays the seeded Fig 9 sharing workload paced
// against the wall clock and exports its telemetry over HTTP: a Prometheus
// /metrics scrape endpoint, /series TSDB range queries, /alerts SLO states,
// the /audit fairness report and NDJSON /trace and /events logs.
//
// The audit subcommand runs the per-tenant fairness audit and prints the
// token-share accounting and per-GPU Jain-index tables; the output is
// byte-identical across runs at the same seed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"kubeshare/internal/core"
	"kubeshare/internal/devlib"
	"kubeshare/internal/devlib/sharing"
	"kubeshare/internal/experiments"
	"kubeshare/internal/metrics"
	"kubeshare/internal/obs"
	"kubeshare/internal/obs/attr"
	"kubeshare/internal/workload"
)

// writeGeneratedTrace emits a Figure-8-style workload (mean demand 30%,
// variance 2, heavy load) as a replayable CSV trace.
func writeGeneratedTrace(path string, seed int64) error {
	jobs := workload.Generate(workload.GeneratorConfig{
		Jobs:             200,
		MeanInterArrival: 600 * time.Millisecond,
		DemandMean:       0.3,
		DemandVar:        2,
		JobDuration:      40 * time.Second,
		Seed:             seed,
	})
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := workload.WriteTrace(f, jobs); err != nil {
		return err
	}
	fmt.Printf("wrote %d jobs to %s\n", len(jobs), path)
	return nil
}

// replayTrace runs a recorded workload under the chosen system on the
// paper-scale cluster and prints the outcome.
func replayTrace(path, system string, mode sharing.Mode) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	jobs, err := workload.ReadTrace(f)
	f.Close()
	if err != nil {
		return err
	}
	var sys experiments.System
	switch system {
	case "kubernetes":
		sys = experiments.Kubernetes
	case "kubeshare":
		sys = experiments.KubeShare
	case "extender":
		sys = experiments.Extender
	default:
		return fmt.Errorf("unknown system %q", system)
	}
	for i := range jobs {
		jobs[i].Mode = string(mode)
	}
	res, err := experiments.RunSharing(experiments.SharingConfig{
		System: sys, Nodes: 8, GPUsPerNode: 4, Jobs: jobs,
		Devlib: core.Config{Devlib: devlib.Config{Mode: mode}},
	})
	if err != nil {
		return err
	}
	fmt.Printf("system=%s jobs=%d completed=%d failed=%d makespan=%v throughput=%.2f jobs/min\n",
		system, len(jobs), res.Completed, res.Failed,
		res.Makespan.Round(time.Second), res.ThroughputPerMin)
	return nil
}

// runProfile executes the same seeded workload as the trace subcommand with
// critical-path attribution on and prints the virtual-time profile: the
// chains' phase-level latency budget plus the flat per-(component, op) span
// profile, or — with -folded — collapsed-stack lines for flamegraph tooling.
func runProfile(args []string, seed int64, mode sharing.Mode) error {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	folded := fs.Bool("folded", false, "emit collapsed-stack (flamegraph) lines instead of the flat profile")
	if err := fs.Parse(args); err != nil {
		return err
	}
	jobs := workload.Generate(workload.GeneratorConfig{
		Jobs: 8, MeanInterArrival: 2 * time.Second,
		DemandMean: 0.35, DemandVar: 1,
		JobDuration: 10 * time.Second, Seed: seed,
		Mode: string(mode),
	})
	res, err := experiments.RunSharing(experiments.SharingConfig{
		System: experiments.KubeShare, Nodes: 1, GPUsPerNode: 2,
		Jobs: jobs, Attribution: true,
		Devlib: core.Config{Devlib: devlib.Config{Mode: mode}},
	})
	if err != nil {
		return err
	}
	p := attr.BuildProfile(res.Spans, string(mode))
	if *folded {
		p.WriteFolded(os.Stdout)
	} else {
		p.Format(os.Stdout)
	}
	return nil
}

// runTrace executes a small seeded KubeShare workload with telemetry on and
// prints the causal span chain for one trace key, the events involving that
// object, and the final metrics snapshot.
func runTrace(key string, seed int64, mode sharing.Mode) error {
	jobs := workload.Generate(workload.GeneratorConfig{
		Jobs: 8, MeanInterArrival: 2 * time.Second,
		DemandMean: 0.35, DemandVar: 1,
		JobDuration: 10 * time.Second, Seed: seed,
		Mode: string(mode),
	})
	res, err := experiments.RunSharing(experiments.SharingConfig{
		System: experiments.KubeShare, Nodes: 1, GPUsPerNode: 2,
		Jobs: jobs, ExportTelemetry: true,
		Devlib: core.Config{Devlib: devlib.Config{Mode: mode}},
	})
	if err != nil {
		return err
	}
	spans := res.Spans
	if key != "all" {
		spans = obs.Chain(res.Spans, key)
		if len(spans) == 0 {
			keys := map[string]bool{}
			for _, s := range res.Spans {
				keys[s.Key] = true
			}
			names := make([]string, 0, len(keys))
			for k := range keys {
				names = append(names, k)
			}
			return fmt.Errorf("no spans for key %q; known keys: %s", key, strings.Join(names, " "))
		}
	}
	fmt.Printf("--- causal chain: %s (seed %d) ---\n", key, seed)
	obs.FormatSpans(os.Stdout, spans)
	// Events name the concrete objects (pods, vGPUs), not the trace key, so
	// match on the bare object name embedded in the key.
	_, bare, _ := strings.Cut(key, "/")
	var evs []obs.EventRecord
	for _, e := range res.Events {
		if key == "all" || strings.Contains(e.Name, bare) || strings.Contains(e.Message, bare) {
			evs = append(evs, e)
		}
	}
	fmt.Printf("--- events ---\n")
	obs.FormatEvents(os.Stdout, evs)
	fmt.Printf("--- metrics ---\n")
	res.Obs.Format(os.Stdout)
	return nil
}

func main() {
	scale := flag.String("scale", "quick", "experiment scale: quick or full")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	seed := flag.Int64("seed", 1, "workload random seed")
	genTrace := flag.String("gen-trace", "", "write a Figure-8-style workload trace to this file and exit")
	replay := flag.String("replay", "", "replay a workload trace file instead of running named experiments")
	system := flag.String("system", "kubeshare", "system for -replay: kubernetes, kubeshare or extender")
	strategy := flag.String("strategy", "", "GPU-sharing strategy for trace/-replay runs: token, mps or replica (default: node default)")
	flag.Parse()

	var mode sharing.Mode
	if *strategy != "" {
		var err error
		if mode, err = sharing.ParseMode(*strategy); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	if *genTrace != "" {
		if err := writeGeneratedTrace(*genTrace, *seed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *replay != "" {
		if err := replayTrace(*replay, *system, mode); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	full := false
	switch *scale {
	case "quick":
	case "full":
		full = true
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}

	if args := flag.Args(); len(args) > 0 {
		switch args[0] {
		case "trace":
			fs := flag.NewFlagSet("trace", flag.ExitOnError)
			key := fs.String("key", "SharePod/job-000", `trace key to follow ("all" for the complete span log)`)
			if err := fs.Parse(args[1:]); err != nil {
				os.Exit(2)
			}
			k := *key
			if fs.NArg() > 0 {
				k = fs.Arg(0) // positional form kept for compatibility
			}
			if err := runTrace(k, *seed, mode); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			return
		case "profile":
			if err := runProfile(args[1:], *seed, mode); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			return
		case "serve":
			if err := runServe(args[1:], *seed, full); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			return
		case "audit":
			if err := runAudit(*seed, full, *csv); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			return
		}
	}

	names := flag.Args()
	if len(names) == 0 || (len(names) == 1 && names[0] == "all") {
		names = []string{"table1", "fig5", "fig6", "fig7", "fig8a", "fig8b", "fig8c",
			"fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
			"fig17", "fig18", "fig19"}
	}
	for _, name := range names {
		tb, err := run(name, full, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		if *csv {
			fmt.Printf("# %s\n", tb.Title)
			if err := tb.WriteCSV(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		} else {
			tb.Render(os.Stdout)
		}
		fmt.Println()
	}
}

// run executes one named experiment at the requested scale.
func run(name string, full bool, seed int64) (*metrics.Table, error) {
	// Quick scale shrinks the cluster to 2×4 GPUs and the workloads to
	// roughly a quarter of the paper's; full scale is the paper's testbed.
	fig8 := experiments.Fig8Config{Seed: seed}
	if full {
		fig8.Repeats = 5
	} else {
		fig8.Nodes, fig8.GPUsPerNode = 2, 4
		fig8.Jobs = 60
		fig8.JobDuration = 30 * time.Second
	}
	switch name {
	case "table1":
		return experiments.Table1(experiments.Table1Config{})
	case "fig5":
		return experiments.Fig5(experiments.Fig5Config{Seed: seed})
	case "fig6":
		cfg := experiments.Fig6Config{}
		if !full {
			cfg.Stagger = 100 * time.Second
		}
		res, err := experiments.Fig6(cfg)
		if err != nil {
			return nil, err
		}
		chart := metrics.NewChart("Figure 6 timeline: per-job GPU usage share")
		chart.YMax = 1
		for _, name := range []string{"job-a", "job-b", "job-c"} {
			chart.Add(res.Usage[name])
		}
		chart.Render(os.Stdout)
		return res.Table, nil
	case "fig7":
		cfg := experiments.Fig7Config{}
		if !full {
			cfg.Steps = 2000
		}
		return experiments.Fig7(cfg)
	case "fig8a":
		return experiments.Fig8a(fig8, nil)
	case "fig8b":
		return experiments.Fig8b(fig8, nil)
	case "fig8c":
		return experiments.Fig8c(fig8, nil)
	case "fig9":
		cfg := experiments.Fig9Config{Fig8Config: fig8}
		if !full {
			cfg.FreqFactor = 2.5
		}
		res, err := experiments.Fig9(cfg)
		if err != nil {
			return nil, err
		}
		util := metrics.NewChart("Figure 9 timeline: average GPU utilization")
		util.YMax = 1
		res.Util[experiments.Kubernetes].Name = "kubernetes"
		res.Util[experiments.KubeShare].Name = "kubeshare"
		util.Add(res.Util[experiments.Kubernetes]).Add(res.Util[experiments.KubeShare])
		util.Render(os.Stdout)
		active := metrics.NewChart("Figure 9 timeline: allocated GPUs")
		res.Active[experiments.Kubernetes].Name = "kubernetes"
		res.Active[experiments.KubeShare].Name = "kubeshare"
		active.Add(res.Active[experiments.Kubernetes]).Add(res.Active[experiments.KubeShare])
		active.Render(os.Stdout)
		return res.Table, nil
	case "fig10":
		cfg := experiments.Fig10Config{}
		if !full {
			cfg.Concurrency = []int{1, 4, 16}
			cfg.Nodes = 2
		}
		return experiments.Fig10(cfg)
	case "fig11":
		return experiments.Fig11(experiments.Fig11Config{})
	case "fig12":
		cfg := experiments.Fig12Config{}
		if !full {
			cfg.Steps = 2000
		}
		return experiments.Fig12(cfg)
	case "fig13":
		cfg := experiments.Fig13Config{Seed: seed}
		if !full {
			cfg.Jobs, cfg.Steps = 24, 1000
			cfg.Nodes, cfg.GPUsPerNode = 1, 4
		}
		return experiments.Fig13(cfg)
	case "latency":
		cfg := experiments.LatencyConfig{Fig9Config: experiments.Fig9Config{Fig8Config: fig8}}
		if !full {
			cfg.FreqFactor = 2.5
		}
		res, err := experiments.Latency(cfg)
		if err != nil {
			return nil, err
		}
		return res.Table, nil
	case "fig14":
		cfg := experiments.Fig14Config{Seed: seed}
		if !full {
			cfg.Nodes, cfg.Jobs = 2, 12
			cfg.JobDuration = 10 * time.Second
			cfg.Intensities = []float64{0, 1, 2}
		}
		return experiments.Fig14(cfg)
	case "fig15":
		cfg := experiments.Fig15Config{}
		if !full {
			cfg.Counts = []int{200, 1000}
			cfg.Batch = 32
		}
		return experiments.Fig15(cfg)
	case "fig16":
		cfg := experiments.Fig16Config{}
		if !full {
			cfg.Sizes = []int{500, 2000}
			cfg.Lanes = []int{1, 2, 4}
			cfg.Nodes = 16
		}
		return experiments.Fig16(cfg)
	case "fig17":
		cfg := experiments.Fig17Config{Seed: seed}
		if !full {
			cfg.Nodes, cfg.Jobs = 2, 12
			cfg.JobDuration = 10 * time.Second
			cfg.RestartMeans = []time.Duration{20 * time.Second, 10 * time.Second}
			cfg.CheckpointIntervals = []time.Duration{5 * time.Second, -1}
		}
		return experiments.Fig17(cfg)
	case "fig18":
		cfg := experiments.Fig18Config{Seed: seed}
		if !full {
			cfg.Nodes, cfg.GPUsPerNode, cfg.Jobs = 1, 4, 16
			cfg.JobDuration = 10 * time.Second
		}
		mem, err := experiments.Fig18MemBytes(cfg)
		if err != nil {
			return nil, err
		}
		mem.Render(os.Stdout)
		return experiments.Fig18(cfg)
	case "fig19":
		cfg := experiments.Fig19Config{Fig18Config: experiments.Fig18Config{Seed: seed}}
		if !full {
			cfg.Nodes, cfg.GPUsPerNode, cfg.Jobs = 1, 4, 16
			cfg.JobDuration = 10 * time.Second
		}
		return experiments.Fig19(cfg)
	}
	return nil, fmt.Errorf("unknown experiment (want table1, fig5..fig19, latency)")
}

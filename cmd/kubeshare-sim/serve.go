package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"
	"time"

	"kubeshare/internal/experiments"
)

// serveIndex is the landing page for `kubeshare-sim serve`.
const serveIndex = `kubeshare-sim serve — live telemetry export

  /metrics                     Prometheus text exposition of the live registry
  /series                      JSON list of recorded time-series names
  /series?name=N[&from=S&to=S] TSDB range query (seconds on the virtual clock)
  /alerts                      SLO alert engine states (JSON)
  /audit                       per-tenant fairness report (text tables)
  /trace                       span log (NDJSON)
  /profile                     virtual-time profile: phase budget + span table
  /profile?format=folded       collapsed-stack lines for flamegraph tooling
  /events                      event log (NDJSON)
  /clock                       virtual clock and workload progress (JSON)
`

// newServeMux wires the export endpoints for a live run. Split from
// runServe so the smoke test can drive it through httptest.
func newServeMux(live *experiments.Live) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, serveIndex)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		live.WriteMetrics(w)
	})
	mux.HandleFunc("/series", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		var from, to time.Duration
		for _, arg := range []struct {
			key string
			dst *time.Duration
		}{{"from", &from}, {"to", &to}} {
			if s := q.Get(arg.key); s != "" {
				sec, err := strconv.ParseFloat(s, 64)
				if err != nil {
					http.Error(w, fmt.Sprintf("bad %s: %v", arg.key, err), http.StatusBadRequest)
					return
				}
				*arg.dst = time.Duration(sec * float64(time.Second))
			}
		}
		w.Header().Set("Content-Type", "application/json")
		live.WriteSeries(w, q.Get("name"), from, to)
	})
	mux.HandleFunc("/alerts", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		live.WriteAlerts(w)
	})
	mux.HandleFunc("/audit", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		live.WriteAudit(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		live.WriteTrace(w)
	})
	mux.HandleFunc("/profile", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		live.WriteProfile(w, r.URL.Query().Get("format") == "folded")
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		live.WriteEvents(w)
	})
	mux.HandleFunc("/clock", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"virtual_seconds\":%.3f,\"done\":%v}\n", live.Now().Seconds(), live.Done())
	})
	return mux
}

// runServe replays the seeded Fig 9 sharing workload paced against the wall
// clock while exporting its telemetry over HTTP.
func runServe(args []string, seed int64, full bool) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:9090", "listen address")
	speed := fs.Float64("speed", 1.0, "virtual seconds advanced per wall-clock second")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *speed <= 0 {
		return fmt.Errorf("-speed must be positive, got %v", *speed)
	}
	live, err := experiments.StartLive(experiments.LiveConfig{Seed: seed, Full: full})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: newServeMux(live)}
	go srv.Serve(ln)
	fmt.Printf("serving telemetry on http://%s (speed %gx)\n", ln.Addr(), *speed)
	fmt.Printf("try: curl http://%s/metrics\n", ln.Addr())

	// Pace the virtual clock: each wall tick advances speed×tick of
	// simulated time. Once the workload drains, keep serving the final
	// telemetry until interrupted.
	const tick = 100 * time.Millisecond
	step := time.Duration(*speed * float64(tick))
	for t := time.NewTicker(tick); ; <-t.C {
		if live.Done() {
			break
		}
		live.Advance(step)
	}
	fmt.Printf("workload complete at virtual %v; still serving (ctrl-c to exit)\n",
		live.Now().Round(time.Millisecond))
	select {}
}

// runAudit runs the fairness audit and prints the per-tenant accounting and
// per-GPU Jain tables plus the run's SLO alert count — byte-identical
// across runs at the same seed.
func runAudit(seed int64, full bool, csv bool) error {
	cfg := experiments.AuditConfig{Fig9Config: experiments.Fig9Config{
		Fig8Config: experiments.Fig8Config{Seed: seed},
	}}
	if !full {
		cfg.Nodes, cfg.GPUsPerNode = 2, 4
		cfg.Fig8Config.Jobs = 60
		cfg.JobDuration = 30 * time.Second
		cfg.FreqFactor = 2.5
	}
	res, err := experiments.Audit(cfg)
	if err != nil {
		return err
	}
	if csv {
		fmt.Printf("# %s\n", res.Shares.Title)
		if err := res.Shares.WriteCSV(os.Stdout); err != nil {
			return err
		}
		fmt.Printf("# %s\n", res.Fairness.Title)
		if err := res.Fairness.WriteCSV(os.Stdout); err != nil {
			return err
		}
	} else {
		res.Shares.Render(os.Stdout)
		fmt.Println()
		res.Fairness.Render(os.Stdout)
	}
	fmt.Printf("\nslo alerts fired: %d\n", res.AlertsFired)
	return nil
}

package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"kubeshare/internal/experiments"
	"kubeshare/internal/workload"
)

// get fetches a path from the test server and returns the body.
func get(t *testing.T, srv *httptest.Server, path string) string {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", path, err)
	}
	return string(body)
}

// TestServeEndpoints drives the full export surface against a small live
// run: every endpoint must answer, /metrics must expose the labeled
// utilization and tenant-share gauges, and /series must answer a range
// query with points.
func TestServeEndpoints(t *testing.T) {
	jobs := workload.Generate(workload.GeneratorConfig{
		Jobs: 8, MeanInterArrival: 2 * time.Second,
		DemandMean: 0.35, DemandVar: 1,
		JobDuration: 10 * time.Second, Seed: 1,
	})
	live, err := experiments.StartLive(experiments.LiveConfig{
		Nodes: 1, GPUsPerNode: 2, Jobs: jobs, Interval: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Run half the workload so the scrape sees a cluster mid-flight, then
	// drain the rest — both states must export cleanly.
	live.Advance(15 * time.Second)
	srv := httptest.NewServer(newServeMux(live))
	defer srv.Close()

	metricsBody := get(t, srv, "/metrics")
	for _, want := range []string{
		"# TYPE kubeshare_gpu_utilization_ratio gauge",
		`kubeshare_gpu_utilization_ratio{gpu_uuid="`,
		`kubeshare_tenant_token_share{gpu_uuid="`,
		`kubeshare_devlib_token_grants_total{gpu_uuid="`,
		"kubeshare_sched_latency_seconds_bucket{le=",
	} {
		if !strings.Contains(metricsBody, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	var names []string
	if err := json.Unmarshal([]byte(get(t, srv, "/series")), &names); err != nil {
		t.Fatalf("/series: %v", err)
	}
	hasUtil := false
	for _, n := range names {
		if n == "kubeshare_gpu_utilization_ratio" {
			hasUtil = true
		}
	}
	if !hasUtil {
		t.Fatalf("/series names missing kubeshare_gpu_utilization_ratio: %v", names)
	}
	var series []struct {
		Name   string            `json:"name"`
		Labels map[string]string `json:"labels"`
		Points [][2]float64      `json:"points"`
	}
	body := get(t, srv, "/series?name=kubeshare_gpu_utilization_ratio&from=0&to=15")
	if err := json.Unmarshal([]byte(body), &series); err != nil {
		t.Fatalf("/series range query: %v", err)
	}
	if len(series) != 2 {
		t.Fatalf("want one utilization series per GPU (2), got %d", len(series))
	}
	for _, s := range series {
		if s.Labels["gpu_uuid"] == "" || s.Labels["node"] == "" {
			t.Errorf("series %s missing gpu_uuid/node labels: %v", s.Name, s.Labels)
		}
		if len(s.Points) == 0 {
			t.Errorf("series %s has no points in [0,15s]", s.Name)
		}
	}

	var alerts []map[string]any
	if err := json.Unmarshal([]byte(get(t, srv, "/alerts")), &alerts); err != nil {
		t.Fatalf("/alerts: %v", err)
	}

	if body := get(t, srv, "/audit"); !strings.Contains(body, "jain") {
		t.Errorf("/audit missing jain table:\n%s", body)
	}
	if body := get(t, srv, "/trace"); !strings.Contains(body, `"component"`) {
		t.Error("/trace returned no spans")
	}
	if body := get(t, srv, "/events"); !strings.Contains(body, `"reason"`) {
		t.Error("/events returned no events")
	}
	if body := get(t, srv, "/profile"); !strings.Contains(body, "--- phase budget") {
		t.Errorf("/profile missing phase budget:\n%s", body)
	}
	if body := get(t, srv, "/profile?format=folded"); !strings.Contains(body, "spans;token;") {
		t.Errorf("/profile?format=folded missing folded frames:\n%s", body)
	}
	var clock struct {
		VirtualSeconds float64 `json:"virtual_seconds"`
		Done           bool    `json:"done"`
	}
	if err := json.Unmarshal([]byte(get(t, srv, "/clock")), &clock); err != nil {
		t.Fatalf("/clock: %v", err)
	}
	if clock.VirtualSeconds < 15 {
		t.Errorf("clock did not advance: %v", clock.VirtualSeconds)
	}

	// Drain the workload and confirm the exports still answer.
	for i := 0; i < 200 && !live.Done(); i++ {
		live.Advance(time.Second)
	}
	if !live.Done() {
		t.Fatal("workload did not drain within 200 virtual seconds")
	}
	if body := get(t, srv, "/metrics"); !strings.Contains(body, "kubeshare_devmgr_vgpu_creates_total") {
		t.Error("post-drain /metrics missing vgpu create counter")
	}
}

// Command sharepodctl is a kubectl-style shell against an in-process
// simulated cluster with KubeShare installed. It demonstrates the public
// API interactively: create sharePods and native pods, advance virtual
// time, and inspect pods, sharePods and the vGPU pool.
//
// Usage: sharepodctl [-nodes N] [-gpus N] [< script]
//
// Commands (one per line; '#' starts a comment):
//
//	create sharepod NAME -request R -limit L -mem M [-image IMG] [-steps N]
//	                      [-affinity LBL] [-anti-affinity LBL] [-exclusion LBL]
//	create pod NAME [-gpus N] [-image IMG] [-steps N]
//	delete sharepod NAME | delete pod NAME
//	get sharepods | get pods | get vgpus | get nodes | get usage
//	run DURATION            (advance virtual time, e.g. "run 30s")
//	wait NAME               (advance time until sharePod NAME terminates)
//	help | quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"kubeshare"
	"kubeshare/internal/workload"
)

func main() {
	nodes := flag.Int("nodes", 2, "worker node count")
	gpus := flag.Int("gpus", 4, "GPUs per node")
	flag.Parse()

	s, err := kubeshare.New(kubeshare.WithNodes(*nodes), kubeshare.WithGPUsPerNode(*gpus))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("cluster up: %d nodes × %d GPUs, KubeShare installed. Type 'help'.\n", *nodes, *gpus)

	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Printf("[t=%v] > ", s.Now().Round(time.Millisecond))
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		args := strings.Fields(line)
		switch args[0] {
		case "quit", "exit":
			return
		case "help":
			printHelp()
		case "run":
			if len(args) != 2 {
				fmt.Println("usage: run DURATION")
				continue
			}
			d, err := time.ParseDuration(args[1])
			if err != nil {
				fmt.Println(err)
				continue
			}
			s.RunFor(d)
		case "wait":
			if len(args) != 2 {
				fmt.Println("usage: wait NAME")
				continue
			}
			waitSharePod(s, args[1])
		case "create":
			if err := create(s, args[1:]); err != nil {
				fmt.Println(err)
			}
		case "delete":
			if err := del(s, args[1:]); err != nil {
				fmt.Println(err)
			}
		case "get":
			if len(args) != 2 {
				fmt.Println("usage: get sharepods|pods|vgpus|nodes|usage")
				continue
			}
			get(s, args[1])
		default:
			fmt.Printf("unknown command %q (try 'help')\n", args[0])
		}
	}
}

func printHelp() {
	fmt.Print(`commands:
  create sharepod NAME -request R -limit L -mem M [-image IMG] [-steps N]
                       [-affinity LBL] [-anti-affinity LBL] [-exclusion LBL]
  create pod NAME [-gpus N] [-image IMG] [-steps N]
  delete sharepod NAME | delete pod NAME
  get sharepods | get pods | get vgpus | get nodes | get usage
  run DURATION   advance virtual time (e.g. run 30s)
  wait NAME      advance time until sharePod NAME terminates
  quit
`)
}

// flags parses "-key value" pairs from args.
func parseFlags(args []string) (map[string]string, error) {
	out := map[string]string{}
	for i := 0; i < len(args); i++ {
		if !strings.HasPrefix(args[i], "-") {
			return nil, fmt.Errorf("expected -flag, got %q", args[i])
		}
		if i+1 >= len(args) {
			return nil, fmt.Errorf("flag %s needs a value", args[i])
		}
		out[strings.TrimPrefix(args[i], "-")] = args[i+1]
		i++
	}
	return out, nil
}

func parseF(flags map[string]string, key string, def float64) (float64, error) {
	v, ok := flags[key]
	if !ok {
		return def, nil
	}
	return strconv.ParseFloat(v, 64)
}

func create(s *kubeshare.Sim, args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("usage: create sharepod|pod NAME ...")
	}
	kind, name := args[0], args[1]
	flags, err := parseFlags(args[2:])
	if err != nil {
		return err
	}
	image := flags["image"]
	if image == "" {
		image = workload.TrainImage
	}
	steps := flags["steps"]
	if steps == "" {
		steps = "1000"
	}
	container := kubeshare.Container{
		Name:  "main",
		Image: image,
		Env:   map[string]string{workload.EnvSteps: steps},
	}
	switch kind {
	case "sharepod":
		req, err := parseF(flags, "request", 0.5)
		if err != nil {
			return err
		}
		lim, err := parseF(flags, "limit", req)
		if err != nil {
			return err
		}
		mem, err := parseF(flags, "mem", 0.25)
		if err != nil {
			return err
		}
		_, err = s.CreateSharePod(&kubeshare.SharePod{
			ObjectMeta: kubeshare.ObjectMeta{Name: name},
			Spec: kubeshare.SharePodSpec{
				GPURequest:   req,
				GPULimit:     lim,
				GPUMem:       mem,
				Affinity:     flags["affinity"],
				AntiAffinity: flags["anti-affinity"],
				Exclusion:    flags["exclusion"],
				Pod:          kubeshare.PodSpec{Containers: []kubeshare.Container{container}},
			},
		})
		if err != nil {
			return err
		}
		fmt.Printf("sharepod/%s created\n", name)
	case "pod":
		n := int64(1)
		if v, ok := flags["gpus"]; ok {
			n, err = strconv.ParseInt(v, 10, 64)
			if err != nil {
				return err
			}
		}
		if n > 0 {
			container.Requests = kubeshare.ResourceList{kubeshare.ResourceGPU: n}
		}
		_, err = s.Pods().Create(&kubeshare.Pod{
			ObjectMeta: kubeshare.ObjectMeta{Name: name},
			Spec:       kubeshare.PodSpec{Containers: []kubeshare.Container{container}},
		})
		if err != nil {
			return err
		}
		fmt.Printf("pod/%s created\n", name)
	default:
		return fmt.Errorf("unknown kind %q", kind)
	}
	// Let the control loops react so the user immediately sees scheduling.
	s.RunFor(time.Millisecond)
	return nil
}

func del(s *kubeshare.Sim, args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: delete sharepod|pod NAME")
	}
	var err error
	switch args[0] {
	case "sharepod":
		err = s.SharePods().Delete(args[1])
	case "pod":
		err = s.Pods().Delete(args[1])
	default:
		return fmt.Errorf("unknown kind %q", args[0])
	}
	if err != nil {
		return err
	}
	fmt.Printf("%s/%s deleted\n", args[0], args[1])
	s.RunFor(time.Millisecond)
	return nil
}

func get(s *kubeshare.Sim, kind string) {
	switch kind {
	case "sharepods":
		fmt.Printf("%-16s %-10s %-10s %-9s %-9s %s\n", "NAME", "PHASE", "GPUID", "REQUEST", "LIMIT", "NODE")
		for _, sp := range s.SharePods().List() {
			fmt.Printf("%-16s %-10s %-10s %-9.2f %-9.2f %s\n",
				sp.Name, sp.Status.Phase, sp.Spec.GPUID, sp.Spec.GPURequest,
				sp.Spec.GPULimit, sp.Spec.NodeName)
		}
	case "pods":
		fmt.Printf("%-26s %-10s %-8s %s\n", "NAME", "PHASE", "NODE", "GPU")
		for _, pod := range s.Pods().List() {
			fmt.Printf("%-26s %-10s %-8s %d\n",
				pod.Name, pod.Status.Phase, pod.Spec.NodeName,
				pod.Spec.Requests()[kubeshare.ResourceGPU])
		}
	case "usage":
		usage := s.Stats().Usage
		fmt.Printf("%-16s %-10s %-10s %s\n", "NAME", "PHASE", "GPUID", "USAGE")
		for _, sp := range s.SharePods().List() {
			fmt.Printf("%-16s %-10s %-10s %.3f\n",
				sp.Name, sp.Status.Phase, sp.Spec.GPUID, usage[sp.Name])
		}
	case "vgpus":
		fmt.Printf("%-12s %-9s %-8s %s\n", "GPUID", "PHASE", "NODE", "UUID")
		for _, v := range s.VGPUs().List() {
			fmt.Printf("%-12s %-9s %-8s %s\n",
				v.Spec.GPUID, v.Status.Phase, v.Spec.NodeName, v.Status.UUID)
		}
	case "nodes":
		fmt.Printf("%-10s %-6s %s\n", "NAME", "GPUS", "READY")
		for _, n := range s.Cluster.NodeObjects() {
			fmt.Printf("%-10s %-6d %v\n",
				n.Name, n.Status.Allocatable[kubeshare.ResourceGPU], n.Status.Ready)
		}
	default:
		fmt.Printf("unknown resource %q\n", kind)
	}
}

func waitSharePod(s *kubeshare.Sim, name string) {
	// Poll in coarse steps of virtual time; terminate on terminal phase.
	for i := 0; i < 10000; i++ {
		sp, err := s.SharePods().Get(name)
		if err != nil {
			fmt.Println(err)
			return
		}
		if sp.Terminated() {
			fmt.Printf("sharepod/%s %s at t=%v\n", name, sp.Status.Phase, s.Now().Round(time.Millisecond))
			return
		}
		s.RunFor(time.Second)
	}
	fmt.Printf("sharepod/%s still not terminal\n", name)
}

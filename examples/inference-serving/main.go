// Inference serving: the paper's motivating workload (TF-Serving). A
// single model server's GPU usage tracks its client request rate (Figure
// 5), so low-traffic servers waste most of a dedicated GPU — and KubeShare
// packs several of them onto one device without breaking their guarantees.
package main

import (
	"fmt"
	"log"
	"time"

	"kubeshare"
	"kubeshare/internal/sim"
	"kubeshare/internal/workload"
)

func main() {
	s, err := kubeshare.New(kubeshare.WithNodes(1))
	if err != nil {
		log.Fatal(err)
	}

	// Three model servers with different client loads: 4, 8 and 12
	// requests/s of a 25ms forward pass → demands 0.1, 0.2 and 0.3.
	servers := []struct {
		name string
		rate float64
	}{
		{"search-ranker", 4},
		{"image-tagger", 8},
		{"translator", 12},
	}
	s.Go("deploy", func(p *sim.Proc) {
		for _, srv := range servers {
			demand := srv.rate * 0.025
			_, err := s.CreateSharePod(&kubeshare.SharePod{
				ObjectMeta: kubeshare.ObjectMeta{Name: srv.name},
				Spec: kubeshare.SharePodSpec{
					GPURequest: demand,
					GPULimit:   demand * 2, // burst headroom
					GPUMem:     0.2,
					Pod: kubeshare.PodSpec{Containers: []kubeshare.Container{{
						Name:  "serve",
						Image: workload.ServeImage,
						Env: map[string]string{
							workload.EnvRate:     fmt.Sprintf("%.1f", srv.rate),
							workload.EnvDuration: "120",
							workload.EnvSeed:     "7",
						},
					}}},
				},
			})
			if err != nil {
				log.Fatalf("deploy %s: %v", srv.name, err)
			}
		}
	})
	s.Run()

	fmt.Println("server          phase      gpuid      physical GPU")
	onGPU := map[string]int{}
	for _, srv := range servers {
		sp, err := s.SharePods().Get(srv.name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-15s %-10s %-10s %s\n", srv.name, sp.Status.Phase, sp.Spec.GPUID, sp.Status.UUID)
		onGPU[sp.Status.UUID]++
	}
	fmt.Printf("\nphysical GPUs used: %d of 4 (all three servers share one device)\n", len(onGPU))
	var busy time.Duration
	for _, dev := range s.Cluster.Nodes[0].GPUs {
		busy += dev.BusyTime()
	}
	fmt.Printf("aggregate device busy time: %v over %v of serving\n",
		busy.Round(time.Millisecond), s.Now().Round(time.Second))
	fmt.Println("a dedicated-GPU deployment would have held 3 GPUs at ≤30% usage each")
}

// Interference & locality constraints (§5.5): two job profiles share GPUs —
// resilient Job A (over-provisioned request) and fragile Job B
// (under-provisioned, high duty). Without constraints, two Bs can land on
// the same GPU and slow each other ≈1.5×; tagging the Bs with an
// anti-affinity label forces them onto different devices, and the
// first-class GPUID makes the placement visible and verifiable.
package main

import (
	"fmt"
	"log"
	"time"

	"kubeshare"
	"kubeshare/internal/sim"
	"kubeshare/internal/workload"
)

// submitJob creates one A- or B-profile training sharePod.
func submitJob(s *kubeshare.Sim, name, kind, antiAff string) {
	var request float64
	var kernelMS, hostMS string
	if kind == "A" {
		request, kernelMS, hostMS = 0.5, "10", "23.3" // needs ≈0.3 duty
	} else {
		request, kernelMS, hostMS = 0.4, "10", "3.3" // needs ≈0.75 duty
	}
	_, err := s.CreateSharePod(&kubeshare.SharePod{
		ObjectMeta: kubeshare.ObjectMeta{Name: name},
		Spec: kubeshare.SharePodSpec{
			GPURequest:   request,
			GPULimit:     1.0,
			GPUMem:       0.2,
			AntiAffinity: antiAff,
			Pod: kubeshare.PodSpec{Containers: []kubeshare.Container{{
				Name:  "train",
				Image: workload.TrainImage,
				Env: map[string]string{
					workload.EnvSteps:        "1500",
					workload.EnvStepKernelMS: kernelMS,
					workload.EnvStepHostMS:   hostMS,
				},
			}}},
		},
	})
	if err != nil {
		log.Fatalf("submit %s: %v", name, err)
	}
}

// runScenario submits two Bs and one A, optionally spreading the Bs.
func runScenario(useAntiAffinity bool) {
	s, err := kubeshare.New(kubeshare.WithNodes(1), kubeshare.WithGPUsPerNode(2))
	if err != nil {
		log.Fatal(err)
	}
	label := ""
	if useAntiAffinity {
		label = "spread-the-Bs"
	}
	s.Go("client", func(p *sim.Proc) {
		// Staggered submissions so the Bs are scheduled first: without the
		// label, best-fit then packs them together (their requests fit).
		submitJob(s, "b-one", "B", label)
		p.Sleep(500 * time.Millisecond)
		submitJob(s, "b-two", "B", label)
		p.Sleep(500 * time.Millisecond)
		submitJob(s, "a-one", "A", "")
	})
	s.Run()

	fmt.Printf("\n--- anti-affinity on B: %v ---\n", useAntiAffinity)
	fmt.Println("job    kind  gpuid      wall")
	for _, name := range []string{"b-one", "b-two", "a-one"} {
		sp, err := s.SharePods().Get(name)
		if err != nil {
			log.Fatal(err)
		}
		if sp.Status.Phase != kubeshare.SharePodSucceeded {
			log.Fatalf("%s: %s (%s)", name, sp.Status.Phase, sp.Status.Message)
		}
		fmt.Printf("%-6s %-5s %-10s %v\n", name, name[:1], sp.Spec.GPUID,
			(sp.Status.FinishTime - sp.Status.RunningTime).Round(time.Millisecond))
	}
}

func main() {
	// Without the label, best-fit packs B+B onto one GPU (their requests
	// fit), and both suffer ≈1.5× interference slowdown.
	runScenario(false)
	// With the label the two Bs are forced apart; each B shares with
	// nothing or with the resilient A, and runs near full speed (a B needs
	// 1500 × 13.3ms ≈ 20s alone).
	runScenario(true)
	fmt.Println("\nWithout the label the co-located Bs take ≈1.5× longer;")
	fmt.Println("anti-affinity restores them to ≈20s at a small cost to A.")
}

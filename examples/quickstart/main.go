// Quickstart: build a one-node cluster with KubeShare installed, run two
// fractional training jobs on the same physical GPU, and print where they
// landed and how the device was shared.
package main

import (
	"fmt"
	"log"
	"time"

	"kubeshare"
	"kubeshare/internal/sim"
)

func main() {
	// One node with 4 simulated V100s; KubeShare's controllers and the
	// vGPU device library are installed automatically.
	s, err := kubeshare.New(kubeshare.WithNodes(1))
	if err != nil {
		log.Fatal(err)
	}

	// A GPU application is just a Go function: it receives a CUDA handle
	// whose calls the vGPU device library intercepts and throttles.
	s.RegisterImage("demo/train", func(ctx *kubeshare.ContainerCtx) error {
		if _, err := ctx.CUDA.MemAlloc(ctx.Proc, 2<<30); err != nil {
			return err
		}
		for i := 0; i < 800; i++ {
			if err := ctx.CUDA.LaunchKernel(ctx.Proc, 10*time.Millisecond); err != nil {
				return err
			}
		}
		return nil
	})

	submit := func(name string, request, limit float64) {
		_, err := s.CreateSharePod(&kubeshare.SharePod{
			ObjectMeta: kubeshare.ObjectMeta{Name: name},
			Spec: kubeshare.SharePodSpec{
				GPURequest: request, // guaranteed minimum compute share
				GPULimit:   limit,   // elastic maximum
				GPUMem:     0.25,    // quarter of the 16 GiB device memory
				Pod: kubeshare.PodSpec{Containers: []kubeshare.Container{{
					Name: "train", Image: "demo/train",
				}}},
			},
		})
		if err != nil {
			log.Fatalf("create %s: %v", name, err)
		}
	}

	// Submit two jobs whose gpu_requests sum to 1.0: KubeShare's best-fit
	// places both on the same vGPU (same physical GPU).
	s.Go("client", func(p *sim.Proc) {
		submit("alice", 0.6, 0.8)
		submit("bob", 0.4, 0.6)
		for _, name := range []string{"alice", "bob"} {
			// Name-filtered watch: parks until the sharePod terminates
			// without waking on unrelated cluster churn.
			q := s.Watch(kubeshare.KindSharePod, kubeshare.WatchOptions{Name: name, Replay: true})
			var sp *kubeshare.SharePod
			for sp == nil || !sp.Terminated() {
				ev, ok := q.Get(p)
				if !ok {
					log.Fatalf("watch closed waiting for %s", name)
				}
				sp = ev.Object.(*kubeshare.SharePod)
			}
			s.StopWatch(q)
			fmt.Printf("%-6s %-10s gpuid=%-10s uuid=%s  wall=%v\n",
				name, sp.Status.Phase, sp.Spec.GPUID, sp.Status.UUID,
				(sp.Status.FinishTime - sp.Status.RunningTime).Round(time.Millisecond))
		}
	})
	s.Run()

	// Both jobs ran 8s of device work each on ONE GPU; the device executed
	// 16s of kernels total.
	for i, dev := range s.Cluster.Nodes[0].GPUs {
		fmt.Printf("gpu%d busy=%v\n", i, dev.BusyTime().Round(time.Millisecond))
	}
	fmt.Printf("virtual time elapsed: %v (wall time: milliseconds)\n", s.Now().Round(time.Millisecond))
}

// Replicated serving: §4.6's composability claim in action. A SharePodSet
// (replica controller over sharePods) keeps N fractional inference
// replicas alive; scaling the set up and down transparently drives
// KubeShare-Sched and DevMgr, packing replicas onto as few GPUs as their
// gpu_requests allow.
package main

import (
	"fmt"
	"log"
	"time"

	"kubeshare"
	"kubeshare/internal/sim"
	"kubeshare/internal/workload"
)

func main() {
	s, err := kubeshare.New(kubeshare.WithNodes(2))
	if err != nil {
		log.Fatal(err)
	}

	set := &kubeshare.SharePodSet{
		ObjectMeta: kubeshare.ObjectMeta{Name: "ranker"},
		Replicas:   3,
		Template: kubeshare.SharePodSpec{
			GPURequest: 0.25, GPULimit: 0.5, GPUMem: 0.15,
			Pod: kubeshare.PodSpec{Containers: []kubeshare.Container{{
				Name:  "serve",
				Image: workload.ServeImage,
				Env: map[string]string{
					workload.EnvRate:     "8",
					workload.EnvDuration: "3600",
					workload.EnvSeed:     "11",
				},
			}}},
		},
	}

	report := func(when string) {
		replicas, ready := 0, 0
		if cur, err := s.SharePodSets().Get("ranker"); err == nil {
			replicas, ready = cur.Replicas, cur.ReadyReplicas
		}
		gpus := map[string]int{}
		for _, sp := range s.SharePods().List() {
			if !sp.Terminated() && sp.Status.UUID != "" {
				gpus[sp.Status.UUID]++
			}
		}
		fmt.Printf("%-18s replicas=%d ready=%d physical-GPUs=%d vGPUs=%d\n",
			when, replicas, ready, len(gpus), len(s.VGPUs().List()))
	}

	s.Go("operator", func(p *sim.Proc) {
		if _, err := s.SharePodSets().Create(set); err != nil {
			log.Fatal(err)
		}
	})
	s.RunFor(30 * time.Second)
	report("after create(3)")

	// Traffic spike: scale to 6 replicas. 6 × 0.25 = 1.5 GPUs of demand.
	s.Go("scale-up", func(p *sim.Proc) {
		s.SharePodSets().Mutate("ranker", func(cur *kubeshare.SharePodSet) error {
			cur.Replicas = 6
			return nil
		})
	})
	s.RunFor(30 * time.Second)
	report("after scale to 6")

	// Quiet hours: back to 2.
	s.Go("scale-down", func(p *sim.Proc) {
		s.SharePodSets().Mutate("ranker", func(cur *kubeshare.SharePodSet) error {
			cur.Replicas = 2
			return nil
		})
	})
	s.RunFor(30 * time.Second)
	report("after scale to 2")

	s.Go("teardown", func(p *sim.Proc) {
		s.SharePodSets().Delete("ranker")
	})
	s.RunFor(30 * time.Second)
	report("after delete")
}

// Training isolation (Figure 6): three training jobs with staggered
// arrivals share one GPU. The vGPU device library throttles each job at its
// gpu_limit, guarantees its gpu_request, and elastically redistributes the
// residual capacity as tenants come and go. This example prints the
// measured usage timeline the paper plots.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"kubeshare/internal/experiments"
	"kubeshare/internal/metrics"
)

func main() {
	res, err := experiments.Fig6(experiments.Fig6Config{
		Stagger:     100 * time.Second, // paper used 200s; same shape
		SampleEvery: 5 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	res.Table.Render(os.Stdout)

	chart := metrics.NewChart("per-job usage share over time")
	chart.YMax = 1
	for _, name := range []string{"job-a", "job-b", "job-c"} {
		chart.Add(res.Usage[name])
	}
	fmt.Println()
	chart.Render(os.Stdout)

	// Print the raw timeline, downsampled to 20s buckets: the usage steps
	// 0.6 → 0.5/0.5 → 0.3/0.4/0.3 → redistribution are clearly visible.
	fmt.Println("\ntime     job-a  job-b  job-c")
	type row struct{ a, b, c float64 }
	buckets := map[time.Duration]*row{}
	var order []time.Duration
	get := func(t time.Duration) *row {
		t = t / (20 * time.Second) * (20 * time.Second)
		r, ok := buckets[t]
		if !ok {
			r = &row{}
			buckets[t] = r
			order = append(order, t)
		}
		return r
	}
	for name, series := range res.Usage {
		ds := series.Downsample(20 * time.Second)
		for _, p := range ds.Points {
			r := get(p.T)
			switch name {
			case "job-a":
				r.a = p.V
			case "job-b":
				r.b = p.V
			case "job-c":
				r.c = p.V
			}
		}
	}
	for _, t := range order {
		r := buckets[t]
		fmt.Printf("%-8v %5.2f  %5.2f  %5.2f\n", t, r.a, r.b, r.c)
	}
}

module kubeshare

go 1.22

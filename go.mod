module kubeshare

go 1.23

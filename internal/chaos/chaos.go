// Package chaos injects deterministic faults into the simulated cluster:
// node crashes and restarts, vGPU holder-pod kills, GPU device faults
// (Xid-style), and apiserver watch-stream drops. Every fault schedule is
// drawn from seeded substreams on the virtual clock, so a run is a pure
// function of (cluster, workload, seed) — a failing soak reproduces from
// its printed seed.
//
// The injector never repairs state behind the system's back: each fault is
// delivered through the same surface a real failure would use (the kubelet
// loses its procs, the holder pod's containers die, the device poisons its
// contexts, the watch stream closes), and recovery is left entirely to the
// control plane under test.
package chaos

import (
	"fmt"
	"time"

	"kubeshare/internal/core"
	"kubeshare/internal/kube"
	"kubeshare/internal/kube/apiserver"
	"kubeshare/internal/obs"
	"kubeshare/internal/sim"
	"kubeshare/internal/simrand"
)

// Config is a fault schedule. Each fault class fires on a Poisson process
// with the given mean interval; a zero mean disables the class. Injection
// stops at Horizon (outages begun before the horizon still end — the
// injector always restarts what it crashed and clears what it faulted, so
// the cluster is fault-free after the last outage drains).
type Config struct {
	Seed int64
	// Horizon is how long faults are injected (virtual time from Start).
	Horizon time.Duration

	// NodeCrashMean is the mean interval between whole-node crashes.
	NodeCrashMean time.Duration
	// NodeOutageMean is the mean downtime before a crashed node restarts.
	NodeOutageMean time.Duration

	// HolderKillMean is the mean interval between vGPU holder-pod kills
	// (the token-manager daemon dying in place).
	HolderKillMean time.Duration

	// DeviceFaultMean is the mean interval between GPU device faults.
	DeviceFaultMean time.Duration
	// DeviceOutageMean is the mean time a device stays faulted.
	DeviceOutageMean time.Duration

	// WatchDropMean is the mean interval between watch-stream drops, each
	// severing one randomly chosen reflector.
	WatchDropMean time.Duration

	// APIRestartMean is the mean interval between apiserver crash/restarts.
	// Each restart discards every in-memory store and watch structure and
	// warm-recovers from checkpoint + WAL replay; requires the cluster's
	// apiserver to have durability enabled (see apiserver.EnableDurability).
	APIRestartMean time.Duration
	// APIRestartTornTailEvery corrupts the WAL tail before every Nth
	// restart (0 = never), forcing the torn-tail truncate-and-recover path.
	APIRestartTornTailEvery int
}

// Stats counts the faults actually delivered.
type Stats struct {
	NodeCrashes  int
	HolderKills  int
	DeviceFaults int
	WatchDrops   int
	APIRestarts  int
	// TornTails counts the APIRestarts preceded by WAL-tail corruption.
	TornTails int
	// Replayed sums the WAL records replayed across all restarts.
	Replayed int64
	// OutageNS sums the modeled unavailability windows (checkpoint re-read
	// plus WAL replay cost) across all restarts.
	OutageNS int64
}

// Total returns the number of faults delivered across all classes.
func (s Stats) Total() int {
	return s.NodeCrashes + s.HolderKills + s.DeviceFaults + s.WatchDrops + s.APIRestarts
}

func (s Stats) String() string {
	return fmt.Sprintf("crashes=%d holderKills=%d deviceFaults=%d watchDrops=%d apiRestarts=%d tornTails=%d",
		s.NodeCrashes, s.HolderKills, s.DeviceFaults, s.WatchDrops, s.APIRestarts, s.TornTails)
}

// Injector drives one fault schedule against a cluster.
type Injector struct {
	env      *sim.Env
	c        *kube.Cluster
	cfg      Config
	rng      *simrand.Source
	stats    Stats
	start    time.Duration
	recorder *obs.Recorder
}

// New creates an injector for the cluster. Call Start to begin injecting.
func New(c *kube.Cluster, cfg Config) *Injector {
	return &Injector{
		env: c.Env, c: c, cfg: cfg, rng: simrand.New(cfg.Seed),
		recorder: c.Obs.EventSource("chaos"),
	}
}

// Stats returns the faults delivered so far.
func (in *Injector) Stats() Stats { return in.stats }

// Start launches one proc per enabled fault class. Each class forks its own
// substream, so enabling or disabling one class never perturbs the schedule
// of another.
func (in *Injector) Start() {
	in.start = in.env.Now()
	if in.cfg.NodeCrashMean > 0 {
		rng := in.rng.Fork("nodes")
		in.env.Go("chaos-nodes", func(p *sim.Proc) { in.nodeLoop(p, rng) })
	}
	if in.cfg.HolderKillMean > 0 {
		rng := in.rng.Fork("holders")
		in.env.Go("chaos-holders", func(p *sim.Proc) { in.holderLoop(p, rng) })
	}
	if in.cfg.DeviceFaultMean > 0 {
		rng := in.rng.Fork("devices")
		in.env.Go("chaos-devices", func(p *sim.Proc) { in.deviceLoop(p, rng) })
	}
	if in.cfg.WatchDropMean > 0 {
		rng := in.rng.Fork("watches")
		in.env.Go("chaos-watches", func(p *sim.Proc) { in.watchLoop(p, rng) })
	}
	if in.cfg.APIRestartMean > 0 {
		rng := in.rng.Fork("apiserver")
		in.env.Go("chaos-apiserver", func(p *sim.Proc) { in.apiLoop(p, rng) })
	}
}

// expired reports whether the injection horizon has passed.
func (in *Injector) expired() bool {
	return in.env.Now()-in.start >= in.cfg.Horizon
}

// nodeLoop crashes a random live node, waits out the outage, and restarts
// it. The crash kills the kubelet's loops and every container on the node
// without reporting anything — the control plane must notice via the stale
// heartbeat.
func (in *Injector) nodeLoop(p *sim.Proc, rng *simrand.Source) {
	for {
		p.Sleep(rng.ExpDuration(in.cfg.NodeCrashMean))
		if in.expired() {
			return
		}
		var up []*kube.Node
		for _, n := range in.c.Nodes {
			if !n.Kubelet.Crashed() {
				up = append(up, n)
			}
		}
		if len(up) == 0 {
			continue
		}
		node := up[rng.Intn(len(up))]
		node.Kubelet.Crash()
		in.stats.NodeCrashes++
		in.recorder.Eventf("Node", node.Name, obs.EventWarning, "NodeCrashed",
			"kubelet and all containers killed")
		outage := rng.ExpDuration(in.cfg.NodeOutageMean)
		if outage < time.Second {
			outage = time.Second
		}
		p.Sleep(outage)
		if err := node.Kubelet.Restart(); err != nil {
			panic(fmt.Sprintf("chaos: restart %s: %v", node.Name, err))
		}
		in.recorder.Eventf("Node", node.Name, obs.EventNormal, "NodeRestarted",
			"kubelet back after %v outage", outage)
	}
}

// holderLoop kills a random live vGPU holder pod's containers in place —
// the per-device token-manager daemon dying while its node stays healthy.
func (in *Injector) holderLoop(p *sim.Proc, rng *simrand.Source) {
	for {
		p.Sleep(rng.ExpDuration(in.cfg.HolderKillMean))
		if in.expired() {
			return
		}
		// Live holder pods on live nodes, in store (name) order — a
		// deterministic candidate list for the seeded pick.
		var candidates []struct {
			pod  string
			node *kube.Node
		}
		for _, pod := range apiserver.Pods(in.c.API).List() {
			if pod.Labels[core.LabelVGPUHolder] == "" || pod.Terminated() {
				continue
			}
			if node, ok := in.c.Node(pod.Spec.NodeName); ok && !node.Kubelet.Crashed() {
				candidates = append(candidates, struct {
					pod  string
					node *kube.Node
				}{pod.Name, node})
			}
		}
		if len(candidates) == 0 {
			continue
		}
		pick := candidates[rng.Intn(len(candidates))]
		if pick.node.Kubelet.KillPod(pick.pod) {
			in.stats.HolderKills++
			in.recorder.Eventf("Pod", pick.pod, obs.EventWarning, "HolderKilled",
				"vGPU holder containers killed on %s", pick.node.Name)
		}
	}
}

// deviceLoop faults a random healthy GPU (in-flight kernels die, contexts
// poison) and clears the fault after the outage — the device recovers, but
// contexts opened before the fault stay poisoned, as after a real Xid.
func (in *Injector) deviceLoop(p *sim.Proc, rng *simrand.Source) {
	gpus := in.c.AllGPUs()
	for {
		p.Sleep(rng.ExpDuration(in.cfg.DeviceFaultMean))
		if in.expired() {
			return
		}
		dev := gpus[rng.Intn(len(gpus))]
		if dev.Faulted() {
			continue
		}
		dev.InjectFault()
		in.stats.DeviceFaults++
		outage := rng.ExpDuration(in.cfg.DeviceOutageMean)
		if outage < 100*time.Millisecond {
			outage = 100 * time.Millisecond
		}
		p.Sleep(outage)
		dev.ClearFault()
	}
}

// apiLoop crashes the apiserver process itself: every in-memory store
// structure — objects, indexes, open watches, resumable history, the event
// sink's dedup index — is discarded at one virtual instant and rebuilt from
// the durable checkpoint plus WAL replay. Before every Nth restart the WAL
// tail is corrupted (truncated mid-frame or bit-flipped, alternating), so
// recovery must also exercise the truncate-and-recover path. Nothing is
// repaired behind the system's back: every watch consumer sees its stream
// close and must relist into the new epoch on its own.
func (in *Injector) apiLoop(p *sim.Proc, rng *simrand.Source) {
	for {
		p.Sleep(rng.ExpDuration(in.cfg.APIRestartMean))
		if in.expired() {
			return
		}
		torn := false
		if every := in.cfg.APIRestartTornTailEvery; every > 0 && (in.stats.APIRestarts+1)%every == 0 {
			// Alternate damage shape: 0 flips the final byte (CRC mismatch),
			// 1..4 truncates that many bytes (short frame).
			torn = in.c.API.TearWALTail(rng.Intn(5))
		}
		st, err := in.c.API.Restart()
		if err != nil {
			panic(fmt.Sprintf("chaos: apiserver restart: %v", err))
		}
		in.stats.APIRestarts++
		in.stats.Replayed += int64(st.Replayed)
		in.stats.OutageNS += st.ModeledOutageNS
		if torn {
			in.stats.TornTails++
		}
		in.recorder.Eventf("APIServer", "control-plane", obs.EventWarning, "APIServerCrashed",
			"store dropped; recovered rev %d (%d replayed, torn=%v)", st.RestoredRev, st.Replayed, st.TornTail)
	}
}

// watchLoop severs one randomly chosen reflector stream. The reflector's
// next Get reconnects — resuming from its last revision, or relisting if
// the gap was compacted — so consumers must come through without losing
// deltas.
func (in *Injector) watchLoop(p *sim.Proc, rng *simrand.Source) {
	for {
		p.Sleep(rng.ExpDuration(in.cfg.WatchDropMean))
		if in.expired() {
			return
		}
		rs := in.c.API.Reflectors("")
		if len(rs) == 0 {
			continue
		}
		r := rs[rng.Intn(len(rs))]
		r.Drop()
		in.stats.WatchDrops++
		in.recorder.Eventf("Watch", r.Kind(), obs.EventWarning, "WatchDropped",
			"reflector stream severed")
	}
}

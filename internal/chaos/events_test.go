package chaos

import (
	"fmt"
	"testing"
	"time"

	"kubeshare/internal/core"
	"kubeshare/internal/core/schedfw"
	"kubeshare/internal/kube"
	"kubeshare/internal/kube/api"
	"kubeshare/internal/kube/apiserver"
	"kubeshare/internal/sim"
	"kubeshare/internal/workload"
)

// TestEventsSurviveWatchDrop watches the persisted Event objects through a
// reflector that is repeatedly severed with the chaos Drop hook while a
// workload generates events. The reflector's resume/relist semantics must
// deliver every event's final state regardless of where the drops landed.
func TestEventsSurviveWatchDrop(t *testing.T) {
	env := sim.NewEnv()
	kcfg := kube.Config{}
	for i := 0; i < 2; i++ {
		kcfg.Nodes = append(kcfg.Nodes, kube.NodeConfig{Name: fmt.Sprintf("node-%d", i), GPUs: 2})
	}
	c, err := kube.NewCluster(env, kcfg)
	if err != nil {
		t.Fatal(err)
	}
	workload.RegisterImages(c)
	if _, err := schedfw.Install(c, core.Config{}); err != nil {
		t.Fatal(err)
	}

	// The consumer mirrors the Event store from the reflector stream.
	seen := map[string]int{} // event name -> last Count delivered
	r := c.API.NewReflector(api.KindEvent, apiserver.WatchOptions{Replay: true})
	env.Go("event-consumer", func(p *sim.Proc) {
		for {
			ev, ok := r.Get(p)
			if !ok {
				return
			}
			e := ev.Object.(*api.Event)
			seen[e.Name] = e.Count
		}
	})

	// Sever the stream every couple of seconds while the workload runs.
	env.Go("event-dropper", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			p.Sleep(2 * time.Second)
			r.Drop()
		}
	})

	jobs := workload.Generate(workload.GeneratorConfig{
		Jobs: 12, MeanInterArrival: time.Second,
		DemandMean: 0.4, DemandVar: 1,
		JobDuration: 8 * time.Second, Seed: 7,
	})
	env.Go("submitter", func(p *sim.Proc) {
		for _, j := range jobs {
			if wait := j.Arrival - env.Now(); wait > 0 {
				p.Sleep(wait)
			}
			if _, err := core.SharePods(c.API).Create(workload.SharePodFor(j)); err != nil {
				t.Errorf("submit %s: %v", j.Name, err)
			}
		}
	})
	env.Run()

	resumes, relists := r.Stats()
	if resumes+relists == 0 {
		t.Fatal("reflector never reconnected — the drops did not exercise recovery")
	}
	stored := apiserver.Events(c.API).List()
	if len(stored) == 0 {
		t.Fatal("workload produced no Event objects")
	}
	for _, e := range stored {
		count, ok := seen[e.Name]
		if !ok {
			t.Errorf("event %s (%s %s) never delivered through the dropped watch", e.Name, e.Reason, e.InvolvedName)
			continue
		}
		if count != e.Count {
			t.Errorf("event %s delivered Count=%d, store has %d", e.Name, count, e.Count)
		}
	}
	if len(seen) != len(stored) {
		t.Errorf("consumer saw %d events, store has %d", len(seen), len(stored))
	}
}

package chaos

import (
	"fmt"
	"time"

	"kubeshare/internal/core"
	"kubeshare/internal/core/schedfw"
	"kubeshare/internal/kube"
	"kubeshare/internal/kube/apiserver"
	"kubeshare/internal/sim"
	"kubeshare/internal/simrand"
	"kubeshare/internal/workload"
)

// SoakConfig drives one end-to-end recovery soak: a serving workload runs
// on KubeShare while every fault class fires, then the faults stop and the
// cluster must converge to a state satisfying the recovery invariants.
type SoakConfig struct {
	Seed        int64
	Nodes       int
	GPUsPerNode int

	// Jobs is the number of serving jobs; each runs JobDuration.
	Jobs        int
	JobDuration time.Duration
	// SubmitWindow spreads the submissions over this span.
	SubmitWindow time.Duration

	// FaultHorizon is how long faults are injected; zero means the submit
	// window plus one job duration.
	FaultHorizon time.Duration
	// Bound caps the simulation; the run must quiesce before it.
	Bound time.Duration
	// Faults overrides the fault schedule (zero value takes the defaults
	// below; the Seed and Horizon fields are always filled in here).
	Faults Config
	// NoFaults disables every fault class — the control run for
	// availability comparisons.
	NoFaults bool
	// CheckpointInterval is handed to the apiserver's durability layer when
	// API restarts are in the fault mix (zero = the apiserver default,
	// negative = checkpoint only once at enable time, maximizing WAL replay).
	CheckpointInterval time.Duration
}

// WithDefaults returns the config with every unset field filled in — the
// baseline schedule callers can scale from.
func (c SoakConfig) WithDefaults() SoakConfig {
	if c.Nodes == 0 {
		c.Nodes = 3
	}
	if c.GPUsPerNode == 0 {
		c.GPUsPerNode = 2
	}
	if c.Jobs == 0 {
		c.Jobs = 24
	}
	if c.JobDuration == 0 {
		c.JobDuration = 20 * time.Second
	}
	if c.SubmitWindow == 0 {
		c.SubmitWindow = 40 * time.Second
	}
	if c.FaultHorizon == 0 {
		c.FaultHorizon = c.SubmitWindow + c.JobDuration
	}
	if c.Bound == 0 {
		c.Bound = 20 * time.Minute
	}
	f := &c.Faults
	if c.NoFaults {
		*f = Config{}
	} else {
		if f.NodeCrashMean == 0 {
			f.NodeCrashMean = 25 * time.Second
		}
		if f.NodeOutageMean == 0 {
			f.NodeOutageMean = 6 * time.Second
		}
		if f.HolderKillMean == 0 {
			f.HolderKillMean = 12 * time.Second
		}
		if f.DeviceFaultMean == 0 {
			f.DeviceFaultMean = 20 * time.Second
		}
		if f.DeviceOutageMean == 0 {
			f.DeviceOutageMean = 2 * time.Second
		}
		if f.WatchDropMean == 0 {
			f.WatchDropMean = 4 * time.Second
		}
		if f.APIRestartMean == 0 {
			f.APIRestartMean = 35 * time.Second
		}
		if f.APIRestartTornTailEvery == 0 {
			f.APIRestartTornTailEvery = 2
		}
	}
	f.Seed = c.Seed
	f.Horizon = c.FaultHorizon
	return c
}

// SoakResult summarizes one soak run.
type SoakResult struct {
	Faults Stats
	// Outcomes over the submitted sharePods.
	Succeeded, Failed, Rejected int
	// Restarts sums SharePod restart counters (requeue edges taken).
	Restarts int
	// Requeues is the scheduler's bound-pod-loss recovery count.
	Requeues int64
	// Recoveries/RecoveryFails are DevMgr's vGPU recovery counters.
	Recoveries, RecoveryFails int64
	// Resumes/Relists sum reflector reconnect statistics cluster-wide.
	Resumes, Relists int
	// Elapsed is the virtual time the last sharePod reached a terminal
	// phase — the workload makespan under faults.
	Elapsed time.Duration
	// Violations holds every invariant breach found at quiescence.
	Violations []error
}

// Soak runs the chaos soak and checks the recovery invariants. The run is
// deterministic in cfg.Seed.
func Soak(cfg SoakConfig) (SoakResult, error) {
	cfg = cfg.WithDefaults()
	env := sim.NewEnv()
	kcfg := kube.Config{}
	for i := 0; i < cfg.Nodes; i++ {
		kcfg.Nodes = append(kcfg.Nodes, kube.NodeConfig{
			Name: fmt.Sprintf("node-%d", i),
			GPUs: cfg.GPUsPerNode,
		})
	}
	c, err := kube.NewCluster(env, kcfg)
	if err != nil {
		return SoakResult{}, err
	}
	workload.RegisterImages(c)
	// Durability goes on before any consumer starts, so the enable-time
	// checkpoint covers the empty store and every later mutation is logged.
	if cfg.Faults.APIRestartMean > 0 {
		c.API.EnableDurability(apiserver.DurabilityConfig{CheckpointInterval: cfg.CheckpointInterval})
	}
	ks, err := schedfw.Install(c, core.Config{})
	if err != nil {
		return SoakResult{}, err
	}

	jobs := workload.Generate(workload.GeneratorConfig{
		Jobs:             cfg.Jobs,
		MeanInterArrival: cfg.SubmitWindow / time.Duration(cfg.Jobs),
		DemandMean:       0.35,
		DemandVar:        1,
		JobDuration:      cfg.JobDuration,
		Seed:             simrand.New(cfg.Seed).Fork("workload").Seed(),
	})
	env.Go("soak-submitter", func(p *sim.Proc) {
		for _, j := range jobs {
			if wait := j.Arrival - env.Now(); wait > 0 {
				p.Sleep(wait)
			}
			if _, err := core.SharePods(c.API).Create(workload.SharePodFor(j)); err != nil {
				panic(fmt.Sprintf("chaos soak: submit %s: %v", j.Name, err))
			}
		}
	})

	inj := New(c, cfg.Faults)
	inj.Start()
	env.RunUntil(cfg.Bound)

	res := SoakResult{Faults: inj.Stats()}
	for _, sp := range core.SharePods(c.API).List() {
		res.Restarts += sp.Status.Restarts
		if sp.Status.FinishTime > res.Elapsed {
			res.Elapsed = sp.Status.FinishTime
		}
		switch sp.Status.Phase {
		case core.SharePodSucceeded:
			res.Succeeded++
		case core.SharePodFailed:
			res.Failed++
		case core.SharePodRejected:
			res.Rejected++
		}
	}
	res.Requeues = ks.Stats().Requeues
	res.Recoveries, res.RecoveryFails = ks.DevMgr.Recoveries()
	for _, r := range c.API.Reflectors("") {
		resumes, relists := r.Stats()
		res.Resumes += resumes
		res.Relists += relists
	}
	res.Violations = VerifyQuiescence(c, ks)
	// Final warm-recovery audit: one more crash/restore at quiescence must
	// be invisible — the restored store, the relisted reflector caches and
	// the scheduler snapshot all have to land exactly where they were, and
	// every recovery invariant must hold again after the grace window.
	if cfg.Faults.APIRestartMean > 0 {
		if _, err := c.API.Restart(); err != nil {
			return res, fmt.Errorf("chaos soak: final restart audit: %w", err)
		}
		env.RunUntil(cfg.Bound + time.Minute)
		for _, v := range VerifyQuiescence(c, ks) {
			res.Violations = append(res.Violations, fmt.Errorf("post-restore: %w", v))
		}
	}
	return res, nil
}

// VerifyQuiescence checks the post-chaos recovery invariants on a cluster
// that should have fully converged (faults stopped, workload finished):
//
//  1. Every sharePod reached a terminal phase — nothing is wedged in
//     Pending/Scheduled/Running with no pod behind it.
//  2. No pod objects are still live (bound pods and holders all resolved).
//  3. No vGPU objects remain (on-demand policy releases every device), and
//     DevMgr's tenant cache is empty — no leaked device shares or orphaned
//     tenant entries.
//  4. Every device-library token manager is resumed and empty: no
//     registered clients, no waiters — a leaked client would pin quota on a
//     device forever.
//  5. No device is left faulted, and every node is back to Ready.
//  6. KubeShare-Sched's incremental snapshot still matches a full relist
//     (pool equivalence survived every watch drop, resume and relist).
func VerifyQuiescence(c *kube.Cluster, ks *core.KubeShare) []error {
	var bad []error
	for _, sp := range core.SharePods(c.API).List() {
		if !sp.Terminated() {
			bad = append(bad, fmt.Errorf("sharePod %s wedged in %s (restarts=%d, boundPod=%q)",
				sp.Name, sp.Status.Phase, sp.Status.Restarts, sp.Status.BoundPod))
		}
	}
	for _, pod := range apiserver.Pods(c.API).List() {
		if !pod.Terminated() {
			bad = append(bad, fmt.Errorf("pod %s still live in %s on %s",
				pod.Name, pod.Status.Phase, pod.Spec.NodeName))
		}
	}
	if n := core.VGPUs(c.API).Count(); n != 0 {
		bad = append(bad, fmt.Errorf("%d vGPU objects leaked after quiescence", n))
	}
	for gpuID, tenants := range ks.DevMgr.TenantView() {
		bad = append(bad, fmt.Errorf("orphaned tenant entries on %s: %v", gpuID, tenants))
	}
	for nodeName, backend := range ks.Backends {
		for uuid, mgr := range backend.Managers() {
			if mgr.Down() {
				bad = append(bad, fmt.Errorf("token manager %s@%s left suspended", uuid, nodeName))
			}
			if n := mgr.Clients(); n != 0 {
				bad = append(bad, fmt.Errorf("token manager %s@%s leaked %d clients", uuid, nodeName, n))
			}
			if n := mgr.Waiting(); n != 0 {
				bad = append(bad, fmt.Errorf("token manager %s@%s has %d stuck waiters", uuid, nodeName, n))
			}
		}
	}
	for _, node := range c.Nodes {
		for _, dev := range node.GPUs {
			if dev.Faulted() {
				bad = append(bad, fmt.Errorf("device %s left faulted", dev.UUID()))
			}
		}
		if node.Kubelet.Crashed() {
			bad = append(bad, fmt.Errorf("node %s left crashed", node.Name))
		}
	}
	for _, n := range apiserver.Nodes(c.API).List() {
		if !n.Status.Ready {
			bad = append(bad, fmt.Errorf("node %s still NotReady", n.Name))
		}
	}
	if ks.Sched != nil {
		if err := ks.Sched.VerifySnapshot(); err != nil {
			bad = append(bad, fmt.Errorf("snapshot diverged from relist: %w", err))
		}
	}
	return bad
}

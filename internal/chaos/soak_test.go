package chaos

import (
	"testing"
	"time"
)

// requireClean runs one soak and fails with the seed printed so a breakage
// reproduces from the log line alone.
func requireClean(t *testing.T, cfg SoakConfig) SoakResult {
	t.Helper()
	res, err := Soak(cfg)
	if err != nil {
		t.Fatalf("seed %d: soak: %v", cfg.Seed, err)
	}
	for _, v := range res.Violations {
		t.Errorf("seed %d: invariant violated: %v", cfg.Seed, v)
	}
	if t.Failed() {
		t.Fatalf("seed %d: faults %v, outcomes ok=%d failed=%d rejected=%d restarts=%d requeues=%d recoveries=%d/%d resumes=%d relists=%d elapsed=%v",
			cfg.Seed, res.Faults, res.Succeeded, res.Failed, res.Rejected,
			res.Restarts, res.Requeues, res.Recoveries, res.RecoveryFails,
			res.Resumes, res.Relists, res.Elapsed)
	}
	return res
}

// TestSoakSmoke is the tier-1 entry: one short seed, every fault class
// enabled, all invariants checked. Fast enough for every check.sh run.
func TestSoakSmoke(t *testing.T) {
	res := requireClean(t, SoakConfig{
		Seed:         1,
		Jobs:         10,
		JobDuration:  10 * time.Second,
		SubmitWindow: 15 * time.Second,
	})
	if res.Faults.Total() == 0 {
		t.Fatal("smoke soak injected no faults — schedule means too long for the horizon")
	}
}

// TestSoakSeeds is the full multi-seed soak: each seed runs the default
// workload under all fault classes and must satisfy every recovery
// invariant. The faults delivered must include each class at least once
// across the seeds, and recovery paths must actually fire — otherwise the
// soak silently stopped testing anything.
func TestSoakSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("full soak skipped in -short")
	}
	var total Stats
	var restarts int
	var requeues, recoveries int64
	var resumes, relists int
	for _, seed := range []int64{1, 2, 3, 4} {
		res := requireClean(t, SoakConfig{Seed: seed})
		total.NodeCrashes += res.Faults.NodeCrashes
		total.HolderKills += res.Faults.HolderKills
		total.DeviceFaults += res.Faults.DeviceFaults
		total.WatchDrops += res.Faults.WatchDrops
		total.APIRestarts += res.Faults.APIRestarts
		total.TornTails += res.Faults.TornTails
		total.Replayed += res.Faults.Replayed
		restarts += res.Restarts
		requeues += res.Requeues
		recoveries += res.Recoveries
		resumes += res.Resumes
		relists += res.Relists
	}
	if total.NodeCrashes == 0 || total.HolderKills == 0 || total.DeviceFaults == 0 ||
		total.WatchDrops == 0 || total.APIRestarts == 0 {
		t.Fatalf("some fault class never fired across seeds: %v", total)
	}
	if total.TornTails == 0 {
		t.Fatalf("no restart ever hit a torn WAL tail — the truncate-and-recover path went untested: %v", total)
	}
	if total.Replayed == 0 {
		t.Fatal("every restart recovered from a fresh checkpoint — WAL replay went untested")
	}
	if relists == 0 {
		t.Fatal("no reflector ever relisted — restart epochs went unnoticed by consumers")
	}
	if requeues == 0 {
		t.Fatal("no sharePod was ever requeued — the recovery path went untested")
	}
	if recoveries == 0 {
		t.Fatal("no vGPU recovery ever ran — holder kills went unnoticed")
	}
	if resumes == 0 {
		t.Fatal("no reflector ever resumed — watch drops went unnoticed")
	}
	_ = restarts
	_ = relists
}

// TestSoakDeterministic pins the chaos layer's reproducibility: the same
// seed must deliver the same faults and the same outcomes, field for field.
// It runs at default scale so the schedule includes apiserver restarts —
// checkpoint+WAL recovery (replayed counts, modeled outage) must reproduce
// exactly, not just the fault-free path.
func TestSoakDeterministic(t *testing.T) {
	cfg := SoakConfig{Seed: 7}
	a := requireClean(t, cfg)
	b := requireClean(t, cfg)
	if a.Faults != b.Faults {
		t.Fatalf("fault schedule diverged: %v vs %v", a.Faults, b.Faults)
	}
	if a.Faults.APIRestarts == 0 {
		t.Fatalf("no apiserver restart fired — determinism of the recovery path went untested: %v", a.Faults)
	}
	if a.Succeeded != b.Succeeded || a.Failed != b.Failed || a.Rejected != b.Rejected ||
		a.Restarts != b.Restarts || a.Requeues != b.Requeues ||
		a.Recoveries != b.Recoveries || a.RecoveryFails != b.RecoveryFails ||
		a.Elapsed != b.Elapsed {
		t.Fatalf("outcomes diverged:\n  %+v\n  %+v", a, b)
	}
}

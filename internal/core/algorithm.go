package core

import (
	"fmt"
	"sort"
)

// Request is Algorithm 1's r: a container's requirements and constraints.
type Request struct {
	Util float64 // gpu_request
	Mem  float64 // gpu_mem
	// MemBytes is the absolute memory request (gpu_mem_bytes, KAI-style).
	// Zero means the request is purely fractional; positive means Mem is 0
	// and the byte quantity drives memory fit.
	MemBytes int64
	Aff      string // sched_affinity label ("" = none)
	Anti     string // sched_anti-affinity label
	Excl     string // sched_exclusion label
}

// DeviceMemBytes is the physical memory per device the byte-quantity
// accounting assumes — the paper's 16 GB V100s, matching gpusim's
// DefaultMemoryBytes (core cannot import gpusim; the equality is pinned by
// a test).
const DeviceMemBytes = 16 << 30

// DeviceState is Algorithm 1's d: one vGPU's scheduling view. Residuals are
// fractions of the device remaining for gpu_request / gpu_mem commitments.
type DeviceState struct {
	ID       string
	NodeName string
	Util     float64 // residual computing capacity
	Mem      float64 // residual memory space
	// MemCapacity is the device's total schedulable memory fraction — 1.0
	// normally, >1.0 when GPUswap-style over-commitment is enabled.
	MemCapacity float64
	// MemBytesUsed is the byte-denominated view of the committed memory:
	// byte-quantity requests add their exact size, fractional requests their
	// byte equivalent. Byte requests fit against memBytesCap() minus this,
	// so the two denominations deduct from one shared capacity.
	MemBytesUsed int64
	Aff          map[string]bool
	Anti         map[string]bool
	Excl         string
	Idle         bool // no container scheduled on the device
}

// NewDeviceState returns an empty (idle, full-capacity) device.
func NewDeviceState(id, node string) *DeviceState {
	return &DeviceState{
		ID:          id,
		NodeName:    node,
		Util:        1,
		Mem:         1,
		MemCapacity: 1,
		Aff:         map[string]bool{},
		Anti:        map[string]bool{},
		Idle:        true,
	}
}

// Clone returns an independent copy of the device state.
func (d *DeviceState) Clone() *DeviceState {
	out := *d
	out.Aff = make(map[string]bool, len(d.Aff))
	for k, v := range d.Aff {
		out.Aff[k] = v
	}
	out.Anti = make(map[string]bool, len(d.Anti))
	for k, v := range d.Anti {
		out.Anti[k] = v
	}
	return &out
}

// Fits reports whether r's resource demand fits the residuals. Idle devices
// may carry stale residual bookkeeping from the pool builder, so capacity is
// taken as full for them.
func (d *DeviceState) Fits(r Request) bool { return d.fits(r) }

func (d *DeviceState) fits(r Request) bool {
	if !d.FitsMemBytes(r) {
		return false
	}
	if d.Idle {
		return r.Util <= 1 && r.Mem <= d.memCapacity()
	}
	return r.Util <= d.Util+1e-9 && r.Mem <= d.Mem+1e-9
}

// FitsMemBytes reports whether the request's byte-denominated memory demand
// alone fits the device — vacuously true for purely fractional requests.
// Exported for the schedfw MemoryFit filter plugin.
func (d *DeviceState) FitsMemBytes(r Request) bool {
	if r.MemBytes <= 0 {
		return true
	}
	if d.Idle {
		return r.MemBytes <= d.memBytesCap()
	}
	return d.MemBytesUsed+r.MemBytes <= d.memBytesCap()
}

func (d *DeviceState) memCapacity() float64 {
	if d.MemCapacity <= 0 {
		return 1
	}
	return d.MemCapacity
}

// memBytesCap is the byte-denominated schedulable memory: the physical
// device scaled by the over-commitment factor.
func (d *DeviceState) memBytesCap() int64 {
	return int64(d.memCapacity() * float64(DeviceMemBytes))
}

// Place commits r onto the device, updating residuals and labels. Placing
// onto an idle device first resets its stale labels (a reused pool device
// starts fresh, §4.4).
func (d *DeviceState) Place(r Request) {
	if d.Idle {
		d.Util, d.Mem = 1, d.memCapacity()
		d.MemBytesUsed = 0
		d.Aff = map[string]bool{}
		d.Anti = map[string]bool{}
		d.Excl = ""
		d.Idle = false
	}
	d.Util -= r.Util
	// Both memory denominations deduct from both books: a byte tenant
	// shrinks the fractional residual by its byte equivalent (so later
	// fractional tenants see the space gone) and vice versa. Purely
	// fractional pools never see a byte-driven float change, keeping legacy
	// placements bit-identical.
	mem := r.Mem
	if r.MemBytes > 0 && mem == 0 {
		mem = float64(r.MemBytes) / float64(DeviceMemBytes)
	}
	bytes := r.MemBytes
	if bytes == 0 && r.Mem > 0 {
		bytes = int64(r.Mem * float64(DeviceMemBytes))
	}
	d.Mem -= mem
	d.MemBytesUsed += bytes
	if r.Aff != "" {
		d.Aff[r.Aff] = true
	}
	if r.Anti != "" {
		d.Anti[r.Anti] = true
	}
	d.Excl = r.Excl
}

// Pool is Algorithm 1's D plus the physical capacity needed to decide
// whether a new vGPU can be created.
type Pool struct {
	Devices []*DeviceState
	// FreePhysical maps node name → physical GPUs not yet acquired as vGPUs
	// and not held by native pods.
	FreePhysical map[string]int
	// nextID serializes fresh GPUIDs for new_dev.
	NewID func() string
	// MemFactor scales each device's schedulable memory (1.0 default;
	// >1.0 permits over-commitment backed by the device library's swap).
	MemFactor float64
}

// Outcome classifies a scheduling decision.
type Outcome int

// Decision outcomes.
const (
	// Assigned: the request fits an existing vGPU.
	Assigned Outcome = iota
	// NewDevice: a new vGPU must be created on Decision.NodeName.
	NewDevice
	// Rejected: the locality constraints are unsatisfiable (Algorithm 1's
	// "return -1").
	Rejected
	// NoCapacity: a new vGPU is needed but no physical GPU is free; the
	// request should wait and be retried.
	NoCapacity
)

func (o Outcome) String() string {
	switch o {
	case Assigned:
		return "Assigned"
	case NewDevice:
		return "NewDevice"
	case Rejected:
		return "Rejected"
	case NoCapacity:
		return "NoCapacity"
	}
	return fmt.Sprintf("Outcome(%d)", int(o))
}

// Decision is the result of Algorithm 1 for one request.
type Decision struct {
	Outcome  Outcome
	GPUID    string
	NodeName string
	Reason   string
}

// PlacementPolicy selects the fit heuristics of Algorithm 1's step 3 — an
// ablation knob. The paper's choice is best fit for unlabelled devices and
// worst fit for affinity-labelled ones.
type PlacementPolicy int

// Placement policies.
const (
	// PaperPolicy: best fit on plain devices, worst fit on labelled ones.
	PaperPolicy PlacementPolicy = iota
	// BestBest: best fit on both groups.
	BestBest
	// WorstWorst: worst fit on both groups.
	WorstWorst
	// FirstFit: first fitting device in pool order for both groups.
	FirstFit
)

// Schedule is Algorithm 1: locality- and resource-aware vGPU selection.
// On Assigned/NewDevice it also commits the placement onto the pool state
// (Place), so a sequence of calls sees consistent residuals.
func Schedule(r Request, pool *Pool) Decision {
	return ScheduleWithPolicy(r, pool, PaperPolicy)
}

// ScheduleWithPolicy is Schedule with an explicit step-3 placement policy.
func ScheduleWithPolicy(r Request, pool *Pool, policy PlacementPolicy) Decision {
	// Step 1: affinity-directed placement.
	if r.Aff != "" {
		if d := findAffinity(pool, r.Aff); d != nil {
			if d.Excl != r.Excl {
				return Decision{Outcome: Rejected, Reason: fmt.Sprintf(
					"affinity device %s has exclusion %q, request has %q", d.ID, d.Excl, r.Excl)}
			}
			if r.Anti != "" && d.Anti[r.Anti] {
				return Decision{Outcome: Rejected, Reason: fmt.Sprintf(
					"affinity device %s already hosts anti-affinity label %q", d.ID, r.Anti)}
			}
			if !d.fits(r) {
				return Decision{Outcome: Rejected, Reason: fmt.Sprintf(
					"affinity device %s lacks capacity (util %.2f/%.2f, mem %.2f/%.2f)",
					d.ID, r.Util, d.Util, r.Mem, d.Mem)}
			}
			d.Place(r)
			return Decision{Outcome: Assigned, GPUID: d.ID, NodeName: d.NodeName}
		}
		// First container with this affinity label: prefer an idle device so
		// the group has room to grow, else a new one.
		if d := firstIdle(pool); d != nil {
			d.Place(r)
			return Decision{Outcome: Assigned, GPUID: d.ID, NodeName: d.NodeName}
		}
		return newDevice(r, pool)
	}

	// Step 2: filter by exclusion, anti-affinity and resources. Idle
	// devices always qualify — their previous tenants are gone.
	var candidates []*DeviceState
	for _, d := range pool.Devices {
		if !d.Idle {
			if (r.Excl != "" || d.Excl != "") && r.Excl != d.Excl {
				continue
			}
			if r.Anti != "" && d.Anti[r.Anti] {
				continue
			}
			if !d.fits(r) {
				continue
			}
		}
		candidates = append(candidates, d)
	}

	// Step 3: placement. The paper uses best fit among devices without
	// affinity labels and worst fit among affinity-labelled ones (keeping
	// room for their future group members), then a new device.
	var plain, labelled []*DeviceState
	for _, d := range candidates {
		if len(d.Aff) == 0 || d.Idle {
			plain = append(plain, d)
		} else {
			labelled = append(labelled, d)
		}
	}
	var plainFit, labelledFit func(Request, []*DeviceState) *DeviceState
	switch policy {
	case BestBest:
		plainFit, labelledFit = bestFit, bestFit
	case WorstWorst:
		plainFit, labelledFit = worstFit, worstFit
	case FirstFit:
		plainFit, labelledFit = firstFit, firstFit
	default:
		plainFit, labelledFit = bestFit, worstFit
	}
	d := plainFit(r, plain)
	if d == nil {
		d = labelledFit(r, labelled)
	}
	if d == nil {
		return newDevice(r, pool)
	}
	d.Place(r)
	return Decision{Outcome: Assigned, GPUID: d.ID, NodeName: d.NodeName}
}

// FindAffinity returns the device carrying the affinity label (the pool
// invariant keeps at most one, since affinity forces co-location). Exported
// for the schedfw plugin set, which re-expresses Algorithm 1 in phases.
func FindAffinity(pool *Pool, label string) *DeviceState { return findAffinity(pool, label) }

func findAffinity(pool *Pool, label string) *DeviceState {
	for _, d := range pool.Devices {
		if !d.Idle && d.Aff[label] {
			return d
		}
	}
	return nil
}

// FirstIdle returns an idle pool device, lowest ID first for determinism.
func FirstIdle(pool *Pool) *DeviceState { return firstIdle(pool) }

func firstIdle(pool *Pool) *DeviceState {
	var idle []*DeviceState
	for _, d := range pool.Devices {
		if d.Idle {
			idle = append(idle, d)
		}
	}
	if len(idle) == 0 {
		return nil
	}
	sort.Slice(idle, func(i, j int) bool { return idle[i].ID < idle[j].ID })
	return idle[0]
}

// Residual is the fit metric: remaining compute capacity after placement
// (idle devices count as full). Best fit minimizes it, worst fit maximizes.
func Residual(d *DeviceState) float64 { return residual(d) }

func residual(d *DeviceState) float64 {
	if d.Idle {
		return 1
	}
	return d.Util
}

// bestFit picks the fitting device with the smallest residual — pack
// existing devices tight (idle devices, with residual 1, come last).
func bestFit(r Request, ds []*DeviceState) *DeviceState {
	var best *DeviceState
	for _, d := range ds {
		if !d.fits(r) {
			continue
		}
		if best == nil || residual(d) < residual(best) ||
			(residual(d) == residual(best) && d.ID < best.ID) {
			best = d
		}
	}
	return best
}

// worstFit picks the fitting device with the largest residual — leave the
// most room next to existing affinity groups.
func worstFit(r Request, ds []*DeviceState) *DeviceState {
	var best *DeviceState
	for _, d := range ds {
		if !d.fits(r) {
			continue
		}
		if best == nil || residual(d) > residual(best) ||
			(residual(d) == residual(best) && d.ID < best.ID) {
			best = d
		}
	}
	return best
}

// firstFit picks the first fitting device in pool order (ablation
// baseline).
func firstFit(r Request, ds []*DeviceState) *DeviceState {
	for _, d := range ds {
		if d.fits(r) {
			return d
		}
	}
	return nil
}

// PickNewDeviceNode decides where a fresh vGPU would go — the node with the
// most free physical GPUs (spreading acquisition) — without committing
// anything; "" means the cluster has none left. The schedfw allocator plugin
// uses the decide half alone, deferring the device creation to the
// framework's reserve phase so it can be rolled back.
func PickNewDeviceNode(pool *Pool) string {
	bestNode, bestFree := "", 0
	var nodes []string
	for n := range pool.FreePhysical {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	for _, n := range nodes {
		if free := pool.FreePhysical[n]; free > bestFree {
			bestNode, bestFree = n, free
		}
	}
	return bestNode
}

// NoFreeGPUReason is the NoCapacity reason when no physical GPU is free.
const NoFreeGPUReason = "no free physical GPU in the cluster"

// newDevice decides where a fresh vGPU goes and commits it onto the pool,
// or NoCapacity when the cluster has no physical GPU left.
func newDevice(r Request, pool *Pool) Decision {
	bestNode := PickNewDeviceNode(pool)
	if bestNode == "" {
		return Decision{Outcome: NoCapacity, Reason: NoFreeGPUReason}
	}
	pool.FreePhysical[bestNode]--
	id := pool.NewID()
	d := NewDeviceState(id, bestNode)
	if pool.MemFactor > 0 {
		d.MemCapacity = pool.MemFactor
		d.Mem = pool.MemFactor
	}
	d.Place(r)
	pool.Devices = append(pool.Devices, d)
	return Decision{Outcome: NewDevice, GPUID: id, NodeName: bestNode}
}

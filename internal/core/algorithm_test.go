package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// testPool builds a pool with free physical GPUs and a serial id generator.
func testPool(freePerNode map[string]int) *Pool {
	n := 0
	return &Pool{
		FreePhysical: freePerNode,
		NewID: func() string {
			n++
			return fmt.Sprintf("new-%02d", n)
		},
	}
}

func dev(id, node string, util, mem float64) *DeviceState {
	d := NewDeviceState(id, node)
	d.Util, d.Mem, d.Idle = util, mem, false
	return d
}

func TestScheduleBestFitPacksTightest(t *testing.T) {
	pool := testPool(map[string]int{"n0": 1})
	pool.Devices = []*DeviceState{
		dev("d-loose", "n0", 0.9, 0.9),
		dev("d-tight", "n0", 0.3, 0.3),
	}
	got := Schedule(Request{Util: 0.25, Mem: 0.25}, pool)
	if got.Outcome != Assigned || got.GPUID != "d-tight" {
		t.Fatalf("decision = %+v, want best-fit d-tight", got)
	}
	// Residuals must be committed.
	if math.Abs(pool.Devices[1].Util-0.05) > 1e-9 {
		t.Fatalf("residual not committed: %v", pool.Devices[1].Util)
	}
}

func TestSchedulePrefersExistingOverNew(t *testing.T) {
	pool := testPool(map[string]int{"n0": 3})
	pool.Devices = []*DeviceState{dev("d0", "n0", 0.5, 0.5)}
	got := Schedule(Request{Util: 0.4, Mem: 0.4}, pool)
	if got.Outcome != Assigned || got.GPUID != "d0" {
		t.Fatalf("decision = %+v, want existing d0", got)
	}
}

func TestScheduleNewDeviceWhenNothingFits(t *testing.T) {
	pool := testPool(map[string]int{"n0": 2})
	pool.Devices = []*DeviceState{dev("d0", "n0", 0.2, 0.9)}
	got := Schedule(Request{Util: 0.5, Mem: 0.1}, pool)
	if got.Outcome != NewDevice || got.NodeName != "n0" {
		t.Fatalf("decision = %+v, want NewDevice on n0", got)
	}
	if pool.FreePhysical["n0"] != 1 {
		t.Fatalf("free physical not decremented: %v", pool.FreePhysical)
	}
	if len(pool.Devices) != 2 {
		t.Fatal("new device not added to pool")
	}
}

func TestScheduleNoCapacity(t *testing.T) {
	pool := testPool(map[string]int{})
	pool.Devices = []*DeviceState{dev("d0", "n0", 0.2, 0.2)}
	got := Schedule(Request{Util: 0.5, Mem: 0.1}, pool)
	if got.Outcome != NoCapacity {
		t.Fatalf("decision = %+v, want NoCapacity", got)
	}
}

func TestScheduleIdleDeviceUsedBeforeNew(t *testing.T) {
	pool := testPool(map[string]int{"n0": 5})
	idle := NewDeviceState("d-idle", "n0")
	pool.Devices = []*DeviceState{idle}
	got := Schedule(Request{Util: 0.9, Mem: 0.9}, pool)
	if got.Outcome != Assigned || got.GPUID != "d-idle" {
		t.Fatalf("decision = %+v, want idle reuse", got)
	}
	if idle.Idle {
		t.Fatal("idle flag not cleared after placement")
	}
}

func TestScheduleIdleDeviceResetsStaleLabels(t *testing.T) {
	pool := testPool(nil)
	stale := NewDeviceState("d0", "n0")
	stale.Excl = "old-tenant"
	stale.Anti["old"] = true
	pool.Devices = []*DeviceState{stale}
	got := Schedule(Request{Util: 0.5, Mem: 0.5, Anti: "old"}, pool)
	if got.Outcome != Assigned {
		t.Fatalf("decision = %+v: stale labels on idle device must not filter it", got)
	}
	if stale.Excl != "" || stale.Anti["old-tenant"] {
		t.Fatalf("stale labels survived reuse: %+v", stale)
	}
}

func TestScheduleAffinityColocates(t *testing.T) {
	pool := testPool(map[string]int{"n0": 4})
	first := Schedule(Request{Util: 0.3, Mem: 0.3, Aff: "grp"}, pool)
	if first.Outcome != NewDevice {
		t.Fatalf("first = %+v", first)
	}
	second := Schedule(Request{Util: 0.3, Mem: 0.3, Aff: "grp"}, pool)
	if second.Outcome != Assigned || second.GPUID != first.GPUID {
		t.Fatalf("second = %+v, want same device %s", second, first.GPUID)
	}
}

func TestScheduleAffinityPrefersIdleForNewGroup(t *testing.T) {
	pool := testPool(map[string]int{"n0": 4})
	pool.Devices = []*DeviceState{
		dev("d-busy", "n0", 0.7, 0.7),
		NewDeviceState("d-idle", "n0"),
	}
	got := Schedule(Request{Util: 0.1, Mem: 0.1, Aff: "grp"}, pool)
	if got.Outcome != Assigned || got.GPUID != "d-idle" {
		t.Fatalf("decision = %+v, want idle device for a fresh affinity group", got)
	}
}

func TestScheduleAffinityRejectsOnExclusionMismatch(t *testing.T) {
	pool := testPool(map[string]int{"n0": 4})
	Schedule(Request{Util: 0.2, Mem: 0.2, Aff: "grp", Excl: "tenant-a"}, pool)
	got := Schedule(Request{Util: 0.2, Mem: 0.2, Aff: "grp", Excl: "tenant-b"}, pool)
	if got.Outcome != Rejected {
		t.Fatalf("decision = %+v, want Rejected (exclusion mismatch on affinity device)", got)
	}
}

func TestScheduleAffinityRejectsOnAntiAffinity(t *testing.T) {
	pool := testPool(map[string]int{"n0": 4})
	Schedule(Request{Util: 0.2, Mem: 0.2, Aff: "grp", Anti: "solo"}, pool)
	got := Schedule(Request{Util: 0.2, Mem: 0.2, Aff: "grp", Anti: "solo"}, pool)
	if got.Outcome != Rejected {
		t.Fatalf("decision = %+v, want Rejected (anti-affinity conflict within affinity group)", got)
	}
}

func TestScheduleAffinityRejectsOnCapacity(t *testing.T) {
	pool := testPool(map[string]int{"n0": 4})
	Schedule(Request{Util: 0.8, Mem: 0.2, Aff: "grp"}, pool)
	got := Schedule(Request{Util: 0.5, Mem: 0.2, Aff: "grp"}, pool)
	if got.Outcome != Rejected {
		t.Fatalf("decision = %+v, want Rejected (affinity device full)", got)
	}
}

func TestScheduleAntiAffinitySeparates(t *testing.T) {
	pool := testPool(map[string]int{"n0": 4})
	a := Schedule(Request{Util: 0.2, Mem: 0.2, Anti: "spread"}, pool)
	b := Schedule(Request{Util: 0.2, Mem: 0.2, Anti: "spread"}, pool)
	c := Schedule(Request{Util: 0.2, Mem: 0.2, Anti: "spread"}, pool)
	ids := map[string]bool{a.GPUID: true, b.GPUID: true, c.GPUID: true}
	if len(ids) != 3 {
		t.Fatalf("anti-affinity containers share devices: %v %v %v", a.GPUID, b.GPUID, c.GPUID)
	}
}

func TestScheduleExclusionSeparatesTenants(t *testing.T) {
	pool := testPool(map[string]int{"n0": 4})
	a := Schedule(Request{Util: 0.2, Mem: 0.2, Excl: "tenant-a"}, pool)
	b := Schedule(Request{Util: 0.2, Mem: 0.2, Excl: "tenant-b"}, pool)
	if a.GPUID == b.GPUID {
		t.Fatal("different exclusion labels share a device")
	}
	// Same label may share.
	c := Schedule(Request{Util: 0.2, Mem: 0.2, Excl: "tenant-a"}, pool)
	if c.GPUID != a.GPUID {
		t.Fatalf("same exclusion label split: %v vs %v", c.GPUID, a.GPUID)
	}
}

func TestScheduleExclusionVsUnlabelled(t *testing.T) {
	pool := testPool(map[string]int{"n0": 4})
	a := Schedule(Request{Util: 0.2, Mem: 0.2}, pool)
	b := Schedule(Request{Util: 0.2, Mem: 0.2, Excl: "tenant-a"}, pool)
	if a.GPUID == b.GPUID {
		t.Fatal("exclusion-labelled container shares with unlabelled one")
	}
}

func TestScheduleWorstFitForAffinityDevices(t *testing.T) {
	// Two affinity groups with different residuals; an unlabelled request
	// that fits no plain device must go to the *emptier* affinity device.
	pool := testPool(map[string]int{})
	g1 := dev("d-g1", "n0", 0.3, 0.9)
	g1.Aff["g1"] = true
	g2 := dev("d-g2", "n0", 0.6, 0.9)
	g2.Aff["g2"] = true
	pool.Devices = []*DeviceState{g1, g2}
	got := Schedule(Request{Util: 0.2, Mem: 0.1}, pool)
	if got.Outcome != Assigned || got.GPUID != "d-g2" {
		t.Fatalf("decision = %+v, want worst-fit d-g2", got)
	}
}

func TestScheduleMemoryConstraintFilters(t *testing.T) {
	pool := testPool(map[string]int{"n0": 1})
	pool.Devices = []*DeviceState{dev("d0", "n0", 0.9, 0.05)}
	got := Schedule(Request{Util: 0.1, Mem: 0.2}, pool)
	if got.Outcome != NewDevice {
		t.Fatalf("decision = %+v, want NewDevice (memory exhausted on d0)", got)
	}
}

func TestScheduleNewDeviceSpreadsAcrossNodes(t *testing.T) {
	pool := testPool(map[string]int{"n0": 1, "n1": 3})
	got := Schedule(Request{Util: 0.5, Mem: 0.5}, pool)
	if got.Outcome != NewDevice || got.NodeName != "n1" {
		t.Fatalf("decision = %+v, want new device on n1 (most free)", got)
	}
}

// Property: with ample capacity, affinity co-location holds under any
// submission order — each labelled group lands on exactly one device
// regardless of permutation (constraint satisfaction is order-independent
// even though placement identities differ).
func TestPropertyAffinityOrderIndependent(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		count := int(n%12) + 4
		reqs := make([]Request, count)
		rng := rand.New(rand.NewSource(seed))
		for i := range reqs {
			reqs[i] = Request{
				Util: 0.05,
				Mem:  0.05,
				Aff:  fmt.Sprintf("grp%d", rng.Intn(3)),
			}
		}
		run := func(order []int) map[string]map[string]bool {
			pool := testPool(map[string]int{"n0": 64})
			groups := map[string]map[string]bool{}
			for _, idx := range order {
				dec := Schedule(reqs[idx], pool)
				if dec.Outcome == Rejected || dec.Outcome == NoCapacity {
					return nil
				}
				g := reqs[idx].Aff
				if groups[g] == nil {
					groups[g] = map[string]bool{}
				}
				groups[g][dec.GPUID] = true
			}
			return groups
		}
		fwd := make([]int, count)
		for i := range fwd {
			fwd[i] = i
		}
		perm := rng.Perm(count)
		for _, groups := range []map[string]map[string]bool{run(fwd), run(perm)} {
			if groups == nil {
				return false
			}
			for _, devices := range groups {
				if len(devices) != 1 {
					return false // a group split across devices
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Algorithm 1 never over-commits a device — after any sequence of
// accepted placements, every device's residuals stay ≥ 0, affinity groups
// stay co-located, anti-affinity labels stay unique per device, and devices
// never mix exclusion labels.
func TestPropertyScheduleInvariants(t *testing.T) {
	f := func(raw []uint8) bool {
		pool := testPool(map[string]int{"n0": 4, "n1": 4})
		affDevice := map[string]string{}
		for _, v := range raw {
			r := Request{
				Util: float64(v%9+1) / 10,
				Mem:  float64(v%7+1) / 10,
			}
			switch (v / 16) % 4 {
			case 1:
				r.Aff = fmt.Sprintf("aff%d", v%3)
			case 2:
				r.Anti = fmt.Sprintf("anti%d", v%3)
			case 3:
				r.Excl = fmt.Sprintf("excl%d", v%2)
			}
			dec := Schedule(r, pool)
			if dec.Outcome == Rejected || dec.Outcome == NoCapacity {
				continue
			}
			if r.Aff != "" {
				if prev, ok := affDevice[r.Aff]; ok && prev != dec.GPUID {
					return false // affinity group split
				}
				affDevice[r.Aff] = dec.GPUID
			}
		}
		for _, d := range pool.Devices {
			if !d.Idle && (d.Util < -1e-9 || d.Mem < -1e-9) {
				return false // over-committed
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

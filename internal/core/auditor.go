package core

import (
	"sort"
	"time"

	"kubeshare/internal/kube"
	"kubeshare/internal/kube/apiserver"
	"kubeshare/internal/metrics"
	"kubeshare/internal/obs"
)

// Auditor is the per-tenant fairness accountant: each sampling window it
// differences every tenant's granted-token time (the devlib hold counters)
// against the wall of the window, compares the resulting compute share with
// the tenant's configured gpu_request/gpu_limit, and condenses each GPU's
// tenant ratios into Jain's fairness index. Results are exposed two ways:
// live, as float gauges the scrape endpoint serves
// (kubeshare_tenant_token_share_ratio, kubeshare_gpu_fairness_jain), and
// post-hoc, as the deterministic tables behind `kubeshare-sim audit`.
type Auditor struct {
	pods apiserver.Client[*SharePod]
	// holdVec is the token/replica hold accounting; devVec is the overlap
	// strategies' device-time accounting (kubeshare_sharing_devtime_ns_total).
	// The two sources are disjoint per device — gated strategies meter holds,
	// ungated ones meter device time — so summing their windows never double
	// counts a tenant.
	holdVec  *obs.CounterVec
	devVec   *obs.CounterVec
	shareVec *obs.FloatGaugeVec
	ratioVec *obs.FloatGaugeVec
	jainVec  *obs.FloatGaugeVec
	reqVec   *obs.FloatGaugeVec
	limVec   *obs.FloatGaugeVec

	prev    map[string]int64 // gpu+tenant -> hold ns at the last sample
	prevDev map[string]int64 // gpu+tenant -> device-time ns at the last sample
	last    time.Duration
	windows []AuditWindow
}

// TenantShare is one tenant's accounting over one window on one GPU.
type TenantShare struct {
	GPU    string
	Tenant string
	// Share is the fraction of the window the tenant held the token.
	Share float64
	// Request and Limit are the sharePod's configured bounds.
	Request float64
	Limit   float64
	// Ratio is Share/Request — 1.0 means the guarantee was exactly met.
	// Tenants with no live sharePod report 1.0 (no outstanding demand).
	Ratio float64
	// Active reports whether the tenant's sharePod was live this window.
	Active bool
}

// AuditWindow is one sampling interval's full accounting.
type AuditWindow struct {
	From, To time.Duration
	Tenants  []TenantShare      // sorted by (GPU, Tenant)
	Jain     map[string]float64 // per-GPU Jain index over active ratios
}

// NewAuditor builds an auditor over the cluster's telemetry runtime. With
// observability disabled it still works structurally but sees no hold
// counters, so every report is empty.
func NewAuditor(c *kube.Cluster) *Auditor {
	rt := c.Obs
	return &Auditor{
		pods:     SharePods(c.API),
		holdVec:  rt.CounterVec("kubeshare_devlib_token_hold_ns_total", "gpu_uuid", "tenant"),
		devVec:   rt.CounterVec("kubeshare_sharing_devtime_ns_total", "gpu_uuid", "tenant"),
		shareVec: rt.FloatGaugeVec("kubeshare_tenant_token_share", "gpu_uuid", "tenant"),
		ratioVec: rt.FloatGaugeVec("kubeshare_tenant_token_share_ratio", "gpu_uuid", "tenant"),
		jainVec:  rt.FloatGaugeVec("kubeshare_gpu_fairness_jain", "gpu_uuid"),
		reqVec:   rt.FloatGaugeVec("kubeshare_tenant_gpu_request", "tenant"),
		limVec:   rt.FloatGaugeVec("kubeshare_tenant_gpu_limit", "tenant"),
		prev:     map[string]int64{},
		prevDev:  map[string]int64{},
	}
}

// Sample closes the current window at virtual time now: hold-counter deltas
// become shares and ratios, gauges are refreshed, and the window is
// appended to the report. An in-flight token hold (shorter than one quota)
// is attributed to the window in which it is reclaimed, which keeps the
// accounting deterministic.
func (a *Auditor) Sample(now time.Duration) {
	interval := now - a.last
	if interval <= 0 {
		return
	}
	type spec struct {
		req, lim float64
		active   bool
	}
	specs := map[string]spec{}
	a.pods.Scan(func(sp *SharePod) bool {
		sh := sp.Spec.Share()
		specs[sp.Name] = spec{sh.Request, sh.EffectiveLimit(), !sp.Terminated()}
		a.reqVec.With(sp.Name).Set(sh.Request)
		a.limVec.With(sp.Name).Set(sh.EffectiveLimit())
		return true
	})
	win := AuditWindow{From: a.last, To: now, Jain: map[string]float64{}}
	perGPU := map[string][]float64{}
	account := func(prev map[string]int64) func([]obs.Label, int64) {
		return func(labels []obs.Label, v int64) {
			gpu, tenant := labels[0].Value, labels[1].Value
			key := gpu + "\xff" + tenant
			delta := v - prev[key]
			prev[key] = v
			share := float64(delta) / float64(interval)
			sp := specs[tenant]
			// Ratio semantics: an absent or finished sharePod has no demand, so
			// its guarantee is vacuously met — without this, every completed
			// tenant would read as permanently starved.
			ratio := 1.0
			if sp.active && sp.req > 0 {
				ratio = share / sp.req
				perGPU[gpu] = append(perGPU[gpu], ratio)
			}
			a.shareVec.With(gpu, tenant).Set(share)
			a.ratioVec.With(gpu, tenant).Set(ratio)
			win.Tenants = append(win.Tenants, TenantShare{
				GPU: gpu, Tenant: tenant, Share: share,
				Request: sp.req, Limit: sp.lim, Ratio: ratio, Active: sp.active,
			})
		}
	}
	a.holdVec.Each(account(a.prev))
	// Overlap strategies meter device time instead of token holds; their
	// tenants appear only here (the family is empty in token-only runs, so
	// this visit adds nothing and legacy audits are unchanged).
	a.devVec.Each(account(a.prevDev))
	// Each visits children in sorted-key order, but the 0xff separator does
	// not sort like the report's (GPU, Tenant) columns; normalize.
	sort.Slice(win.Tenants, func(i, j int) bool {
		if win.Tenants[i].GPU != win.Tenants[j].GPU {
			return win.Tenants[i].GPU < win.Tenants[j].GPU
		}
		return win.Tenants[i].Tenant < win.Tenants[j].Tenant
	})
	for gpu, xs := range perGPU {
		j := jain(xs)
		win.Jain[gpu] = j
		a.jainVec.With(gpu).Set(j)
	}
	a.windows = append(a.windows, win)
	a.last = now
}

// jain computes Jain's fairness index (Σx)²/(n·Σx²) over the ratios; 1.0
// is perfectly fair. An empty or all-zero set is vacuously fair.
func jain(xs []float64) float64 {
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// Windows returns the accumulated per-interval accounting.
func (a *Auditor) Windows() []AuditWindow { return a.windows }

// Report condenses the audit into two deterministic tables: per-(GPU,
// tenant) token accounting averaged over the tenant's active windows, and
// per-GPU Jain statistics over windows with at least one active tenant.
func (a *Auditor) Report() (shares, fairness *metrics.Table) {
	type acc struct {
		share, ratio, req, lim float64
		n                      int
	}
	perTenant := map[[2]string]*acc{}
	var tenantKeys [][2]string
	type jacc struct {
		sum, min, last float64
		n              int
	}
	perGPU := map[string]*jacc{}
	var gpuKeys []string
	for _, w := range a.windows {
		for _, t := range w.Tenants {
			if !t.Active {
				continue
			}
			k := [2]string{t.GPU, t.Tenant}
			c, ok := perTenant[k]
			if !ok {
				c = &acc{}
				perTenant[k] = c
				tenantKeys = append(tenantKeys, k)
			}
			c.share += t.Share
			c.ratio += t.Ratio
			c.req, c.lim = t.Request, t.Limit
			c.n++
		}
		for gpu, j := range w.Jain {
			c, ok := perGPU[gpu]
			if !ok {
				c = &jacc{min: j}
				perGPU[gpu] = c
				gpuKeys = append(gpuKeys, gpu)
			}
			c.sum += j
			if j < c.min {
				c.min = j
			}
			c.last = j
			c.n++
		}
	}
	sort.Slice(tenantKeys, func(i, j int) bool {
		if tenantKeys[i][0] != tenantKeys[j][0] {
			return tenantKeys[i][0] < tenantKeys[j][0]
		}
		return tenantKeys[i][1] < tenantKeys[j][1]
	})
	sort.Strings(gpuKeys)
	shares = metrics.NewTable("Per-tenant token accounting (active windows)",
		"gpu_uuid", "tenant", "request", "limit", "mean_share", "mean_ratio", "windows")
	for _, k := range tenantKeys {
		c := perTenant[k]
		shares.AddRow(k[0], k[1], c.req, c.lim,
			c.share/float64(c.n), c.ratio/float64(c.n), c.n)
	}
	fairness = metrics.NewTable("Per-GPU fairness (Jain index over tenant share/request ratios)",
		"gpu_uuid", "windows", "jain_mean", "jain_min", "jain_last")
	for _, gpu := range gpuKeys {
		c := perGPU[gpu]
		fairness.AddRow(gpu, c.n, c.sum/float64(c.n), c.min, c.last)
	}
	return shares, fairness
}

package core

import (
	"fmt"
	"sort"

	"kubeshare/internal/kube/api"
	"kubeshare/internal/kube/apiserver"
	"kubeshare/internal/sim"
)

// ExtenderScheduler is the comparison baseline modelled on the
// scheduler-extender GPU-sharing solutions (Aliyun gpushare, GaiaGPU,
// Deepomatic — §3.1/§6): fractional demands are counted against each
// *node's aggregate* GPU capacity (the scaling-factor trick), and the
// in-node container→device binding is a round-robin the scheduler neither
// sees nor controls.
//
// Because GPUs have no identity at scheduling time, the baseline exhibits
// exactly the Figure 3a pathology: some devices over-committed while others
// idle. It also ignores locality constraint labels — the features Table 1
// marks "No" for these systems.
//
// It consumes the same SharePod objects as KubeShare-Sched (install one or
// the other), and relies on the same DevMgr to materialize pods, so the
// comparison isolates the scheduling policy.
type ExtenderScheduler struct {
	env  *sim.Env
	srv  *apiserver.Server
	cfg  SchedulerConfig
	rr   map[string]int // node → round-robin device cursor
	wake *sim.Queue[struct{}]
	proc *sim.Proc
	// singleDevice restricts binding to device 0 of each node — the
	// Deepomatic-style limitation (Table 1: no multi-GPU-per-node support).
	singleDevice bool
}

// SetSingleDevice switches the baseline into Deepomatic mode: every
// container binds to the node's first GPU, whatever its load.
func (s *ExtenderScheduler) SetSingleDevice(v bool) { s.singleDevice = v }

// VerifySnapshot implements Sched; the extender keeps no incremental view
// (it re-lists per cycle), so there is nothing to cross-check.
func (s *ExtenderScheduler) VerifySnapshot() error { return nil }

// Stats implements Sched. The legacy extender registers no counters, so the
// registry families read zero unless another driver populated them.
func (s *ExtenderScheduler) Stats() SchedStats { return ReadSchedStats(s.srv.Obs()) }

// NewExtenderScheduler creates the baseline scheduler; Start launches it.
//
// Deprecated: construct through schedfw.NewExtender, which runs the same
// aggregate-capacity policy on the batched framework driver. This shim
// remains for one release.
func NewExtenderScheduler(env *sim.Env, srv *apiserver.Server, cfg SchedulerConfig) *ExtenderScheduler {
	if cfg.CycleLatency == 0 {
		cfg.CycleLatency = DefaultCycleLatency
	}
	return &ExtenderScheduler{
		env:  env,
		srv:  srv,
		cfg:  cfg,
		rr:   make(map[string]int),
		wake: sim.NewQueue[struct{}](env),
	}
}

// Start launches the watch and scheduling loops.
func (s *ExtenderScheduler) Start() {
	for _, kind := range []string{KindSharePod, "Pod"} {
		q := s.srv.Watch(kind, kind == KindSharePod)
		s.env.Go("extender-watch-"+kind, func(p *sim.Proc) {
			for {
				if _, ok := q.Get(p); !ok {
					return
				}
				if s.wake.Len() == 0 {
					s.wake.Put(struct{}{})
				}
			}
		})
	}
	s.proc = s.env.Go("extender-sched", func(p *sim.Proc) {
		for {
			if _, ok := s.wake.Get(p); !ok {
				return
			}
			for s.scheduleNext(p) {
			}
		}
	})
}

// Stop terminates the scheduler.
func (s *ExtenderScheduler) Stop() {
	if s.proc != nil {
		s.proc.Kill(nil)
	}
}

func (s *ExtenderScheduler) scheduleNext(p *sim.Proc) bool {
	var pending []*SharePod
	for _, sp := range SharePods(s.srv).List() {
		if !sp.Placed() && !sp.Terminated() {
			pending = append(pending, sp)
		}
	}
	if len(pending) == 0 {
		return false
	}
	sortByAge(pending)
	p.Sleep(s.cfg.CycleLatency)
	committedUtil, committedMem := s.aggregates()
	for _, cand := range pending {
		sp, err := SharePods(s.srv).Get(cand.Name)
		if err != nil || sp.Placed() || sp.Terminated() {
			continue
		}
		node, gpus := s.pickNode(sp, committedUtil, committedMem)
		if node == "" {
			continue // no aggregate capacity anywhere; retry on change
		}
		// Round-robin in-node device binding — the piece the extender
		// architecture cannot make device-load-aware. Deepomatic mode pins
		// everything to device 0.
		idx := 0
		if !s.singleDevice {
			idx = s.rr[node] % gpus
			s.rr[node]++
		}
		gpuID := fmt.Sprintf("ext-%s-gpu%d", node, idx)
		_, err = SharePods(s.srv).Mutate(sp.Name, func(cur *SharePod) error {
			cur.Spec.GPUID = gpuID
			cur.Spec.NodeName = node
			return nil
		})
		if err != nil && !apiserver.IsNotFound(err) {
			panic(fmt.Sprintf("extender: assign %s: %v", sp.Name, err))
		}
		_, err = SharePods(s.srv).MutateStatus(sp.Name, func(cur *SharePod) error {
			cur.Status.Phase = SharePodScheduled
			cur.Status.ScheduledTime = s.env.Now()
			return nil
		})
		if err != nil && !apiserver.IsNotFound(err) {
			panic(fmt.Sprintf("extender: assign %s: %v", sp.Name, err))
		}
		return true
	}
	return false
}

// aggregates sums live fractional commitments per node.
func (s *ExtenderScheduler) aggregates() (util, mem map[string]float64) {
	util = map[string]float64{}
	mem = map[string]float64{}
	for _, sp := range SharePods(s.srv).List() {
		if sp.Placed() && !sp.Terminated() {
			util[sp.Spec.NodeName] += sp.Spec.GPURequest
			mem[sp.Spec.NodeName] += sp.Spec.GPUMem
		}
	}
	return util, mem
}

// pickNode selects the node with the most free aggregate capacity that fits
// the request. It returns the node name and its GPU count.
func (s *ExtenderScheduler) pickNode(sp *SharePod, util, mem map[string]float64) (string, int) {
	type cand struct {
		name string
		free float64
		gpus int
	}
	var fits []cand
	for _, node := range apiserver.Nodes(s.srv).List() {
		gpus := int(node.Status.Allocatable[api.ResourceGPU])
		if gpus == 0 {
			continue
		}
		capacity := float64(gpus)
		if util[node.Name]+sp.Spec.GPURequest > capacity+1e-9 {
			continue
		}
		if mem[node.Name]+sp.Spec.GPUMem > capacity+1e-9 {
			continue
		}
		fits = append(fits, cand{node.Name, capacity - util[node.Name], gpus})
	}
	if len(fits) == 0 {
		return "", 0
	}
	sort.Slice(fits, func(i, j int) bool {
		if fits[i].free != fits[j].free {
			return fits[i].free > fits[j].free
		}
		return fits[i].name < fits[j].name
	})
	util[fits[0].name] += sp.Spec.GPURequest
	mem[fits[0].name] += sp.Spec.GPUMem
	return fits[0].name, fits[0].gpus
}

package core

import (
	"fmt"
	"testing"

	"kubeshare/internal/kube/api"
	"kubeshare/internal/kube/apiserver"
	"kubeshare/internal/sim"
)

// benchPopulate fills an API server with n placed sharePods over 4-GPU
// nodes, mirroring the Fig 11 harness.
func benchPopulate(n int) *apiserver.Server {
	env := sim.NewEnv()
	srv := apiserver.New(env)
	nodes := n/8 + 1
	for i := 0; i < nodes; i++ {
		node := &api.Node{
			ObjectMeta: api.ObjectMeta{Name: fmt.Sprintf("node-%d", i)},
			Status: api.NodeStatus{
				Capacity:    api.ResourceList{api.ResourceGPU: 4},
				Allocatable: api.ResourceList{api.ResourceGPU: 4},
				Ready:       true,
			},
		}
		if _, err := apiserver.Nodes(srv).Create(node); err != nil {
			panic(err)
		}
	}
	for i := 0; i < n; i++ {
		sp := &SharePod{
			ObjectMeta: api.ObjectMeta{Name: fmt.Sprintf("sp-%05d", i)},
			Spec: SharePodSpec{
				GPURequest: 0.2, GPULimit: 0.3, GPUMem: 0.2,
				GPUID:    fmt.Sprintf("vgpu-%04d", i%(nodes*4)),
				NodeName: fmt.Sprintf("node-%d", i%nodes),
				Pod:      api.PodSpec{Containers: []api.Container{{Name: "c", Image: "i"}}},
			},
			Status: SharePodStatus{Phase: SharePodRunning},
		}
		if _, err := SharePods(srv).Create(sp); err != nil {
			panic(err)
		}
	}
	return srv
}

// BenchmarkAlgorithm1 measures a single Schedule call against pools of
// varying size — the pure-decision cost underneath Figure 11.
func BenchmarkAlgorithm1(b *testing.B) {
	for _, devices := range []int{4, 32, 256} {
		b.Run(fmt.Sprintf("devices=%d", devices), func(b *testing.B) {
			mk := func() *Pool {
				n := 0
				pool := &Pool{
					FreePhysical: map[string]int{"n0": 4},
					NewID: func() string {
						n++
						return fmt.Sprintf("new-%d", n)
					},
				}
				for i := 0; i < devices; i++ {
					d := NewDeviceState(fmt.Sprintf("d%03d", i), "n0")
					d.Idle = false
					d.Util = float64(i%10) / 10
					d.Mem = 0.5
					pool.Devices = append(pool.Devices, d)
				}
				return pool
			}
			pool := mk()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Schedule(Request{Util: 0.05, Mem: 0.01}, pool)
				if i%512 == 511 {
					b.StopTimer()
					pool = mk() // residuals exhausted; rebuild
					b.StartTimer()
				}
			}
		})
	}
}

// BenchmarkBuildPool measures pool derivation from API state (the other
// half of a scheduling cycle).
func BenchmarkBuildPool(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("sharepods=%d", n), func(b *testing.B) {
			srv := benchPopulate(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				BuildPool(srv, func() string { return "x" })
			}
		})
	}
}

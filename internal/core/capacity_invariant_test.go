package core_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	. "kubeshare/internal/core"
	"kubeshare/internal/core/schedfw"
	"kubeshare/internal/kube/api"
	"kubeshare/internal/kube/apiserver"
	"kubeshare/internal/sim"
)

// TestSchedulerSnapshotCapacityInvariant drives the framework scheduler
// over a randomized submission sequence on a bare API server and
// cross-checks that the decisions recorded on the sharePods respect
// Algorithm 1's capacity bounds (per-device commitment sums ≤ 1; no more
// devices than physical GPUs).
func TestSchedulerSnapshotCapacityInvariant(t *testing.T) {
	env := sim.NewEnv()
	srv := apiserver.New(env)
	srv.RegisterValidator(KindSharePod, ValidateSharePod)
	for _, n := range []string{"n-0", "n-1"} {
		capacity := api.ResourceList{api.ResourceCPU: 32000, api.ResourceGPU: 2}
		apiserver.Nodes(srv).Create(&api.Node{
			ObjectMeta: api.ObjectMeta{Name: n},
			Status:     api.NodeStatus{Capacity: capacity, Allocatable: capacity.Clone(), Ready: true},
		})
	}
	sched := schedfw.New(env, srv)
	sched.Start()
	rng := rand.New(rand.NewSource(3))
	env.Go("submit", func(p *sim.Proc) {
		for i := 0; i < 40; i++ {
			sp := &SharePod{
				ObjectMeta: api.ObjectMeta{Name: fmt.Sprintf("sp-%03d", i)},
				Spec: SharePodSpec{
					Pod:        api.PodSpec{Containers: []api.Container{{Name: "c", Image: "i"}}},
					GPURequest: 0.2 + 0.1*float64(rng.Intn(3)),
					GPUMem:     0.2,
				},
			}
			if _, err := SharePods(srv).Create(sp); err != nil {
				t.Errorf("create: %v", err)
			}
			p.Sleep(20 * time.Millisecond)
		}
	})
	env.Run()
	sched.Stop()

	// Algorithm 1 capacity invariant: per-device commitment sums ≤ 1.
	util := map[string]float64{}
	mem := map[string]float64{}
	placed := 0
	for _, sp := range SharePods(srv).List() {
		if !sp.Placed() || sp.Terminated() {
			continue
		}
		placed++
		util[sp.Spec.GPUID] += sp.Spec.GPURequest
		mem[sp.Spec.GPUID] += sp.Spec.GPUMem
	}
	if placed == 0 {
		t.Fatal("nothing placed")
	}
	for id, u := range util {
		if u > 1+1e-9 || mem[id] > 1+1e-9 {
			t.Fatalf("device %s over-committed: util %v mem %v", id, u, mem[id])
		}
	}
	// 4 physical GPUs total: never more than 4 distinct devices.
	if len(util) > 4 {
		t.Fatalf("%d devices carved from 4 physical GPUs", len(util))
	}
}

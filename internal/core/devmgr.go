package core

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"time"

	"kubeshare/internal/devlib"
	"kubeshare/internal/devlib/sharing"
	"kubeshare/internal/kube/api"
	"kubeshare/internal/kube/apiserver"
	"kubeshare/internal/kube/labels"
	"kubeshare/internal/kube/store"
	"kubeshare/internal/obs"
	"kubeshare/internal/sim"
)

// errVGPULost marks a vGPU whose physical backing disappeared mid-bind
// (holder pod death that recovery could not ride out). Binds seeing it
// requeue the sharePod instead of failing it.
var errVGPULost = errors.New("core: vGPU lost")

// PoolPolicy controls what happens to a vGPU when its last tenant leaves
// (§4.4): OnDemand releases the physical GPU back to Kubernetes
// immediately; Reservation keeps the vGPU idle in the pool, eliminating
// acquisition latency for the next request at the cost of holding the GPU;
// Hybrid keeps up to IdleReserve idle vGPUs and releases the rest — the
// "hybrid strategy" the paper sketches.
type PoolPolicy int

// Pool policies.
const (
	OnDemand PoolPolicy = iota
	Reservation
	Hybrid
)

// DevMgrConfig parameterizes KubeShare-DevMgr.
type DevMgrConfig struct {
	// Policy is the idle-vGPU policy (paper default: on-demand).
	Policy PoolPolicy
	// IdleReserve is the idle-vGPU target kept under the Hybrid policy.
	IdleReserve int
	// OpLatency models one DevMgr operation (vGPU info query plus bound-pod
	// construction).
	OpLatency time.Duration
	// RecoveryTimeout bounds how long a dead vGPU pod's replacement may take
	// to come up before the vGPU is written off and its tenants requeued
	// (default 30s).
	RecoveryTimeout time.Duration
}

// DefaultOpLatency is used when OpLatency is zero. It covers the vGPU info
// query and bound-pod construction; together with the scheduling cycle it
// produces the paper's ≈15% creation overhead when no vGPU must be created
// (Fig 10). Binds run concurrently, so the overhead stays constant under
// concurrent requests.
const DefaultOpLatency = 150 * time.Millisecond

// HolderImage is the image of the native pods DevMgr launches to acquire
// physical GPUs from Kubernetes. Its sole purpose is to hold the GPU and
// report the device UUID from its environment (§4.4).
const HolderImage = "kubeshare/vgpu-holder"

// DevMgr is KubeShare-DevMgr: the custom controller that owns the vGPU
// pool, converts GPUIDs to physical UUIDs, creates the bound pods with
// explicit device binding, and reflects bound-pod status back onto
// sharePods.
type DevMgr struct {
	env *sim.Env
	srv *apiserver.Server
	cfg DevMgrConfig

	// creating single-flights vGPU acquisition per GPUID; the event fires
	// with the UUID (string) or an error.
	creating map[string]*sim.Event
	// uuidReports delivers NVIDIA_VISIBLE_DEVICES from holder pods, keyed
	// by holder pod name.
	uuidReports map[string]*sim.Event
	// binding marks sharePods whose bind workflow is in flight.
	binding map[string]bool
	// tenants caches each vGPU's live tenant set (gpuID → sharePod names),
	// maintained from watch deltas so reconcileVGPU no longer lists every
	// sharePod to decide whether a device went idle.
	tenants map[string]map[string]bool
	// idle caches the gpuIDs currently in VGPUIdle phase (DevMgr is the only
	// phase writer), so the Hybrid policy's reserve check is O(1).
	idle map[string]bool
	// placedGPU remembers each live sharePod's last-seen placement, so a
	// requeue (placement cleared under a live sharePod) releases the old
	// device's tenant entry.
	placedGPU map[string]string
	// holderGen counts holder incarnations per gpuID (0 = original).
	holderGen map[string]int
	// recovering single-flights vGPU recovery per gpuID.
	recovering map[string]bool
	// backends resolves a node's device-library daemon, for suspending and
	// resuming token managers across vGPU pod restarts (see SetBackends).
	backends map[string]*devlib.Backend

	reflectors []*apiserver.Reflector
	procs      []*sim.Proc

	// Telemetry. Recovery counts live on the obs registry (atomics), so
	// Recoveries() is safe to read while the controller runs; the rest
	// no-op when obs is off.
	tracer        *obs.Tracer
	recorder      *obs.Recorder
	vgpuCreates   *obs.Counter
	recoveries    *obs.Counter
	recoveryFails *obs.Counter
	binds         *obs.Counter
	bindHist      *obs.Histogram
}

// NewDevMgr creates KubeShare-DevMgr; Start launches it.
func NewDevMgr(env *sim.Env, srv *apiserver.Server, cfg DevMgrConfig) *DevMgr {
	if cfg.OpLatency == 0 {
		cfg.OpLatency = DefaultOpLatency
	}
	if cfg.RecoveryTimeout == 0 {
		cfg.RecoveryTimeout = 30 * time.Second
	}
	rt := srv.Obs()
	return &DevMgr{
		env:           env,
		srv:           srv,
		cfg:           cfg,
		creating:      make(map[string]*sim.Event),
		uuidReports:   make(map[string]*sim.Event),
		binding:       make(map[string]bool),
		tenants:       make(map[string]map[string]bool),
		idle:          make(map[string]bool),
		placedGPU:     make(map[string]string),
		holderGen:     make(map[string]int),
		recovering:    make(map[string]bool),
		backends:      make(map[string]*devlib.Backend),
		tracer:        rt.Tracer(),
		recorder:      rt.EventSource("kubeshare-devmgr"),
		vgpuCreates:   rt.Counter("kubeshare_devmgr_vgpu_creates_total"),
		recoveries:    rt.Counter("kubeshare_devmgr_vgpu_recoveries_total"),
		recoveryFails: rt.Counter("kubeshare_devmgr_vgpu_recovery_fails_total"),
		binds:         rt.Counter("kubeshare_devmgr_binds_total"),
		bindHist:      rt.Histogram("kubeshare_devmgr_bind_seconds"),
	}
}

// SetBackends wires the per-node device-library daemons in, so recovery can
// suspend and resume the token manager of a dying vGPU pod. Call before
// Start.
func (m *DevMgr) SetBackends(backends map[string]*devlib.Backend) {
	m.backends = backends
}

// Recoveries returns (attempted, failed) vGPU recovery counts. Both are
// obs registry counters, safe to read concurrently with the controller
// loops; they report zero when the cluster runs without observability.
func (m *DevMgr) Recoveries() (int64, int64) {
	return m.recoveries.Value(), m.recoveryFails.Value()
}

// TenantView returns a copy of the tenant cache (gpuID → sorted sharePod
// names). Chaos soaks check it against the live placed sharePods: a
// divergence means a leaked or orphaned tenant entry.
func (m *DevMgr) TenantView() map[string][]string {
	out := make(map[string][]string, len(m.tenants))
	for gpuID, set := range m.tenants {
		names := make([]string, 0, len(set))
		for name := range set {
			names = append(names, name)
		}
		sort.Strings(names)
		out[gpuID] = names
	}
	return out
}

// ReportUUID is called by the holder image entrypoint to deliver the device
// UUID it found in its environment — the stand-in for DevMgr reading the
// environment variable inside the launched container.
func (m *DevMgr) ReportUUID(holderPod, uuid string) {
	ev, ok := m.uuidReports[holderPod]
	if !ok {
		ev = sim.NewEvent(m.env)
		m.uuidReports[holderPod] = ev
	}
	ev.Trigger(uuid)
}

func (m *DevMgr) uuidReport(holderPod string) *sim.Event {
	ev, ok := m.uuidReports[holderPod]
	if !ok {
		ev = sim.NewEvent(m.env)
		m.uuidReports[holderPod] = ev
	}
	return ev
}

// failUUIDWaiters forgets a holder's report channel, first waking anyone
// still waiting on it with errVGPULost. A holder that died before reporting
// will never trigger its event; silently deleting the map entry would strand
// the waiting bind forever (holding its single-flight flags), which is
// exactly the wedge the chaos soak caught. Trigger is idempotent, so holders
// that already reported are unaffected.
func (m *DevMgr) failUUIDWaiters(holderPod string) {
	if ev, ok := m.uuidReports[holderPod]; ok {
		ev.Trigger(fmt.Errorf("%w: holder %s died before reporting", errVGPULost, holderPod))
		delete(m.uuidReports, holderPod)
	}
}

// Start launches the sharePod, bound-pod and holder-pod watch loops. All
// three ride reflectors, so dropped watches resume (or relist) without
// losing deltas.
func (m *DevMgr) Start() {
	spR := m.srv.NewNamedReflector("kubeshare-devmgr", KindSharePod, apiserver.WatchOptions{Replay: true})
	m.reflectors = append(m.reflectors, spR)
	m.procs = append(m.procs, m.env.Go("kubeshare-devmgr", func(p *sim.Proc) {
		for {
			ev, ok := spR.Get(p)
			if !ok {
				return
			}
			sp := ev.Object.(*SharePod)
			switch ev.Type {
			case store.Deleted:
				m.onSharePodGone(sp)
				delete(m.placedGPU, sp.Name)
			default:
				// Maintain the tenant cache, including the requeue edge: a
				// live sharePod whose placement was cleared (or moved) must
				// release its old device.
				cur := ""
				if sp.Placed() && !sp.Terminated() {
					cur = sp.Spec.GPUID
				}
				if old, ok := m.placedGPU[sp.Name]; ok && old != cur {
					m.removeTenant(old, sp.Name)
					m.reconcileVGPU(old)
				}
				if cur != "" {
					m.placedGPU[sp.Name] = cur
					m.addTenant(cur, sp.Name)
				} else {
					delete(m.placedGPU, sp.Name)
					if sp.Placed() && sp.Terminated() {
						m.removeTenant(sp.Spec.GPUID, sp.Name)
					}
				}
				if sp.Placed() && !sp.Terminated() && sp.Status.BoundPod == "" && !m.binding[sp.Name] {
					m.binding[sp.Name] = true
					name := sp.Name
					m.env.Go("devmgr-bind-"+name, func(bp *sim.Proc) {
						defer delete(m.binding, name)
						// Loop until the placement is stable: a sharePod
						// requeued and re-placed while a bind was in flight
						// would otherwise be swallowed — the watch event
						// arrives while the binding flag is still set, and
						// the stale bind exits on its placement-changed
						// guard with nobody left to bind the new placement.
						for {
							cur, err := SharePods(m.srv).Get(name)
							if err != nil || cur.Terminated() || !cur.Placed() || cur.Status.BoundPod != "" {
								return
							}
							m.bind(bp, cur)
						}
					})
				}
			}
		}
	}))
	// Only bound pods (stamped with LabelSharePod) matter here; the filter
	// runs server-side, so holder pods and unrelated cluster pods never
	// reach this loop.
	podR := m.srv.NewNamedReflector("kubeshare-devmgr", "Pod", apiserver.WatchOptions{
		Selector: labels.HasKey(LabelSharePod),
		Replay:   true,
	})
	m.reflectors = append(m.reflectors, podR)
	m.procs = append(m.procs, m.env.Go("kubeshare-devmgr-pods", func(p *sim.Proc) {
		for {
			ev, ok := podR.Get(p)
			if !ok {
				return
			}
			if ev.Type == store.Deleted {
				continue
			}
			pod := ev.Object.(*api.Pod)
			m.reflectPodStatus(pod.Labels[LabelSharePod], pod)
		}
	}))
	// Holder-pod stream: a holder that dies (killed container, evicted node)
	// while its vGPU still exists triggers recovery.
	holderR := m.srv.NewNamedReflector("kubeshare-devmgr", "Pod", apiserver.WatchOptions{
		Selector: labels.HasKey(LabelVGPUHolder),
		Replay:   true,
	})
	m.reflectors = append(m.reflectors, holderR)
	m.procs = append(m.procs, m.env.Go("kubeshare-devmgr-holders", func(p *sim.Proc) {
		for {
			ev, ok := holderR.Get(p)
			if !ok {
				return
			}
			pod := ev.Object.(*api.Pod)
			if ev.Type == store.Deleted || pod.Terminated() {
				m.onHolderDown(pod)
			}
		}
	}))
}

// addTenant records a live placed sharePod on its vGPU (idempotent).
func (m *DevMgr) addTenant(gpuID, spName string) {
	set, ok := m.tenants[gpuID]
	if !ok {
		set = make(map[string]bool)
		m.tenants[gpuID] = set
	}
	set[spName] = true
}

// removeTenant drops a sharePod from its vGPU's tenant set (idempotent).
func (m *DevMgr) removeTenant(gpuID, spName string) {
	if set, ok := m.tenants[gpuID]; ok {
		delete(set, spName)
		if len(set) == 0 {
			delete(m.tenants, gpuID)
		}
	}
}

// Stop terminates the controller loops.
func (m *DevMgr) Stop() {
	for _, p := range m.procs {
		p.Kill(nil)
	}
	for _, r := range m.reflectors {
		r.Stop()
	}
}

// onHolderDown reacts to a dead holder pod. Expected teardowns (the vGPU
// object is gone, or the pod is a stale incarnation) are ignored; anything
// else starts a recovery proc for the vGPU.
func (m *DevMgr) onHolderDown(pod *api.Pod) {
	gpuID := pod.Labels[LabelVGPUHolder]
	if gpuID == "" || m.recovering[gpuID] {
		return
	}
	v, err := VGPUs(m.srv).Get(gpuID)
	if err != nil || v.Status.HolderPod != pod.Name {
		return
	}
	m.recovering[gpuID] = true
	// Single-flight with binds: ensureVGPU waits on this event instead of
	// racing a fresh acquisition against the recovery.
	ev := sim.NewEvent(m.env)
	m.creating[gpuID] = ev
	deadHolder := pod.Name
	m.procs = append(m.procs, m.env.Go("devmgr-recover-"+gpuID, func(p *sim.Proc) {
		defer func() {
			delete(m.recovering, gpuID)
			if m.creating[gpuID] == ev {
				delete(m.creating, gpuID)
			}
		}()
		m.recoverVGPU(p, gpuID, deadHolder, ev)
	}))
}

// recoverVGPU replaces a dead vGPU pod: the device's token manager is
// suspended (queued acquires fail over to the frontends' reconnect loops),
// a fresh holder incarnation is launched, and on success the manager
// resumes — surviving tenants re-register and continue. If the replacement
// reports a different physical device, or never comes up, the vGPU is
// written off and its tenants requeued.
func (m *DevMgr) recoverVGPU(p *sim.Proc, gpuID, deadHolder string, done *sim.Event) {
	m.recoveries.Inc()
	span := m.tracer.Start("devmgr", "recover", KindVGPU+"/"+gpuID)
	v, err := VGPUs(m.srv).Get(gpuID)
	if err != nil {
		span.EndNote("failed: vGPU gone")
		done.Trigger(fmt.Errorf("%w: %s", errVGPULost, gpuID))
		return
	}
	oldUUID := v.Status.UUID
	var strat sharing.Strategy
	if b := m.backends[v.Spec.NodeName]; b != nil && oldUUID != "" {
		// Suspend whatever strategy serves the device (in the default mode
		// this is the same TokenManager the pre-strategy code suspended).
		strat = b.StrategyOf(oldUUID)
		if strat == nil {
			strat = b.Strategy(oldUUID)
		}
		strat.Suspend()
		m.recorder.Eventf(KindVGPU, gpuID, obs.EventNormal, "TokenManagerSuspended",
			"token manager %s suspended for recovery", oldUUID)
	}
	m.failUUIDWaiters(deadHolder)
	m.holderGen[gpuID]++
	holder := holderPodName(gpuID, m.holderGen[gpuID])
	_, _ = VGPUs(m.srv).MutateStatus(gpuID, func(cur *VGPU) error {
		cur.Status.Phase = VGPUCreating
		cur.Status.HolderPod = holder
		cur.Status.UUID = "" // stale binds must wait for the new backing
		return nil
	})
	// Remove the corpse (KillPod leaves a Failed pod object; eviction has
	// already deleted it) so the node's GPU is free for the replacement.
	if err := apiserver.Pods(m.srv).Delete(deadHolder); err != nil && !apiserver.IsNotFound(err) {
		panic(fmt.Sprintf("kubeshare-devmgr: delete dead holder: %v", err))
	}
	replacement := &api.Pod{
		ObjectMeta: api.ObjectMeta{
			Name:      holder,
			Labels:    map[string]string{LabelVGPUHolder: gpuID},
			OwnerName: KindVGPU + "/" + gpuID,
		},
		Spec: api.PodSpec{
			NodeName: v.Spec.NodeName,
			Containers: []api.Container{{
				Name:     "holder",
				Image:    HolderImage,
				Requests: api.ResourceList{api.ResourceGPU: 1},
			}},
		},
	}
	uuid := ""
	if _, err := apiserver.Pods(m.srv).Create(replacement); err == nil || apiserver.IsExists(err) {
		if val, ok := p.WaitTimeout(m.uuidReport(holder), m.cfg.RecoveryTimeout); ok {
			uuid, _ = val.(string)
		}
	}
	if strat != nil {
		strat.Resume()
		m.recorder.Eventf(KindVGPU, gpuID, obs.EventNormal, "TokenManagerResumed",
			"token manager %s resumed", oldUUID)
	}
	if uuid == "" {
		// Node dead or no GPU free: write the vGPU off. Tenants requeue and
		// Algorithm 1 re-places them wherever capacity lives now.
		m.recoveryFails.Inc()
		m.recorder.Eventf(KindVGPU, gpuID, obs.EventWarning, "RecoveryFailed",
			"no replacement holder came up; vGPU written off")
		span.EndNote("failed: written off")
		m.dropVGPU(gpuID, holder)
		done.Trigger(fmt.Errorf("%w: %s", errVGPULost, gpuID))
		return
	}
	_, _ = VGPUs(m.srv).MutateStatus(gpuID, func(cur *VGPU) error {
		cur.Status.Phase = VGPUActive
		cur.Status.UUID = uuid
		return nil
	})
	if uuid != oldUUID && oldUUID != "" {
		// The replacement pinned a different physical device; the tenants'
		// containers are wired to the old UUID. Requeue them — their
		// replacements bind against the new backing.
		m.evictTenants(gpuID)
	}
	m.recorder.Eventf(KindVGPU, gpuID, obs.EventNormal, "Recovered",
		"holder %s up on %s", holder, uuid)
	span.EndNote("uuid=%s", uuid)
	done.Trigger(uuid)
}

// dropVGPU writes a vGPU off: tenants are requeued (via bound-pod deletion
// when one exists, directly otherwise), then the holder and the VGPU object
// are removed.
func (m *DevMgr) dropVGPU(gpuID, holder string) {
	m.evictTenants(gpuID)
	if err := apiserver.Pods(m.srv).Delete(holder); err != nil && !apiserver.IsNotFound(err) {
		panic(fmt.Sprintf("kubeshare-devmgr: delete holder: %v", err))
	}
	if err := VGPUs(m.srv).Delete(gpuID); err != nil && !apiserver.IsNotFound(err) {
		panic(fmt.Sprintf("kubeshare-devmgr: delete vGPU: %v", err))
	}
	delete(m.idle, gpuID)
	m.failUUIDWaiters(holder)
}

// evictTenants requeues every live tenant of a vGPU. Tenants with a bound
// pod are requeued by deleting it (the scheduler's pod-deletion hook);
// tenants still binding are requeued directly.
func (m *DevMgr) evictTenants(gpuID string) {
	names := make([]string, 0, len(m.tenants[gpuID]))
	for name := range m.tenants[gpuID] {
		names = append(names, name)
	}
	sort.Strings(names)
	sps := SharePods(m.srv)
	for _, name := range names {
		sp, err := sps.Get(name)
		if err != nil || sp.Terminated() {
			continue
		}
		if sp.Status.BoundPod != "" {
			if err := apiserver.Pods(m.srv).Delete(sp.Status.BoundPod); err != nil && !apiserver.IsNotFound(err) {
				panic(fmt.Sprintf("kubeshare-devmgr: evict tenant %s: %v", name, err))
			}
		} else {
			RequeueSharePod(m.srv, name)
		}
	}
}

// bind realizes one scheduled sharePod: ensure its vGPU exists, then create
// the bound pod with the explicit device binding.
func (m *DevMgr) bind(p *sim.Proc, sp *SharePod) {
	span := m.tracer.Start("devmgr", "bind", KindSharePod+"/"+sp.Name)
	bindStart := m.env.Now()
	uuid, err := m.ensureVGPU(p, sp.Spec.GPUID, sp.Spec.NodeName)
	if err != nil {
		span.EndNote("failed: %v", err)
		if errors.Is(err, errVGPULost) {
			// The backing died mid-bind; requeue rather than fail — the
			// request is fine, the device was not. Guard against the
			// sharePod having already been re-placed elsewhere while the
			// doomed acquisition ran: only the still-current placement is
			// cleared.
			if cur, gerr := SharePods(m.srv).Get(sp.Name); gerr == nil && cur.Spec.GPUID == sp.Spec.GPUID {
				RequeueSharePod(m.srv, sp.Name)
			}
		} else {
			m.failSharePod(sp.Name, fmt.Sprintf("vGPU %s: %v", sp.Spec.GPUID, err))
		}
		return
	}
	m.tracer.Mark("devmgr", "holder-ready", KindSharePod+"/"+sp.Name,
		"gpuid="+sp.Spec.GPUID+" uuid="+uuid)
	p.Sleep(m.cfg.OpLatency)
	// The sharePod may have been deleted, requeued elsewhere, or already
	// bound while the vGPU was created.
	cur, err := SharePods(m.srv).Get(sp.Name)
	if err != nil || cur.Terminated() {
		span.EndNote("abandoned: sharePod gone")
		m.reconcileVGPU(sp.Spec.GPUID)
		return
	}
	if cur.Spec.GPUID != sp.Spec.GPUID || cur.Status.BoundPod != "" {
		span.EndNote("abandoned: stale placement")
		return // a newer watch event drives the current placement
	}
	spec := sp.Spec.Pod.Clone()
	spec.NodeName = sp.Spec.NodeName // explicit binding: no kube-scheduler involvement
	for i := range spec.Containers {
		c := &spec.Containers[i]
		if c.Env == nil {
			c.Env = map[string]string{}
		}
		// The paper's DevMgr converts GPUID to UUID and sets
		// NVIDIA_VISIBLE_DEVICES itself (§4.4); admission guarantees the
		// spec requests no device plugin resource, so the physical GPU
		// stays pinned solely by the holder pod.
		c.Env["NVIDIA_VISIBLE_DEVICES"] = uuid
	}
	ann := map[string]string{
		AnnGPURequest: formatFloat(sp.Spec.GPURequest),
		AnnGPULimit:   formatFloat(sp.Spec.Share().EffectiveLimit()),
		AnnGPUMem:     formatFloat(sp.Spec.GPUMem),
		AnnGPUID:      sp.Spec.GPUID,
	}
	// The byte-quantity and mode annotations are stamped only when used, so
	// legacy bound pods keep their exact annotation set.
	if sp.Spec.GPUMemBytes > 0 {
		ann[AnnGPUMemBytes] = strconv.FormatInt(sp.Spec.GPUMemBytes, 10)
	}
	if sp.Spec.SharingMode != "" {
		ann[AnnSharingMode] = sp.Spec.SharingMode
	}
	pod := &api.Pod{
		ObjectMeta: api.ObjectMeta{
			Name:        boundPodName(sp.Name, cur.Status.Restarts),
			Labels:      map[string]string{LabelSharePod: sp.Name},
			Annotations: ann,
			OwnerName:   KindSharePod + "/" + sp.Name,
		},
		Spec: spec,
	}
	if _, err := apiserver.Pods(m.srv).Create(pod); err != nil && !apiserver.IsExists(err) {
		span.EndNote("failed: %v", err)
		m.failSharePod(sp.Name, fmt.Sprintf("create bound pod: %v", err))
		return
	}
	m.updateSharePod(sp.Name, func(cur *SharePod) {
		cur.Status.BoundPod = pod.Name
		cur.Status.UUID = uuid
	})
	m.markVGPU(sp.Spec.GPUID, VGPUActive)
	m.binds.Inc()
	m.bindHist.ObserveDurationExemplar(m.env.Now()-bindStart, KindSharePod+"/"+sp.Name, span.ID())
	span.EndNote("pod=%s uuid=%s", pod.Name, uuid)
}

// ensureVGPU returns the physical UUID behind gpuID, acquiring a GPU from
// Kubernetes (via a holder pod) when the vGPU does not exist yet. Creation
// is single-flighted per GPUID.
func (m *DevMgr) ensureVGPU(p *sim.Proc, gpuID, node string) (string, error) {
	if v, err := VGPUs(m.srv).Get(gpuID); err == nil && v.Status.UUID != "" {
		return v.Status.UUID, nil
	}
	if ev, inFlight := m.creating[gpuID]; inFlight {
		switch v := p.Wait(ev).(type) {
		case string:
			return v, nil
		case error:
			return "", v
		}
		return "", fmt.Errorf("vGPU creation produced no UUID")
	}
	ev := sim.NewEvent(m.env)
	m.creating[gpuID] = ev
	// Delete only our own event: onHolderDown may have replaced it with a
	// recovery's single-flight event while createVGPU was blocked, and
	// deleting that would let a fresh acquisition race the recovery.
	defer func() {
		if m.creating[gpuID] == ev {
			delete(m.creating, gpuID)
		}
	}()
	uuid, err := m.createVGPU(p, gpuID, node)
	if err != nil {
		ev.Trigger(err)
		return "", err
	}
	ev.Trigger(uuid)
	return uuid, nil
}

// createVGPU converts a free physical GPU into a pool vGPU: launch a native
// holder pod requesting one GPU on the target node, wait for it to run, and
// read the UUID it reports from its environment.
func (m *DevMgr) createVGPU(p *sim.Proc, gpuID, node string) (string, error) {
	holder := holderPodName(gpuID, 0)
	vgpu := &VGPU{
		ObjectMeta: api.ObjectMeta{Name: gpuID},
		Spec:       VGPUSpec{GPUID: gpuID, NodeName: node},
		Status:     VGPUStatus{Phase: VGPUCreating, HolderPod: holder},
	}
	if _, err := VGPUs(m.srv).Create(vgpu); err != nil && !apiserver.IsExists(err) {
		return "", err
	}
	pod := &api.Pod{
		ObjectMeta: api.ObjectMeta{
			Name:      holder,
			Labels:    map[string]string{LabelVGPUHolder: gpuID},
			OwnerName: KindVGPU + "/" + gpuID,
		},
		Spec: api.PodSpec{
			NodeName: node,
			Containers: []api.Container{{
				Name:     "holder",
				Image:    HolderImage,
				Requests: api.ResourceList{api.ResourceGPU: 1},
			}},
		},
	}
	if _, err := apiserver.Pods(m.srv).Create(pod); err != nil && !apiserver.IsExists(err) {
		return "", err
	}
	v := p.Wait(m.uuidReport(holder))
	if err, ok := v.(error); ok {
		// The holder died before reporting (killed, evicted, node crash) and
		// recovery or teardown wrote it off under us.
		return "", err
	}
	uuid, ok := v.(string)
	if !ok || uuid == "" {
		return "", fmt.Errorf("holder pod %s reported no device", holder)
	}
	_, err := VGPUs(m.srv).MutateStatus(gpuID, func(cur *VGPU) error {
		cur.Status.Phase = VGPUActive
		cur.Status.UUID = uuid
		return nil
	})
	if err != nil {
		return "", err
	}
	m.vgpuCreates.Inc()
	m.recorder.Eventf(KindVGPU, gpuID, obs.EventNormal, "Created",
		"holder %s pinned %s on %s", holder, uuid, node)
	return uuid, nil
}

// reflectPodStatus mirrors bound-pod phase changes onto the sharePod and
// reconciles the vGPU when a tenant terminates.
func (m *DevMgr) reflectPodStatus(spName string, pod *api.Pod) {
	var gpuID string
	switch pod.Status.Phase {
	case api.PodRunning:
		m.updateSharePod(spName, func(cur *SharePod) {
			if cur.Status.Phase == SharePodScheduled {
				cur.Status.Phase = SharePodRunning
				cur.Status.RunningTime = m.env.Now()
			}
			gpuID = cur.Spec.GPUID
		})
	case api.PodSucceeded, api.PodFailed:
		m.updateSharePod(spName, func(cur *SharePod) {
			if !cur.Terminated() {
				if pod.Status.Phase == api.PodSucceeded {
					cur.Status.Phase = SharePodSucceeded
				} else {
					cur.Status.Phase = SharePodFailed
					cur.Status.Message = pod.Status.Message
				}
				cur.Status.FinishTime = m.env.Now()
			}
			gpuID = cur.Spec.GPUID
		})
		if gpuID != "" {
			// The sharePod watch event for the terminal status has not been
			// processed yet; update the tenant cache here so the reconcile
			// below sees the device without this tenant.
			m.removeTenant(gpuID, spName)
			m.reconcileVGPU(gpuID)
		}
	}
}

// onSharePodGone handles sharePod deletion: remove its bound pod and
// reconcile the vGPU.
func (m *DevMgr) onSharePodGone(sp *SharePod) {
	if sp.Status.BoundPod != "" {
		if err := apiserver.Pods(m.srv).Delete(sp.Status.BoundPod); err != nil && !apiserver.IsNotFound(err) {
			panic(fmt.Sprintf("kubeshare-devmgr: delete bound pod: %v", err))
		}
	}
	if sp.Spec.GPUID != "" {
		m.removeTenant(sp.Spec.GPUID, sp.Name)
		m.reconcileVGPU(sp.Spec.GPUID)
	}
}

// reconcileVGPU applies the idle policy: when a vGPU has no live tenants it
// is either deleted (on-demand, releasing the GPU to Kubernetes) or marked
// idle (reservation).
func (m *DevMgr) reconcileVGPU(gpuID string) {
	if len(m.tenants[gpuID]) > 0 {
		return // still has tenants (cache maintained from watch deltas)
	}
	if _, inFlight := m.creating[gpuID]; inFlight {
		return // acquisition still running; bind will re-reconcile
	}
	v, err := VGPUs(m.srv).Get(gpuID)
	if err != nil {
		return
	}
	switch m.cfg.Policy {
	case Reservation:
		m.markVGPU(gpuID, VGPUIdle)
		return
	case Hybrid:
		// m.idle[gpuID]: this vGPU already counts toward the reserve —
		// re-reconciling an idle device must be a no-op, not a release.
		if m.idle[gpuID] || len(m.idle) < m.cfg.IdleReserve {
			m.markVGPU(gpuID, VGPUIdle)
			return
		}
		// Reserve full: fall through and release this one.
	}
	if err := apiserver.Pods(m.srv).Delete(v.Status.HolderPod); err != nil && !apiserver.IsNotFound(err) {
		panic(fmt.Sprintf("kubeshare-devmgr: delete holder: %v", err))
	}
	if err := VGPUs(m.srv).Delete(gpuID); err != nil && !apiserver.IsNotFound(err) {
		panic(fmt.Sprintf("kubeshare-devmgr: delete vGPU: %v", err))
	}
	delete(m.idle, gpuID)
	delete(m.uuidReports, v.Status.HolderPod)
}

// ReleaseIdle deletes every idle vGPU (manual pool shrink under the
// reservation policy).
func (m *DevMgr) ReleaseIdle() int {
	released := 0
	for _, v := range VGPUs(m.srv).List() {
		if v.Status.Phase != VGPUIdle {
			continue
		}
		if err := apiserver.Pods(m.srv).Delete(v.Status.HolderPod); err != nil && !apiserver.IsNotFound(err) {
			continue
		}
		if err := VGPUs(m.srv).Delete(v.Spec.GPUID); err == nil {
			delete(m.idle, v.Spec.GPUID)
			delete(m.uuidReports, v.Status.HolderPod)
			released++
		}
	}
	return released
}

func (m *DevMgr) markVGPU(gpuID string, phase VGPUPhase) {
	_, err := VGPUs(m.srv).MutateStatus(gpuID, func(cur *VGPU) error {
		cur.Status.Phase = phase
		return nil
	})
	if err != nil && !apiserver.IsNotFound(err) {
		panic(fmt.Sprintf("kubeshare-devmgr: mark vGPU %s: %v", gpuID, err))
	}
	if phase == VGPUIdle {
		m.idle[gpuID] = true
	} else {
		delete(m.idle, gpuID)
	}
}

// updateSharePod writes sharePod status through the status subresource —
// DevMgr never touches specs, so it cannot race with KubeShare-Sched's
// placement writes.
func (m *DevMgr) updateSharePod(name string, mutate func(*SharePod)) {
	_, err := SharePods(m.srv).MutateStatus(name, func(cur *SharePod) error {
		mutate(cur)
		return nil
	})
	if err != nil && !apiserver.IsNotFound(err) {
		panic(fmt.Sprintf("kubeshare-devmgr: update sharePod %s: %v", name, err))
	}
}

func (m *DevMgr) failSharePod(name, msg string) {
	m.updateSharePod(name, func(cur *SharePod) {
		if !cur.Terminated() {
			cur.Status.Phase = SharePodFailed
			cur.Status.Message = msg
			cur.Status.FinishTime = m.env.Now()
		}
	})
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'f', -1, 64) }

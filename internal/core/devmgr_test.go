package core_test

import (
	. "kubeshare/internal/core"
	"testing"
	"time"

	"kubeshare/internal/kube/api"
	"kubeshare/internal/kube/runtime"
	"kubeshare/internal/sim"
)

// TestHolderPodPinsGPU: while a sharePod runs, the pool's holder pod keeps
// the physical GPU allocated from Kubernetes' point of view, so native pods
// cannot steal it.
func TestHolderPodPinsGPU(t *testing.T) {
	s := newStack(t, 1, Config{})
	s.c.Images.Register("native", func(ctx *runtime.Ctx) error { return nil })
	s.env.Go("t", func(p *sim.Proc) {
		s.create(t, sharePod("tenant", 0.5, 1, 0.2, 30))
		p.Sleep(5 * time.Second)
		// All 4 GPUs: 1 held by the vGPU holder; a native pod wanting 4
		// must stay pending.
		pod := &api.Pod{
			ObjectMeta: api.ObjectMeta{Name: "native4"},
			Spec: api.PodSpec{Containers: []api.Container{{
				Name: "c", Image: "native",
				Requests: api.ResourceList{api.ResourceGPU: 4},
			}}},
		}
		if _, err := s.c.Pods().Create(pod); err != nil {
			t.Errorf("create: %v", err)
		}
		p.Sleep(5 * time.Second)
		got, _ := s.c.Pods().Get("native4")
		if got.Spec.NodeName != "" {
			t.Error("native pod scheduled while holder pins a GPU")
		}
	})
	s.env.Run()
	// After the tenant finishes (on-demand release), the native pod runs.
	got, _ := s.c.Pods().Get("native4")
	if got.Status.Phase != api.PodSucceeded {
		t.Fatalf("native pod after release: %s (%s)", got.Status.Phase, got.Status.Message)
	}
}

// TestVGPUPhasesObservable: the VGPU object walks Creating → Active →
// (deleted) in the on-demand policy.
func TestVGPUPhasesObservable(t *testing.T) {
	s := newStack(t, 1, Config{})
	var sawCreating, sawActive bool
	s.env.Go("observer", func(p *sim.Proc) {
		for i := 0; i < 200; i++ {
			p.Sleep(50 * time.Millisecond)
			for _, v := range VGPUs(s.c.API).List() {
				switch v.Status.Phase {
				case VGPUCreating:
					sawCreating = true
				case VGPUActive:
					sawActive = true
					if v.Status.UUID == "" {
						t.Error("active vGPU without UUID")
					}
				}
			}
		}
	})
	s.env.Go("submit", func(p *sim.Proc) {
		s.create(t, sharePod("sp", 0.5, 1, 0.2, 2))
	})
	s.env.Run()
	if !sawCreating || !sawActive {
		t.Fatalf("phases observed: creating=%v active=%v", sawCreating, sawActive)
	}
}

// TestUserPinnedGPUID: a client may set GPUID/NodeName explicitly (GPUs are
// first-class, user-addressable); DevMgr honours the pin without the
// scheduler's involvement.
func TestUserPinnedGPUID(t *testing.T) {
	s := newStack(t, 1, Config{})
	s.env.Go("t", func(p *sim.Proc) {
		// First sharePod scheduled normally, establishing vgpu-0001.
		s.create(t, sharePod("auto", 0.4, 0.5, 0.2, 10))
		p.Sleep(5 * time.Second)
		auto := s.get(t, "auto")
		// Second sharePod pinned to the same vGPU by the user.
		pinned := sharePod("pinned", 0.4, 0.5, 0.2, 5)
		pinned.Spec.GPUID = auto.Spec.GPUID
		pinned.Spec.NodeName = auto.Spec.NodeName
		pinned.Status.Phase = SharePodScheduled
		s.create(t, pinned)
	})
	s.env.Run()
	auto, pinned := s.get(t, "auto"), s.get(t, "pinned")
	if pinned.Status.Phase != SharePodSucceeded {
		t.Fatalf("pinned: %s (%s)", pinned.Status.Phase, pinned.Status.Message)
	}
	if pinned.Status.UUID != auto.Status.UUID {
		t.Fatal("pin not honoured: different physical GPUs")
	}
}

package core_test

import (
	"fmt"
	. "kubeshare/internal/core"
	"kubeshare/internal/core/schedfw"
	"testing"
	"time"

	"kubeshare/internal/kube"
	"kubeshare/internal/sim"
)

// extStack builds a cluster with the extender baseline (on the framework
// driver) installed.
func extStack(t *testing.T, gpus int) (*sim.Env, *kube.Cluster, *schedfw.Extender) {
	t.Helper()
	env := sim.NewEnv()
	c, err := kube.NewCluster(env, kube.Config{Nodes: []kube.NodeConfig{{Name: "n0", GPUs: gpus}}})
	if err != nil {
		t.Fatal(err)
	}
	_, ext, err := schedfw.InstallExtender(c, Config{})
	if err != nil {
		t.Fatal(err)
	}
	registerTrainImage(c)
	return env, c, ext
}

func TestExtenderRoundRobinCycles(t *testing.T) {
	env, c, _ := extStack(t, 3)
	env.Go("submit", func(p *sim.Proc) {
		for i := 0; i < 6; i++ {
			sp := sharePod(fmt.Sprintf("j%d", i), 0.3, 0.3, 0.1, 60)
			if _, err := SharePods(c.API).Create(sp); err != nil {
				t.Errorf("create: %v", err)
			}
			p.Sleep(100 * time.Millisecond)
		}
	})
	env.RunUntil(10 * time.Second)
	counts := map[string]int{}
	for _, sp := range SharePods(c.API).List() {
		if !sp.Placed() {
			t.Fatalf("%s unplaced", sp.Name)
		}
		counts[sp.Spec.GPUID]++
	}
	// 6 jobs round-robin over 3 devices: exactly 2 each.
	if len(counts) != 3 {
		t.Fatalf("devices used = %d, want 3", len(counts))
	}
	for id, n := range counts {
		if n != 2 {
			t.Fatalf("device %s has %d jobs, want 2 (round-robin)", id, n)
		}
	}
}

func TestExtenderQueuesWhenAggregateFull(t *testing.T) {
	env, c, _ := extStack(t, 2) // aggregate capacity 2.0
	env.Go("submit", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			sp := sharePod(fmt.Sprintf("j%d", i), 0.5, 0.5, 0.1, 3600)
			SharePods(c.API).Create(sp)
			p.Sleep(50 * time.Millisecond)
		}
	})
	env.RunUntil(30 * time.Second)
	placed, pending := 0, 0
	for _, sp := range SharePods(c.API).List() {
		if sp.Placed() {
			placed++
		} else {
			pending++
		}
	}
	if placed != 4 || pending != 1 {
		t.Fatalf("placed=%d pending=%d, want 4/1 (aggregate 2.0 at 0.5 each)", placed, pending)
	}
}

func TestExtenderIgnoresLocalityLabels(t *testing.T) {
	// Table 1's "locality constraint: No": anti-affinity labels are
	// silently ignored by the extender.
	env, c, _ := extStack(t, 2)
	env.Go("submit", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			sp := sharePod(fmt.Sprintf("j%d", i), 0.3, 0.3, 0.1, 60)
			sp.Spec.AntiAffinity = "spread"
			SharePods(c.API).Create(sp)
			p.Sleep(50 * time.Millisecond)
		}
		// Third job with the same label: KubeShare would need a 3rd GPU or
		// queue; the extender just round-robins onto device 0 again.
		sp := sharePod("j2", 0.3, 0.3, 0.1, 60)
		sp.Spec.AntiAffinity = "spread"
		SharePods(c.API).Create(sp)
	})
	env.RunUntil(10 * time.Second)
	byDevice := map[string]int{}
	for _, sp := range SharePods(c.API).List() {
		byDevice[sp.Spec.GPUID]++
	}
	shared := false
	for _, n := range byDevice {
		if n > 1 {
			shared = true
		}
	}
	if !shared {
		t.Fatal("extender respected anti-affinity; it must not have that feature")
	}
}

func TestExtenderSingleDeviceMode(t *testing.T) {
	env, c, ext := extStack(t, 4)
	ext.SetSingleDevice(true)
	env.Go("submit", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			SharePods(c.API).Create(sharePod(fmt.Sprintf("j%d", i), 0.4, 0.4, 0.1, 60))
			p.Sleep(50 * time.Millisecond)
		}
	})
	env.RunUntil(10 * time.Second)
	ids := map[string]bool{}
	for _, sp := range SharePods(c.API).List() {
		ids[sp.Spec.GPUID] = true
	}
	if len(ids) != 1 {
		t.Fatalf("single-device mode used %d devices", len(ids))
	}
}

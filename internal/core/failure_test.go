package core_test

import (
	"errors"
	"fmt"
	. "kubeshare/internal/core"
	"testing"
	"time"

	"kubeshare/internal/kube/api"
	"kubeshare/internal/kube/runtime"
	"kubeshare/internal/sim"
)

// TestTenantCrashReleasesShare: one of two co-located tenants crashes
// mid-run; the survivor inherits the freed capacity and the vGPU is
// reclaimed once both are gone.
func TestTenantCrashReleasesShare(t *testing.T) {
	s := newStack(t, 1, Config{})
	crashAfter := 5 * time.Second
	s.c.Images.Register("crasher", func(ctx *runtime.Ctx) error {
		deadline := ctx.Proc.Env().Now() + crashAfter
		for ctx.Proc.Env().Now() < deadline {
			if err := ctx.CUDA.LaunchKernel(ctx.Proc, 10*time.Millisecond); err != nil {
				return err
			}
		}
		return errors.New("CUDA_ERROR_ILLEGAL_ADDRESS")
	})
	s.env.Go("submit", func(p *sim.Proc) {
		crash := &SharePod{
			ObjectMeta: api.ObjectMeta{Name: "crash"},
			Spec: SharePodSpec{
				GPURequest: 0.5, GPULimit: 0.5, GPUMem: 0.2,
				Pod: api.PodSpec{Containers: []api.Container{{Name: "c", Image: "crasher"}}},
			},
		}
		s.create(t, crash)
		s.create(t, sharePod("survivor", 0.5, 1.0, 0.2, 20))
	})
	s.env.Run()
	crash := s.get(t, "crash")
	if crash.Status.Phase != SharePodFailed {
		t.Fatalf("crash phase = %s", crash.Status.Phase)
	}
	survivor := s.get(t, "survivor")
	if survivor.Status.Phase != SharePodSucceeded {
		t.Fatalf("survivor phase = %s (%s)", survivor.Status.Phase, survivor.Status.Message)
	}
	// After the crash the survivor had the device alone at gpu_limit 1.0:
	// 20s of work should complete in well under 2×20s.
	wall := survivor.Status.FinishTime - survivor.Status.RunningTime
	if wall > 30*time.Second {
		t.Fatalf("survivor wall %v; crashed tenant's share not released", wall)
	}
	if n := len(VGPUs(s.c.API).List()); n != 0 {
		t.Fatalf("vGPUs not reclaimed: %d", n)
	}
	// The crashed tenant's token-manager registration must be gone.
	for _, mgr := range []string{crash.Status.UUID} {
		if s.ks.Backends["node-0"].Manager(mgr).Clients() != 0 {
			t.Fatal("crashed client still registered with the token manager")
		}
	}
}

// TestMassChurn: rapid create/delete cycles leave no residue — no pods, no
// vGPUs, no token-manager clients, full device-plugin capacity.
func TestMassChurn(t *testing.T) {
	s := newStack(t, 2, Config{})
	s.env.Go("churn", func(p *sim.Proc) {
		for round := 0; round < 5; round++ {
			var names []string
			for i := 0; i < 6; i++ {
				name := fmt.Sprintf("churn-%d-%d", round, i)
				names = append(names, name)
				s.create(t, sharePod(name, 0.3, 0.5, 0.2, 3600))
			}
			p.Sleep(time.Duration(1+round) * time.Second) // delete at varying lifecycle stages
			for _, name := range names {
				if err := SharePods(s.c.API).Delete(name); err != nil {
					t.Errorf("delete %s: %v", name, err)
				}
			}
			p.Sleep(2 * time.Second)
		}
	})
	s.env.Run()
	if n := len(s.c.Pods().List()); n != 0 {
		t.Fatalf("pods remain: %d", n)
	}
	if n := len(VGPUs(s.c.API).List()); n != 0 {
		t.Fatalf("vGPUs remain: %d", n)
	}
	for _, node := range s.c.Nodes {
		if got := node.Kubelet.DeviceManager().Capacity()[api.ResourceGPU]; got != 4 {
			t.Fatalf("node %s capacity %d", node.Name, got)
		}
		for _, dev := range node.GPUs {
			if dev.ActiveContexts() != 0 {
				t.Fatalf("leaked CUDA context on %s", dev.UUID())
			}
			if dev.MemoryUsed() != 0 {
				t.Fatalf("leaked device memory on %s", dev.UUID())
			}
		}
	}
	if s.env.Now() > 2*time.Minute {
		t.Fatalf("churn left live timers until %v", s.env.Now())
	}
}

// TestRapidDeleteBeforeScheduling: deleting a sharePod before KubeShare-
// Sched touches it must be clean (no vGPU, no bound pod).
func TestRapidDeleteBeforeScheduling(t *testing.T) {
	s := newStack(t, 1, Config{})
	s.env.Go("t", func(p *sim.Proc) {
		s.create(t, sharePod("flash", 0.5, 0.5, 0.2, 10))
		// Delete within the scheduler's cycle latency.
		p.Sleep(time.Millisecond)
		if err := SharePods(s.c.API).Delete("flash"); err != nil {
			t.Errorf("delete: %v", err)
		}
	})
	s.env.Run()
	if n := len(s.c.Pods().List()); n != 0 {
		t.Fatalf("pods remain: %d", n)
	}
	if n := len(VGPUs(s.c.API).List()); n != 0 {
		t.Fatalf("vGPUs remain: %d", n)
	}
}

// TestOOMInContainerFailsSharePodOnly: a tenant exceeding its gpu_mem gets
// an OOM and fails; its GPU neighbour is unaffected.
func TestOOMInContainerFailsSharePodOnly(t *testing.T) {
	s := newStack(t, 1, Config{})
	s.c.Images.Register("hog", func(ctx *runtime.Ctx) error {
		// Allocate beyond the container's 0.25 share of 16 GiB.
		if _, err := ctx.CUDA.MemAlloc(ctx.Proc, 8<<30); err != nil {
			return err
		}
		return nil
	})
	s.env.Go("submit", func(p *sim.Proc) {
		bad := &SharePod{
			ObjectMeta: api.ObjectMeta{Name: "oom"},
			Spec: SharePodSpec{
				GPURequest: 0.5, GPULimit: 0.5, GPUMem: 0.25,
				Pod: api.PodSpec{Containers: []api.Container{{Name: "c", Image: "hog"}}},
			},
		}
		s.create(t, bad)
		s.create(t, sharePod("neighbour", 0.5, 0.5, 0.25, 3))
	})
	s.env.Run()
	if got := s.get(t, "oom"); got.Status.Phase != SharePodFailed {
		t.Fatalf("oom phase = %s", got.Status.Phase)
	}
	if got := s.get(t, "neighbour"); got.Status.Phase != SharePodSucceeded {
		t.Fatalf("neighbour phase = %s (%s)", got.Status.Phase, got.Status.Message)
	}
}

package core

import (
	"fmt"
	"strconv"
	"strings"

	"kubeshare/internal/cuda"
	"kubeshare/internal/devlib"
	"kubeshare/internal/devlib/sharing"
	"kubeshare/internal/kube"
	"kubeshare/internal/kube/api"
	"kubeshare/internal/kube/apiserver"
	"kubeshare/internal/kube/runtime"
)

// Config bundles the KubeShare component configurations.
type Config struct {
	Scheduler SchedulerConfig
	DevMgr    DevMgrConfig
	Devlib    devlib.Config
}

// Sched is the scheduler surface KubeShare needs from whichever driver is
// installed — the legacy single-sharePod loop, the schedfw batched driver,
// or the extender baseline. Counters live on the obs registry, so Stats is
// uniform across drivers.
type Sched interface {
	Start()
	Stop()
	// VerifySnapshot cross-checks the driver's incremental cluster view
	// against a full relist (nil for drivers that keep none).
	VerifySnapshot() error
	// Stats snapshots the scheduling counters.
	Stats() SchedStats
}

// KubeShare is the installed framework: both controllers plus the per-node
// device library backends.
type KubeShare struct {
	Cluster *kube.Cluster
	// Sched is the installed scheduler driver (nil only when the caller
	// wires its own scheduler onto an InstallBase).
	Sched  Sched
	DevMgr *DevMgr
	// SetManager reconciles SharePodSet replica controllers (§4.6).
	SetManager *SharePodSetManager
	// Backends holds the per-node device-library daemon, keyed by node name.
	Backends map[string]*devlib.Backend
}

// Stats snapshots the cluster's scheduling and recovery counters.
func (k *KubeShare) Stats() SchedStats {
	return ReadSchedStats(k.Cluster.Obs)
}

// InstallBase performs the wiring shared by every scheduler flavour:
// validators, the holder image, per-node backends and library hooks, and an
// (unstarted) DevMgr. The caller supplies and starts the scheduler driver
// (and should set KubeShare.Sched to it) — schedfw.Install is the standard
// composition.
func InstallBase(c *kube.Cluster, cfg Config) (*KubeShare, error) {
	ks := &KubeShare{
		Cluster:  c,
		Backends: make(map[string]*devlib.Backend),
	}
	c.API.RegisterValidator(KindSharePod, ValidateSharePod)
	ks.DevMgr = NewDevMgr(c.Env, c.API, cfg.DevMgr)
	ks.SetManager = NewSharePodSetManager(c.Env, c.API)
	ks.SetManager.Start()

	// The holder image: pin the allocated GPU and report its UUID from the
	// container environment back to DevMgr.
	c.Images.Register(HolderImage, func(ctx *runtime.Ctx) error {
		visible := ctx.Env["NVIDIA_VISIBLE_DEVICES"]
		uuid := strings.Split(visible, ",")[0]
		if uuid == "" {
			return fmt.Errorf("holder started without a GPU")
		}
		ks.DevMgr.ReportUUID(ctx.Pod.Name, uuid)
		ctx.Proc.Hibernate() // hold the GPU until the pod is deleted
		return nil
	})

	// Per-node device library backend + the LD_PRELOAD-equivalent hook:
	// containers of bound pods load the vGPU frontend instead of the raw
	// driver.
	dcfg := cfg.Devlib
	dcfg.Obs = c.Obs // backends share the cluster-wide telemetry runtime
	for _, node := range c.Nodes {
		backend := devlib.NewBackend(c.Env, dcfg)
		ks.Backends[node.Name] = backend
		node.Runtime.AddLibraryHook(func(pod *api.Pod, ctn api.Container, base cuda.API) cuda.API {
			if pod.Labels[LabelSharePod] == "" || base == nil {
				return nil // not ours: fall through to the raw driver
			}
			share, err := shareFromAnnotations(pod.Annotations)
			if err != nil {
				panic(fmt.Sprintf("kubeshare: bound pod %s has bad annotations: %v", pod.Name, err))
			}
			// An absent mode annotation means "node default" (StrategyFor's
			// ""), not "token" — only explicit per-pod modes override.
			var mode sharing.Mode
			if s := pod.Annotations[AnnSharingMode]; s != "" {
				mode, err = sharing.ParseMode(s)
				if err != nil {
					panic(fmt.Sprintf("kubeshare: bound pod %s has bad annotations: %v", pod.Name, err))
				}
			}
			strat, err := backend.StrategyFor(base.Device().UUID, mode)
			if err != nil {
				panic(fmt.Sprintf("kubeshare: install frontend for %s: %v", pod.Name, err))
			}
			f, err := devlib.NewFrontendWith(base, strat, pod.Name+"/"+ctn.Name, share, backend.Config())
			if err != nil {
				panic(fmt.Sprintf("kubeshare: install frontend for %s: %v", pod.Name, err))
			}
			// Bound pods carry OwnerName "SharePod/<name>", so the
			// frontend's token-grant / kernel-launch trace marks land on
			// the owning sharePod's causal chain.
			f.SetTraceKey(api.TraceKey(pod))
			return f
		})
	}
	// vGPU recovery needs to suspend/resume the dying pod's token manager.
	ks.DevMgr.SetBackends(ks.Backends)

	return ks, nil
}

// Stop terminates the KubeShare controllers (backends are passive).
func (ks *KubeShare) Stop() {
	if ks.Sched != nil {
		ks.Sched.Stop()
	}
	ks.SetManager.Stop()
	ks.DevMgr.Stop()
}

// SharePods returns the typed SharePod client for the installed cluster.
func (ks *KubeShare) SharePods() apiserver.Client[*SharePod] {
	return SharePods(ks.Cluster.API)
}

// VGPUs returns the typed VGPU client for the installed cluster.
func (ks *KubeShare) VGPUs() apiserver.Client[*VGPU] {
	return VGPUs(ks.Cluster.API)
}

// shareFromAnnotations parses the fractional shares DevMgr stamped onto a
// bound pod.
func shareFromAnnotations(ann map[string]string) (devlib.Share, error) {
	parse := func(key string) (float64, error) {
		v, ok := ann[key]
		if !ok {
			return 0, fmt.Errorf("missing annotation %s", key)
		}
		return strconv.ParseFloat(v, 64)
	}
	req, err := parse(AnnGPURequest)
	if err != nil {
		return devlib.Share{}, err
	}
	lim, err := parse(AnnGPULimit)
	if err != nil {
		return devlib.Share{}, err
	}
	mem, err := parse(AnnGPUMem)
	if err != nil {
		return devlib.Share{}, err
	}
	share := devlib.Share{Request: req, Limit: lim, Memory: mem}
	if v, ok := ann[AnnGPUMemBytes]; ok {
		bytes, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return devlib.Share{}, fmt.Errorf("bad annotation %s: %v", AnnGPUMemBytes, err)
		}
		share.MemoryBytes = bytes
	}
	return share, nil
}

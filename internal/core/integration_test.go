package core_test

import (
	"fmt"
	. "kubeshare/internal/core"
	"kubeshare/internal/core/schedfw"
	"math"
	"testing"
	"time"

	"kubeshare/internal/kube"
	"kubeshare/internal/kube/api"
	"kubeshare/internal/kube/runtime"
	"kubeshare/internal/sim"
)

// testStack is a cluster with KubeShare installed and a training image that
// launches back-to-back 10ms kernels for the given duration of device time.
type testStack struct {
	env *sim.Env
	c   *kube.Cluster
	ks  *KubeShare
}

func newStack(t *testing.T, nodes int, cfg Config) *testStack {
	t.Helper()
	env := sim.NewEnv()
	c, err := kube.NewCluster(env, kube.DefaultConfig(nodes))
	if err != nil {
		t.Fatal(err)
	}
	ks, err := schedfw.Install(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	registerTrainImage(c)
	return &testStack{env: env, c: c, ks: ks}
}

// registerTrainImage adds the "train" image: allocate a buffer, then launch
// kernels until TRAIN_SECONDS of device time has been consumed.
func registerTrainImage(c *kube.Cluster) {
	c.Images.Register("train", func(ctx *runtime.Ctx) error {
		if ctx.CUDA == nil {
			return fmt.Errorf("train: no GPU visible")
		}
		secs := 1.0
		if v := ctx.Env["TRAIN_SECONDS"]; v != "" {
			fmt.Sscanf(v, "%f", &secs)
		}
		if _, err := ctx.CUDA.MemAlloc(ctx.Proc, 1<<30); err != nil {
			return err
		}
		kernels := int(secs / 0.01)
		for i := 0; i < kernels; i++ {
			if err := ctx.CUDA.LaunchKernel(ctx.Proc, 10*time.Millisecond); err != nil {
				return err
			}
		}
		return nil
	})
}

func sharePod(name string, req, lim, mem float64, trainSecs float64) *SharePod {
	return &SharePod{
		ObjectMeta: api.ObjectMeta{Name: name},
		Spec: SharePodSpec{
			GPURequest: req,
			GPULimit:   lim,
			GPUMem:     mem,
			Pod: api.PodSpec{Containers: []api.Container{{
				Name:  "main",
				Image: "train",
				Env:   map[string]string{"TRAIN_SECONDS": fmt.Sprintf("%f", trainSecs)},
			}}},
		},
	}
}

func (s *testStack) create(t *testing.T, sp *SharePod) {
	t.Helper()
	if _, err := SharePods(s.c.API).Create(sp); err != nil {
		t.Fatalf("create %s: %v", sp.Name, err)
	}
}

func (s *testStack) get(t *testing.T, name string) *SharePod {
	t.Helper()
	sp, err := SharePods(s.c.API).Get(name)
	if err != nil {
		t.Fatalf("get %s: %v", name, err)
	}
	return sp
}

func TestSharePodLifecycle(t *testing.T) {
	s := newStack(t, 1, Config{})
	s.env.Go("submit", func(p *sim.Proc) {
		s.create(t, sharePod("sp1", 0.5, 1.0, 0.25, 2))
	})
	s.env.Run()
	sp := s.get(t, "sp1")
	if sp.Status.Phase != SharePodSucceeded {
		t.Fatalf("phase = %s (%s)", sp.Status.Phase, sp.Status.Message)
	}
	if sp.Spec.GPUID == "" || sp.Status.UUID == "" || sp.Status.BoundPod == "" {
		t.Fatalf("binding incomplete: %+v", sp)
	}
	if !(sp.Status.ScheduledTime < sp.Status.RunningTime && sp.Status.RunningTime < sp.Status.FinishTime) {
		t.Fatalf("timestamps out of order: %+v", sp.Status)
	}
	// Physical device must show the work.
	dev, _, ok := s.c.Device(sp.Status.UUID)
	if !ok {
		t.Fatalf("UUID %s is not a cluster device", sp.Status.UUID)
	}
	if dev.BusyTime() < 2*time.Second {
		t.Fatalf("device busy %v, want ≥2s", dev.BusyTime())
	}
	// On-demand policy: after the job finished, the vGPU is released.
	if n := len(VGPUs(s.c.API).List()); n != 0 {
		t.Fatalf("vGPUs remain after completion: %d", n)
	}
}

func TestTwoSharePodsShareOnePhysicalGPU(t *testing.T) {
	s := newStack(t, 1, Config{})
	s.env.Go("submit", func(p *sim.Proc) {
		s.create(t, sharePod("a", 0.5, 0.5, 0.25, 2))
		s.create(t, sharePod("b", 0.5, 0.5, 0.25, 2))
	})
	s.env.Run()
	a, b := s.get(t, "a"), s.get(t, "b")
	if a.Status.Phase != SharePodSucceeded || b.Status.Phase != SharePodSucceeded {
		t.Fatalf("phases: %s/%s (%s/%s)", a.Status.Phase, b.Status.Phase, a.Status.Message, b.Status.Message)
	}
	if a.Spec.GPUID != b.Spec.GPUID {
		t.Fatalf("best-fit failed: %s vs %s", a.Spec.GPUID, b.Spec.GPUID)
	}
	if a.Status.UUID != b.Status.UUID {
		t.Fatal("same vGPU mapped to different physical devices")
	}
	// Each got half the device: 2s of work at 0.5 share ≈ 4s wall time.
	wall := a.Status.FinishTime - a.Status.RunningTime
	if wall < 3500*time.Millisecond || wall > 5*time.Second {
		t.Fatalf("wall time %v, want ≈4s under a fair 0.5 split", wall)
	}
}

func TestElasticAllocationEndToEnd(t *testing.T) {
	// A single tenant with gpu_request 0.5 but gpu_limit 1.0 on an
	// otherwise empty GPU finishes at full speed.
	s := newStack(t, 1, Config{})
	s.env.Go("submit", func(p *sim.Proc) {
		s.create(t, sharePod("solo", 0.5, 1.0, 0.25, 2))
	})
	s.env.Run()
	sp := s.get(t, "solo")
	wall := sp.Status.FinishTime - sp.Status.RunningTime
	if wall > 2300*time.Millisecond {
		t.Fatalf("wall %v; residual capacity not allocated elastically", wall)
	}
}

func TestGPULimitThrottlesEndToEnd(t *testing.T) {
	// 20s of device work under gpu_limit 0.5: the first ~5s run unthrottled
	// (the sliding window has to fill before the cap can bite), the
	// remaining 15s proceed at half rate → ≈35s wall.
	s := newStack(t, 1, Config{})
	s.env.Go("submit", func(p *sim.Proc) {
		s.create(t, sharePod("capped", 0.25, 0.5, 0.25, 20))
	})
	s.env.Run()
	sp := s.get(t, "capped")
	wall := (sp.Status.FinishTime - sp.Status.RunningTime).Seconds()
	if math.Abs(wall-35.0) > 3 {
		t.Fatalf("wall %.2fs, want ≈35s at gpu_limit 0.5", wall)
	}
}

func TestAntiAffinitySeparatesPhysicalDevices(t *testing.T) {
	s := newStack(t, 1, Config{})
	mk := func(name string) *SharePod {
		sp := sharePod(name, 0.3, 0.6, 0.2, 1)
		sp.Spec.AntiAffinity = "spread"
		return sp
	}
	s.env.Go("submit", func(p *sim.Proc) {
		s.create(t, mk("x"))
		s.create(t, mk("y"))
	})
	s.env.Run()
	x, y := s.get(t, "x"), s.get(t, "y")
	if x.Status.UUID == y.Status.UUID {
		t.Fatal("anti-affinity tenants share a physical GPU")
	}
	if x.Status.Phase != SharePodSucceeded || y.Status.Phase != SharePodSucceeded {
		t.Fatalf("phases %s/%s", x.Status.Phase, y.Status.Phase)
	}
}

func TestAffinityColocatesEndToEnd(t *testing.T) {
	s := newStack(t, 2, Config{})
	mk := func(name string) *SharePod {
		sp := sharePod(name, 0.3, 0.4, 0.2, 1)
		sp.Spec.Affinity = "together"
		return sp
	}
	s.env.Go("submit", func(p *sim.Proc) {
		s.create(t, mk("x"))
		p.Sleep(500 * time.Millisecond)
		s.create(t, mk("y"))
	})
	s.env.Run()
	x, y := s.get(t, "x"), s.get(t, "y")
	if x.Spec.GPUID != y.Spec.GPUID || x.Spec.NodeName != y.Spec.NodeName {
		t.Fatalf("affinity group split: %s@%s vs %s@%s",
			x.Spec.GPUID, x.Spec.NodeName, y.Spec.GPUID, y.Spec.NodeName)
	}
}

func TestRejectedSharePodReportsReason(t *testing.T) {
	s := newStack(t, 1, Config{})
	s.env.Go("submit", func(p *sim.Proc) {
		a := sharePod("a", 0.8, 0.8, 0.2, 30)
		a.Spec.Affinity = "grp"
		s.create(t, a)
		p.Sleep(2 * time.Second)
		b := sharePod("b", 0.5, 0.5, 0.2, 1)
		b.Spec.Affinity = "grp"
		s.create(t, b)
		p.Sleep(2 * time.Second)
		// Don't wait 30s of training: tear down.
		SharePods(s.c.API).Delete("a")
	})
	s.env.Run()
	b := s.get(t, "b")
	if b.Status.Phase != SharePodRejected || b.Status.Message == "" {
		t.Fatalf("status = %+v, want Rejected with reason", b.Status)
	}
}

func TestQueueingWhenClusterFull(t *testing.T) {
	// 1 node × 4 GPUs; 8 jobs of 0.9 GPU each: only 4 run at a time, the
	// rest queue (NoCapacity) and complete later.
	s := newStack(t, 1, Config{})
	s.env.Go("submit", func(p *sim.Proc) {
		for i := 0; i < 8; i++ {
			s.create(t, sharePod(fmt.Sprintf("q%d", i), 0.9, 1.0, 0.2, 2))
		}
	})
	s.env.Run()
	var maxFinish time.Duration
	for i := 0; i < 8; i++ {
		sp := s.get(t, fmt.Sprintf("q%d", i))
		if sp.Status.Phase != SharePodSucceeded {
			t.Fatalf("%s: %s (%s)", sp.Name, sp.Status.Phase, sp.Status.Message)
		}
		if sp.Status.FinishTime > maxFinish {
			maxFinish = sp.Status.FinishTime
		}
	}
	// Two waves of ~2s each plus setup: total must exceed one wave but stay
	// bounded.
	if maxFinish < 4*time.Second || maxFinish > 20*time.Second {
		t.Fatalf("makespan %v out of the two-wave range", maxFinish)
	}
}

func TestOnDemandReleasesGPUToNativePods(t *testing.T) {
	s := newStack(t, 1, Config{})
	s.c.Images.Register("native", func(ctx *runtime.Ctx) error {
		if ctx.CUDA == nil {
			return fmt.Errorf("no GPU")
		}
		return ctx.CUDA.LaunchKernel(ctx.Proc, 100*time.Millisecond)
	})
	s.env.Go("submit", func(p *sim.Proc) {
		// Fill all 4 GPUs with sharePods.
		for i := 0; i < 4; i++ {
			s.create(t, sharePod(fmt.Sprintf("sp%d", i), 0.9, 1.0, 0.2, 1))
		}
		p.Sleep(15 * time.Second) // sharePods finish, vGPUs released (on-demand)
		pod := &api.Pod{
			ObjectMeta: api.ObjectMeta{Name: "native-gpu"},
			Spec: api.PodSpec{Containers: []api.Container{{
				Name: "c", Image: "native",
				Requests: api.ResourceList{api.ResourceGPU: 4},
			}}},
		}
		if _, err := s.c.Pods().Create(pod); err != nil {
			t.Errorf("create native pod: %v", err)
		}
	})
	s.env.Run()
	pod, err := s.c.Pods().Get("native-gpu")
	if err != nil {
		t.Fatal(err)
	}
	if pod.Status.Phase != api.PodSucceeded {
		t.Fatalf("native pod after release: %s (%s)", pod.Status.Phase, pod.Status.Message)
	}
}

func TestReservationKeepsIdleVGPU(t *testing.T) {
	s := newStack(t, 1, Config{DevMgr: DevMgrConfig{Policy: Reservation}})
	s.env.Go("submit", func(p *sim.Proc) {
		s.create(t, sharePod("first", 0.5, 1, 0.2, 1))
	})
	s.env.RunUntil(20 * time.Second)
	vgpus := VGPUs(s.c.API).List()
	if len(vgpus) != 1 || vgpus[0].Status.Phase != VGPUIdle {
		t.Fatalf("vgpus = %+v, want one Idle", vgpus)
	}
	// A second sharePod reuses the idle vGPU — no new holder pod.
	firstUUID := vgpus[0].Status.UUID
	s.env.Go("submit2", func(p *sim.Proc) {
		s.create(t, sharePod("second", 0.5, 1, 0.2, 1))
	})
	s.env.RunUntil(40 * time.Second)
	second := s.get(t, "second")
	if second.Status.Phase != SharePodSucceeded {
		t.Fatalf("second: %s (%s)", second.Status.Phase, second.Status.Message)
	}
	if second.Status.UUID != firstUUID {
		t.Fatal("idle vGPU not reused under reservation policy")
	}
	// Manual shrink releases it.
	if n := s.ks.DevMgr.ReleaseIdle(); n != 1 {
		t.Fatalf("ReleaseIdle = %d", n)
	}
	s.env.Run()
}

func TestDeleteRunningSharePodFreesEverything(t *testing.T) {
	s := newStack(t, 1, Config{})
	s.env.Go("submit", func(p *sim.Proc) {
		s.create(t, sharePod("doomed", 0.5, 1, 0.2, 3600))
		p.Sleep(10 * time.Second)
		if err := SharePods(s.c.API).Delete("doomed"); err != nil {
			t.Errorf("delete: %v", err)
		}
	})
	s.env.Run()
	if n := len(VGPUs(s.c.API).List()); n != 0 {
		t.Fatalf("vGPUs remain: %d", n)
	}
	if n := len(s.c.Pods().List()); n != 0 {
		t.Fatalf("pods remain: %d", n)
	}
	if s.env.Now() > time.Minute {
		t.Fatalf("simulation ran to %v; the killed job kept it alive", s.env.Now())
	}
}

func TestExtenderRoundRobinOvercommits(t *testing.T) {
	// The baseline packs by node aggregate and binds round-robin: three 0.6
	// jobs on a 2-GPU node land A→gpu0, B→gpu1, C→gpu0, over-committing
	// device 0 (Fig 3a). KubeShare would instead make C wait.
	env := sim.NewEnv()
	c, err := kube.NewCluster(env, kube.Config{Nodes: []kube.NodeConfig{{Name: "n0", GPUs: 2}}})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = schedfw.InstallExtender(c, Config{})
	if err != nil {
		t.Fatal(err)
	}
	registerTrainImage(c)
	env.Go("submit", func(p *sim.Proc) {
		for _, n := range []string{"a", "b", "c"} {
			if _, err := SharePods(c.API).Create(sharePod(n, 0.6, 0.6, 0.2, 2)); err != nil {
				t.Errorf("create: %v", err)
			}
		}
	})
	env.RunUntil(5 * time.Second)
	byDevice := map[string][]string{}
	for _, sp := range SharePods(c.API).List() {
		if sp.Placed() {
			byDevice[sp.Spec.GPUID] = append(byDevice[sp.Spec.GPUID], sp.Name)
		}
	}
	if len(byDevice["ext-n0-gpu0"]) != 2 || len(byDevice["ext-n0-gpu1"]) != 1 {
		t.Fatalf("placement = %v, want round-robin over-commitment on gpu0", byDevice)
	}
	env.Run()
	// The over-committed pair must finish slower than the solo job.
	solo := SharePodsGetWall(t, c, "b")
	shared := SharePodsGetWall(t, c, "a")
	if shared <= solo {
		t.Fatalf("over-commitment had no effect: shared %v vs solo %v", shared, solo)
	}
}

// SharePodsGetWall returns a finished sharePod's bound-pod wall time.
func SharePodsGetWall(t *testing.T, c *kube.Cluster, name string) time.Duration {
	t.Helper()
	sp, err := SharePods(c.API).Get(name)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Status.Phase != SharePodSucceeded {
		t.Fatalf("%s: %s (%s)", name, sp.Status.Phase, sp.Status.Message)
	}
	return sp.Status.FinishTime - sp.Status.RunningTime
}

// TestCustomSchedulingPolicy swaps Algorithm 1 for a spread-everything
// policy (every request on a fresh device) and verifies the DevMgr
// machinery serves it unchanged — the §4.6 decoupling claim.
func TestCustomSchedulingPolicy(t *testing.T) {
	spread := func(r Request, pool *Pool) Decision {
		// Always ask for a new device; fall back to Algorithm 1 only when
		// the cluster is out of GPUs.
		if len(pool.FreePhysical) == 0 {
			return Schedule(r, pool)
		}
		saveDevices := pool.Devices
		pool.Devices = nil // hide existing devices to force new_dev
		dec := Schedule(r, pool)
		pool.Devices = append(saveDevices, pool.Devices...)
		return dec
	}
	s := newStack(t, 1, Config{Scheduler: SchedulerConfig{Decide: spread}})
	s.env.Go("submit", func(p *sim.Proc) {
		s.create(t, sharePod("a", 0.2, 0.4, 0.1, 1))
		s.create(t, sharePod("b", 0.2, 0.4, 0.1, 1))
	})
	s.env.Run()
	a, b := s.get(t, "a"), s.get(t, "b")
	if a.Status.Phase != SharePodSucceeded || b.Status.Phase != SharePodSucceeded {
		t.Fatalf("phases %s/%s", a.Status.Phase, b.Status.Phase)
	}
	if a.Status.UUID == b.Status.UUID {
		t.Fatal("custom spread policy ignored: tenants share a device")
	}
}

func TestValidateSharePodRejectsBadSpecs(t *testing.T) {
	s := newStack(t, 1, Config{})
	bad := []*SharePod{
		{ObjectMeta: api.ObjectMeta{Name: "no-containers"}, Spec: SharePodSpec{GPURequest: 0.5, GPUMem: 0.5}},
		func() *SharePod { sp := sharePod("zero-req", 0, 0.5, 0.5, 1); return sp }(),
		func() *SharePod { sp := sharePod("bad-mem", 0.5, 0.5, 1.5, 1); return sp }(),
		func() *SharePod {
			sp := sharePod("gpuid-no-node", 0.5, 0.5, 0.5, 1)
			sp.Spec.GPUID = "vgpu-x"
			return sp
		}(),
		func() *SharePod {
			sp := sharePod("two-containers", 0.5, 0.5, 0.5, 1)
			sp.Spec.Pod.Containers = append(sp.Spec.Pod.Containers,
				api.Container{Name: "extra", Image: "train"})
			return sp
		}(),
		func() *SharePod {
			sp := sharePod("whole-gpu-request", 0.5, 0.5, 0.5, 1)
			sp.Spec.Pod.Containers[0].Requests = api.ResourceList{api.ResourceGPU: 1}
			return sp
		}(),
	}
	for _, sp := range bad {
		if _, err := SharePods(s.c.API).Create(sp); err == nil {
			t.Errorf("invalid sharePod %s accepted", sp.Name)
		}
	}
}

package core_test

import (
	"errors"
	"testing"

	"kubeshare/internal/gpusim"
	"kubeshare/internal/kube/api"

	. "kubeshare/internal/core"
)

// TestDeviceMemBytesMatchesGpusim pins the constant core duplicates because
// it cannot import gpusim: the byte-denominated scheduler capacity must be
// the simulated device's actual memory size, or MemoryFit would admit sets
// the device cannot hold (or reject sets it could).
func TestDeviceMemBytesMatchesGpusim(t *testing.T) {
	if int64(DeviceMemBytes) != gpusim.DefaultMemoryBytes {
		t.Fatalf("core.DeviceMemBytes = %d, gpusim.DefaultMemoryBytes = %d — keep them equal",
			int64(DeviceMemBytes), int64(gpusim.DefaultMemoryBytes))
	}
}

func gpuSpec(mutate func(*SharePodSpec)) SharePodSpec {
	spec := SharePodSpec{
		GPURequest: 0.5, GPULimit: 1.0, GPUMem: 0.5,
		Pod: api.PodSpec{Containers: []api.Container{{Name: "c", Image: "img"}}},
	}
	if mutate != nil {
		mutate(&spec)
	}
	return spec
}

func TestValidateGPUFieldsTyped(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*SharePodSpec)
		field  string // "" = valid
	}{
		{"valid-fractional", nil, ""},
		{"valid-bytes", func(s *SharePodSpec) { s.GPUMem = 0; s.GPUMemBytes = 4 << 30 }, ""},
		{"valid-mode", func(s *SharePodSpec) { s.SharingMode = "replica" }, ""},
		{"zero-request", func(s *SharePodSpec) { s.GPURequest = 0 }, "GPURequest"},
		{"request-above-one", func(s *SharePodSpec) { s.GPURequest = 1.2 }, "GPURequest"},
		{"request-above-limit", func(s *SharePodSpec) { s.GPULimit = 0.3 }, "GPULimit"},
		{"negative-limit", func(s *SharePodSpec) { s.GPURequest = -2; s.GPULimit = -1 }, "GPURequest"},
		{"mem-above-one", func(s *SharePodSpec) { s.GPUMem = 1.5 }, "GPUMem"},
		{"negative-mem-bytes", func(s *SharePodSpec) { s.GPUMem = 0; s.GPUMemBytes = -1 }, "GPUMemBytes"},
		{"bytes-beyond-device", func(s *SharePodSpec) { s.GPUMem = 0; s.GPUMemBytes = DeviceMemBytes + 1 }, "GPUMemBytes"},
		{"no-memory-form", func(s *SharePodSpec) { s.GPUMem = 0 }, "GPUMem"},
		{"both-memory-forms", func(s *SharePodSpec) { s.GPUMemBytes = 1 << 30 }, "GPUMemBytes"},
		{"bad-mode", func(s *SharePodSpec) { s.SharingMode = "mig" }, "SharingMode"},
	}
	for _, tc := range cases {
		sp := &SharePod{ObjectMeta: api.ObjectMeta{Name: tc.name}, Spec: gpuSpec(tc.mutate)}
		err := ValidateSharePod(sp)
		if tc.field == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		var ve *ValidationError
		if !errors.As(err, &ve) {
			t.Errorf("%s: error %v is not a *ValidationError", tc.name, err)
			continue
		}
		if ve.Field != tc.field {
			t.Errorf("%s: field %q, want %q (%v)", tc.name, ve.Field, tc.field, ve)
		}
	}
}

func TestFitsMemBytesAccounting(t *testing.T) {
	d := NewDeviceState("d0", "n0")
	d.Idle = false
	// Fractional-only requests are vacuously fine — the byte filter never
	// constrains legacy placements.
	if !d.FitsMemBytes(Request{Util: 0.5, Mem: 0.9}) {
		t.Fatal("fractional request rejected by byte filter")
	}
	half := Request{Util: 0.1, MemBytes: DeviceMemBytes / 2}
	if !d.FitsMemBytes(half) {
		t.Fatal("half-capacity byte request rejected on fresh device")
	}
	d.Place(half)
	if d.MemBytesUsed != DeviceMemBytes/2 {
		t.Fatalf("MemBytesUsed = %d, want %d", d.MemBytesUsed, DeviceMemBytes/2)
	}
	// Cross-dimension deduction: the byte placement consumed half the
	// fractional residual too, so a second half-capacity set still fits but
	// a byte over it does not.
	if !d.FitsMemBytes(half) {
		t.Fatal("second half-capacity set must fit")
	}
	if d.FitsMemBytes(Request{Util: 0.1, MemBytes: DeviceMemBytes/2 + 1}) {
		t.Fatal("over-capacity byte request admitted")
	}
	if !d.Fits(Request{Util: 0.1, Mem: 0.5}) || d.Fits(Request{Util: 0.1, Mem: 0.51}) {
		t.Fatalf("fractional residual %v not reduced by byte placement", d.Mem)
	}
	// And the reverse: a fractional placement shrinks the byte headroom.
	d2 := NewDeviceState("d1", "n0")
	d2.Idle = false
	d2.Place(Request{Util: 0.1, Mem: 0.75})
	if d2.MemBytesUsed != int64(0.75*float64(DeviceMemBytes)) {
		t.Fatalf("fractional placement tracked %d bytes", d2.MemBytesUsed)
	}
	if d2.FitsMemBytes(Request{Util: 0.1, MemBytes: DeviceMemBytes / 2}) {
		t.Fatal("byte request beyond the fractional residual admitted")
	}
}

func TestPlaceOnIdleResetsByteAccounting(t *testing.T) {
	d := NewDeviceState("d0", "n0")
	d.Idle = false
	d.Place(Request{Util: 0.2, MemBytes: 4 << 30})
	d.Idle = true // previous tenants gone
	d.Place(Request{Util: 0.2, MemBytes: 1 << 30})
	if d.MemBytesUsed != 1<<30 {
		t.Fatalf("idle reset kept stale bytes: %d", d.MemBytesUsed)
	}
}

// TestOversubscribedMemBytesRejectedAtCreate is the admission half of the
// memory-quantity mode at the API layer: Create must refuse the pod with the
// typed error before it is stored.
func TestOversubscribedMemBytesRejectedAtCreate(t *testing.T) {
	s := newStack(t, 1, Config{})
	sp := &SharePod{
		ObjectMeta: api.ObjectMeta{Name: "over"},
		Spec: gpuSpec(func(spec *SharePodSpec) {
			spec.GPUMem = 0
			spec.GPUMemBytes = DeviceMemBytes + 1
		}),
	}
	_, err := SharePods(s.c.API).Create(sp)
	var ve *ValidationError
	if !errors.As(err, &ve) || ve.Field != "GPUMemBytes" {
		t.Fatalf("create error %v, want typed GPUMemBytes ValidationError", err)
	}
	if _, getErr := SharePods(s.c.API).Get("over"); getErr == nil {
		t.Fatal("rejected sharePod was stored")
	}
}

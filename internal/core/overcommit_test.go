package core_test

import (
	. "kubeshare/internal/core"
	"testing"
	"time"

	"kubeshare/internal/devlib"
	"kubeshare/internal/sim"
)

// TestMemOvercommitEndToEnd: two sharePods with gpu_mem 0.7 each cannot
// coexist on one GPU normally, but with over-commitment enabled the
// scheduler co-locates them and the device library swaps their working
// sets. Both jobs complete, slower than without contention.
func TestMemOvercommitEndToEnd(t *testing.T) {
	mk := func(cfg Config) (*testStack, []string) {
		s := newStack(t, 1, cfg)
		names := []string{"big-a", "big-b"}
		s.env.Go("submit", func(p *sim.Proc) {
			for _, n := range names {
				sp := sharePod(n, 0.5, 0.5, 0.7, 2)
				s.create(t, sp)
			}
		})
		return s, names
	}

	// Without over-commitment: gpu_mem 0.7+0.7 > 1 forces two separate
	// physical GPUs.
	plain, names := mk(Config{})
	plain.env.Run()
	uuids := map[string]bool{}
	for _, n := range names {
		sp := plain.get(t, n)
		if sp.Status.Phase != SharePodSucceeded {
			t.Fatalf("%s: %s (%s)", n, sp.Status.Phase, sp.Status.Message)
		}
		uuids[sp.Status.UUID] = true
	}
	if len(uuids) != 2 {
		t.Fatalf("plain mode co-located memory-heavy tenants: %d GPUs", len(uuids))
	}

	// With over-commitment (factor 1.5): both land on one GPU and swap.
	oc, names := mk(Config{
		Scheduler: SchedulerConfig{MemOvercommitFactor: 1.5},
		Devlib:    devlib.Config{MemOvercommit: true, SwapBandwidth: 64 << 30},
	})
	oc.env.Run()
	uuids = map[string]bool{}
	for _, n := range names {
		sp := oc.get(t, n)
		if sp.Status.Phase != SharePodSucceeded {
			t.Fatalf("overcommit %s: %s (%s)", n, sp.Status.Phase, sp.Status.Message)
		}
		uuids[sp.Status.UUID] = true
	}
	if len(uuids) != 1 {
		t.Fatalf("over-commitment did not co-locate: %d GPUs", len(uuids))
	}
	mgr := oc.ks.Backends["node-0"].Manager(firstKey(uuids))
	if mgr.SwappedBytes() == 0 {
		t.Fatal("no swap traffic despite over-committed working sets")
	}
}

func firstKey(m map[string]bool) string {
	for k := range m {
		return k
	}
	return ""
}

// TestMemOvercommitSlowerThanFitting quantifies the paper's §6 warning: the
// swap traffic costs real time relative to the same jobs with fitting sets.
func TestMemOvercommitSlowerThanFitting(t *testing.T) {
	run := func(mem float64, factor float64) time.Duration {
		cfg := Config{}
		if factor > 1 {
			cfg.Scheduler.MemOvercommitFactor = factor
			cfg.Devlib = devlib.Config{MemOvercommit: true, SwapBandwidth: 12 << 30}
		}
		s := newStack(t, 1, cfg)
		s.env.Go("submit", func(p *sim.Proc) {
			s.create(t, sharePod("a", 0.5, 0.5, mem, 2))
			s.create(t, sharePod("b", 0.5, 0.5, mem, 2))
		})
		s.env.Run()
		var last time.Duration
		for _, n := range []string{"a", "b"} {
			sp := s.get(t, n)
			if sp.Status.Phase != SharePodSucceeded {
				t.Fatalf("%s: %s (%s)", n, sp.Status.Phase, sp.Status.Message)
			}
			if sp.Status.FinishTime > last {
				last = sp.Status.FinishTime
			}
		}
		return last
	}
	fitting := run(0.4, 1)     // both sets fit: no swap
	thrashing := run(0.7, 1.5) // over-committed: swaps at every handoff
	if thrashing <= fitting {
		t.Fatalf("over-commit %v not slower than fitting %v", thrashing, fitting)
	}
}

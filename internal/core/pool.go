package core

import (
	"fmt"
	"sort"
	"strconv"

	"kubeshare/internal/kube/api"
	"kubeshare/internal/kube/apiserver"
)

// Labels and annotations KubeShare stamps on the native objects it creates.
const (
	// LabelSharePod marks a bound pod with the sharePod it realizes.
	LabelSharePod = "kubeshare.io/sharepod"
	// LabelVGPUHolder marks the native pods that pin physical GPUs for the
	// vGPU pool.
	LabelVGPUHolder = "kubeshare.io/vgpu-holder"
	// Annotations carrying the fractional shares into the bound pod, read
	// by the node's library hook when installing the vGPU frontend.
	AnnGPURequest = "kubeshare.io/gpu_request"
	AnnGPULimit   = "kubeshare.io/gpu_limit"
	AnnGPUMem     = "kubeshare.io/gpu_mem"
	AnnGPUID      = "kubeshare.io/gpuid"
	// AnnGPUMemBytes carries the absolute memory request (stamped only when
	// the sharePod used the byte-quantity form).
	AnnGPUMemBytes = "kubeshare.io/gpu_mem_bytes"
	// AnnSharingMode carries the sharing strategy (stamped only when the
	// sharePod overrides the node default).
	AnnSharingMode = "kubeshare.io/sharing_mode"
)

// SharePods returns the typed SharePod client.
func SharePods(s *apiserver.Server) apiserver.Client[*SharePod] {
	return apiserver.NewClient[*SharePod](s, KindSharePod)
}

// VGPUs returns the typed VGPU client.
func VGPUs(s *apiserver.Server) apiserver.Client[*VGPU] {
	return apiserver.NewClient[*VGPU](s, KindVGPU)
}

// BuildPool derives Algorithm 1's pool state from the API server: one
// DeviceState per vGPU (from VGPU objects and from GPUIDs referenced by
// live sharePods that DevMgr has not yet materialized), with residuals and
// labels accumulated from the live sharePods on each device, plus the
// per-node count of physical GPUs still free for new vGPUs.
func BuildPool(srv *apiserver.Server, newID func() string) *Pool {
	return BuildPoolWithFactor(srv, newID, 1)
}

// BuildPoolWithFactor is BuildPool with a schedulable-memory factor per
// device (>1 permits over-commitment backed by the device library's swap).
func BuildPoolWithFactor(srv *apiserver.Server, newID func() string, memFactor float64) *Pool {
	if memFactor <= 0 {
		memFactor = 1
	}
	pool := &Pool{FreePhysical: map[string]int{}, NewID: newID, MemFactor: memFactor}
	byID := map[string]*DeviceState{}
	vgpuPerNode := map[string]int{}

	add := func(id, node string) *DeviceState {
		if d, ok := byID[id]; ok {
			return d
		}
		d := NewDeviceState(id, node)
		d.MemCapacity = memFactor
		d.Mem = memFactor
		byID[id] = d
		pool.Devices = append(pool.Devices, d)
		vgpuPerNode[node]++
		return d
	}
	for _, v := range VGPUs(srv).List() {
		add(v.Spec.GPUID, v.Spec.NodeName)
	}
	for _, sp := range SharePods(srv).List() {
		if !sp.Placed() || sp.Terminated() {
			continue
		}
		d := add(sp.Spec.GPUID, sp.Spec.NodeName)
		d.Place(RequestOf(sp))
	}

	// Physical free GPUs: node allocatable minus native (non-KubeShare)
	// GPU pods minus vGPUs already carved out of the node.
	nativeGPU := map[string]int{}
	for _, pod := range apiserver.Pods(srv).List() {
		if pod.Terminated() || pod.Labels[LabelVGPUHolder] != "" {
			continue
		}
		if n := pod.Spec.Requests()[api.ResourceGPU]; n > 0 && pod.Spec.NodeName != "" {
			nativeGPU[pod.Spec.NodeName] += int(n)
		}
	}
	for _, node := range apiserver.Nodes(srv).List() {
		if !node.Status.Ready {
			continue // no new vGPUs on NotReady nodes; existing ones drain via eviction
		}
		total := int(node.Status.Allocatable[api.ResourceGPU])
		free := total - nativeGPU[node.Name] - vgpuPerNode[node.Name]
		if free > 0 {
			pool.FreePhysical[node.Name] = free
		}
	}
	// Canonical device order (by ID) so pools built here and from the
	// scheduler's incremental snapshot are directly comparable.
	sort.Slice(pool.Devices, func(i, j int) bool { return pool.Devices[i].ID < pool.Devices[j].ID })
	return pool
}

// PlacementOf extracts the typed placement from a bound pod's stamped
// metadata (the AnnGPUID annotation plus the pod's node), reporting false
// for pods KubeShare did not bind. It replaces ad-hoc annotation parsing at
// consumer sites.
func PlacementOf(pod *api.Pod) (Placement, bool) {
	if pod.Labels[LabelSharePod] == "" {
		return Placement{}, false
	}
	gpuID, ok := pod.Annotations[AnnGPUID]
	if !ok {
		return Placement{}, false
	}
	partial := false
	for _, key := range []string{AnnGPURequest, AnnGPUMem} {
		if v, err := strconv.ParseFloat(pod.Annotations[key], 64); err == nil && v < 1 {
			partial = true
		}
	}
	return Placement{NodeName: pod.Spec.NodeName, GPUID: gpuID, Partial: partial}, true
}

// RequestOf converts a sharePod spec into an Algorithm 1 request.
func RequestOf(sp *SharePod) Request {
	return Request{
		Util:     sp.Spec.GPURequest,
		Mem:      sp.Spec.GPUMem,
		MemBytes: sp.Spec.GPUMemBytes,
		Aff:      sp.Spec.Affinity,
		Anti:     sp.Spec.AntiAffinity,
		Excl:     sp.Spec.Exclusion,
	}
}

// holderPodName names the native pod pinning a vGPU's physical GPU. gen is
// the holder incarnation: 0 for the original, >0 for replacements created by
// vGPU recovery (the old name may still exist while the corpse is cleaned
// up, so each incarnation gets a fresh name).
func holderPodName(gpuID string, gen int) string {
	if gen == 0 {
		return fmt.Sprintf("vgpu-%s-holder", gpuID)
	}
	return fmt.Sprintf("vgpu-%s-holder-r%d", gpuID, gen)
}

// boundPodName names the pod realizing a sharePod, versioned by the
// sharePod's restart count for the same reason as holder incarnations.
func boundPodName(spName string, restarts int) string {
	if restarts == 0 {
		return fmt.Sprintf("sharepod-%s", spName)
	}
	return fmt.Sprintf("sharepod-%s-r%d", spName, restarts)
}

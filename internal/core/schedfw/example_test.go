package schedfw_test

import (
	"testing"

	"kubeshare/internal/core"
	"kubeshare/internal/core/schedfw"
	"kubeshare/internal/core/schedfw/fwk"
	"kubeshare/internal/core/schedfw/plugins"
	"kubeshare/internal/kube"
)

// BigJobHeadroom is the README's "writing a scheduler plugin" example: a
// filter that vetoes devices whose residual utilization would drop below
// the floor, so small jobs pack elsewhere and large jobs keep headroom.
// This test keeps the documented code honest.
type BigJobHeadroom struct{ Floor float64 }

func (BigJobHeadroom) Name() string { return "big-job-headroom" }

func (p BigJobHeadroom) Filter(u fwk.Unit, d *core.DeviceState) bool {
	return u.Req.Util >= p.Floor || core.Residual(d)-u.Req.Util >= p.Floor
}

func TestReadmePluginExample(t *testing.T) {
	s := newStack(t, 1, 4, func(c *kube.Cluster) (*core.KubeShare, error) {
		return schedfw.Install(c, core.Config{},
			schedfw.WithPlugins(append([]fwk.Plugin{BigJobHeadroom{Floor: 0.5}},
				plugins.Default()...)...),
			schedfw.WithBatchSize(64))
	})
	// Two 0.3 jobs: the default best-fit would co-locate them, but the
	// headroom filter forces the second onto a fresh device (placing it on
	// the first would leave 0.4 < 0.5 residual).
	names := []string{"small-0", "small-1"}
	for _, name := range names {
		if _, err := core.SharePods(s.c.API).Create(trainPod(name, 0.3, 0.2, 1)); err != nil {
			t.Fatal(err)
		}
	}
	s.env.Run()
	got := collect(t, s, names)
	for _, n := range names {
		if got[n].phase != core.SharePodSucceeded {
			t.Fatalf("%s: phase %q, want Succeeded", n, got[n].phase)
		}
	}
	if got["small-0"].gpuID == got["small-1"].gpuID {
		t.Fatalf("headroom filter ignored: both jobs on %s", got["small-0"].gpuID)
	}
	if err := s.ks.Sched.VerifySnapshot(); err != nil {
		t.Fatal(err)
	}
}

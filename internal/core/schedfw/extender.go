package schedfw

import (
	"fmt"
	"sort"

	"kubeshare/internal/core"
	"kubeshare/internal/kube/api"
	"kubeshare/internal/kube/apiserver"
	"kubeshare/internal/obs"
	"kubeshare/internal/sim"
)

// Extender is the scheduler-extender comparison baseline (Aliyun gpushare,
// GaiaGPU, Deepomatic — §3.1/§6) running on the framework driver: the same
// coalesced wake loop, batched cycles and staged bulk commits as the
// KubeShare driver, with the extender's aggregate-capacity policy in place
// of the plugin pipeline. Fractional demands count against each node's
// aggregate GPU capacity and the in-node device binding is a round-robin
// the scheduler neither sees nor controls — reproducing the Figure 3a
// pathology the plugin set avoids.
//
// The policy keeps the legacy architecture's re-list-per-cycle accounting
// (it has no incremental snapshot — that is part of the baseline's cost),
// but the driver now populates the shared scheduling counters, so
// Stats() is uniform across drivers.
type Extender struct {
	env *sim.Env
	srv *apiserver.Server
	cfg core.SchedulerConfig

	batchSize int
	rr        map[string]int // node → round-robin device cursor
	// singleDevice restricts binding to device 0 of each node — the
	// Deepomatic-style limitation (Table 1: no multi-GPU-per-node support).
	singleDevice bool

	wake       *sim.Queue[struct{}]
	proc       *sim.Proc
	watchProcs []*sim.Proc

	decisions  *obs.Counter
	noCapacity *obs.Counter
	depth      *obs.Gauge
}

// NewExtender creates the baseline scheduler on the framework driver;
// Start launches it. Plugin and gang options do not apply to the baseline
// and are ignored.
func NewExtender(env *sim.Env, srv *apiserver.Server, opts ...Option) *Extender {
	o := options{batchSize: DefaultBatchSize}
	for _, opt := range opts {
		opt(&o)
	}
	if o.cfg.CycleLatency == 0 {
		o.cfg.CycleLatency = core.DefaultCycleLatency
	}
	if o.batchSize < 1 {
		o.batchSize = 1
	}
	rt := srv.Obs()
	return &Extender{
		env:        env,
		srv:        srv,
		cfg:        o.cfg,
		batchSize:  o.batchSize,
		rr:         make(map[string]int),
		wake:       sim.NewQueue[struct{}](env),
		decisions:  rt.Counter(core.MetricSchedDecisions),
		noCapacity: rt.Counter(core.MetricSchedNoCapacity),
		depth:      rt.Gauge(core.MetricSchedPending),
	}
}

// SetSingleDevice switches the baseline into Deepomatic mode: every
// container binds to the node's first GPU, whatever its load.
func (s *Extender) SetSingleDevice(v bool) { s.singleDevice = v }

// VerifySnapshot implements core.Sched; the baseline keeps no incremental
// view (it re-lists per cycle), so there is nothing to cross-check.
func (s *Extender) VerifySnapshot() error { return nil }

// Stats implements core.Sched.
func (s *Extender) Stats() core.SchedStats { return core.ReadSchedStats(s.srv.Obs()) }

// Start launches the watch and scheduling loops.
func (s *Extender) Start() {
	for _, kind := range []string{core.KindSharePod, "Pod"} {
		q := s.srv.Watch(kind, kind == core.KindSharePod)
		s.watchProcs = append(s.watchProcs, s.env.Go("extender-watch-"+kind, func(p *sim.Proc) {
			for {
				if _, ok := q.Get(p); !ok {
					return
				}
				s.kick()
			}
		}))
	}
	s.proc = s.env.Go("extender-sched", func(p *sim.Proc) {
		for {
			if _, ok := s.wake.Get(p); !ok {
				return
			}
			p.Yield()
			s.drainWake()
			for s.runCycle(p) {
			}
		}
	})
}

// Stop terminates the scheduler.
func (s *Extender) Stop() {
	if s.proc != nil {
		s.proc.Kill(nil)
	}
	for _, p := range s.watchProcs {
		p.Kill(nil)
	}
}

func (s *Extender) kick() {
	if s.wake.Len() == 0 {
		s.wake.Put(struct{}{})
	}
}

func (s *Extender) drainWake() {
	for {
		if _, ok := s.wake.TryGet(); !ok {
			return
		}
	}
}

// runCycle stages up to batchSize aggregate-capacity placements against a
// re-listed view, then commits them in bulk.
func (s *Extender) runCycle(p *sim.Proc) bool {
	var pending []*core.SharePod
	for _, sp := range core.SharePods(s.srv).List() {
		if !sp.Placed() && !sp.Terminated() {
			pending = append(pending, sp)
		}
	}
	s.depth.Set(int64(len(pending)))
	if len(pending) == 0 {
		return false
	}
	core.SortByAge(pending)
	p.Sleep(s.cfg.CycleLatency)
	committedUtil, committedMem := s.aggregates()
	type binding struct {
		name  string
		gpuID string
		node  string
	}
	var out []binding
	for _, cand := range pending {
		if len(out) >= s.batchSize {
			break
		}
		sp, err := core.SharePods(s.srv).Get(cand.Name)
		if err != nil || sp.Placed() || sp.Terminated() {
			continue
		}
		s.decisions.Inc()
		node, gpus := s.pickNode(sp, committedUtil, committedMem)
		if node == "" {
			continue // no aggregate capacity anywhere; retry on change
		}
		// Round-robin in-node device binding — the piece the extender
		// architecture cannot make device-load-aware. Deepomatic mode pins
		// everything to device 0.
		idx := 0
		if !s.singleDevice {
			idx = s.rr[node] % gpus
			s.rr[node]++
		}
		out = append(out, binding{name: sp.Name, gpuID: fmt.Sprintf("ext-%s-gpu%d", node, idx), node: node})
	}
	for _, b := range out {
		if _, err := core.SharePods(s.srv).Mutate(b.name, func(cur *core.SharePod) error {
			cur.Spec.GPUID = b.gpuID
			cur.Spec.NodeName = b.node
			return nil
		}); err != nil && !apiserver.IsNotFound(err) {
			panic(fmt.Sprintf("extender: assign %s: %v", b.name, err))
		}
		if _, err := core.SharePods(s.srv).MutateStatus(b.name, func(cur *core.SharePod) error {
			cur.Status.Phase = core.SharePodScheduled
			cur.Status.ScheduledTime = s.env.Now()
			return nil
		}); err != nil && !apiserver.IsNotFound(err) {
			panic(fmt.Sprintf("extender: assign %s: %v", b.name, err))
		}
	}
	if len(out) == 0 {
		s.noCapacity.Inc()
		return false
	}
	return true
}

// aggregates sums live fractional commitments per node.
func (s *Extender) aggregates() (util, mem map[string]float64) {
	util = map[string]float64{}
	mem = map[string]float64{}
	for _, sp := range core.SharePods(s.srv).List() {
		if sp.Placed() && !sp.Terminated() {
			util[sp.Spec.NodeName] += sp.Spec.GPURequest
			mem[sp.Spec.NodeName] += sp.Spec.GPUMem
		}
	}
	return util, mem
}

// pickNode selects the node with the most free aggregate capacity that fits
// the request, mutating the aggregates so later units in the batch see the
// commitment. It returns the node name and its GPU count.
func (s *Extender) pickNode(sp *core.SharePod, util, mem map[string]float64) (string, int) {
	type cand struct {
		name string
		free float64
		gpus int
	}
	var fits []cand
	for _, node := range apiserver.Nodes(s.srv).List() {
		gpus := int(node.Status.Allocatable[api.ResourceGPU])
		if gpus == 0 {
			continue
		}
		capacity := float64(gpus)
		if util[node.Name]+sp.Spec.GPURequest > capacity+1e-9 {
			continue
		}
		if mem[node.Name]+sp.Spec.GPUMem > capacity+1e-9 {
			continue
		}
		fits = append(fits, cand{node.Name, capacity - util[node.Name], gpus})
	}
	if len(fits) == 0 {
		return "", 0
	}
	sort.Slice(fits, func(i, j int) bool {
		if fits[i].free != fits[j].free {
			return fits[i].free > fits[j].free
		}
		return fits[i].name < fits[j].name
	})
	util[fits[0].name] += sp.Spec.GPURequest
	mem[fits[0].name] += sp.Spec.GPUMem
	return fits[0].name, fits[0].gpus
}

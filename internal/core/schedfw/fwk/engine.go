package fwk

import "kubeshare/internal/core"

// Phase names, in pipeline order. The driver threads a counter per phase
// through the hook below, so batch cycles are visible per-phase in obs.
const (
	PhasePreFilter = "prefilter"
	PhaseFilter    = "filter"
	PhaseScore     = "score"
	PhaseAlloc     = "alloc"
	PhaseReserve   = "reserve"
)

// Phases lists the phase names in pipeline order.
var Phases = []string{PhasePreFilter, PhaseFilter, PhaseScore, PhaseAlloc, PhaseReserve}

// Engine runs one unit through the phase pipeline against a transaction.
// It is the pure decision core of the framework: no clock, no API server,
// no goroutines — the driver owns batching, timing and commits.
type Engine struct {
	pre      []PreFilterPlugin
	filters  []FilterPlugin
	scores   []ScorePlugin
	allocs   []AllocPlugin
	reserves []ReservePlugin

	// onPhase observes each phase execution (nil = no observation).
	onPhase func(phase string)

	// scratch score vectors, reused across candidates.
	bestVec []float64
	candVec []float64
}

// NewEngine sorts plugins into their phase slots by interface, preserving
// registration order within each phase. One plugin may serve several phases.
func NewEngine(plugins []Plugin) *Engine {
	e := &Engine{}
	for _, p := range plugins {
		if pf, ok := p.(PreFilterPlugin); ok {
			e.pre = append(e.pre, pf)
		}
		if f, ok := p.(FilterPlugin); ok {
			e.filters = append(e.filters, f)
		}
		if s, ok := p.(ScorePlugin); ok {
			e.scores = append(e.scores, s)
		}
		if a, ok := p.(AllocPlugin); ok {
			e.allocs = append(e.allocs, a)
		}
		if r, ok := p.(ReservePlugin); ok {
			e.reserves = append(e.reserves, r)
		}
	}
	e.bestVec = make([]float64, len(e.scores))
	e.candVec = make([]float64, len(e.scores))
	return e
}

// SetPhaseHook installs the per-phase observation callback.
func (e *Engine) SetPhaseHook(fn func(phase string)) { e.onPhase = fn }

func (e *Engine) observe(phase string) {
	if e.onPhase != nil {
		e.onPhase(phase)
	}
}

// Schedule runs one unit through pre-filter → filter → score → allocate →
// reserve against the transaction and returns the decision. Assigned and
// NewDevice decisions are already reserved onto the transaction when it
// returns; the caller commits or rolls back.
func (e *Engine) Schedule(u Unit, t *Txn) core.Decision {
	pool := t.Pool()

	e.observe(PhasePreFilter)
	var pinned *core.DeviceState
	skipDevices := false
	for _, pf := range e.pre {
		res := pf.PreFilter(u, pool)
		if res.Reject != "" {
			return core.Decision{Outcome: core.Rejected, Reason: res.Reject}
		}
		if res.Pin != nil {
			pinned = res.Pin
		}
		if res.SkipDevices {
			skipDevices = true
		}
	}

	// A pinned device was validated by the pre-filter that pinned it (the
	// GPU-affinity contract: the group's device passed its checks there, and
	// a group-opening idle device is taken unconditionally), so it skips
	// filter and score.
	var chosen *core.DeviceState
	if pinned != nil {
		chosen = pinned
	} else if !skipDevices {
		e.observe(PhaseFilter)
		e.observe(PhaseScore)
		for _, d := range pool.Devices {
			if !e.filterAll(u, d) {
				continue
			}
			for i, s := range e.scores {
				e.candVec[i] = s.Score(u, d)
			}
			if chosen == nil || lexBetter(e.candVec, e.bestVec, d.ID, chosen.ID) {
				chosen = d
				copy(e.bestVec, e.candVec)
			}
		}
	}

	var dec core.Decision
	if chosen != nil {
		dec = core.Decision{Outcome: core.Assigned, GPUID: chosen.ID, NodeName: chosen.NodeName}
	} else {
		e.observe(PhaseAlloc)
		dec = core.Decision{Outcome: core.NoCapacity, Reason: core.NoFreeGPUReason}
		for _, a := range e.allocs {
			if d := a.Allocate(u, pool); d.Outcome != core.NoCapacity {
				dec = d
				break
			} else if d.Reason != "" {
				dec = d
			}
		}
	}

	if dec.Outcome == core.Assigned || dec.Outcome == core.NewDevice {
		e.observe(PhaseReserve)
		for _, r := range e.reserves {
			r.Reserve(u, t, chosen, dec)
		}
	}
	return dec
}

// Unreserve notifies every reserve plugin, newest-registered first, that a
// previously reserved decision is being rolled back (gang all-or-nothing).
// The caller rolls the transaction journal back separately.
func (e *Engine) Unreserve(u Unit, t *Txn, dec core.Decision) {
	for i := len(e.reserves) - 1; i >= 0; i-- {
		e.reserves[i].Unreserve(u, t, dec)
	}
}

// filterAll runs every filter plugin for one (unit, device) pair.
func (e *Engine) filterAll(u Unit, d *core.DeviceState) bool {
	for _, f := range e.filters {
		if !f.Filter(u, d) {
			return false
		}
	}
	return true
}

// FilterOne re-runs the filter plugins for one (unit, device) pair against
// current state — the validation step that turns a speculative ranking into
// a reservation.
func (e *Engine) FilterOne(u Unit, d *core.DeviceState) bool { return e.filterAll(u, d) }

// Rank runs the read-only front half of the pipeline — pre-filter, filter,
// score — for one unit and returns up to k candidate devices, best first
// (the same lexicographic order Schedule uses to pick its winner; the head
// of the list is exactly Schedule's choice against the same pool).
//
// sequentialOnly reports that a pre-filter steered the pipeline (reject,
// pin, or skip-devices): those paths depend on mutable pool state in ways a
// speculative ranking cannot capture, so the unit must take the full
// sequential Schedule path instead.
//
// Rank never mutates the pool, the transaction, or the engine beyond its
// scratch vectors, so distinct Engine instances may rank concurrently
// against a shared read-only pool — the parallel phase of a batched cycle.
func (e *Engine) Rank(u Unit, pool *core.Pool, k int) (cands []*core.DeviceState, sequentialOnly bool) {
	e.observe(PhasePreFilter)
	for _, pf := range e.pre {
		res := pf.PreFilter(u, pool)
		if res.Reject != "" || res.Pin != nil || res.SkipDevices {
			return nil, true
		}
	}
	e.observe(PhaseFilter)
	e.observe(PhaseScore)
	type scored struct {
		d   *core.DeviceState
		vec []float64
	}
	top := make([]scored, 0, k)
	for _, d := range pool.Devices {
		if !e.filterAll(u, d) {
			continue
		}
		for i, s := range e.scores {
			e.candVec[i] = s.Score(u, d)
		}
		pos := len(top)
		for pos > 0 && lexBetter(e.candVec, top[pos-1].vec, d.ID, top[pos-1].d.ID) {
			pos--
		}
		if pos >= k {
			continue
		}
		if len(top) < k {
			top = append(top, scored{})
		}
		copy(top[pos+1:], top[pos:len(top)-1])
		top[pos] = scored{d, append([]float64(nil), e.candVec...)}
	}
	out := make([]*core.DeviceState, len(top))
	for i, s := range top {
		out[i] = s.d
	}
	return out, false
}

// ReserveOn reserves the unit onto a validated candidate device through the
// reserve plugins and returns the Assigned decision — the commit half of a
// ranking that survived FilterOne revalidation.
func (e *Engine) ReserveOn(u Unit, t *Txn, d *core.DeviceState) core.Decision {
	e.observe(PhaseReserve)
	dec := core.Decision{Outcome: core.Assigned, GPUID: d.ID, NodeName: d.NodeName}
	for _, r := range e.reserves {
		r.Reserve(u, t, d, dec)
	}
	return dec
}

// lexBetter reports whether score vector a beats b lexicographically,
// falling back to the lower device ID on a full tie.
func lexBetter(a, b []float64, aID, bID string) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] > b[i]
		}
	}
	return aID < bID
}

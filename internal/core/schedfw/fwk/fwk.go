// Package fwk defines the scheduling framework's extension surface: the
// Unit of work flowing through a scheduling cycle, the phase plugin
// interfaces (pre-filter → filter → score → allocate → reserve), and the
// transactional pool view plugins mutate device state through.
//
// The package depends only on internal/core's pure scheduling types
// (Request, DeviceState, Pool, Decision). Plugins see cluster state
// exclusively through the pool and transaction handed to them and never
// talk to the API server — commits happen in bulk through the framework
// driver after intra-batch conflicts are resolved, a rule tools/detvet
// enforces on plugin packages (no apiserver/store imports).
package fwk

import (
	"time"

	"kubeshare/internal/core"
)

// Unit is one schedulable work item — a pending sharePod's scheduling view.
type Unit struct {
	// Name identifies the sharePod the unit places.
	Name string
	// Created orders units for FIFO fairness (oldest first).
	Created time.Duration
	// Req is the unit's Algorithm 1 request.
	Req core.Request
	// Gang and GangSize carry the unit's all-or-nothing co-scheduling
	// group; Gang == "" for solo units.
	Gang     string
	GangSize int
}

// Plugin is the common surface every phase plugin implements.
type Plugin interface {
	// Name identifies the plugin in phase counters and error messages.
	Name() string
}

// PreFilterResult steers the rest of the pipeline for one unit.
type PreFilterResult struct {
	// Reject aborts scheduling with a terminal rejection (Algorithm 1's
	// "return -1"); the string is the user-visible reason.
	Reject string
	// Pin restricts filter/score to exactly this device (the GPU-affinity
	// grouping: the group's device, or the idle device a new group opens
	// on).
	Pin *core.DeviceState
	// SkipDevices bypasses filter/score entirely and goes straight to the
	// allocate phase (no existing device may host the unit).
	SkipDevices bool
}

// PreFilterPlugin runs once per unit before device enumeration. Multiple
// pre-filters compose: the first Reject wins, the last Pin wins, and
// SkipDevices is sticky.
type PreFilterPlugin interface {
	Plugin
	PreFilter(u Unit, pool *core.Pool) PreFilterResult
}

// FilterPlugin votes a single device in or out for a unit.
type FilterPlugin interface {
	Plugin
	Filter(u Unit, d *core.DeviceState) bool
}

// ScorePlugin ranks devices that survived filtering. Scores from multiple
// plugins are compared lexicographically in registration order: a strictly
// higher score from an earlier plugin dominates, later plugins only break
// its exact ties, and a full tie falls to the lowest device ID. The
// lexicographic contract is what lets a scorer express banded precedence
// (e.g. "plain devices before affinity-labelled ones") without folding
// bands into one float and losing resolution.
type ScorePlugin interface {
	Plugin
	Score(u Unit, d *core.DeviceState) float64
}

// AllocPlugin proposes a placement when no existing device was chosen —
// typically by deciding where a fresh vGPU would be created. It must not
// mutate the pool: it returns NewDevice (with the node and a fresh GPUID
// from pool.NewID) or NoCapacity, and the reserve phase performs the
// creation transactionally.
type AllocPlugin interface {
	Plugin
	Allocate(u Unit, pool *core.Pool) core.Decision
}

// ReservePlugin commits a decision onto the transactional pool view
// (Reserve) and releases plugin-internal bookkeeping when the framework
// rolls a reservation back (Unreserve). Pool state itself is restored by
// the transaction journal — Unreserve exists for state the plugin keeps
// outside the pool.
type ReservePlugin interface {
	Plugin
	Reserve(u Unit, t *Txn, d *core.DeviceState, dec core.Decision)
	Unreserve(u Unit, t *Txn, dec core.Decision)
}

package fwk

import "kubeshare/internal/core"

// Txn is the transactional view of one scheduling cycle's pool. Reserve
// plugins mutate devices only through it; every mutation is journaled, so
// the driver can checkpoint before a gang's first member and roll the whole
// group back when a later member fails — the all-or-nothing reserve.
//
// The journal is an undo log, not a copy of the pool: rollback restores
// exactly the devices touched since the checkpoint (saved-value restore for
// placements, removal for created devices), so a batch over thousands of
// devices pays only for what it reserved.
type Txn struct {
	pool    *core.Pool
	journal []txnOp
}

// Mark is a checkpoint into the transaction journal.
type Mark int

type txnOpKind int

const (
	opPlace txnOpKind = iota
	opAddDevice
)

type txnOp struct {
	kind txnOpKind
	dev  *core.DeviceState
	// saved is the device's pre-mutation value (opPlace).
	saved *core.DeviceState
	// node regains its free physical GPU on rollback (opAddDevice).
	node string
}

// NewTxn wraps a cycle's pool. The pool is private to the cycle (the
// snapshot materializes a fresh one per cycle), so the transaction owns it.
func NewTxn(pool *core.Pool) *Txn { return &Txn{pool: pool} }

// Pool exposes the pool for reading (filters, scorers, allocators).
// Mutations must go through Place / AddDevice.
func (t *Txn) Pool() *core.Pool { return t.pool }

// Checkpoint marks the current journal position for a later Rollback.
func (t *Txn) Checkpoint() Mark { return Mark(len(t.journal)) }

// Place commits a request onto an existing device, journaling the device's
// prior value.
func (t *Txn) Place(d *core.DeviceState, r core.Request) {
	t.journal = append(t.journal, txnOp{kind: opPlace, dev: d, saved: d.Clone()})
	d.Place(r)
}

// AddDevice creates a fresh vGPU on node (consuming one free physical GPU),
// places the request on it, and appends it to the pool — the reserve half
// of a NewDevice decision.
func (t *Txn) AddDevice(node, id string, r core.Request) *core.DeviceState {
	t.pool.FreePhysical[node]--
	d := core.NewDeviceState(id, node)
	if t.pool.MemFactor > 0 {
		d.MemCapacity = t.pool.MemFactor
		d.Mem = t.pool.MemFactor
	}
	d.Place(r)
	t.pool.Devices = append(t.pool.Devices, d)
	t.journal = append(t.journal, txnOp{kind: opAddDevice, dev: d, node: node})
	return d
}

// Rollback undoes every mutation after the mark, newest first. Created
// devices pop off the pool tail in reverse creation order (placements on
// other devices do not reorder the slice, so each popped entry is exactly
// the journaled device).
func (t *Txn) Rollback(m Mark) {
	for i := len(t.journal) - 1; i >= int(m); i-- {
		op := t.journal[i]
		switch op.kind {
		case opPlace:
			*op.dev = *op.saved
		case opAddDevice:
			t.pool.Devices = t.pool.Devices[:len(t.pool.Devices)-1]
			t.pool.FreePhysical[op.node]++
		}
	}
	t.journal = t.journal[:m]
}

// Len reports the number of journaled mutations (for tests and stats).
func (t *Txn) Len() int { return len(t.journal) }

package schedfw

import (
	"fmt"
	"time"

	"kubeshare/internal/core"
	"kubeshare/internal/core/schedfw/fwk"
	"kubeshare/internal/kube/api"
	"kubeshare/internal/sim"
)

// gangState tracks one gang's admission progress across cycles.
type gangState struct {
	// firstHold is when the gang first reserved capacity it could not yet
	// commit; the hold expires gangTimeout later.
	firstHold time.Duration
	// size is the member count the hold was armed for; growth re-arms the
	// window (new members are fresh evidence the gang is still assembling).
	size int
	// expired marks a gang whose hold timed out: it still gets an
	// all-or-nothing admission attempt each cycle, but failed reservations
	// release immediately instead of blocking younger work.
	expired bool
}

// scheduleGang runs one gang's all-or-nothing admission inside the current
// cycle. All pending members are decided back-to-back against the cycle
// transaction:
//
//   - Complete gang, every member placed → all placements staged, committed
//     with the rest of the batch.
//   - Any member Rejected → the whole gang is rejected (the constraint
//     conflict is deterministic; waiting cannot fix it).
//   - Incomplete gang, or insufficient capacity → nothing commits. Within
//     the hold window the partial reservations stay on the transaction for
//     the remainder of the cycle, shielding the gang's capacity from
//     younger units; the transaction dies with the cycle, so nothing leaks.
//     Past the window the reservations roll back immediately.
//
// It returns the number of staged units (the gang's contribution to the
// batch budget).
func (s *Scheduler) scheduleGang(gang string, pending []*core.SharePod, txn *fwk.Txn, out *[]staged) int {
	// Gather the gang's live members from the whole pending set (not just
	// the batch window), oldest first — pending is already age-sorted.
	var members []*core.SharePod
	for _, cand := range pending {
		sp, err := core.SharePods(s.srv).Get(cand.Name)
		if err != nil || sp.Placed() || sp.Terminated() {
			continue
		}
		if gangOf(sp) == gang {
			members = append(members, sp)
		}
	}
	if len(members) == 0 {
		return 0
	}
	size := members[0].Spec.GangSize
	complete := len(members) >= size

	mark := txn.Checkpoint()
	type decidedUnit struct {
		sp  *core.SharePod
		u   fwk.Unit
		dec core.Decision
	}
	var decided []decidedUnit
	rejectReason := ""
	short := false
	for _, sp := range members {
		u := unitOf(sp)
		dec := s.decideOne(u, txn)
		s.decisions.Inc()
		switch dec.Outcome {
		case core.Rejected:
			rejectReason = fmt.Sprintf("gang %s: member %s unschedulable: %s", gang, sp.Name, dec.Reason)
		case core.NoCapacity:
			short = true
			if txn.Len() > int(mark) {
				s.conflicts.Inc()
			}
		default:
			decided = append(decided, decidedUnit{sp: sp, u: u, dec: dec})
			continue
		}
		break
	}

	unwind := func() {
		for i := len(decided) - 1; i >= 0; i-- {
			s.engine.Unreserve(decided[i].u, txn, decided[i].dec)
		}
		txn.Rollback(mark)
	}

	switch {
	case rejectReason != "":
		// A member's constraints are unsatisfiable — the gang can never be
		// admitted whole, so every member is rejected with the shared reason.
		unwind()
		for _, sp := range members {
			*out = append(*out, staged{name: sp.Name, key: api.Key(sp), created: sp.CreationTime,
				dec: core.Decision{Outcome: core.Rejected, Reason: rejectReason}})
		}
		delete(s.gangs, gang)
		return len(members)

	case complete && !short:
		// All-or-nothing satisfied: stage every member.
		for _, d := range decided {
			*out = append(*out, staged{name: d.sp.Name, key: api.Key(d.sp), created: d.sp.CreationTime, dec: d.dec})
		}
		delete(s.gangs, gang)
		s.gangAdmitted.Inc()
		return len(members)

	default:
		// Incomplete membership or not enough capacity: hold or release.
		now := s.env.Now()
		st := s.gangs[gang]
		if st == nil {
			st = &gangState{firstHold: now, size: len(members)}
			s.gangs[gang] = st
		} else if len(members) > st.size {
			st.firstHold, st.size, st.expired = now, len(members), false
		}
		if !st.expired && now-st.firstHold >= s.gangTimeout {
			st.expired = true
			s.gangTimeouts.Inc()
		}
		if st.expired {
			unwind()
		} else {
			// Keep the partial reservations on the transaction so younger
			// units this cycle cannot take the gang's capacity; arm a wake
			// for the hold's expiry in case no cluster event arrives first.
			s.armGangTimer(st.firstHold + s.gangTimeout)
		}
		return 0
	}
}

// armGangTimer schedules a wakeup at the given deadline so a held gang's
// timeout is evaluated even on an otherwise quiet cluster. A single earlier
// or equal pending timer suffices.
func (s *Scheduler) armGangTimer(deadline time.Duration) {
	if s.timerDeadline != 0 && s.timerDeadline <= deadline {
		return
	}
	s.timerDeadline = deadline
	s.timerProcs = append(s.timerProcs, s.env.Go("kubeshare-sched-gang-timer", func(p *sim.Proc) {
		if d := deadline - s.env.Now(); d > 0 {
			p.Sleep(d)
		}
		if s.timerDeadline == deadline {
			s.timerDeadline = 0
		}
		s.kick()
	}))
}

package schedfw

import (
	"kubeshare/internal/core"
	"kubeshare/internal/kube"
)

// Install deploys KubeShare onto a cluster with the framework driver — the
// standard composition: the shared base wiring (validators, holder image,
// per-node device-library backends, DevMgr) plus the batched plugin-phased
// scheduler. With no options the sequential compat cycle runs (single-unit
// batches, Algorithm 1 phases in order); pass WithBatchSize /
// WithGangTimeout / WithPlugins / WithParallelPhases to opt into the
// framework extensions.
func Install(c *kube.Cluster, cfg core.Config, opts ...Option) (*core.KubeShare, error) {
	ks, err := core.InstallBase(c, cfg)
	if err != nil {
		return nil, err
	}
	sched := New(c.Env, c.API, append([]Option{WithConfig(cfg.Scheduler)}, opts...)...)
	ks.Sched = sched
	ks.DevMgr.Start()
	sched.Start()
	return ks, nil
}

// InstallExtender deploys the scheduler-extender baseline on the framework
// driver in place of KubeShare-Sched, sharing the DevMgr and device-library
// machinery so the comparison isolates the scheduling policy.
func InstallExtender(c *kube.Cluster, cfg core.Config, opts ...Option) (*core.KubeShare, *Extender, error) {
	ks, err := core.InstallBase(c, cfg)
	if err != nil {
		return nil, nil, err
	}
	ext := NewExtender(c.Env, c.API, append([]Option{WithConfig(cfg.Scheduler)}, opts...)...)
	ks.Sched = ext
	ks.DevMgr.Start()
	ext.Start()
	return ks, ext, nil
}

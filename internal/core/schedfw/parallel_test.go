package schedfw_test

import (
	"fmt"
	"testing"
	"time"

	"kubeshare/internal/core"
	"kubeshare/internal/core/schedfw"
	"kubeshare/internal/kube"
	"kubeshare/internal/sim"
	"kubeshare/internal/workload"
)

// laneStack is newStack plus an event-lane partition, set before the
// cluster exists (SetLanes must precede all scheduling).
func laneStack(t *testing.T, lanes, nodes, gpus int, opts ...schedfw.Option) *stack {
	t.Helper()
	env := sim.NewEnv()
	env.SetLanes(lanes)
	cfg := kube.Config{}
	for i := 0; i < nodes; i++ {
		cfg.Nodes = append(cfg.Nodes, kube.NodeConfig{Name: fmt.Sprintf("node-%d", i), GPUs: gpus})
	}
	c, err := kube.NewCluster(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ks, err := schedfw.Install(c, core.Config{}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	workload.RegisterImages(c)
	return &stack{env: env, c: c, ks: ks}
}

// burst submits n sharePods at staggered instants with varied demands.
func burst(t *testing.T, s *stack, n int) []string {
	var names []string
	for i := 0; i < n; i++ {
		i := i
		sp := trainPod(fmt.Sprintf("sp-%03d", i), 0.2+0.05*float64(i%7), 0.15+0.05*float64(i%5), 20+i%4*10)
		if i%9 == 0 {
			sp.Spec.Affinity = fmt.Sprintf("grp-%d", i/9%3)
		}
		names = append(names, sp.Name)
		s.env.Go("submit-"+sp.Name, func(p *sim.Proc) {
			p.Sleep(time.Duration(i/8) * 50 * time.Millisecond)
			s.create(t, sp)
		})
	}
	return names
}

// TestParallelPhasesDeterministic pins the tentpole contract of the
// two-phase parallel cycle: placements, phases, decision and conflict
// counts are byte-identical at every lane count — the lane partition only
// distributes the ranking computation, never the outcome.
func TestParallelPhasesDeterministic(t *testing.T) {
	const n = 48
	run := func(lanes int) (map[string]placement, core.SchedStats) {
		s := laneStack(t, lanes, 4, 4,
			schedfw.WithBatchSize(16), schedfw.WithParallelPhases())
		names := burst(t, s, n)
		s.env.Run()
		if err := s.ks.Sched.VerifySnapshot(); err != nil {
			t.Fatalf("lanes=%d: snapshot diverged: %v", lanes, err)
		}
		return collect(t, s, names), s.ks.Stats()
	}
	basePl, baseSt := run(1)
	for _, lanes := range []int{2, 4, 8} {
		pl, st := run(lanes)
		for name, w := range basePl {
			if pl[name] != w {
				t.Errorf("lanes=%d: %s placed %+v, single-lane %+v", lanes, name, pl[name], w)
			}
		}
		if st != baseSt {
			t.Errorf("lanes=%d: stats %+v, single-lane %+v", lanes, st, baseSt)
		}
	}
}

// TestParallelPhasesComplete checks every unit of a contended burst lands
// (or terminates) under the parallel cycle: speculative rankings that go
// stale must fall back, not strand work.
func TestParallelPhasesComplete(t *testing.T) {
	s := laneStack(t, 4, 2, 2,
		schedfw.WithBatchSize(8), schedfw.WithParallelPhases())
	names := burst(t, s, 24)
	s.env.Run()
	for _, name := range names {
		sp := s.get(t, name)
		if sp.Status.Phase != core.SharePodSucceeded {
			t.Errorf("%s phase = %s (%s)", name, sp.Status.Phase, sp.Status.Message)
		}
	}
}

// TestParallelPhasesGangAndConflict checks the sequential-only paths stay
// correct under the parallel cycle: gangs admit all-or-nothing, and two
// units racing for one slice in one batch serialize with a conflict count.
func TestParallelPhasesGangAndConflict(t *testing.T) {
	s := laneStack(t, 4, 1, 1,
		schedfw.WithBatchSize(2), schedfw.WithParallelPhases())
	s.env.Go("submit", func(p *sim.Proc) {
		s.create(t, trainPod("sp-old", 0.6, 0.6, 30))
		s.create(t, trainPod("sp-young", 0.6, 0.6, 30))
	})
	s.env.Run()
	old, young := s.get(t, "sp-old"), s.get(t, "sp-young")
	if old.Status.Phase != core.SharePodSucceeded || young.Status.Phase != core.SharePodSucceeded {
		t.Fatalf("phases: old=%s young=%s", old.Status.Phase, young.Status.Phase)
	}
	if !(old.Status.ScheduledTime < young.Status.ScheduledTime) {
		t.Errorf("conflict not serialized: old %v, young %v",
			old.Status.ScheduledTime, young.Status.ScheduledTime)
	}
	if n := s.c.Obs.Counter(schedfw.MetricSchedConflicts).Value(); n < 1 {
		t.Errorf("batch conflicts = %d, want >= 1", n)
	}

	g := laneStack(t, 2, 1, 4, schedfw.WithParallelPhases())
	g.env.Go("submit", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			g.create(t, gangPod(fmt.Sprintf("gm-%d", i), "team", 3, 0.9, 30))
			if i < 2 {
				p.Sleep(time.Second)
			}
		}
	})
	g.env.Run()
	var schedAt []time.Duration
	for i := 0; i < 3; i++ {
		sp := g.get(t, fmt.Sprintf("gm-%d", i))
		if sp.Status.Phase != core.SharePodSucceeded {
			t.Fatalf("gm-%d phase = %s (%s)", i, sp.Status.Phase, sp.Status.Message)
		}
		schedAt = append(schedAt, sp.Status.ScheduledTime)
	}
	if schedAt[0] != schedAt[1] || schedAt[1] != schedAt[2] {
		t.Errorf("gang not admitted atomically: %v", schedAt)
	}
}

// Package plugins re-expresses Algorithm 1 as the scheduling framework's
// default plugin set, placement-for-placement identical to core.Schedule:
//
//   - GPUAffinity (pre-filter): step 1's affinity-directed placement — pin
//     the group's device (rejecting on exclusion/anti-affinity/capacity
//     conflicts with the legacy reason strings), pin the lowest idle device
//     for a group's first member, or skip straight to allocation.
//   - Exclusion, AntiAffinity, ResourceFit (filters): step 2's candidate
//     filter; idle devices always qualify (their previous tenants are gone).
//   - LocalityBand, LocalityFit (scores): step 3's placement policy as a
//     lexicographic score — plain devices before affinity-labelled ones,
//     best fit within plain (maximize -residual), worst fit within labelled
//     (maximize residual). Negation keeps the float comparisons exactly the
//     ones bestFit/worstFit make, so ties break identically.
//   - NodeSpread (alloc): the new-vGPU fallback on the node with the most
//     free physical GPUs.
//   - DeviceCommit (reserve): the only writer — commits Assigned/NewDevice
//     decisions onto the cycle's pool transaction.
//
// Plugins never touch the API server: tools/detvet rejects apiserver/store
// imports in plugin packages, keeping all commits on the framework's
// reserve/commit path.
package plugins

import (
	"fmt"

	"kubeshare/internal/core"
	"kubeshare/internal/core/schedfw/fwk"
)

// Default returns the default plugin set — Algorithm 1 in phases, in the
// paper's policy (best fit on plain devices, worst fit on labelled ones).
func Default() []fwk.Plugin {
	return []fwk.Plugin{
		GPUAffinity{},
		Exclusion{},
		AntiAffinity{},
		ResourceFit{},
		MemoryFit{},
		LocalityBand{},
		LocalityFit{},
		NodeSpread{},
		DeviceCommit{},
	}
}

// GPUAffinity is Algorithm 1 step 1: affinity-directed placement. A unit
// carrying an affinity label either joins the device already hosting its
// group (pinned; rejected if exclusion, anti-affinity or capacity forbid
// it), opens the group on the lowest idle device, or — with no idle device
// left — goes straight to new-device allocation.
type GPUAffinity struct{}

// Name implements fwk.Plugin.
func (GPUAffinity) Name() string { return "gpu-affinity" }

// PreFilter implements fwk.PreFilterPlugin.
func (GPUAffinity) PreFilter(u fwk.Unit, pool *core.Pool) fwk.PreFilterResult {
	r := u.Req
	if r.Aff == "" {
		return fwk.PreFilterResult{}
	}
	if d := core.FindAffinity(pool, r.Aff); d != nil {
		if d.Excl != r.Excl {
			return fwk.PreFilterResult{Reject: fmt.Sprintf(
				"affinity device %s has exclusion %q, request has %q", d.ID, d.Excl, r.Excl)}
		}
		if r.Anti != "" && d.Anti[r.Anti] {
			return fwk.PreFilterResult{Reject: fmt.Sprintf(
				"affinity device %s already hosts anti-affinity label %q", d.ID, r.Anti)}
		}
		if !d.Fits(r) {
			return fwk.PreFilterResult{Reject: fmt.Sprintf(
				"affinity device %s lacks capacity (util %.2f/%.2f, mem %.2f/%.2f)",
				d.ID, r.Util, d.Util, r.Mem, d.Mem)}
		}
		return fwk.PreFilterResult{Pin: d}
	}
	// First container with this affinity label: prefer an idle device so the
	// group has room to grow, else a new one.
	if d := core.FirstIdle(pool); d != nil {
		return fwk.PreFilterResult{Pin: d}
	}
	return fwk.PreFilterResult{SkipDevices: true}
}

// Exclusion filters devices whose exclusion label conflicts with the
// unit's. Idle devices always pass — their previous tenants are gone.
type Exclusion struct{}

// Name implements fwk.Plugin.
func (Exclusion) Name() string { return "exclusion" }

// Filter implements fwk.FilterPlugin.
func (Exclusion) Filter(u fwk.Unit, d *core.DeviceState) bool {
	if d.Idle {
		return true
	}
	return (u.Req.Excl == "" && d.Excl == "") || u.Req.Excl == d.Excl
}

// AntiAffinity filters devices already hosting the unit's anti-affinity
// label.
type AntiAffinity struct{}

// Name implements fwk.Plugin.
func (AntiAffinity) Name() string { return "anti-affinity" }

// Filter implements fwk.FilterPlugin.
func (AntiAffinity) Filter(u fwk.Unit, d *core.DeviceState) bool {
	if d.Idle {
		return true
	}
	return u.Req.Anti == "" || !d.Anti[u.Req.Anti]
}

// ResourceFit filters devices whose residual compute or memory cannot hold
// the unit.
type ResourceFit struct{}

// Name implements fwk.Plugin.
func (ResourceFit) Name() string { return "resource-fit" }

// Filter implements fwk.FilterPlugin.
func (ResourceFit) Filter(u fwk.Unit, d *core.DeviceState) bool {
	if d.Idle {
		return true
	}
	return d.Fits(u.Req)
}

// MemoryFit filters devices that cannot hold the unit's absolute memory
// request (gpu_mem_bytes) against the byte-denominated residual. Fractional
// units pass through untouched, so legacy placements are identical; idle
// devices are handled inside FitsMemBytes (full byte capacity) rather than
// auto-passing, because a byte demand can exceed even an empty device.
// Partially redundant with ResourceFit (Fits folds the same check in for
// Algorithm-1 equivalence), but as its own phase the rejection is visible
// per-plugin in the framework's filter accounting.
type MemoryFit struct{}

// Name implements fwk.Plugin.
func (MemoryFit) Name() string { return "memory-fit" }

// Filter implements fwk.FilterPlugin.
func (MemoryFit) Filter(u fwk.Unit, d *core.DeviceState) bool {
	return d.FitsMemBytes(u.Req)
}

// LocalityBand is the precedence half of step 3's policy: plain devices
// (no affinity labels, or idle) strictly before affinity-labelled ones.
// Registered before LocalityFit, its 1/0 score dominates lexicographically.
type LocalityBand struct{}

// Name implements fwk.Plugin.
func (LocalityBand) Name() string { return "locality-band" }

// Score implements fwk.ScorePlugin.
func (LocalityBand) Score(u fwk.Unit, d *core.DeviceState) float64 {
	if len(d.Aff) == 0 || d.Idle {
		return 1
	}
	return 0
}

// LocalityFit is the fit half of step 3's policy, breaking LocalityBand's
// ties: best fit (smallest residual) within the plain band, worst fit
// (largest residual) within the labelled band — the fragmentation-vs-growth
// trade the paper picks. Scores negate rather than subtract residuals, so
// the comparison is bit-exact with bestFit/worstFit and ties fall to the
// same lowest-ID device.
type LocalityFit struct {
	// Policy selects the ablation variant; the zero value is the paper's.
	Policy core.PlacementPolicy
}

// Name implements fwk.Plugin.
func (p LocalityFit) Name() string { return "locality-fit" }

// Score implements fwk.ScorePlugin.
func (p LocalityFit) Score(u fwk.Unit, d *core.DeviceState) float64 {
	plain := len(d.Aff) == 0 || d.Idle
	best := -core.Residual(d) // maximize -residual == best fit
	worst := core.Residual(d) // maximize residual == worst fit
	switch p.Policy {
	case core.BestBest:
		return best
	case core.WorstWorst:
		return worst
	case core.FirstFit:
		return 0 // full tie: lowest device ID wins — pool-order first fit
	default: // PaperPolicy
		if plain {
			return best
		}
		return worst
	}
}

// NodeSpread proposes a fresh vGPU on the node with the most free physical
// GPUs (spreading acquisition); NoCapacity when the cluster has none left.
// It only decides — DeviceCommit performs the creation in reserve, so a
// gang rollback can return the physical GPU.
type NodeSpread struct{}

// Name implements fwk.Plugin.
func (NodeSpread) Name() string { return "node-spread" }

// Allocate implements fwk.AllocPlugin.
func (NodeSpread) Allocate(u fwk.Unit, pool *core.Pool) core.Decision {
	node := core.PickNewDeviceNode(pool)
	if node == "" {
		return core.Decision{Outcome: core.NoCapacity, Reason: core.NoFreeGPUReason}
	}
	return core.Decision{Outcome: core.NewDevice, GPUID: pool.NewID(), NodeName: node}
}

// DeviceCommit is the reserve-phase writer: it commits Assigned decisions
// onto their device and materializes NewDevice decisions, both through the
// cycle transaction so the framework can roll them back.
type DeviceCommit struct{}

// Name implements fwk.Plugin.
func (DeviceCommit) Name() string { return "device-commit" }

// Reserve implements fwk.ReservePlugin.
func (DeviceCommit) Reserve(u fwk.Unit, t *fwk.Txn, d *core.DeviceState, dec core.Decision) {
	switch dec.Outcome {
	case core.Assigned:
		t.Place(d, u.Req)
	case core.NewDevice:
		t.AddDevice(dec.NodeName, dec.GPUID, u.Req)
	}
}

// Unreserve implements fwk.ReservePlugin; pool restoration is the
// transaction journal's job, and DeviceCommit keeps no other state.
func (DeviceCommit) Unreserve(u fwk.Unit, t *fwk.Txn, dec core.Decision) {}

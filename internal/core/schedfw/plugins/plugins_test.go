package plugins_test

import (
	"fmt"
	"math/rand"
	"testing"

	"kubeshare/internal/core"
	"kubeshare/internal/core/schedfw/fwk"
	"kubeshare/internal/core/schedfw/plugins"
)

// serialID mirrors the driver's vGPU ID generator; each pool under
// comparison gets its own counter so both see the same ID sequence.
func serialID() func() string {
	n := 0
	return func() string { n++; return fmt.Sprintf("vgpu-%04d", n) }
}

var (
	affLabels  = []string{"", "g1", "g2", "g3"}
	antiLabels = []string{"", "t1", "t2"}
	exclLabels = []string{"", "x1", "x2"}
)

func randomRequest(rng *rand.Rand) core.Request {
	return core.Request{
		Util: float64(rng.Intn(20)+1) / 20, // 0.05 … 1.00
		Mem:  float64(rng.Intn(20)+1) / 20,
		Aff:  affLabels[rng.Intn(len(affLabels))],
		Anti: antiLabels[rng.Intn(len(antiLabels))],
		Excl: exclLabels[rng.Intn(len(exclLabels))],
	}
}

// randomPoolPair builds two structurally identical pools by replaying the
// same construction onto both: devices carved on random nodes, each loaded
// with a few placed requests (or left idle), plus free physical headroom.
func randomPoolPair(rng *rand.Rand) (*core.Pool, *core.Pool) {
	a := &core.Pool{FreePhysical: map[string]int{}, NewID: serialID(), MemFactor: 1}
	b := &core.Pool{FreePhysical: map[string]int{}, NewID: serialID(), MemFactor: 1}
	nodes := rng.Intn(4) + 1
	for n := 0; n < nodes; n++ {
		node := fmt.Sprintf("node%d", n)
		free := rng.Intn(4)
		if free > 0 {
			a.FreePhysical[node] = free
			b.FreePhysical[node] = free
		}
		for g := 0; g < rng.Intn(4); g++ {
			id := fmt.Sprintf("gpu-%s-%d", node, g)
			da, db := core.NewDeviceState(id, node), core.NewDeviceState(id, node)
			for t := 0; t < rng.Intn(3); t++ {
				r := randomRequest(rng)
				if !da.Fits(r) {
					continue
				}
				da.Place(r)
				db.Place(r)
			}
			a.Devices = append(a.Devices, da)
			b.Devices = append(b.Devices, db)
		}
	}
	return a, b
}

// TestEngineMatchesAlgorithm1 is the framework's equivalence property: the
// default plugin set run through the engine must make the same decision —
// outcome, device, node, reason — as core.Schedule on every request of a
// random sequence, and leave the pool in the same state, for every policy
// variant.
func TestEngineMatchesAlgorithm1(t *testing.T) {
	policies := []core.PlacementPolicy{core.PaperPolicy, core.BestBest, core.WorstWorst, core.FirstFit}
	for _, policy := range policies {
		policy := policy
		t.Run(fmt.Sprintf("policy-%d", policy), func(t *testing.T) {
			set := plugins.Default()
			for i, p := range set {
				if _, ok := p.(plugins.LocalityFit); ok {
					set[i] = plugins.LocalityFit{Policy: policy}
				}
			}
			eng := fwk.NewEngine(set)
			for seed := int64(0); seed < 200; seed++ {
				rng := rand.New(rand.NewSource(seed))
				legacy, framework := randomPoolPair(rng)
				txn := fwk.NewTxn(framework)
				for step := 0; step < 30; step++ {
					r := randomRequest(rng)
					want := core.ScheduleWithPolicy(r, legacy, policy)
					got := eng.Schedule(fwk.Unit{Name: fmt.Sprintf("sp-%d", step), Req: r}, txn)
					if got != want {
						t.Fatalf("seed %d step %d req %+v: engine %+v, legacy %+v", seed, step, r, got, want)
					}
				}
				if err := core.DiffPools(framework, legacy); err != nil {
					t.Fatalf("seed %d: pools diverged after sequence: %v", seed, err)
				}
			}
		})
	}
}

// TestTxnRollback pins the undo log: placements and device creations after a
// checkpoint roll back to exactly the checkpointed pool.
func TestTxnRollback(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed + 1000))
		want, pool := randomPoolPair(rng) // want stays untouched as the reference
		eng := fwk.NewEngine(plugins.Default())
		txn := fwk.NewTxn(pool)
		mark := txn.Checkpoint()
		for step := 0; step < 20; step++ {
			eng.Schedule(fwk.Unit{Req: randomRequest(rng)}, txn)
		}
		txn.Rollback(mark)
		if txn.Len() != 0 {
			t.Fatalf("seed %d: journal length %d after full rollback", seed, txn.Len())
		}
		if err := core.DiffPools(pool, want); err != nil {
			t.Fatalf("seed %d: rollback did not restore pool: %v", seed, err)
		}
	}
}

// TestTxnPartialRollback checks that rolling back to a mid-sequence mark
// keeps the prefix: replaying the prefix onto a fresh pool matches.
func TestTxnPartialRollback(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	reference, pool := randomPoolPair(rng)
	var reqs []core.Request
	for i := 0; i < 12; i++ {
		reqs = append(reqs, randomRequest(rng))
	}

	eng := fwk.NewEngine(plugins.Default())
	txn := fwk.NewTxn(pool)
	for _, r := range reqs[:6] {
		eng.Schedule(fwk.Unit{Req: r}, txn)
	}
	mark := txn.Checkpoint()
	for _, r := range reqs[6:] {
		eng.Schedule(fwk.Unit{Req: r}, txn)
	}
	txn.Rollback(mark)

	for _, r := range reqs[:6] {
		core.Schedule(r, reference)
	}
	if err := core.DiffPools(pool, reference); err != nil {
		t.Fatalf("partial rollback diverged from prefix replay: %v", err)
	}
}

// Package schedfw is the scheduling framework driver: the batched,
// plugin-phased successor to the legacy single-sharePod KubeShare-Sched
// loop. Each cycle drains the pending queue into a batch, runs every unit
// through the fwk engine (pre-filter → filter → score → allocate → reserve)
// against a transactional view of the incremental snapshot, resolves
// intra-batch conflicts through the reservation journal, and commits the
// staged placements in bulk through the API server.
//
// The default configuration — the Algorithm 1 plugin set, batch size 1 —
// reproduces the legacy scheduler's placements, spans, events and counters
// exactly; batching and gang scheduling are opt-in extensions on the same
// pipeline.
package schedfw

import (
	"fmt"
	"time"

	"kubeshare/internal/core"
	"kubeshare/internal/core/schedfw/fwk"
	"kubeshare/internal/core/schedfw/plugins"
	"kubeshare/internal/kube/api"
	"kubeshare/internal/kube/apiserver"
	"kubeshare/internal/kube/store"
	"kubeshare/internal/obs"
	"kubeshare/internal/sim"
)

// Framework-specific metric names (the shared scheduling families live in
// package core).
const (
	// MetricSchedConflicts counts intra-batch reservation conflicts: a unit
	// that found no capacity in a cycle where an earlier unit of the same
	// batch had already reserved some.
	MetricSchedConflicts = "kubeshare_sched_batch_conflicts_total"
	// MetricSchedGangAdmissions counts gangs admitted all-or-nothing.
	MetricSchedGangAdmissions = "kubeshare_sched_gang_admissions_total"
	// MetricSchedGangTimeouts counts gangs whose capacity hold expired.
	MetricSchedGangTimeouts = "kubeshare_sched_gang_timeouts_total"
	// metricPhasePrefix prefixes the per-phase run counters
	// (kubeshare_sched_phase_<phase>_runs_total).
	metricPhasePrefix = "kubeshare_sched_phase_"
)

// PhaseMetric returns the run-counter name for a fwk phase.
func PhaseMetric(phase string) string { return metricPhasePrefix + phase + "_runs_total" }

// Defaults for the framework knobs.
const (
	// DefaultBatchSize keeps the driver in compat mode: one placement per
	// cycle, exactly the legacy loop's pace.
	DefaultBatchSize = 1
	// DefaultGangTimeout bounds how long an incomplete gang may hold
	// reserved capacity against younger work.
	DefaultGangTimeout = 30 * time.Second
)

type options struct {
	cfg         core.SchedulerConfig
	batchSize   int
	gangTimeout time.Duration
	plugins     []fwk.Plugin
	parallel    bool
}

// Option configures the framework driver.
type Option func(*options)

// WithConfig seeds every knob a core.SchedulerConfig carries (cycle
// latency, overcommit factor, Decide override) in one option.
func WithConfig(cfg core.SchedulerConfig) Option {
	return func(o *options) { o.cfg = cfg }
}

// WithCycleLatency sets the modelled per-cycle decision latency.
func WithCycleLatency(d time.Duration) Option {
	return func(o *options) { o.cfg.CycleLatency = d }
}

// WithMemOvercommit scales each device's schedulable gpu_mem capacity.
func WithMemOvercommit(f float64) Option {
	return func(o *options) { o.cfg.MemOvercommitFactor = f }
}

// WithDecide overrides the placement algorithm with a bare decide function
// (§4.6's pluggable-policy claim, legacy form). The function commits onto
// the pool directly, bypassing the reservation journal — gang rollback is
// unavailable under it. New policies should be expressed as plugins instead.
func WithDecide(fn func(core.Request, *core.Pool) core.Decision) Option {
	return func(o *options) { o.cfg.Decide = fn }
}

// WithBatchSize sets how many placements one cycle may stage. n <= 1 is
// compat mode; larger batches amortize the cycle latency and the pool
// materialization across n decisions.
func WithBatchSize(n int) Option {
	return func(o *options) { o.batchSize = n }
}

// WithGangTimeout bounds an incomplete gang's capacity hold.
func WithGangTimeout(d time.Duration) Option {
	return func(o *options) { o.gangTimeout = d }
}

// WithPlugins replaces the default Algorithm 1 plugin set.
func WithPlugins(ps ...fwk.Plugin) Option {
	return func(o *options) { o.plugins = ps }
}

// WithParallelPhases enables the speculative two-phase batched cycle: the
// read-only pre-filter/filter/score work for the batch's front window is
// fanned out across the environment's event lanes (sim.Env.SetLanes), each
// lane ranking its hash-assigned units with a private engine against the
// cycle-start pool; reservations then commit sequentially in age order,
// revalidating each speculative candidate against the live transaction.
// The outcome is a pure function of (pending set, pool) — identical at any
// lane count and any GOMAXPROCS — but may differ from compat mode's
// placements, because ranking scores the cycle-start pool rather than the
// partially reserved one. Incompatible with WithDecide (the override is
// taken sequentially).
func WithParallelPhases() Option {
	return func(o *options) { o.parallel = true }
}

// Scheduler is the framework driver. It owns everything the plugins must
// not: the watch streams and incremental snapshot, the cycle clock, the
// batch transaction, gang holds, and the bulk commit path to the API server.
type Scheduler struct {
	env    *sim.Env
	srv    *apiserver.Server
	cfg    core.SchedulerConfig
	engine *fwk.Engine

	batchSize   int
	gangTimeout time.Duration

	// Parallel-phase state: a private ranking engine per event lane plus its
	// phase-run tally, merged into the shared counters after each window.
	parallel    bool
	pluginSet   []fwk.Plugin
	laneEngines []*fwk.Engine
	lanePhase   []map[string]int

	snap   *core.Snapshot
	wake   *sim.Queue[struct{}]
	nextID int
	proc   *sim.Proc

	reflectors []*apiserver.Reflector
	watchProcs []*sim.Proc
	timerProcs []*sim.Proc

	gangs map[string]*gangState
	// timerDeadline is the earliest armed gang-timeout wake ( 0 = none).
	timerDeadline time.Duration
	// epoch is the apiserver restart epoch the cross-cycle state was built
	// in; a mismatch before a cycle invalidates gang holds (see checkEpoch).
	epoch int64

	tracer       *obs.Tracer
	recorder     *obs.Recorder
	decisions    *obs.Counter
	requeues     *obs.Counter
	noCapacity   *obs.Counter
	depth        *obs.Gauge
	schedHist    *obs.Histogram
	conflicts    *obs.Counter
	gangAdmitted *obs.Counter
	gangTimeouts *obs.Counter
	phaseRuns    map[string]*obs.Counter
}

// New creates the framework driver; Start launches it. With no options it
// is the legacy scheduler, re-expressed: Algorithm 1 as the default plugin
// set, batch size 1, identical watch wiring, counters, spans and events.
func New(env *sim.Env, srv *apiserver.Server, opts ...Option) *Scheduler {
	o := options{batchSize: DefaultBatchSize, gangTimeout: DefaultGangTimeout}
	for _, opt := range opts {
		opt(&o)
	}
	if o.cfg.CycleLatency == 0 {
		o.cfg.CycleLatency = core.DefaultCycleLatency
	}
	if o.batchSize < 1 {
		o.batchSize = 1
	}
	if o.plugins == nil {
		o.plugins = plugins.Default()
	}
	rt := srv.Obs()
	s := &Scheduler{
		env:          env,
		srv:          srv,
		cfg:          o.cfg,
		engine:       fwk.NewEngine(o.plugins),
		batchSize:    o.batchSize,
		gangTimeout:  o.gangTimeout,
		parallel:     o.parallel,
		pluginSet:    o.plugins,
		snap:         core.NewSnapshot(o.cfg.MemOvercommitFactor),
		wake:         sim.NewQueue[struct{}](env),
		gangs:        make(map[string]*gangState),
		tracer:       rt.Tracer(),
		recorder:     rt.EventSource("kubeshare-sched"),
		decisions:    rt.Counter(core.MetricSchedDecisions),
		requeues:     rt.Counter(core.MetricSchedRequeues),
		noCapacity:   rt.Counter(core.MetricSchedNoCapacity),
		depth:        rt.Gauge(core.MetricSchedPending),
		schedHist:    rt.Histogram(core.MetricSchedLatency),
		conflicts:    rt.Counter(MetricSchedConflicts),
		gangAdmitted: rt.Counter(MetricSchedGangAdmissions),
		gangTimeouts: rt.Counter(MetricSchedGangTimeouts),
		phaseRuns:    make(map[string]*obs.Counter, len(fwk.Phases)),
	}
	for _, ph := range fwk.Phases {
		s.phaseRuns[ph] = rt.Counter(PhaseMetric(ph))
	}
	s.engine.SetPhaseHook(func(ph string) { s.phaseRuns[ph].Inc() })
	return s
}

// Stats implements core.Sched.
func (s *Scheduler) Stats() core.SchedStats { return core.ReadSchedStats(s.srv.Obs()) }

// VerifySnapshot implements core.Sched: the incremental snapshot must
// materialize exactly the pool a full relist would build.
func (s *Scheduler) VerifySnapshot() error {
	return core.DiffPools(s.snap.NewPool(nil), core.BuildPoolWithFactor(s.srv, nil, s.cfg.MemOvercommitFactor))
}

// Start launches the watch and scheduling loops — the same four replayed
// reflector streams the legacy scheduler ran, feeding the same snapshot.
func (s *Scheduler) Start() {
	s.epoch = s.srv.Epoch()
	if s.parallel && s.laneEngines == nil {
		// One private engine per lane (the engine's scratch score vectors are
		// not goroutine-safe; the plugins themselves are stateless and
		// shared). Phase-run counts accumulate lane-locally inside the window
		// and merge after the barrier, so windows stay mutation-free.
		lanes := s.env.Lanes()
		s.laneEngines = make([]*fwk.Engine, lanes)
		s.lanePhase = make([]map[string]int, lanes)
		for i := range s.laneEngines {
			tally := make(map[string]int, len(fwk.Phases))
			s.lanePhase[i] = tally
			s.laneEngines[i] = fwk.NewEngine(s.pluginSet)
			s.laneEngines[i].SetPhaseHook(func(ph string) { tally[ph]++ })
		}
	}
	for _, kind := range []string{core.KindSharePod, "Pod", core.KindVGPU, "Node"} {
		r := s.srv.NewNamedReflector("kubeshare-sched", kind, apiserver.WatchOptions{Replay: true})
		s.reflectors = append(s.reflectors, r)
		isPod := kind == "Pod"
		s.watchProcs = append(s.watchProcs, s.env.Go("kubeshare-sched-watch-"+kind, func(p *sim.Proc) {
			for {
				ev, ok := r.Get(p)
				if !ok {
					return
				}
				s.snap.Apply(ev)
				if isPod && ev.Type == store.Deleted {
					s.onPodDeleted(ev.Object.(*api.Pod))
				}
				s.kick()
			}
		}))
	}
	s.proc = s.env.Go("kubeshare-sched", s.loop)
}

// Stop terminates the scheduler.
func (s *Scheduler) Stop() {
	if s.proc != nil {
		s.proc.Kill(nil)
	}
	for _, p := range s.watchProcs {
		p.Kill(nil)
	}
	for _, p := range s.timerProcs {
		if !p.Finished() {
			p.Kill(nil)
		}
	}
	for _, r := range s.reflectors {
		r.Stop()
	}
}

// onPodDeleted requeues a sharePod whose bound pod vanished while the
// sharePod itself is still live (node eviction, kubelet restart, vGPU
// loss) — identical to the legacy recovery edge.
func (s *Scheduler) onPodDeleted(pod *api.Pod) {
	spName := pod.Labels[core.LabelSharePod]
	if spName == "" {
		return
	}
	sp, err := core.SharePods(s.srv).Get(spName)
	if err != nil || sp.Status.BoundPod != pod.Name {
		return // gone, or the deletion is a stale predecessor's
	}
	updated := core.RequeueSharePod(s.srv, spName)
	if updated == nil {
		return
	}
	s.requeues.Inc()
	s.tracer.Mark("kubeshare-sched", "requeue", api.Key(updated), "lost pod "+pod.Name)
	s.recorder.Eventf(core.KindSharePod, spName, obs.EventWarning, "Requeued",
		"bound pod %s lost; rescheduling", pod.Name)
	s.snap.Apply(store.Event{Type: store.Modified, Object: updated})
}

func (s *Scheduler) kick() {
	if s.wake.Len() == 0 {
		s.wake.Put(struct{}{})
	}
}

// loop coalesces wakeups: a burst of watch deliveries in one sim instant
// triggers one cycle, not one per delivery. After the first kick the loop
// yields so every same-instant watch proc lands its delta in the snapshot,
// then drains the redundant kicks those deliveries queued.
func (s *Scheduler) loop(p *sim.Proc) {
	for {
		if _, ok := s.wake.Get(p); !ok {
			return
		}
		p.Yield()
		s.drainWake()
		s.checkEpoch()
		for s.runCycle(p) {
		}
	}
}

// checkEpoch invalidates cross-cycle scheduler state after an apiserver
// restart. Per-cycle reservations die with their transaction, but gang
// holds persist in s.gangs — and their hold windows were armed against
// watch state that no longer exists. Dropping them requeues the gangs
// cleanly: members are still pending in the (relist-rebuilt) snapshot, so
// the next cycle re-attempts admission and re-arms fresh holds.
func (s *Scheduler) checkEpoch() {
	e := s.srv.Epoch()
	if e == s.epoch {
		return
	}
	s.epoch = e
	for g := range s.gangs {
		delete(s.gangs, g)
	}
}

func (s *Scheduler) drainWake() {
	for {
		if _, ok := s.wake.TryGet(); !ok {
			return
		}
	}
}

// staged is one decision awaiting the cycle's bulk commit.
type staged struct {
	name    string
	key     string
	created time.Duration
	dec     core.Decision
}

// runCycle runs one scheduling cycle: drain the pending set, sort by age,
// decide units against the cycle transaction until the batch is full, then
// commit the staged decisions in bulk. It reports whether any unit
// progressed (was staged); all-NoCapacity means wait for a cluster change.
func (s *Scheduler) runCycle(p *sim.Proc) bool {
	pending := s.snap.Pending()
	s.depth.Set(int64(len(pending)))
	if len(pending) == 0 {
		return false
	}
	core.SortByAge(pending)
	cycleStart := s.env.Now()
	p.Sleep(s.cfg.CycleLatency)
	// The watch procs drained any deltas during the sleep; the snapshot is
	// current as of now. One pool materialization serves the whole batch.
	txn := fwk.NewTxn(s.snap.NewPool(s.newGPUID))

	var out []staged
	var progressed int
	if s.parallel && s.cfg.Decide == nil {
		progressed = s.stageParallel(pending, txn, &out)
	} else {
		progressed = s.stageSequential(pending, txn, &out)
	}

	if s.batchSize > 1 {
		s.tracer.Record("kubeshare-sched", "batch",
			fmt.Sprintf("cycle/%d", len(pending)),
			fmt.Sprintf("staged=%d journal=%d", len(out), txn.Len()), cycleStart)
	}
	for _, st := range out {
		s.commit(st, cycleStart)
	}
	if progressed == 0 {
		s.noCapacity.Inc()
		return false
	}
	return true
}

// stageSequential is the compat staging loop: decide units one at a time
// against the live transaction, exactly the legacy pace and placements.
func (s *Scheduler) stageSequential(pending []*core.SharePod, txn *fwk.Txn, out *[]staged) int {
	progressed := 0
	seenGang := map[string]bool{}
	for _, cand := range pending {
		if progressed >= s.batchSize {
			break
		}
		sp, err := core.SharePods(s.srv).Get(cand.Name)
		if err != nil || sp.Placed() || sp.Terminated() {
			continue
		}
		if g := gangOf(sp); g != "" {
			if seenGang[g] {
				continue
			}
			seenGang[g] = true
			progressed += s.scheduleGang(g, pending, txn, out)
			continue
		}
		dec := s.decideOne(unitOf(sp), txn)
		s.decisions.Inc()
		switch dec.Outcome {
		case core.Assigned, core.NewDevice, core.Rejected:
			*out = append(*out, staged{name: sp.Name, key: api.Key(sp), created: sp.CreationTime, dec: dec})
			progressed++
		default: // NoCapacity: the unit stays pending for the next cycle.
			if txn.Len() > 0 {
				s.conflicts.Inc()
			}
		}
	}
	return progressed
}

// rankTopK is the speculative candidate list depth per unit: deep enough
// that intra-batch contention rarely exhausts it, shallow enough that
// ranking stays cheap.
const rankTopK = 8

// rankEntry carries one pending unit through the two-phase parallel cycle.
type rankEntry struct {
	sp     *core.SharePod
	unit   fwk.Unit
	ranked bool                // Phase A produced a candidate list
	cands  []*core.DeviceState // best-first, against the cycle-start pool
}

// rankMsg crosses the lane mailbox: one unit's Phase A result.
type rankMsg struct {
	idx   int
	cands []*core.DeviceState
}

// stageParallel is the speculative two-phase staging loop.
//
// Phase A (parallel): the batch window's solo units are ranked across the
// event lanes inside a FanOut window — each lane's private engine runs
// pre-filter/filter/score against the shared, read-only cycle-start pool
// and mails its top-K candidate lists back to lane 0. The kernel enforces
// the window's read-only rule (enqueue panics) and tools/detvet enforces
// the mailbox rule statically.
//
// Phase B (sequential, age order): each unit walks its candidate list,
// revalidates candidates against the live transaction with FilterOne, and
// reserves the first survivor. An exhausted list counts one batch conflict
// and falls back to the full sequential pipeline, as do units whose
// pre-filter steered them (pins, rejects) and all gangs.
//
// Both phases are pure functions of (pending set, cycle-start pool), so the
// staged placements are identical at any lane count and any GOMAXPROCS.
func (s *Scheduler) stageParallel(pending []*core.SharePod, txn *fwk.Txn, out *[]staged) int {
	// Resolve every pending name against the API server once, up front —
	// the staging loop is read-only with respect to the server (commits
	// happen after staging), so prefetching preserves compat semantics and
	// keeps the parallel window below free of server traffic.
	entries := make([]*rankEntry, 0, len(pending))
	for _, cand := range pending {
		sp, err := core.SharePods(s.srv).Get(cand.Name)
		if err != nil || sp.Placed() || sp.Terminated() {
			continue
		}
		entries = append(entries, &rankEntry{sp: sp, unit: unitOf(sp)})
	}

	// Phase A: rank the batch window's solo units across lanes.
	var toRank []*rankEntry
	for _, e := range entries {
		if len(toRank) >= s.batchSize {
			break
		}
		if gangOf(e.sp) == "" {
			toRank = append(toRank, e)
		}
	}
	if len(toRank) > 0 {
		pool := txn.Pool()
		s.env.FanOut(func(lane int) {
			eng := s.laneEngines[lane]
			for i, e := range toRank {
				if s.env.LaneOf(e.unit.Name) != lane {
					continue
				}
				if cands, seqOnly := eng.Rank(e.unit, pool, rankTopK); !seqOnly {
					s.env.LaneSend(lane, 0, rankMsg{idx: i, cands: cands})
				}
			}
		})
		for _, m := range s.env.LaneDrain(0) {
			msg := m.(rankMsg)
			toRank[msg.idx].ranked = true
			toRank[msg.idx].cands = msg.cands
		}
		s.flushLanePhases()
	}

	// Phase B: sequential validate-and-reserve in age order.
	progressed := 0
	seenGang := map[string]bool{}
	for _, e := range entries {
		if progressed >= s.batchSize {
			break
		}
		if g := gangOf(e.sp); g != "" {
			if seenGang[g] {
				continue
			}
			seenGang[g] = true
			progressed += s.scheduleGang(g, pending, txn, out)
			continue
		}
		dec := s.decideRanked(e, txn)
		s.decisions.Inc()
		switch dec.Outcome {
		case core.Assigned, core.NewDevice, core.Rejected:
			*out = append(*out, staged{name: e.sp.Name, key: api.Key(e.sp), created: e.sp.CreationTime, dec: dec})
			progressed++
		default:
			if txn.Len() > 0 {
				s.conflicts.Inc()
			}
		}
	}
	return progressed
}

// decideRanked commits a unit's speculative ranking, falling back to the
// full sequential pipeline when the unit was not ranked or every candidate
// was invalidated by earlier reservations in this batch.
func (s *Scheduler) decideRanked(e *rankEntry, txn *fwk.Txn) core.Decision {
	if e.ranked {
		for _, d := range e.cands {
			if s.engine.FilterOne(e.unit, d) {
				return s.engine.ReserveOn(e.unit, txn, d)
			}
		}
		if len(e.cands) > 0 {
			// The whole speculative list went stale: intra-batch contention.
			s.conflicts.Inc()
		}
	}
	return s.engine.Schedule(e.unit, txn)
}

// flushLanePhases merges the lanes' phase-run tallies (accumulated inside
// the window, lane-locally) into the shared counters.
func (s *Scheduler) flushLanePhases() {
	for _, tally := range s.lanePhase {
		for ph, n := range tally {
			s.phaseRuns[ph].Add(int64(n))
			delete(tally, ph)
		}
	}
}

// decideOne routes a unit through the engine, or through the legacy Decide
// override when one is configured (which commits onto the pool directly,
// outside the reservation journal).
func (s *Scheduler) decideOne(u fwk.Unit, txn *fwk.Txn) core.Decision {
	if s.cfg.Decide != nil {
		return s.cfg.Decide(u.Req, txn.Pool())
	}
	return s.engine.Schedule(u, txn)
}

// commit applies one staged decision through the API server, emitting the
// same span / event / histogram telemetry the legacy loop did, and writes
// the result through into the snapshot.
func (s *Scheduler) commit(st staged, cycleStart time.Duration) {
	if st.dec.Outcome == core.Rejected {
		s.tracer.Record("kubeshare-sched", "reject", st.key, st.dec.Reason, cycleStart)
		s.recorder.Eventf(core.KindSharePod, st.name, obs.EventWarning, "Unschedulable", "%s", st.dec.Reason)
		s.applyRejection(st.name, st.dec.Reason)
		return
	}
	id := s.tracer.Record("kubeshare-sched", "schedule", st.key,
		fmt.Sprintf("gpuid=%s node=%s", st.dec.GPUID, st.dec.NodeName), cycleStart)
	s.schedHist.ObserveDurationExemplar(s.env.Now()-st.created, st.key, id)
	s.applyPlacement(st.name, st.dec)
}

// applyPlacement commits a placement: the GPUID/NodeName assignment through
// the spec, the phase transition through the status subresource, written
// through into the snapshot immediately so back-to-back cycles cannot
// double-book residuals.
func (s *Scheduler) applyPlacement(name string, dec core.Decision) {
	sps := core.SharePods(s.srv)
	if _, err := sps.Mutate(name, func(cur *core.SharePod) error {
		cur.Spec.GPUID = dec.GPUID
		cur.Spec.NodeName = dec.NodeName
		return nil
	}); err != nil {
		if apiserver.IsNotFound(err) {
			return
		}
		panic(fmt.Sprintf("kubeshare-sched: update %s: %v", name, err))
	}
	updated, err := sps.MutateStatus(name, func(cur *core.SharePod) error {
		cur.Status.Phase = core.SharePodScheduled
		cur.Status.ScheduledTime = s.env.Now()
		return nil
	})
	if err != nil {
		if apiserver.IsNotFound(err) {
			return
		}
		panic(fmt.Sprintf("kubeshare-sched: update status %s: %v", name, err))
	}
	s.snap.Apply(store.Event{Type: store.Modified, Object: updated})
}

// applyRejection marks a sharePod's locality constraints unsatisfiable.
func (s *Scheduler) applyRejection(name, reason string) {
	updated, err := core.SharePods(s.srv).MutateStatus(name, func(cur *core.SharePod) error {
		cur.Status.Phase = core.SharePodRejected
		cur.Status.Message = reason
		cur.Status.FinishTime = s.env.Now()
		return nil
	})
	if err != nil {
		if apiserver.IsNotFound(err) {
			return
		}
		panic(fmt.Sprintf("kubeshare-sched: update status %s: %v", name, err))
	}
	s.snap.Apply(store.Event{Type: store.Modified, Object: updated})
}

// unitOf converts a sharePod into its framework scheduling view.
func unitOf(sp *core.SharePod) fwk.Unit {
	return fwk.Unit{
		Name:     sp.Name,
		Created:  sp.CreationTime,
		Req:      core.RequestOf(sp),
		Gang:     sp.Spec.Gang,
		GangSize: sp.Spec.GangSize,
	}
}

// gangOf returns the sharePod's active gang. Gang semantics gate initial
// admission only: a recovered member (Restarts > 0) reschedules solo, since
// its peers already hold their placements.
func gangOf(sp *core.SharePod) string {
	if sp.Status.Restarts > 0 {
		return ""
	}
	return sp.Spec.Gang
}

// newGPUID generates a fresh vGPU identifier — same series as the legacy
// scheduler, so placements and logs stay comparable.
func (s *Scheduler) newGPUID() string {
	s.nextID++
	return fmt.Sprintf("vgpu-%04d", s.nextID)
}

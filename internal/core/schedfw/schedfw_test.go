package schedfw_test

import (
	"fmt"
	"testing"
	"time"

	"kubeshare/internal/core"
	"kubeshare/internal/core/schedfw"
	"kubeshare/internal/kube"
	"kubeshare/internal/kube/api"
	"kubeshare/internal/sim"
	"kubeshare/internal/workload"
)

// stack is a cluster with a scheduler flavour installed.
type stack struct {
	env *sim.Env
	c   *kube.Cluster
	ks  *core.KubeShare
}

func newStack(t *testing.T, nodes int, gpus int, install func(*kube.Cluster) (*core.KubeShare, error)) *stack {
	t.Helper()
	env := sim.NewEnv()
	cfg := kube.Config{}
	for i := 0; i < nodes; i++ {
		cfg.Nodes = append(cfg.Nodes, kube.NodeConfig{Name: fmt.Sprintf("node-%d", i), GPUs: gpus})
	}
	c, err := kube.NewCluster(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ks, err := install(c)
	if err != nil {
		t.Fatal(err)
	}
	workload.RegisterImages(c)
	return &stack{env: env, c: c, ks: ks}
}

// trainPod is a sharePod running a short training job (steps × 10ms kernels).
func trainPod(name string, req, mem float64, steps int) *core.SharePod {
	return &core.SharePod{
		ObjectMeta: api.ObjectMeta{Name: name},
		Spec: core.SharePodSpec{
			GPURequest: req,
			GPUMem:     mem,
			Pod: api.PodSpec{Containers: []api.Container{{
				Name:  "main",
				Image: workload.TrainImage,
				Env:   map[string]string{workload.EnvSteps: fmt.Sprintf("%d", steps)},
			}}},
		},
	}
}

func (s *stack) create(t *testing.T, sp *core.SharePod) {
	t.Helper()
	if _, err := core.SharePods(s.c.API).Create(sp); err != nil {
		t.Fatalf("create %s: %v", sp.Name, err)
	}
}

func (s *stack) get(t *testing.T, name string) *core.SharePod {
	t.Helper()
	sp, err := core.SharePods(s.c.API).Get(name)
	if err != nil {
		t.Fatalf("get %s: %v", name, err)
	}
	return sp
}

// mixedTrace submits a mixed workload: staggered arrivals, varied demands,
// an affinity group, an exclusive tenant, and an unsatisfiable constraint.
func mixedTrace(t *testing.T, s *stack) []string {
	type entry struct {
		at time.Duration
		sp *core.SharePod
	}
	var names []string
	entries := []entry{
		{0, trainPod("sp-a", 0.5, 0.3, 30)},
		{0, trainPod("sp-b", 0.3, 0.3, 40)},
		{100 * time.Millisecond, trainPod("sp-c", 0.7, 0.5, 30)},
		{150 * time.Millisecond, trainPod("sp-d", 0.2, 0.15, 50)},
		{200 * time.Millisecond, trainPod("sp-e", 0.9, 0.9, 20)},
		{250 * time.Millisecond, trainPod("sp-f", 0.4, 0.4, 30)},
	}
	// Affinity group members arriving apart.
	g1 := trainPod("sp-g1", 0.3, 0.2, 40)
	g1.Spec.Affinity = "grp"
	g2 := trainPod("sp-g2", 0.3, 0.2, 40)
	g2.Spec.Affinity = "grp"
	entries = append(entries, entry{300 * time.Millisecond, g1}, entry{400 * time.Millisecond, g2})
	// Exclusive tenant.
	ex := trainPod("sp-x", 0.5, 0.5, 30)
	ex.Spec.Exclusion = "solo"
	entries = append(entries, entry{500 * time.Millisecond, ex})
	// Unsatisfiable: joins the affinity group but with a conflicting
	// exclusion label — Algorithm 1 rejects it.
	bad := trainPod("sp-bad", 0.1, 0.1, 10)
	bad.Spec.Affinity = "grp"
	bad.Spec.Exclusion = "other"
	entries = append(entries, entry{600 * time.Millisecond, bad})

	for _, e := range entries {
		e := e
		names = append(names, e.sp.Name)
		s.env.Go("submit-"+e.sp.Name, func(p *sim.Proc) {
			if e.at > 0 {
				p.Sleep(e.at)
			}
			s.create(t, e.sp)
		})
	}
	return names
}

type placement struct {
	gpuID string
	node  string
	phase core.SharePodPhase
}

func collect(t *testing.T, s *stack, names []string) map[string]placement {
	out := map[string]placement{}
	for _, n := range names {
		sp := s.get(t, n)
		out[n] = placement{gpuID: sp.Spec.GPUID, node: sp.Spec.NodeName, phase: sp.Status.Phase}
	}
	return out
}

// TestMixedTraceOutcomes pins the default configuration's behavior on the
// mixed workload (the trace the legacy-equivalence test used before the
// legacy driver was removed): every satisfiable sharePod succeeds, the
// affinity pair co-locates, the exclusive tenant shares with nobody, and
// the contradictory constraint is rejected — plus two identical runs place
// byte-identically and the incremental snapshot survives a full relist.
func TestMixedTraceOutcomes(t *testing.T) {
	run := func() (*stack, map[string]placement) {
		s := newStack(t, 2, 4, func(c *kube.Cluster) (*core.KubeShare, error) {
			return schedfw.Install(c, core.Config{})
		})
		names := mixedTrace(t, s)
		s.env.Run()
		return s, collect(t, s, names)
	}
	s, got := run()
	for name, pl := range got {
		want := core.SharePodSucceeded
		if name == "sp-bad" {
			want = core.SharePodRejected
		}
		if pl.phase != want {
			t.Errorf("%s phase = %s, want %s", name, pl.phase, want)
		}
	}
	if got["sp-g1"].gpuID != got["sp-g2"].gpuID {
		t.Errorf("affinity group split: g1 on %s, g2 on %s", got["sp-g1"].gpuID, got["sp-g2"].gpuID)
	}
	for name, pl := range got {
		if name != "sp-x" && pl.gpuID == got["sp-x"].gpuID && pl.gpuID != "" {
			t.Errorf("exclusive tenant shares %s with %s", pl.gpuID, name)
		}
	}
	if err := s.ks.Sched.VerifySnapshot(); err != nil {
		t.Errorf("snapshot diverged: %v", err)
	}
	_, again := run()
	for name, pl := range got {
		if again[name] != pl {
			t.Errorf("%s not deterministic: %+v vs %+v", name, pl, again[name])
		}
	}
}

// TestBatchedMatchesSequential is the batching property: on a conflict-free
// queue (ample capacity), a single batched cycle places every unit exactly
// where sequential single-unit cycles would.
func TestBatchedMatchesSequential(t *testing.T) {
	run := func(batch int) map[string]placement {
		s := newStack(t, 2, 4, func(c *kube.Cluster) (*core.KubeShare, error) {
			return schedfw.Install(c, core.Config{}, schedfw.WithBatchSize(batch))
		})
		var names []string
		s.env.Go("submit", func(p *sim.Proc) {
			for i := 0; i < 6; i++ {
				sp := trainPod(fmt.Sprintf("sp-%d", i), 0.25+0.1*float64(i%3), 0.2, 30)
				names = append(names, sp.Name)
				s.create(t, sp)
			}
		})
		s.env.Run()
		return collect(t, s, names)
	}
	sequential := run(1)
	batched := run(6)
	if len(sequential) != len(batched) {
		t.Fatalf("placement counts differ: %d vs %d", len(sequential), len(batched))
	}
	for name, w := range sequential {
		if batched[name] != w {
			t.Errorf("%s: batched %+v, sequential %+v", name, batched[name], w)
		}
	}
}

// TestConflictRetry pins intra-batch conflict resolution: two sharePods
// race for the last slice of one GPU in the same batch — the older commits,
// the younger requeues and lands once the first finishes.
func TestConflictRetry(t *testing.T) {
	s := newStack(t, 1, 1, func(c *kube.Cluster) (*core.KubeShare, error) {
		return schedfw.Install(c, core.Config{}, schedfw.WithBatchSize(2))
	})
	s.env.Go("submit", func(p *sim.Proc) {
		s.create(t, trainPod("sp-old", 0.6, 0.6, 30))
		s.create(t, trainPod("sp-young", 0.6, 0.6, 30))
	})
	s.env.Run()

	old, young := s.get(t, "sp-old"), s.get(t, "sp-young")
	if old.Status.Phase != core.SharePodSucceeded || young.Status.Phase != core.SharePodSucceeded {
		t.Fatalf("phases: old=%s young=%s", old.Status.Phase, young.Status.Phase)
	}
	if !(old.Status.ScheduledTime < young.Status.ScheduledTime) {
		t.Errorf("conflict not serialized: old scheduled %v, young %v",
			old.Status.ScheduledTime, young.Status.ScheduledTime)
	}
	if n := s.c.Obs.Counter(schedfw.MetricSchedConflicts).Value(); n < 1 {
		t.Errorf("batch conflicts = %d, want >= 1", n)
	}
}

// gangPod is a member of an all-or-nothing co-scheduling group.
func gangPod(name, gang string, size int, req float64, steps int) *core.SharePod {
	sp := trainPod(name, req, 0.5, steps)
	sp.Spec.Gang = gang
	sp.Spec.GangSize = size
	return sp
}

// TestGangAdmitsWhole: members arrive staggered; nothing commits until the
// last one, then the whole gang is admitted in one cycle.
func TestGangAdmitsWhole(t *testing.T) {
	s := newStack(t, 1, 4, func(c *kube.Cluster) (*core.KubeShare, error) {
		return schedfw.Install(c, core.Config{})
	})
	s.env.Go("submit", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			s.create(t, gangPod(fmt.Sprintf("gm-%d", i), "team", 3, 0.9, 30))
			if i < 2 {
				p.Sleep(time.Second)
			}
		}
	})
	s.env.Run()

	var schedAt []time.Duration
	for i := 0; i < 3; i++ {
		sp := s.get(t, fmt.Sprintf("gm-%d", i))
		if sp.Status.Phase != core.SharePodSucceeded {
			t.Fatalf("gm-%d phase = %s (%s)", i, sp.Status.Phase, sp.Status.Message)
		}
		schedAt = append(schedAt, sp.Status.ScheduledTime)
	}
	if schedAt[0] != schedAt[1] || schedAt[1] != schedAt[2] {
		t.Errorf("gang not admitted atomically: scheduled at %v", schedAt)
	}
	// The last member arrives at t=2s; admission must be after that.
	if schedAt[0] < 2*time.Second {
		t.Errorf("gang admitted at %v, before its last member existed", schedAt[0])
	}
	if n := s.c.Obs.Counter(schedfw.MetricSchedGangAdmissions).Value(); n != 1 {
		t.Errorf("gang admissions = %d, want 1", n)
	}
}

// TestGangAllOrNothingUnderNodeKill: a gang needs more devices than survive
// a node crash. Two members fit on the remaining node but the third cannot —
// nobody may be placed, even after the capacity hold times out.
func TestGangAllOrNothingUnderNodeKill(t *testing.T) {
	s := newStack(t, 2, 2, func(c *kube.Cluster) (*core.KubeShare, error) {
		return schedfw.Install(c, core.Config{}, schedfw.WithGangTimeout(5*time.Second))
	})
	s.env.Go("chaos", func(p *sim.Proc) {
		// Two members arrive, the gang holds awaiting the third; the crash
		// takes half the capacity before it shows up (the sleep outlives the
		// node lifecycle controller's NotReady grace, so the scheduler's
		// snapshot has absorbed the capacity loss).
		s.create(t, gangPod("gm-0", "team", 3, 0.9, 30))
		s.create(t, gangPod("gm-1", "team", 3, 0.9, 30))
		p.Sleep(2 * time.Second)
		s.c.Nodes[1].Kubelet.Crash()
		p.Sleep(5 * time.Second)
		s.create(t, gangPod("gm-2", "team", 3, 0.9, 30))
	})
	s.env.Run()

	for i := 0; i < 3; i++ {
		sp := s.get(t, fmt.Sprintf("gm-%d", i))
		if sp.Placed() || sp.Terminated() {
			t.Errorf("gm-%d partially admitted: gpuid=%q phase=%s", i, sp.Spec.GPUID, sp.Status.Phase)
		}
	}
	if n := s.c.Obs.Counter(schedfw.MetricSchedGangTimeouts).Value(); n < 1 {
		t.Errorf("gang timeouts = %d, want >= 1", n)
	}
}

// TestGangRejectsWhole: one member's constraints are unsatisfiable inside
// the gang's own transactional reservations (it would join the group's
// device but carries a conflicting exclusion), so every member is rejected.
func TestGangRejectsWhole(t *testing.T) {
	s := newStack(t, 1, 4, func(c *kube.Cluster) (*core.KubeShare, error) {
		return schedfw.Install(c, core.Config{})
	})
	s.env.Go("submit", func(p *sim.Proc) {
		a := gangPod("gm-a", "team", 2, 0.3, 30)
		a.Spec.Affinity = "grp"
		b := gangPod("gm-b", "team", 2, 0.3, 30)
		b.Spec.Affinity = "grp"
		b.Spec.Exclusion = "other"
		s.create(t, a)
		s.create(t, b)
	})
	s.env.Run()

	for _, name := range []string{"gm-a", "gm-b"} {
		sp := s.get(t, name)
		if sp.Status.Phase != core.SharePodRejected {
			t.Errorf("%s phase = %s, want Rejected (%s)", name, sp.Status.Phase, sp.Status.Message)
		}
	}
}

// TestExtenderOnFramework checks the baseline still schedules through the
// framework driver and populates the shared stats.
func TestExtenderOnFramework(t *testing.T) {
	env := sim.NewEnv()
	c, err := kube.NewCluster(env, kube.DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	ks, _, err := schedfw.InstallExtender(c, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	workload.RegisterImages(c)
	s := &stack{env: env, c: c, ks: ks}
	s.env.Go("submit", func(p *sim.Proc) {
		s.create(t, trainPod("sp-1", 0.5, 0.5, 30))
		s.create(t, trainPod("sp-2", 0.5, 0.5, 30))
	})
	s.env.Run()
	for _, name := range []string{"sp-1", "sp-2"} {
		sp := s.get(t, name)
		if sp.Status.Phase != core.SharePodSucceeded {
			t.Fatalf("%s phase = %s (%s)", name, sp.Status.Phase, sp.Status.Message)
		}
	}
	if st := ks.Stats(); st.Decisions < 2 {
		t.Errorf("extender decisions = %d, want >= 2", st.Decisions)
	}
}

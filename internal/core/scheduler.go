package core

import (
	"fmt"
	"sort"
	"time"

	"kubeshare/internal/kube/api"
	"kubeshare/internal/kube/apiserver"
	"kubeshare/internal/kube/store"
	"kubeshare/internal/obs"
	"kubeshare/internal/sim"
)

// SchedulerConfig parameterizes KubeShare-Sched.
type SchedulerConfig struct {
	// CycleLatency models one scheduling decision (pool query + Algorithm 1
	// + API updates); the dominant part of KubeShare's extra pod-creation
	// latency when no vGPU must be created (Fig 10's ≈15%).
	CycleLatency time.Duration
	// MemOvercommitFactor scales each device's schedulable gpu_mem capacity
	// (default 1.0 = no over-commitment). Values >1 must be paired with
	// devlib.Config.MemOvercommit so the device library swaps working sets.
	MemOvercommitFactor float64
	// Decide overrides the placement algorithm — §4.6's claim that users
	// can swap in their own scheduling logic because Sched and DevMgr are
	// decoupled controllers. The function must commit accepted placements
	// onto the pool (DeviceState.Place) like the default Algorithm 1 does.
	// Nil selects core.Schedule.
	Decide func(Request, *Pool) Decision
}

// DefaultCycleLatency is used when CycleLatency is zero. Algorithm 1 itself
// is O(N) microseconds (Fig 11); the cycle is dominated by the API
// round-trips, comparable to the default kube-scheduler's cycle.
const DefaultCycleLatency = 15 * time.Millisecond

// Scheduler is KubeShare-Sched: the custom controller assigning sharePods
// to vGPUs with Algorithm 1. It maintains an incremental cluster snapshot
// from SharePod / VGPU / Pod / Node watch deltas and decides one sharePod
// per cycle against pools materialized from it — no per-decision re-listing.
type Scheduler struct {
	env    *sim.Env
	srv    *apiserver.Server
	cfg    SchedulerConfig
	snap   *Snapshot
	wake   *sim.Queue[struct{}]
	nextID int
	proc   *sim.Proc

	reflectors []*apiserver.Reflector
	watchProcs []*sim.Proc

	// Telemetry. The decision/requeue counters live on the obs registry
	// (atomics), so Decisions()/Requeues() are safe to read while the
	// loop runs; the remaining handles no-op when obs is off.
	tracer     *obs.Tracer
	recorder   *obs.Recorder
	decisions  *obs.Counter
	requeues   *obs.Counter
	noCapacity *obs.Counter
	depth      *obs.Gauge
	schedHist  *obs.Histogram
}

// NewScheduler creates KubeShare-Sched; Start launches it.
//
// Deprecated: the single-sharePod loop lives on for one release as the
// reference implementation; new code should construct the batched,
// plugin-phased driver with schedfw.New (its default configuration
// reproduces this scheduler's placements exactly).
func NewScheduler(env *sim.Env, srv *apiserver.Server, cfg SchedulerConfig) *Scheduler {
	if cfg.CycleLatency == 0 {
		cfg.CycleLatency = DefaultCycleLatency
	}
	rt := srv.Obs()
	return &Scheduler{
		env:        env,
		srv:        srv,
		cfg:        cfg,
		snap:       NewSnapshot(cfg.MemOvercommitFactor),
		wake:       sim.NewQueue[struct{}](env),
		tracer:     rt.Tracer(),
		recorder:   rt.EventSource("kubeshare-sched"),
		decisions:  rt.Counter(MetricSchedDecisions),
		requeues:   rt.Counter(MetricSchedRequeues),
		noCapacity: rt.Counter(MetricSchedNoCapacity),
		depth:      rt.Gauge(MetricSchedPending),
		schedHist:  rt.Histogram(MetricSchedLatency),
	}
}

// Stats snapshots the scheduling counters off the obs registry.
func (s *Scheduler) Stats() SchedStats { return ReadSchedStats(s.srv.Obs()) }

// Decisions returns the number of scheduling decisions made so far.
//
// Deprecated: read Stats().Decisions.
func (s *Scheduler) Decisions() int64 { return s.decisions.Value() }

// Requeues returns the number of bound-pod-loss recoveries performed.
//
// Deprecated: read Stats().Requeues.
func (s *Scheduler) Requeues() int64 { return s.requeues.Value() }

// VerifySnapshot cross-checks the incremental snapshot against a full
// relist: the pool it materializes must be exactly what BuildPoolWithFactor
// constructs from the API server right now. Call at drained instants (the
// watch procs idle); chaos soaks use it to prove the snapshot stayed exact
// across watch drops, resumes and relists.
func (s *Scheduler) VerifySnapshot() error {
	return DiffPools(s.snap.NewPool(nil), BuildPoolWithFactor(s.srv, nil, s.cfg.MemOvercommitFactor))
}

// Start launches the watch and scheduling loops. Every watched kind replays
// so the snapshot converges to the full cluster state before (and between)
// decisions. The streams run through reflectors, so a dropped watch resumes
// from its last revision (or relists on a compacted gap) and the snapshot
// stays exact across connection loss.
func (s *Scheduler) Start() {
	for _, kind := range []string{KindSharePod, "Pod", KindVGPU, "Node"} {
		r := s.srv.NewReflector(kind, apiserver.WatchOptions{Replay: true})
		s.reflectors = append(s.reflectors, r)
		isPod := kind == "Pod"
		s.watchProcs = append(s.watchProcs, s.env.Go("kubeshare-sched-watch-"+kind, func(p *sim.Proc) {
			for {
				ev, ok := r.Get(p)
				if !ok {
					return
				}
				s.snap.Apply(ev)
				if isPod && ev.Type == store.Deleted {
					s.onPodDeleted(ev.Object.(*api.Pod))
				}
				s.kick()
			}
		}))
	}
	s.proc = s.env.Go("kubeshare-sched", s.loop)
}

// Stop terminates the scheduler.
func (s *Scheduler) Stop() {
	if s.proc != nil {
		s.proc.Kill(nil)
	}
	for _, p := range s.watchProcs {
		p.Kill(nil)
	}
	for _, r := range s.reflectors {
		r.Stop()
	}
}

// onPodDeleted requeues a sharePod whose bound pod vanished while the
// sharePod itself is still live — the recovery edge behind node eviction,
// kubelet restart and vGPU loss. The placement is cleared through the spec
// and the phase reset through the status subresource, so Algorithm 1
// re-places the work wherever capacity lives now; Restarts versions the
// next bound pod's name past the dying one's.
func (s *Scheduler) onPodDeleted(pod *api.Pod) {
	spName := pod.Labels[LabelSharePod]
	if spName == "" {
		return
	}
	sp, err := SharePods(s.srv).Get(spName)
	if err != nil || sp.Status.BoundPod != pod.Name {
		return // gone, or the deletion is a stale predecessor's
	}
	updated := RequeueSharePod(s.srv, spName)
	if updated == nil {
		return
	}
	s.requeues.Inc()
	s.tracer.Mark("kubeshare-sched", "requeue", api.Key(updated), "lost pod "+pod.Name)
	s.recorder.Eventf(KindSharePod, spName, obs.EventWarning, "Requeued",
		"bound pod %s lost; rescheduling", pod.Name)
	s.snap.Apply(store.Event{Type: store.Modified, Object: updated})
}

func (s *Scheduler) kick() {
	if s.wake.Len() == 0 {
		s.wake.Put(struct{}{})
	}
}

func (s *Scheduler) loop(p *sim.Proc) {
	for {
		if _, ok := s.wake.Get(p); !ok {
			return
		}
		for s.scheduleNext(p) {
		}
	}
}

// scheduleNext runs one scheduling cycle: it tries the pending sharePods in
// age order against a pool materialized from the snapshot and applies the
// first decision that makes progress (assignment or rejection). It reports
// whether progress was made; all-NoCapacity means wait for a pool or pod
// change.
func (s *Scheduler) scheduleNext(p *sim.Proc) bool {
	pending := s.snap.Pending()
	s.depth.Set(int64(len(pending)))
	if len(pending) == 0 {
		return false
	}
	sortByAge(pending)
	cycleStart := s.env.Now()
	p.Sleep(s.cfg.CycleLatency)
	// The watch procs drained any deltas during the sleep; the snapshot is
	// current as of now. Materializing the pool is O(devices), with residuals
	// served from the per-device cache.
	pool := s.snap.NewPool(s.newGPUID)
	for _, cand := range pending {
		// Re-read: the sharePod may have changed during the cycle.
		sp, err := SharePods(s.srv).Get(cand.Name)
		if err != nil || sp.Placed() || sp.Terminated() {
			continue
		}
		decide := s.cfg.Decide
		if decide == nil {
			decide = Schedule
		}
		dec := decide(RequestOf(sp), pool)
		s.decisions.Inc()
		switch dec.Outcome {
		case Assigned, NewDevice:
			// The decision span covers this cycle only; end-to-end
			// submit-to-scheduled latency goes to the histogram.
			s.tracer.Record("kubeshare-sched", "schedule", api.Key(sp),
				fmt.Sprintf("gpuid=%s node=%s", dec.GPUID, dec.NodeName), cycleStart)
			s.schedHist.ObserveDuration(s.env.Now() - sp.CreationTime)
			s.applyPlacement(sp.Name, dec)
			return true
		case Rejected:
			s.tracer.Record("kubeshare-sched", "reject", api.Key(sp), dec.Reason, cycleStart)
			s.recorder.Eventf(KindSharePod, sp.Name, obs.EventWarning, "Unschedulable", "%s", dec.Reason)
			s.applyRejection(sp.Name, dec.Reason)
			return true
		}
		// NoCapacity: try the next pending sharePod this cycle.
	}
	s.noCapacity.Inc()
	return false
}

// applyPlacement commits a placement: the GPUID/NodeName assignment through
// the spec, the phase transition through the status subresource. The final
// state is written through into the snapshot immediately — the scheduler's
// own watch events are not processed until it next yields, and waiting for
// them would let back-to-back cycles double-book residuals.
func (s *Scheduler) applyPlacement(name string, dec Decision) {
	sps := SharePods(s.srv)
	if _, err := sps.Mutate(name, func(cur *SharePod) error {
		cur.Spec.GPUID = dec.GPUID
		cur.Spec.NodeName = dec.NodeName
		return nil
	}); err != nil {
		if apiserver.IsNotFound(err) {
			return
		}
		panic(fmt.Sprintf("kubeshare-sched: update %s: %v", name, err))
	}
	updated, err := sps.MutateStatus(name, func(cur *SharePod) error {
		cur.Status.Phase = SharePodScheduled
		cur.Status.ScheduledTime = s.env.Now()
		return nil
	})
	if err != nil {
		if apiserver.IsNotFound(err) {
			return
		}
		panic(fmt.Sprintf("kubeshare-sched: update status %s: %v", name, err))
	}
	s.snap.Apply(store.Event{Type: store.Modified, Object: updated})
}

// applyRejection marks a sharePod's locality constraints unsatisfiable.
func (s *Scheduler) applyRejection(name, reason string) {
	updated, err := SharePods(s.srv).MutateStatus(name, func(cur *SharePod) error {
		cur.Status.Phase = SharePodRejected
		cur.Status.Message = reason
		cur.Status.FinishTime = s.env.Now()
		return nil
	})
	if err != nil {
		if apiserver.IsNotFound(err) {
			return
		}
		panic(fmt.Sprintf("kubeshare-sched: update status %s: %v", name, err))
	}
	s.snap.Apply(store.Event{Type: store.Modified, Object: updated})
}

// SortByAge orders sharePods oldest-first (name as tie-break) for FIFO
// fairness — the queue order every scheduler flavour shares.
func SortByAge(sps []*SharePod) { sortByAge(sps) }

func sortByAge(sps []*SharePod) {
	sort.Slice(sps, func(i, j int) bool {
		a, b := sps[i], sps[j]
		if a.CreationTime != b.CreationTime {
			return a.CreationTime < b.CreationTime
		}
		return a.Name < b.Name
	})
}

// newGPUID generates a fresh vGPU identifier (the paper's hashed id; a
// serial suffices and keeps logs readable).
func (s *Scheduler) newGPUID() string {
	s.nextID++
	return fmt.Sprintf("vgpu-%04d", s.nextID)
}

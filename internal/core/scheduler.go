package core

import (
	"sort"
	"time"
)

// SchedulerConfig parameterizes the scheduler driver (schedfw constructs
// drivers from it via schedfw.WithConfig).
type SchedulerConfig struct {
	// CycleLatency models one scheduling decision (pool query + Algorithm 1
	// + API updates); the dominant part of KubeShare's extra pod-creation
	// latency when no vGPU must be created (Fig 10's ≈15%).
	CycleLatency time.Duration
	// MemOvercommitFactor scales each device's schedulable gpu_mem capacity
	// (default 1.0 = no over-commitment). Values >1 must be paired with
	// devlib.Config.MemOvercommit so the device library swaps working sets.
	MemOvercommitFactor float64
	// Decide overrides the placement algorithm — §4.6's claim that users
	// can swap in their own scheduling logic because Sched and DevMgr are
	// decoupled controllers. The function must commit accepted placements
	// onto the pool (DeviceState.Place) like the default Algorithm 1 does.
	// Nil selects core.Schedule.
	Decide func(Request, *Pool) Decision
}

// DefaultCycleLatency is used when CycleLatency is zero. Algorithm 1 itself
// is O(N) microseconds (Fig 11); the cycle is dominated by the API
// round-trips, comparable to the default kube-scheduler's cycle.
const DefaultCycleLatency = 15 * time.Millisecond

// SortByAge orders sharePods oldest-first (name as tie-break) for FIFO
// fairness — the queue order every scheduler flavour shares.
func SortByAge(sps []*SharePod) {
	sort.Slice(sps, func(i, j int) bool {
		a, b := sps[i], sps[j]
		if a.CreationTime != b.CreationTime {
			return a.CreationTime < b.CreationTime
		}
		return a.Name < b.Name
	})
}

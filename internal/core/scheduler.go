package core

import (
	"fmt"
	"sort"
	"time"

	"kubeshare/internal/kube/apiserver"
	"kubeshare/internal/sim"
)

// SchedulerConfig parameterizes KubeShare-Sched.
type SchedulerConfig struct {
	// CycleLatency models one scheduling decision (pool query + Algorithm 1
	// + API updates); the dominant part of KubeShare's extra pod-creation
	// latency when no vGPU must be created (Fig 10's ≈15%).
	CycleLatency time.Duration
	// MemOvercommitFactor scales each device's schedulable gpu_mem capacity
	// (default 1.0 = no over-commitment). Values >1 must be paired with
	// devlib.Config.MemOvercommit so the device library swaps working sets.
	MemOvercommitFactor float64
	// Decide overrides the placement algorithm — §4.6's claim that users
	// can swap in their own scheduling logic because Sched and DevMgr are
	// decoupled controllers. The function must commit accepted placements
	// onto the pool (DeviceState.Place) like the default Algorithm 1 does.
	// Nil selects core.Schedule.
	Decide func(Request, *Pool) Decision
}

// DefaultCycleLatency is used when CycleLatency is zero. Algorithm 1 itself
// is O(N) microseconds (Fig 11); the cycle is dominated by the API
// round-trips, comparable to the default kube-scheduler's cycle.
const DefaultCycleLatency = 15 * time.Millisecond

// Scheduler is KubeShare-Sched: the custom controller assigning sharePods
// to vGPUs with Algorithm 1. It watches SharePods and the native objects
// whose changes can unblock a waiting request (pods and vGPUs), and decides
// one sharePod per cycle.
type Scheduler struct {
	env    *sim.Env
	srv    *apiserver.Server
	cfg    SchedulerConfig
	wake   *sim.Queue[struct{}]
	nextID int
	proc   *sim.Proc

	// decisions counts Algorithm 1 invocations (observability/tests).
	decisions int64
}

// NewScheduler creates KubeShare-Sched; Start launches it.
func NewScheduler(env *sim.Env, srv *apiserver.Server, cfg SchedulerConfig) *Scheduler {
	if cfg.CycleLatency == 0 {
		cfg.CycleLatency = DefaultCycleLatency
	}
	return &Scheduler{env: env, srv: srv, cfg: cfg, wake: sim.NewQueue[struct{}](env)}
}

// Decisions returns the number of scheduling decisions made so far.
func (s *Scheduler) Decisions() int64 { return s.decisions }

// Start launches the watch and scheduling loops.
func (s *Scheduler) Start() {
	for _, kind := range []string{KindSharePod, "Pod", KindVGPU} {
		q := s.srv.Watch(kind, kind == KindSharePod)
		s.env.Go("kubeshare-sched-watch-"+kind, func(p *sim.Proc) {
			for {
				if _, ok := q.Get(p); !ok {
					return
				}
				s.kick()
			}
		})
	}
	s.proc = s.env.Go("kubeshare-sched", s.loop)
}

// Stop terminates the scheduler.
func (s *Scheduler) Stop() {
	if s.proc != nil {
		s.proc.Kill(nil)
	}
}

func (s *Scheduler) kick() {
	if s.wake.Len() == 0 {
		s.wake.Put(struct{}{})
	}
}

func (s *Scheduler) loop(p *sim.Proc) {
	for {
		if _, ok := s.wake.Get(p); !ok {
			return
		}
		for s.scheduleNext(p) {
		}
	}
}

// scheduleNext runs one scheduling cycle: it tries the pending sharePods in
// age order against the current pool and applies the first decision that
// makes progress (assignment or rejection). It reports whether progress was
// made; all-NoCapacity means wait for a pool or pod change.
func (s *Scheduler) scheduleNext(p *sim.Proc) bool {
	var pending []*SharePod
	for _, sp := range SharePods(s.srv).List() {
		if !sp.Placed() && !sp.Terminated() {
			pending = append(pending, sp)
		}
	}
	if len(pending) == 0 {
		return false
	}
	sortByAge(pending)
	p.Sleep(s.cfg.CycleLatency)
	pool := BuildPoolWithFactor(s.srv, s.newGPUID, s.cfg.MemOvercommitFactor)
	for _, cand := range pending {
		// Re-read: the sharePod may have changed during the cycle.
		sp, err := SharePods(s.srv).Get(cand.Name)
		if err != nil || sp.Placed() || sp.Terminated() {
			continue
		}
		decide := s.cfg.Decide
		if decide == nil {
			decide = Schedule
		}
		dec := decide(RequestOf(sp), pool)
		s.decisions++
		switch dec.Outcome {
		case Assigned, NewDevice:
			s.apply(sp.Name, func(cur *SharePod) {
				cur.Spec.GPUID = dec.GPUID
				cur.Spec.NodeName = dec.NodeName
				cur.Status.Phase = SharePodScheduled
				cur.Status.ScheduledTime = s.env.Now()
			})
			return true
		case Rejected:
			s.apply(sp.Name, func(cur *SharePod) {
				cur.Status.Phase = SharePodRejected
				cur.Status.Message = dec.Reason
				cur.Status.FinishTime = s.env.Now()
			})
			return true
		}
		// NoCapacity: try the next pending sharePod this cycle.
	}
	return false
}

func (s *Scheduler) apply(name string, mutate func(*SharePod)) {
	_, err := SharePods(s.srv).Mutate(name, func(cur *SharePod) error {
		mutate(cur)
		return nil
	})
	if err != nil && !apiserver.IsNotFound(err) {
		panic(fmt.Sprintf("kubeshare-sched: update %s: %v", name, err))
	}
}

// sortByAge orders sharePods oldest-first (name as tie-break) for FIFO
// fairness.
func sortByAge(sps []*SharePod) {
	sort.Slice(sps, func(i, j int) bool {
		a, b := sps[i], sps[j]
		if a.CreationTime != b.CreationTime {
			return a.CreationTime < b.CreationTime
		}
		return a.Name < b.Name
	})
}

// newGPUID generates a fresh vGPU identifier (the paper's hashed id; a
// serial suffices and keeps logs readable).
func (s *Scheduler) newGPUID() string {
	s.nextID++
	return fmt.Sprintf("vgpu-%04d", s.nextID)
}

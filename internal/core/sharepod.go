// Package core implements KubeShare, the paper's contribution: GPU sharing
// in Kubernetes with fine-grained allocation and first-class GPU identity.
//
// It consists of two custom controllers following the operator pattern
// (§4.6): KubeShare-Sched assigns sharePods to vGPUs with the locality- and
// resource-aware Algorithm 1, and KubeShare-DevMgr manages the vGPU pool
// lifecycle, performs the explicit pod↔device binding, and installs the
// vGPU device library into containers.
package core

import (
	"fmt"
	"time"

	"kubeshare/internal/devlib"
	"kubeshare/internal/devlib/sharing"
	"kubeshare/internal/kube/api"
	"kubeshare/internal/kube/apiserver"
)

// Kind names of the custom resources KubeShare adds to the API server.
const (
	KindSharePod = "SharePod"
	KindVGPU     = "VGPU"
)

// The custom resources join the kind registry so the store's durability
// layer (WAL + checkpoints) can decode them back into typed objects during
// an apiserver restore — the CRD analogue of scheme registration.
func init() {
	api.RegisterKind(KindSharePod, func() api.Object { return &SharePod{} })
	api.RegisterKind(KindVGPU, func() api.Object { return &VGPU{} })
	api.RegisterKind(KindSharePodSet, func() api.Object { return &SharePodSet{} })
}

// SharePodPhase is the lifecycle phase of a sharePod.
type SharePodPhase string

// SharePod lifecycle phases. Rejected marks requests whose locality
// constraints are unsatisfiable (Algorithm 1 returns -1).
const (
	SharePodPending   SharePodPhase = "Pending"
	SharePodScheduled SharePodPhase = "Scheduled"
	SharePodRunning   SharePodPhase = "Running"
	SharePodSucceeded SharePodPhase = "Succeeded"
	SharePodFailed    SharePodPhase = "Failed"
	SharePodRejected  SharePodPhase = "Rejected"
)

// SharePodSpec is the paper's resource specification (§4.2): the original
// pod spec plus fractional GPU demands, the vGPU identity, and locality
// constraints.
type SharePodSpec struct {
	// Pod is the original PodSpec the bound pod is created from.
	Pod api.PodSpec
	// GPURequest is the guaranteed minimum compute share in (0,1].
	GPURequest float64
	// GPULimit is the maximum compute share; 0 defaults to GPURequest.
	GPULimit float64
	// GPUMem is the device-memory fraction in (0,1].
	GPUMem float64
	// GPUMemBytes is the absolute device-memory request in bytes (the
	// KAI-style quantity form). Exactly one of GPUMem / GPUMemBytes may be
	// positive; the byte form is enforced both at placement (byte residuals
	// in Algorithm 1 and the MemoryFit plugin) and inside the device's
	// memory model.
	GPUMemBytes int64
	// SharingMode selects the GPU-sharing strategy for the device this pod
	// lands on: "" or "token" (the paper's token time-slicing), "mps"
	// (MPS-style overlap), or "replica" (logical-GPU time-slicing). Devices
	// run exactly one strategy; use Exclusion labels to segregate modes.
	SharingMode string
	// GPUID selects a specific vGPU. Usually assigned by KubeShare-Sched,
	// but a client may set it directly — GPUs are first-class, explicitly
	// addressable resources.
	GPUID string
	// NodeName is the node hosting the vGPU (set together with GPUID).
	NodeName string
	// Affinity, AntiAffinity and Exclusion are the locality constraint
	// labels (sched_affinity / sched_anti-affinity / sched_exclusion).
	Affinity     string
	AntiAffinity string
	Exclusion    string
	// Gang names an all-or-nothing co-scheduling group: members of the same
	// gang are placed atomically in one scheduling cycle once GangSize of
	// them are pending, or not at all. Set by the SharePodSet controller for
	// gang-enabled sets; "" disables gang semantics. The gate applies to
	// initial admission only — a member requeued after recovery (Restarts >
	// 0) reschedules solo, since its peers already hold their placements.
	Gang string
	// GangSize is the total member count the gang waits for.
	GangSize int
}

// Share converts the spec's fractions into a device library share.
func (s SharePodSpec) Share() devlib.Share {
	return devlib.Share{
		Request:     s.GPURequest,
		Limit:       s.GPULimit,
		Memory:      s.GPUMem,
		MemoryBytes: s.GPUMemBytes,
	}
}

// Clone returns a deep copy.
func (s SharePodSpec) Clone() SharePodSpec {
	out := s
	out.Pod = s.Pod.Clone()
	return out
}

// SharePodStatus is the observed state of a sharePod.
type SharePodStatus struct {
	Phase   SharePodPhase
	Message string
	// BoundPod is the name of the pod DevMgr created for this sharePod.
	BoundPod string
	// UUID is the physical GPU backing the assigned vGPU.
	UUID string
	// Restarts counts recovery requeues: each time the bound pod vanished
	// under a live sharePod (node eviction, vGPU loss) the scheduler cleared
	// the placement and incremented this. It also versions the bound pod
	// name, so a replacement never collides with its dying predecessor.
	Restarts int
	// ScheduledTime is when KubeShare-Sched assigned the GPUID;
	// RunningTime/FinishTime track the bound pod.
	ScheduledTime time.Duration
	RunningTime   time.Duration
	FinishTime    time.Duration
}

// SharePod is the custom resource representing a pod with a fractional,
// explicitly bound GPU share.
type SharePod struct {
	api.ObjectMeta
	Spec   SharePodSpec
	Status SharePodStatus
}

// GetMeta implements api.Object.
func (s *SharePod) GetMeta() *api.ObjectMeta { return &s.ObjectMeta }

// Kind implements api.Object.
func (s *SharePod) Kind() string { return KindSharePod }

// DeepCopyObject implements api.Object.
func (s *SharePod) DeepCopyObject() api.Object {
	out := *s
	out.ObjectMeta = s.CloneMeta()
	out.Spec = s.Spec.Clone()
	return &out
}

// SetStatusFrom implements api.StatusCarrier: KubeShare-Sched owns the
// spec's placement fields while DevMgr reports status, so the two write
// through separate subresources and never race.
func (s *SharePod) SetStatusFrom(src api.Object) { s.Status = src.(*SharePod).Status }

// Terminated reports whether the sharePod reached a terminal phase.
func (s *SharePod) Terminated() bool {
	switch s.Status.Phase {
	case SharePodSucceeded, SharePodFailed, SharePodRejected:
		return true
	}
	return false
}

// Placed reports whether a vGPU has been assigned.
func (s *SharePod) Placed() bool { return s.Spec.GPUID != "" }

// Placement is a typed placement: where a workload landed and whether its
// GPU grant is fractional. Callers previously reassembled this from spec
// fields and bound-pod annotation strings; the typed form is the API.
type Placement struct {
	// NodeName is the hosting node ("" when unplaced).
	NodeName string
	// GPUID is the assigned vGPU ("" when unplaced).
	GPUID string
	// Partial marks a fractional share — the workload co-tenants its device
	// (gpu_request or gpu_mem below a whole GPU).
	Partial bool
}

// Assigned reports whether the placement names a device.
func (p Placement) Assigned() bool { return p.GPUID != "" }

// Placement returns the sharePod's typed placement.
func (s *SharePod) Placement() Placement {
	return Placement{
		NodeName: s.Spec.NodeName,
		GPUID:    s.Spec.GPUID,
		Partial:  s.Spec.GPURequest < 1 || s.Spec.GPUMem < 1,
	}
}

// RequeueSharePod is the shared recovery edge: it clears a live, placed
// sharePod's placement and resets it to Pending with Restarts incremented,
// so Algorithm 1 re-places the work against current cluster state. Both
// KubeShare-Sched (bound pod deleted under a live sharePod) and DevMgr
// (vGPU lost with no bound pod to delete) funnel through it. The writes
// cannot race with a placement in flight — every writer runs in the same
// cooperative scheduler and performs its read-decide-write without
// yielding. Returns the updated object, or nil when the sharePod is gone,
// terminal, or already unplaced.
func RequeueSharePod(srv *apiserver.Server, name string) *SharePod {
	sps := SharePods(srv)
	sp, err := sps.Get(name)
	if err != nil || sp.Terminated() || !sp.Placed() {
		return nil
	}
	if _, err := sps.Mutate(name, func(cur *SharePod) error {
		cur.Spec.GPUID = ""
		cur.Spec.NodeName = ""
		return nil
	}); err != nil {
		return nil
	}
	updated, err := sps.MutateStatus(name, func(cur *SharePod) error {
		cur.Status.Phase = SharePodPending
		cur.Status.BoundPod = ""
		cur.Status.UUID = ""
		cur.Status.Restarts++
		return nil
	})
	if err != nil {
		return nil
	}
	return updated
}

// ValidationError is the typed admission error for bad GPU share fields,
// returned by ValidateSharePod on both Create and Update (the validator is
// registered for both verbs). Callers detect it with errors.As to
// distinguish a malformed spec from infrastructure failures.
type ValidationError struct {
	// Field is the offending spec field (e.g. "GPURequest").
	Field string
	// Reason describes the violation.
	Reason string
}

func (e *ValidationError) Error() string {
	return fmt.Sprintf("core: invalid %s: %s", e.Field, e.Reason)
}

// validateGPUFields checks the spec's GPU quantities, returning a typed
// *ValidationError on the first violation.
func validateGPUFields(spec SharePodSpec) error {
	if spec.GPURequest <= 0 {
		return &ValidationError{Field: "GPURequest", Reason: "must be positive"}
	}
	if spec.GPURequest > 1 {
		return &ValidationError{Field: "GPURequest",
			Reason: fmt.Sprintf("%v outside (0,1]", spec.GPURequest)}
	}
	if spec.GPULimit != 0 && spec.GPURequest > spec.GPULimit {
		return &ValidationError{Field: "GPULimit",
			Reason: fmt.Sprintf("%v below GPURequest %v", spec.GPULimit, spec.GPURequest)}
	}
	if spec.GPULimit < 0 || spec.GPULimit > 1 {
		return &ValidationError{Field: "GPULimit",
			Reason: fmt.Sprintf("%v outside [0,1]", spec.GPULimit)}
	}
	if spec.GPUMem < 0 || spec.GPUMem > 1 {
		return &ValidationError{Field: "GPUMem",
			Reason: fmt.Sprintf("%v outside [0,1]", spec.GPUMem)}
	}
	if spec.GPUMemBytes < 0 {
		return &ValidationError{Field: "GPUMemBytes",
			Reason: fmt.Sprintf("%d negative", spec.GPUMemBytes)}
	}
	if spec.GPUMemBytes > DeviceMemBytes {
		// Mirrors the fractional cap of 1.0: a request no physical device can
		// hold is rejected at admission, not left to starve in the queue.
		return &ValidationError{Field: "GPUMemBytes",
			Reason: fmt.Sprintf("%d exceeds device capacity %d", spec.GPUMemBytes, DeviceMemBytes)}
	}
	if spec.GPUMem == 0 && spec.GPUMemBytes == 0 {
		return &ValidationError{Field: "GPUMem",
			Reason: "one of GPUMem / GPUMemBytes must be positive"}
	}
	if spec.GPUMem > 0 && spec.GPUMemBytes > 0 {
		return &ValidationError{Field: "GPUMemBytes",
			Reason: "GPUMem and GPUMemBytes are mutually exclusive"}
	}
	if _, err := sharing.ParseMode(spec.SharingMode); err != nil {
		return &ValidationError{Field: "SharingMode", Reason: err.Error()}
	}
	return nil
}

// ValidateSharePod is the admission validator for the SharePod kind.
func ValidateSharePod(o api.Object) error {
	sp, ok := o.(*SharePod)
	if !ok {
		return fmt.Errorf("core: object is %T, not *SharePod", o)
	}
	if err := api.ValidatePodSpec(sp.Spec.Pod); err != nil {
		return err
	}
	// The fractional shares are pod-level quantities but the device library
	// registers per container; with one container per pod (the paper's §2.1
	// assumption) the two coincide. Reject multi-container specs rather
	// than silently over-committing the device.
	if len(sp.Spec.Pod.Containers) != 1 {
		return fmt.Errorf("core: sharePod must have exactly one container (got %d)", len(sp.Spec.Pod.Containers))
	}
	if gpus := sp.Spec.Pod.Requests()[api.ResourceGPU]; gpus != 0 {
		return fmt.Errorf("core: sharePod container must not request %s (the share fields replace it)", api.ResourceGPU)
	}
	if err := validateGPUFields(sp.Spec); err != nil {
		return err
	}
	if err := sp.Spec.Share().Validate(); err != nil {
		return err
	}
	if sp.Spec.GPUID != "" && sp.Spec.NodeName == "" {
		return fmt.Errorf("core: GPUID set without NodeName")
	}
	if sp.Spec.Gang == "" && sp.Spec.GangSize != 0 {
		return fmt.Errorf("core: GangSize set without Gang")
	}
	if sp.Spec.Gang != "" && sp.Spec.GangSize < 1 {
		return fmt.Errorf("core: gang %q needs GangSize >= 1", sp.Spec.Gang)
	}
	return nil
}

// VGPUPhase is the vGPU lifecycle phase (§4.4).
type VGPUPhase string

// vGPU lifecycle phases: Creating (acquiring a physical GPU from
// Kubernetes), Active (attached to ≥1 sharePod), Idle (in pool, no
// tenants). Deletion removes the object.
const (
	VGPUCreating VGPUPhase = "Creating"
	VGPUActive   VGPUPhase = "Active"
	VGPUIdle     VGPUPhase = "Idle"
)

// VGPUSpec identifies a vGPU.
type VGPUSpec struct {
	GPUID    string
	NodeName string
}

// VGPUStatus is the observed state of a vGPU.
type VGPUStatus struct {
	Phase VGPUPhase
	// UUID is the physical device, discovered from the holder pod's
	// NVIDIA_VISIBLE_DEVICES once acquisition completes.
	UUID string
	// HolderPod is the native pod pinning the physical GPU.
	HolderPod string
}

// VGPU is the custom resource representing one pool device. Its object name
// equals Spec.GPUID.
type VGPU struct {
	api.ObjectMeta
	Spec   VGPUSpec
	Status VGPUStatus
}

// GetMeta implements api.Object.
func (v *VGPU) GetMeta() *api.ObjectMeta { return &v.ObjectMeta }

// Kind implements api.Object.
func (v *VGPU) Kind() string { return KindVGPU }

// DeepCopyObject implements api.Object.
func (v *VGPU) DeepCopyObject() api.Object {
	out := *v
	out.ObjectMeta = v.CloneMeta()
	return &out
}

// SetStatusFrom implements api.StatusCarrier.
func (v *VGPU) SetStatusFrom(src api.Object) { v.Status = src.(*VGPU).Status }

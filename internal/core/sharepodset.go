package core

import (
	"fmt"
	"time"

	"kubeshare/internal/kube/api"
	"kubeshare/internal/kube/apiserver"
	"kubeshare/internal/kube/backoff"
	"kubeshare/internal/kube/controller"
	"kubeshare/internal/sim"
)

// Replacement backoff for failed replicas: the first failure is replaced
// after roughly replaceBackoffBase, growing per consecutive failure round
// up to replaceBackoffCap under the shared decorrelated-jitter policy
// (internal/kube/backoff). A set whose replicas all come up Ready resets.
const (
	replaceBackoffBase = 250 * time.Millisecond
	replaceBackoffCap  = 8 * time.Second
)

// KindSharePodSet is the replica-controller custom resource over sharePods.
const KindSharePodSet = "SharePodSet"

// SharePodSet maintains Replicas live sharePods stamped from Template —
// the §4.6 demonstration that higher-level controllers compose with
// KubeShare exactly as they do with native pods: the set controller talks
// only to the API server, KubeShare-Sched and DevMgr do the rest.
type SharePodSet struct {
	api.ObjectMeta
	Replicas int
	// Template is the sharePod spec each replica is created from (GPUID
	// and NodeName must be empty; the scheduler assigns them per replica).
	Template SharePodSpec
	// Gang requests all-or-nothing co-scheduling: the manager stamps every
	// replica with the set's gang (named after the set, sized Replicas), so
	// the scheduler admits the whole set in one cycle or none of it — the
	// distributed-training pattern where a partial replica set only wastes
	// GPU time.
	Gang bool
	// ReadyReplicas counts replicas whose bound pod is running.
	ReadyReplicas int
}

// GetMeta implements api.Object.
func (s *SharePodSet) GetMeta() *api.ObjectMeta { return &s.ObjectMeta }

// Kind implements api.Object.
func (s *SharePodSet) Kind() string { return KindSharePodSet }

// DeepCopyObject implements api.Object.
func (s *SharePodSet) DeepCopyObject() api.Object {
	out := *s
	out.ObjectMeta = s.CloneMeta()
	out.Template = s.Template.Clone()
	return &out
}

// SharePodSets returns the typed client.
func SharePodSets(srv *apiserver.Server) apiserver.Client[*SharePodSet] {
	return apiserver.NewClient[*SharePodSet](srv, KindSharePodSet)
}

// setOwnerPrefix qualifies OwnerName references held by set-created
// sharePods.
const setOwnerPrefix = KindSharePodSet + "/"

// SharePodSetManager reconciles SharePodSet objects. Failed replicas are
// garbage-collected and replaced with capped exponential backoff, so a
// crash-looping template cannot hammer the scheduler.
type SharePodSetManager struct {
	env    *sim.Env
	srv    *apiserver.Server
	runner *controller.Runner
	serial int
	// replaceFails holds each set's replacement-backoff sequence across
	// consecutive failed-replica rounds.
	replaceFails map[string]*backoff.Backoff
}

// NewSharePodSetManager creates the manager; Start launches its watches.
func NewSharePodSetManager(env *sim.Env, srv *apiserver.Server) *SharePodSetManager {
	m := &SharePodSetManager{env: env, srv: srv, replaceFails: make(map[string]*backoff.Backoff)}
	m.runner = controller.NewRunner(env, "sharepodset", 0, m.reconcile)
	srv.RegisterValidator(KindSharePodSet, func(o api.Object) error {
		set := o.(*SharePodSet)
		if set.Replicas < 0 {
			return fmt.Errorf("core: negative replicas")
		}
		if set.Template.GPUID != "" {
			return fmt.Errorf("core: set template must not pin a GPUID")
		}
		if set.Template.Gang != "" || set.Template.GangSize != 0 {
			return fmt.Errorf("core: set template must not carry gang fields (set Gang on the set; the manager stamps replicas)")
		}
		if set.Gang && set.Replicas < 1 {
			return fmt.Errorf("core: gang set needs at least one replica")
		}
		probe := &SharePod{ObjectMeta: api.ObjectMeta{Name: "probe"}, Spec: set.Template}
		return ValidateSharePod(probe)
	})
	return m
}

// Start begins watching sets and their sharePods. Named reflectors keep the
// manager alive across apiserver restarts: the dead watch queue is replaced
// by a relist-with-resync instead of silently ending the loop.
func (m *SharePodSetManager) Start() {
	setR := m.srv.NewNamedReflector("sharepodset", KindSharePodSet, apiserver.WatchOptions{Replay: true})
	m.env.Go("sharepodset-watch", func(p *sim.Proc) {
		for {
			ev, ok := setR.Get(p)
			if !ok {
				return
			}
			m.runner.Enqueue(ev.Object.GetMeta().Name)
		}
	})
	spR := m.srv.NewNamedReflector("sharepodset", KindSharePod, apiserver.WatchOptions{Replay: true})
	m.env.Go("sharepodset-watch-sharepods", func(p *sim.Proc) {
		for {
			ev, ok := spR.Get(p)
			if !ok {
				return
			}
			if owner := ev.Object.GetMeta().OwnerName; len(owner) > len(setOwnerPrefix) &&
				owner[:len(setOwnerPrefix)] == setOwnerPrefix {
				m.runner.Enqueue(owner[len(setOwnerPrefix):])
			}
		}
	})
	m.runner.Start()
}

// Stop terminates the reconcile loop.
func (m *SharePodSetManager) Stop() { m.runner.Stop() }

func (m *SharePodSetManager) reconcile(p *sim.Proc, name string) error {
	sets := SharePodSets(m.srv)
	set, err := sets.Get(name)
	if err != nil {
		if apiserver.IsNotFound(err) {
			m.cleanupOrphans(name)
			return nil
		}
		return err
	}
	sps := SharePods(m.srv)
	var owned []*SharePod
	var failed []*SharePod
	live := 0
	ready := 0
	for _, sp := range sps.List() {
		if sp.OwnerName != setOwnerPrefix+name {
			continue
		}
		owned = append(owned, sp)
		if !sp.Terminated() {
			live++
		}
		if sp.Status.Phase == SharePodRunning {
			ready++
		}
		if sp.Status.Phase == SharePodFailed {
			failed = append(failed, sp)
		}
	}
	if len(failed) > 0 {
		// GC the corpses now; defer the replacements one backoff round so a
		// template that fails on contact cannot spin the control plane.
		for _, sp := range failed {
			if err := sps.Delete(sp.Name); err != nil && !apiserver.IsNotFound(err) {
				return err
			}
		}
		m.runner.EnqueueAfter(name, m.replaceDelay(name))
		return nil
	}
	if ready >= set.Replicas {
		delete(m.replaceFails, name)
	}
	for live < set.Replicas {
		m.serial++
		sp := &SharePod{
			ObjectMeta: api.ObjectMeta{
				Name:      fmt.Sprintf("%s-%d", set.Name, m.serial),
				OwnerName: setOwnerPrefix + set.Name,
			},
			Spec: set.Template.Clone(),
		}
		if set.Gang {
			sp.Spec.Gang = set.Name
			sp.Spec.GangSize = set.Replicas
		}
		if _, err := sps.Create(sp); err != nil {
			return fmt.Errorf("sharepodset %s: create: %w", name, err)
		}
		live++
	}
	for i := len(owned) - 1; i >= 0 && live > set.Replicas; i-- {
		if owned[i].Terminated() {
			continue
		}
		if err := sps.Delete(owned[i].Name); err != nil && !apiserver.IsNotFound(err) {
			return err
		}
		live--
	}
	if set.ReadyReplicas != ready {
		if _, err := sets.Mutate(name, func(cur *SharePodSet) error {
			cur.ReadyReplicas = ready
			return nil
		}); err != nil && !apiserver.IsNotFound(err) {
			return err
		}
	}
	return nil
}

// replaceDelay advances the set's replacement-backoff sequence, creating
// it on the first failed round.
func (m *SharePodSetManager) replaceDelay(name string) time.Duration {
	b := m.replaceFails[name]
	if b == nil {
		b = backoff.New("sharepodset/"+name, replaceBackoffBase, replaceBackoffCap)
		m.replaceFails[name] = b
	}
	return b.Next()
}

func (m *SharePodSetManager) cleanupOrphans(owner string) {
	sps := SharePods(m.srv)
	for _, sp := range sps.List() {
		if sp.OwnerName == setOwnerPrefix+owner {
			_ = sps.Delete(sp.Name)
		}
	}
}

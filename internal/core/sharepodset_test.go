package core_test

import (
	. "kubeshare/internal/core"
	"testing"
	"time"

	"kubeshare/internal/kube/api"
	"kubeshare/internal/sim"
)

// setTemplate is a long-running fractional template for set tests.
func setTemplate(req float64) SharePodSpec {
	return SharePodSpec{
		GPURequest: req, GPULimit: 1, GPUMem: 0.1,
		Pod: api.PodSpec{Containers: []api.Container{{
			Name: "c", Image: "train",
			Env: map[string]string{"TRAIN_SECONDS": "3600"},
		}}},
	}
}

func TestSharePodSetScalesUp(t *testing.T) {
	s := newStack(t, 1, Config{})
	s.env.Go("t", func(p *sim.Proc) {
		SharePodSets(s.c.API).Create(&SharePodSet{
			ObjectMeta: api.ObjectMeta{Name: "serve"},
			Replicas:   3,
			Template:   setTemplate(0.3),
		})
	})
	s.env.RunUntil(30 * time.Second)
	running := 0
	for _, sp := range SharePods(s.c.API).List() {
		if sp.Status.Phase == SharePodRunning {
			running++
		}
		if sp.OwnerName != "SharePodSet/serve" {
			t.Fatalf("owner = %q", sp.OwnerName)
		}
	}
	if running != 3 {
		t.Fatalf("running replicas = %d, want 3", running)
	}
	set, _ := SharePodSets(s.c.API).Get("serve")
	if set.ReadyReplicas != 3 {
		t.Fatalf("ReadyReplicas = %d", set.ReadyReplicas)
	}
	// All three fit one GPU (3×0.3): the set + scheduler pack them.
	uuids := map[string]bool{}
	for _, sp := range SharePods(s.c.API).List() {
		uuids[sp.Status.UUID] = true
	}
	if len(uuids) != 1 {
		t.Fatalf("replicas spread over %d GPUs, want 1", len(uuids))
	}
}

func TestSharePodSetScaleDownAndDelete(t *testing.T) {
	s := newStack(t, 1, Config{})
	s.env.Go("t", func(p *sim.Proc) {
		SharePodSets(s.c.API).Create(&SharePodSet{
			ObjectMeta: api.ObjectMeta{Name: "serve"},
			Replicas:   3,
			Template:   setTemplate(0.3),
		})
		p.Sleep(20 * time.Second)
		SharePodSets(s.c.API).Mutate("serve", func(cur *SharePodSet) error {
			cur.Replicas = 1
			return nil
		})
		p.Sleep(20 * time.Second)
		live := 0
		for _, sp := range SharePods(s.c.API).List() {
			if !sp.Terminated() {
				live++
			}
		}
		if live != 1 {
			t.Errorf("live after scale-down = %d, want 1", live)
		}
		SharePodSets(s.c.API).Delete("serve")
	})
	s.env.Run()
	if n := len(SharePods(s.c.API).List()); n != 0 {
		t.Fatalf("orphan sharePods remain: %d", n)
	}
	if n := len(VGPUs(s.c.API).List()); n != 0 {
		t.Fatalf("vGPUs remain: %d", n)
	}
}

func TestSharePodSetReplacesFailedReplica(t *testing.T) {
	s := newStack(t, 1, Config{})
	// Template that finishes quickly: terminated replicas are replaced to
	// keep the live count at target.
	tmpl := SharePodSpec{
		GPURequest: 0.3, GPULimit: 1, GPUMem: 0.1,
		Pod: api.PodSpec{Containers: []api.Container{{
			Name: "c", Image: "train",
			Env: map[string]string{"TRAIN_SECONDS": "2"},
		}}},
	}
	s.env.Go("t", func(p *sim.Proc) {
		SharePodSets(s.c.API).Create(&SharePodSet{
			ObjectMeta: api.ObjectMeta{Name: "churn"},
			Replicas:   1,
			Template:   tmpl,
		})
		p.Sleep(30 * time.Second)
		SharePodSets(s.c.API).Delete("churn")
	})
	s.env.Run()
	// The 2s jobs kept finishing; the set should have created several
	// generations in 30s.
	if s.env.Now() > 2*time.Minute {
		t.Fatalf("sim ran to %v", s.env.Now())
	}
}

func TestSharePodSetValidation(t *testing.T) {
	s := newStack(t, 1, Config{})
	bad := &SharePodSet{
		ObjectMeta: api.ObjectMeta{Name: "bad"},
		Replicas:   -1,
		Template:   setTemplate(0.3),
	}
	if _, err := SharePodSets(s.c.API).Create(bad); err == nil {
		t.Fatal("negative replicas accepted")
	}
	pinned := &SharePodSet{
		ObjectMeta: api.ObjectMeta{Name: "pinned"},
		Replicas:   1,
		Template: func() SharePodSpec {
			tm := setTemplate(0.3)
			tm.GPUID = "vgpu-x"
			tm.NodeName = "node-0"
			return tm
		}(),
	}
	if _, err := SharePodSets(s.c.API).Create(pinned); err == nil {
		t.Fatal("GPUID-pinned template accepted")
	}
}

func TestHybridPoolKeepsReserve(t *testing.T) {
	s := newStack(t, 1, Config{DevMgr: DevMgrConfig{Policy: Hybrid, IdleReserve: 1}})
	s.env.Go("t", func(p *sim.Proc) {
		// Two jobs on two different vGPUs (anti-affinity), both finish.
		for _, n := range []string{"x", "y"} {
			sp := sharePod(n, 0.6, 1, 0.2, 1)
			sp.Spec.AntiAffinity = "spread"
			s.create(t, sp)
		}
	})
	s.env.RunUntil(time.Minute)
	idle, total := 0, 0
	for _, v := range VGPUs(s.c.API).List() {
		total++
		if v.Status.Phase == VGPUIdle {
			idle++
		}
	}
	if total != 1 || idle != 1 {
		t.Fatalf("vGPUs total=%d idle=%d, want exactly the 1-device reserve", total, idle)
	}
}

package core

import (
	"fmt"
	"sort"

	"kubeshare/internal/kube/api"
	"kubeshare/internal/kube/store"
)

// Snapshot is KubeShare-Sched's incrementally maintained cluster view. The
// seed implementation rebuilt Algorithm 1's pool from full SharePod / VGPU /
// Pod / Node lists on every decision — O(cluster) per decision. The snapshot
// instead consumes watch deltas (Apply) and keeps per-vGPU residual
// bookkeeping, the per-node free-GPU counts and the pending set up to date,
// so each decision reads cached state in O(devices touched).
//
// Pool equivalence with BuildPoolWithFactor is exact: per-device residuals
// are recomputed from the device's tenant set in name order (matching the
// List order BuildPool places in) and devices are emitted sorted by ID, so
// the two constructions are comparable field by field — the property the
// snapshot-vs-rebuild tests pin down.
type Snapshot struct {
	memFactor float64

	// devices is the live vGPU view: gpuID → entry with its tenant set.
	devices map[string]*deviceEntry
	// tenants maps a placed, live sharePod to its device and request, so
	// deltas can be diffed against what the snapshot already accounts for.
	tenants map[string]tenantRef
	// pending holds unplaced, non-terminated sharePods awaiting a decision.
	pending map[string]*SharePod
	// vgpuObj marks gpuIDs backed by a VGPU object (a device may also exist
	// solely because live sharePods reference its ID before DevMgr
	// materializes it).
	vgpuObj map[string]bool
	// vgpuPerNode counts devices per node (carved out of physical GPUs).
	vgpuPerNode map[string]int
	// nodeAlloc is each node's allocatable physical GPU count.
	nodeAlloc map[string]int
	// nodeReady mirrors node readiness; NotReady nodes contribute no free
	// physical GPUs (matching BuildPool).
	nodeReady map[string]bool
	// podGPU tracks native (non-KubeShare) GPU pods: pod name → contribution.
	podGPU map[string]podGPURef
	// nativeGPU sums podGPU per node.
	nativeGPU map[string]int
}

// deviceEntry is one vGPU's incremental state.
type deviceEntry struct {
	id      string
	node    string
	tenants map[string]Request // sharePod name → request
	// cached is the DeviceState recomputed from tenants; nil when stale.
	cached *DeviceState
}

type tenantRef struct {
	gpuID string
	node  string
	req   Request
}

type podGPURef struct {
	node  string
	count int
}

// NewSnapshot returns an empty snapshot. memFactor follows
// BuildPoolWithFactor semantics (<=0 means 1).
func NewSnapshot(memFactor float64) *Snapshot {
	if memFactor <= 0 {
		memFactor = 1
	}
	return &Snapshot{
		memFactor:   memFactor,
		devices:     make(map[string]*deviceEntry),
		tenants:     make(map[string]tenantRef),
		pending:     make(map[string]*SharePod),
		vgpuObj:     make(map[string]bool),
		vgpuPerNode: make(map[string]int),
		nodeAlloc:   make(map[string]int),
		nodeReady:   make(map[string]bool),
		podGPU:      make(map[string]podGPURef),
		nativeGPU:   make(map[string]int),
	}
}

// Apply folds one watch event into the snapshot. It is idempotent — the
// scheduler writes its own placements through immediately and later sees the
// same mutation again from the watch stream.
func (s *Snapshot) Apply(ev store.Event) {
	deleted := ev.Type == store.Deleted
	switch obj := ev.Object.(type) {
	case *SharePod:
		s.applySharePod(obj, deleted)
	case *VGPU:
		s.applyVGPU(obj, deleted)
	case *api.Pod:
		s.applyPod(obj, deleted)
	case *api.Node:
		s.applyNode(obj, deleted)
	}
}

func (s *Snapshot) applySharePod(sp *SharePod, deleted bool) {
	name := sp.Name
	live := !deleted && !sp.Terminated()
	if live && !sp.Placed() {
		s.pending[name] = sp
	} else {
		delete(s.pending, name)
	}
	if live && sp.Placed() {
		s.setTenant(name, sp.Spec.GPUID, sp.Spec.NodeName, RequestOf(sp))
	} else {
		s.clearTenant(name)
	}
}

func (s *Snapshot) setTenant(name, gpuID, node string, req Request) {
	if prev, ok := s.tenants[name]; ok {
		if prev.gpuID == gpuID && prev.node == node && prev.req == req {
			return
		}
		s.clearTenant(name)
	}
	d := s.deviceOf(gpuID, node)
	d.tenants[name] = req
	d.cached = nil
	s.tenants[name] = tenantRef{gpuID: gpuID, node: node, req: req}
}

func (s *Snapshot) clearTenant(name string) {
	prev, ok := s.tenants[name]
	if !ok {
		return
	}
	delete(s.tenants, name)
	if d, ok := s.devices[prev.gpuID]; ok {
		delete(d.tenants, name)
		d.cached = nil
		s.dropDeviceIfDangling(prev.gpuID)
	}
}

func (s *Snapshot) applyVGPU(v *VGPU, deleted bool) {
	id := v.Spec.GPUID
	if deleted {
		delete(s.vgpuObj, id)
		s.dropDeviceIfDangling(id)
		return
	}
	s.vgpuObj[id] = true
	s.deviceOf(id, v.Spec.NodeName)
}

// deviceOf returns the entry for a gpuID, creating it (and accounting the
// node's carved-out GPU) on first sight.
func (s *Snapshot) deviceOf(id, node string) *deviceEntry {
	d, ok := s.devices[id]
	if !ok {
		d = &deviceEntry{id: id, node: node, tenants: make(map[string]Request)}
		s.devices[id] = d
		s.vgpuPerNode[node]++
	}
	return d
}

// dropDeviceIfDangling removes a device that has neither a VGPU object nor
// live tenants — mirroring BuildPool, which only materializes devices from
// one of those two sources.
func (s *Snapshot) dropDeviceIfDangling(id string) {
	d, ok := s.devices[id]
	if !ok || s.vgpuObj[id] || len(d.tenants) > 0 {
		return
	}
	delete(s.devices, id)
	if s.vgpuPerNode[d.node]--; s.vgpuPerNode[d.node] == 0 {
		delete(s.vgpuPerNode, d.node)
	}
}

func (s *Snapshot) applyPod(pod *api.Pod, deleted bool) {
	// Only native GPU pods affect the free-physical calculation; holder pods
	// are already accounted as vGPUs.
	count := 0
	if !deleted && !pod.Terminated() && pod.Labels[LabelVGPUHolder] == "" && pod.Spec.NodeName != "" {
		count = int(pod.Spec.Requests()[api.ResourceGPU])
	}
	prev, had := s.podGPU[pod.Name]
	if had && prev.node == pod.Spec.NodeName && prev.count == count {
		return
	}
	if had {
		if s.nativeGPU[prev.node] -= prev.count; s.nativeGPU[prev.node] == 0 {
			delete(s.nativeGPU, prev.node)
		}
		delete(s.podGPU, pod.Name)
	}
	if count > 0 {
		s.podGPU[pod.Name] = podGPURef{node: pod.Spec.NodeName, count: count}
		s.nativeGPU[pod.Spec.NodeName] += count
	}
}

func (s *Snapshot) applyNode(node *api.Node, deleted bool) {
	if deleted {
		delete(s.nodeAlloc, node.Name)
		delete(s.nodeReady, node.Name)
		return
	}
	s.nodeAlloc[node.Name] = int(node.Status.Allocatable[api.ResourceGPU])
	s.nodeReady[node.Name] = node.Status.Ready
}

// Pending returns the unplaced, non-terminated sharePods (unsorted; callers
// order by age).
func (s *Snapshot) Pending() []*SharePod {
	out := make([]*SharePod, 0, len(s.pending))
	for _, sp := range s.pending {
		out = append(out, sp)
	}
	return out
}

// PendingCount returns the size of the pending set.
func (s *Snapshot) PendingCount() int { return len(s.pending) }

// deviceState returns the device's DeviceState, recomputing from the tenant
// set only when stale. Tenants are placed in name order — the same order
// BuildPool encounters them in SharePods().List() — so last-writer fields
// (Excl) agree between the two constructions.
func (d *deviceEntry) deviceState(memFactor float64) *DeviceState {
	if d.cached != nil {
		return d.cached
	}
	ds := NewDeviceState(d.id, d.node)
	ds.MemCapacity = memFactor
	ds.Mem = memFactor
	names := make([]string, 0, len(d.tenants))
	for n := range d.tenants {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		ds.Place(d.tenants[n])
	}
	d.cached = ds
	return ds
}

// NewPool materializes an Algorithm 1 pool from the snapshot, equivalent to
// BuildPoolWithFactor against the same cluster state: devices sorted by ID
// with residuals from cached per-device recomputation, plus the per-node
// free physical GPU counts. The returned pool is private to the caller —
// Algorithm 1 commits trial placements onto it without disturbing the
// snapshot.
func (s *Snapshot) NewPool(newID func() string) *Pool {
	pool := &Pool{FreePhysical: map[string]int{}, NewID: newID, MemFactor: s.memFactor}
	ids := make([]string, 0, len(s.devices))
	for id := range s.devices {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		pool.Devices = append(pool.Devices, s.devices[id].deviceState(s.memFactor).Clone())
	}
	for node, alloc := range s.nodeAlloc {
		if !s.nodeReady[node] {
			continue
		}
		if free := alloc - s.nativeGPU[node] - s.vgpuPerNode[node]; free > 0 {
			pool.FreePhysical[node] = free
		}
	}
	return pool
}

// DiffPools compares two Algorithm 1 pools and returns a description of the
// first divergence, or nil when they are equivalent. It backs the
// snapshot-vs-rebuild invariant: a pool materialized from the scheduler's
// incremental snapshot must be exactly the pool a full relist would build,
// including across watch drops, resumes and relists.
func DiffPools(got, want *Pool) error {
	if len(got.Devices) != len(want.Devices) {
		return fmt.Errorf("device count %d, want %d", len(got.Devices), len(want.Devices))
	}
	const eps = 1e-9
	for i, g := range got.Devices {
		w := want.Devices[i]
		if g.ID != w.ID || g.NodeName != w.NodeName {
			return fmt.Errorf("device %d: %s@%s, want %s@%s", i, g.ID, g.NodeName, w.ID, w.NodeName)
		}
		if g.Idle != w.Idle {
			return fmt.Errorf("device %s: idle=%v, want %v", g.ID, g.Idle, w.Idle)
		}
		if diff := g.Util - w.Util; diff > eps || diff < -eps {
			return fmt.Errorf("device %s: util %v, want %v", g.ID, g.Util, w.Util)
		}
		if diff := g.Mem - w.Mem; diff > eps || diff < -eps {
			return fmt.Errorf("device %s: mem %v, want %v", g.ID, g.Mem, w.Mem)
		}
		if g.MemCapacity != w.MemCapacity {
			return fmt.Errorf("device %s: memCapacity %v, want %v", g.ID, g.MemCapacity, w.MemCapacity)
		}
		if g.MemBytesUsed != w.MemBytesUsed {
			return fmt.Errorf("device %s: memBytesUsed %d, want %d", g.ID, g.MemBytesUsed, w.MemBytesUsed)
		}
		if g.Excl != w.Excl {
			return fmt.Errorf("device %s: excl %q, want %q", g.ID, g.Excl, w.Excl)
		}
		if len(g.Aff) != len(w.Aff) || len(g.Anti) != len(w.Anti) {
			return fmt.Errorf("device %s: label sets differ", g.ID)
		}
		for k := range w.Aff {
			if !g.Aff[k] {
				return fmt.Errorf("device %s: missing aff %q", g.ID, k)
			}
		}
		for k := range w.Anti {
			if !g.Anti[k] {
				return fmt.Errorf("device %s: missing anti %q", g.ID, k)
			}
		}
	}
	if len(got.FreePhysical) != len(want.FreePhysical) {
		return fmt.Errorf("freePhysical %v, want %v", got.FreePhysical, want.FreePhysical)
	}
	for node, n := range want.FreePhysical {
		if got.FreePhysical[node] != n {
			return fmt.Errorf("freePhysical[%s] = %d, want %d", node, got.FreePhysical[node], n)
		}
	}
	return nil
}

package core

import (
	"fmt"
	"math/rand"
	"testing"

	"kubeshare/internal/kube/api"
	"kubeshare/internal/kube/apiserver"
	"kubeshare/internal/kube/store"
	"kubeshare/internal/sim"
)

// newSnapRig wires an API server with a Snapshot fed from real watch
// queues. Events are enqueued synchronously at mutation time, so the drain
// callback folds them into the snapshot without running the simulation.
func newSnapRig(memFactor float64) (*apiserver.Server, *Snapshot, func()) {
	env := sim.NewEnv()
	srv := apiserver.New(env)
	snap := NewSnapshot(memFactor)
	var queues []*sim.Queue[store.Event]
	for _, kind := range []string{KindSharePod, KindVGPU, "Pod", "Node"} {
		queues = append(queues, srv.Watch(kind, true))
	}
	drain := func() {
		for _, q := range queues {
			for {
				ev, ok := q.TryGet()
				if !ok {
					break
				}
				snap.Apply(ev)
			}
		}
	}
	return srv, snap, drain
}

// requirePoolsEqual compares a snapshot-materialized pool with a freshly
// rebuilt one field by field (both emit devices sorted by ID).
func requirePoolsEqual(t *testing.T, got, want *Pool) {
	t.Helper()
	if err := DiffPools(got, want); err != nil {
		t.Fatal(err)
	}
}

func snapTestSP(name string, i int) *SharePod {
	return &SharePod{
		ObjectMeta: api.ObjectMeta{Name: name},
		Spec: SharePodSpec{
			Pod:        api.PodSpec{Containers: []api.Container{{Name: "c", Image: "i"}}},
			GPURequest: 0.1 + float64(i%5)*0.05,
			GPUMem:     0.1 + float64(i%4)*0.05,
		},
	}
}

// TestSnapshotMatchesRebuildRandomized runs a randomized sequence of
// SharePod / VGPU / Pod / Node mutations and checks after every step that
// the pool materialized from the incrementally maintained snapshot is
// identical to a full BuildPoolWithFactor rebuild.
func TestSnapshotMatchesRebuildRandomized(t *testing.T) {
	for _, memFactor := range []float64{1.0, 1.5} {
		t.Run(fmt.Sprintf("memFactor=%v", memFactor), func(t *testing.T) {
			srv, snap, drain := newSnapRig(memFactor)
			rng := rand.New(rand.NewSource(11))
			affLabels := []string{"", "train-a", "train-b"}
			gpuIDs := []string{"g-00", "g-01", "g-02", "g-03", "g-04", "g-05"}
			nodes := []string{"n-0", "n-1", "n-2"}

			for _, n := range nodes {
				capacity := api.ResourceList{api.ResourceCPU: 32000, api.ResourceGPU: 4}
				apiserver.Nodes(srv).Create(&api.Node{
					ObjectMeta: api.ObjectMeta{Name: n},
					Status:     api.NodeStatus{Capacity: capacity, Allocatable: capacity.Clone(), Ready: true},
				})
			}

			sps := SharePods(srv)
			vgpus := VGPUs(srv)
			pods := apiserver.Pods(srv)
			serial := 0
			for step := 0; step < 1200; step++ {
				switch rng.Intn(10) {
				case 0, 1: // create a pending or pre-placed sharePod
					serial++
					sp := snapTestSP(fmt.Sprintf("sp-%03d", serial), serial)
					if rng.Intn(2) == 0 {
						i := rng.Intn(len(gpuIDs))
						sp.Spec.GPUID = gpuIDs[i]
						sp.Spec.NodeName = nodes[i%len(nodes)]
						sp.Spec.Affinity = affLabels[rng.Intn(len(affLabels))]
						sp.Spec.AntiAffinity = affLabels[rng.Intn(len(affLabels))]
						if rng.Intn(4) == 0 {
							sp.Spec.Exclusion = "solo"
						}
					}
					sps.Create(sp)
				case 2, 3: // place a pending sharePod (spec write)
					for _, sp := range sps.List() {
						if !sp.Placed() && !sp.Terminated() {
							i := rng.Intn(len(gpuIDs))
							sps.Mutate(sp.Name, func(cur *SharePod) error {
								cur.Spec.GPUID = gpuIDs[i]
								cur.Spec.NodeName = nodes[i%len(nodes)]
								cur.Spec.Affinity = affLabels[rng.Intn(len(affLabels))]
								return nil
							})
							break
						}
					}
				case 4: // terminate a placed sharePod (status write)
					if list := sps.List(); len(list) > 0 {
						sp := list[rng.Intn(len(list))]
						sps.MutateStatus(sp.Name, func(cur *SharePod) error {
							cur.Status.Phase = SharePodSucceeded
							return nil
						})
					}
				case 5: // delete a sharePod
					if list := sps.List(); len(list) > 0 {
						sps.Delete(list[rng.Intn(len(list))].Name)
					}
				case 6: // materialize a VGPU object
					i := rng.Intn(len(gpuIDs))
					vgpus.Create(&VGPU{
						ObjectMeta: api.ObjectMeta{Name: gpuIDs[i]},
						Spec:       VGPUSpec{GPUID: gpuIDs[i], NodeName: nodes[i%len(nodes)]},
						Status:     VGPUStatus{Phase: VGPUActive},
					})
				case 7: // delete a VGPU object
					if list := vgpus.List(); len(list) > 0 {
						vgpus.Delete(list[rng.Intn(len(list))].Name)
					}
				case 8: // create a native GPU pod (consumes physical capacity)
					serial++
					pods.Create(&api.Pod{
						ObjectMeta: api.ObjectMeta{Name: fmt.Sprintf("native-%03d", serial)},
						Spec: api.PodSpec{
							NodeName: nodes[rng.Intn(len(nodes))],
							Containers: []api.Container{{
								Name: "c", Image: "i",
								Requests: api.ResourceList{api.ResourceGPU: 1},
							}},
						},
					})
				case 9: // terminate or delete a native pod
					if list := pods.List(); len(list) > 0 {
						pod := list[rng.Intn(len(list))]
						if rng.Intn(2) == 0 {
							pods.MutateStatus(pod.Name, func(cur *api.Pod) error {
								cur.Status.Phase = api.PodSucceeded
								return nil
							})
						} else {
							pods.Delete(pod.Name)
						}
					}
				}
				drain()
				got := snap.NewPool(nil)
				want := BuildPoolWithFactor(srv, nil, memFactor)
				requirePoolsEqual(t, got, want)
			}
		})
	}
}

// TestSnapshotApplyIdempotent pins the write-through contract: the
// scheduler applies its own placement immediately and later sees the same
// event from the watch stream; the second application must be a no-op.
func TestSnapshotApplyIdempotent(t *testing.T) {
	srv, snap, drain := newSnapRig(1)
	capacity := api.ResourceList{api.ResourceGPU: 4}
	apiserver.Nodes(srv).Create(&api.Node{
		ObjectMeta: api.ObjectMeta{Name: "n-0"},
		Status:     api.NodeStatus{Capacity: capacity, Allocatable: capacity.Clone(), Ready: true},
	})
	sp := snapTestSP("sp-1", 1)
	sp.Spec.GPUID = "g-0"
	sp.Spec.NodeName = "n-0"
	stored, err := SharePods(srv).Create(sp)
	if err != nil {
		t.Fatal(err)
	}
	drain()
	// Write-through: apply the already-seen object again, twice.
	snap.Apply(store.Event{Type: store.Modified, Object: stored})
	snap.Apply(store.Event{Type: store.Modified, Object: stored})
	got := snap.NewPool(nil)
	want := BuildPool(srv, nil)
	requirePoolsEqual(t, got, want)
	if got.Devices[0].Util >= 1 {
		t.Fatalf("tenant not accounted: util %v", got.Devices[0].Util)
	}
}

// The end-to-end scheduler capacity invariant lives in
// capacity_invariant_test.go (package core_test): it drives the schedfw
// driver, which package-internal tests cannot import without a cycle.

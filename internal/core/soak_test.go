package core_test

import (
	"fmt"
	. "kubeshare/internal/core"
	"testing"
	"time"

	"kubeshare/internal/kube/api"
	"kubeshare/internal/kube/runtime"
	"kubeshare/internal/sim"
	"kubeshare/internal/simrand"
)

// TestSoakMixedEverything drives every feature at once on one cluster:
// native GPU pods, plain sharePods, affinity groups, anti-affinity and
// exclusion labels, a SharePodSet scaling up and down, and random
// mid-flight deletions — then checks global invariants: nothing leaks, no
// device is over-committed, and the cluster quiesces.
func TestSoakMixedEverything(t *testing.T) {
	s := newStack(t, 4, Config{})
	rng := simrand.New(99)
	s.c.Images.Register("native-train", func(ctx *runtime.Ctx) error {
		if ctx.CUDA == nil {
			return fmt.Errorf("no GPU")
		}
		for i := 0; i < 100; i++ {
			if err := ctx.CUDA.LaunchKernel(ctx.Proc, 10*time.Millisecond); err != nil {
				return err
			}
		}
		return nil
	})

	s.env.Go("chaos", func(p *sim.Proc) {
		var created []string
		for round := 0; round < 8; round++ {
			// Fractional sharePods with a random constraint flavour.
			for i := 0; i < 4; i++ {
				name := fmt.Sprintf("sp-%d-%d", round, i)
				sp := sharePod(name, 0.2+0.1*float64(rng.Intn(3)), 1.0, 0.15, float64(1+rng.Intn(4)))
				switch rng.Intn(4) {
				case 0:
					sp.Spec.Affinity = fmt.Sprintf("grp%d", rng.Intn(2))
				case 1:
					sp.Spec.AntiAffinity = "spread"
				case 2:
					sp.Spec.Exclusion = fmt.Sprintf("tenant%d", rng.Intn(2))
				}
				s.create(t, sp)
				created = append(created, name)
			}
			// A native whole-GPU pod competing for devices.
			if round%2 == 0 {
				pod := &api.Pod{
					ObjectMeta: api.ObjectMeta{Name: fmt.Sprintf("native-%d", round)},
					Spec: api.PodSpec{Containers: []api.Container{{
						Name: "c", Image: "native-train",
						Requests: api.ResourceList{api.ResourceGPU: 1},
					}}},
				}
				if _, err := s.c.Pods().Create(pod); err != nil {
					t.Errorf("native create: %v", err)
				}
			}
			// Random mid-flight deletion.
			if len(created) > 0 && rng.Bernoulli(0.5) {
				victim := created[rng.Intn(len(created))]
				_ = SharePods(s.c.API).Delete(victim) // may already be gone
			}
			p.Sleep(time.Duration(1+rng.Intn(3)) * time.Second)
		}
	})
	s.env.Go("set", func(p *sim.Proc) {
		SharePodSets(s.c.API).Create(&SharePodSet{
			ObjectMeta: api.ObjectMeta{Name: "svc"},
			Replicas:   4,
			Template:   setTemplate(0.2),
		})
		p.Sleep(15 * time.Second)
		SharePodSets(s.c.API).Mutate("svc", func(cur *SharePodSet) error {
			cur.Replicas = 1
			return nil
		})
		p.Sleep(10 * time.Second)
		SharePodSets(s.c.API).Delete("svc")
	})

	// Invariant monitor: no vGPU's live gpu_request commitments ever
	// exceed 1.0, and exclusion labels never mix on a device.
	violations := 0
	s.env.Go("invariants", func(p *sim.Proc) {
		for tick := 0; tick < 120; tick++ {
			p.Sleep(time.Second)
			commit := map[string]float64{}
			excl := map[string]map[string]bool{}
			for _, sp := range SharePods(s.c.API).List() {
				if !sp.Placed() || sp.Terminated() {
					continue
				}
				commit[sp.Spec.GPUID] += sp.Spec.GPURequest
				if excl[sp.Spec.GPUID] == nil {
					excl[sp.Spec.GPUID] = map[string]bool{}
				}
				excl[sp.Spec.GPUID][sp.Spec.Exclusion] = true
			}
			for id, c := range commit {
				if c > 1.000001 {
					violations++
					t.Errorf("t=%v: device %s committed %.3f", s.env.Now(), id, c)
				}
			}
			for id, labels := range excl {
				if len(labels) > 1 {
					violations++
					t.Errorf("t=%v: device %s mixes exclusion labels %v", s.env.Now(), id, labels)
				}
			}
			if violations > 3 {
				return
			}
		}
	})

	s.env.Run()

	// Quiescence: everything terminal, all resources returned.
	for _, sp := range SharePods(s.c.API).List() {
		if !sp.Terminated() {
			t.Fatalf("sharePod %s still %s", sp.Name, sp.Status.Phase)
		}
	}
	if n := len(VGPUs(s.c.API).List()); n != 0 {
		t.Fatalf("vGPUs remain: %d", n)
	}
	for _, node := range s.c.Nodes {
		if got := node.Kubelet.DeviceManager().Capacity()[api.ResourceGPU]; got != 4 {
			t.Fatalf("node %s plugin capacity %d", node.Name, got)
		}
		for _, dev := range node.GPUs {
			if dev.ActiveContexts() != 0 || dev.MemoryUsed() != 0 {
				t.Fatalf("device %s leaked (ctx=%d mem=%d)",
					dev.UUID(), dev.ActiveContexts(), dev.MemoryUsed())
			}
		}
	}
	if s.env.Now() > 10*time.Minute {
		t.Fatalf("soak did not quiesce: %v", s.env.Now())
	}
}

package core

import "kubeshare/internal/obs"

// Scheduling metric names. Both the legacy in-package scheduler and the
// schedfw driver register these exact families, so dashboards, the SLO alert
// rules and ReadSchedStats see one vocabulary regardless of which driver is
// installed.
const (
	MetricSchedDecisions  = "kubeshare_sched_decisions_total"
	MetricSchedRequeues   = "kubeshare_sched_requeues_total"
	MetricSchedNoCapacity = "kubeshare_sched_nocapacity_cycles_total"
	MetricSchedPending    = "kubeshare_sched_pending_sharepods"
	MetricSchedLatency    = "kubeshare_sched_latency_seconds"

	MetricDevMgrRecoveries    = "kubeshare_devmgr_vgpu_recoveries_total"
	MetricDevMgrRecoveryFails = "kubeshare_devmgr_vgpu_recovery_fails_total"
)

// SchedStats is a point-in-time snapshot of the control plane's scheduling
// and recovery counters, read from the obs registry. It replaces the
// Decisions() / Requeues() / Recoveries() accessor trio: one read, one
// struct, meaningful with any scheduler driver (legacy, schedfw, extender),
// and all zeros when the cluster runs with observability off — the registry
// is the source of truth, not per-object fields.
type SchedStats struct {
	// Decisions counts Algorithm 1 invocations (one per candidate tried).
	Decisions int64
	// Requeues counts bound-pod-loss recoveries (placement cleared, sharePod
	// back to Pending).
	Requeues int64
	// NoCapacityCycles counts scheduling cycles that ended with every
	// pending sharePod waiting on capacity.
	NoCapacityCycles int64
	// Pending is the scheduler's current queue depth.
	Pending int64
	// Recoveries / RecoveryFails are DevMgr's vGPU recovery counters.
	Recoveries    int64
	RecoveryFails int64
}

// ReadSchedStats reads the current scheduling counters off a telemetry
// runtime. Reading is safe concurrently with the control loops (the
// counters are atomics); an obs-off runtime yields the zero struct.
func ReadSchedStats(rt *obs.Runtime) SchedStats {
	return SchedStats{
		Decisions:        rt.Counter(MetricSchedDecisions).Value(),
		Requeues:         rt.Counter(MetricSchedRequeues).Value(),
		NoCapacityCycles: rt.Counter(MetricSchedNoCapacity).Value(),
		Pending:          rt.Gauge(MetricSchedPending).Value(),
		Recoveries:       rt.Counter(MetricDevMgrRecoveries).Value(),
		RecoveryFails:    rt.Counter(MetricDevMgrRecoveryFails).Value(),
	}
}

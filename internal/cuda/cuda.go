// Package cuda defines the driver API surface that applications in the
// simulated cluster program against, mirroring the CUDA driver calls the
// paper's device library intercepts (cuMemAlloc, cuLaunchKernel, …).
//
// Applications receive an API handle from their container runtime; whether
// that handle is the raw Driver or KubeShare's interposing frontend is
// decided at container setup — the moral equivalent of LD_PRELOAD deciding
// which libcuda the process loads.
package cuda

import (
	"errors"
	"fmt"
	"time"

	"kubeshare/internal/gpusim"
	"kubeshare/internal/sim"
)

// Ptr is an opaque device memory handle.
type Ptr uint64

// ErrClosed is returned by calls on a closed API handle.
var ErrClosed = errors.New("cuda: API handle closed")

// ErrOutOfMemory mirrors CUDA_ERROR_OUT_OF_MEMORY. It wraps the device-level
// condition so errors.Is works across layers.
var ErrOutOfMemory = gpusim.ErrOutOfMemory

// ErrDeviceFault mirrors CUDA_ERROR_ECC_UNCORRECTABLE-class Xid failures: the
// device faulted under this context, and every further operation fails until
// the handle is torn down and reopened on a healthy device.
var ErrDeviceFault = gpusim.ErrDeviceFault

// DeviceInfo describes the device visible through an API handle.
type DeviceInfo struct {
	UUID        string
	MemoryBytes int64 // the capacity visible to this handle (a share, under the device library)
}

// API is the set of driver operations applications use. Blocking operations
// take the calling proc, as everywhere in the simulation.
type API interface {
	// Device describes the visible device.
	Device() DeviceInfo
	// MemAlloc reserves n bytes of device memory (cuMemAlloc).
	MemAlloc(p *sim.Proc, n int64) (Ptr, error)
	// MemFree releases a prior allocation (cuMemFree).
	MemFree(p *sim.Proc, ptr Ptr) error
	// MemcpyHtoD transfers n bytes host→device, blocking for the PCIe time.
	MemcpyHtoD(p *sim.Proc, n int64) error
	// MemcpyDtoH transfers n bytes device→host.
	MemcpyDtoH(p *sim.Proc, n int64) error
	// LaunchKernel executes a kernel requiring work of exclusive device time
	// and blocks until it completes (cuLaunchKernel + sync, the pattern the
	// device library gates on token possession).
	LaunchKernel(p *sim.Proc, work time.Duration) error
	// LaunchKernelAsync submits a kernel without waiting (stream
	// semantics); the returned event fires on completion. Outstanding
	// kernels are awaited by Synchronize.
	LaunchKernelAsync(p *sim.Proc, work time.Duration) (*sim.Event, error)
	// Synchronize blocks until every asynchronously launched kernel has
	// completed (cuCtxSynchronize).
	Synchronize(p *sim.Proc) error
	// MemUsed returns the memory currently allocated through this handle.
	MemUsed() int64
	// Close tears down the handle and frees its allocations.
	Close(p *sim.Proc) error
}

// Driver is the raw (un-interposed) implementation of API over a device
// context. It is what a native-Kubernetes pod gets.
type Driver struct {
	ctx     *gpusim.Context
	allocs  map[Ptr]int64
	next    Ptr
	pending []*sim.Event // outstanding async kernels
	closed  bool
}

var _ API = (*Driver)(nil)

// Open creates a context for owner on dev and returns the raw driver handle.
func Open(dev *gpusim.Device, owner string) *Driver {
	return &Driver{ctx: dev.OpenContext(owner), allocs: make(map[Ptr]int64), next: 0x1000}
}

// Context exposes the underlying context for accounting (device time).
func (d *Driver) Context() *gpusim.Context { return d.ctx }

// Device implements API.
func (d *Driver) Device() DeviceInfo {
	return DeviceInfo{UUID: d.ctx.Device().UUID(), MemoryBytes: d.ctx.Device().MemoryBytes()}
}

// MemAlloc implements API.
func (d *Driver) MemAlloc(p *sim.Proc, n int64) (Ptr, error) {
	if d.closed {
		return 0, ErrClosed
	}
	if n <= 0 {
		return 0, fmt.Errorf("cuda: MemAlloc(%d): non-positive size", n)
	}
	if err := d.ctx.Alloc(n); err != nil {
		return 0, err
	}
	ptr := d.next
	d.next += Ptr(n)
	d.allocs[ptr] = n
	return ptr, nil
}

// MemFree implements API.
func (d *Driver) MemFree(p *sim.Proc, ptr Ptr) error {
	if d.closed {
		return ErrClosed
	}
	n, ok := d.allocs[ptr]
	if !ok {
		return fmt.Errorf("cuda: MemFree(%#x): unknown pointer", uint64(ptr))
	}
	delete(d.allocs, ptr)
	return d.ctx.Free(n)
}

// MemcpyHtoD implements API.
func (d *Driver) MemcpyHtoD(p *sim.Proc, n int64) error {
	if d.closed {
		return ErrClosed
	}
	p.Sleep(d.ctx.Device().CopyDuration(n))
	return nil
}

// MemcpyDtoH implements API.
func (d *Driver) MemcpyDtoH(p *sim.Proc, n int64) error {
	if d.closed {
		return ErrClosed
	}
	p.Sleep(d.ctx.Device().CopyDuration(n))
	return nil
}

// LaunchKernel implements API.
func (d *Driver) LaunchKernel(p *sim.Proc, work time.Duration) error {
	if d.closed {
		return ErrClosed
	}
	return d.ctx.Launch(p, work)
}

// LaunchKernelAsync implements API.
func (d *Driver) LaunchKernelAsync(p *sim.Proc, work time.Duration) (*sim.Event, error) {
	if d.closed {
		return nil, ErrClosed
	}
	ev := d.ctx.LaunchAsync(work)
	d.pending = append(d.pending, ev)
	return ev, nil
}

// Synchronize implements API.
func (d *Driver) Synchronize(p *sim.Proc) error {
	if d.closed {
		return ErrClosed
	}
	var firstErr error
	for _, ev := range d.pending {
		if err, _ := p.Wait(ev).(error); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	d.pending = nil
	return firstErr
}

// MemUsed implements API.
func (d *Driver) MemUsed() int64 { return d.ctx.MemUsed() }

// Close implements API.
func (d *Driver) Close(p *sim.Proc) error {
	if d.closed {
		return nil
	}
	d.closed = true
	d.ctx.Close()
	return nil
}

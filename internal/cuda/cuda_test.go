package cuda

import (
	"errors"
	"testing"
	"time"

	"kubeshare/internal/gpusim"
	"kubeshare/internal/sim"
)

func newDriver(env *sim.Env, mem int64) *Driver {
	dev := gpusim.NewDevice(env, gpusim.Config{NodeName: "n", MemoryBytes: mem})
	return Open(dev, "c1")
}

func TestMemAllocFreeRoundTrip(t *testing.T) {
	env := sim.NewEnv()
	d := newDriver(env, 1000)
	env.Go("app", func(p *sim.Proc) {
		ptr, err := d.MemAlloc(p, 400)
		if err != nil {
			t.Errorf("alloc: %v", err)
			return
		}
		if d.MemUsed() != 400 {
			t.Errorf("MemUsed = %d", d.MemUsed())
		}
		if err := d.MemFree(p, ptr); err != nil {
			t.Errorf("free: %v", err)
		}
		if d.MemUsed() != 0 {
			t.Errorf("MemUsed after free = %d", d.MemUsed())
		}
	})
	env.Run()
}

func TestMemAllocOOM(t *testing.T) {
	env := sim.NewEnv()
	d := newDriver(env, 100)
	env.Go("app", func(p *sim.Proc) {
		if _, err := d.MemAlloc(p, 101); !errors.Is(err, ErrOutOfMemory) {
			t.Errorf("err = %v, want OOM", err)
		}
	})
	env.Run()
}

func TestMemAllocInvalidSize(t *testing.T) {
	env := sim.NewEnv()
	d := newDriver(env, 100)
	env.Go("app", func(p *sim.Proc) {
		if _, err := d.MemAlloc(p, 0); err == nil {
			t.Error("zero-size alloc must error")
		}
		if _, err := d.MemAlloc(p, -4); err == nil {
			t.Error("negative alloc must error")
		}
	})
	env.Run()
}

func TestMemFreeUnknownPtr(t *testing.T) {
	env := sim.NewEnv()
	d := newDriver(env, 100)
	env.Go("app", func(p *sim.Proc) {
		if err := d.MemFree(p, Ptr(0xdead)); err == nil {
			t.Error("freeing unknown pointer must error")
		}
	})
	env.Run()
}

func TestDistinctPointers(t *testing.T) {
	env := sim.NewEnv()
	d := newDriver(env, 1000)
	env.Go("app", func(p *sim.Proc) {
		a, _ := d.MemAlloc(p, 100)
		b, _ := d.MemAlloc(p, 100)
		if a == b {
			t.Error("allocations share a pointer")
		}
	})
	env.Run()
}

func TestLaunchKernelBlocksForWork(t *testing.T) {
	env := sim.NewEnv()
	d := newDriver(env, 1000)
	env.Go("app", func(p *sim.Proc) {
		if err := d.LaunchKernel(p, 42*time.Millisecond); err != nil {
			t.Errorf("launch: %v", err)
		}
		if env.Now() != 42*time.Millisecond {
			t.Errorf("returned at %v", env.Now())
		}
	})
	env.Run()
}

func TestMemcpyTakesPCIeTime(t *testing.T) {
	env := sim.NewEnv()
	dev := gpusim.NewDevice(env, gpusim.Config{NodeName: "n", CopyBandwidth: 1000})
	d := Open(dev, "c1")
	env.Go("app", func(p *sim.Proc) {
		if err := d.MemcpyHtoD(p, 500); err != nil {
			t.Errorf("copy: %v", err)
		}
		if env.Now() != 500*time.Millisecond {
			t.Errorf("copy took %v, want 500ms", env.Now())
		}
	})
	env.Run()
}

func TestCloseFreesMemoryAndRejectsCalls(t *testing.T) {
	env := sim.NewEnv()
	dev := gpusim.NewDevice(env, gpusim.Config{NodeName: "n", MemoryBytes: 1000})
	d := Open(dev, "c1")
	env.Go("app", func(p *sim.Proc) {
		if _, err := d.MemAlloc(p, 500); err != nil {
			t.Errorf("alloc: %v", err)
		}
		if err := d.Close(p); err != nil {
			t.Errorf("close: %v", err)
		}
		if dev.MemoryUsed() != 0 {
			t.Errorf("device memory leaked: %d", dev.MemoryUsed())
		}
		if _, err := d.MemAlloc(p, 1); !errors.Is(err, ErrClosed) {
			t.Errorf("alloc after close: %v", err)
		}
		if err := d.LaunchKernel(p, time.Millisecond); !errors.Is(err, ErrClosed) {
			t.Errorf("launch after close: %v", err)
		}
		if err := d.Close(p); err != nil {
			t.Errorf("double close: %v", err)
		}
	})
	env.Run()
}

func TestDeviceInfo(t *testing.T) {
	env := sim.NewEnv()
	dev := gpusim.NewDevice(env, gpusim.Config{NodeName: "n", MemoryBytes: 4096})
	d := Open(dev, "c1")
	info := d.Device()
	if info.UUID != dev.UUID() || info.MemoryBytes != 4096 {
		t.Fatalf("info = %+v", info)
	}
}

func TestAsyncLaunchAndSynchronize(t *testing.T) {
	env := sim.NewEnv()
	d := newDriver(env, 1000)
	env.Go("app", func(p *sim.Proc) {
		// Two async 50ms kernels from one context share the device
		// (processor sharing): both finish at 100ms.
		if _, err := d.LaunchKernelAsync(p, 50*time.Millisecond); err != nil {
			t.Errorf("async: %v", err)
		}
		if _, err := d.LaunchKernelAsync(p, 50*time.Millisecond); err != nil {
			t.Errorf("async: %v", err)
		}
		if env.Now() != 0 {
			t.Errorf("async launch blocked until %v", env.Now())
		}
		if err := d.Synchronize(p); err != nil {
			t.Errorf("sync: %v", err)
		}
		if env.Now() != 100*time.Millisecond {
			t.Errorf("synchronized at %v, want 100ms", env.Now())
		}
		// Synchronize with nothing outstanding is a no-op.
		if err := d.Synchronize(p); err != nil {
			t.Errorf("idle sync: %v", err)
		}
		if env.Now() != 100*time.Millisecond {
			t.Errorf("idle sync advanced time to %v", env.Now())
		}
	})
	env.Run()
}

func TestAsyncAfterCloseErrors(t *testing.T) {
	env := sim.NewEnv()
	d := newDriver(env, 1000)
	env.Go("app", func(p *sim.Proc) {
		d.Close(p)
		if _, err := d.LaunchKernelAsync(p, time.Millisecond); !errors.Is(err, ErrClosed) {
			t.Errorf("async after close: %v", err)
		}
		if err := d.Synchronize(p); !errors.Is(err, ErrClosed) {
			t.Errorf("sync after close: %v", err)
		}
	})
	env.Run()
}

// Package devlib implements the paper's vGPU device library (§4.5): the
// per-node backend daemon that schedules a per-device token among
// containers, and the per-container frontend that intercepts CUDA calls and
// blocks kernel launches until a valid token is held.
//
// The backend guarantees each container's gpu_request (minimum usage share),
// caps it at gpu_limit (maximum share), and elastically distributes residual
// capacity — usage being measured as token-hold time within a sliding
// window. The frontend additionally enforces the container's gpu_mem share
// by failing allocations beyond it with an out-of-memory error.
package devlib

import (
	"errors"
	"fmt"
	"time"

	"kubeshare/internal/devlib/sharing"
	"kubeshare/internal/metrics"
	"kubeshare/internal/obs"
	"kubeshare/internal/sim"
)

// ErrManagerDown is returned by token operations while the device's token
// manager is suspended — the vGPU pod hosting it died and its replacement
// has not come up yet. Frontends treat it as transient and reconnect with
// bounded backoff.
var ErrManagerDown = errors.New("devlib: token manager down")

// Config parameterizes the device library. Zero values take defaults.
type Config struct {
	// Quota is the token validity period: how long a container may hold the
	// GPU before re-acquiring (paper default 100 ms; ablated in Figure 7).
	Quota time.Duration
	// Window is the sliding window over which usage rates are measured.
	Window time.Duration
	// Handoff is the cost of a token exchange (queue pop, IPC, pipeline
	// warm-up). It is what makes small quotas expensive.
	Handoff time.Duration
	// Grace is the frontend's inactivity grace: after a kernel completes,
	// the token is voluntarily released if no further kernel is launched
	// within Grace, so bursty (inference) workloads do not hog the device
	// between requests.
	Grace time.Duration
	// Residual selects how step 3 of the token policy distributes spare
	// capacity among clients that already met their gpu_request (ablation
	// knob; the paper uses lowest-usage-first).
	Residual ResidualPolicy
	// MemOvercommit enables GPUswap-style memory over-commitment: container
	// memory becomes virtual, and working sets are swapped host↔device at
	// token handoff when they do not all fit (§6 of the paper).
	MemOvercommit bool
	// SwapBandwidth is the host↔device transfer rate used for swapping
	// (defaults to PCIe gen3 x16).
	SwapBandwidth int64
	// Obs is the telemetry runtime token managers record against (token
	// grants, wait-latency histogram, throttle events). Nil disables
	// instrumentation.
	Obs *obs.Runtime
	// Mode selects the node's default sharing strategy ("" = token). Pods
	// may override it per sharePod via spec.sharing_mode, but a device runs
	// exactly one strategy: the first client's mode wins and conflicting
	// modes fail at library-hook time.
	Mode sharing.Mode
	// Replicas is the number of logical GPUs each physical device
	// advertises under the replica strategy (default DefaultReplicas;
	// ignored by the other modes).
	Replicas int
}

// Defaults (see Config).
const (
	DefaultQuota  = 100 * time.Millisecond
	DefaultWindow = 10 * time.Second
	// DefaultHandoff is sub-millisecond: the real backend hands the token
	// over a local socket. Fine-grained kernel interleaving between bursty
	// tenants (Fig 12's 1.5× B+B slowdown) depends on this being cheap.
	DefaultHandoff = 500 * time.Microsecond
	DefaultGrace   = 2 * time.Millisecond
	// DefaultReplicas is the replica strategy's logical-GPU count per
	// physical device (the NVIDIA time-slicing plugin's common default).
	DefaultReplicas = 2
)

func (c Config) withDefaults() Config {
	if c.Quota <= 0 {
		c.Quota = DefaultQuota
	}
	if c.Window <= 0 {
		c.Window = DefaultWindow
	}
	if c.Handoff < 0 {
		c.Handoff = 0
	} else if c.Handoff == 0 {
		c.Handoff = DefaultHandoff
	}
	if c.Grace <= 0 {
		c.Grace = DefaultGrace
	}
	if c.SwapBandwidth <= 0 {
		c.SwapBandwidth = 12 << 30
	}
	if c.Mode == "" {
		c.Mode = sharing.ModeToken
	}
	if c.Replicas <= 0 {
		c.Replicas = DefaultReplicas
	}
	return c
}

// ResidualPolicy selects step 3 of the token scheduling policy.
type ResidualPolicy int

// Residual distribution policies.
const (
	// LowestUsageFirst is the paper's choice: the spare capacity goes to
	// the client with the lowest sliding-window usage, equalizing shares.
	LowestUsageFirst ResidualPolicy = iota
	// FIFOResidual grants the longest-waiting request instead — simpler,
	// but lets a fast re-requester starve slower tenants of the residual.
	FIFOResidual
)

// Token is a grant to use the device until ExpiresAt.
type Token struct {
	ExpiresAt time.Duration
	seq       uint64
}

// Valid reports whether the token is still usable at time now.
func (t Token) Valid(now time.Duration) bool { return t.seq != 0 && now < t.ExpiresAt }

// Backend is the per-node daemon: one sharing strategy per device UUID
// (one token manager per device in the default mode, §4.5).
type Backend struct {
	env        *sim.Env
	cfg        Config
	managers   map[string]*TokenManager
	strategies map[string]sharing.Strategy
}

// NewBackend creates a node backend.
func NewBackend(env *sim.Env, cfg Config) *Backend {
	return &Backend{
		env:        env,
		cfg:        cfg.withDefaults(),
		managers:   make(map[string]*TokenManager),
		strategies: make(map[string]sharing.Strategy),
	}
}

// Manager returns the token manager for a device UUID, creating it on first
// use (devices each have an independent token, §4.5).
func (b *Backend) Manager(uuid string) *TokenManager {
	m, ok := b.managers[uuid]
	if !ok {
		m = NewTokenManager(b.env, uuid, b.cfg)
		b.managers[uuid] = m
	}
	return m
}

// Strategy returns the device's sharing strategy under the backend's
// default mode, creating it on first use. In token mode it wraps the same
// TokenManager that Manager(uuid) returns, so both views stay consistent.
func (b *Backend) Strategy(uuid string) sharing.Strategy {
	s, _ := b.StrategyFor(uuid, b.cfg.Mode)
	return s
}

// StrategyOf returns the device's already-instantiated strategy, or nil
// when no client has reached the device yet.
func (b *Backend) StrategyOf(uuid string) sharing.Strategy { return b.strategies[uuid] }

// StrategyFor returns the device's strategy, creating it with the given
// mode ("" = backend default) on first use. A device runs exactly one
// strategy: once created, requesting a different mode is an error — the
// scheduler should keep tenants of different modes off one device (the
// exclusion-label mechanism segregates them).
func (b *Backend) StrategyFor(uuid string, mode sharing.Mode) (sharing.Strategy, error) {
	if mode == "" {
		mode = b.cfg.Mode
	}
	if s, ok := b.strategies[uuid]; ok {
		if s.Mode() != mode {
			return nil, fmt.Errorf("devlib: device %s already shared in %q mode, cannot serve %q", uuid, s.Mode(), mode)
		}
		return s, nil
	}
	var s sharing.Strategy
	switch mode {
	case sharing.ModeMPS:
		s = sharing.NewMPS(b.env, uuid, b.cfg.Obs)
	case sharing.ModeReplica:
		s = sharing.NewReplica(b.env, uuid, b.cfg.Replicas, b.cfg.Quota, b.cfg.Obs)
	case sharing.ModeToken:
		s = TokenStrategy{b.Manager(uuid)}
	default:
		return nil, fmt.Errorf("devlib: unknown sharing mode %q", mode)
	}
	b.strategies[uuid] = s
	return s, nil
}

// Config returns the backend's (defaulted) configuration.
func (b *Backend) Config() Config { return b.cfg }

// Managers returns a snapshot of the instantiated token managers by device
// UUID, for fault injection and leak-checking invariants.
func (b *Backend) Managers() map[string]*TokenManager {
	out := make(map[string]*TokenManager, len(b.managers))
	for uuid, m := range b.managers {
		out[uuid] = m
	}
	return out
}

// client is the backend's view of one container on the device.
type client struct {
	id       string
	tenant   string  // owning sharePod name; defaults to id until SetTenant
	request  float64 // guaranteed minimum usage share (gpu_request)
	limit    float64 // maximum usage share (gpu_limit)
	window   *metrics.UsageWindow
	queued   *sim.Event // pending acquire, nil when none
	acquire  *sim.Event // cached acquire event, Reset and reused per Acquire
	enqueued time.Duration
	grants   int64        // token grants to this client, for per-tenant stats
	hold     *obs.Counter // cached kubeshare_devlib_token_hold_ns_total child
}

// TokenManager schedules one device's token among its registered clients.
type TokenManager struct {
	env     *sim.Env
	uuid    string
	cfg     Config
	clients map[string]*client
	queue   []*client // FIFO of clients with pending acquires
	holder  *client
	grant   time.Duration // when the current holder received the token
	tokSeq  uint64
	expiry  sim.Timer
	retry   sim.Timer
	// handoffs counts token grants, for overhead accounting in tests.
	handoffs int64
	// swap is the optional memory over-commitment broker (see swap.go).
	swap *swapState
	// retryFn/expireFn are the timer callbacks, bound once; scheduling a
	// method value directly would allocate a closure per (re)arm.
	retryFn  func()
	expireFn func()
	// down marks the manager suspended (its vGPU pod died); see Suspend.
	down bool

	// Telemetry handles (no-ops when Config.Obs is nil). grants/throttles/
	// waitHist are this device's children of the gpu_uuid-labeled families;
	// holdVec is kept as the family because its second label (tenant) varies
	// per client.
	recorder  *obs.Recorder
	grants    *obs.Counter
	admits    *obs.Counter // kubeshare_sharing_admits_total{strategy="token"} child
	throttles *obs.Counter
	waitHist  *obs.Histogram
	holdVec   *obs.CounterVec
}

// NewTokenManager creates a manager for one device.
func NewTokenManager(env *sim.Env, uuid string, cfg Config) *TokenManager {
	m := &TokenManager{
		env:       env,
		uuid:      uuid,
		cfg:       cfg.withDefaults(),
		clients:   make(map[string]*client),
		recorder:  cfg.Obs.EventSource("devlib"),
		grants:    cfg.Obs.CounterVec("kubeshare_devlib_token_grants_total", "gpu_uuid").With(uuid),
		admits:    cfg.Obs.CounterVec("kubeshare_sharing_admits_total", "gpu_uuid", "strategy").With(uuid, string(sharing.ModeToken)),
		throttles: cfg.Obs.CounterVec("kubeshare_devlib_throttle_retries_total", "gpu_uuid").With(uuid),
		waitHist:  cfg.Obs.HistogramVec("kubeshare_devlib_token_wait_seconds", "gpu_uuid").With(uuid),
		holdVec:   cfg.Obs.CounterVec("kubeshare_devlib_token_hold_ns_total", "gpu_uuid", "tenant"),
	}
	m.retryFn = m.trySchedule
	m.expireFn = m.reclaim
	return m
}

// Register adds a container with its resource shares. request and limit are
// fractions in (0,1]; limit is clamped to at least request.
func (m *TokenManager) Register(id string, request, limit float64) error {
	if m.down {
		return ErrManagerDown
	}
	if _, ok := m.clients[id]; ok {
		return fmt.Errorf("devlib: client %q already registered on %s", id, m.uuid)
	}
	if request < 0 || request > 1 {
		return fmt.Errorf("devlib: client %q request %v out of range", id, request)
	}
	if limit <= 0 || limit > 1 {
		return fmt.Errorf("devlib: client %q limit %v out of range", id, limit)
	}
	if limit < request {
		limit = request
	}
	m.clients[id] = &client{
		id:      id,
		tenant:  id,
		request: request,
		limit:   limit,
		window:  metrics.NewUsageWindow(m.cfg.Window),
	}
	return nil
}

// SetTenant attributes id's granted-token time to tenant (the owning
// sharePod) in the kubeshare_devlib_token_hold_ns_total family. Frontends
// call it right after Register — including after a reconnect re-register —
// so the attribution survives manager suspend/resume. Unknown ids and empty
// tenants are ignored.
func (m *TokenManager) SetTenant(id, tenant string) {
	c, ok := m.clients[id]
	if !ok || tenant == "" || c.tenant == tenant {
		return
	}
	c.tenant = tenant
	c.hold = nil // re-fetched lazily under the new tenant label
}

// Unregister removes a container: pending acquires are abandoned and a held
// token is reclaimed immediately. Safe to call for unknown ids.
func (m *TokenManager) Unregister(id string) {
	c, ok := m.clients[id]
	if !ok {
		return
	}
	delete(m.clients, id)
	m.DropResidency(id)
	for i, qc := range m.queue {
		if qc == c {
			m.queue = append(m.queue[:i], m.queue[i+1:]...)
			break
		}
	}
	if m.holder == c {
		m.reclaim()
	}
}

// Suspend models the death of the vGPU pod hosting this manager: every
// queued acquire fails with ErrManagerDown, the held token is invalidated,
// timers stop, and registrations are dropped (a restarted daemon has no
// memory of its clients — surviving frontends re-register on reconnect).
// Usage windows die with the registrations; the paper's daemon keeps them
// in process memory, so a restart forgets usage history too.
func (m *TokenManager) Suspend() {
	if m.down {
		return
	}
	m.down = true
	m.expiry.Stop()
	m.retry.Stop()
	m.holder = nil
	m.tokSeq++ // invalidate Release of any token granted before the crash
	for _, c := range m.queue {
		ev := c.queued
		c.queued = nil
		ev.Trigger(ErrManagerDown)
	}
	m.queue = nil
	m.clients = make(map[string]*client)
}

// Resume brings a suspended manager back (the replacement vGPU pod is
// serving). Clients must Register again before acquiring.
func (m *TokenManager) Resume() { m.down = false }

// Down reports whether the manager is suspended.
func (m *TokenManager) Down() bool { return m.down }

// Waiting returns the number of clients with a pending acquire — the
// frontend uses it to release the token work-conservingly the moment a
// kernel completes while someone is queued.
func (m *TokenManager) Waiting() int { return len(m.queue) }

// Registered reports whether id is a known client.
func (m *TokenManager) Registered(id string) bool {
	_, ok := m.clients[id]
	return ok
}

// Clients returns the number of registered clients.
func (m *TokenManager) Clients() int { return len(m.clients) }

// Handoffs returns the number of token grants so far.
func (m *TokenManager) Handoffs() int64 { return m.handoffs }

// Stats is a point-in-time snapshot of a token manager (an alias of the
// sharing layer's strategy snapshot, so the token manager's stats are the
// default strategy's stats, field for field).
type Stats = sharing.Stats

// Stats returns a snapshot of the manager's state.
func (m *TokenManager) Stats() Stats {
	s := Stats{
		QueueDepth: len(m.queue),
		Clients:    len(m.clients),
		Handoffs:   m.handoffs,
	}
	if m.holder != nil {
		s.Holder = m.holder.id
	}
	if m.swap != nil {
		s.SwappedBytes = m.swap.swapped
	}
	return s
}

// UsageRate returns id's sliding-window usage share at the current instant,
// counting an in-progress hold up to now.
func (m *TokenManager) UsageRate(id string) float64 {
	c, ok := m.clients[id]
	if !ok {
		return 0
	}
	now := m.env.Now()
	rate := c.window.Rate(now)
	if m.holder == c {
		held := now - m.grant
		if held > 0 {
			rate += float64(held) / float64(m.cfg.Window)
		}
	}
	return rate
}

// Acquire blocks p until id is granted the token and returns it. A client
// holding a still-valid token gets it back immediately.
func (m *TokenManager) Acquire(p *sim.Proc, id string) (Token, error) {
	if m.down {
		return Token{}, ErrManagerDown
	}
	c, ok := m.clients[id]
	if !ok {
		return Token{}, fmt.Errorf("devlib: acquire by unregistered client %q: %w", id, ErrManagerDown)
	}
	if m.holder == c {
		return Token{ExpiresAt: m.grant + m.cfg.Quota, seq: m.tokSeq}, nil
	}
	if c.queued != nil {
		return Token{}, fmt.Errorf("devlib: client %q has a concurrent acquire in flight", id)
	}
	// Each client acquires serially (enforced above), so the grant event can
	// be reused across acquires instead of allocated per call.
	ev := c.acquire
	if ev == nil {
		ev = sim.NewEvent(m.env)
		c.acquire = ev
	} else {
		ev.Reset()
	}
	c.queued = ev
	c.enqueued = m.env.Now()
	m.queue = append(m.queue, c)
	m.trySchedule() // may grant synchronously, clearing c.queued
	v := p.Wait(ev)
	if err, ok := v.(error); ok {
		return Token{}, err // the manager was suspended while we waited
	}
	return v.(Token), nil
}

// Release voluntarily returns the token. Stale releases (a token that
// already expired or was reassigned) are ignored.
func (m *TokenManager) Release(id string, tok Token) {
	if m.holder == nil || m.holder.id != id || tok.seq != m.tokSeq {
		return
	}
	m.reclaim()
}

// reclaim records the holder's span, clears the grant and reschedules.
func (m *TokenManager) reclaim() {
	now := m.env.Now()
	if m.holder != nil {
		m.holder.window.AddSpan(m.grant, now)
		// The hold child is fetched on first reclaim rather than at Register,
		// so clients that never run a kernel leave no zero-valued series and
		// the label reflects the tenant set by install time.
		if m.holder.hold == nil {
			m.holder.hold = m.holdVec.With(m.uuid, m.holder.tenant)
		}
		m.holder.hold.Add(int64(now - m.grant))
		m.holder = nil
	}
	m.expiry.Stop()
	m.trySchedule()
}

// trySchedule grants the token to the best eligible queued client, following
// the paper's three steps: (1) filter clients at or above gpu_limit,
// (2) prefer the client farthest below its gpu_request, (3) otherwise the
// client with the lowest usage.
func (m *TokenManager) trySchedule() {
	if m.holder != nil || len(m.queue) == 0 {
		return
	}
	now := m.env.Now()
	var best *client
	bestIdx := -1
	var bestKey float64
	bestBelow := false
	for i, c := range m.queue {
		usage := c.window.Rate(now)
		// Step 1: filter clients already at their maximum usage demand.
		if usage >= c.limit {
			continue
		}
		below := usage < c.request
		var key float64
		switch {
		case below:
			key = c.request - usage // Step 2: farthest below request wins
		case m.cfg.Residual == FIFOResidual:
			key = float64(c.enqueued) // Step 3 (ablation): oldest request wins
		default:
			key = usage // Step 3 (paper): lowest usage wins
		}
		better := best == nil ||
			(below && !bestBelow) ||
			(below == bestBelow && below && key > bestKey) ||
			(below == bestBelow && !below && key < bestKey)
		if better {
			best, bestIdx, bestBelow, bestKey = c, i, below, key
		}
	}
	if best == nil {
		// Everyone queued is throttled at their limit; retry when the
		// window has slid forward by one quota.
		if !m.retry.Active() {
			m.retry = m.env.After(m.cfg.Quota, m.retryFn)
			m.throttles.Inc()
			m.recorder.Eventf("GPU", m.uuid, obs.EventWarning, "Throttled",
				"%d queued clients all at gpu_limit", len(m.queue))
		}
		return
	}
	m.queue = append(m.queue[:bestIdx], m.queue[bestIdx+1:]...)
	m.tokSeq++
	m.handoffs++
	best.grants++
	m.grants.Inc()
	m.admits.Inc()
	// Token-wait exemplar: the chain key is the owning sharePod; no span
	// anchors the grant itself (span 0), the chain's grant mark does.
	m.waitHist.ObserveDurationExemplar(now-best.enqueued, "SharePod/"+best.tenant, 0)
	m.holder = best
	m.grant = now
	tok := Token{ExpiresAt: now + m.cfg.Quota, seq: m.tokSeq}
	m.expiry = m.env.After(m.cfg.Quota, m.expireFn)
	ev := best.queued
	best.queued = nil
	ev.Trigger(tok)
}

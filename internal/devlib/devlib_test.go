package devlib

import (
	"errors"
	"math"
	"testing"
	"time"

	"kubeshare/internal/cuda"
	"kubeshare/internal/gpusim"
	"kubeshare/internal/sim"
)

// rig is a single-device test bench.
type rig struct {
	env *sim.Env
	dev *gpusim.Device
	mgr *TokenManager
}

func newRig(cfg Config) *rig {
	env := sim.NewEnv()
	dev := gpusim.NewDevice(env, gpusim.Config{NodeName: "n"})
	b := NewBackend(env, cfg)
	return &rig{env: env, dev: dev, mgr: b.Manager(dev.UUID())}
}

// addClient opens a frontend for a new container on the rig device.
func (r *rig) addClient(t *testing.T, id string, share Share) *Frontend {
	t.Helper()
	f, err := NewFrontend(cuda.Open(r.dev, id), r.mgr, id, share)
	if err != nil {
		t.Fatalf("frontend %s: %v", id, err)
	}
	return f
}

// trainLoop runs a full-duty training-style app: back-to-back kernels with a
// tiny host gap, until stop fires. It returns a counter of completed
// kernels via the pointer.
func trainLoop(f *Frontend, kernel, hostGap time.Duration, done *int) func(p *sim.Proc) {
	return func(p *sim.Proc) {
		for !p.Killed() {
			if err := f.LaunchKernel(p, kernel); err != nil {
				return
			}
			*done++
			if hostGap > 0 {
				p.Sleep(hostGap)
			}
		}
	}
}

func TestSingleClientThrottledAtLimit(t *testing.T) {
	r := newRig(Config{})
	f := r.addClient(t, "a", Share{Request: 0.3, Limit: 0.6, Memory: 0.5})
	n := 0
	p := r.env.Go("a", trainLoop(f, 10*time.Millisecond, 0, &n))
	r.env.RunUntil(60 * time.Second)
	p.Kill(nil)
	r.env.Run()
	// Device busy fraction over the run must sit near the 0.6 limit.
	util := r.dev.BusyTime().Seconds() / 60.0
	if math.Abs(util-0.6) > 0.05 {
		t.Fatalf("utilization %.3f, want ≈0.6 (gpu_limit)", util)
	}
}

func TestUnlimitedClientUsesWholeGPU(t *testing.T) {
	r := newRig(Config{})
	f := r.addClient(t, "a", Share{Request: 0.3, Limit: 1.0, Memory: 0.5})
	n := 0
	p := r.env.Go("a", trainLoop(f, 10*time.Millisecond, 0, &n))
	r.env.RunUntil(30 * time.Second)
	p.Kill(nil)
	r.env.Run()
	util := r.dev.BusyTime().Seconds() / 30.0
	if util < 0.9 {
		t.Fatalf("utilization %.3f, want >0.9 with no competitor", util)
	}
}

func TestTwoClientsElasticFairSplit(t *testing.T) {
	// Fig 6 middle phase: A(req .3, lim .6) + B(req .4, lim .6) on one GPU
	// → residual split gives each ≈0.5.
	r := newRig(Config{})
	fa := r.addClient(t, "a", Share{Request: 0.3, Limit: 0.6, Memory: 0.3})
	fb := r.addClient(t, "b", Share{Request: 0.4, Limit: 0.6, Memory: 0.3})
	na, nb := 0, 0
	pa := r.env.Go("a", trainLoop(fa, 10*time.Millisecond, 0, &na))
	pb := r.env.Go("b", trainLoop(fb, 10*time.Millisecond, 0, &nb))
	r.env.RunUntil(60 * time.Second)
	ua, ub := r.mgr.UsageRate("a"), r.mgr.UsageRate("b")
	pa.Kill(nil)
	pb.Kill(nil)
	r.env.Run()
	if math.Abs(ua-0.5) > 0.07 || math.Abs(ub-0.5) > 0.07 {
		t.Fatalf("usage a=%.3f b=%.3f, want ≈0.5 each", ua, ub)
	}
}

func TestThreeClientsGuaranteedRequests(t *testing.T) {
	// Fig 6 final phase: requests sum to 1.0; every client must obtain at
	// least its gpu_request (minus measurement slack).
	r := newRig(Config{})
	shares := map[string]Share{
		"a": {Request: 0.3, Limit: 0.6, Memory: 0.3},
		"b": {Request: 0.4, Limit: 0.6, Memory: 0.3},
		"c": {Request: 0.3, Limit: 0.5, Memory: 0.3},
	}
	var procs []*sim.Proc
	for _, id := range []string{"a", "b", "c"} {
		f := r.addClient(t, id, shares[id])
		n := 0
		procs = append(procs, r.env.Go(id, trainLoop(f, 10*time.Millisecond, 0, &n)))
	}
	r.env.RunUntil(60 * time.Second)
	for id, s := range shares {
		u := r.mgr.UsageRate(id)
		if u < s.Request-0.06 {
			t.Errorf("client %s usage %.3f below gpu_request %.2f", id, u, s.Request)
		}
		if u > s.Limit+0.03 {
			t.Errorf("client %s usage %.3f above gpu_limit %.2f", id, u, s.Limit)
		}
	}
	for _, p := range procs {
		p.Kill(nil)
	}
	r.env.Run()
}

func TestResidualRedistributedAfterDeparture(t *testing.T) {
	// Fig 6 tail: when a client leaves, its capacity flows to the others.
	r := newRig(Config{})
	fa := r.addClient(t, "a", Share{Request: 0.3, Limit: 0.6, Memory: 0.3})
	fc := r.addClient(t, "c", Share{Request: 0.3, Limit: 0.5, Memory: 0.3})
	na, nc := 0, 0
	pa := r.env.Go("a", trainLoop(fa, 10*time.Millisecond, 0, &na))
	pc := r.env.Go("c", trainLoop(fc, 10*time.Millisecond, 0, &nc))
	r.env.RunUntil(40 * time.Second)
	// c departs: a should climb from 0.5 toward its 0.6 limit.
	pc.Kill(nil)
	r.env.RunUntil(41 * time.Second)
	fcClose := r.env.Go("close-c", func(p *sim.Proc) { fc.Close(p) })
	_ = fcClose
	r.env.RunUntil(80 * time.Second)
	ua := r.mgr.UsageRate("a")
	pa.Kill(nil)
	r.env.Run()
	if math.Abs(ua-0.6) > 0.05 {
		t.Fatalf("after departure usage a=%.3f, want ≈0.6", ua)
	}
}

func TestTokenExclusive(t *testing.T) {
	// The device never runs kernels from two holders at once when kernels
	// fit within the quota: active kernel count stays ≤ 1.
	r := newRig(Config{})
	fa := r.addClient(t, "a", Share{Request: 0.5, Limit: 1, Memory: 0.3})
	fb := r.addClient(t, "b", Share{Request: 0.5, Limit: 1, Memory: 0.3})
	violations := 0
	r.env.Go("monitor", func(p *sim.Proc) {
		for !p.Killed() {
			p.Sleep(time.Millisecond)
			if r.dev.ActiveKernels() > 1 {
				violations++
			}
		}
	})
	na, nb := 0, 0
	r.env.Go("a", trainLoop(fa, 5*time.Millisecond, 0, &na))
	r.env.Go("b", trainLoop(fb, 5*time.Millisecond, 0, &nb))
	r.env.RunUntil(10 * time.Second)
	if violations > 0 {
		t.Fatalf("%d instants with >1 active kernel", violations)
	}
	if na == 0 || nb == 0 {
		t.Fatalf("progress a=%d b=%d", na, nb)
	}
}

func TestMemShareEnforced(t *testing.T) {
	r := newRig(Config{})
	f := r.addClient(t, "a", Share{Request: 0.5, Limit: 1, Memory: 0.25})
	capBytes := f.Device().MemoryBytes
	if capBytes != r.dev.MemoryBytes()/4 {
		t.Fatalf("visible capacity %d, want quarter of %d", capBytes, r.dev.MemoryBytes())
	}
	r.env.Go("a", func(p *sim.Proc) {
		if _, err := f.MemAlloc(p, capBytes); err != nil {
			t.Errorf("alloc at share: %v", err)
		}
		if _, err := f.MemAlloc(p, 1); !errors.Is(err, cuda.ErrOutOfMemory) {
			t.Errorf("overshare alloc err = %v, want OOM", err)
		}
	})
	r.env.Run()
}

func TestMemSharesIndependent(t *testing.T) {
	r := newRig(Config{})
	fa := r.addClient(t, "a", Share{Request: 0.5, Limit: 1, Memory: 0.5})
	fb := r.addClient(t, "b", Share{Request: 0.5, Limit: 1, Memory: 0.5})
	r.env.Go("t", func(p *sim.Proc) {
		if _, err := fa.MemAlloc(p, fa.Device().MemoryBytes); err != nil {
			t.Errorf("a alloc: %v", err)
		}
		if _, err := fb.MemAlloc(p, fb.Device().MemoryBytes); err != nil {
			t.Errorf("b alloc: %v", err)
		}
	})
	r.env.Run()
}

func TestQuotaOverheadSmall(t *testing.T) {
	// Fig 7: the slowdown from token exchange must stay under ~5% even at a
	// 30ms quota for a solo full-duty job.
	baselineKernels := func(quota time.Duration, useLib bool) int {
		env := sim.NewEnv()
		dev := gpusim.NewDevice(env, gpusim.Config{NodeName: "n"})
		var api cuda.API = cuda.Open(dev, "a")
		if useLib {
			mgr := NewBackend(env, Config{Quota: quota}).Manager(dev.UUID())
			f, err := NewFrontend(api, mgr, "a", Share{Request: 1, Limit: 1, Memory: 1})
			if err != nil {
				t.Fatal(err)
			}
			api = f
		}
		n := 0
		pr := env.Go("a", func(p *sim.Proc) {
			for !p.Killed() {
				if err := api.LaunchKernel(p, 10*time.Millisecond); err != nil {
					return
				}
				n++
			}
		})
		env.RunUntil(30 * time.Second)
		pr.Kill(nil)
		env.Run()
		return n
	}
	base := baselineKernels(0, false)
	for _, quota := range []time.Duration{30 * time.Millisecond, 100 * time.Millisecond} {
		got := baselineKernels(quota, true)
		slowdown := 1 - float64(got)/float64(base)
		if slowdown > 0.06 {
			t.Errorf("quota %v: slowdown %.3f > 6%%", quota, slowdown)
		}
		if slowdown < 0 {
			t.Errorf("quota %v: negative slowdown %.3f", quota, slowdown)
		}
	}
}

func TestSmallerQuotaMoreHandoffs(t *testing.T) {
	// A solo continuous client re-acquires once per quota expiry (nobody is
	// waiting, so the work-conserving release never triggers): handoff
	// count scales inversely with the quota.
	run := func(quota time.Duration) int64 {
		r := newRig(Config{Quota: quota})
		fa := r.addClient(t, "a", Share{Request: 1, Limit: 1, Memory: 0.3})
		na := 0
		r.env.Go("a", trainLoop(fa, 5*time.Millisecond, 0, &na))
		r.env.RunUntil(10 * time.Second)
		return r.mgr.Handoffs()
	}
	small, large := run(30*time.Millisecond), run(160*time.Millisecond)
	if small <= 2*large {
		t.Fatalf("handoffs: quota30=%d quota160=%d, want ≫ at smaller quota", small, large)
	}
}

func TestContendedHandoffsPerKernel(t *testing.T) {
	// With a competitor queued, the holder hands over after each kernel
	// (work conservation), independent of the quota.
	r := newRig(Config{})
	fa := r.addClient(t, "a", Share{Request: 0.5, Limit: 1, Memory: 0.3})
	fb := r.addClient(t, "b", Share{Request: 0.5, Limit: 1, Memory: 0.3})
	na, nb := 0, 0
	r.env.Go("a", trainLoop(fa, 5*time.Millisecond, 0, &na))
	r.env.Go("b", trainLoop(fb, 5*time.Millisecond, 0, &nb))
	r.env.RunUntil(10 * time.Second)
	if got := r.mgr.Handoffs(); got < int64(na+nb)/2 {
		t.Fatalf("handoffs %d far below kernel count %d; contended token not interleaving", got, na+nb)
	}
}

func TestResidualPolicyAblation(t *testing.T) {
	// One big-kernel client against two small-kernel ones, all far above
	// their requests. With three tenants there are always two waiters to
	// arbitrate between: lowest-usage-first equalizes *time shares*
	// (≈1/3 each), while FIFO rotates *turns*, handing the big-kernel
	// client most of the device (20/(20+5+5) ≈ 0.67).
	run := func(policy ResidualPolicy) (big, small float64) {
		r := newRig(Config{Residual: policy})
		fb := r.addClient(t, "big", Share{Request: 0.05, Limit: 1, Memory: 0.2})
		fs1 := r.addClient(t, "small1", Share{Request: 0.05, Limit: 1, Memory: 0.2})
		fs2 := r.addClient(t, "small2", Share{Request: 0.05, Limit: 1, Memory: 0.2})
		var nb, n1, n2 int
		r.env.Go("big", trainLoop(fb, 20*time.Millisecond, 0, &nb))
		r.env.Go("small1", trainLoop(fs1, 5*time.Millisecond, 0, &n1))
		r.env.Go("small2", trainLoop(fs2, 5*time.Millisecond, 0, &n2))
		r.env.RunUntil(30 * time.Second)
		return r.mgr.UsageRate("big"), r.mgr.UsageRate("small1")
	}
	bigLU, smallLU := run(LowestUsageFirst)
	if math.Abs(bigLU-smallLU) > 0.12 {
		t.Fatalf("lowest-usage policy unbalanced: big %.3f vs small %.3f", bigLU, smallLU)
	}
	bigFIFO, smallFIFO := run(FIFOResidual)
	if bigFIFO < smallFIFO+0.25 {
		t.Fatalf("FIFO policy should favour the big-kernel client: %.3f vs %.3f", bigFIFO, smallFIFO)
	}
}

func TestGraceReleasesIdleToken(t *testing.T) {
	// A bursty client must not hold the token between bursts: a competing
	// full-duty client gets the gaps.
	r := newRig(Config{})
	fa := r.addClient(t, "bursty", Share{Request: 0.1, Limit: 1, Memory: 0.3})
	fb := r.addClient(t, "greedy", Share{Request: 0.5, Limit: 1, Memory: 0.3})
	nb := 0
	r.env.Go("bursty", func(p *sim.Proc) {
		for !p.Killed() {
			if err := fa.LaunchKernel(p, 2*time.Millisecond); err != nil {
				return
			}
			p.Sleep(50 * time.Millisecond) // long idle between requests
		}
	})
	r.env.Go("greedy", trainLoop(fb, 10*time.Millisecond, 0, &nb))
	r.env.RunUntil(20 * time.Second)
	ug := r.mgr.UsageRate("greedy")
	if ug < 0.8 {
		t.Fatalf("greedy usage %.3f; bursty client is hogging the token", ug)
	}
	ub := r.mgr.UsageRate("bursty")
	if ub < 0.02 {
		t.Fatalf("bursty usage %.3f; starved", ub)
	}
}

func TestUnregisterWhileHoldingReleases(t *testing.T) {
	r := newRig(Config{})
	fa := r.addClient(t, "a", Share{Request: 0.5, Limit: 1, Memory: 0.3})
	fb := r.addClient(t, "b", Share{Request: 0.5, Limit: 1, Memory: 0.3})
	nb := 0
	r.env.Go("a", func(p *sim.Proc) {
		fa.LaunchKernel(p, 5*time.Millisecond)
		fa.Close(p) // drops registration mid-everything
	})
	r.env.Go("b", trainLoop(fb, 5*time.Millisecond, 0, &nb))
	r.env.RunUntil(5 * time.Second)
	if nb == 0 {
		t.Fatal("b starved after a closed")
	}
	if r.mgr.Clients() != 1 {
		t.Fatalf("clients = %d, want 1", r.mgr.Clients())
	}
}

func TestRegisterValidation(t *testing.T) {
	r := newRig(Config{})
	bad := []Share{
		{Request: -0.1, Limit: 0.5, Memory: 0.5},
		{Request: 0.5, Limit: 1.5, Memory: 0.5},
		{Request: 0.6, Limit: 0.5, Memory: 0.5},
		{Request: 0.5, Limit: 0.5, Memory: 0},
		{Request: 0.5, Limit: 0.5, Memory: 1.5},
	}
	for i, s := range bad {
		if _, err := NewFrontend(cuda.Open(r.dev, "x"), r.mgr, "x", s); err == nil {
			t.Errorf("case %d: invalid share %+v accepted", i, s)
		}
	}
	if err := r.mgr.Register("dup", 0.1, 0.2); err != nil {
		t.Fatal(err)
	}
	if err := r.mgr.Register("dup", 0.1, 0.2); err == nil {
		t.Fatal("duplicate registration accepted")
	}
}

func TestAcquireUnregisteredErrors(t *testing.T) {
	r := newRig(Config{})
	r.env.Go("t", func(p *sim.Proc) {
		if _, err := r.mgr.Acquire(p, "ghost"); err == nil {
			t.Error("acquire by ghost succeeded")
		}
	})
	r.env.Run()
}

func TestUsageRateUnknownClient(t *testing.T) {
	r := newRig(Config{})
	if r.mgr.UsageRate("ghost") != 0 {
		t.Fatal("unknown client has nonzero usage")
	}
}

func TestStatsSnapshot(t *testing.T) {
	r := newRig(Config{})
	fa := r.addClient(t, "a", Share{Request: 0.5, Limit: 1, Memory: 0.3})
	fb := r.addClient(t, "b", Share{Request: 0.5, Limit: 1, Memory: 0.3})
	na, nb := 0, 0
	r.env.Go("a", trainLoop(fa, 50*time.Millisecond, 0, &na))
	r.env.Go("b", trainLoop(fb, 50*time.Millisecond, 0, &nb))
	r.env.RunUntil(125 * time.Millisecond)
	st := r.mgr.Stats()
	if st.Clients != 2 {
		t.Fatalf("clients = %d", st.Clients)
	}
	if st.Holder == "" {
		t.Fatal("no holder mid-contention")
	}
	if st.Handoffs == 0 {
		t.Fatal("no handoffs recorded")
	}
	if st.QueueDepth != 1 {
		t.Fatalf("queue depth = %d, want the other tenant waiting", st.QueueDepth)
	}
}

func TestShareEffectiveLimitDefaults(t *testing.T) {
	s := Share{Request: 0.4, Memory: 0.5}
	if s.EffectiveLimit() != 0.4 {
		t.Fatalf("effective limit = %v", s.EffectiveLimit())
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("share with defaulted limit rejected: %v", err)
	}
}

func TestAsyncStreamBatchesUnderOneToken(t *testing.T) {
	r := newRig(Config{})
	f := r.addClient(t, "a", Share{Request: 0.5, Limit: 1, Memory: 0.3})
	r.env.Go("a", func(p *sim.Proc) {
		// A burst of async kernels then one sync: a single token hold
		// (plus possibly one quota renewal) covers the whole stream.
		for i := 0; i < 8; i++ {
			if _, err := f.LaunchKernelAsync(p, 5*time.Millisecond); err != nil {
				t.Errorf("async: %v", err)
				return
			}
		}
		if err := f.Synchronize(p); err != nil {
			t.Errorf("sync: %v", err)
		}
	})
	r.env.RunUntil(5 * time.Second)
	if h := r.mgr.Handoffs(); h != 1 {
		t.Fatalf("handoffs = %d, want 1 (stream batched under one hold)", h)
	}
}

func TestAsyncContendedStreamsShareFairly(t *testing.T) {
	r := newRig(Config{})
	fa := r.addClient(t, "a", Share{Request: 0.5, Limit: 1, Memory: 0.3})
	fb := r.addClient(t, "b", Share{Request: 0.5, Limit: 1, Memory: 0.3})
	loop := func(f *Frontend) func(p *sim.Proc) {
		return func(p *sim.Proc) {
			for !p.Killed() {
				for i := 0; i < 4; i++ {
					if _, err := f.LaunchKernelAsync(p, 5*time.Millisecond); err != nil {
						return
					}
				}
				if err := f.Synchronize(p); err != nil {
					return
				}
			}
		}
	}
	r.env.Go("a", loop(fa))
	r.env.Go("b", loop(fb))
	r.env.RunUntil(20 * time.Second)
	ua, ub := r.mgr.UsageRate("a"), r.mgr.UsageRate("b")
	if math.Abs(ua-ub) > 0.15 {
		t.Fatalf("streamed tenants unbalanced: %.3f vs %.3f", ua, ub)
	}
	if ua+ub < 0.85 {
		t.Fatalf("device underused with streams: %.3f total", ua+ub)
	}
}

package devlib

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"kubeshare/internal/cuda"
	"kubeshare/internal/kube/backoff"
	"kubeshare/internal/obs"
	"kubeshare/internal/sim"
)

// Reconnect bounds: a frontend whose token manager goes down (vGPU pod
// crash) retries under the shared decorrelated-jitter backoff policy
// (internal/kube/backoff) while DevMgr replaces the daemon, then surfaces
// ErrManagerDown if the outage outlives the budget.
const (
	reconnectBase     = 20 * time.Millisecond
	reconnectCap      = time.Second
	reconnectAttempts = 32
)

// Share is a container's vGPU resource specification, the values from the
// SharePodSpec (§4.2).
type Share struct {
	// Request is the guaranteed minimum compute share (gpu_request).
	Request float64
	// Limit is the maximum compute share (gpu_limit); 0 means equal to
	// Request.
	Limit float64
	// Memory is the device-memory fraction (gpu_mem) the container may
	// allocate.
	Memory float64
}

// Validate checks the share against the paper's fractional-value rules.
func (s Share) Validate() error {
	if s.Request < 0 || s.Request > 1 {
		return fmt.Errorf("devlib: gpu_request %v outside [0,1]", s.Request)
	}
	limit := s.Limit
	if limit == 0 {
		limit = s.Request
	}
	if limit <= 0 || limit > 1 {
		return fmt.Errorf("devlib: gpu_limit %v outside (0,1]", s.Limit)
	}
	if limit < s.Request {
		return fmt.Errorf("devlib: gpu_limit %v below gpu_request %v", s.Limit, s.Request)
	}
	if s.Memory <= 0 || s.Memory > 1 {
		return fmt.Errorf("devlib: gpu_mem %v outside (0,1]", s.Memory)
	}
	return nil
}

// EffectiveLimit returns Limit, defaulting to Request when unset.
func (s Share) EffectiveLimit() float64 {
	if s.Limit == 0 {
		return s.Request
	}
	return s.Limit
}

// Frontend is the per-container interposer: a cuda.API that gates
// compute calls on token possession and caps memory allocation at the
// container's gpu_mem share. It is installed by KubeShare-DevMgr in place
// of the raw driver (the LD_PRELOAD step of §4.5).
type Frontend struct {
	base     cuda.API
	mgr      *TokenManager
	clientID string
	share    Share
	memCap   int64
	cfg      Config

	token      Token
	releaseTmr sim.Timer
	// releaseFn is the grace-expiry callback, built once so scheduling the
	// grace timer after every kernel does not allocate a fresh closure. It
	// reads f.token at fire time; every path that changes the token first
	// stops the pending timer, and TokenManager.Release ignores stale
	// tokens, so the late read is equivalent to capturing the token at
	// scheduling time.
	releaseFn func()
	closed    bool

	// Trace milestones: the first token grant and first kernel launch are
	// marked once onto the chain named by traceKey (see SetTraceKey).
	// tenant is the owning sharePod name derived from the key; it labels the
	// client's token-hold attribution and is re-applied on every re-register
	// so it survives manager suspend/resume.
	tracer      *obs.Tracer
	traceKey    string
	tenant      string
	markedGrant bool
	markedFirst bool

	// Virtual-memory mode (Config.MemOvercommit): allocations are tracked
	// here instead of on the physical device, and residency is managed by
	// the token manager's swap broker.
	virtual  bool
	virtMem  int64
	virtPtrs map[cuda.Ptr]int64
	nextPtr  cuda.Ptr
}

var _ cuda.API = (*Frontend)(nil)

// NewFrontend wraps base for a container. It registers the container with
// the device's token manager; the caller must ensure the sum of Request over
// a device's containers stays ≤ 1 (KubeShare-Sched's job).
func NewFrontend(base cuda.API, mgr *TokenManager, clientID string, share Share) (*Frontend, error) {
	if err := share.Validate(); err != nil {
		return nil, err
	}
	// A container may start while the device's daemon is down (vGPU pod
	// being replaced mid-recovery): tolerate it — the first compute call's
	// reconnect loop registers once the daemon is back.
	if err := mgr.Register(clientID, share.Request, share.EffectiveLimit()); err != nil && !errors.Is(err, ErrManagerDown) {
		return nil, err
	}
	total := base.Device().MemoryBytes
	f := &Frontend{
		base:     base,
		mgr:      mgr,
		clientID: clientID,
		share:    share,
		memCap:   int64(share.Memory * float64(total)),
		cfg:      mgr.cfg,
		tracer:   mgr.cfg.Obs.Tracer(),
	}
	f.releaseFn = func() {
		f.mgr.Release(f.clientID, f.token)
		f.token = Token{}
	}
	if mgr.cfg.MemOvercommit {
		mgr.EnableSwap(total, mgr.cfg.SwapBandwidth)
		f.virtual = true
		f.virtPtrs = make(map[cuda.Ptr]int64)
		f.nextPtr = 0x1000
	}
	return f, nil
}

// SetTraceKey names the causal-trace chain the frontend's milestones (first
// token grant, first kernel launch) attach to — typically the owning
// sharePod's "SharePod/<name>" key. Without a key the frontend records no
// trace marks. The sharePod name doubles as the tenant label on the
// container's token-hold metrics.
func (f *Frontend) SetTraceKey(key string) {
	f.traceKey = key
	f.tenant = strings.TrimPrefix(key, "SharePod/")
	f.mgr.SetTenant(f.clientID, f.tenant)
}

// Share returns the container's resource specification.
func (f *Frontend) Share() Share { return f.share }

// Device reports the visible device with capacity clipped to the gpu_mem
// share, which is what applications should size against.
func (f *Frontend) Device() cuda.DeviceInfo {
	info := f.base.Device()
	info.MemoryBytes = f.memCap
	return info
}

// MemAlloc enforces the gpu_mem cap: allocations beyond the share fail with
// out-of-memory (the paper's no-overcommit policy), before ever reaching
// the physical allocator.
func (f *Frontend) MemAlloc(p *sim.Proc, n int64) (cuda.Ptr, error) {
	if f.closed {
		return 0, cuda.ErrClosed
	}
	if f.MemUsed()+n > f.memCap {
		return 0, fmt.Errorf("devlib: container %s exceeds gpu_mem share (%d of %d bytes): %w",
			f.clientID, f.MemUsed()+n, f.memCap, cuda.ErrOutOfMemory)
	}
	if !f.virtual {
		return f.base.MemAlloc(p, n)
	}
	if n <= 0 {
		return 0, fmt.Errorf("devlib: MemAlloc(%d): non-positive size", n)
	}
	// Virtual allocation: no physical reservation; residency is arranged
	// at the next token acquisition.
	if err := f.mgr.SetVirtualUsage(f.clientID, f.virtMem+n); err != nil {
		return 0, fmt.Errorf("%v: %w", err, cuda.ErrOutOfMemory)
	}
	f.virtMem += n
	ptr := f.nextPtr
	f.nextPtr += cuda.Ptr(n)
	f.virtPtrs[ptr] = n
	return ptr, nil
}

// MemFree passes through (or releases virtual bytes in over-commit mode).
func (f *Frontend) MemFree(p *sim.Proc, ptr cuda.Ptr) error {
	if f.closed {
		return cuda.ErrClosed
	}
	if !f.virtual {
		return f.base.MemFree(p, ptr)
	}
	n, ok := f.virtPtrs[ptr]
	if !ok {
		return fmt.Errorf("devlib: MemFree(%#x): unknown pointer", uint64(ptr))
	}
	delete(f.virtPtrs, ptr)
	f.virtMem -= n
	return f.mgr.SetVirtualUsage(f.clientID, f.virtMem)
}

// MemcpyHtoD passes through (copies are not throttled; only kernel
// execution consumes the compute share).
func (f *Frontend) MemcpyHtoD(p *sim.Proc, n int64) error {
	if f.closed {
		return cuda.ErrClosed
	}
	return f.base.MemcpyHtoD(p, n)
}

// MemcpyDtoH passes through.
func (f *Frontend) MemcpyDtoH(p *sim.Proc, n int64) error {
	if f.closed {
		return cuda.ErrClosed
	}
	return f.base.MemcpyDtoH(p, n)
}

// acquireToken obtains a valid token, riding out token-manager outages: on
// ErrManagerDown it sleeps with capped exponential backoff, re-registers
// with the (replacement) manager once it is serving again, and retries —
// up to reconnectAttempts before surfacing the error to the application.
func (f *Frontend) acquireToken(p *sim.Proc) error {
	// Seeded per client, so a holder kill that strands many frontends at the
	// same instant spreads their re-registration attempts apart.
	retry := backoff.New("devlib/"+f.clientID, reconnectBase, reconnectCap)
	for attempt := 0; ; attempt++ {
		tok, err := f.mgr.Acquire(p, f.clientID)
		if err == nil {
			f.token = tok
			if !f.markedGrant && f.traceKey != "" {
				f.markedGrant = true
				f.tracer.Mark("devlib", "token-grant", f.traceKey, f.clientID)
			}
			// Token handoff cost: IPC plus pipeline warm-up before the first
			// kernel of this hold can start.
			p.Sleep(f.cfg.Handoff)
			if f.virtual {
				// Over-commit mode: bring the working set back onto the
				// device (it may have been swapped out while another tenant
				// held the token), paying the transfer time.
				return f.mgr.EnsureResident(p, f.clientID)
			}
			return nil
		}
		if !errors.Is(err, ErrManagerDown) || attempt >= reconnectAttempts {
			return err
		}
		p.Sleep(retry.Next())
		if f.closed {
			return cuda.ErrClosed // torn down while waiting out the outage
		}
		if !f.mgr.Down() && !f.mgr.Registered(f.clientID) {
			// The replacement daemon is serving and has no memory of us.
			_ = f.mgr.Register(f.clientID, f.share.Request, f.share.EffectiveLimit())
			f.mgr.SetTenant(f.clientID, f.tenant)
		}
	}
}

// LaunchKernel blocks until the container holds a valid token, then
// executes the kernel. After completion the token is voluntarily released
// if no further kernel is launched within the inactivity grace.
func (f *Frontend) LaunchKernel(p *sim.Proc, work time.Duration) error {
	if f.closed {
		return cuda.ErrClosed
	}
	f.releaseTmr.Stop()
	if !f.token.Valid(p.Env().Now()) {
		if err := f.acquireToken(p); err != nil {
			return err
		}
	}
	f.markFirstLaunch()
	if err := f.base.LaunchKernel(p, work); err != nil {
		return err
	}
	if f.closed {
		return nil // closed while the kernel ran
	}
	if f.mgr.Waiting() > 0 {
		// Work-conserving handover: someone is queued, so give the device
		// up right away instead of idling through the grace period.
		f.mgr.Release(f.clientID, f.token)
		f.token = Token{}
		return nil
	}
	f.releaseTmr = p.Env().After(f.cfg.Grace, f.releaseFn)
	return nil
}

// LaunchKernelAsync blocks until a valid token is held (the interposition
// point is the launch call itself), then submits without waiting. The
// token's release is deferred to Synchronize or quota expiry, letting apps
// batch a stream of kernels under one hold.
func (f *Frontend) LaunchKernelAsync(p *sim.Proc, work time.Duration) (*sim.Event, error) {
	if f.closed {
		return nil, cuda.ErrClosed
	}
	f.releaseTmr.Stop()
	if !f.token.Valid(p.Env().Now()) {
		if err := f.acquireToken(p); err != nil {
			return nil, err
		}
	}
	f.markFirstLaunch()
	return f.base.LaunchKernelAsync(p, work)
}

// markFirstLaunch records the container's first kernel reaching the device
// — the interposition boundary between the library and the GPU, so the mark
// carries the "gpusim" component on the sharePod's chain.
func (f *Frontend) markFirstLaunch() {
	if f.markedFirst || f.traceKey == "" {
		return
	}
	f.markedFirst = true
	f.tracer.Mark("gpusim", "kernel-launch", f.traceKey, f.clientID)
}

// Synchronize drains the stream, then hands the token over (immediately if
// someone waits, after the grace otherwise).
func (f *Frontend) Synchronize(p *sim.Proc) error {
	if f.closed {
		return cuda.ErrClosed
	}
	if err := f.base.Synchronize(p); err != nil {
		return err
	}
	if f.closed || !f.token.Valid(p.Env().Now()) {
		return nil
	}
	if f.mgr.Waiting() > 0 {
		f.mgr.Release(f.clientID, f.token)
		f.token = Token{}
		return nil
	}
	f.releaseTmr = p.Env().After(f.cfg.Grace, f.releaseFn)
	return nil
}

// MemUsed reports the container's allocated bytes (virtual bytes in
// over-commit mode).
func (f *Frontend) MemUsed() int64 {
	if f.virtual {
		return f.virtMem
	}
	return f.base.MemUsed()
}

// Close releases any held token, unregisters the container and closes the
// underlying driver handle. It never blocks, so it is safe from container
// teardown paths.
func (f *Frontend) Close(p *sim.Proc) error {
	if f.closed {
		return nil
	}
	f.closed = true
	f.releaseTmr.Stop()
	f.mgr.Unregister(f.clientID)
	return f.base.Close(p)
}

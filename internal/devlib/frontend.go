package devlib

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"kubeshare/internal/cuda"
	"kubeshare/internal/devlib/sharing"
	"kubeshare/internal/gpusim"
	"kubeshare/internal/kube/backoff"
	"kubeshare/internal/obs"
	"kubeshare/internal/sim"
)

// Reconnect bounds: a frontend whose sharing strategy goes down (vGPU pod
// crash) retries under the shared decorrelated-jitter backoff policy
// (internal/kube/backoff) while DevMgr replaces the daemon, then surfaces
// the down error if the outage outlives the budget.
const (
	reconnectBase     = 20 * time.Millisecond
	reconnectCap      = time.Second
	reconnectAttempts = 32
)

// Share is a container's vGPU resource specification, the values from the
// SharePodSpec (§4.2).
type Share struct {
	// Request is the guaranteed minimum compute share (gpu_request).
	Request float64
	// Limit is the maximum compute share (gpu_limit); 0 means equal to
	// Request.
	Limit float64
	// Memory is the device-memory fraction (gpu_mem) the container may
	// allocate.
	Memory float64
	// MemoryBytes is the absolute device-memory request (gpu_mem_bytes,
	// KAI-style). When set it takes precedence over the fractional form and
	// is additionally enforced inside gpusim's memory model via the
	// context's byte limit.
	MemoryBytes int64
}

// Validate checks the share against the paper's fractional-value rules
// (extended with the absolute gpu_mem_bytes form: exactly one of the two
// memory requests must be positive).
func (s Share) Validate() error {
	if s.Request < 0 || s.Request > 1 {
		return fmt.Errorf("devlib: gpu_request %v outside [0,1]", s.Request)
	}
	limit := s.Limit
	if limit == 0 {
		limit = s.Request
	}
	if limit <= 0 || limit > 1 {
		return fmt.Errorf("devlib: gpu_limit %v outside (0,1]", s.Limit)
	}
	if limit < s.Request {
		return fmt.Errorf("devlib: gpu_limit %v below gpu_request %v", s.Limit, s.Request)
	}
	if s.MemoryBytes < 0 {
		return fmt.Errorf("devlib: gpu_mem_bytes %d negative", s.MemoryBytes)
	}
	if s.MemoryBytes > 0 {
		if s.Memory != 0 {
			return fmt.Errorf("devlib: gpu_mem %v and gpu_mem_bytes %d both set", s.Memory, s.MemoryBytes)
		}
		return nil
	}
	if s.Memory <= 0 || s.Memory > 1 {
		return fmt.Errorf("devlib: gpu_mem %v outside (0,1]", s.Memory)
	}
	return nil
}

// EffectiveLimit returns Limit, defaulting to Request when unset.
func (s Share) EffectiveLimit() float64 {
	if s.Limit == 0 {
		return s.Request
	}
	return s.Limit
}

// resources maps the share onto the strategy layer's demand record.
func (s Share) resources() sharing.Resources {
	return sharing.Resources{
		Request:     s.Request,
		Limit:       s.EffectiveLimit(),
		MemFraction: s.Memory,
		MemBytes:    s.MemoryBytes,
	}
}

// Frontend is the per-container interposer: a cuda.API that gates
// compute calls on lease possession and caps memory allocation at the
// container's gpu_mem share. It is installed by KubeShare-DevMgr in place
// of the raw driver (the LD_PRELOAD step of §4.5). The admission policy
// behind it is pluggable (sharing.Strategy); under the default token
// strategy the behavior is the paper's token time-slicing, unchanged.
type Frontend struct {
	base     cuda.API
	strat    sharing.Strategy
	clientID string
	share    Share
	memCap   int64
	cfg      Config
	// gated caches strat.Gated(): only time-slicing strategies pay handoff
	// sleeps, arm grace timers and release leases work-conservingly.
	gated bool

	lease      sharing.Lease
	releaseTmr sim.Timer
	// releaseFn is the grace-expiry callback, built once so scheduling the
	// grace timer after every kernel does not allocate a fresh closure. It
	// reads f.lease at fire time; every path that changes the lease first
	// stops the pending timer, and strategies ignore stale leases, so the
	// late read is equivalent to capturing the lease at scheduling time.
	releaseFn func()
	closed    bool

	// Trace milestones: the first admission grant and first kernel launch
	// are marked once onto the chain named by traceKey (see SetTraceKey).
	// tenant is the owning sharePod name derived from the key; it labels the
	// client's usage attribution and is re-applied on every re-register so
	// it survives strategy suspend/resume.
	tracer      *obs.Tracer
	traceKey    string
	tenant      string
	markedGrant bool
	markedFirst bool

	// Ungated (overlap) accounting: devCtx is the underlying gpusim context
	// when the base API exposes one; after each synchronous kernel (and each
	// Synchronize) the context's device-time delta is recorded into
	// kubeshare_sharing_devtime_ns_total{gpu_uuid,tenant}, the overlap
	// counterpart of the token strategy's hold accounting.
	devCtx      *gpusim.Context
	lastDevTime time.Duration
	devtimeVec  *obs.CounterVec
	devtimeCtr  *obs.Counter

	// Virtual-memory mode (Config.MemOvercommit, token strategy only):
	// allocations are tracked here instead of on the physical device, and
	// residency is managed by the strategy's swap broker.
	swapper  Swapper
	virtual  bool
	virtMem  int64
	virtPtrs map[cuda.Ptr]int64
	nextPtr  cuda.Ptr
}

var _ cuda.API = (*Frontend)(nil)

// deviceContexter is the optional surface a cuda.API exposes to reach the
// simulated device context (cuda.Driver does); the frontend uses it to set
// overlap compute weights and absolute memory limits.
type deviceContexter interface {
	Context() *gpusim.Context
}

// NewFrontend wraps base for a container under the default token strategy
// — the pre-sharing-layer constructor, kept so token-mode callers (and the
// paper's original wiring) are untouched. It registers the container with
// the device's token manager; the caller must ensure the sum of Request
// over a device's containers stays ≤ 1 (KubeShare-Sched's job).
func NewFrontend(base cuda.API, mgr *TokenManager, clientID string, share Share) (*Frontend, error) {
	return NewFrontendWith(base, TokenStrategy{mgr}, clientID, share, mgr.cfg)
}

// NewFrontendWith wraps base for a container under an explicit sharing
// strategy. cfg supplies the frontend-side knobs (handoff, grace, memory
// over-commitment, telemetry) — pass the owning Backend's Config.
func NewFrontendWith(base cuda.API, strat sharing.Strategy, clientID string, share Share, cfg Config) (*Frontend, error) {
	if err := share.Validate(); err != nil {
		return nil, err
	}
	// A container may start while the device's daemon is down (vGPU pod
	// being replaced mid-recovery): tolerate it — the first compute call's
	// reconnect loop registers once the daemon is back.
	if err := strat.Register(clientID, share.resources()); err != nil && !isDownErr(err) {
		return nil, err
	}
	total := base.Device().MemoryBytes
	memCap := int64(share.Memory * float64(total))
	if share.MemoryBytes > 0 {
		memCap = share.MemoryBytes
	}
	f := &Frontend{
		base:     base,
		strat:    strat,
		clientID: clientID,
		share:    share,
		memCap:   memCap,
		cfg:      cfg,
		gated:    strat.Gated(),
		tracer:   cfg.Obs.Tracer(),
	}
	f.releaseFn = func() {
		f.strat.Release(f.clientID, f.lease)
		f.lease = sharing.Lease{}
	}
	if ctxer, ok := base.(deviceContexter); ok {
		if ctx := ctxer.Context(); ctx != nil {
			if share.MemoryBytes > 0 {
				// Absolute requests are enforced by the device's own memory
				// model, not just the frontend's share check.
				ctx.SetMemLimit(share.MemoryBytes)
			}
			if !f.gated {
				// Overlap mode: the tenant's gpu_request is its SM/compute
				// fraction — the processor-sharing weight of its kernels.
				if w := share.Request; w > 0 {
					ctx.SetComputeWeight(w)
				} else if w := share.EffectiveLimit(); w > 0 {
					ctx.SetComputeWeight(w)
				}
				f.devCtx = ctx
				f.devtimeVec = cfg.Obs.CounterVec("kubeshare_sharing_devtime_ns_total", "gpu_uuid", "tenant")
			}
		}
	}
	if cfg.MemOvercommit {
		if sw, ok := strat.(Swapper); ok {
			sw.EnableSwap(total, cfg.SwapBandwidth)
			f.swapper = sw
			f.virtual = true
			f.virtPtrs = make(map[cuda.Ptr]int64)
			f.nextPtr = 0x1000
		}
	}
	return f, nil
}

// isDownErr reports whether err marks a suspended strategy (either the
// token manager's legacy sentinel or the sharing layer's).
func isDownErr(err error) bool {
	return errors.Is(err, ErrManagerDown) || errors.Is(err, sharing.ErrDown)
}

// SetTraceKey names the causal-trace chain the frontend's milestones (first
// admission grant, first kernel launch) attach to — typically the owning
// sharePod's "SharePod/<name>" key. Without a key the frontend records no
// trace marks. The sharePod name doubles as the tenant label on the
// container's usage metrics.
func (f *Frontend) SetTraceKey(key string) {
	f.traceKey = key
	f.tenant = strings.TrimPrefix(key, "SharePod/")
	f.strat.SetTenant(f.clientID, f.tenant)
	f.devtimeCtr = nil // re-fetched lazily under the new tenant label
}

// Share returns the container's resource specification.
func (f *Frontend) Share() Share { return f.share }

// Strategy returns the sharing strategy admitting this container.
func (f *Frontend) Strategy() sharing.Strategy { return f.strat }

// Device reports the visible device with capacity clipped to the gpu_mem
// share, which is what applications should size against.
func (f *Frontend) Device() cuda.DeviceInfo {
	info := f.base.Device()
	info.MemoryBytes = f.memCap
	return info
}

// MemAlloc enforces the gpu_mem cap: allocations beyond the share fail with
// out-of-memory (the paper's no-overcommit policy), before ever reaching
// the physical allocator.
func (f *Frontend) MemAlloc(p *sim.Proc, n int64) (cuda.Ptr, error) {
	if f.closed {
		return 0, cuda.ErrClosed
	}
	if f.MemUsed()+n > f.memCap {
		return 0, fmt.Errorf("devlib: container %s exceeds gpu_mem share (%d of %d bytes): %w",
			f.clientID, f.MemUsed()+n, f.memCap, cuda.ErrOutOfMemory)
	}
	if !f.virtual {
		return f.base.MemAlloc(p, n)
	}
	if n <= 0 {
		return 0, fmt.Errorf("devlib: MemAlloc(%d): non-positive size", n)
	}
	// Virtual allocation: no physical reservation; residency is arranged
	// at the next admission.
	if err := f.swapper.SetVirtualUsage(f.clientID, f.virtMem+n); err != nil {
		return 0, fmt.Errorf("%v: %w", err, cuda.ErrOutOfMemory)
	}
	f.virtMem += n
	ptr := f.nextPtr
	f.nextPtr += cuda.Ptr(n)
	f.virtPtrs[ptr] = n
	return ptr, nil
}

// MemFree passes through (or releases virtual bytes in over-commit mode).
func (f *Frontend) MemFree(p *sim.Proc, ptr cuda.Ptr) error {
	if f.closed {
		return cuda.ErrClosed
	}
	if !f.virtual {
		return f.base.MemFree(p, ptr)
	}
	n, ok := f.virtPtrs[ptr]
	if !ok {
		return fmt.Errorf("devlib: MemFree(%#x): unknown pointer", uint64(ptr))
	}
	delete(f.virtPtrs, ptr)
	f.virtMem -= n
	return f.swapper.SetVirtualUsage(f.clientID, f.virtMem)
}

// MemcpyHtoD passes through (copies are not throttled; only kernel
// execution consumes the compute share).
func (f *Frontend) MemcpyHtoD(p *sim.Proc, n int64) error {
	if f.closed {
		return cuda.ErrClosed
	}
	return f.base.MemcpyHtoD(p, n)
}

// MemcpyDtoH passes through.
func (f *Frontend) MemcpyDtoH(p *sim.Proc, n int64) error {
	if f.closed {
		return cuda.ErrClosed
	}
	return f.base.MemcpyDtoH(p, n)
}

// acquireLease obtains a valid lease, riding out strategy outages: on a
// down error it sleeps with capped exponential backoff, re-registers with
// the (replacement) strategy once it is serving again, and retries — up to
// reconnectAttempts before surfacing the error to the application.
func (f *Frontend) acquireLease(p *sim.Proc) error {
	// Seeded per client, so a holder kill that strands many frontends at the
	// same instant spreads their re-registration attempts apart.
	retry := backoff.New("devlib/"+f.clientID, reconnectBase, reconnectCap)
	for attempt := 0; ; attempt++ {
		lease, err := f.strat.Admit(p, f.clientID)
		if err == nil {
			f.lease = lease
			if !f.markedGrant && f.traceKey != "" {
				f.markedGrant = true
				f.tracer.Mark("devlib", "token-grant", f.traceKey, f.clientID)
			}
			if f.gated {
				// Handoff cost: IPC plus pipeline warm-up before the first
				// kernel of this hold can start. Ungated (overlap) admission
				// has no exchange to pay for.
				p.Sleep(f.cfg.Handoff)
			}
			if f.virtual {
				// Over-commit mode: bring the working set back onto the
				// device (it may have been swapped out while another tenant
				// held the token), paying the transfer time.
				return f.swapper.EnsureResident(p, f.clientID)
			}
			return nil
		}
		if !isDownErr(err) || attempt >= reconnectAttempts {
			return err
		}
		p.Sleep(retry.Next())
		if f.closed {
			return cuda.ErrClosed // torn down while waiting out the outage
		}
		if !f.strat.Down() && !f.strat.Registered(f.clientID) {
			// The replacement daemon is serving and has no memory of us.
			_ = f.strat.Register(f.clientID, f.share.resources())
			f.strat.SetTenant(f.clientID, f.tenant)
		}
	}
}

// LaunchKernel blocks until the container holds a valid lease, then
// executes the kernel. Under a gated strategy the lease is voluntarily
// released after completion if no further kernel is launched within the
// inactivity grace; under an ungated one the kernel's device time is
// accounted instead.
func (f *Frontend) LaunchKernel(p *sim.Proc, work time.Duration) error {
	if f.closed {
		return cuda.ErrClosed
	}
	f.releaseTmr.Stop()
	if !f.lease.Valid(p.Env().Now()) {
		if err := f.acquireLease(p); err != nil {
			return err
		}
	}
	f.markFirstLaunch()
	if err := f.base.LaunchKernel(p, work); err != nil {
		return err
	}
	if f.closed {
		return nil // closed while the kernel ran
	}
	if !f.gated {
		f.recordDevTime()
		return nil
	}
	if f.strat.Waiting(f.clientID) > 0 {
		// Work-conserving handover: someone is queued, so give the device
		// up right away instead of idling through the grace period.
		f.strat.Release(f.clientID, f.lease)
		f.lease = sharing.Lease{}
		return nil
	}
	f.releaseTmr = p.Env().After(f.cfg.Grace, f.releaseFn)
	return nil
}

// LaunchKernelAsync blocks until a valid lease is held (the interposition
// point is the launch call itself), then submits without waiting. The
// lease's release is deferred to Synchronize or quota expiry, letting apps
// batch a stream of kernels under one hold.
func (f *Frontend) LaunchKernelAsync(p *sim.Proc, work time.Duration) (*sim.Event, error) {
	if f.closed {
		return nil, cuda.ErrClosed
	}
	f.releaseTmr.Stop()
	if !f.lease.Valid(p.Env().Now()) {
		if err := f.acquireLease(p); err != nil {
			return nil, err
		}
	}
	f.markFirstLaunch()
	return f.base.LaunchKernelAsync(p, work)
}

// markFirstLaunch records the container's first kernel reaching the device
// — the interposition boundary between the library and the GPU, so the mark
// carries the "gpusim" component on the sharePod's chain.
func (f *Frontend) markFirstLaunch() {
	if f.markedFirst || f.traceKey == "" {
		return
	}
	f.markedFirst = true
	f.tracer.Mark("gpusim", "kernel-launch", f.traceKey, f.clientID)
}

// recordDevTime accounts the context's device-time delta to the tenant —
// the overlap strategies' usage attribution, feeding the fairness auditor
// the way token-hold spans do under the default strategy.
func (f *Frontend) recordDevTime() {
	if f.devCtx == nil {
		return
	}
	dt := f.devCtx.DeviceTime()
	if dt <= f.lastDevTime {
		return
	}
	delta := dt - f.lastDevTime
	f.lastDevTime = dt
	if f.devtimeCtr == nil {
		tenant := f.tenant
		if tenant == "" {
			tenant = f.clientID
		}
		f.devtimeCtr = f.devtimeVec.With(f.base.Device().UUID, tenant)
	}
	f.devtimeCtr.Add(int64(delta))
}

// Synchronize drains the stream, then hands the lease over (immediately if
// someone waits, after the grace otherwise) under a gated strategy, or
// accounts device time under an ungated one.
func (f *Frontend) Synchronize(p *sim.Proc) error {
	if f.closed {
		return cuda.ErrClosed
	}
	if err := f.base.Synchronize(p); err != nil {
		return err
	}
	if f.closed {
		return nil
	}
	if !f.gated {
		f.recordDevTime()
		return nil
	}
	if !f.lease.Valid(p.Env().Now()) {
		return nil
	}
	if f.strat.Waiting(f.clientID) > 0 {
		f.strat.Release(f.clientID, f.lease)
		f.lease = sharing.Lease{}
		return nil
	}
	f.releaseTmr = p.Env().After(f.cfg.Grace, f.releaseFn)
	return nil
}

// MemUsed reports the container's allocated bytes (virtual bytes in
// over-commit mode).
func (f *Frontend) MemUsed() int64 {
	if f.virtual {
		return f.virtMem
	}
	return f.base.MemUsed()
}

// Close releases any held lease, unregisters the container and closes the
// underlying driver handle. It never blocks, so it is safe from container
// teardown paths.
func (f *Frontend) Close(p *sim.Proc) error {
	if f.closed {
		return nil
	}
	f.closed = true
	f.releaseTmr.Stop()
	if !f.gated {
		f.recordDevTime()
	}
	f.strat.Unregister(f.clientID)
	return f.base.Close(p)
}

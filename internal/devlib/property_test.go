package devlib

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
	"time"

	"kubeshare/internal/cuda"
	"kubeshare/internal/gpusim"
	"kubeshare/internal/sim"
)

// TestPropertyGuaranteesUnderRandomShares: for any set of clients whose
// gpu_requests sum to ≤ 1, every backlogged (full-duty) client achieves at
// least its request and never exceeds its limit by more than one quota of
// window share.
func TestPropertyGuaranteesUnderRandomShares(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 4 {
			raw = raw[:4]
		}
		// Derive requests that sum ≤ 1.
		total := 0
		for _, v := range raw {
			total += int(v%50) + 5
		}
		var shares []Share
		for _, v := range raw {
			req := float64(int(v%50)+5) / float64(total)
			if total < 100 {
				req = float64(int(v%50)+5) / 100.0
			}
			lim := math.Min(1, req*2)
			shares = append(shares, Share{Request: req, Limit: lim, Memory: 0.2})
		}
		env := sim.NewEnv()
		dev := gpusim.NewDevice(env, gpusim.Config{NodeName: "n"})
		mgr := NewBackend(env, Config{}).Manager(dev.UUID())
		var fronts []*Frontend
		for i, s := range shares {
			fr, err := NewFrontend(cuda.Open(dev, fmt.Sprint(i)), mgr, fmt.Sprint(i), s)
			if err != nil {
				return false
			}
			fronts = append(fronts, fr)
			env.Go(fmt.Sprint(i), func(p *sim.Proc) {
				for !p.Killed() {
					if err := fr.LaunchKernel(p, 8*time.Millisecond); err != nil {
						return
					}
				}
			})
		}
		env.RunUntil(40 * time.Second)
		quotaShare := float64(DefaultQuota) / float64(DefaultWindow)
		ok := true
		for i, s := range shares {
			u := mgr.UsageRate(fmt.Sprint(i))
			if u < s.Request-0.08 {
				ok = false // guarantee violated
			}
			if u > s.Limit+2*quotaShare+0.02 {
				ok = false // limit violated
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyHoldSpansDisjoint: the token is never held by two clients at
// once — total hold time across clients can't exceed elapsed time.
func TestPropertyHoldSpansDisjoint(t *testing.T) {
	f := func(seed uint8) bool {
		n := int(seed%3) + 2
		env := sim.NewEnv()
		dev := gpusim.NewDevice(env, gpusim.Config{NodeName: "n"})
		mgr := NewBackend(env, Config{}).Manager(dev.UUID())
		for i := 0; i < n; i++ {
			fr, err := NewFrontend(cuda.Open(dev, fmt.Sprint(i)), mgr, fmt.Sprint(i), Share{Request: 1.0 / float64(n), Limit: 1, Memory: 0.1})
			if err != nil {
				return false
			}
			env.Go(fmt.Sprint(i), func(p *sim.Proc) {
				for !p.Killed() {
					if err := fr.LaunchKernel(p, time.Duration(3+i)*time.Millisecond); err != nil {
						return
					}
				}
			})
		}
		horizon := 20 * time.Second
		env.RunUntil(horizon)
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += mgr.UsageRate(fmt.Sprint(i))
		}
		// Window share can at most be 1 (plus small kernel-overrun slack).
		return sum <= 1.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

package sharing

import (
	"fmt"
	"sort"

	"kubeshare/internal/obs"
	"kubeshare/internal/sim"
)

// MPS is the concurrent-overlap strategy: every registered client is
// admitted immediately with an ungated lease, so kernels from different
// tenants run simultaneously on the device. The compute split is modeled by
// gpusim's weighted processor sharing — the frontend sets each context's
// compute weight to the container's gpu_request, mirroring MPS active
// thread percentages — and isolation is limited: a fault in one context
// poisons co-resident tenants (gpusim.Device.InjectContextFault).
type MPS struct {
	env     *sim.Env
	uuid    string
	clients map[string]*mpsClient
	seq     uint64
	down    bool
	admits  *obs.Counter
}

type mpsClient struct {
	id     string
	tenant string
	admits int64
}

// NewMPS creates the overlap strategy for one device. rt may be nil
// (telemetry disabled).
func NewMPS(env *sim.Env, uuid string, rt *obs.Runtime) *MPS {
	return &MPS{
		env:     env,
		uuid:    uuid,
		clients: make(map[string]*mpsClient),
		admits:  rt.CounterVec("kubeshare_sharing_admits_total", "gpu_uuid", "strategy").With(uuid, string(ModeMPS)),
	}
}

// Mode returns ModeMPS.
func (m *MPS) Mode() Mode { return ModeMPS }

// Gated reports false: leases never expire, kernels overlap.
func (m *MPS) Gated() bool { return false }

// Register adds a client. Requests are not summed or capped here —
// KubeShare-Sched keeps the per-device sum ≤ 1, and the weighted
// processor-sharing model degrades proportionally when it does not.
func (m *MPS) Register(id string, res Resources) error {
	if m.down {
		return ErrDown
	}
	if _, ok := m.clients[id]; ok {
		return fmt.Errorf("sharing: client %q already registered on %s", id, m.uuid)
	}
	if res.Request < 0 || res.Request > 1 {
		return fmt.Errorf("sharing: client %q request %v out of range", id, res.Request)
	}
	tenant := res.Tenant
	if tenant == "" {
		tenant = id
	}
	m.clients[id] = &mpsClient{id: id, tenant: tenant}
	return nil
}

// Unregister removes a client; its ungated lease dies with it.
func (m *MPS) Unregister(id string) { delete(m.clients, id) }

// SetTenant attributes id's admissions to tenant.
func (m *MPS) SetTenant(id, tenant string) {
	if c, ok := m.clients[id]; ok && tenant != "" {
		c.tenant = tenant
	}
}

// Registered reports whether id is known.
func (m *MPS) Registered(id string) bool {
	_, ok := m.clients[id]
	return ok
}

// Clients returns the number of registered clients.
func (m *MPS) Clients() int { return len(m.clients) }

// Admit grants an ungated lease immediately — overlap means nobody waits
// for admission; contention is resolved on the device by weighted
// processor sharing.
func (m *MPS) Admit(p *sim.Proc, id string) (Lease, error) {
	if m.down {
		return Lease{}, ErrDown
	}
	c, ok := m.clients[id]
	if !ok {
		return Lease{}, fmt.Errorf("sharing: admit by unregistered client %q: %w", id, ErrDown)
	}
	m.seq++
	c.admits++
	m.admits.Inc()
	return Lease{Seq: m.seq, Gated: false}, nil
}

// Release is a no-op: ungated leases are reclaimed by Unregister/Suspend.
func (m *MPS) Release(id string, l Lease) {}

// Waiting returns 0: admission never queues.
func (m *MPS) Waiting(id string) int { return 0 }

// Suspend drops all registrations and fails subsequent admissions with
// ErrDown until Resume, mirroring the token manager's crash semantics.
// Outstanding ungated leases stay valid: with no gate in the data path, a
// daemon outage does not stop already-admitted contexts (real MPS behaves
// the same way — the control daemon dying leaves running contexts alone).
func (m *MPS) Suspend() {
	if m.down {
		return
	}
	m.down = true
	m.clients = make(map[string]*mpsClient)
}

// Resume brings a suspended strategy back; clients must Register again.
func (m *MPS) Resume() { m.down = false }

// Down reports whether the strategy is suspended.
func (m *MPS) Down() bool { return m.down }

// UsageRate returns 0: overlap usage is metered at the device
// (gpusim.Context.DeviceTime → kubeshare_sharing_devtime_ns_total), not in
// the strategy.
func (m *MPS) UsageRate(id string) float64 { return 0 }

// Stats snapshots the strategy.
func (m *MPS) Stats() Stats {
	s := Stats{Clients: len(m.clients)}
	for _, c := range m.clients {
		s.Handoffs += c.admits
	}
	return s
}

// TenantStats aggregates admissions per tenant, sorted by tenant name.
func (m *MPS) TenantStats() []TenantUsage {
	byTenant := map[string]*TenantUsage{}
	for _, c := range m.clients {
		t, ok := byTenant[c.tenant]
		if !ok {
			t = &TenantUsage{Tenant: c.tenant}
			byTenant[c.tenant] = t
		}
		t.Admits += c.admits
	}
	out := make([]TenantUsage, 0, len(byTenant))
	for _, t := range byTenant {
		out = append(out, *t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

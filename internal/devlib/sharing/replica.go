package sharing

import (
	"fmt"
	"sort"
	"time"

	"kubeshare/internal/obs"
	"kubeshare/internal/sim"
)

// Replica is the replica time-slicing strategy: the device advertises N
// logical GPUs (slots). Clients are assigned to slots round-robin at
// registration and take plain FIFO quota-length turns within their slot —
// no usage windows, no gpu_request/gpu_limit arbitration. Slots are
// concurrent with respect to each other (their holders' kernels overlap on
// the physical device under gpusim's processor sharing), which is exactly
// the NVIDIA time-slicing device-plugin model: predictable turn order per
// replica, no cross-replica compute isolation.
type Replica struct {
	env      *sim.Env
	uuid     string
	quota    time.Duration
	slots    []*rslot
	clients  map[string]*rclient
	nextSlot int // registration round-robin cursor
	handoffs int64
	down     bool
	admits   *obs.Counter
	holdVec  *obs.CounterVec
}

type rclient struct {
	id      string
	tenant  string
	slot    int
	queued  *sim.Event // pending admit, nil when none
	admits  int64
	holdNS  int64
	holdCtr *obs.Counter // cached kubeshare_sharing_devtime_ns_total child
}

type rslot struct {
	queue    []*rclient
	holder   *rclient
	grant    time.Duration
	seq      uint64
	expiry   sim.Timer
	expireFn func()
}

// NewReplica creates the strategy with n logical slots (min 1) and the
// given turn quota. rt may be nil (telemetry disabled).
func NewReplica(env *sim.Env, uuid string, n int, quota time.Duration, rt *obs.Runtime) *Replica {
	if n < 1 {
		n = 1
	}
	if quota <= 0 {
		quota = 100 * time.Millisecond
	}
	r := &Replica{
		env:     env,
		uuid:    uuid,
		quota:   quota,
		clients: make(map[string]*rclient),
		admits:  rt.CounterVec("kubeshare_sharing_admits_total", "gpu_uuid", "strategy").With(uuid, string(ModeReplica)),
		holdVec: rt.CounterVec("kubeshare_sharing_devtime_ns_total", "gpu_uuid", "tenant"),
	}
	r.slots = make([]*rslot, n)
	for i := range r.slots {
		s := &rslot{}
		s.expireFn = func() { r.reclaim(s) }
		r.slots[i] = s
	}
	return r
}

// Mode returns ModeReplica.
func (r *Replica) Mode() Mode { return ModeReplica }

// Gated reports true: slot turns expire and are re-admitted.
func (r *Replica) Gated() bool { return true }

// Replicas returns the number of logical slots.
func (r *Replica) Replicas() int { return len(r.slots) }

// Register assigns the client to the next logical slot round-robin.
func (r *Replica) Register(id string, res Resources) error {
	if r.down {
		return ErrDown
	}
	if _, ok := r.clients[id]; ok {
		return fmt.Errorf("sharing: client %q already registered on %s", id, r.uuid)
	}
	tenant := res.Tenant
	if tenant == "" {
		tenant = id
	}
	r.clients[id] = &rclient{id: id, tenant: tenant, slot: r.nextSlot % len(r.slots)}
	r.nextSlot++
	return nil
}

// Unregister removes a client: a pending admit is abandoned and a held
// slot turn reclaimed immediately.
func (r *Replica) Unregister(id string) {
	c, ok := r.clients[id]
	if !ok {
		return
	}
	delete(r.clients, id)
	s := r.slots[c.slot]
	for i, qc := range s.queue {
		if qc == c {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			break
		}
	}
	if s.holder == c {
		r.reclaim(s)
	}
}

// SetTenant attributes id's slot time to tenant.
func (r *Replica) SetTenant(id, tenant string) {
	c, ok := r.clients[id]
	if !ok || tenant == "" || c.tenant == tenant {
		return
	}
	c.tenant = tenant
	c.holdCtr = nil // re-fetched lazily under the new tenant label
}

// Registered reports whether id is known.
func (r *Replica) Registered(id string) bool {
	_, ok := r.clients[id]
	return ok
}

// Clients returns the number of registered clients.
func (r *Replica) Clients() int { return len(r.clients) }

// Admit blocks p until id's slot grants it a turn. A client already
// holding a valid turn gets it back immediately.
func (r *Replica) Admit(p *sim.Proc, id string) (Lease, error) {
	if r.down {
		return Lease{}, ErrDown
	}
	c, ok := r.clients[id]
	if !ok {
		return Lease{}, fmt.Errorf("sharing: admit by unregistered client %q: %w", id, ErrDown)
	}
	s := r.slots[c.slot]
	if s.holder == c {
		return Lease{ExpiresAt: s.grant + r.quota, Seq: s.seq, Gated: true}, nil
	}
	if c.queued != nil {
		return Lease{}, fmt.Errorf("sharing: client %q has a concurrent admit in flight", id)
	}
	ev := sim.NewEvent(r.env)
	c.queued = ev
	s.queue = append(s.queue, c)
	r.trySchedule(s)
	v := p.Wait(ev)
	if err, ok := v.(error); ok {
		return Lease{}, err // suspended while waiting
	}
	return v.(Lease), nil
}

// Release voluntarily ends the turn. Stale leases are ignored.
func (r *Replica) Release(id string, l Lease) {
	c, ok := r.clients[id]
	if !ok {
		return
	}
	s := r.slots[c.slot]
	if s.holder != c || l.Seq != s.seq {
		return
	}
	r.reclaim(s)
}

// Waiting returns the number of clients queued on id's slot (0 for
// unknown ids): holding the turn only delays slot-mates.
func (r *Replica) Waiting(id string) int {
	c, ok := r.clients[id]
	if !ok {
		return 0
	}
	return len(r.slots[c.slot].queue)
}

// Suspend fails every queued admit with ErrDown, invalidates turns and
// drops registrations, mirroring the token manager's crash semantics.
func (r *Replica) Suspend() {
	if r.down {
		return
	}
	r.down = true
	for _, s := range r.slots {
		s.expiry.Stop()
		s.holder = nil
		s.seq++ // invalidate Release of pre-crash turns
		for _, c := range s.queue {
			ev := c.queued
			c.queued = nil
			ev.Trigger(ErrDown)
		}
		s.queue = nil
	}
	r.clients = make(map[string]*rclient)
	r.nextSlot = 0
}

// Resume brings a suspended strategy back; clients must Register again.
func (r *Replica) Resume() { r.down = false }

// Down reports whether the strategy is suspended.
func (r *Replica) Down() bool { return r.down }

// UsageRate returns 0: replica slots do not meter window usage; fairness
// is structural (round-robin turns).
func (r *Replica) UsageRate(id string) float64 { return 0 }

// Stats snapshots the strategy. Holder is the first busy slot's holder.
func (r *Replica) Stats() Stats {
	s := Stats{Clients: len(r.clients), Handoffs: r.handoffs}
	for _, sl := range r.slots {
		s.QueueDepth += len(sl.queue)
		if s.Holder == "" && sl.holder != nil {
			s.Holder = sl.holder.id
		}
	}
	return s
}

// TenantStats aggregates turns and hold time per tenant, sorted by name.
func (r *Replica) TenantStats() []TenantUsage {
	byTenant := map[string]*TenantUsage{}
	for _, c := range r.clients {
		t, ok := byTenant[c.tenant]
		if !ok {
			t = &TenantUsage{Tenant: c.tenant}
			byTenant[c.tenant] = t
		}
		t.Admits += c.admits
		t.HoldNS += c.holdNS
	}
	out := make([]TenantUsage, 0, len(byTenant))
	for _, t := range byTenant {
		out = append(out, *t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// reclaim records the holder's turn, clears the slot and reschedules it.
func (r *Replica) reclaim(s *rslot) {
	now := r.env.Now()
	if s.holder != nil {
		held := int64(now - s.grant)
		s.holder.holdNS += held
		if s.holder.holdCtr == nil {
			s.holder.holdCtr = r.holdVec.With(r.uuid, s.holder.tenant)
		}
		s.holder.holdCtr.Add(held)
		s.holder = nil
	}
	s.expiry.Stop()
	r.trySchedule(s)
}

// trySchedule grants the slot to the longest-waiting queued client — plain
// FIFO round-robin, no usage arbitration.
func (r *Replica) trySchedule(s *rslot) {
	if s.holder != nil || len(s.queue) == 0 {
		return
	}
	c := s.queue[0]
	s.queue = s.queue[1:]
	s.seq++
	r.handoffs++
	c.admits++
	r.admits.Inc()
	s.holder = c
	s.grant = r.env.Now()
	lease := Lease{ExpiresAt: s.grant + r.quota, Seq: s.seq, Gated: true}
	s.expiry = r.env.After(r.quota, s.expireFn)
	ev := c.queued
	c.queued = nil
	ev.Trigger(lease)
}

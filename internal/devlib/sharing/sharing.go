// Package sharing defines the pluggable GPU-sharing policy layer of the
// device library. A Strategy owns one physical device's admission control:
// it registers the device's containers, admits kernel work (possibly
// blocking the caller), accounts per-tenant usage, and survives the
// suspend/resume cycle of the vGPU pod hosting it.
//
// Three families of policies are provided:
//
//   - token (the default, implemented by devlib.TokenStrategy): Gemini-style
//     token-gated time-slicing — exclusive holds, sliding-window usage
//     accounting, gpu_request guarantees and gpu_limit caps.
//   - mps (NewMPS): MPS-style concurrent overlap — kernels from different
//     tenants run simultaneously; gpusim's weighted processor sharing models
//     the SM/compute-fraction split, and isolation is limited (a faulting
//     context can poison co-resident tenants, see
//     gpusim.Device.InjectContextFault).
//   - replica (NewReplica): replica time-slicing — the device advertises N
//     logical GPUs; clients are assigned to logical slots round-robin and
//     each slot runs plain FIFO quota turns without token usage accounting.
//
// Strategy implementations must stay below the control plane: they may not
// import kube/apiserver or kube/store (enforced by tools/detvet) — a policy
// holding an apiserver handle could bypass DevMgr's reconciliation.
package sharing

import (
	"errors"
	"fmt"
	"time"

	"kubeshare/internal/sim"
)

// Mode names a sharing policy. The empty string selects the default
// (token).
type Mode string

// Sharing modes. ModeMemQuant is not a distinct admission policy: it is
// token gating combined with absolute gpu_mem_bytes requests, named so
// experiments can label the arm.
const (
	ModeToken   Mode = "token"
	ModeMPS     Mode = "mps"
	ModeReplica Mode = "replica"
)

// ParseMode validates a sharing_mode string ("" is the default, token).
func ParseMode(s string) (Mode, error) {
	switch Mode(s) {
	case "", ModeToken:
		return ModeToken, nil
	case ModeMPS:
		return ModeMPS, nil
	case ModeReplica:
		return ModeReplica, nil
	}
	return "", fmt.Errorf("sharing: unknown sharing_mode %q (want token, mps or replica)", s)
}

// ErrDown is returned by strategy operations while the strategy is
// suspended — the vGPU pod hosting the device daemon died and its
// replacement has not come up yet. Frontends treat it (like
// devlib.ErrManagerDown) as transient and reconnect with bounded backoff.
var ErrDown = errors.New("sharing: strategy suspended")

// Resources is one client's demand, the values from the SharePodSpec.
type Resources struct {
	// Request is the guaranteed minimum compute share (gpu_request).
	Request float64
	// Limit is the maximum compute share (gpu_limit), already defaulted to
	// Request when the spec left it unset.
	Limit float64
	// MemFraction is the fractional device-memory share (gpu_mem).
	MemFraction float64
	// MemBytes is the absolute device-memory request (gpu_mem_bytes,
	// KAI-style); 0 means the fractional form is in use.
	MemBytes int64
	// Tenant is the owning sharePod name, when known at registration.
	Tenant string
}

// Lease is an admission grant. Gated leases expire (time-slicing turns);
// ungated leases stay valid until the strategy is suspended or the client
// unregisters (concurrent overlap).
type Lease struct {
	ExpiresAt time.Duration
	Seq       uint64
	Gated     bool
}

// Valid reports whether the lease still admits kernel work at time now.
func (l Lease) Valid(now time.Duration) bool {
	return l.Seq != 0 && (!l.Gated || now < l.ExpiresAt)
}

// Stats is a point-in-time snapshot of a strategy, for dashboards and
// debugging. Field meanings follow the token implementation; overlap
// strategies leave Holder empty and count admissions as Handoffs.
type Stats struct {
	// Holder is the client currently holding the (exclusive) grant
	// ("" when free or when the strategy admits concurrently).
	Holder string
	// QueueDepth is the number of pending admissions.
	QueueDepth int
	// Clients is the number of registered containers.
	Clients int
	// Handoffs is the total lease grants so far.
	Handoffs int64
	// SwappedBytes is the total memory-over-commitment swap traffic
	// (token strategy only).
	SwappedBytes int64
}

// TenantUsage is one tenant's accounting entry, aggregated over the
// tenant's clients. Strategies fill the fields they can measure.
type TenantUsage struct {
	Tenant string
	// Share is the measured usage share where the strategy meters it
	// (token: sliding-window hold share at the current instant).
	Share float64
	// Admits counts the tenant's lease grants.
	Admits int64
	// HoldNS is the tenant's accumulated gated-hold time in nanoseconds
	// (replica slots; token holds are metered in the
	// kubeshare_devlib_token_hold_ns_total family instead).
	HoldNS int64
}

// Strategy is one device's sharing policy. All methods run on the
// simulation goroutine; Admit may block the calling process.
type Strategy interface {
	// Mode names the policy.
	Mode() Mode
	// Gated reports whether leases expire and must be re-admitted (time
	// slicing). Frontends only pay handoff costs, arm grace timers and
	// release work-conservingly under a gated strategy.
	Gated() bool

	// Register adds a container with its resource demand.
	Register(id string, res Resources) error
	// Unregister removes a container; pending admissions are abandoned and
	// held grants reclaimed. Safe for unknown ids.
	Unregister(id string)
	// SetTenant attributes id's usage to tenant (the owning sharePod).
	SetTenant(id, tenant string)
	// Registered reports whether id is a known client.
	Registered(id string) bool
	// Clients returns the number of registered clients.
	Clients() int

	// Admit blocks p until id may run kernel work and returns the lease.
	Admit(p *sim.Proc, id string) (Lease, error)
	// Release voluntarily returns a gated lease; stale leases are ignored.
	Release(id string, l Lease)
	// Waiting returns how many clients id would keep waiting by holding on
	// to its lease — the frontend releases work-conservingly when > 0.
	Waiting(id string) int

	// Suspend models the death of the vGPU pod hosting the strategy:
	// pending admissions fail, leases are invalidated and registrations
	// dropped. Resume brings it back (clients re-register on reconnect);
	// Down reports the suspended state.
	Suspend()
	Resume()
	Down() bool

	// UsageRate returns id's measured usage share at the current instant
	// (0 when the strategy does not meter usage).
	UsageRate(id string) float64
	// Stats returns a point-in-time snapshot.
	Stats() Stats
	// TenantStats returns per-tenant accounting, sorted by tenant name.
	TenantStats() []TenantUsage
}

package sharing

import (
	"errors"
	"testing"
	"time"

	"kubeshare/internal/sim"
)

func TestParseMode(t *testing.T) {
	for s, want := range map[string]Mode{
		"": ModeToken, "token": ModeToken, "mps": ModeMPS, "replica": ModeReplica,
	} {
		got, err := ParseMode(s)
		if err != nil || got != want {
			t.Fatalf("ParseMode(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseMode("nccl"); err == nil {
		t.Fatal("ParseMode accepted an unknown mode")
	}
}

func TestLeaseValidity(t *testing.T) {
	if (Lease{}).Valid(0) {
		t.Fatal("zero lease must be invalid")
	}
	gated := Lease{ExpiresAt: 10 * time.Millisecond, Seq: 1, Gated: true}
	if !gated.Valid(5*time.Millisecond) || gated.Valid(10*time.Millisecond) {
		t.Fatal("gated lease must be valid strictly before expiry only")
	}
	ungated := Lease{Seq: 1}
	if !ungated.Valid(time.Hour) {
		t.Fatal("ungated lease must not expire")
	}
}

func TestMPSAdmitsImmediatelyAndConcurrently(t *testing.T) {
	env := sim.NewEnv()
	m := NewMPS(env, "gpu-0", nil)
	for _, id := range []string{"a", "b", "c"} {
		if err := m.Register(id, Resources{Request: 0.3, Limit: 0.5}); err != nil {
			t.Fatalf("register %s: %v", id, err)
		}
	}
	env.Go("admits", func(p *sim.Proc) {
		start := env.Now()
		for _, id := range []string{"a", "b", "c"} {
			l, err := m.Admit(p, id)
			if err != nil {
				t.Errorf("admit %s: %v", id, err)
			}
			if !l.Valid(env.Now()+time.Hour) || l.Gated {
				t.Errorf("admit %s: lease %+v, want ungated and non-expiring", id, l)
			}
		}
		if env.Now() != start {
			t.Errorf("MPS admission blocked for %v, want immediate", env.Now()-start)
		}
	})
	env.Run()
	if m.Waiting("a") != 0 {
		t.Fatalf("Waiting = %d, want 0 (overlap never queues)", m.Waiting("a"))
	}
	if s := m.Stats(); s.Handoffs != 3 || s.Clients != 3 || s.Holder != "" {
		t.Fatalf("stats %+v, want 3 admits, 3 clients, no exclusive holder", s)
	}
}

func TestMPSRegisterValidation(t *testing.T) {
	env := sim.NewEnv()
	m := NewMPS(env, "gpu-0", nil)
	if err := m.Register("a", Resources{Request: 0.3}); err != nil {
		t.Fatal(err)
	}
	if err := m.Register("a", Resources{Request: 0.3}); err == nil {
		t.Fatal("duplicate register accepted")
	}
	if err := m.Register("b", Resources{Request: 1.5}); err == nil {
		t.Fatal("out-of-range request accepted")
	}
}

func TestMPSSuspendDropsRegistrationsButNotLeases(t *testing.T) {
	env := sim.NewEnv()
	m := NewMPS(env, "gpu-0", nil)
	if err := m.Register("a", Resources{Request: 0.5}); err != nil {
		t.Fatal(err)
	}
	var lease Lease
	env.Go("a", func(p *sim.Proc) {
		var err error
		if lease, err = m.Admit(p, "a"); err != nil {
			t.Errorf("admit: %v", err)
		}
		m.Suspend()
		if !m.Down() || m.Registered("a") || m.Clients() != 0 {
			t.Error("suspend must drop registrations and report Down")
		}
		if _, err := m.Admit(p, "a"); !errors.Is(err, ErrDown) {
			t.Errorf("admit while down: %v, want ErrDown", err)
		}
		// The already-granted ungated lease survives the daemon outage —
		// running contexts are not stopped by a control-plane crash.
		if !lease.Valid(env.Now() + time.Hour) {
			t.Error("outstanding ungated lease invalidated by suspend")
		}
		m.Resume()
		if err := m.Register("a", Resources{Request: 0.5}); err != nil {
			t.Errorf("re-register after resume: %v", err)
		}
		if _, err := m.Admit(p, "a"); err != nil {
			t.Errorf("admit after resume: %v", err)
		}
	})
	env.Run()
}

func TestReplicaRoundRobinSlotAssignment(t *testing.T) {
	env := sim.NewEnv()
	r := NewReplica(env, "gpu-0", 2, 100*time.Millisecond, nil)
	for _, id := range []string{"a", "b", "c", "d"} {
		if err := r.Register(id, Resources{Request: 0.25}); err != nil {
			t.Fatalf("register %s: %v", id, err)
		}
	}
	// a,c share slot 0 and b,d slot 1: both slot leaders admit instantly
	// (their slots are free) while the second client of each slot queues.
	env.Go("holders", func(p *sim.Proc) {
		for _, id := range []string{"a", "b"} {
			start := env.Now()
			if _, err := r.Admit(p, id); err != nil {
				t.Errorf("admit %s: %v", id, err)
			}
			if env.Now() != start {
				t.Errorf("slot leader %s blocked", id)
			}
		}
	})
	env.Go("c", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		if _, err := r.Admit(p, "c"); err != nil {
			t.Errorf("admit c: %v", err)
		}
		// c only gets the turn when slot 0 rotates at quota expiry.
		if env.Now() != 100*time.Millisecond {
			t.Errorf("c admitted at %v, want 100ms (quota expiry)", env.Now())
		}
	})
	env.Run()
	if w := r.Waiting("d"); w != 0 {
		t.Fatalf("Waiting(d) = %d, want 0 (nothing queued on slot 1)", w)
	}
}

func TestReplicaReleaseHandsOffWithinSlot(t *testing.T) {
	env := sim.NewEnv()
	r := NewReplica(env, "gpu-0", 1, 100*time.Millisecond, nil)
	for _, id := range []string{"a", "b"} {
		if err := r.Register(id, Resources{}); err != nil {
			t.Fatal(err)
		}
	}
	env.Go("a", func(p *sim.Proc) {
		l, err := r.Admit(p, "a")
		if err != nil {
			t.Errorf("admit a: %v", err)
		}
		p.Sleep(10 * time.Millisecond)
		if r.Waiting("a") != 1 {
			t.Errorf("Waiting(a) = %d, want 1 (b queued)", r.Waiting("a"))
		}
		r.Release("a", l)
		// A stale release (old seq) must not steal b's new turn.
		r.Release("a", l)
	})
	env.Go("b", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		if _, err := r.Admit(p, "b"); err != nil {
			t.Errorf("admit b: %v", err)
		}
		if env.Now() != 10*time.Millisecond {
			t.Errorf("b admitted at %v, want 10ms (a's voluntary release)", env.Now())
		}
	})
	env.Run()
	if s := r.Stats(); s.Handoffs != 2 {
		t.Fatalf("handoffs = %d, want 2", s.Handoffs)
	}
}

func TestReplicaUnregisterHolderReclaims(t *testing.T) {
	env := sim.NewEnv()
	r := NewReplica(env, "gpu-0", 1, time.Second, nil)
	for _, id := range []string{"a", "b"} {
		if err := r.Register(id, Resources{}); err != nil {
			t.Fatal(err)
		}
	}
	env.Go("a", func(p *sim.Proc) {
		if _, err := r.Admit(p, "a"); err != nil {
			t.Errorf("admit a: %v", err)
		}
		p.Sleep(5 * time.Millisecond)
		r.Unregister("a")
	})
	env.Go("b", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		if _, err := r.Admit(p, "b"); err != nil {
			t.Errorf("admit b: %v", err)
		}
		if env.Now() != 5*time.Millisecond {
			t.Errorf("b admitted at %v, want 5ms (a unregistered)", env.Now())
		}
	})
	env.Run()
}

func TestReplicaSuspendFailsQueuedAdmits(t *testing.T) {
	env := sim.NewEnv()
	r := NewReplica(env, "gpu-0", 1, time.Second, nil)
	for _, id := range []string{"a", "b"} {
		if err := r.Register(id, Resources{}); err != nil {
			t.Fatal(err)
		}
	}
	var held Lease
	env.Go("a", func(p *sim.Proc) {
		var err error
		if held, err = r.Admit(p, "a"); err != nil {
			t.Errorf("admit a: %v", err)
		}
	})
	env.Go("b", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		if _, err := r.Admit(p, "b"); !errors.Is(err, ErrDown) {
			t.Errorf("queued admit during suspend: %v, want ErrDown", err)
		}
	})
	env.Go("crash", func(p *sim.Proc) {
		p.Sleep(2 * time.Millisecond)
		r.Suspend()
		// Pre-crash turns are fenced: releasing one is a no-op, and the
		// registrations are gone until clients reconnect.
		r.Release("a", held)
		if r.Clients() != 0 || !r.Down() {
			t.Error("suspend must drop registrations and report Down")
		}
		r.Resume()
		if err := r.Register("a", Resources{}); err != nil {
			t.Errorf("re-register after resume: %v", err)
		}
	})
	env.Run()
}

func TestReplicaTenantStats(t *testing.T) {
	env := sim.NewEnv()
	r := NewReplica(env, "gpu-0", 2, 50*time.Millisecond, nil)
	for _, id := range []string{"a", "b"} {
		if err := r.Register(id, Resources{}); err != nil {
			t.Fatal(err)
		}
	}
	r.SetTenant("a", "pod-a")
	r.SetTenant("b", "pod-b")
	env.Go("run", func(p *sim.Proc) {
		la, err := r.Admit(p, "a")
		if err != nil {
			t.Errorf("admit a: %v", err)
		}
		lb, err := r.Admit(p, "b")
		if err != nil {
			t.Errorf("admit b: %v", err)
		}
		p.Sleep(10 * time.Millisecond)
		r.Release("a", la)
		p.Sleep(5 * time.Millisecond)
		r.Release("b", lb)
	})
	env.Run()
	ts := r.TenantStats()
	if len(ts) != 2 || ts[0].Tenant != "pod-a" || ts[1].Tenant != "pod-b" {
		t.Fatalf("tenant stats %+v, want sorted pod-a, pod-b", ts)
	}
	if ts[0].HoldNS != int64(10*time.Millisecond) || ts[1].HoldNS != int64(15*time.Millisecond) {
		t.Fatalf("hold ns %d/%d, want 10ms/15ms", ts[0].HoldNS, ts[1].HoldNS)
	}
	if ts[0].Admits != 1 || ts[1].Admits != 1 {
		t.Fatalf("admits %d/%d, want 1/1", ts[0].Admits, ts[1].Admits)
	}
}

package devlib

import (
	"sort"

	"kubeshare/internal/devlib/sharing"
	"kubeshare/internal/sim"
)

// TokenStrategy re-expresses the Gemini-style token time-slicing manager as
// the default sharing.Strategy. It is a zero-cost adapter over
// *TokenManager: every interface method maps 1:1 onto the manager call the
// frontend made before the sharing layer existed, so the token path's event
// order (and therefore every golden) is unchanged.
type TokenStrategy struct {
	*TokenManager
}

var _ sharing.Strategy = TokenStrategy{}
var _ Swapper = TokenStrategy{}

// Mode returns sharing.ModeToken.
func (t TokenStrategy) Mode() sharing.Mode { return sharing.ModeToken }

// Gated reports true: tokens expire and are re-acquired.
func (t TokenStrategy) Gated() bool { return true }

// Register maps the resource demand onto the manager's request/limit pair.
func (t TokenStrategy) Register(id string, res sharing.Resources) error {
	if err := t.TokenManager.Register(id, res.Request, res.Limit); err != nil {
		return err
	}
	if res.Tenant != "" {
		t.TokenManager.SetTenant(id, res.Tenant)
	}
	return nil
}

// Admit acquires the device token, blocking until granted.
func (t TokenStrategy) Admit(p *sim.Proc, id string) (sharing.Lease, error) {
	tok, err := t.TokenManager.Acquire(p, id)
	if err != nil {
		return sharing.Lease{}, err
	}
	return sharing.Lease{ExpiresAt: tok.ExpiresAt, Seq: tok.seq, Gated: true}, nil
}

// Release returns the token; stale leases are ignored by the manager.
func (t TokenStrategy) Release(id string, l sharing.Lease) {
	t.TokenManager.Release(id, Token{ExpiresAt: l.ExpiresAt, seq: l.Seq})
}

// Waiting reports the queue depth (the token is device-global, so the id is
// irrelevant).
func (t TokenStrategy) Waiting(id string) int { return t.TokenManager.Waiting() }

// TenantStats aggregates sliding-window usage and grants per tenant.
func (t TokenStrategy) TenantStats() []sharing.TenantUsage {
	m := t.TokenManager
	byTenant := map[string]*sharing.TenantUsage{}
	for id, c := range m.clients {
		u, ok := byTenant[c.tenant]
		if !ok {
			u = &sharing.TenantUsage{Tenant: c.tenant}
			byTenant[c.tenant] = u
		}
		u.Share += m.UsageRate(id)
		u.Admits += c.grants
	}
	out := make([]sharing.TenantUsage, 0, len(byTenant))
	for _, u := range byTenant {
		out = append(out, *u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// Swapper is the optional memory-over-commitment surface a strategy may
// provide (today only the token strategy does — swapping happens at token
// handoff, which needs a gate). Frontends type-assert for it when
// Config.MemOvercommit is set and fall back to plain fractional enforcement
// when the strategy cannot swap.
type Swapper interface {
	// EnableSwap turns on the swap broker with the device capacity and
	// host↔device bandwidth (idempotent).
	EnableSwap(capacity, bw int64)
	// SetVirtualUsage declares id's total virtual allocation.
	SetVirtualUsage(id string, bytes int64) error
	// EnsureResident blocks p until id's working set is on the device,
	// paying transfer time for swap-ins (and evictions of others).
	EnsureResident(p *sim.Proc, id string) error
}

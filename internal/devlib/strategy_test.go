package devlib

import (
	"testing"
	"time"

	"kubeshare/internal/cuda"
	"kubeshare/internal/devlib/sharing"
	"kubeshare/internal/gpusim"
	"kubeshare/internal/sim"
	"kubeshare/internal/simrand"
)

// strategyRig is a single-device bench whose frontends go through an
// explicit sharing.Strategy from the backend registry rather than the
// NewFrontend compatibility wrapper.
type strategyRig struct {
	env   *sim.Env
	dev   *gpusim.Device
	b     *Backend
	strat sharing.Strategy
}

func newStrategyRig(t *testing.T, cfg Config, mode sharing.Mode) *strategyRig {
	t.Helper()
	env := sim.NewEnv()
	dev := gpusim.NewDevice(env, gpusim.Config{NodeName: "n"})
	b := NewBackend(env, cfg)
	strat, err := b.StrategyFor(dev.UUID(), mode)
	if err != nil {
		t.Fatalf("strategy %q: %v", mode, err)
	}
	return &strategyRig{env: env, dev: dev, b: b, strat: strat}
}

func (r *strategyRig) addClient(t *testing.T, id string, share Share) *Frontend {
	t.Helper()
	f, err := NewFrontendWith(cuda.Open(r.dev, id), r.strat, id, share, r.b.Config())
	if err != nil {
		t.Fatalf("frontend %s: %v", id, err)
	}
	return f
}

// TestPropertyTokenStatsInvariantUnderStrategyIndirection runs the identical
// randomized two-client workload twice — once through the NewFrontend
// compatibility wrapper (which wraps the TokenManager itself) and once
// through the backend's strategy registry (StrategyFor → TokenStrategy) —
// and demands bit-identical outcomes: same kernel counts, same device busy
// time, field-identical Stats and TenantStats. The strategy indirection must
// be pure plumbing for the token policy.
func TestPropertyTokenStatsInvariantUnderStrategyIndirection(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := simrand.New(seed)
		shares := [2]Share{}
		kernels := [2]time.Duration{}
		for i := range shares {
			req := 0.2 + 0.3*rng.Float64()
			shares[i] = Share{Request: req, Limit: req * 1.5, Memory: 0.3}
			kernels[i] = time.Duration(2+rng.Intn(10)) * time.Millisecond
		}

		type outcome struct {
			counts [2]int
			busy   time.Duration
			stats  Stats
			tenant []sharing.TenantUsage
		}
		run := func(viaRegistry bool) outcome {
			var o outcome
			var mgr *TokenManager
			ids := [2]string{"a", "b"}
			if viaRegistry {
				r := newStrategyRig(t, Config{}, sharing.ModeToken)
				mgr = r.b.Manager(r.dev.UUID())
				for i, id := range ids {
					f := r.addClient(t, id, shares[i])
					r.env.Go(id, trainLoop(f, kernels[i], time.Millisecond, &o.counts[i]))
				}
				r.env.RunUntil(5 * time.Second)
				o.busy = r.dev.BusyTime()
			} else {
				r := newRig(Config{})
				mgr = r.mgr
				for i, id := range ids {
					f := r.addClient(t, id, shares[i])
					r.env.Go(id, trainLoop(f, kernels[i], time.Millisecond, &o.counts[i]))
				}
				r.env.RunUntil(5 * time.Second)
				o.busy = r.dev.BusyTime()
			}
			o.stats = mgr.Stats()
			o.tenant = TokenStrategy{mgr}.TenantStats()
			return o
		}

		direct, registry := run(false), run(true)
		if direct.counts != registry.counts {
			t.Fatalf("seed %d: kernel counts %v vs %v", seed, direct.counts, registry.counts)
		}
		if direct.busy != registry.busy {
			t.Fatalf("seed %d: busy %v vs %v", seed, direct.busy, registry.busy)
		}
		if direct.stats != registry.stats {
			t.Fatalf("seed %d: stats %+v vs %+v", seed, direct.stats, registry.stats)
		}
		if len(direct.tenant) != len(registry.tenant) {
			t.Fatalf("seed %d: tenant stats %v vs %v", seed, direct.tenant, registry.tenant)
		}
		for i := range direct.tenant {
			if direct.tenant[i] != registry.tenant[i] {
				t.Fatalf("seed %d: tenant[%d] %+v vs %+v", seed,
					i, direct.tenant[i], registry.tenant[i])
			}
		}
	}
}

// TestMPSFrontendsOverlap drives two full-duty clients through frontends on
// the MPS strategy: with ungated leases and no token turns, both must stay
// on the device simultaneously and the device must be busy essentially the
// whole run.
func TestMPSFrontendsOverlap(t *testing.T) {
	r := newStrategyRig(t, Config{Mode: sharing.ModeMPS}, sharing.ModeMPS)
	fa := r.addClient(t, "a", Share{Request: 0.5, Limit: 0.5, Memory: 0.3})
	fb := r.addClient(t, "b", Share{Request: 0.5, Limit: 0.5, Memory: 0.3})
	na, nb := 0, 0
	r.env.Go("a", trainLoop(fa, 10*time.Millisecond, 0, &na))
	r.env.Go("b", trainLoop(fb, 10*time.Millisecond, 0, &nb))
	r.env.RunUntil(10 * time.Second)
	util := r.dev.BusyTime().Seconds() / 10.0
	if util < 0.99 {
		t.Fatalf("utilization %.3f, want ≈1 (no handoff gaps under overlap)", util)
	}
	// Equal weights: both make the same progress, each at half rate
	// (10ms kernels at 50% → 20ms each, ~500 in 10s).
	if na < 450 || nb < 450 || na != nb {
		t.Fatalf("kernel counts %d/%d, want equal ≈500", na, nb)
	}
	if s := r.strat.Stats(); s.Holder != "" {
		t.Fatalf("holder %q, want none under concurrent admission", s.Holder)
	}
}

// TestReplicaFrontendsRotate drives three clients on a two-slot replica
// strategy: the pair sharing a slot time-slice it while the lone client on
// the other slot runs unimpeded alongside them.
func TestReplicaFrontendsRotate(t *testing.T) {
	r := newStrategyRig(t, Config{Mode: sharing.ModeReplica, Replicas: 2}, sharing.ModeReplica)
	counts := [3]int{}
	for i, id := range []string{"a", "b", "c"} {
		f := r.addClient(t, id, Share{Request: 0.3, Limit: 1, Memory: 0.2})
		r.env.Go(id, trainLoop(f, 10*time.Millisecond, 0, &counts[i]))
	}
	r.env.RunUntil(10 * time.Second)
	// a and c share slot 0 (round-robin registration); b owns slot 1. All
	// three must progress — FIFO turns starve nobody.
	for i, n := range counts {
		if n < 50 {
			t.Fatalf("client %d made %d kernels, want ≥50 (starved?)", i, n)
		}
	}
	// b never waits for a turn, so it outpaces the slot-sharing pair.
	if counts[1] <= counts[0] || counts[1] <= counts[2] {
		t.Fatalf("counts %v: lone-slot client must outpace slot-sharers", counts)
	}
}

// TestSwapInterleavedWithSuspendResume crashes the token manager mid-run
// under memory over-commitment: queued acquires fail over to the reconnect
// path, the broker's residency bookkeeping survives the outage (it lives
// with the device, not the daemon's client table), and both tenants keep
// making progress — and keep swapping — after the resume.
func TestSwapInterleavedWithSuspendResume(t *testing.T) {
	env, dev, mgr := swapRig(1000, 1<<40)
	fa, err := NewFrontend(cuda.Open(dev, "a"), mgr, "a", Share{Request: 0.5, Limit: 1, Memory: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	fb, err := NewFrontend(cuda.Open(dev, "b"), mgr, "b", Share{Request: 0.5, Limit: 1, Memory: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	na, nb := 0, 0
	env.Go("a", func(p *sim.Proc) {
		fa.MemAlloc(p, 700)
		trainLoop(fa, 5*time.Millisecond, time.Millisecond, &na)(p)
	})
	env.Go("b", func(p *sim.Proc) {
		fb.MemAlloc(p, 700)
		trainLoop(fb, 5*time.Millisecond, time.Millisecond, &nb)(p)
	})
	var atCrash, swappedAtCrash = [2]int{}, int64(0)
	env.Go("chaos", func(p *sim.Proc) {
		p.Sleep(time.Second)
		mgr.Suspend()
		atCrash = [2]int{na, nb}
		swappedAtCrash = mgr.SwappedBytes()
		p.Sleep(50 * time.Millisecond)
		mgr.Resume()
	})
	env.RunUntil(3 * time.Second)
	if na <= atCrash[0] || nb <= atCrash[1] {
		t.Fatalf("progress stalled after resume: %v then %d/%d", atCrash, na, nb)
	}
	if mgr.SwappedBytes() <= swappedAtCrash {
		t.Fatalf("swap traffic stalled after resume: %d then %d",
			swappedAtCrash, mgr.SwappedBytes())
	}
	// Both working sets stayed intact across the crash: each EnsureResident
	// still moves the full 700-byte set, never a partial one.
	if mgr.SwappedBytes()%700 != 0 {
		t.Fatalf("swapped %d bytes, want a multiple of the 700-byte sets", mgr.SwappedBytes())
	}
}

// TestSwapInterleavedWithUnregister closes one over-committed tenant mid-run:
// its residency is dropped without transfer cost and the survivor stops
// paying swap traffic entirely — its set now fits alone.
func TestSwapInterleavedWithUnregister(t *testing.T) {
	env, dev, mgr := swapRig(1000, 1<<40)
	fa, _ := NewFrontend(cuda.Open(dev, "a"), mgr, "a", Share{Request: 0.5, Limit: 1, Memory: 0.7})
	fb, _ := NewFrontend(cuda.Open(dev, "b"), mgr, "b", Share{Request: 0.5, Limit: 1, Memory: 0.7})
	nb := 0
	env.Go("a", func(p *sim.Proc) {
		fa.MemAlloc(p, 700)
		for i := 0; i < 50; i++ {
			if err := fa.LaunchKernel(p, 5*time.Millisecond); err != nil {
				t.Errorf("a: %v", err)
				return
			}
		}
		fa.Close(p)
	})
	env.Go("b", func(p *sim.Proc) {
		fb.MemAlloc(p, 700)
		trainLoop(fb, 5*time.Millisecond, time.Millisecond, &nb)(p)
	})
	var swappedAfterClose int64
	env.Go("probe", func(p *sim.Proc) {
		p.Sleep(2 * time.Second) // well past a's 50 kernels
		if mgr.ResidentBytes("a") != 0 {
			t.Errorf("a still resident after Close: %d bytes", mgr.ResidentBytes("a"))
		}
		swappedAfterClose = mgr.SwappedBytes()
		p.Sleep(time.Second)
		if got := mgr.SwappedBytes(); got != swappedAfterClose {
			t.Errorf("swap traffic continued after sole tenant fits: %d then %d",
				swappedAfterClose, got)
		}
	})
	env.RunUntil(4 * time.Second)
	if nb == 0 {
		t.Fatal("survivor made no progress")
	}
}

package devlib

import (
	"fmt"
	"sort"
	"time"

	"kubeshare/internal/sim"
)

// Memory over-commitment support (the paper's §6 discussion of
// GPUswap-style virtual memory): when Config.MemOvercommit is enabled, the
// sum of the containers' gpu_mem shares on a device may exceed 1. Container
// memory becomes virtual; the token manager's memory broker keeps track of
// which containers' working sets are resident, and swaps cold sets out to
// host memory (paying PCIe transfer time) when the next token holder's set
// must be brought in. This trades GPU memory capacity for handoff latency —
// exactly the risk the paper calls out.

// swapState is the per-device residency bookkeeping inside a TokenManager.
type swapState struct {
	capacity int64
	// virtual is each client's allocated (virtual) bytes; resident is the
	// subset currently on the device.
	virtual  map[string]int64
	resident map[string]int64
	lastUse  map[string]time.Duration
	bw       int64 // swap bandwidth, bytes/s
	// swapped accumulates total swapped bytes (observability/ablation).
	swapped int64
}

func newSwapState(capacity, bw int64) *swapState {
	return &swapState{
		capacity: capacity,
		virtual:  make(map[string]int64),
		resident: make(map[string]int64),
		lastUse:  make(map[string]time.Duration),
		bw:       bw,
	}
}

// EnableSwap turns on the memory broker for this device. capacity is the
// physical device memory; bw the host↔device transfer bandwidth.
func (m *TokenManager) EnableSwap(capacity, bw int64) {
	if m.swap == nil {
		m.swap = newSwapState(capacity, bw)
	}
}

// SwapEnabled reports whether the broker is active.
func (m *TokenManager) SwapEnabled() bool { return m.swap != nil }

// SwappedBytes returns the total bytes transferred by swapping so far.
func (m *TokenManager) SwappedBytes() int64 {
	if m.swap == nil {
		return 0
	}
	return m.swap.swapped
}

// ResidentBytes returns a client's currently resident bytes.
func (m *TokenManager) ResidentBytes(id string) int64 {
	if m.swap == nil {
		return 0
	}
	return m.swap.resident[id]
}

// SetVirtualUsage records a client's allocated virtual bytes. Growth beyond
// current residency becomes resident lazily at the next EnsureResident;
// shrinking frees residency immediately.
func (m *TokenManager) SetVirtualUsage(id string, bytes int64) error {
	if m.swap == nil {
		return fmt.Errorf("devlib: swap not enabled on %s", m.uuid)
	}
	if bytes > m.swap.capacity {
		return fmt.Errorf("devlib: client %s working set %d exceeds device capacity %d",
			id, bytes, m.swap.capacity)
	}
	m.swap.virtual[id] = bytes
	if m.swap.resident[id] > bytes {
		m.swap.resident[id] = bytes
	}
	if bytes == 0 {
		delete(m.swap.virtual, id)
		delete(m.swap.resident, id)
	}
	return nil
}

// DropResidency releases a departing client's memory without transfer cost
// (its contents are discarded, not swapped).
func (m *TokenManager) DropResidency(id string) {
	if m.swap == nil {
		return
	}
	delete(m.swap.virtual, id)
	delete(m.swap.resident, id)
	delete(m.swap.lastUse, id)
}

// EnsureResident blocks p until id's full virtual set is resident, evicting
// the least-recently-used other clients as needed and sleeping for the PCIe
// transfer time of everything moved. It must be called while id holds the
// token (the device is quiescent for everyone else).
func (m *TokenManager) EnsureResident(p *sim.Proc, id string) error {
	s := m.swap
	if s == nil {
		return nil
	}
	now := p.Env().Now()
	s.lastUse[id] = now
	need := s.virtual[id] - s.resident[id]
	if need <= 0 {
		return nil
	}
	var used int64
	for _, r := range s.resident {
		used += r
	}
	free := s.capacity - used
	var moved int64
	if free < need {
		// Evict least-recently-used other clients until the set fits.
		type victim struct {
			id   string
			last time.Duration
		}
		var victims []victim
		for vid := range s.resident {
			if vid != id && s.resident[vid] > 0 {
				victims = append(victims, victim{vid, s.lastUse[vid]})
			}
		}
		sort.Slice(victims, func(i, j int) bool {
			if victims[i].last != victims[j].last {
				return victims[i].last < victims[j].last
			}
			return victims[i].id < victims[j].id
		})
		for _, v := range victims {
			if free >= need {
				break
			}
			out := s.resident[v.id]
			free += out
			moved += out // swap-out transfer
			s.resident[v.id] = 0
		}
		if free < need {
			return fmt.Errorf("devlib: cannot make %d bytes resident for %s (capacity %d)",
				s.virtual[id], id, s.capacity)
		}
	}
	moved += need // swap-in transfer
	s.resident[id] = s.virtual[id]
	s.swapped += moved
	if s.bw > 0 && moved > 0 {
		p.Sleep(time.Duration(float64(moved) / float64(s.bw) * float64(time.Second)))
	}
	return nil
}

package devlib

import (
	"errors"
	"testing"
	"time"

	"kubeshare/internal/cuda"
	"kubeshare/internal/gpusim"
	"kubeshare/internal/sim"
)

// swapRig builds a small-memory device with an over-commit-enabled backend.
func swapRig(memBytes int64, bw int64) (*sim.Env, *gpusim.Device, *TokenManager) {
	env := sim.NewEnv()
	dev := gpusim.NewDevice(env, gpusim.Config{NodeName: "n", MemoryBytes: memBytes})
	cfg := Config{MemOvercommit: true, SwapBandwidth: bw}
	mgr := NewBackend(env, cfg).Manager(dev.UUID())
	return env, dev, mgr
}

func TestOvercommitAllocBeyondPhysical(t *testing.T) {
	// Two tenants, each allocating 70% of device memory: impossible
	// physically, fine virtually.
	env, dev, mgr := swapRig(1000, 1<<40)
	fa, err := NewFrontend(cuda.Open(dev, "a"), mgr, "a", Share{Request: 0.5, Limit: 1, Memory: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	fb, err := NewFrontend(cuda.Open(dev, "b"), mgr, "b", Share{Request: 0.5, Limit: 1, Memory: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	env.Go("t", func(p *sim.Proc) {
		if _, err := fa.MemAlloc(p, 700); err != nil {
			t.Errorf("a alloc: %v", err)
		}
		if _, err := fb.MemAlloc(p, 700); err != nil {
			t.Errorf("b alloc: %v", err)
		}
		// Per-container share still enforced.
		if _, err := fa.MemAlloc(p, 1); !errors.Is(err, cuda.ErrOutOfMemory) {
			t.Errorf("overshare alloc err = %v", err)
		}
	})
	env.Run()
	if fa.MemUsed() != 700 || fb.MemUsed() != 700 {
		t.Fatalf("virtual usage %d/%d", fa.MemUsed(), fb.MemUsed())
	}
}

func TestSwapInOutOnHandoff(t *testing.T) {
	env, dev, mgr := swapRig(1000, 1<<40)
	fa, _ := NewFrontend(cuda.Open(dev, "a"), mgr, "a", Share{Request: 0.5, Limit: 1, Memory: 0.7})
	fb, _ := NewFrontend(cuda.Open(dev, "b"), mgr, "b", Share{Request: 0.5, Limit: 1, Memory: 0.7})
	env.Go("a", func(p *sim.Proc) {
		fa.MemAlloc(p, 700)
		for i := 0; i < 40; i++ {
			if err := fa.LaunchKernel(p, 5*time.Millisecond); err != nil {
				t.Errorf("a: %v", err)
				return
			}
		}
	})
	env.Go("b", func(p *sim.Proc) {
		fb.MemAlloc(p, 700)
		for i := 0; i < 40; i++ {
			if err := fb.LaunchKernel(p, 5*time.Millisecond); err != nil {
				t.Errorf("b: %v", err)
				return
			}
		}
	})
	env.Run()
	// Both working sets can never be co-resident (1400 > 1000): every
	// alternation swaps.
	if mgr.SwappedBytes() == 0 {
		t.Fatal("no swapping occurred despite over-commitment")
	}
	if fa.MemUsed() != 700 || fb.MemUsed() != 700 {
		t.Fatal("virtual usage corrupted")
	}
}

func TestNoSwapWhenSetsFit(t *testing.T) {
	env, dev, mgr := swapRig(1000, 1<<40)
	fa, _ := NewFrontend(cuda.Open(dev, "a"), mgr, "a", Share{Request: 0.5, Limit: 1, Memory: 0.4})
	fb, _ := NewFrontend(cuda.Open(dev, "b"), mgr, "b", Share{Request: 0.5, Limit: 1, Memory: 0.4})
	env.Go("a", func(p *sim.Proc) {
		fa.MemAlloc(p, 400)
		for i := 0; i < 20; i++ {
			fa.LaunchKernel(p, 5*time.Millisecond)
		}
	})
	env.Go("b", func(p *sim.Proc) {
		fb.MemAlloc(p, 400)
		for i := 0; i < 20; i++ {
			fb.LaunchKernel(p, 5*time.Millisecond)
		}
	})
	env.Run()
	// Both sets fit (800 ≤ 1000): each is swapped in once, never out.
	if got := mgr.SwappedBytes(); got != 800 {
		t.Fatalf("swapped %d bytes, want 800 (one initial load each)", got)
	}
}

func TestSwapCostSlowsSharing(t *testing.T) {
	// Same workload with fitting vs over-committed sets: the over-committed
	// run must be slower by the transfer time.
	run := func(allocBytes int64) time.Duration {
		env, dev, mgr := swapRig(1<<30, 1<<30) // 1 GiB device, 1 GiB/s swap
		fa, _ := NewFrontend(cuda.Open(dev, "a"), mgr, "a", Share{Request: 0.5, Limit: 1, Memory: 0.9})
		fb, _ := NewFrontend(cuda.Open(dev, "b"), mgr, "b", Share{Request: 0.5, Limit: 1, Memory: 0.9})
		for _, f := range []*Frontend{fa, fb} {
			f := f
			env.Go(f.clientID, func(p *sim.Proc) {
				f.MemAlloc(p, allocBytes)
				for i := 0; i < 10; i++ {
					f.LaunchKernel(p, 10*time.Millisecond)
				}
			})
		}
		env.Run()
		return env.Now()
	}
	fit := run(256 << 20)    // 2×256 MiB fit in 1 GiB
	thrash := run(768 << 20) // 2×768 MiB cannot co-reside
	if thrash < 2*fit {
		t.Fatalf("over-commit run %v vs fitting %v; swap cost missing", thrash, fit)
	}
}

func TestFreeReleasesVirtualBytes(t *testing.T) {
	env, dev, mgr := swapRig(1000, 1<<40)
	f, _ := NewFrontend(cuda.Open(dev, "a"), mgr, "a", Share{Request: 0.5, Limit: 1, Memory: 0.5})
	env.Go("t", func(p *sim.Proc) {
		ptr, err := f.MemAlloc(p, 500)
		if err != nil {
			t.Errorf("alloc: %v", err)
			return
		}
		if err := f.MemFree(p, ptr); err != nil {
			t.Errorf("free: %v", err)
		}
		if f.MemUsed() != 0 {
			t.Errorf("MemUsed = %d", f.MemUsed())
		}
		if _, err := f.MemAlloc(p, 500); err != nil {
			t.Errorf("re-alloc after free: %v", err)
		}
		if err := f.MemFree(p, cuda.Ptr(0xbad)); err == nil {
			t.Error("freeing unknown virtual pointer succeeded")
		}
	})
	env.Run()
}

func TestWorkingSetLargerThanDeviceRejected(t *testing.T) {
	env, dev, mgr := swapRig(1000, 1<<40)
	f, _ := NewFrontend(cuda.Open(dev, "a"), mgr, "a", Share{Request: 0.5, Limit: 1, Memory: 1})
	env.Go("t", func(p *sim.Proc) {
		// gpu_mem share allows it, but a single working set can never
		// exceed the physical device.
		if _, err := f.MemAlloc(p, 1000); err != nil {
			t.Errorf("alloc at capacity: %v", err)
		}
	})
	env.Run()
	if err := mgr.SetVirtualUsage("a", 2000); err == nil {
		t.Fatal("working set beyond device capacity accepted")
	}
}

func TestUnregisterDropsResidency(t *testing.T) {
	env, dev, mgr := swapRig(1000, 1<<40)
	f, _ := NewFrontend(cuda.Open(dev, "a"), mgr, "a", Share{Request: 0.5, Limit: 1, Memory: 0.7})
	env.Go("t", func(p *sim.Proc) {
		f.MemAlloc(p, 700)
		f.LaunchKernel(p, time.Millisecond) // becomes resident
		if mgr.ResidentBytes("a") != 700 {
			t.Errorf("resident = %d", mgr.ResidentBytes("a"))
		}
		f.Close(p)
		if mgr.ResidentBytes("a") != 0 {
			t.Error("residency survived close")
		}
	})
	env.Run()
}

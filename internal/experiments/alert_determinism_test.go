package experiments

import (
	"strings"
	"testing"

	"kubeshare/internal/obs"
)

// TestAlertDeterminismGolden runs the Fig 9 workload with the SLO engine
// attached and asserts the full alert trajectory — every firing/resolve
// transition event plus the engine's final state table — is byte-identical
// to the recorded golden.
func TestAlertDeterminismGolden(t *testing.T) {
	cfg := Fig9Config{}.withDefaults()
	res, err := RunSharing(SharingConfig{
		System:          KubeShare,
		Nodes:           cfg.Nodes,
		GPUsPerNode:     cfg.GPUsPerNode,
		Jobs:            fig9Jobs(cfg),
		Telemetry:       cfg.Sample,
		ExportTelemetry: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	b.WriteString("--- slo events ---\n")
	var slo []obs.EventRecord
	for _, e := range res.Events {
		if e.Source == "slo" {
			slo = append(slo, e)
		}
	}
	obs.FormatEvents(&b, slo)
	b.WriteString("--- final states ---\n")
	obs.FormatAlerts(&b, res.Telemetry.Alerts.States())
	if len(slo) == 0 {
		t.Fatal("expected SLO transition events under the Fig 9 sharing workload")
	}
	checkGolden(t, "alerts.golden", b.String())
}

package experiments

import (
	"strings"
	"testing"
	"time"

	"kubeshare/internal/obs"
)

// TestAlertEngineAcrossAPIServerRestart crash/restarts the apiserver in
// the middle of the Fig 9 sharing workload with the SLO engine attached.
// The engine samples metrics, not watch streams, so its pending/firing
// state must ride straight through the restart: no rule may emit a
// resolve-then-refire flap in the restart instant, and the whole
// trajectory — transitions plus final states — is pinned by a golden.
func TestAlertEngineAcrossAPIServerRestart(t *testing.T) {
	cfg := Fig9Config{}.withDefaults()
	res, err := RunSharing(SharingConfig{
		System:          KubeShare,
		Nodes:           cfg.Nodes,
		GPUsPerNode:     cfg.GPUsPerNode,
		Jobs:            fig9Jobs(cfg),
		Telemetry:       cfg.Sample,
		ExportTelemetry: true,
		// Restart while the sharing pressure is up — mid-workload, when
		// rules are pending or firing.
		RestartAPIServerAt: 20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	var restartAt time.Duration
	for _, e := range res.Events {
		if e.Reason == "APIServerRestarted" {
			restartAt = e.Time
		}
	}
	if restartAt == 0 {
		t.Fatal("no APIServerRestarted marker in the event log")
	}
	var slo []obs.EventRecord
	lastByRule := map[string]obs.EventRecord{}
	for _, e := range res.Events {
		if e.Source != "slo" {
			continue
		}
		slo = append(slo, e)
		// A flap is a resolve immediately followed by a re-fire (or the
		// reverse) of the same rule in the restart instant: the engine's
		// state would have been lost and rebuilt from scratch.
		if prev, ok := lastByRule[e.Name]; ok &&
			e.Time == restartAt && prev.Time == restartAt && prev.Type != e.Type {
			t.Errorf("rule %s flapped %s->%s at the restart instant %v",
				e.Name, prev.Reason, e.Reason, restartAt)
		}
		lastByRule[e.Name] = e
	}
	if len(slo) == 0 {
		t.Fatal("expected SLO transition events under the Fig 9 sharing workload")
	}
	var b strings.Builder
	b.WriteString("--- slo events ---\n")
	obs.FormatEvents(&b, slo)
	b.WriteString("--- final states ---\n")
	obs.FormatAlerts(&b, res.Telemetry.Alerts.States())
	checkGolden(t, "alerts_restart.golden", b.String())
}

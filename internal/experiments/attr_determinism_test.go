package experiments

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"kubeshare/internal/core"
	"kubeshare/internal/core/schedfw"
	"kubeshare/internal/obs/attr"
	"kubeshare/internal/sim"
	"kubeshare/internal/workload"
)

// TestAttributionSumExact is the exact-sum property over real runs: for
// several seeds — including chaos runs that crash/restart the apiserver
// mid-workload — every completed sharePod's phase breakdown sums to its
// end-to-end latency exactly (not within a tolerance), and every
// submitted sharePod is accounted for as either a breakdown or an open
// chain.
func TestAttributionSumExact(t *testing.T) {
	type arm struct {
		seed    int64
		restart time.Duration
	}
	arms := []arm{
		{seed: 1}, {seed: 2}, {seed: 3},
		{seed: 11, restart: 9 * time.Second},
		{seed: 17, restart: 6 * time.Second},
	}
	_, err := runIndexed(len(arms), func(i int) (struct{}, error) {
		a := arms[i]
		jobs := workload.Generate(workload.GeneratorConfig{
			Jobs: 10, MeanInterArrival: 2 * time.Second,
			DemandMean: 0.35, DemandVar: 1,
			JobDuration: 10 * time.Second, Seed: a.seed,
		})
		res, err := RunSharing(SharingConfig{
			System: KubeShare, Nodes: 1, GPUsPerNode: 2,
			Jobs: jobs, Attribution: true,
			RestartAPIServerAt: a.restart,
		})
		if err != nil {
			return struct{}{}, err
		}
		if len(res.Attr.Breakdowns) == 0 {
			return struct{}{}, fmt.Errorf("seed %d: no completed chains", a.seed)
		}
		if got := len(res.Attr.Breakdowns) + len(res.Attr.Open); got != len(jobs) {
			return struct{}{}, fmt.Errorf("seed %d: %d chains accounted for, %d jobs submitted",
				a.seed, got, len(jobs))
		}
		for _, bd := range res.Attr.Breakdowns {
			if bd.Sum() != bd.EndToEnd {
				return struct{}{}, fmt.Errorf("seed %d: %s phases sum to %v, end-to-end %v (diff %v)",
					a.seed, bd.Key, bd.Sum(), bd.EndToEnd, bd.EndToEnd-bd.Sum())
			}
			for ph, d := range bd.Phases {
				if d < 0 {
					return struct{}{}, fmt.Errorf("seed %d: %s negative phase %s=%v",
						a.seed, bd.Key, ph, d)
				}
			}
		}
		if v := res.Obs.Gauge("kubeshare_obs_open_chains"); v != int64(len(res.Attr.Open)) {
			return struct{}{}, fmt.Errorf("seed %d: kubeshare_obs_open_chains=%d, want %d",
				a.seed, v, len(res.Attr.Open))
		}
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAttributionRetry drives the requeue edge directly: a bound pod is
// deleted mid-run, the scheduler requeues the sharePod, and the second
// attempt runs to completion. The victim's breakdown must attribute the
// lost first attempt to the retry phase — not inflate schedule — and
// still sum exactly.
func TestAttributionRetry(t *testing.T) {
	env := sim.NewEnv()
	c, err := newCluster(env, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	c.Obs.EnableExemplars()
	if _, err := schedfw.Install(c, core.Config{}); err != nil {
		t.Fatal(err)
	}
	jobs := workload.Generate(workload.GeneratorConfig{
		Jobs: 4, MeanInterArrival: time.Second,
		DemandMean: 0.3, JobDuration: 8 * time.Second, Seed: 5,
	})
	env.Go("submitter", func(p *sim.Proc) {
		for _, j := range jobs {
			if wait := j.Arrival - env.Now(); wait > 0 {
				p.Sleep(wait)
			}
			if _, err := core.SharePods(c.API).Create(workload.SharePodFor(j)); err != nil {
				panic(err)
			}
		}
	})
	victim := ""
	env.Go("pod-killer", func(p *sim.Proc) {
		// Wait until some sharePod is bound and running, then delete its
		// bound pod — the node-eviction edge the scheduler requeues on.
		for victim == "" {
			p.Sleep(4 * time.Second)
			for _, sp := range core.SharePods(c.API).List() {
				if sp.Status.BoundPod != "" && !sp.Terminated() {
					victim = sp.Name
					if err := c.Pods().Delete(sp.Status.BoundPod); err != nil {
						panic(err)
					}
					break
				}
			}
		}
	})
	env.Run()
	if victim == "" {
		t.Fatal("no bound sharePod ever appeared to evict")
	}
	res := attr.Analyze(c.Obs.Tracer().Spans())
	var bd *attr.Breakdown
	for i := range res.Breakdowns {
		if res.Breakdowns[i].Key == "SharePod/"+victim {
			bd = &res.Breakdowns[i]
		}
	}
	if bd == nil {
		t.Fatalf("victim %s has no breakdown (open: %v)", victim, res.Open)
	}
	if bd.Retries == 0 || bd.Phases[attr.PhaseRetry] <= 0 {
		t.Fatalf("victim %s: retries=%d retry=%v, want a positive retry attribution",
			victim, bd.Retries, bd.Phases[attr.PhaseRetry])
	}
	if bd.Sum() != bd.EndToEnd {
		t.Fatalf("victim %s: sum %v != end-to-end %v", victim, bd.Sum(), bd.EndToEnd)
	}
}

// TestFig19LaneDeterminism renders the attribution table at 1 (twice), 2,
// 4 and 8 event lanes: every rendering must be byte-identical, and the
// single-lane table matches the recorded golden.
func TestFig19LaneDeterminism(t *testing.T) {
	lanes := []int{1, 1, 2, 4, 8}
	dumps, err := runIndexed(len(lanes), func(i int) (string, error) {
		tb, err := Fig19(Fig19Config{
			Fig18Config: Fig18Config{
				Nodes: 1, GPUsPerNode: 4, Jobs: 16,
				JobDuration: 10 * time.Second,
			},
			Lanes: lanes[i],
		})
		if err != nil {
			return "", err
		}
		var b strings.Builder
		tb.Render(&b)
		return b.String(), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range dumps[1:] {
		if d != dumps[0] {
			t.Fatalf("fig19 table at lanes=%d diverged from single-lane run", lanes[i+1])
		}
	}
	checkGolden(t, "fig19_table.golden", dumps[0])
}

package experiments

import (
	"time"

	"kubeshare/internal/metrics"
)

// AuditConfig drives the fairness audit: the Fig 9 sharing workload under
// KubeShare with the telemetry consumption layer attached.
type AuditConfig struct {
	Fig9Config
	// Interval is the audit sampling window (defaults to Fig9's Sample).
	Interval time.Duration
}

// AuditResult carries the auditor's deterministic report tables plus the
// run's alert outcome.
type AuditResult struct {
	// Shares is the per-(GPU, tenant) token accounting table.
	Shares *metrics.Table
	// Fairness is the per-GPU Jain-index table.
	Fairness *metrics.Table
	// AlertsFired counts SLO (rule, child) pairs that fired at least once,
	// measured by Warning events from the "slo" source.
	AlertsFired int
}

// Audit runs the Fig 9 workload under KubeShare with the fairness auditor
// sampling every Interval and returns the per-tenant accounting and
// per-GPU Jain tables. The output is byte-identical across runs at the
// same seed (golden-tested).
func Audit(cfg AuditConfig) (*AuditResult, error) {
	c := cfg.Fig9Config.withDefaults()
	if cfg.Interval == 0 {
		cfg.Interval = c.Sample
	}
	res, err := RunSharing(SharingConfig{
		System:          KubeShare,
		Nodes:           c.Nodes,
		GPUsPerNode:     c.GPUsPerNode,
		Jobs:            fig9Jobs(c),
		Telemetry:       cfg.Interval,
		ExportTelemetry: true,
	})
	if err != nil {
		return nil, err
	}
	shares, fairness := res.Telemetry.Auditor.Report()
	out := &AuditResult{Shares: shares, Fairness: fairness}
	for _, e := range res.Events {
		if e.Source == "slo" && e.Type == "Warning" {
			out.AlertsFired++
		}
	}
	return out, nil
}

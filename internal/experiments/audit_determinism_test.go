package experiments

import (
	"fmt"
	"strings"
	"testing"
)

// renderAudit serializes an audit result the way `kubeshare-sim audit`
// prints it.
func renderAudit(res *AuditResult) string {
	var b strings.Builder
	res.Shares.Render(&b)
	b.WriteByte('\n')
	res.Fairness.Render(&b)
	fmt.Fprintf(&b, "\nslo alerts fired: %d\n", res.AlertsFired)
	return b.String()
}

// TestAuditDeterminismGolden runs the fairness audit twice at the same seed
// and asserts the report is byte-identical both across runs and against the
// recorded golden — the `audit` acceptance criterion.
func TestAuditDeterminismGolden(t *testing.T) {
	first, err := Audit(AuditConfig{})
	if err != nil {
		t.Fatal(err)
	}
	second, err := Audit(AuditConfig{})
	if err != nil {
		t.Fatal(err)
	}
	got := renderAudit(first)
	if again := renderAudit(second); got != again {
		t.Fatalf("audit report not deterministic across runs:\n--- first ---\n%s\n--- second ---\n%s", got, again)
	}
	if first.AlertsFired == 0 {
		t.Fatal("expected at least one SLO alert to fire under the Fig 9 sharing workload")
	}
	checkGolden(t, "audit_report.golden", got)
}

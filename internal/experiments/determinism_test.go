package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from the current kernel")

// The two scenarios the determinism suite locks down: Fig 6 exercises the
// devlib token policy end to end on one GPU, Fig 8a exercises the whole
// cluster stack (scheduler, kubelets, devlib, workload generator) under both
// systems. Both must be byte-identical run-to-run AND identical to the
// tables recorded from the pre-optimization kernel.
func fig6Golden(t *testing.T) string {
	t.Helper()
	res, err := Fig6(Fig6Config{Stagger: 60 * time.Second, SampleEvery: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	return res.Table.String()
}

func fig8Golden(t *testing.T) string {
	t.Helper()
	tb, err := Fig8a(Fig8Config{
		Jobs: 30, Nodes: 2, GPUsPerNode: 4, JobDuration: 20 * time.Second,
	}, []float64{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	return tb.String()
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (run with -update to record): %v", err)
	}
	if got != string(want) {
		t.Fatalf("%s diverged from the recorded pre-change golden.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// TestFig6DeterminismGolden runs Fig 6 twice with the same seed and asserts
// byte-identical metrics.Table output, then matches the recorded golden.
func TestFig6DeterminismGolden(t *testing.T) {
	first := fig6Golden(t)
	second := fig6Golden(t)
	if first != second {
		t.Fatalf("Fig6 not deterministic across runs:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
	checkGolden(t, "fig6_table.golden", first)
}

// TestFig8DeterminismGolden does the same for the full-stack Fig 8a sweep.
func TestFig8DeterminismGolden(t *testing.T) {
	first := fig8Golden(t)
	second := fig8Golden(t)
	if first != second {
		t.Fatalf("Fig8a not deterministic across runs:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
	checkGolden(t, "fig8a_table.golden", first)
}

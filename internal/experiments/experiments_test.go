package experiments

import (
	"math"
	"strconv"
	"testing"
	"time"
)

// cell parses a table cell as float.
func cell(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q: %v", s, err)
	}
	return v
}

func TestFig5UsageProportionalToRate(t *testing.T) {
	tb, err := Fig5(Fig5Config{Rates: []float64{4, 12, 24, 40}, Duration: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	var utils []float64
	for _, row := range tb.Rows {
		utils = append(utils, cell(t, row[1]))
	}
	for i := 1; i < len(utils); i++ {
		if utils[i] <= utils[i-1] {
			t.Fatalf("utilization not increasing with rate: %v", utils)
		}
	}
	// 25ms kernels: rate 12 → ≈0.3, rate 40 → saturated ≈1.0.
	if math.Abs(utils[1]-0.3) > 0.05 {
		t.Fatalf("rate 12 utilization %.3f, want ≈0.3", utils[1])
	}
	if utils[3] < 0.9 {
		t.Fatalf("rate 40 utilization %.3f, want ≈saturated", utils[3])
	}
}

func TestFig6IsolationPhases(t *testing.T) {
	res, err := Fig6(Fig6Config{Stagger: 100 * time.Second, SampleEvery: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Table.Rows
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Phase 1: A alone, throttled at its 0.6 limit.
	if a := cell(t, rows[0][2]); math.Abs(a-0.6) > 0.07 {
		t.Fatalf("phase 1 job A usage %.3f, want ≈0.6", a)
	}
	// Phase 2: A+B split the device ≈0.5 each.
	if a, b := cell(t, rows[1][2]), cell(t, rows[1][3]); math.Abs(a-0.5) > 0.07 || math.Abs(b-0.5) > 0.07 {
		t.Fatalf("phase 2 usage %.3f/%.3f, want ≈0.5 each", a, b)
	}
	// Phase 3: all three at their gpu_requests (0.3/0.4/0.3).
	a, b, c := cell(t, rows[2][2]), cell(t, rows[2][3]), cell(t, rows[2][4])
	if math.Abs(a-0.3) > 0.08 || math.Abs(b-0.4) > 0.08 || math.Abs(c-0.3) > 0.08 {
		t.Fatalf("phase 3 usage %.3f/%.3f/%.3f, want ≈0.3/0.4/0.3", a, b, c)
	}
}

func TestFig7OverheadUnderFivePercent(t *testing.T) {
	tb, err := Fig7(Fig7Config{Quotas: []time.Duration{30 * time.Millisecond, 100 * time.Millisecond, 160 * time.Millisecond}, Steps: 2000})
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for i, row := range tb.Rows {
		norm := cell(t, row[2])
		if norm < 0.94 || norm > 1.001 {
			t.Fatalf("quota %s: normalized throughput %.4f outside [0.94, 1]", row[0], norm)
		}
		if i > 0 && norm < prev-0.002 {
			t.Fatalf("throughput decreasing with larger quota: %v", tb.Rows)
		}
		prev = norm
	}
}

func TestFig8aSharingDoublesSaturatedThroughput(t *testing.T) {
	cfg := Fig8Config{Jobs: 60, Nodes: 2, GPUsPerNode: 4, JobDuration: 30 * time.Second}
	tb, err := Fig8a(cfg, []float64{1, 6})
	if err != nil {
		t.Fatal(err)
	}
	// Light load: similar throughput. Heavy load: KubeShare ≈2× Kubernetes.
	light := tb.Rows[0]
	heavy := tb.Rows[1]
	if s := cell(t, light[4]); s < 0.9 || s > 1.6 {
		t.Fatalf("light-load speedup %.2f, want ≈1", s)
	}
	if s := cell(t, heavy[4]); s < 1.6 {
		t.Fatalf("heavy-load speedup %.2f, want ≳2 (sharing benefit)", s)
	}
}

func TestFig8bGainShrinksWithDemand(t *testing.T) {
	cfg := Fig8Config{Jobs: 50, Nodes: 2, GPUsPerNode: 4, JobDuration: 30 * time.Second}
	tb, err := Fig8b(cfg, []float64{0.2, 0.6})
	if err != nil {
		t.Fatal(err)
	}
	low := cell(t, tb.Rows[0][3])
	high := cell(t, tb.Rows[1][3])
	if low < 1.8 {
		t.Fatalf("speedup at 20%% demand %.2f, want ≳2", low)
	}
	if high > low-0.5 {
		t.Fatalf("speedup did not shrink with demand: %.2f → %.2f", low, high)
	}
	// Kubernetes is demand-agnostic.
	k8sLow, k8sHigh := cell(t, tb.Rows[0][1]), cell(t, tb.Rows[1][1])
	if math.Abs(k8sLow-k8sHigh)/k8sLow > 0.2 {
		t.Fatalf("kubernetes throughput should be demand-agnostic: %.2f vs %.2f", k8sLow, k8sHigh)
	}
}

func TestFig8cVarianceFlat(t *testing.T) {
	cfg := Fig8Config{Jobs: 50, Nodes: 2, GPUsPerNode: 4, JobDuration: 30 * time.Second}
	tb, err := Fig8c(cfg, []float64{0.5, 4})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := cell(t, tb.Rows[0][2]), cell(t, tb.Rows[1][2])
	if math.Abs(lo-hi)/lo > 0.25 {
		t.Fatalf("KubeShare throughput varies with demand variance: %.2f vs %.2f", lo, hi)
	}
}

func TestFig9KubeShareFinishesSoonerWithFewerGPUs(t *testing.T) {
	// Factor 2.5 puts the 8-GPU cluster past Kubernetes' saturation point
	// (6×2.5=15 concurrent whole-GPU jobs) but below KubeShare's
	// (15×≈0.36 ≈ 5.4 GPUs of fractional demand) — the Figure 9 regime
	// where KubeShare holds fewer, busier GPUs.
	res, err := Fig9(Fig9Config{
		Fig8Config: Fig8Config{Jobs: 60, Nodes: 2, GPUsPerNode: 4, JobDuration: 30 * time.Second},
		FreqFactor: 2.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan[KubeShare] >= res.Makespan[Kubernetes] {
		t.Fatalf("makespans: kubeshare %v vs kubernetes %v, want kubeshare sooner",
			res.Makespan[KubeShare], res.Makespan[Kubernetes])
	}
	// During the saturated middle third, Kubernetes holds all 8 GPUs while
	// KubeShare holds fewer.
	mid := res.Makespan[KubeShare] / 2
	k8sActive := res.Active[Kubernetes].TimeWeightedMean(mid-10*time.Second, mid+10*time.Second)
	ksActive := res.Active[KubeShare].TimeWeightedMean(mid-10*time.Second, mid+10*time.Second)
	if k8sActive < 7.5 {
		t.Fatalf("kubernetes active GPUs %.1f, want all 8 under saturation", k8sActive)
	}
	if ksActive >= k8sActive {
		t.Fatalf("active GPUs: kubeshare %.1f vs kubernetes %.1f, want fewer", ksActive, k8sActive)
	}
	// And its active GPUs are better utilized on average.
	ksUtil := res.Util[KubeShare].TimeWeightedMean(0, res.Makespan[KubeShare])
	k8sUtil := res.Util[Kubernetes].TimeWeightedMean(0, res.Makespan[Kubernetes])
	if ksUtil <= k8sUtil {
		t.Fatalf("avg utilization: kubeshare %.3f vs kubernetes %.3f", ksUtil, k8sUtil)
	}
}

func TestFig10OverheadShape(t *testing.T) {
	tb, err := Fig10(Fig10Config{Concurrency: []int{1, 8}, Nodes: 2, GPUsPerNode: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		warm := cell(t, row[4])
		cold := cell(t, row[5])
		if warm < 1.02 || warm > 1.35 {
			t.Fatalf("concurrency %s: warm overhead %.2f outside the ≈1.15 regime", row[0], warm)
		}
		if cold < 1.5 || cold > 2.8 {
			t.Fatalf("concurrency %s: cold overhead %.2f outside the ≈2x regime", row[0], cold)
		}
	}
}

func TestFig11LinearAndFast(t *testing.T) {
	tb, err := Fig11(Fig11Config{Counts: []int{10, 100}, Iterations: 50})
	if err != nil {
		t.Fatal(err)
	}
	small := cell(t, tb.Rows[0][1])
	large := cell(t, tb.Rows[1][1])
	if large < small {
		t.Fatalf("decision time shrank with more sharePods: %v vs %v", small, large)
	}
	// The paper reports <400ms at 100 sharePods on their stack; the pure Go
	// implementation must be far under that.
	if large > 400_000 {
		t.Fatalf("decision at 100 sharePods took %.0fµs, exceeding the paper's 400ms", large)
	}
}

func TestFig12InterferenceShape(t *testing.T) {
	tb, err := Fig12(Fig12Config{Steps: 2000})
	if err != nil {
		t.Fatal(err)
	}
	slow := map[string][]float64{}
	for _, row := range tb.Rows {
		slow[row[0]] = append(slow[row[0]], cell(t, row[2]))
	}
	for _, v := range slow["A+A"] {
		if v > 1.12 {
			t.Fatalf("A+A slowdown %v, want ≲1.1", slow["A+A"])
		}
	}
	for _, v := range slow["B+B"] {
		if v < 1.3 || v > 1.75 {
			t.Fatalf("B+B slowdown %v, want ≈1.5", slow["B+B"])
		}
	}
	// Paper reports <10% for A-combos; the strictly exclusive token model
	// cannot overlap one tenant's host phase with the other's kernels, so
	// B-in-A+B lands near its queueing bound (~1.25). Documented in
	// EXPERIMENTS.md as the one quantitative deviation.
	for _, v := range slow["A+B"] {
		if v > 1.3 {
			t.Fatalf("A+B slowdown %v, want well below B+B's 1.5", slow["A+B"])
		}
	}
}

func TestFig13Crossover(t *testing.T) {
	tb, err := Fig13(Fig13Config{Jobs: 24, Steps: 800, Nodes: 1, GPUsPerNode: 4, Ratios: []float64{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	// Ratio 0 (all B): anti-affinity behaves like Kubernetes; no-label
	// KubeShare wins by sharing despite interference.
	r0 := tb.Rows[0]
	k8s0, ks0, anti0 := cell(t, r0[1]), cell(t, r0[2]), cell(t, r0[3])
	if ks0 <= k8s0 {
		t.Fatalf("ratio 0: kubeshare %.2f should beat kubernetes %.2f", ks0, k8s0)
	}
	if math.Abs(anti0-k8s0)/k8s0 > 0.35 {
		t.Fatalf("ratio 0: anti-affinity %.2f should be near kubernetes %.2f", anti0, k8s0)
	}
	// Ratio 1 (all A): both KubeShare settings coincide and beat Kubernetes.
	r1 := tb.Rows[1]
	k8s1, ks1, anti1 := cell(t, r1[1]), cell(t, r1[2]), cell(t, r1[3])
	if ks1 <= 1.3*k8s1 || anti1 <= 1.3*k8s1 {
		t.Fatalf("ratio 1: kubeshare %.2f/%.2f should clearly beat kubernetes %.2f", ks1, anti1, k8s1)
	}
	if math.Abs(ks1-anti1)/ks1 > 0.15 {
		t.Fatalf("ratio 1: both kubeshare settings should coincide: %.2f vs %.2f", ks1, anti1)
	}
}

func TestFig14AvailabilitySurvivesFaults(t *testing.T) {
	cfg := Fig14Config{Nodes: 2, Jobs: 12, JobDuration: 10 * time.Second,
		Intensities: []float64{0, 1}}
	tb, err := Fig14(cfg)
	if err != nil {
		t.Fatal(err)
	}
	control, faulted := tb.Rows[0], tb.Rows[1]
	if cell(t, control[1]) != 0 {
		t.Fatalf("control row delivered faults: %s", control[1])
	}
	if cell(t, faulted[1]) == 0 {
		t.Fatal("faulted row delivered no faults")
	}
	// The fault-free control completes everything; under faults recovery
	// must keep the vast majority alive (a device fault poisoning an active
	// context legitimately kills that job — it is terminal, not wedged).
	if cell(t, control[4]) != 1 {
		t.Fatalf("control availability %s, want 1", control[4])
	}
	if a := cell(t, faulted[4]); a < 0.75 {
		t.Fatalf("faulted availability %.3f, want >= 0.75", a)
	}
	// Faults cost time, never work: the faulted makespan dominates.
	if cell(t, faulted[9]) < cell(t, control[9]) {
		t.Fatalf("faulted makespan %s shorter than control %s", faulted[9], control[9])
	}
	// Determinism: the same config reproduces the table byte for byte.
	again, err := Fig14(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tb.String() != again.String() {
		t.Fatalf("fig14 not deterministic:\n--- first ---\n%s\n--- second ---\n%s", tb, again)
	}
}

func TestFig17RecoverySweep(t *testing.T) {
	cfg := Fig17Config{Nodes: 2, Jobs: 12, JobDuration: 10 * time.Second,
		RestartMeans:        []time.Duration{10 * time.Second},
		CheckpointIntervals: []time.Duration{5 * time.Second, -1}}
	tb, err := Fig17(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ckpt, never := tb.Rows[0], tb.Rows[1]
	if cell(t, ckpt[2]) == 0 {
		t.Fatal("sweep delivered no restarts")
	}
	// Same restart schedule either way — only recovery cost may differ.
	if cell(t, ckpt[2]) != cell(t, never[2]) || cell(t, ckpt[3]) != cell(t, never[3]) {
		t.Fatalf("restart schedules diverged across checkpoint intervals: %v vs %v", ckpt, never)
	}
	// Without periodic checkpoints every restart replays the whole WAL, so
	// both the replayed-record count and the modeled unavailability window
	// must strictly dominate the checkpointed row.
	if cell(t, never[4]) <= cell(t, ckpt[4]) {
		t.Fatalf("replayed: never=%s should exceed ckpt=%s", never[4], ckpt[4])
	}
	if cell(t, never[5]) <= cell(t, ckpt[5]) {
		t.Fatalf("outage_ms: never=%s should exceed ckpt=%s", never[5], ckpt[5])
	}
	// Warm recovery: every job still completes in every cell.
	for i, row := range tb.Rows {
		if int(cell(t, row[8])) != cfg.Jobs {
			t.Fatalf("row %d: %s/%d jobs succeeded under restarts", i, row[8], cfg.Jobs)
		}
	}
	again, err := Fig17(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tb.String() != again.String() {
		t.Fatalf("fig17 not deterministic:\n--- first ---\n%s\n--- second ---\n%s", tb, again)
	}
}

func TestTable1FragmentationContrast(t *testing.T) {
	tb, err := Table1(Table1Config{})
	if err != nil {
		t.Fatal(err)
	}
	get := func(scenario, metric string) (deep, ext, ks float64) {
		for _, row := range tb.Rows {
			if row[0] == scenario && row[1] == metric {
				return cell(t, row[2]), cell(t, row[3]), cell(t, row[4])
			}
		}
		t.Fatalf("row %s/%s missing", scenario, metric)
		return 0, 0, 0
	}
	_, extActive, ksActive := get("mixed demands (Fig 3)", "active GPUs")
	if !(ksActive < extActive) {
		t.Fatalf("active GPUs: kubeshare %v vs extender %v, want fewer (Fig 3b)", ksActive, extActive)
	}
	deepOver, extOver, ksOver := get("contending 0.6s", "over-committed GPUs")
	if extOver == 0 {
		t.Fatal("extender should over-commit under contending 0.6 demands (Fig 3a)")
	}
	if ksOver != 0 {
		t.Fatalf("kubeshare over-committed %v devices", ksOver)
	}
	// Deepomatic mode piles everything on one device.
	deepActive, _, _ := get("contending 0.6s", "active GPUs")
	if deepActive != 1 || deepOver != 1 {
		t.Fatalf("deepomatic: active=%v overcommitted=%v, want 1/1 (single-device)", deepActive, deepOver)
	}
}

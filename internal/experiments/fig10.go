package experiments

import (
	"fmt"
	"time"

	"kubeshare/internal/core"
	"kubeshare/internal/core/schedfw"
	"kubeshare/internal/kube/api"
	"kubeshare/internal/metrics"
	"kubeshare/internal/sim"
	"kubeshare/internal/workload"
)

// Fig10Config drives the pod-creation overhead experiment.
type Fig10Config struct {
	// Concurrency levels: how many pods are created simultaneously.
	Concurrency []int
	Nodes       int
	GPUsPerNode int
}

func (c Fig10Config) withDefaults() Fig10Config {
	if len(c.Concurrency) == 0 {
		c.Concurrency = []int{1, 2, 4, 8, 16, 32}
	}
	if c.Nodes == 0 {
		c.Nodes = 8
	}
	if c.GPUsPerNode == 0 {
		c.GPUsPerNode = 4
	}
	return c
}

// Fig10 measures end-to-end pod creation latency (submission → running)
// under increasing concurrency for three paths: native Kubernetes pods,
// KubeShare sharePods onto pre-created vGPUs (no vGPU creation), and
// KubeShare sharePods that must first acquire the GPU (with vGPU
// creation). The paper's shape: ≈+15% without creation, ≈2× with, and the
// KubeShare overhead stays constant as concurrency grows.
func Fig10(cfg Fig10Config) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	tb := metrics.NewTable("Figure 10: pod creation latency",
		"concurrent", "native_s", "kubeshare_s", "kubeshare_with_vgpu_s",
		"no_vgpu_overhead", "with_vgpu_overhead")
	// Flatten the concurrency × {native, warm-pool, cold} grid; all three
	// measurements of a level land at indices 3i, 3i+1, 3i+2.
	lat, err := runIndexed(3*len(cfg.Concurrency), func(i int) (time.Duration, error) {
		n := cfg.Concurrency[i/3]
		switch i % 3 {
		case 0:
			return measureNativeCreation(cfg, n)
		case 1:
			return measureShareCreation(cfg, n, true)
		default:
			return measureShareCreation(cfg, n, false)
		}
	})
	if err != nil {
		return nil, err
	}
	for i, n := range cfg.Concurrency {
		native, warm, cold := lat[3*i], lat[3*i+1], lat[3*i+2]
		tb.AddRow(n, native.Seconds(), warm.Seconds(), cold.Seconds(),
			warm.Seconds()/native.Seconds(), cold.Seconds()/native.Seconds())
	}
	return tb, nil
}

// measureNativeCreation times native GPU pod creation at concurrency n.
func measureNativeCreation(cfg Fig10Config, n int) (time.Duration, error) {
	env := sim.NewEnv()
	c, err := newCluster(env, cfg.Nodes, cfg.GPUsPerNode)
	if err != nil {
		return 0, err
	}
	env.Go("submit", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			pod := &api.Pod{
				ObjectMeta: api.ObjectMeta{Name: fmt.Sprintf("p%02d", i)},
				Spec: api.PodSpec{Containers: []api.Container{{
					Name: "c", Image: workload.ServeImage,
					Env:      map[string]string{workload.EnvRate: "0", workload.EnvDuration: "3600"},
					Requests: api.ResourceList{api.ResourceGPU: 1},
				}}},
			}
			if _, err := c.Pods().Create(pod); err != nil {
				panic(err)
			}
		}
	})
	env.RunUntil(10 * time.Minute)
	var sum time.Duration
	count := 0
	for _, pod := range c.Pods().List() {
		if pod.Status.Phase == api.PodRunning {
			sum += pod.Status.StartTime - pod.CreationTime
			count++
		}
	}
	if count != n {
		return 0, fmt.Errorf("native: %d of %d pods running", count, n)
	}
	return sum / time.Duration(count), nil
}

// measureShareCreation times sharePod creation at concurrency n. With
// warmPool, the vGPUs are pre-created (reservation policy) so creation
// excludes GPU acquisition.
func measureShareCreation(cfg Fig10Config, n int, warmPool bool) (time.Duration, error) {
	env := sim.NewEnv()
	c, err := newCluster(env, cfg.Nodes, cfg.GPUsPerNode)
	if err != nil {
		return 0, err
	}
	policy := core.OnDemand
	if warmPool {
		policy = core.Reservation
	}
	if _, err := schedfw.Install(c, core.Config{DevMgr: core.DevMgrConfig{Policy: policy}}); err != nil {
		return 0, err
	}
	mk := func(i int, gen string) *core.SharePod {
		return &core.SharePod{
			ObjectMeta: api.ObjectMeta{Name: fmt.Sprintf("%s%02d", gen, i)},
			Spec: core.SharePodSpec{
				GPURequest: 0.45, GPULimit: 0.5, GPUMem: workload.MemShareSmall,
				Pod: api.PodSpec{Containers: []api.Container{{
					Name: "c", Image: workload.ServeImage,
					Env: map[string]string{workload.EnvRate: "0", workload.EnvDuration: "3600"},
				}}},
			},
		}
	}
	if warmPool {
		// Warm the pool: run and delete a first generation of sharePods so
		// their vGPUs stay idle in the pool (reservation policy), then
		// measure the second generation.
		env.Go("warm", func(p *sim.Proc) {
			for i := 0; i < n; i++ {
				if _, err := core.SharePods(c.API).Create(mk(i, "warm")); err != nil {
					panic(err)
				}
			}
			p.Sleep(2 * time.Minute)
			for i := 0; i < n; i++ {
				if err := core.SharePods(c.API).Delete(fmt.Sprintf("warm%02d", i)); err != nil {
					panic(err)
				}
			}
		})
		env.RunUntil(5 * time.Minute)
	}
	start := env.Now()
	env.Go("submit", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			if _, err := core.SharePods(c.API).Create(mk(i, "m")); err != nil {
				panic(err)
			}
		}
	})
	env.RunUntil(start + 10*time.Minute)
	var sum time.Duration
	count := 0
	for _, sp := range core.SharePods(c.API).List() {
		if sp.Status.Phase == core.SharePodRunning && sp.CreationTime >= start {
			sum += sp.Status.RunningTime - sp.CreationTime
			count++
		}
	}
	if count != n {
		return 0, fmt.Errorf("kubeshare(warm=%v): %d of %d sharePods running", warmPool, count, n)
	}
	return sum / time.Duration(count), nil
}

package experiments

import (
	"fmt"
	"time"

	"kubeshare/internal/core"
	"kubeshare/internal/kube/api"
	"kubeshare/internal/kube/apiserver"
	"kubeshare/internal/metrics"
	"kubeshare/internal/sim"
	"kubeshare/internal/workload"
)

// Fig11Config drives the scheduling-time experiment: how long one
// KubeShare-Sched decision takes as a function of the number of SharePods
// already in the system. Unlike every other experiment this measures *real*
// CPU time of the actual implementation (the paper's O(N) claim); the
// repository benchmark BenchmarkFig11SchedulingTime measures the same path
// under testing.B.
type Fig11Config struct {
	// Counts are the existing-SharePod counts to sweep.
	Counts []int
	// Iterations per point (the decision is fast; average many).
	Iterations int
	// Now returns wall-clock time; injectable for tests.
	Now func() time.Time
}

func (c Fig11Config) withDefaults() Fig11Config {
	if len(c.Counts) == 0 {
		c.Counts = []int{10, 25, 50, 75, 100, 200}
	}
	if c.Iterations == 0 {
		c.Iterations = 200
	}
	if c.Now == nil {
		c.Now = time.Now //det:allow — injectable; this micro-benchmark measures real CPU cost, not sim time
	}
	return c
}

// PopulateSchedulingState fills an API server with n placed sharePods
// spread over enough vGPUs, returning the server (shared with the
// benchmark harness).
func PopulateSchedulingState(n int) *apiserver.Server {
	env := sim.NewEnv()
	srv := apiserver.New(env)
	nodes := n/8 + 1
	for i := 0; i < nodes; i++ {
		node := &api.Node{
			ObjectMeta: api.ObjectMeta{Name: fmt.Sprintf("node-%d", i)},
			Status: api.NodeStatus{
				Capacity:    api.ResourceList{api.ResourceGPU: 4},
				Allocatable: api.ResourceList{api.ResourceGPU: 4},
				Ready:       true,
			},
		}
		if _, err := apiserver.Nodes(srv).Create(node); err != nil {
			panic(err)
		}
	}
	for i := 0; i < n; i++ {
		node := fmt.Sprintf("node-%d", i%nodes)
		gpuID := fmt.Sprintf("vgpu-%03d", i%(nodes*4))
		sp := &core.SharePod{
			ObjectMeta: api.ObjectMeta{Name: fmt.Sprintf("sp-%04d", i)},
			Spec: core.SharePodSpec{
				GPURequest: 0.2, GPULimit: 0.3, GPUMem: workload.MemShareSmall,
				GPUID: gpuID, NodeName: node,
				Pod: api.PodSpec{Containers: []api.Container{{Name: "c", Image: "i"}}},
			},
			Status: core.SharePodStatus{Phase: core.SharePodRunning},
		}
		if _, err := core.SharePods(srv).Create(sp); err != nil {
			panic(err)
		}
	}
	return srv
}

// ScheduleOnce performs one full scheduling decision (pool build +
// Algorithm 1) against the populated state — the unit Fig 11 times.
func ScheduleOnce(srv *apiserver.Server) core.Decision {
	serial := 0
	pool := core.BuildPool(srv, func() string {
		serial++
		return fmt.Sprintf("fresh-%d", serial)
	})
	return core.Schedule(core.Request{Util: 0.3, Mem: 0.2}, pool)
}

// PopulateSnapshot folds the server's current state into an incremental
// scheduler snapshot by draining replay watches — the steady-state view
// KubeShare-Sched maintains from deltas instead of rebuilding per decision.
func PopulateSnapshot(srv *apiserver.Server) *core.Snapshot {
	snap := core.NewSnapshot(1)
	for _, kind := range []string{core.KindSharePod, core.KindVGPU, "Pod", "Node"} {
		q := srv.Watch(kind, true)
		for {
			ev, ok := q.TryGet()
			if !ok {
				break
			}
			snap.Apply(ev)
		}
		srv.StopWatch(q)
	}
	return snap
}

// ScheduleOnceIncremental performs one scheduling decision from the
// maintained snapshot (pool materialization + Algorithm 1) — the
// incremental counterpart of ScheduleOnce.
func ScheduleOnceIncremental(snap *core.Snapshot) core.Decision {
	serial := 0
	pool := snap.NewPool(func() string {
		serial++
		return fmt.Sprintf("fresh-%d", serial)
	})
	return core.Schedule(core.Request{Util: 0.3, Mem: 0.2}, pool)
}

// Fig11 sweeps the SharePod count and reports mean decision time. The
// paper's shape: linear in N and comfortably under 400 ms at N=100.
func Fig11(cfg Fig11Config) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	tb := metrics.NewTable("Figure 11: KubeShare-Sched decision time vs #SharePods",
		"sharepods", "mean_decision_us")
	for _, n := range cfg.Counts {
		srv := PopulateSchedulingState(n)
		start := cfg.Now()
		for i := 0; i < cfg.Iterations; i++ {
			ScheduleOnce(srv)
		}
		elapsed := cfg.Now().Sub(start)
		tb.AddRow(n, float64(elapsed.Microseconds())/float64(cfg.Iterations))
	}
	return tb, nil
}

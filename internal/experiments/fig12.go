package experiments

import (
	"fmt"
	"time"

	"kubeshare/internal/core"
	"kubeshare/internal/core/schedfw"
	"kubeshare/internal/kube/api"
	"kubeshare/internal/metrics"
	"kubeshare/internal/sim"
	"kubeshare/internal/workload"
)

// The two interference job profiles of §5.5. Both request less than half a
// GPU so any two can share, but Job A over-provisions (requests 0.5, needs
// ≈0.3 duty) while Job B under-provisions (requests 0.4, needs ≈0.75 duty).
// B is therefore fragile to contention; A is resilient.
type interferenceProfile struct {
	kind    string
	request float64
	limit   float64
	// kernelMS/hostMS set the natural duty cycle kernel/(kernel+host).
	kernelMS float64
	hostMS   float64
}

var (
	jobA = interferenceProfile{kind: "A", request: 0.5, limit: 1.0, kernelMS: 10, hostMS: 23.3}
	jobB = interferenceProfile{kind: "B", request: 0.4, limit: 1.0, kernelMS: 10, hostMS: 3.3}
)

// interferenceSharePod renders a profile as a sharePod with the given step
// count and optional anti-affinity label.
func interferenceSharePod(name string, prof interferenceProfile, steps int, antiAff string) *core.SharePod {
	return &core.SharePod{
		ObjectMeta: api.ObjectMeta{Name: name},
		Spec: core.SharePodSpec{
			GPURequest:   prof.request,
			GPULimit:     prof.limit,
			GPUMem:       workload.MemShareSmall,
			AntiAffinity: antiAff,
			Pod: api.PodSpec{Containers: []api.Container{{
				Name:  "train",
				Image: workload.TrainImage,
				Env: map[string]string{
					workload.EnvSteps:        fmt.Sprintf("%d", steps),
					workload.EnvStepKernelMS: fmt.Sprintf("%.2f", prof.kernelMS),
					workload.EnvStepHostMS:   fmt.Sprintf("%.2f", prof.hostMS),
				},
			}}},
		},
	}
}

// Fig12Config drives the job-interference experiment.
type Fig12Config struct {
	// Steps is the training length per job.
	Steps int
}

func (c Fig12Config) withDefaults() Fig12Config {
	if c.Steps == 0 {
		c.Steps = 3000
	}
	return c
}

// runCombo measures each job's wall time when the listed jobs share one
// GPU through KubeShare.
func runCombo(steps int, profs ...interferenceProfile) (map[string]time.Duration, error) {
	env := sim.NewEnv()
	c, err := newCluster(env, 1, 1)
	if err != nil {
		return nil, err
	}
	if _, err := schedfw.Install(c, core.Config{}); err != nil {
		return nil, err
	}
	names := make([]string, len(profs))
	env.Go("submit", func(p *sim.Proc) {
		for i, prof := range profs {
			names[i] = fmt.Sprintf("job-%s-%d", prof.kind, i)
			if _, err := core.SharePods(c.API).Create(
				interferenceSharePod(names[i], prof, steps, "")); err != nil {
				panic(err)
			}
		}
	})
	env.Run()
	out := map[string]time.Duration{}
	for _, name := range names {
		sp, err := core.SharePods(c.API).Get(name)
		if err != nil {
			return nil, err
		}
		if sp.Status.Phase != core.SharePodSucceeded {
			return nil, fmt.Errorf("%s: %s (%s)", name, sp.Status.Phase, sp.Status.Message)
		}
		out[name] = sp.Status.FinishTime - sp.Status.RunningTime
	}
	return out, nil
}

// Fig12 measures the slowdown of each job combination on a shared GPU
// relative to running alone. The paper's shape: B+B ≈1.5×, all
// combinations involving A ≲1.1×.
func Fig12(cfg Fig12Config) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	// Indices 0–1 are the solo baselines, 2–4 the shared combinations; each
	// combo is an independent single-GPU cluster, so all five fan out.
	combos := [][]interferenceProfile{
		{jobA}, {jobB},
		{jobA, jobA}, {jobB, jobB}, {jobA, jobB},
	}
	walls, err := runIndexed(len(combos), func(i int) (map[string]time.Duration, error) {
		return runCombo(cfg.Steps, combos[i]...)
	})
	if err != nil {
		return nil, err
	}
	baseline := map[string]time.Duration{
		"A": walls[0]["job-A-0"],
		"B": walls[1]["job-B-0"],
	}
	tb := metrics.NewTable("Figure 12: slowdown on a shared GPU per job combination",
		"combo", "job", "slowdown")
	for ci, combo := range combos[2:] {
		label := combo[0].kind + "+" + combo[1].kind
		for i, prof := range combo {
			name := fmt.Sprintf("job-%s-%d", prof.kind, i)
			slow := walls[ci+2][name].Seconds() / baseline[prof.kind].Seconds()
			tb.AddRow(label, prof.kind, slow)
		}
	}
	return tb, nil
}

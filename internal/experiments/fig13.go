package experiments

import (
	"fmt"
	"time"

	"kubeshare/internal/core"
	"kubeshare/internal/core/schedfw"
	"kubeshare/internal/kube"
	"kubeshare/internal/kube/api"
	"kubeshare/internal/metrics"
	"kubeshare/internal/sim"
	"kubeshare/internal/simrand"
	"kubeshare/internal/workload"
)

// Fig13Config drives the interference-workload throughput comparison.
type Fig13Config struct {
	Nodes       int
	GPUsPerNode int
	// Jobs is the total job count per workload.
	Jobs int
	// Steps is each job's training length.
	Steps int
	// Ratios are the Job-A fractions to sweep.
	Ratios []float64
	// MeanInterArrival of the Poisson submission process.
	MeanInterArrival time.Duration
	Seed             int64
}

func (c Fig13Config) withDefaults() Fig13Config {
	if c.Nodes == 0 {
		c.Nodes = 2
	}
	if c.GPUsPerNode == 0 {
		c.GPUsPerNode = 4
	}
	if c.Jobs == 0 {
		c.Jobs = 40
	}
	if c.Steps == 0 {
		c.Steps = 1500
	}
	if len(c.Ratios) == 0 {
		c.Ratios = []float64{0, 0.25, 0.5, 0.75, 1}
	}
	if c.MeanInterArrival == 0 {
		c.MeanInterArrival = 2 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// fig13Setting selects one of the three compared configurations.
type fig13Setting string

const (
	fig13Kubernetes fig13Setting = "kubernetes"
	fig13NoLabel    fig13Setting = "kubeshare"
	fig13AntiAff    fig13Setting = "kubeshare+anti-affinity"
)

// runFig13Workload runs one mixed A/B workload under one setting and
// returns jobs/min.
func runFig13Workload(cfg Fig13Config, ratio float64, setting fig13Setting) (float64, error) {
	env := sim.NewEnv()
	clusterCfg := kube.Config{}
	for i := 0; i < cfg.Nodes; i++ {
		clusterCfg.Nodes = append(clusterCfg.Nodes, kube.NodeConfig{
			Name: fmt.Sprintf("node-%d", i), GPUs: cfg.GPUsPerNode,
		})
	}
	c, err := kube.NewCluster(env, clusterCfg)
	if err != nil {
		return 0, err
	}
	workload.RegisterImages(c)
	if setting != fig13Kubernetes {
		if _, err := schedfw.Install(c, core.Config{}); err != nil {
			return 0, err
		}
	}
	rng := simrand.New(cfg.Seed)
	arrivals := rng.Fork("arrivals")
	kinds := rng.Fork("kinds")
	nA := int(ratio*float64(cfg.Jobs) + 0.5)
	// Deterministic kind sequence: exactly nA Job As, shuffled.
	kindSeq := make([]interferenceProfile, cfg.Jobs)
	for i := range kindSeq {
		if i < nA {
			kindSeq[i] = jobA
		} else {
			kindSeq[i] = jobB
		}
	}
	perm := kinds.Perm(cfg.Jobs)
	env.Go("submit", func(p *sim.Proc) {
		for i := 0; i < cfg.Jobs; i++ {
			p.Sleep(arrivals.ExpDuration(cfg.MeanInterArrival))
			prof := kindSeq[perm[i]]
			name := fmt.Sprintf("job-%02d-%s", i, prof.kind)
			if setting == fig13Kubernetes {
				pod := &api.Pod{
					ObjectMeta: api.ObjectMeta{Name: name},
					Spec: api.PodSpec{Containers: []api.Container{{
						Name:  "train",
						Image: workload.TrainImage,
						Env: map[string]string{
							workload.EnvSteps:        fmt.Sprintf("%d", cfg.Steps),
							workload.EnvStepKernelMS: fmt.Sprintf("%.2f", prof.kernelMS),
							workload.EnvStepHostMS:   fmt.Sprintf("%.2f", prof.hostMS),
						},
						Requests: api.ResourceList{api.ResourceGPU: 1},
					}}},
				}
				if _, err := c.Pods().Create(pod); err != nil {
					panic(err)
				}
				continue
			}
			anti := ""
			if setting == fig13AntiAff && prof.kind == "B" {
				anti = "job-b-spread"
			}
			if _, err := core.SharePods(c.API).Create(
				interferenceSharePod(name, prof, cfg.Steps, anti)); err != nil {
				panic(err)
			}
		}
	})
	env.Run()
	var last time.Duration
	completed := 0
	if setting == fig13Kubernetes {
		for _, pod := range c.Pods().List() {
			if pod.Status.Phase == api.PodSucceeded {
				completed++
				if pod.Status.FinishTime > last {
					last = pod.Status.FinishTime
				}
			}
		}
	} else {
		for _, sp := range core.SharePods(c.API).List() {
			if sp.Status.Phase == core.SharePodSucceeded {
				completed++
				if sp.Status.FinishTime > last {
					last = sp.Status.FinishTime
				}
			}
		}
	}
	if completed != cfg.Jobs {
		return 0, fmt.Errorf("%s ratio %.2f: %d of %d jobs completed", setting, ratio, completed, cfg.Jobs)
	}
	return float64(completed) / last.Minutes(), nil
}

// Fig13 sweeps the Job-A ratio and compares the three settings. The
// paper's crossovers: at ratio 0 KubeShare-without-labels wins despite
// interference; past ratio ≈0.5 the anti-affinity setting is best; at
// ratio 1 both KubeShare settings coincide and beat Kubernetes.
func Fig13(cfg Fig13Config) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	tb := metrics.NewTable("Figure 13: throughput under interference workloads (jobs/min)",
		"jobA_ratio", "kubernetes", "kubeshare", "kubeshare_anti_affinity")
	settings := []fig13Setting{fig13Kubernetes, fig13NoLabel, fig13AntiAff}
	tputs, err := runIndexed(len(cfg.Ratios)*len(settings), func(i int) (float64, error) {
		return runFig13Workload(cfg, cfg.Ratios[i/len(settings)], settings[i%len(settings)])
	})
	if err != nil {
		return nil, err
	}
	for i, ratio := range cfg.Ratios {
		row := tputs[i*len(settings) : (i+1)*len(settings)]
		tb.AddRow(ratio, row[0], row[1], row[2])
	}
	return tb, nil
}

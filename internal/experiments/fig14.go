package experiments

import (
	"fmt"
	"time"

	"kubeshare/internal/chaos"
	"kubeshare/internal/metrics"
)

// Fig14Config drives the availability-under-faults experiment (an extension
// beyond the paper: the original evaluation assumes a healthy cluster).
type Fig14Config struct {
	Seed        int64
	Nodes       int
	GPUsPerNode int
	Jobs        int
	JobDuration time.Duration
	// Intensities are fault-rate multipliers over the chaos soak's baseline
	// schedule; 0 is the fault-free control row. The workload is identical
	// across rows (same seed), so the rows isolate the effect of faults.
	Intensities []float64
}

func (c Fig14Config) withDefaults() Fig14Config {
	if c.Nodes == 0 {
		c.Nodes = 4
	}
	if c.GPUsPerNode == 0 {
		c.GPUsPerNode = 2
	}
	if c.Jobs == 0 {
		c.Jobs = 32
	}
	if c.JobDuration == 0 {
		c.JobDuration = 20 * time.Second
	}
	if len(c.Intensities) == 0 {
		c.Intensities = []float64{0, 0.5, 1, 2}
	}
	return c
}

// Fig14 measures service availability as fault intensity rises: each row
// runs the same seeded serving workload under a scaled chaos schedule (node
// crashes, vGPU holder kills, device faults, watch drops) and reports how
// many jobs completed, how much recovery machinery fired, and how long the
// cluster took to converge. Every row must also pass the full quiescence
// invariants — a leaked device share or wedged sharePod fails the
// experiment, not just a table cell.
func Fig14(cfg Fig14Config) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	tb := metrics.NewTable("Figure 14: availability under injected faults",
		"intensity", "faults", "succeeded", "failed", "availability",
		"restarts", "requeues", "vgpu_recoveries", "watch_resumes", "quiesce_s")
	results, err := runIndexed(len(cfg.Intensities), func(i int) (chaos.SoakResult, error) {
		intensity := cfg.Intensities[i]
		scfg := chaos.SoakConfig{
			Seed:        cfg.Seed,
			Nodes:       cfg.Nodes,
			GPUsPerNode: cfg.GPUsPerNode,
			Jobs:        cfg.Jobs,
			JobDuration: cfg.JobDuration,
		}
		if intensity == 0 {
			scfg.NoFaults = true
		} else {
			base := chaos.SoakConfig{}.WithDefaults().Faults
			scfg.Faults = chaos.Config{
				NodeCrashMean:           scaleMean(base.NodeCrashMean, intensity),
				NodeOutageMean:          base.NodeOutageMean,
				HolderKillMean:          scaleMean(base.HolderKillMean, intensity),
				DeviceFaultMean:         scaleMean(base.DeviceFaultMean, intensity),
				DeviceOutageMean:        base.DeviceOutageMean,
				WatchDropMean:           scaleMean(base.WatchDropMean, intensity),
				APIRestartMean:          scaleMean(base.APIRestartMean, intensity),
				APIRestartTornTailEvery: base.APIRestartTornTailEvery,
			}
		}
		res, err := chaos.Soak(scfg)
		if err != nil {
			return res, err
		}
		for _, v := range res.Violations {
			err = fmt.Errorf("intensity %v: invariant violated: %w", intensity, v)
			break
		}
		return res, err
	})
	if err != nil {
		return nil, err
	}
	for i, res := range results {
		total := res.Succeeded + res.Failed
		availability := 0.0
		if total > 0 {
			availability = float64(res.Succeeded) / float64(total)
		}
		tb.AddRow(cfg.Intensities[i], res.Faults.Total(), res.Succeeded, res.Failed,
			availability, res.Restarts, int(res.Requeues), int(res.Recoveries),
			res.Resumes, res.Elapsed.Seconds())
	}
	return tb, nil
}

// scaleMean divides a baseline mean interval by the intensity multiplier:
// intensity 2 fires faults twice as often.
func scaleMean(mean time.Duration, intensity float64) time.Duration {
	return time.Duration(float64(mean) / intensity)
}

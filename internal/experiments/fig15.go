package experiments

import (
	"fmt"
	"time"

	"kubeshare/internal/core"
	"kubeshare/internal/core/schedfw"
	"kubeshare/internal/kube/api"
	"kubeshare/internal/kube/apiserver"
	"kubeshare/internal/metrics"
	"kubeshare/internal/sim"
	"kubeshare/internal/workload"
)

// Fig15Config drives the scheduler-throughput experiment (a framework
// extension with no paper counterpart): sustained scheduling decisions per
// second of KubeShare-Sched on the plugin-phase framework, swept over the
// pending-queue depth for three driver modes:
//
//   - single  — batch size 1, the legacy one-decision-per-cycle loop;
//   - batched — one cycle drains up to Batch decisions against the cycle
//     transaction and commits them in bulk, amortizing the per-cycle
//     latency (and, in real time, the snapshot materialization and the
//     age sort) over the whole batch;
//   - gang    — the batched driver with the workload arranged into
//     all-or-nothing gangs of Gang members, measuring the overhead of
//     gang gathering and checkpoint/rollback on the same cycle budget.
//
// Two quantities per point: virtual decisions/sec (simulated time — the
// quantity the cycle-latency model bounds at 1/CycleLatency for the single
// driver and Batch/CycleLatency for the batched ones) and real CPU
// microseconds per decision (wall time of the whole run divided by
// placements, the implementation cost that Figure 11 measures for one
// decision in isolation).
type Fig15Config struct {
	// Counts are the pending-SharePod queue depths to sweep.
	Counts []int
	// Batch is the cycle budget of the batched and gang modes.
	Batch int
	// Gang is the gang size of the gang mode (Counts must divide by it).
	Gang int
	// Now returns wall-clock time; injectable for tests.
	Now func() time.Time
}

func (c Fig15Config) withDefaults() Fig15Config {
	if len(c.Counts) == 0 {
		c.Counts = []int{1000, 10000}
	}
	if c.Batch == 0 {
		c.Batch = 64
	}
	if c.Gang == 0 {
		c.Gang = 4
	}
	if c.Now == nil {
		c.Now = time.Now //det:allow — injectable; the µs/decision column measures real CPU cost, not sim time
	}
	return c
}

// fig15Run schedules n pending sharePods to completion under one driver
// mode and returns (virtual elapsed, real elapsed, decision count).
func fig15Run(n, batch, gangSize int, now func() time.Time) (time.Duration, time.Duration, int64) {
	env := sim.NewEnv()
	srv := apiserver.New(env)
	// Each sharePod asks for half a GPU, so two share a vGPU: n pods fill
	// n/8 4-GPU nodes exactly, and every decision exercises the full
	// filter→score path over a growing pool.
	nodes := (n + 7) / 8
	for i := 0; i < nodes; i++ {
		node := &api.Node{
			ObjectMeta: api.ObjectMeta{Name: fmt.Sprintf("node-%04d", i)},
			Status: api.NodeStatus{
				Capacity:    api.ResourceList{api.ResourceGPU: 4},
				Allocatable: api.ResourceList{api.ResourceGPU: 4},
				Ready:       true,
			},
		}
		if _, err := apiserver.Nodes(srv).Create(node); err != nil {
			panic(err)
		}
	}
	for i := 0; i < n; i++ {
		sp := &core.SharePod{
			ObjectMeta: api.ObjectMeta{Name: fmt.Sprintf("sp-%05d", i)},
			Spec: core.SharePodSpec{
				GPURequest: 0.5, GPULimit: 1.0, GPUMem: workload.MemShareHalf,
				Pod: api.PodSpec{Containers: []api.Container{{Name: "c", Image: "i"}}},
			},
		}
		if gangSize > 1 {
			sp.Spec.Gang = fmt.Sprintf("gang-%05d", i/gangSize)
			sp.Spec.GangSize = gangSize
		}
		if _, err := core.SharePods(srv).Create(sp); err != nil {
			panic(err)
		}
	}
	sched := schedfw.New(env, srv, schedfw.WithBatchSize(batch))
	start := now()
	sched.Start()
	env.Run()
	real := now().Sub(start)
	virtual := env.Now()
	sched.Stop()
	placed := 0
	for _, sp := range core.SharePods(srv).List() {
		if sp.Placed() {
			placed++
		}
	}
	if placed != n {
		panic(fmt.Sprintf("fig15: %d/%d sharePods placed (batch=%d gang=%d)", placed, n, batch, gangSize))
	}
	return virtual, real, sched.Stats().Decisions
}

// Fig15 sweeps queue depth × driver mode and reports throughput. The
// batched driver's virtual decisions/sec exceeds the single driver's by
// roughly the batch factor (the acceptance bar is 3x at the 10k point).
func Fig15(cfg Fig15Config) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	tb := metrics.NewTable("Figure 15: scheduler throughput vs pending-queue depth",
		"mode", "sharepods", "virtual_decisions_per_sec", "real_us_per_decision")
	for _, n := range cfg.Counts {
		for _, mode := range []struct {
			name  string
			batch int
			gang  int
		}{
			{"single", 1, 0},
			{"batched", cfg.Batch, 0},
			{"batched+gang", cfg.Batch, cfg.Gang},
		} {
			virtual, real, decisions := fig15Run(n, mode.batch, mode.gang, cfg.Now)
			dps := float64(n) / virtual.Seconds()
			usPer := float64(real.Microseconds()) / float64(decisions)
			tb.AddRow(mode.name, n, fmt.Sprintf("%.1f", dps), fmt.Sprintf("%.2f", usPer))
		}
	}
	return tb, nil
}

package experiments

import (
	"fmt"
	"time"

	"kubeshare/internal/core"
	"kubeshare/internal/core/schedfw"
	"kubeshare/internal/kube/api"
	"kubeshare/internal/kube/apiserver"
	"kubeshare/internal/metrics"
	"kubeshare/internal/sim"
	"kubeshare/internal/workload"
)

// Fig16Config drives the scale sweep of the partitioned hot path (a
// framework extension with no paper counterpart): the batched parallel-phase
// scheduler working through 1k → 10k → 100k sharePods on a bounded device
// pool, swept over the event-lane count.
//
// Unlike Figure 15's one-shot backlog, the workload here churns: arrivals
// are paced in waves matched to the pool's drain rate, and a completion
// sweeper retires placed sharePods after a fixed service time, so the
// device pool stays at cluster scale while the sharePod count grows by two
// orders of magnitude — the sweep measures the hot path (ranking over the
// live pool, store traffic, watch fan-out), not an ever-growing pool.
//
// Each (size, lanes) point reports wall-clock time and the lane-1 speedup
// ratio. The virtual-side quantities — placements, decisions, makespan, and
// a hash over every placement tuple — are byte-identical across lane counts
// by construction, and the sweep errors out if any lane count disagrees:
// the lane partition may only distribute the computation, never change it.
// Wall-clock speedup requires real cores; with fewer CPUs than lanes the
// extra lanes just timeslice.
type Fig16Config struct {
	// Sizes are the sharePod counts swept (defaults 1k, 10k, 100k).
	Sizes []int
	// Lanes are the event-lane counts swept at each size.
	Lanes []int
	// Batch is the cycle budget of the batched driver.
	Batch int
	// Nodes and GPUsPerNode bound the device pool.
	Nodes       int
	GPUsPerNode int
	// Service is how long a placed sharePod holds its slice before the
	// completion sweeper retires it.
	Service time.Duration
	// Now returns wall-clock time; injectable for tests.
	Now func() time.Time
}

func (c Fig16Config) withDefaults() Fig16Config {
	if len(c.Sizes) == 0 {
		c.Sizes = []int{1000, 10000, 100000}
	}
	if len(c.Lanes) == 0 {
		c.Lanes = []int{1, 2, 4, 8}
	}
	if c.Batch == 0 {
		c.Batch = 256
	}
	if c.Nodes == 0 {
		c.Nodes = 128
	}
	if c.GPUsPerNode == 0 {
		c.GPUsPerNode = 8
	}
	if c.Service == 0 {
		c.Service = 4 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now //det:allow — injectable; wall columns measure real CPU cost, not sim time
	}
	return c
}

// fig16Result is one run's outcome: the wall-side measurement plus the
// virtual-side quantities that must agree across lane counts.
type fig16Result struct {
	wall      time.Duration
	virtual   time.Duration
	placed    int
	decisions int64
	conflicts int64
	hash      uint64
}

// metricsKey is the virtual-side identity compared across lane counts.
func (r fig16Result) metricsKey() string {
	return fmt.Sprintf("virtual=%v placed=%d decisions=%d hash=%016x",
		r.virtual, r.placed, r.decisions, r.hash)
}

// fig16Run schedules n sharePods to completion with the given lane count.
func fig16Run(n, lanes int, cfg Fig16Config) fig16Result {
	env := sim.NewEnv()
	env.SetLanes(lanes)
	srv := apiserver.New(env)
	for i := 0; i < cfg.Nodes; i++ {
		node := &api.Node{
			ObjectMeta: api.ObjectMeta{Name: fmt.Sprintf("node-%04d", i)},
			Status: api.NodeStatus{
				Capacity:    api.ResourceList{api.ResourceGPU: int64(cfg.GPUsPerNode)},
				Allocatable: api.ResourceList{api.ResourceGPU: int64(cfg.GPUsPerNode)},
				Ready:       true,
			},
		}
		if _, err := apiserver.Nodes(srv).Create(node); err != nil {
			panic(err)
		}
	}

	// Two tenants share a vGPU (0.45 + 0.45), so the pool retires
	// capacity/Service sharePods per unit time at saturation; waves arrive
	// at exactly that rate, keeping the pool saturated and the pending
	// backlog bounded (an unbounded backlog would re-decide every waiting
	// unit each cycle, measuring queue thrash instead of the hot path).
	capacity := 2 * cfg.Nodes * cfg.GPUsPerNode
	waveGap := cfg.Service / 8
	wave := capacity / 8
	if wave < 1 {
		wave = 1
	}

	env.Go("submitter", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			sp := &core.SharePod{
				ObjectMeta: api.ObjectMeta{Name: fmt.Sprintf("sp-%06d", i)},
				Spec: core.SharePodSpec{
					GPURequest: 0.45, GPULimit: 1.0, GPUMem: workload.MemShareChurn,
					Pod: api.PodSpec{Containers: []api.Container{{Name: "c", Image: "i"}}},
				},
			}
			if _, err := core.SharePods(srv).Create(sp); err != nil {
				panic(err)
			}
			if (i+1)%wave == 0 {
				p.Sleep(waveGap)
			}
		}
	})

	// Completion sweeper: retire placed sharePods Service after scheduling.
	// The status write flows back to the scheduler through its SharePod
	// watch, freeing the slice for the next wave — the churn that keeps the
	// pool bounded.
	done := 0
	env.Go("completer", func(p *sim.Proc) {
		for done < n {
			p.Sleep(cfg.Service / 4)
			cutoff := env.Now() - cfg.Service
			var expired []string
			core.SharePods(srv).Scan(func(sp *core.SharePod) bool {
				if sp.Placed() && !sp.Terminated() && sp.Status.ScheduledTime <= cutoff {
					expired = append(expired, sp.Name)
				}
				return true
			})
			for _, name := range expired {
				if _, err := core.SharePods(srv).MutateStatus(name, func(sp *core.SharePod) error {
					sp.Status.Phase = core.SharePodSucceeded
					sp.Status.FinishTime = env.Now()
					return nil
				}); err != nil {
					panic(fmt.Sprintf("fig16: complete %s: %v", name, err))
				}
				done++
			}
		}
	})

	sched := schedfw.New(env, srv,
		schedfw.WithBatchSize(cfg.Batch), schedfw.WithParallelPhases())
	start := cfg.Now()
	sched.Start()
	env.Run()
	wall := cfg.Now().Sub(start)
	virtual := env.Now()
	sched.Stop()

	res := fig16Result{wall: wall, virtual: virtual, decisions: sched.Stats().Decisions}
	res.conflicts = srv.Obs().Counter(schedfw.MetricSchedConflicts).Value()
	// Placement hash: FNV-1a over every (name, gpuid, node, scheduled)
	// tuple in name order — the byte-identical metrics-table witness.
	h := uint64(14695981039346656037)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
	}
	core.SharePods(srv).Scan(func(sp *core.SharePod) bool {
		if sp.Placed() {
			res.placed++
			mix(fmt.Sprintf("%s|%s|%s|%d", sp.Name, sp.Spec.GPUID, sp.Spec.NodeName, sp.Status.ScheduledTime))
		}
		return true
	})
	res.hash = h
	if res.placed != n {
		panic(fmt.Sprintf("fig16: %d/%d sharePods placed (lanes=%d)", res.placed, n, lanes))
	}
	return res
}

// Fig16 sweeps sharePod count × lane count and reports wall-clock scaling.
// It fails if any lane count's virtual-side metrics diverge from lane 1 —
// the determinism contract of the lane partition.
func Fig16(cfg Fig16Config) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	tb := metrics.NewTable("Figure 16: hot-path scaling vs sharePod count and lane count",
		"sharepods", "lanes", "wall_ms", "virtual_makespan_s", "decisions", "conflicts", "speedup_vs_1lane", "placements_hash")
	for _, n := range cfg.Sizes {
		var base fig16Result
		for i, lanes := range cfg.Lanes {
			r := fig16Run(n, lanes, cfg)
			if i == 0 {
				base = r
			} else if r.metricsKey() != base.metricsKey() {
				return nil, fmt.Errorf("fig16: lanes=%d diverged at n=%d: %s != %s",
					lanes, n, r.metricsKey(), base.metricsKey())
			}
			speedup := float64(base.wall) / float64(r.wall)
			tb.AddRow(n, lanes, r.wall.Milliseconds(),
				fmt.Sprintf("%.1f", r.virtual.Seconds()), r.decisions, r.conflicts,
				fmt.Sprintf("%.2f", speedup), fmt.Sprintf("%016x", r.hash))
		}
	}
	return tb, nil
}

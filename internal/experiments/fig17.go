package experiments

import (
	"fmt"
	"time"

	"kubeshare/internal/chaos"
	"kubeshare/internal/core"
	"kubeshare/internal/core/schedfw"
	"kubeshare/internal/kube"
	"kubeshare/internal/kube/apiserver"
	"kubeshare/internal/metrics"
	"kubeshare/internal/sim"
	"kubeshare/internal/simrand"
	"kubeshare/internal/workload"
)

// Fig17Config drives the control-plane recovery sweep (an extension beyond
// the paper: the original evaluation assumes the apiserver never dies).
// Each cell runs the same seeded serving workload while the apiserver is
// crash/restarted on a Poisson schedule, sweeping restart intensity against
// checkpoint cadence, and reports what durability costs: the modeled
// unavailability window (checkpoint re-read + WAL replay), the measured
// warm-recovery time (how long consumers take to re-converge on the
// restored state), and the replayed-record count the checkpoint interval
// trades against.
type Fig17Config struct {
	Seed        int64
	Nodes       int
	GPUsPerNode int
	Jobs        int
	JobDuration time.Duration

	// RestartMeans sweeps restart intensity: the mean interval between
	// apiserver crash/restarts.
	RestartMeans []time.Duration
	// CheckpointIntervals sweeps the checkpointer cadence. A negative entry
	// disables periodic checkpoints entirely — recovery then replays the
	// whole WAL from the enable-time checkpoint, the degenerate point that
	// bounds the sweep.
	CheckpointIntervals []time.Duration
	// TornTailEvery corrupts the WAL tail before every Nth restart, so the
	// sweep also prices the truncate-and-recover path (default 3).
	TornTailEvery int
}

func (c Fig17Config) withDefaults() Fig17Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Nodes == 0 {
		c.Nodes = 3
	}
	if c.GPUsPerNode == 0 {
		c.GPUsPerNode = 2
	}
	if c.Jobs == 0 {
		c.Jobs = 24
	}
	if c.JobDuration == 0 {
		c.JobDuration = 20 * time.Second
	}
	if len(c.RestartMeans) == 0 {
		c.RestartMeans = []time.Duration{40 * time.Second, 20 * time.Second, 10 * time.Second}
	}
	if len(c.CheckpointIntervals) == 0 {
		c.CheckpointIntervals = []time.Duration{5 * time.Second, 30 * time.Second, -1}
	}
	if c.TornTailEvery == 0 {
		c.TornTailEvery = 3
	}
	return c
}

// fig17Result is one (restart mean, checkpoint interval) cell.
type fig17Result struct {
	restarts    int
	tornTails   int
	replayed    int
	outage      time.Duration // modeled unavailability, summed
	recoverySum time.Duration // measured consumer re-convergence, summed
	recoveryMax time.Duration
	succeeded   int
	makespan    time.Duration
}

// fig17Run executes one cell: the soak workload with the apiserver dying on
// a Poisson schedule and durability checkpointing at the given cadence.
// After every restart a probe polls the scheduler's snapshot against a full
// relist; the time until they agree again is the measured recovery window
// (zero when the restore was exact and the relist diff empty — the warm
// path working as designed; nonzero when a torn tail reverted state the
// consumers had already acted on).
func fig17Run(cfg Fig17Config, restartMean, ckptInterval time.Duration) (fig17Result, error) {
	env := sim.NewEnv()
	kcfg := kube.Config{}
	for i := 0; i < cfg.Nodes; i++ {
		kcfg.Nodes = append(kcfg.Nodes, kube.NodeConfig{
			Name: fmt.Sprintf("node-%d", i),
			GPUs: cfg.GPUsPerNode,
		})
	}
	c, err := kube.NewCluster(env, kcfg)
	if err != nil {
		return fig17Result{}, err
	}
	workload.RegisterImages(c)
	c.API.EnableDurability(apiserver.DurabilityConfig{CheckpointInterval: ckptInterval})
	ks, err := schedfw.Install(c, core.Config{})
	if err != nil {
		return fig17Result{}, err
	}

	submitWindow := 40 * time.Second
	jobs := workload.Generate(workload.GeneratorConfig{
		Jobs:             cfg.Jobs,
		MeanInterArrival: submitWindow / time.Duration(cfg.Jobs),
		DemandMean:       0.35,
		DemandVar:        1,
		JobDuration:      cfg.JobDuration,
		Seed:             simrand.New(cfg.Seed).Fork("workload").Seed(),
	})
	env.Go("fig17-submitter", func(p *sim.Proc) {
		for _, j := range jobs {
			if wait := j.Arrival - env.Now(); wait > 0 {
				p.Sleep(wait)
			}
			if _, err := core.SharePods(c.API).Create(workload.SharePodFor(j)); err != nil {
				panic(fmt.Sprintf("fig17: submit %s: %v", j.Name, err))
			}
		}
	})

	horizon := submitWindow + cfg.JobDuration
	var res fig17Result
	rng := simrand.New(cfg.Seed).Fork("apiserver")
	env.Go("fig17-restarter", func(p *sim.Proc) {
		for {
			p.Sleep(rng.ExpDuration(restartMean))
			if env.Now() >= horizon {
				return
			}
			if (res.restarts+1)%cfg.TornTailEvery == 0 && c.API.TearWALTail(rng.Intn(5)) {
				res.tornTails++
			}
			st, err := c.API.Restart()
			if err != nil {
				panic(fmt.Sprintf("fig17: restart: %v", err))
			}
			res.restarts++
			res.replayed += st.Replayed
			res.outage += time.Duration(st.ModeledOutageNS)
			// Recovery probe: the restart is recovered once the scheduler's
			// incremental snapshot again materializes exactly the pool a full
			// relist builds — every reflector has re-synced into the new epoch.
			t0 := env.Now()
			for ks.Sched.VerifySnapshot() != nil {
				p.Sleep(10 * time.Millisecond)
			}
			rec := env.Now() - t0
			res.recoverySum += rec
			if rec > res.recoveryMax {
				res.recoveryMax = rec
			}
		}
	})

	env.RunUntil(20 * time.Minute)
	for _, sp := range core.SharePods(c.API).List() {
		if sp.Status.FinishTime > res.makespan {
			res.makespan = sp.Status.FinishTime
		}
		if sp.Status.Phase == core.SharePodSucceeded {
			res.succeeded++
		}
	}
	// A cell is only valid if the cluster fully recovered: every quiescence
	// invariant holds (nothing wedged, nothing leaked, snapshot equivalent).
	for _, v := range chaos.VerifyQuiescence(c, ks) {
		return res, fmt.Errorf("fig17: mean=%v ckpt=%v: invariant violated: %w", restartMean, ckptInterval, v)
	}
	return res, nil
}

// Fig17 sweeps restart intensity × checkpoint interval and reports the
// durability/recovery trade-off: frequent checkpoints buy short replays
// (small unavailability windows) at a steady serialization cost; rare or
// absent checkpoints let the WAL grow until every restart pays a long
// replay. Measured recovery time stays near zero throughout — the
// warm-recovery contract — except where torn tails force consumers to
// re-converge on reverted state.
func Fig17(cfg Fig17Config) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	tb := metrics.NewTable("Figure 17: control-plane crash/restart recovery sweep",
		"restart_mean_s", "ckpt_interval_s", "restarts", "torn_tails", "replayed",
		"outage_ms", "recovery_ms_mean", "recovery_ms_max", "succeeded", "makespan_s")
	type cell struct{ mean, ckpt time.Duration }
	var cells []cell
	for _, mean := range cfg.RestartMeans {
		for _, ckpt := range cfg.CheckpointIntervals {
			cells = append(cells, cell{mean, ckpt})
		}
	}
	results, err := runIndexed(len(cells), func(i int) (fig17Result, error) {
		return fig17Run(cfg, cells[i].mean, cells[i].ckpt)
	})
	if err != nil {
		return nil, err
	}
	for i, r := range results {
		ckptS := cells[i].ckpt.Seconds()
		if cells[i].ckpt < 0 {
			ckptS = -1 // periodic checkpoints disabled
		}
		meanRec := 0.0
		if r.restarts > 0 {
			meanRec = float64(r.recoverySum.Milliseconds()) / float64(r.restarts)
		}
		tb.AddRow(cells[i].mean.Seconds(), ckptS, r.restarts, r.tornTails, r.replayed,
			fmt.Sprintf("%.3f", float64(r.outage)/float64(time.Millisecond)),
			fmt.Sprintf("%.2f", meanRec), r.recoveryMax.Milliseconds(),
			r.succeeded, fmt.Sprintf("%.1f", r.makespan.Seconds()))
	}
	return tb, nil
}

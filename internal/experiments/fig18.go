package experiments

import (
	"errors"
	"fmt"
	"time"

	"kubeshare/internal/core"
	"kubeshare/internal/core/schedfw"
	"kubeshare/internal/devlib"
	"kubeshare/internal/devlib/sharing"
	"kubeshare/internal/kube/api"
	"kubeshare/internal/metrics"
	"kubeshare/internal/sim"
	"kubeshare/internal/workload"
)

// Fig18Config sizes the sharing-strategy comparison: the same seeded serving
// workload is replayed under each strategy (token time-slicing, MPS overlap,
// replica time-slicing) at two kernel granularities. The demand is chosen so
// two tenants pack a device near capacity — there the token path's per-grant
// handoff is pure overhead on small kernels (≈10% at 5 ms) while the overlap
// strategies run the same mix without it.
type Fig18Config struct {
	Nodes       int
	GPUsPerNode int
	Jobs        int
	// MeanInterArrival paces the Poisson arrivals.
	MeanInterArrival time.Duration
	// JobDuration is each job's serving time.
	JobDuration time.Duration
	// DemandMean is each job's GPU busy fraction (variance 0: packing is
	// deterministic, so the strategy is the only variable across arms).
	DemandMean float64
	Seed       int64
}

func (c Fig18Config) withDefaults() Fig18Config {
	if c.Nodes == 0 {
		c.Nodes = 2
	}
	if c.GPUsPerNode == 0 {
		c.GPUsPerNode = 4
	}
	if c.Jobs == 0 {
		c.Jobs = 32
	}
	if c.MeanInterArrival == 0 {
		c.MeanInterArrival = 500 * time.Millisecond
	}
	if c.JobDuration == 0 {
		c.JobDuration = 20 * time.Second
	}
	if c.DemandMean == 0 {
		c.DemandMean = 0.48
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// fig18Arm is one strategy × kernel-mix cell.
type fig18Arm struct {
	mode     sharing.Mode
	mix      string
	kernelMS int
}

// fig18Arms enumerates the comparison grid: every strategy against a
// small-kernel inference mix (5 ms requests, where grant overhead bites) and
// a large-kernel mix (50 ms, where it amortizes).
func fig18Arms() []fig18Arm {
	var arms []fig18Arm
	for _, mix := range []struct {
		name     string
		kernelMS int
	}{{"small-kernel", 5}, {"large-kernel", 50}} {
		for _, mode := range []sharing.Mode{sharing.ModeToken, sharing.ModeMPS, sharing.ModeReplica} {
			arms = append(arms, fig18Arm{mode: mode, mix: mix.name, kernelMS: mix.kernelMS})
		}
	}
	return arms
}

// Fig18 runs the strategy comparison and reports per-arm throughput, mean
// stretch ((finish − arrival) / serving time — the tenant-visible slowdown)
// and the mean per-GPU Jain fairness index from the auditor windows. Every
// arm replays the identical job list (same seed, same arrivals, same
// demands); only the sharing strategy and kernel granularity differ, so the
// columns isolate the strategy's own cost.
func Fig18(cfg Fig18Config) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	arms := fig18Arms()
	type armOut struct {
		completed int
		tput      float64
		stretch   float64
		jain      float64
	}
	outs, err := runIndexed(len(arms), func(i int) (armOut, error) {
		arm := arms[i]
		jobs := workload.Generate(workload.GeneratorConfig{
			Jobs:             cfg.Jobs,
			MeanInterArrival: cfg.MeanInterArrival,
			DemandMean:       cfg.DemandMean,
			JobDuration:      cfg.JobDuration,
			Mode:             string(arm.mode),
			MemShare:         workload.MemShareSmall,
			ReqKernelMS:      arm.kernelMS,
			Seed:             cfg.Seed,
		})
		res, err := RunSharing(SharingConfig{
			System: KubeShare, Nodes: cfg.Nodes, GPUsPerNode: cfg.GPUsPerNode,
			Jobs: jobs,
			// The node default matches the per-pod annotation, so both the
			// annotation path and the backend default are exercised.
			Devlib:    core.Config{Devlib: devlib.Config{Mode: arm.mode}},
			Telemetry: 2 * time.Second,
		})
		if err != nil {
			return armOut{}, err
		}
		if res.Failed > 0 {
			return armOut{}, fmt.Errorf("fig18 %s/%s: %d jobs failed", arm.mode, arm.mix, res.Failed)
		}
		return armOut{
			completed: res.Completed,
			tput:      res.ThroughputPerMin,
			stretch:   meanStretch(jobs, res.FinishTimes),
			jain:      meanJain(res.Telemetry.Auditor),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	tb := metrics.NewTable("Figure 18: sharing-strategy comparison (same workload per arm)",
		"strategy", "mix", "kernel_ms", "completed", "throughput_jobs_min", "mean_stretch", "jain_mean")
	for i, arm := range arms {
		o := outs[i]
		tb.AddRow(string(arm.mode), arm.mix, arm.kernelMS, o.completed,
			fmt.Sprintf("%.2f", o.tput), fmt.Sprintf("%.3f", o.stretch),
			fmt.Sprintf("%.3f", o.jain))
	}
	return tb, nil
}

// meanStretch averages (finish − arrival) / serving-duration over completed
// jobs: 1.0 would be a job that finished the instant arrivals stopped; queue
// waits, grant handoffs and backlog drain all push it up.
func meanStretch(jobs []workload.Job, finish map[string]time.Duration) float64 {
	var sum float64
	var n int
	for _, j := range jobs {
		f, ok := finish[j.Name]
		if !ok || j.Duration <= 0 {
			continue
		}
		sum += float64(f-j.Arrival) / float64(j.Duration)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// meanJain averages the auditor's per-GPU Jain index over every window that
// observed an active tenant.
func meanJain(a *core.Auditor) float64 {
	var sum float64
	var n int
	for _, w := range a.Windows() {
		for _, j := range w.Jain {
			sum += j
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Fig18MemBytes exercises the memory-quantity request mode: a sharePod
// asking for more bytes than any device holds is rejected at admission with
// a typed *core.ValidationError, while a byte-denominated workload sized so
// two tenants fill a device runs to completion with the MemoryFit filter
// packing by bytes (no over-placement, no OOM kills).
func Fig18MemBytes(cfg Fig18Config) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	tb := metrics.NewTable("Figure 18 (memory-quantity mode): byte requests at admission and placement",
		"case", "jobs", "completed", "failed", "rejected_typed")

	// Admission: one byte over device capacity must be refused with the
	// typed error before anything is stored.
	env := sim.NewEnv()
	c, err := newCluster(env, 1, 1)
	if err != nil {
		return nil, err
	}
	if _, err := schedfw.Install(c, core.Config{}); err != nil {
		return nil, err
	}
	rejectedTyped := 0
	env.Go("oversubscriber", func(p *sim.Proc) {
		_, err := core.SharePods(c.API).Create(&core.SharePod{
			ObjectMeta: api.ObjectMeta{Name: "over-mem"},
			Spec: core.SharePodSpec{
				GPURequest:  0.5,
				GPULimit:    1.0,
				GPUMemBytes: core.DeviceMemBytes + 1,
				Pod: api.PodSpec{Containers: []api.Container{{
					Name: "serve", Image: workload.ServeImage,
				}}},
			},
		})
		var ve *core.ValidationError
		if errors.As(err, &ve) {
			rejectedTyped = 1
		}
	})
	env.Run()
	tb.AddRow("oversubscribed-admission", 1, 0, 0, rejectedTyped)
	if rejectedTyped == 0 {
		return nil, fmt.Errorf("fig18: oversubscribed gpu_mem_bytes was not rejected with a typed ValidationError")
	}

	// Placement: 6 GiB tenants — two fit a 16 GiB device, a third does not,
	// so MemoryFit must spill the overflow to other devices and every job
	// still completes.
	jobs := workload.Generate(workload.GeneratorConfig{
		Jobs:             cfg.Jobs / 2,
		MeanInterArrival: cfg.MeanInterArrival,
		DemandMean:       0.3,
		JobDuration:      cfg.JobDuration,
		MemBytes:         6 << 30,
		ReqKernelMS:      5,
		Seed:             cfg.Seed,
	})
	res, err := RunSharing(SharingConfig{
		System: KubeShare, Nodes: cfg.Nodes, GPUsPerNode: cfg.GPUsPerNode,
		Jobs: jobs,
	})
	if err != nil {
		return nil, err
	}
	tb.AddRow("byte-workload-6gib", len(jobs), res.Completed, res.Failed, 0)
	if res.Failed > 0 || res.Completed != len(jobs) {
		return nil, fmt.Errorf("fig18: byte workload completed %d/%d, failed %d",
			res.Completed, len(jobs), res.Failed)
	}
	return tb, nil
}

package experiments

import (
	"fmt"
	"time"

	"kubeshare/internal/core"
	"kubeshare/internal/devlib"
	"kubeshare/internal/metrics"
	"kubeshare/internal/obs/attr"
	"kubeshare/internal/workload"
)

// Fig19Config sizes the latency-attribution experiment: the Fig 18
// strategy × kernel-mix grid replayed with critical-path attribution on,
// reporting where each strategy spends the submit-to-first-kernel-launch
// interval instead of only how much it throughputs.
type Fig19Config struct {
	Fig18Config
	// Lanes partitions each arm's simulation into event lanes; the
	// attribution — like every other observable — is byte-identical at
	// any lane count.
	Lanes int
}

// Fig19 replays the Fig 18 arms with attribution enabled and tabulates
// each arm's phase-level latency budget: the mean per-sharePod duration
// of every attribution phase, over completed chains only (open chains
// are counted, not zero-filled). The token arms pay their grant handoff
// in token_wait, where the overlap strategies show it amortized away —
// the same contrast Fig 18 shows in throughput, here attributed to the
// exact layer that causes it.
func Fig19(cfg Fig19Config) (*metrics.Table, error) {
	cfg.Fig18Config = cfg.Fig18Config.withDefaults()
	arms := fig18Arms()
	type armOut struct {
		chains int
		open   int
		phases map[attr.Phase]time.Duration
		e2e    time.Duration
	}
	outs, err := runIndexed(len(arms), func(i int) (armOut, error) {
		arm := arms[i]
		jobs := workload.Generate(workload.GeneratorConfig{
			Jobs:             cfg.Jobs,
			MeanInterArrival: cfg.MeanInterArrival,
			DemandMean:       cfg.DemandMean,
			JobDuration:      cfg.JobDuration,
			Mode:             string(arm.mode),
			MemShare:         workload.MemShareSmall,
			ReqKernelMS:      arm.kernelMS,
			Seed:             cfg.Seed,
		})
		res, err := RunSharing(SharingConfig{
			System: KubeShare, Nodes: cfg.Nodes, GPUsPerNode: cfg.GPUsPerNode,
			Jobs:        jobs,
			Devlib:      core.Config{Devlib: devlib.Config{Mode: arm.mode}},
			Attribution: true,
			Lanes:       cfg.Lanes,
		})
		if err != nil {
			return armOut{}, err
		}
		o := armOut{
			chains: len(res.Attr.Breakdowns),
			open:   len(res.Attr.Open),
			phases: map[attr.Phase]time.Duration{},
		}
		for _, bd := range res.Attr.Breakdowns {
			for ph, d := range bd.Phases {
				o.phases[ph] += d
			}
			o.e2e += bd.EndToEnd
			if got, want := bd.Sum(), bd.EndToEnd; got != want {
				return armOut{}, fmt.Errorf("fig19 %s/%s: %s phases sum to %v, end-to-end %v",
					arm.mode, arm.mix, bd.Key, got, want)
			}
		}
		if o.chains > 0 {
			n := time.Duration(o.chains)
			for ph := range o.phases {
				o.phases[ph] /= n
			}
			o.e2e /= n
		}
		return o, nil
	})
	if err != nil {
		return nil, err
	}
	cols := []string{"strategy", "mix", "chains", "open"}
	for _, ph := range attr.Phases {
		cols = append(cols, string(ph)+"_ms")
	}
	cols = append(cols, "e2e_ms")
	tb := metrics.NewTable("Figure 19: latency attribution by strategy (mean per-sharePod phase budget)", cols...)
	for i, arm := range arms {
		o := outs[i]
		row := []any{string(arm.mode), arm.mix, o.chains, o.open}
		for _, ph := range attr.Phases {
			row = append(row, fmt.Sprintf("%.3f", float64(o.phases[ph])/float64(time.Millisecond)))
		}
		row = append(row, fmt.Sprintf("%.3f", float64(o.e2e)/float64(time.Millisecond)))
		tb.AddRow(row...)
	}
	return tb, nil
}

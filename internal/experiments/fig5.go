package experiments

import (
	"fmt"
	"time"

	"kubeshare/internal/kube/api"
	"kubeshare/internal/metrics"
	"kubeshare/internal/sim"
	"kubeshare/internal/workload"
)

// Fig5Config drives the Figure 5 experiment: the positive correlation
// between a TF-Serving job's GPU usage and its client request rate.
type Fig5Config struct {
	// Rates are the client request rates (req/s) to sweep.
	Rates []float64
	// Duration is the serving window per rate point.
	Duration time.Duration
	Seed     int64
}

// Defaults returns the paper-scale configuration.
func (c Fig5Config) withDefaults() Fig5Config {
	if len(c.Rates) == 0 {
		c.Rates = []float64{2, 4, 8, 12, 16, 20, 24, 32, 40}
	}
	if c.Duration == 0 {
		c.Duration = 60 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Fig5 measures GPU utilization (NVML-style) of a single inference server
// under increasing client request rates.
func Fig5(cfg Fig5Config) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	tb := metrics.NewTable("Figure 5: TF-Serving GPU usage vs client request rate",
		"req_per_s", "gpu_usage")
	utils, err := runIndexed(len(cfg.Rates), func(i int) (float64, error) {
		rate := cfg.Rates[i]
		env := sim.NewEnv()
		c, err := newCluster(env, 1, 1)
		if err != nil {
			return 0, err
		}
		pod := &api.Pod{
			ObjectMeta: api.ObjectMeta{Name: "serve"},
			Spec: api.PodSpec{Containers: []api.Container{{
				Name:  "c",
				Image: workload.ServeImage,
				Env: map[string]string{
					workload.EnvRate:     fmt.Sprintf("%.3f", rate),
					workload.EnvDuration: fmt.Sprintf("%.1f", cfg.Duration.Seconds()),
					workload.EnvSeed:     fmt.Sprintf("%d", cfg.Seed),
				},
				Requests: api.ResourceList{api.ResourceGPU: 1},
			}}},
		}
		env.Go("submit", func(p *sim.Proc) {
			if _, err := c.Pods().Create(pod); err != nil {
				panic(err)
			}
		})
		env.Run()
		dev := c.Nodes[0].GPUs[0]
		util := dev.BusyTime().Seconds() / cfg.Duration.Seconds()
		if util > 1 {
			util = 1
		}
		return util, nil
	})
	if err != nil {
		return nil, err
	}
	for i, rate := range cfg.Rates {
		tb.AddRow(rate, utils[i])
	}
	return tb, nil
}

package experiments

import (
	"fmt"
	"time"

	"kubeshare/internal/core"
	"kubeshare/internal/core/schedfw"
	"kubeshare/internal/kube/api"
	"kubeshare/internal/metrics"
	"kubeshare/internal/sim"
	"kubeshare/internal/workload"
)

// Fig6Config drives the Figure 6 isolation experiment: three training jobs
// with staggered arrivals on a single shared GPU.
type Fig6Config struct {
	// Stagger is the arrival gap between jobs (paper: 200 s).
	Stagger time.Duration
	// SampleEvery is the usage sampling interval.
	SampleEvery time.Duration
	// Quota overrides the token quota (paper default 100 ms).
	Quota time.Duration
}

func (c Fig6Config) withDefaults() Fig6Config {
	if c.Stagger == 0 {
		c.Stagger = 200 * time.Second
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = 10 * time.Second
	}
	return c
}

// fig6Job describes one of the paper's three jobs.
type fig6Job struct {
	name          string
	request       float64
	limit         float64
	arrival       time.Duration
	trainDuration time.Duration // device time the job needs
}

// Fig6Result carries the per-job usage timelines plus the phase table.
type Fig6Result struct {
	Table *metrics.Table
	// Usage holds one series per job (token-hold share over time), the
	// exact signal Figure 6 plots.
	Usage map[string]*metrics.Series
}

// Fig6 reproduces the isolation timeline: Job A (req .3, lim .6) at 0,
// Job B (req .4, lim .6) at +stagger, Job C (req .3, lim .5) at +2×stagger.
// The paper's observable phases: A alone throttled at 0.6; A+B split 0.5
// each; A+B+C at their guaranteed requests; after C finishes, the residual
// is redistributed.
func Fig6(cfg Fig6Config) (*Fig6Result, error) {
	cfg = cfg.withDefaults()
	env := sim.NewEnv()
	c, err := newCluster(env, 1, 1)
	if err != nil {
		return nil, err
	}
	ksCfg := core.Config{}
	if cfg.Quota > 0 {
		ksCfg.Devlib.Quota = cfg.Quota
	}
	ks, err := schedfw.Install(c, ksCfg)
	if err != nil {
		return nil, err
	}
	s := cfg.Stagger
	jobs := []fig6Job{
		// Durations chosen so C finishes at ≈3.3×stagger (the paper's 660 s
		// with stagger 200 s) and A and B continue past it.
		{"job-a", 0.3, 0.6, 0, time.Duration(2.6 * float64(s))},
		{"job-b", 0.4, 0.6, s, time.Duration(1.6 * float64(s))},
		{"job-c", 0.3, 0.5, 2 * s, time.Duration(0.39 * float64(s))},
	}
	for _, j := range jobs {
		j := j
		env.At(j.arrival, func() {
			steps := int(j.trainDuration / (10 * time.Millisecond))
			sp := &core.SharePod{
				ObjectMeta: api.ObjectMeta{Name: j.name},
				Spec: core.SharePodSpec{
					GPURequest: j.request,
					GPULimit:   j.limit,
					GPUMem:     workload.MemShareTraining,
					Pod: api.PodSpec{Containers: []api.Container{{
						Name:  "train",
						Image: workload.TrainImage,
						Env:   map[string]string{workload.EnvSteps: fmt.Sprintf("%d", steps)},
					}}},
				},
			}
			if _, err := core.SharePods(c.API).Create(sp); err != nil {
				panic(err)
			}
		})
	}

	usage := map[string]*metrics.Series{}
	for _, j := range jobs {
		usage[j.name] = &metrics.Series{Name: j.name}
	}
	// Sample each job's usage rate from the node backend.
	env.Go("usage-sampler", func(p *sim.Proc) {
		backend := ks.Backends["node-0"]
		for {
			p.Sleep(cfg.SampleEvery)
			done := 0
			for _, j := range jobs {
				sp, err := core.SharePods(c.API).Get(j.name)
				if err != nil {
					continue
				}
				if sp.Terminated() {
					done++
					continue
				}
				if sp.Status.UUID == "" {
					continue
				}
				mgr := backend.Manager(sp.Status.UUID)
				usage[j.name].Add(env.Now(), mgr.UsageRate(sp.Status.BoundPod+"/train"))
			}
			if done == len(jobs) {
				return
			}
		}
	})
	env.Run()

	tb := metrics.NewTable("Figure 6: GPU isolation timeline (usage share per job)",
		"phase", "window", "job_a", "job_b", "job_c")
	phase := func(label string, from, to time.Duration) {
		tb.AddRow(label, fmt.Sprintf("%v-%v", from, to),
			usage["job-a"].TimeWeightedMean(from, to),
			usage["job-b"].TimeWeightedMean(from, to),
			usage["job-c"].TimeWeightedMean(from, to))
	}
	// Steady-state windows inside each phase (skipping the sliding-window
	// warm-up at each transition).
	warm := time.Duration(0.4 * float64(s))
	phase("A alone (limit 0.6)", warm, s)
	phase("A+B (fair split 0.5/0.5)", s+warm, 2*s)
	phase("A+B+C (requests 0.3/0.4/0.3)", 2*s+warm, time.Duration(3.2*float64(s)))
	return &Fig6Result{Table: tb, Usage: usage}, nil
}

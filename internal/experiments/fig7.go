package experiments

import (
	"fmt"
	"time"

	"kubeshare/internal/core"
	"kubeshare/internal/core/schedfw"
	"kubeshare/internal/devlib"
	"kubeshare/internal/kube/api"
	"kubeshare/internal/metrics"
	"kubeshare/internal/sim"
	"kubeshare/internal/workload"
)

// Fig7Config drives the token-quota overhead experiment.
type Fig7Config struct {
	// Quotas are the token quota settings to sweep (paper: 30–160 ms).
	Quotas []time.Duration
	// Steps is the training length per run.
	Steps int
}

func (c Fig7Config) withDefaults() Fig7Config {
	if len(c.Quotas) == 0 {
		c.Quotas = []time.Duration{
			30 * time.Millisecond, 50 * time.Millisecond, 80 * time.Millisecond,
			100 * time.Millisecond, 130 * time.Millisecond, 160 * time.Millisecond,
		}
	}
	if c.Steps == 0 {
		c.Steps = 3000
	}
	return c
}

// Fig7 measures training throughput under varied token quotas, normalized
// to the same job run without the device library (native pod). The paper's
// result: ≤5% slowdown even at a 30 ms quota.
func Fig7(cfg Fig7Config) (*metrics.Table, error) {
	cfg = cfg.withDefaults()

	runTraining := func(quota time.Duration, useLib bool) (time.Duration, error) {
		env := sim.NewEnv()
		c, err := newCluster(env, 1, 1)
		if err != nil {
			return 0, err
		}
		envVars := map[string]string{workload.EnvSteps: fmt.Sprintf("%d", cfg.Steps)}
		if useLib {
			if _, err := schedfw.Install(c, core.Config{Devlib: devlib.Config{Quota: quota}}); err != nil {
				return 0, err
			}
			sp := &core.SharePod{
				ObjectMeta: api.ObjectMeta{Name: "train"},
				Spec: core.SharePodSpec{
					GPURequest: 1.0, GPULimit: 1.0, GPUMem: workload.MemShareHalf,
					Pod: api.PodSpec{Containers: []api.Container{{
						Name: "c", Image: workload.TrainImage, Env: envVars,
					}}},
				},
			}
			env.Go("s", func(p *sim.Proc) {
				if _, err := core.SharePods(c.API).Create(sp); err != nil {
					panic(err)
				}
			})
			env.Run()
			got, err := core.SharePods(c.API).Get("train")
			if err != nil {
				return 0, err
			}
			if got.Status.Phase != core.SharePodSucceeded {
				return 0, fmt.Errorf("training failed: %s", got.Status.Message)
			}
			return got.Status.FinishTime - got.Status.RunningTime, nil
		}
		pod := &api.Pod{
			ObjectMeta: api.ObjectMeta{Name: "train"},
			Spec: api.PodSpec{Containers: []api.Container{{
				Name: "c", Image: workload.TrainImage, Env: envVars,
				Requests: api.ResourceList{api.ResourceGPU: 1},
			}}},
		}
		env.Go("s", func(p *sim.Proc) {
			if _, err := c.Pods().Create(pod); err != nil {
				panic(err)
			}
		})
		env.Run()
		got, err := c.Pods().Get("train")
		if err != nil {
			return 0, err
		}
		if got.Status.Phase != api.PodSucceeded {
			return 0, fmt.Errorf("baseline failed: %s", got.Status.Message)
		}
		return got.Status.FinishTime - got.Status.StartTime, nil
	}

	// Index 0 is the no-library baseline; 1..len(Quotas) are the quota runs.
	// Every run is its own Env, so all points fan out together.
	walls, err := runIndexed(len(cfg.Quotas)+1, func(i int) (time.Duration, error) {
		if i == 0 {
			return runTraining(0, false)
		}
		return runTraining(cfg.Quotas[i-1], true)
	})
	if err != nil {
		return nil, err
	}
	baseTput := float64(cfg.Steps*workload.DefaultBatch) / walls[0].Seconds()
	tb := metrics.NewTable("Figure 7: training throughput vs token quota (normalized to no device library)",
		"quota_ms", "images_per_s", "normalized")
	for i, quota := range cfg.Quotas {
		tput := float64(cfg.Steps*workload.DefaultBatch) / walls[i+1].Seconds()
		tb.AddRow(int(quota.Milliseconds()), tput, tput/baseTput)
	}
	return tb, nil
}

package experiments

import (
	"fmt"
	"time"

	"kubeshare/internal/metrics"
	"kubeshare/internal/workload"
)

// Fig8Config drives the GPU-sharing throughput sweeps of Figure 8. The
// defaults mirror the paper's testbed: 8 nodes × 4 GPUs and inference
// workloads with Poisson arrivals and normally distributed demands.
type Fig8Config struct {
	Nodes       int
	GPUsPerNode int
	Jobs        int
	// BaseInterArrival is the mean inter-arrival at frequency factor 1.
	BaseInterArrival time.Duration
	// JobDuration is each inference job's serving window.
	JobDuration time.Duration
	// DemandMean / DemandVar parameterize the demand distribution.
	DemandMean float64
	DemandVar  float64
	// Repeats averages each point over this many seeded runs (paper: 5).
	Repeats int
	Seed    int64
}

func (c Fig8Config) withDefaults() Fig8Config {
	if c.Nodes == 0 {
		c.Nodes = 8
	}
	if c.GPUsPerNode == 0 {
		c.GPUsPerNode = 4
	}
	if c.Jobs == 0 {
		c.Jobs = 200
	}
	if c.BaseInterArrival == 0 {
		c.BaseInterArrival = 5 * time.Second
	}
	if c.JobDuration == 0 {
		c.JobDuration = 40 * time.Second
	}
	if c.DemandMean == 0 {
		c.DemandMean = 0.3
	}
	if c.DemandVar == 0 {
		c.DemandVar = 2
	}
	if c.Repeats == 0 {
		c.Repeats = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// throughputAt runs both systems for one workload parameterization and
// returns their mean throughputs (jobs/min) across repeats. The
// repeats × systems grid fans out in parallel; each run regenerates its job
// list from the per-repeat seed, so runs share nothing.
func throughputAt(cfg Fig8Config, gen workload.GeneratorConfig) (k8s, ks float64, err error) {
	systems := []System{Kubernetes, KubeShare}
	tputs, err := runIndexed(cfg.Repeats*len(systems), func(i int) (float64, error) {
		g := gen
		g.Seed = gen.Seed + int64(i/len(systems))*9973
		sys := systems[i%len(systems)]
		res, err := RunSharing(SharingConfig{
			System:      sys,
			Nodes:       cfg.Nodes,
			GPUsPerNode: cfg.GPUsPerNode,
			Jobs:        workload.Generate(g),
		})
		if err != nil {
			return 0, err
		}
		if res.Failed > 0 {
			return 0, fmt.Errorf("%s run had %d failed jobs", sys, res.Failed)
		}
		return res.ThroughputPerMin, nil
	})
	if err != nil {
		return 0, 0, err
	}
	var k8sSum, ksSum float64
	for i, t := range tputs {
		if systems[i%len(systems)] == Kubernetes {
			k8sSum += t
		} else {
			ksSum += t
		}
	}
	n := float64(cfg.Repeats)
	return k8sSum / n, ksSum / n, nil
}

// Fig8a sweeps the job frequency factor: arrivals speed up until both
// systems saturate. The paper's shape: Kubernetes flattens near 50
// jobs/min, KubeShare climbs to ≈110 jobs/min (≈2× at heavy load).
func Fig8a(cfg Fig8Config, factors []float64) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	if len(factors) == 0 {
		factors = []float64{1, 2, 3, 5, 7, 9, 12, 16}
	}
	tb := metrics.NewTable("Figure 8a: throughput vs job frequency",
		"freq_factor", "offered_jobs_per_min", "kubernetes", "kubeshare", "speedup")
	pts, err := runIndexed(len(factors), func(i int) ([2]float64, error) {
		gen := workload.GeneratorConfig{
			Jobs:             cfg.Jobs,
			MeanInterArrival: time.Duration(float64(cfg.BaseInterArrival) / factors[i]),
			DemandMean:       cfg.DemandMean,
			DemandVar:        cfg.DemandVar,
			JobDuration:      cfg.JobDuration,
			Seed:             cfg.Seed,
		}
		k8s, ks, err := throughputAt(cfg, gen)
		return [2]float64{k8s, ks}, err
	})
	if err != nil {
		return nil, err
	}
	for i, f := range factors {
		offered := 60.0 / time.Duration(float64(cfg.BaseInterArrival)/f).Seconds()
		k8s, ks := pts[i][0], pts[i][1]
		tb.AddRow(f, offered, k8s, ks, ks/k8s)
	}
	return tb, nil
}

// Fig8b sweeps the mean GPU demand at heavy load. The paper's shape:
// Kubernetes is flat (demand-agnostic), KubeShare's gain shrinks from
// ≈2.5× at ≤20% demand toward parity at ≥60%.
func Fig8b(cfg Fig8Config, means []float64) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	if len(means) == 0 {
		means = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6}
	}
	tb := metrics.NewTable("Figure 8b: throughput vs mean GPU demand",
		"demand_mean", "kubernetes", "kubeshare", "speedup")
	pts, err := runIndexed(len(means), func(i int) ([2]float64, error) {
		gen := workload.GeneratorConfig{
			Jobs: cfg.Jobs,
			// Heavy load so sharing capacity is the bottleneck.
			MeanInterArrival: cfg.BaseInterArrival / 12,
			DemandMean:       means[i],
			DemandVar:        cfg.DemandVar,
			JobDuration:      cfg.JobDuration,
			Seed:             cfg.Seed,
		}
		k8s, ks, err := throughputAt(cfg, gen)
		return [2]float64{k8s, ks}, err
	})
	if err != nil {
		return nil, err
	}
	for i, mean := range means {
		k8s, ks := pts[i][0], pts[i][1]
		tb.AddRow(mean, k8s, ks, ks/k8s)
	}
	return tb, nil
}

// Fig8c sweeps the demand variance at heavy load. The paper's shape: flat
// for both systems.
func Fig8c(cfg Fig8Config, variances []float64) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	if len(variances) == 0 {
		variances = []float64{0.5, 1, 2, 3, 4}
	}
	tb := metrics.NewTable("Figure 8c: throughput vs GPU demand variance",
		"demand_var", "kubernetes", "kubeshare", "speedup")
	pts, err := runIndexed(len(variances), func(i int) ([2]float64, error) {
		gen := workload.GeneratorConfig{
			Jobs:             cfg.Jobs,
			MeanInterArrival: cfg.BaseInterArrival / 12,
			DemandMean:       cfg.DemandMean,
			DemandVar:        variances[i],
			JobDuration:      cfg.JobDuration,
			Seed:             cfg.Seed,
		}
		k8s, ks, err := throughputAt(cfg, gen)
		return [2]float64{k8s, ks}, err
	})
	if err != nil {
		return nil, err
	}
	for i, v := range variances {
		k8s, ks := pts[i][0], pts[i][1]
		tb.AddRow(v, k8s, ks, ks/k8s)
	}
	return tb, nil
}

package experiments

import (
	"time"

	"kubeshare/internal/metrics"
	"kubeshare/internal/workload"
)

// Fig9Config drives the utilization-timeline experiment (mean demand 30%,
// variance 2 — the paper's example workload).
type Fig9Config struct {
	Fig8Config
	// FreqFactor is the arrival speed-up applied to the base inter-arrival.
	FreqFactor float64
	// Sample is the utilization sampling interval.
	Sample time.Duration
	// Buckets is the number of timeline rows in the output table.
	Buckets int
}

func (c Fig9Config) withDefaults() Fig9Config {
	c.Fig8Config = c.Fig8Config.withDefaults()
	if c.FreqFactor == 0 {
		c.FreqFactor = 6
	}
	if c.Sample == 0 {
		c.Sample = 5 * time.Second
	}
	if c.Buckets == 0 {
		c.Buckets = 12
	}
	return c
}

// fig9Jobs generates the Figure 9 workload for an already-defaulted config.
func fig9Jobs(cfg Fig9Config) []workload.Job {
	return workload.Generate(workload.GeneratorConfig{
		Jobs:             cfg.Jobs,
		MeanInterArrival: time.Duration(float64(cfg.BaseInterArrival) / cfg.FreqFactor),
		DemandMean:       cfg.DemandMean,
		DemandVar:        cfg.DemandVar,
		JobDuration:      cfg.JobDuration,
		Seed:             cfg.Seed,
	})
}

// Fig9Sharing runs only the KubeShare arm of the Figure 9 workload, with
// the observability spine on or off — the two arms of the
// instrumentation-overhead benchmark.
func Fig9Sharing(cfg Fig9Config, disableObs bool) (SharingResult, error) {
	cfg = cfg.withDefaults()
	return RunSharing(SharingConfig{
		System:      KubeShare,
		Nodes:       cfg.Nodes,
		GPUsPerNode: cfg.GPUsPerNode,
		Jobs:        fig9Jobs(cfg),
		DisableObs:  disableObs,
	})
}

// Fig9Result carries both systems' sampled timelines plus the summary
// table.
type Fig9Result struct {
	Table *metrics.Table
	// Per-system sampled series.
	Util   map[System]*metrics.Series
	Active map[System]*metrics.Series
	// Makespans per system.
	Makespan map[System]time.Duration
}

// Fig9 runs one workload under both systems and reports average GPU
// utilization and the number of allocated GPUs over time. The paper's
// shape: KubeShare drives active GPUs to higher utilization, holds fewer
// GPUs, and finishes the workload sooner.
func Fig9(cfg Fig9Config) (*Fig9Result, error) {
	cfg = cfg.withDefaults()
	jobs := fig9Jobs(cfg)
	out := &Fig9Result{
		Util:     map[System]*metrics.Series{},
		Active:   map[System]*metrics.Series{},
		Makespan: map[System]time.Duration{},
	}
	systems := []System{Kubernetes, KubeShare}
	results, err := runIndexed(len(systems), func(i int) (SharingResult, error) {
		return RunSharing(SharingConfig{
			System:      systems[i],
			Nodes:       cfg.Nodes,
			GPUsPerNode: cfg.GPUsPerNode,
			Jobs:        jobs,
			Sample:      cfg.Sample,
		})
	})
	if err != nil {
		return nil, err
	}
	for i, sys := range systems {
		out.Util[sys] = results[i].Util
		out.Active[sys] = results[i].ActiveGPUs
		out.Makespan[sys] = results[i].Makespan
	}
	// Bucket the timelines over the longer of the two makespans.
	horizon := out.Makespan[Kubernetes]
	if out.Makespan[KubeShare] > horizon {
		horizon = out.Makespan[KubeShare]
	}
	bucket := horizon / time.Duration(cfg.Buckets)
	tb := metrics.NewTable("Figure 9: average GPU utilization and active GPUs over time",
		"t", "k8s_util", "k8s_active", "kubeshare_util", "kubeshare_active")
	for i := 0; i < cfg.Buckets; i++ {
		from := time.Duration(i) * bucket
		to := from + bucket
		tb.AddRow(from.Round(time.Second).String(),
			out.Util[Kubernetes].TimeWeightedMean(from, to),
			out.Active[Kubernetes].TimeWeightedMean(from, to),
			out.Util[KubeShare].TimeWeightedMean(from, to),
			out.Active[KubeShare].TimeWeightedMean(from, to))
	}
	tb.AddRow("makespan",
		out.Makespan[Kubernetes].Round(time.Second).String(), "",
		out.Makespan[KubeShare].Round(time.Second).String(), "")
	out.Table = tb
	return out, nil
}

// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) on the simulated cluster. Each experiment is a pure
// function from a config (with paper-scale defaults) to a metrics.Table
// holding the rows/series the paper reports; the cmd/kubeshare-sim binary
// and the repository benchmarks are thin wrappers around these functions.
package experiments

import (
	"fmt"
	"time"

	"kubeshare/internal/core"
	"kubeshare/internal/core/schedfw"
	"kubeshare/internal/kube"
	"kubeshare/internal/kube/api"
	"kubeshare/internal/kube/apiserver"
	"kubeshare/internal/metrics"
	"kubeshare/internal/obs"
	"kubeshare/internal/obs/attr"
	"kubeshare/internal/sim"
	"kubeshare/internal/workload"
)

// System selects the resource management stack under test.
type System string

// Systems under comparison.
const (
	// Kubernetes is the native baseline: one whole GPU per job.
	Kubernetes System = "kubernetes"
	// KubeShare is the paper's system.
	KubeShare System = "kubeshare"
	// Extender is the scheduler-extender baseline (Aliyun-style).
	Extender System = "extender"
)

// newCluster builds a cluster with workload images registered.
func newCluster(env *sim.Env, nodes, gpusPerNode int) (*kube.Cluster, error) {
	return newClusterObs(env, nodes, gpusPerNode, false)
}

// newClusterObs is newCluster with an observability off-switch (the obs-off
// arm of the instrumentation-overhead benchmark).
func newClusterObs(env *sim.Env, nodes, gpusPerNode int, disableObs bool) (*kube.Cluster, error) {
	cfg := kube.Config{DisableObs: disableObs}
	for i := 0; i < nodes; i++ {
		cfg.Nodes = append(cfg.Nodes, kube.NodeConfig{
			Name: fmt.Sprintf("node-%d", i),
			GPUs: gpusPerNode,
		})
	}
	c, err := kube.NewCluster(env, cfg)
	if err != nil {
		return nil, err
	}
	workload.RegisterImages(c)
	return c, nil
}

// SharingConfig drives one cluster-scale inference workload run (the
// machinery behind Figures 8, 9 and 13).
type SharingConfig struct {
	System      System
	Nodes       int
	GPUsPerNode int
	Jobs        []workload.Job
	// Sample enables utilization/active-GPU sampling at this interval
	// (zero disables sampling — Figures 8/13 need only throughput).
	Sample time.Duration
	// Devlib overrides the device library configuration (zero = defaults).
	Devlib core.Config
	// DisableObs turns the telemetry runtime off for this run (the obs-off
	// arm of the instrumentation-overhead benchmark).
	DisableObs bool
	// ExportTelemetry copies the run's metrics snapshot, span trace and
	// event log into the result (they are dropped otherwise, so bulk
	// sweeps do not retain every run's trace).
	ExportTelemetry bool
	// Telemetry, when nonzero, attaches the consumption layer (TSDB
	// collector, fairness auditor, SLO alert engine) sampling at this
	// interval; the result's Telemetry field carries it.
	Telemetry time.Duration
	// Lanes, when above one, partitions the simulation into that many event
	// lanes (conservative lock-step merge; the merged event order — and so
	// every trace, metric and placement — is byte-identical to the
	// single-lane run).
	Lanes int
	// RestartAPIServerAt, when nonzero, enables store durability (WAL +
	// checkpoints) and crash/warm-recovers the apiserver once at this
	// virtual time — the mid-run control-plane restart whose markers and
	// relist counters must land deterministically in the trace.
	RestartAPIServerAt time.Duration
	// Attribution turns on critical-path latency attribution: histogram
	// exemplars are enabled on the run's registry, and after the run the
	// span trace is analyzed into per-sharePod phase breakdowns (the
	// result's Attr field), with open (never-launched) chains counted in
	// the kubeshare_obs_open_chains gauge before the snapshot is taken.
	// Implies ExportTelemetry.
	Attribution bool
	// ParallelPhases additionally drives the framework scheduler with
	// parallel phase windows: prefilter/filter/score fan out across the
	// lanes against the cycle-start snapshot. Placements stay deterministic
	// at every lane count, but the phase counters follow the parallel
	// cycle's accounting (speculative rankings that go stale re-run the
	// front phases), so telemetry is comparable across lane counts only
	// within this mode, not against the sequential cycle. Ignored for the
	// Kubernetes baseline, which has no framework scheduler to fan out.
	ParallelPhases bool
}

// SharingResult is the outcome of one run.
type SharingResult struct {
	Completed int
	Failed    int
	// Makespan is the time from the first submission to the last
	// completion.
	Makespan time.Duration
	// ThroughputPerMin is Completed divided by the makespan in minutes.
	ThroughputPerMin float64
	// Util is the cluster-average GPU utilization over time (sampled).
	Util *metrics.Series
	// ActiveGPUs is the number of allocated GPUs over time (sampled).
	ActiveGPUs *metrics.Series
	// Obs, Spans and Events carry the run's telemetry when
	// SharingConfig.ExportTelemetry was set.
	Obs    obs.MetricsSnapshot
	Spans  []obs.Span
	Events []obs.EventRecord
	// Telemetry is the attached consumption layer (TSDB, auditor, alerts)
	// when SharingConfig.Telemetry was nonzero.
	Telemetry *TelemetrySet
	// FinishTimes maps each completed job's name to its finish time, for
	// per-job slowdown metrics (the fig18 stretch column).
	FinishTimes map[string]time.Duration
	// Attr is the critical-path analysis of the run's span trace when
	// SharingConfig.Attribution was set.
	Attr attr.Result
}

// RunSharing executes a full workload run under the chosen system and
// returns its throughput and utilization profile.
func RunSharing(cfg SharingConfig) (SharingResult, error) {
	env := sim.NewEnv()
	var schedOpts []schedfw.Option
	if cfg.Lanes > 1 {
		env.SetLanes(cfg.Lanes)
	}
	if cfg.ParallelPhases {
		schedOpts = append(schedOpts, schedfw.WithParallelPhases())
	}
	c, err := newClusterObs(env, cfg.Nodes, cfg.GPUsPerNode, cfg.DisableObs)
	if err != nil {
		return SharingResult{}, err
	}
	if cfg.Attribution {
		// Exemplars go on before any observation, so the max-latency trace
		// keys cover the whole run.
		c.Obs.EnableExemplars()
	}
	if cfg.RestartAPIServerAt > 0 {
		// Durability goes on before any consumer subscribes, so the whole
		// run is covered by the enable-time checkpoint plus the WAL.
		c.API.EnableDurability(apiserver.DurabilityConfig{})
		env.Go("apiserver-restarter", func(p *sim.Proc) {
			p.Sleep(cfg.RestartAPIServerAt)
			if _, err := c.API.Restart(); err != nil {
				panic(fmt.Sprintf("experiments: apiserver restart: %v", err))
			}
		})
	}
	switch cfg.System {
	case KubeShare:
		if _, err := schedfw.Install(c, cfg.Devlib, schedOpts...); err != nil {
			return SharingResult{}, err
		}
	case Extender:
		if _, _, err := schedfw.InstallExtender(c, cfg.Devlib, schedOpts...); err != nil {
			return SharingResult{}, err
		}
	}

	// Submit jobs at their arrival times.
	env.Go("submitter", func(p *sim.Proc) {
		for _, j := range cfg.Jobs {
			if wait := j.Arrival - env.Now(); wait > 0 {
				p.Sleep(wait)
			}
			var err error
			if cfg.System == Kubernetes {
				_, err = c.Pods().Create(workload.NativePodFor(j))
			} else {
				_, err = core.SharePods(c.API).Create(workload.SharePodFor(j))
			}
			if err != nil {
				panic(fmt.Sprintf("experiments: submit %s: %v", j.Name, err))
			}
		}
	})

	res := SharingResult{}
	if cfg.Telemetry > 0 {
		total := len(cfg.Jobs)
		res.Telemetry = attachTelemetry(env, c, cfg.Telemetry, func() bool {
			return terminatedCount(c, cfg.System) >= total
		})
	}
	if cfg.Sample > 0 {
		res.Util = &metrics.Series{Name: "util"}
		res.ActiveGPUs = &metrics.Series{Name: "active"}
		gpus := c.AllGPUs()
		prev := make([]time.Duration, len(gpus))
		total := len(cfg.Jobs)
		env.Go("cluster-sampler", func(p *sim.Proc) {
			for {
				p.Sleep(cfg.Sample)
				busySum := 0.0
				for i, d := range gpus {
					busy := d.BusyTime()
					busySum += float64(busy-prev[i]) / float64(cfg.Sample)
					prev[i] = busy
				}
				res.Util.Add(env.Now(), busySum/float64(len(gpus)))
				res.ActiveGPUs.Add(env.Now(), float64(allocatedGPUs(c, cfg.System)))
				// Self-terminate once the whole workload has finished, so
				// the periodic wakeups do not keep the simulation alive.
				if terminatedCount(c, cfg.System) >= total {
					return
				}
			}
		})
	}
	env.Run()

	// Collect outcomes.
	var last time.Duration
	res.FinishTimes = make(map[string]time.Duration)
	if cfg.System == Kubernetes {
		for _, pod := range c.Pods().List() {
			switch pod.Status.Phase {
			case api.PodSucceeded:
				res.Completed++
				res.FinishTimes[pod.Name] = pod.Status.FinishTime
				if pod.Status.FinishTime > last {
					last = pod.Status.FinishTime
				}
			case api.PodFailed:
				res.Failed++
			}
		}
	} else {
		for _, sp := range core.SharePods(c.API).List() {
			switch sp.Status.Phase {
			case core.SharePodSucceeded:
				res.Completed++
				res.FinishTimes[sp.Name] = sp.Status.FinishTime
				if sp.Status.FinishTime > last {
					last = sp.Status.FinishTime
				}
			default:
				if sp.Terminated() {
					res.Failed++
				}
			}
		}
	}
	res.Makespan = last
	if last > 0 {
		res.ThroughputPerMin = float64(res.Completed) / last.Minutes()
	}
	if cfg.Attribution {
		// Analyze before the snapshot so the open-chain gauge — registered
		// lazily, only on attribution runs — lands in the exported metrics.
		res.Attr = attr.Analyze(c.Obs.Tracer().Spans())
		c.Obs.Gauge("kubeshare_obs_open_chains").Set(int64(len(res.Attr.Open)))
	}
	if cfg.ExportTelemetry || cfg.Attribution {
		res.Obs = c.Obs.Snapshot()
		res.Spans = c.Obs.Tracer().Spans()
		res.Events = c.Obs.Events()
	}
	return res, nil
}

// terminatedCount counts workload jobs in a terminal phase. It runs once per
// sample tick, so it scans the store in place instead of deep-copying every
// object the way List would.
func terminatedCount(c *kube.Cluster, sys System) int {
	n := 0
	if sys == Kubernetes {
		c.Pods().Scan(func(pod *api.Pod) bool {
			if pod.Terminated() {
				n++
			}
			return true
		})
		return n
	}
	core.SharePods(c.API).Scan(func(sp *core.SharePod) bool {
		if sp.Terminated() {
			n++
		}
		return true
	})
	return n
}

// allocatedGPUs counts GPUs currently held: whole devices granted to
// running native pods, plus pool vGPUs for the sharing systems.
func allocatedGPUs(c *kube.Cluster, sys System) int {
	n := 0
	if sys == Kubernetes {
		c.Pods().Scan(func(pod *api.Pod) bool {
			if !pod.Terminated() && pod.Spec.NodeName != "" {
				for _, ct := range pod.Spec.Containers {
					n += int(ct.Requests[api.ResourceGPU])
				}
			}
			return true
		})
		return n
	}
	return core.VGPUs(c.API).Count()
}

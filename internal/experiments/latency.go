package experiments

import (
	"sort"
	"time"

	"kubeshare/internal/metrics"
	"kubeshare/internal/obs"
	"kubeshare/internal/obs/attr"
)

// LatencyConfig drives the end-to-end latency experiment: the Fig 9
// workload run under KubeShare with telemetry on, reporting percentiles
// of the control-plane and device-library latency distributions the
// observability spine records.
type LatencyConfig struct {
	Fig9Config
}

// LatencyResult carries the percentile table plus the raw histogram
// snapshots for further analysis.
type LatencyResult struct {
	Table *metrics.Table
	// Obs is the full registry snapshot of the run.
	Obs obs.MetricsSnapshot
	// Attr is the critical-path attribution of the run's span trace.
	Attr attr.Result
	// OpenChains counts sharePods whose chains never reached a kernel
	// launch. Their latency is unbounded-in-progress, not zero: they are
	// excluded from every percentile above rather than folded in, and
	// surfaced here (and as kubeshare_obs_open_chains) so the exclusion
	// is visible instead of silently under-reporting the tail.
	OpenChains int
}

// latencyMetrics are the distributions the experiment reports, in table
// order: from submission to scheduling decision, the DevMgr bind (vGPU
// ensure + bound-pod creation), the kubelet pod sync, and the device
// library's token-wait under sharing pressure.
var latencyMetrics = []struct{ name, label string }{
	{"kubeshare_sched_latency_seconds", "sched_latency"},
	{"kubeshare_devmgr_bind_seconds", "bind"},
	{"kubeshare_kubelet_pod_sync_seconds", "pod_sync"},
	{"kubeshare_devlib_token_wait_seconds", "token_wait"},
}

// Latency runs the Fig 9 workload under KubeShare and tabulates p50/p90/p99
// and the mean of each recorded latency distribution (seconds). The
// scheduling-latency histogram measures submit-to-scheduled per sharePod;
// the token-wait histogram measures every token acquire across all devices
// — the grant-latency signal behind the paper's sharing guarantees.
func Latency(cfg LatencyConfig) (*LatencyResult, error) {
	c := cfg.Fig9Config.withDefaults()
	jobs := fig9Jobs(c)
	res, err := RunSharing(SharingConfig{
		System:      KubeShare,
		Nodes:       c.Nodes,
		GPUsPerNode: c.GPUsPerNode,
		Jobs:        jobs,
		Attribution: true,
	})
	if err != nil {
		return nil, err
	}
	tb := metrics.NewTable("End-to-end latency percentiles (KubeShare, Fig 9 workload)",
		"metric", "count", "mean_s", "p50_s", "p90_s", "p99_s")
	for _, m := range latencyMetrics {
		h, ok := res.Obs.Histogram(m.name)
		if !ok {
			h = obs.HistogramSnapshot{Name: m.name}
		}
		tb.AddRow(m.label, h.Count, h.Mean(), h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99))
	}
	// End-to-end submit-to-first-kernel-launch, from the attribution
	// breakdowns: exact per-sharePod values, completed chains only. Open
	// chains are excluded (not zero-filled) and counted separately.
	if n := len(res.Attr.Breakdowns); n > 0 {
		e2e := make([]float64, 0, n)
		var sum time.Duration
		for _, bd := range res.Attr.Breakdowns {
			e2e = append(e2e, bd.EndToEnd.Seconds())
			sum += bd.EndToEnd
		}
		sort.Float64s(e2e)
		q := func(p float64) float64 { return e2e[int(p*float64(n-1)+0.5)] }
		tb.AddRow("e2e_launch", int64(n), (sum / time.Duration(n)).Seconds(), q(0.50), q(0.90), q(0.99))
	}
	return &LatencyResult{
		Table:      tb,
		Obs:        res.Obs,
		Attr:       res.Attr,
		OpenChains: len(res.Attr.Open),
	}, nil
}

package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"kubeshare/internal/core"
	"kubeshare/internal/core/schedfw"
	"kubeshare/internal/kube"
	"kubeshare/internal/obs"
	"kubeshare/internal/obs/attr"
	"kubeshare/internal/sim"
	"kubeshare/internal/workload"
)

// LiveConfig parameterizes a live (incrementally stepped) KubeShare run —
// the engine behind `kubeshare-sim serve`, where the simulation is paced
// against the wall clock and its telemetry is scraped over HTTP while it
// runs.
type LiveConfig struct {
	Nodes       int
	GPUsPerNode int
	// Jobs is the workload; empty defaults to the seeded Fig 9 mix.
	Jobs []workload.Job
	// Seed generates the default workload when Jobs is empty.
	Seed int64
	// Full uses the paper-scale Fig 9 workload for the default mix instead
	// of the quick-scale one.
	Full bool
	// Interval is the telemetry sampling cadence (default 1s).
	Interval time.Duration
}

// Live is a KubeShare run that advances only when Advance is called,
// instead of draining the event loop in one Run. All methods are
// mutex-serialized, so HTTP handlers can read telemetry from other
// goroutines while a pacing loop steps the virtual clock.
type Live struct {
	mu        sync.Mutex
	env       *sim.Env
	cluster   *kube.Cluster
	telemetry *TelemetrySet
	total     int
}

// StartLive builds the cluster, installs KubeShare, attaches the telemetry
// consumption layer and submits the workload — without running anything;
// the caller paces the clock with Advance.
func StartLive(cfg LiveConfig) (*Live, error) {
	if cfg.Nodes == 0 {
		if cfg.Full {
			cfg.Nodes = 8
		} else {
			cfg.Nodes = 2
		}
	}
	if cfg.GPUsPerNode == 0 {
		cfg.GPUsPerNode = 4
	}
	if cfg.Interval == 0 {
		cfg.Interval = time.Second
	}
	if cfg.Jobs == nil {
		f9 := Fig9Config{Fig8Config: Fig8Config{Seed: cfg.Seed, Nodes: cfg.Nodes, GPUsPerNode: cfg.GPUsPerNode}}
		if !cfg.Full {
			f9.Fig8Config.Jobs = 60
			f9.JobDuration = 30 * time.Second
			f9.FreqFactor = 2.5
		}
		cfg.Jobs = fig9Jobs(f9.withDefaults())
	}
	env := sim.NewEnv()
	c, err := newCluster(env, cfg.Nodes, cfg.GPUsPerNode)
	if err != nil {
		return nil, err
	}
	if _, err := schedfw.Install(c, core.Config{}); err != nil {
		return nil, err
	}
	l := &Live{env: env, cluster: c, total: len(cfg.Jobs)}
	l.telemetry = attachTelemetry(env, c, cfg.Interval, func() bool {
		return terminatedCount(c, KubeShare) >= l.total
	})
	env.Go("submitter", func(p *sim.Proc) {
		for _, j := range cfg.Jobs {
			if wait := j.Arrival - env.Now(); wait > 0 {
				p.Sleep(wait)
			}
			if _, err := core.SharePods(c.API).Create(workload.SharePodFor(j)); err != nil {
				panic(fmt.Sprintf("experiments: submit %s: %v", j.Name, err))
			}
		}
	})
	return l, nil
}

// Advance runs the simulation up to now+d on the virtual clock.
func (l *Live) Advance(d time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.env.RunUntil(l.env.Now() + d)
}

// Now returns the virtual clock.
func (l *Live) Now() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.env.Now()
}

// Done reports whether every submitted job reached a terminal phase.
func (l *Live) Done() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return terminatedCount(l.cluster, KubeShare) >= l.total
}

// WriteMetrics renders the live registry in Prometheus text format.
func (l *Live) WriteMetrics(w io.Writer) error {
	l.mu.Lock()
	snap := l.cluster.Obs.Snapshot()
	l.mu.Unlock()
	return obs.WritePrometheus(w, snap)
}

// seriesJSON is the /series payload: one object per matched series.
type seriesJSON struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	// Points are [virtual seconds, value] pairs.
	Points [][2]float64 `json:"points"`
}

// WriteSeries answers a TSDB range query as JSON: every series of the
// family name, clipped to [from, to] (to ≤ 0 means "now"). An empty name
// lists the known metric names instead.
func (l *Live) WriteSeries(w io.Writer, name string, from, to time.Duration) error {
	l.mu.Lock()
	if to <= 0 {
		to = l.env.Now()
	}
	db := l.telemetry.DB
	l.mu.Unlock()
	if name == "" {
		return json.NewEncoder(w).Encode(db.Names())
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := []seriesJSON{}
	for _, s := range db.Select(name) {
		sj := seriesJSON{Name: s.Name, Points: [][2]float64{}}
		if len(s.Labels) > 0 {
			sj.Labels = map[string]string{}
			for _, lb := range s.Labels {
				sj.Labels[lb.Key] = lb.Value
			}
		}
		for _, p := range s.Between(from, to) {
			sj.Points = append(sj.Points, [2]float64{p.T.Seconds(), p.V})
		}
		out = append(out, sj)
	}
	return json.NewEncoder(w).Encode(out)
}

// WriteTrace exports the span log as NDJSON.
func (l *Live) WriteTrace(w io.Writer) error {
	l.mu.Lock()
	spans := l.cluster.Obs.Tracer().Spans()
	l.mu.Unlock()
	return obs.WriteSpansNDJSON(w, spans)
}

// WriteProfile renders the virtual-time profile of the spans recorded so
// far: the attribution phase budget over completed chains plus the flat
// per-(component, op) span profile, or collapsed-stack lines when folded
// is set. Live runs use the node-default token strategy, which tags the
// profile frames.
func (l *Live) WriteProfile(w io.Writer, folded bool) error {
	l.mu.Lock()
	spans := l.cluster.Obs.Tracer().Spans()
	l.mu.Unlock()
	p := attr.BuildProfile(spans, "token")
	if folded {
		p.WriteFolded(w)
	} else {
		p.Format(w)
	}
	return nil
}

// WriteEvents exports the event log as NDJSON.
func (l *Live) WriteEvents(w io.Writer) error {
	l.mu.Lock()
	events := l.cluster.Obs.Events()
	l.mu.Unlock()
	return obs.WriteEventsNDJSON(w, events)
}

// WriteAlerts exports the SLO engine's per-rule states as JSON.
func (l *Live) WriteAlerts(w io.Writer) error {
	l.mu.Lock()
	states := l.telemetry.Alerts.States()
	l.mu.Unlock()
	if states == nil {
		states = []obs.AlertStatus{}
	}
	return json.NewEncoder(w).Encode(states)
}

// WriteAudit renders the fairness auditor's report tables as text.
func (l *Live) WriteAudit(w io.Writer) error {
	l.mu.Lock()
	shares, fairness := l.telemetry.Auditor.Report()
	l.mu.Unlock()
	shares.Render(w)
	fmt.Fprintln(w)
	fairness.Render(w)
	return nil
}

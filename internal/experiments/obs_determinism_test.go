package experiments

import (
	"strings"
	"testing"
	"time"

	"kubeshare/internal/obs"
	"kubeshare/internal/workload"
)

// telemetryDump runs a small seeded KubeShare workload with the given
// event-lane count and renders its complete telemetry — every span, every
// event, every metric — as one text blob. The whole pipeline is
// virtual-clock native and the lane merge is deterministic, so the blob
// must be byte-identical run-to-run for a fixed seed at every lane count,
// including under -race with GOMAXPROCS>1 (the runs of the test execute
// concurrently through runIndexed).
func telemetryDump(lanes int, parallel bool) (string, error) {
	jobs := workload.Generate(workload.GeneratorConfig{
		Jobs: 8, MeanInterArrival: 2 * time.Second,
		DemandMean: 0.35, DemandVar: 1,
		JobDuration: 10 * time.Second, Seed: 11,
	})
	res, err := RunSharing(SharingConfig{
		System: KubeShare, Nodes: 1, GPUsPerNode: 2,
		Jobs: jobs, ExportTelemetry: true,
		Lanes: lanes, ParallelPhases: parallel,
		// Crash/warm-recover the apiserver mid-workload: the restart markers
		// (APIServerRestarted), the WAL/checkpoint counters and the
		// per-consumer relist counters must all land byte-identically in the
		// golden at every lane count.
		RestartAPIServerAt: 9 * time.Second,
	})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("--- spans ---\n")
	obs.FormatSpans(&b, res.Spans)
	b.WriteString("--- events ---\n")
	obs.FormatEvents(&b, res.Events)
	b.WriteString("--- metrics ---\n")
	res.Obs.Format(&b)
	return b.String(), nil
}

// TestTraceDeterminismGolden runs the telemetry dump concurrently across
// lane counts (1 twice, then 2, 4 and 8) and asserts byte-identical output,
// then matches the recorded golden — the guarantee that a seeded run yields
// one reproducible causal trace, and that the event-lane partition never
// alters it.
func TestTraceDeterminismGolden(t *testing.T) {
	lanes := []int{1, 1, 2, 4, 8}
	dumps, err := runIndexed(len(lanes), func(i int) (string, error) { return telemetryDump(lanes[i], false) })
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range dumps[1:] {
		if d != dumps[0] {
			t.Fatalf("telemetry at lanes=%d diverged from single-lane run", lanes[i+1])
		}
	}
	checkGolden(t, "obs_trace.golden", dumps[0])
}

// TestTraceParallelPhasesLaneInvariant repeats the sweep with the
// scheduler's parallel phase windows on. That mode accounts phases by the
// parallel cycle's rules, so its telemetry is not compared to the
// sequential golden — the contract is lane invariance within the mode:
// identical blobs (placements, spans, events, counters) at 1, 2, 4 and 8
// lanes.
func TestTraceParallelPhasesLaneInvariant(t *testing.T) {
	lanes := []int{1, 2, 4, 8}
	dumps, err := runIndexed(len(lanes), func(i int) (string, error) { return telemetryDump(lanes[i], true) })
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range dumps[1:] {
		if d != dumps[0] {
			t.Fatalf("parallel-phase telemetry at lanes=%d diverged from single-lane run", lanes[i+1])
		}
	}
}

package experiments

import (
	"strings"
	"testing"
	"time"

	"kubeshare/internal/obs"
	"kubeshare/internal/workload"
)

// telemetryDump runs a small seeded KubeShare workload and renders its
// complete telemetry — every span, every event, every metric — as one
// text blob. The whole pipeline is virtual-clock native, so the blob must
// be byte-identical run-to-run for a fixed seed, including under -race
// with GOMAXPROCS>1 (the two runs of the test execute concurrently
// through runIndexed).
func telemetryDump() (string, error) {
	jobs := workload.Generate(workload.GeneratorConfig{
		Jobs: 8, MeanInterArrival: 2 * time.Second,
		DemandMean: 0.35, DemandVar: 1,
		JobDuration: 10 * time.Second, Seed: 11,
	})
	res, err := RunSharing(SharingConfig{
		System: KubeShare, Nodes: 1, GPUsPerNode: 2,
		Jobs: jobs, ExportTelemetry: true,
	})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("--- spans ---\n")
	obs.FormatSpans(&b, res.Spans)
	b.WriteString("--- events ---\n")
	obs.FormatEvents(&b, res.Events)
	b.WriteString("--- metrics ---\n")
	res.Obs.Format(&b)
	return b.String(), nil
}

// TestTraceDeterminismGolden runs the telemetry dump twice concurrently and
// asserts byte-identical output, then matches the recorded golden — the
// guarantee that a seeded run yields one reproducible causal trace.
func TestTraceDeterminismGolden(t *testing.T) {
	dumps, err := runIndexed(2, func(int) (string, error) { return telemetryDump() })
	if err != nil {
		t.Fatal(err)
	}
	if dumps[0] != dumps[1] {
		t.Fatal("telemetry not deterministic across concurrent runs")
	}
	checkGolden(t, "obs_trace.golden", dumps[0])
}

package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// runIndexed evaluates fn(0) … fn(n-1) and returns the results in index
// order. Each index is expected to be an independent simulation — its own
// sim.Env, its own seeded random streams, no shared mutable state — so the
// points can be fanned across up to GOMAXPROCS OS threads without changing
// any result: every output is a pure function of its index, never of worker
// scheduling, and assembling the slice by index keeps tables byte-identical
// to a serial sweep.
//
// Workers pull indices from an atomic counter, so a slow point (one
// saturated run) does not stall the others behind a static partition. When
// only one worker is warranted (GOMAXPROCS=1 or n==1) the loop runs inline
// with early exit on error; otherwise every point runs to completion and the
// lowest-index error is reported, matching what a serial sweep would return.
func runIndexed[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i], errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

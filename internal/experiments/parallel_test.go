package experiments

import (
	"errors"
	"fmt"
	"runtime"
	"testing"
)

func TestRunIndexedOrder(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	got, err := runIndexed(100, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("len = %d, want 100", len(got))
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("got[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestRunIndexedLowestError(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	_, err := runIndexed(50, func(i int) (int, error) {
		if i%7 == 3 {
			return 0, fmt.Errorf("point %d", i)
		}
		return i, nil
	})
	if err == nil || err.Error() != "point 3" {
		t.Fatalf("err = %v, want point 3 (the lowest failing index)", err)
	}
}

func TestRunIndexedSerialFallback(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	calls := 0
	boom := errors.New("boom")
	_, err := runIndexed(10, func(i int) (int, error) {
		calls++
		if i == 2 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// The single-worker path stops at the first failure like a plain loop.
	if calls != 3 {
		t.Fatalf("calls = %d, want 3 (early exit)", calls)
	}
}

func TestRunIndexedEmpty(t *testing.T) {
	got, err := runIndexed(0, func(i int) (int, error) { return 0, errors.New("never") })
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v; want empty, nil", got, err)
	}
}

package experiments

import (
	"fmt"
	"time"

	"kubeshare/internal/core"
	"kubeshare/internal/core/schedfw"
	"kubeshare/internal/kube/api"
	"kubeshare/internal/metrics"
	"kubeshare/internal/sim"
	"kubeshare/internal/workload"
)

// Table1Config drives the fragmentation comparison that quantifies Table 1
// and Figure 3: the first-class, locality-aware scheduler (KubeShare)
// versus the aggregate-count scheduler-extender baseline with round-robin
// in-node device binding.
type Table1Config struct {
	GPUs int
	// Demands are the container gpu_requests submitted in order (Fig 3's
	// containers A–F by default).
	Demands []float64
}

func (c Table1Config) withDefaults() Table1Config {
	if c.GPUs == 0 {
		c.GPUs = 4
	}
	if len(c.Demands) == 0 {
		c.Demands = []float64{0.5, 0.5, 0.5, 0.4, 0.3, 0.3}
	}
	return c
}

// placementStats summarizes one scheduler's placement.
type placementStats struct {
	perDevice     map[string]float64
	overcommitted int
	activeDevices int
	pendingJobs   int
}

// table1System selects the scheduler flavour under test.
type table1System int

const (
	table1KubeShare table1System = iota
	table1Extender
	table1Deepomatic
)

func runPlacement(cfg Table1Config, sys table1System) (placementStats, error) {
	env := sim.NewEnv()
	c, err := newCluster(env, 1, cfg.GPUs)
	if err != nil {
		return placementStats{}, err
	}
	switch sys {
	case table1KubeShare:
		if _, err := schedfw.Install(c, core.Config{}); err != nil {
			return placementStats{}, err
		}
	default:
		_, ext, err := schedfw.InstallExtender(c, core.Config{})
		if err != nil {
			return placementStats{}, err
		}
		ext.SetSingleDevice(sys == table1Deepomatic)
	}
	env.Go("submit", func(p *sim.Proc) {
		for i, d := range cfg.Demands {
			sp := &core.SharePod{
				ObjectMeta: api.ObjectMeta{Name: fmt.Sprintf("ctr-%c", 'a'+i)},
				Spec: core.SharePodSpec{
					GPURequest: d, GPULimit: d, GPUMem: workload.MemShareInference,
					Pod: api.PodSpec{Containers: []api.Container{{
						Name:  "c",
						Image: workload.ServeImage,
						Env: map[string]string{
							workload.EnvRate:     "0",
							workload.EnvDuration: "3600",
						},
					}}},
				},
			}
			if _, err := core.SharePods(c.API).Create(sp); err != nil {
				panic(err)
			}
			// Sequential arrivals, as in Fig 3's scenario.
			p.Sleep(100 * time.Millisecond)
		}
	})
	env.RunUntil(2 * time.Minute)
	stats := placementStats{perDevice: map[string]float64{}}
	for _, sp := range core.SharePods(c.API).List() {
		if !sp.Placed() {
			stats.pendingJobs++
			continue
		}
		stats.perDevice[sp.Spec.GPUID] += sp.Spec.GPURequest
	}
	for _, load := range stats.perDevice {
		stats.activeDevices++
		if load > 1+1e-9 {
			stats.overcommitted++
		}
	}
	return stats, nil
}

// Table1 quantifies the first-class-scheduling rows of Table 1 by running
// two Figure 3-style placement scenarios under both schedulers. KubeShare
// never over-commits a device and activates the minimum number of GPUs
// (queueing the overflow instead); the extender baseline spreads jobs
// round-robin, activating every GPU and over-committing under contention.
func Table1(cfg Table1Config) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	tb := metrics.NewTable("Table 1 / Figure 3: fragmentation under single-device, round-robin and locality-aware scheduling",
		"scenario", "metric", "deepomatic", "extender_rr", "kubeshare")
	scenarios := []struct {
		name    string
		demands []float64
	}{
		{"mixed demands (Fig 3)", cfg.Demands},
		{"contending 0.6s", []float64{0.6, 0.6, 0.6, 0.6, 0.6, 0.6}},
	}
	systems := []table1System{table1Deepomatic, table1Extender, table1KubeShare}
	stats, err := runIndexed(len(scenarios)*len(systems), func(i int) (placementStats, error) {
		scCfg := cfg
		scCfg.Demands = scenarios[i/len(systems)].demands
		return runPlacement(scCfg, systems[i%len(systems)])
	})
	if err != nil {
		return nil, err
	}
	for i, sc := range scenarios {
		deep, ext, ks := stats[3*i], stats[3*i+1], stats[3*i+2]
		tb.AddRow(sc.name, "active GPUs", deep.activeDevices, ext.activeDevices, ks.activeDevices)
		tb.AddRow(sc.name, "over-committed GPUs", deep.overcommitted, ext.overcommitted, ks.overcommitted)
		tb.AddRow(sc.name, "queued jobs", deep.pendingJobs, ext.pendingJobs, ks.pendingJobs)
	}
	return tb, nil
}

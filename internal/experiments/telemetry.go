package experiments

import (
	"time"

	"kubeshare/internal/core"
	"kubeshare/internal/kube"
	"kubeshare/internal/obs"
	"kubeshare/internal/obs/tsdb"
	"kubeshare/internal/sim"
)

// DefaultTSDBCapacity bounds each retained series; at the default sampling
// cadence this holds hours of history before compaction starts halving
// resolution.
const DefaultTSDBCapacity = 1024

// TelemetrySet bundles the consumption layer attached to one run: the
// time-series database, the fairness auditor and the SLO alert engine,
// all driven by a single collector proc on the virtual clock.
type TelemetrySet struct {
	DB      *tsdb.DB
	Auditor *core.Auditor
	Alerts  *obs.AlertEngine
}

// attachTelemetry wires the consumption layer onto a cluster: a periodic
// collector that (in order) refreshes per-GPU utilization gauges from
// device busy windows, runs the fairness auditor, evaluates the SLO rules,
// and finally scrapes the whole registry into the TSDB — so every gauge
// set earlier in the tick is captured by the same tick. done (optional)
// stops the collector so env.Run can drain.
func attachTelemetry(env *sim.Env, c *kube.Cluster, interval time.Duration, done func() bool) *TelemetrySet {
	ts := &TelemetrySet{
		DB:      tsdb.NewDB(DefaultTSDBCapacity),
		Auditor: core.NewAuditor(c),
		Alerts:  obs.NewAlertEngine(c.Obs, obs.DefaultSLORules()),
	}
	gpus := c.AllGPUs()
	utilVec := c.Obs.FloatGaugeVec("kubeshare_gpu_utilization_ratio", "gpu_uuid", "node")
	util := make([]*obs.FloatGauge, len(gpus))
	prev := make([]time.Duration, len(gpus))
	for i, d := range gpus {
		util[i] = utilVec.With(d.UUID(), d.Node())
	}
	lastT := time.Duration(0)
	sampleUtil := func(now time.Duration) {
		dt := now - lastT
		if dt <= 0 {
			return
		}
		for i, d := range gpus {
			busy := d.BusyTime()
			util[i].Set(float64(busy-prev[i]) / float64(dt))
			prev[i] = busy
		}
		lastT = now
	}
	col := &tsdb.Collector{
		DB:       ts.DB,
		Registry: c.Obs.Registry(),
		Interval: interval,
		Samplers: []func(time.Duration){
			sampleUtil,
			ts.Auditor.Sample,
			ts.Alerts.Evaluate,
		},
		Done: done,
	}
	col.Start(env)
	return ts
}

// Package gpusim models GPU devices for the simulated cluster.
//
// A Device executes kernels under processor sharing: when n kernels from any
// number of contexts are resident, each progresses at 1/n of the device's
// rate — the time-slicing behaviour of a real GPU multiplexing contexts.
// The device tracks busy time (the basis of NVML-style utilization
// reporting), per-context execution time (the basis of usage attribution),
// and device memory with hard physical capacity.
//
// This package is the substitution for the paper's Tesla V100s: the vGPU
// device library intercepts the same call surface (see internal/cuda) and
// throttles kernels exactly as the real library throttles CUDA calls.
package gpusim

import (
	"errors"
	"fmt"
	"hash/fnv"
	"time"

	"kubeshare/internal/obs"
	"kubeshare/internal/sim"
)

// ErrOutOfMemory is returned when an allocation exceeds physical device
// memory (or, through the device library, a container's memory share).
var ErrOutOfMemory = errors.New("gpusim: out of device memory")

// ErrDeviceFault is the Xid-style uncorrectable device error: it kills the
// kernels in flight and poisons every open context. Poisoned contexts fail
// all further operations and must be closed; the device accepts new
// contexts again after ClearFault (the driver-level device reset).
var ErrDeviceFault = errors.New("gpusim: device fault (Xid)")

// DefaultMemoryBytes matches the paper's 16 GB V100s.
const DefaultMemoryBytes = 16 << 30

// DefaultCopyBandwidth is the host-device copy bandwidth (PCIe gen3 x16).
const DefaultCopyBandwidth = 12 << 30 // bytes per second

// Device is one simulated GPU.
type Device struct {
	env      *sim.Env
	index    int
	uuid     string
	node     string
	memCap   int64
	memUsed  int64
	copyBW   int64
	faulted  bool
	contexts map[*Context]bool

	active     []*kernel
	lastUpdate time.Duration
	busyAccum  time.Duration
	completion sim.Timer
	// freeKernels pools retired kernel structs; launch/retire churn is the
	// hottest allocation site in cluster-scale experiments.
	freeKernels []*kernel

	// Telemetry (no-op handles when the cluster runs without obs).
	recorder *obs.Recorder
	launches *obs.Counter
	faults   *obs.Counter
}

// kernel is a resident unit of GPU work.
type kernel struct {
	ctx       *Context
	remaining float64 // seconds of exclusive-device work left
	weight    float64 // processor-sharing weight (the context's at launch)
	done      *sim.Event
}

// Config parameterizes a device.
type Config struct {
	Index         int
	NodeName      string // part of the UUID derivation for uniqueness
	MemoryBytes   int64  // defaults to DefaultMemoryBytes
	CopyBandwidth int64  // defaults to DefaultCopyBandwidth
	// Obs is the cluster telemetry runtime; nil disables device telemetry.
	Obs *obs.Runtime
}

// NewDevice creates a device with a deterministic UUID derived from
// (NodeName, Index), mirroring how NVIDIA assigns stable per-board UUIDs.
func NewDevice(env *sim.Env, cfg Config) *Device {
	if cfg.MemoryBytes <= 0 {
		cfg.MemoryBytes = DefaultMemoryBytes
	}
	if cfg.CopyBandwidth <= 0 {
		cfg.CopyBandwidth = DefaultCopyBandwidth
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%d", cfg.NodeName, cfg.Index)
	uuid := fmt.Sprintf("GPU-%016x", h.Sum64())
	// Per-device children of the labeled families, fetched once so the
	// kernel-launch hot path touches only a cached atomic.
	return &Device{
		env:      env,
		index:    cfg.Index,
		uuid:     uuid,
		node:     cfg.NodeName,
		memCap:   cfg.MemoryBytes,
		copyBW:   cfg.CopyBandwidth,
		contexts: make(map[*Context]bool),
		recorder: cfg.Obs.EventSource("gpusim"),
		launches: cfg.Obs.CounterVec("kubeshare_gpu_kernel_launches_total", "gpu_uuid", "node").With(uuid, cfg.NodeName),
		faults:   cfg.Obs.CounterVec("kubeshare_gpu_faults_total", "gpu_uuid", "node").With(uuid, cfg.NodeName),
	}
}

// UUID returns the device's stable unique identifier.
func (d *Device) UUID() string { return d.uuid }

// Index returns the device's index on its node.
func (d *Device) Index() int { return d.index }

// Node returns the name of the node hosting the device.
func (d *Device) Node() string { return d.node }

// MemoryBytes returns the physical memory capacity.
func (d *Device) MemoryBytes() int64 { return d.memCap }

// MemoryUsed returns the currently allocated memory across all contexts.
func (d *Device) MemoryUsed() int64 { return d.memUsed }

// ActiveKernels returns the number of resident kernels right now.
func (d *Device) ActiveKernels() int { return len(d.active) }

// ActiveContexts returns the number of open contexts.
func (d *Device) ActiveContexts() int { return len(d.contexts) }

// totalWeight sums the resident kernels' processor-sharing weights. With
// unit weights (the default) the sum is exactly float64(len(d.active)),
// which keeps the sharing arithmetic bit-identical to the unweighted form.
func (d *Device) totalWeight() float64 {
	w := 0.0
	for _, k := range d.active {
		w += k.weight
	}
	return w
}

// update advances processor-sharing bookkeeping to the current instant.
// Each resident kernel progresses at weight/totalWeight of the device rate
// — generalized processor sharing. Under MPS-overlap sharing the weights
// are the tenants' gpu_request fractions (the SM/compute-fraction model);
// everywhere else every weight is 1.0 and this reduces exactly to the
// classic 1/n split (multiplying by 1.0 and dividing by an integer-valued
// sum are exact in IEEE 754).
func (d *Device) update() {
	now := d.env.Now()
	elapsed := now - d.lastUpdate
	d.lastUpdate = now
	if elapsed <= 0 || len(d.active) == 0 {
		return
	}
	totalW := d.totalWeight()
	secs := elapsed.Seconds()
	for _, k := range d.active {
		share := secs * k.weight / totalW
		k.remaining -= share
		k.ctx.devTime += time.Duration(share * float64(time.Second))
	}
	d.busyAccum += elapsed
}

// reschedule (re)arms the completion timer for the earliest-finishing
// kernel. A kernel with remaining work r and weight w finishes (at the
// current population) after r*totalW/w seconds; with unit weights this is
// the classic r*n, bit-identical to the unweighted form.
func (d *Device) reschedule() {
	d.completion.Stop()
	if len(d.active) == 0 {
		return
	}
	totalW := d.totalWeight()
	minEff := d.active[0].remaining * totalW / d.active[0].weight
	for _, k := range d.active[1:] {
		if eff := k.remaining * totalW / k.weight; eff < minEff {
			minEff = eff
		}
	}
	if minEff < 0 {
		minEff = 0
	}
	wait := time.Duration(minEff * float64(time.Second))
	d.completion = d.env.After(wait, d.onCompletion)
}

// onCompletion retires finished kernels and rearms the timer.
func (d *Device) onCompletion() {
	d.update()
	const eps = 1e-9 // one nanosecond of work
	still := d.active[:0]
	for _, k := range d.active {
		if k.remaining <= eps {
			// Trigger only schedules the waiters' wakeups, so the kernel
			// struct can be recycled immediately; the done event escaped to
			// the launcher and stays owned by it.
			k.done.Trigger(nil)
			k.done = nil
			k.ctx = nil
			d.freeKernels = append(d.freeKernels, k)
		} else {
			still = append(still, k)
		}
	}
	for i := len(still); i < len(d.active); i++ {
		d.active[i] = nil
	}
	d.active = still
	d.reschedule()
}

// launch makes a kernel resident and returns its completion event.
func (d *Device) launch(ctx *Context, work time.Duration) *sim.Event {
	done := sim.NewEvent(d.env)
	d.launchInto(ctx, work, done)
	return done
}

// launchInto is launch with a caller-provided completion event, so the
// synchronous path can reuse one event per context instead of allocating.
func (d *Device) launchInto(ctx *Context, work time.Duration, done *sim.Event) {
	d.update()
	d.launches.Inc()
	if work <= 0 {
		done.Trigger(nil)
		return
	}
	var k *kernel
	if n := len(d.freeKernels); n > 0 {
		k = d.freeKernels[n-1]
		d.freeKernels[n-1] = nil
		d.freeKernels = d.freeKernels[:n-1]
	} else {
		k = &kernel{}
	}
	k.ctx = ctx
	k.remaining = work.Seconds()
	k.weight = ctx.weight
	k.done = done
	d.active = append(d.active, k)
	d.reschedule()
}

// InjectFault raises an Xid-style fault: every resident kernel completes
// with ErrDeviceFault, every open context is poisoned, and new launches and
// allocations fail until ClearFault. Memory accounting is left to the
// owners — poisoned contexts release their memory when closed, exactly as
// a real process cleans up after a device error.
func (d *Device) InjectFault() {
	d.update()
	for _, k := range d.active {
		k.done.Trigger(ErrDeviceFault)
		k.done = nil
		k.ctx = nil
		d.freeKernels = append(d.freeKernels, k)
	}
	for i := range d.active {
		d.active[i] = nil
	}
	d.active = d.active[:0]
	d.completion.Stop()
	d.faulted = true
	poisoned := len(d.contexts)
	for ctx := range d.contexts {
		ctx.faulted = true
	}
	d.faults.Inc()
	d.recorder.Eventf("GPU", d.uuid, obs.EventWarning, "DeviceFault",
		"Xid fault: %d contexts poisoned", poisoned)
}

// InjectContextFault raises an Xid-style fault scoped to one context — the
// failure model of MPS-overlap sharing, where tenants share a single device
// context space and isolation is limited. The victim's resident kernels die
// with ErrDeviceFault and the victim is poisoned; if the victim had kernels
// in flight, every context with co-resident kernels at that instant is
// poisoned too (their kernels also die). Contexts with nothing resident are
// spared, and the device itself stays serviceable — no ClearFault needed.
// Under token or replica gating at most one tenant's kernels are resident
// per slot, so the same fault has a far smaller blast radius there.
func (d *Device) InjectContextFault(victim *Context) {
	if victim == nil || victim.dev != d || victim.closed {
		return
	}
	d.update()
	victimActive := false
	for _, k := range d.active {
		if k.ctx == victim {
			victimActive = true
			break
		}
	}
	poison := map[*Context]bool{victim: true}
	if victimActive {
		for _, k := range d.active {
			poison[k.ctx] = true
		}
	}
	still := d.active[:0]
	for _, k := range d.active {
		if poison[k.ctx] {
			k.done.Trigger(ErrDeviceFault)
			k.done = nil
			k.ctx = nil
			d.freeKernels = append(d.freeKernels, k)
		} else {
			still = append(still, k)
		}
	}
	for i := len(still); i < len(d.active); i++ {
		d.active[i] = nil
	}
	d.active = still
	for ctx := range poison {
		ctx.faulted = true
	}
	d.faults.Inc()
	d.recorder.Eventf("GPU", d.uuid, obs.EventWarning, "ContextFault",
		"Xid fault in context %s: %d contexts poisoned", victim.owner, len(poison))
	d.reschedule()
}

// ClearFault resets the device after a fault. Contexts poisoned by the
// fault stay poisoned — their owners must close them and open fresh ones.
func (d *Device) ClearFault() {
	if d.faulted {
		d.recorder.Eventf("GPU", d.uuid, obs.EventNormal, "DeviceFaultCleared", "device reset")
	}
	d.faulted = false
}

// Faulted reports whether the device is currently in the faulted state.
func (d *Device) Faulted() bool { return d.faulted }

// BusyTime returns the accumulated device-busy time up to the current
// instant.
func (d *Device) BusyTime() time.Duration {
	d.update()
	return d.busyAccum
}

// CopyDuration returns the host↔device transfer time for n bytes.
func (d *Device) CopyDuration(n int64) time.Duration {
	if n <= 0 {
		return 0
	}
	return time.Duration(float64(n) / float64(d.copyBW) * float64(time.Second))
}

// OpenContext creates an execution context owned by the named principal
// (a container id in the cluster).
func (d *Device) OpenContext(owner string) *Context {
	ctx := &Context{dev: d, owner: owner, weight: 1}
	d.contexts[ctx] = true
	return ctx
}

// Context is one principal's execution and memory state on a device.
type Context struct {
	dev     *Device
	owner   string
	memUsed int64
	// memLimit caps this context's allocations (0 = device capacity only);
	// the enforcement point of absolute gpu_mem_bytes requests.
	memLimit int64
	// weight is the processor-sharing weight stamped onto launched kernels
	// (1.0 default; MPS-overlap sets the tenant's compute fraction).
	weight  float64
	devTime time.Duration
	// syncEv is the reusable completion event for synchronous Launch; it
	// never escapes the Launch call, so one event serves every kernel.
	syncEv  *sim.Event
	closed  bool
	faulted bool
}

// SetComputeWeight sets the processor-sharing weight for kernels launched
// from this context — the SM/compute-fraction model of MPS-overlap sharing
// (a tenant with weight 0.3 gets 0.3/Σweights of the device under
// contention). Non-positive weights are ignored; kernels already resident
// keep the weight they launched with.
func (c *Context) SetComputeWeight(w float64) {
	if w > 0 {
		c.weight = w
	}
}

// SetMemLimit caps the context's device-memory allocations at n bytes
// (0 removes the cap). This is gpusim's enforcement of absolute
// gpu_mem_bytes requests: unlike the frontend's fractional share check,
// the limit lives in the device's own memory model.
func (c *Context) SetMemLimit(n int64) {
	if n >= 0 {
		c.memLimit = n
	}
}

// Faulted reports whether this context was poisoned by a device fault.
func (c *Context) Faulted() bool { return c.faulted }

// Owner returns the principal that opened the context.
func (c *Context) Owner() string { return c.owner }

// Device returns the underlying device.
func (c *Context) Device() *Device { return c.dev }

// MemUsed returns this context's allocated device memory.
func (c *Context) MemUsed() int64 { return c.memUsed }

// DeviceTime returns the execution time attributed to this context under
// processor sharing, up to the current instant.
func (c *Context) DeviceTime() time.Duration {
	c.dev.update()
	return c.devTime
}

// Alloc reserves n bytes of device memory.
func (c *Context) Alloc(n int64) error {
	if c.closed {
		return errors.New("gpusim: context closed")
	}
	if c.faulted || c.dev.faulted {
		return ErrDeviceFault
	}
	if n < 0 {
		return errors.New("gpusim: negative allocation")
	}
	if c.memLimit > 0 && c.memUsed+n > c.memLimit {
		return ErrOutOfMemory
	}
	if c.dev.memUsed+n > c.dev.memCap {
		return ErrOutOfMemory
	}
	c.dev.memUsed += n
	c.memUsed += n
	return nil
}

// Free releases n bytes previously allocated by this context.
func (c *Context) Free(n int64) error {
	if n < 0 || n > c.memUsed {
		return fmt.Errorf("gpusim: free of %d bytes exceeds context usage %d", n, c.memUsed)
	}
	c.memUsed -= n
	c.dev.memUsed -= n
	return nil
}

// LaunchAsync submits a kernel of the given exclusive-device duration and
// returns its completion event. The event's value is nil on success or the
// error (context closed, device fault) that killed the kernel.
func (c *Context) LaunchAsync(work time.Duration) *sim.Event {
	if c.closed || c.faulted || c.dev.faulted {
		ev := sim.NewEvent(c.dev.env)
		if c.closed {
			ev.Trigger(errors.New("gpusim: context closed"))
		} else {
			ev.Trigger(ErrDeviceFault)
		}
		return ev
	}
	return c.dev.launch(c, work)
}

// Launch submits a kernel and parks p until it completes, returning nil or
// the error that killed the kernel (a device fault mid-flight). The
// completion event is cached on the context and reused (a launch on an open
// context is the serving hot path), so steady-state synchronous kernels
// allocate nothing.
func (c *Context) Launch(p *sim.Proc, work time.Duration) error {
	if c.closed {
		return nil // matches the legacy silent no-op on closed contexts
	}
	if c.faulted || c.dev.faulted {
		return ErrDeviceFault
	}
	ev := c.syncEv
	if ev == nil {
		ev = sim.NewEvent(c.dev.env)
		c.syncEv = ev
	} else {
		ev.Reset()
	}
	c.dev.launchInto(c, work, ev)
	if err, _ := p.Wait(ev).(error); err != nil {
		return err
	}
	return nil
}

// Close releases the context's memory and detaches it from the device.
// Kernels already resident run to completion (CUDA frees contexts only after
// quiescence; our callers synchronize first).
func (c *Context) Close() {
	if c.closed {
		return
	}
	c.closed = true
	c.dev.memUsed -= c.memUsed
	c.memUsed = 0
	delete(c.dev.contexts, c)
}

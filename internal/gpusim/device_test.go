package gpusim

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"

	"kubeshare/internal/metrics"
	"kubeshare/internal/sim"
)

func newDev(env *sim.Env) *Device {
	return NewDevice(env, Config{Index: 0, NodeName: "n0"})
}

func TestUUIDStableAndUnique(t *testing.T) {
	env := sim.NewEnv()
	a := NewDevice(env, Config{Index: 0, NodeName: "n0"})
	b := NewDevice(env, Config{Index: 0, NodeName: "n0"})
	c := NewDevice(env, Config{Index: 1, NodeName: "n0"})
	d := NewDevice(env, Config{Index: 0, NodeName: "n1"})
	if a.UUID() != b.UUID() {
		t.Fatal("same (node,index) must give same UUID")
	}
	if a.UUID() == c.UUID() || a.UUID() == d.UUID() {
		t.Fatal("distinct devices share a UUID")
	}
}

func TestSingleKernelExactDuration(t *testing.T) {
	env := sim.NewEnv()
	dev := newDev(env)
	ctx := dev.OpenContext("c1")
	var done time.Duration
	env.Go("app", func(p *sim.Proc) {
		ctx.Launch(p, 100*time.Millisecond)
		done = env.Now()
	})
	env.Run()
	if done != 100*time.Millisecond {
		t.Fatalf("kernel finished at %v, want 100ms", done)
	}
}

func TestProcessorSharingTwoKernels(t *testing.T) {
	env := sim.NewEnv()
	dev := newDev(env)
	c1 := dev.OpenContext("c1")
	c2 := dev.OpenContext("c2")
	var t1, t2 time.Duration
	env.Go("a", func(p *sim.Proc) { c1.Launch(p, 100*time.Millisecond); t1 = env.Now() })
	env.Go("b", func(p *sim.Proc) { c2.Launch(p, 100*time.Millisecond); t2 = env.Now() })
	env.Run()
	// Both share the device: each runs at half rate, finishing at 200ms.
	if t1 != 200*time.Millisecond || t2 != 200*time.Millisecond {
		t.Fatalf("finish times %v %v, want 200ms each", t1, t2)
	}
}

func TestProcessorSharingStaggeredArrival(t *testing.T) {
	env := sim.NewEnv()
	dev := newDev(env)
	c1 := dev.OpenContext("c1")
	c2 := dev.OpenContext("c2")
	var t1, t2 time.Duration
	env.Go("a", func(p *sim.Proc) { c1.Launch(p, 100*time.Millisecond); t1 = env.Now() })
	env.Go("b", func(p *sim.Proc) {
		p.Sleep(50 * time.Millisecond)
		c2.Launch(p, 100*time.Millisecond)
		t2 = env.Now()
	})
	env.Run()
	// a runs alone 0-50ms (50ms work done), then shares: remaining 50ms at
	// half rate → finishes at 150ms. b then runs alone: did 50ms of work
	// during sharing, 50ms left alone → finishes at 200ms.
	if t1 != 150*time.Millisecond {
		t.Fatalf("t1 = %v, want 150ms", t1)
	}
	if t2 != 200*time.Millisecond {
		t.Fatalf("t2 = %v, want 200ms", t2)
	}
}

func TestBusyTimeAndIdleGaps(t *testing.T) {
	env := sim.NewEnv()
	dev := newDev(env)
	ctx := dev.OpenContext("c1")
	env.Go("a", func(p *sim.Proc) {
		ctx.Launch(p, 30*time.Millisecond)
		p.Sleep(70 * time.Millisecond)
		ctx.Launch(p, 30*time.Millisecond)
	})
	env.Run()
	if got := dev.BusyTime(); got != 60*time.Millisecond {
		t.Fatalf("BusyTime = %v, want 60ms", got)
	}
}

func TestBusyTimeCountsSharingOnce(t *testing.T) {
	env := sim.NewEnv()
	dev := newDev(env)
	c1 := dev.OpenContext("c1")
	c2 := dev.OpenContext("c2")
	env.Go("a", func(p *sim.Proc) { c1.Launch(p, 50*time.Millisecond) })
	env.Go("b", func(p *sim.Proc) { c2.Launch(p, 50*time.Millisecond) })
	env.Run()
	// Two 50ms kernels shared: wall time 100ms, device busy 100ms (not 200).
	if got := dev.BusyTime(); got != 100*time.Millisecond {
		t.Fatalf("BusyTime = %v, want 100ms", got)
	}
}

func TestDeviceTimeAttribution(t *testing.T) {
	env := sim.NewEnv()
	dev := newDev(env)
	c1 := dev.OpenContext("c1")
	c2 := dev.OpenContext("c2")
	env.Go("a", func(p *sim.Proc) { c1.Launch(p, 100*time.Millisecond) })
	env.Go("b", func(p *sim.Proc) { c2.Launch(p, 50*time.Millisecond) })
	env.Run()
	// Shared until b finishes (b needs 50ms work at half rate → t=100ms;
	// both got 50ms device time). a then runs alone 50ms more.
	if got := c2.DeviceTime(); got != 50*time.Millisecond {
		t.Fatalf("c2 device time %v, want 50ms", got)
	}
	if got := c1.DeviceTime(); got != 100*time.Millisecond {
		t.Fatalf("c1 device time %v, want 100ms", got)
	}
}

func TestZeroWorkKernelCompletesImmediately(t *testing.T) {
	env := sim.NewEnv()
	dev := newDev(env)
	ctx := dev.OpenContext("c1")
	env.Go("a", func(p *sim.Proc) {
		ctx.Launch(p, 0)
		if env.Now() != 0 {
			t.Errorf("zero-work kernel took %v", env.Now())
		}
	})
	env.Run()
}

func TestMemoryAllocFree(t *testing.T) {
	env := sim.NewEnv()
	dev := NewDevice(env, Config{NodeName: "n", MemoryBytes: 1000})
	ctx := dev.OpenContext("c1")
	if err := ctx.Alloc(600); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Alloc(500); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want OOM", err)
	}
	if err := ctx.Free(200); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Alloc(500); err != nil {
		t.Fatalf("alloc after free: %v", err)
	}
	if dev.MemoryUsed() != 900 || ctx.MemUsed() != 900 {
		t.Fatalf("used dev=%d ctx=%d", dev.MemoryUsed(), ctx.MemUsed())
	}
}

func TestMemoryIsolationBetweenContexts(t *testing.T) {
	env := sim.NewEnv()
	dev := NewDevice(env, Config{NodeName: "n", MemoryBytes: 1000})
	c1 := dev.OpenContext("c1")
	c2 := dev.OpenContext("c2")
	if err := c1.Alloc(700); err != nil {
		t.Fatal(err)
	}
	if err := c2.Alloc(400); !errors.Is(err, ErrOutOfMemory) {
		t.Fatal("physical capacity not shared across contexts")
	}
	if err := c2.Free(1); err == nil {
		t.Fatal("free of unallocated memory must error")
	}
}

func TestContextCloseReleasesMemory(t *testing.T) {
	env := sim.NewEnv()
	dev := NewDevice(env, Config{NodeName: "n", MemoryBytes: 1000})
	c1 := dev.OpenContext("c1")
	if err := c1.Alloc(800); err != nil {
		t.Fatal(err)
	}
	c1.Close()
	if dev.MemoryUsed() != 0 {
		t.Fatalf("MemoryUsed = %d after close", dev.MemoryUsed())
	}
	if err := c1.Alloc(1); err == nil {
		t.Fatal("alloc on closed context must error")
	}
	if dev.ActiveContexts() != 0 {
		t.Fatal("context not detached")
	}
}

func TestCopyDuration(t *testing.T) {
	env := sim.NewEnv()
	dev := NewDevice(env, Config{NodeName: "n", CopyBandwidth: 1 << 30})
	if got := dev.CopyDuration(1 << 30); got != time.Second {
		t.Fatalf("CopyDuration = %v, want 1s", got)
	}
	if dev.CopyDuration(0) != 0 || dev.CopyDuration(-5) != 0 {
		t.Fatal("non-positive copy must be 0")
	}
}

func TestSamplerUtilization(t *testing.T) {
	env := sim.NewEnv()
	dev := newDev(env)
	ctx := dev.OpenContext("c1")
	var series metrics.Series
	s := NewSampler(env, dev, 100*time.Millisecond, &series)
	env.Go("app", func(p *sim.Proc) {
		// 50% duty cycle: 50ms kernel, 50ms host work, 4 iterations.
		for i := 0; i < 4; i++ {
			ctx.Launch(p, 50*time.Millisecond)
			p.Sleep(50 * time.Millisecond)
		}
	})
	env.RunUntil(400 * time.Millisecond)
	s.Stop()
	env.Run()
	if series.Len() < 4 {
		t.Fatalf("samples = %d", series.Len())
	}
	for i := 0; i < 4; i++ {
		if math.Abs(series.Points[i].V-0.5) > 1e-9 {
			t.Fatalf("sample %d = %v, want 0.5", i, series.Points[i].V)
		}
	}
}

// Property: total device time attributed to contexts equals device busy time
// (work conservation under processor sharing).
func TestPropertyWorkConservation(t *testing.T) {
	f := func(works []uint8) bool {
		env := sim.NewEnv()
		dev := newDev(env)
		var ctxs []*Context
		for i, w := range works {
			if i >= 6 {
				break
			}
			ctx := dev.OpenContext("c")
			ctxs = append(ctxs, ctx)
			work := time.Duration(w%100+1) * time.Millisecond
			start := time.Duration(w/16) * 10 * time.Millisecond
			env.At(start, func() {
				env.Go("app", func(p *sim.Proc) { ctx.Launch(p, work) })
			})
		}
		env.Run()
		var attributed time.Duration
		for _, c := range ctxs {
			attributed += c.DeviceTime()
		}
		diff := attributed - dev.BusyTime()
		if diff < 0 {
			diff = -diff
		}
		return diff < time.Microsecond
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: a kernel's wall-clock time is at least its work and at most
// work × (max concurrent kernels).
func TestPropertySharingSlowdownBounds(t *testing.T) {
	f := func(n uint8) bool {
		k := int(n%5) + 1
		env := sim.NewEnv()
		dev := newDev(env)
		work := 100 * time.Millisecond
		ok := true
		for i := 0; i < k; i++ {
			ctx := dev.OpenContext("c")
			env.Go("app", func(p *sim.Proc) {
				start := env.Now()
				ctx.Launch(p, work)
				wall := env.Now() - start
				if wall < work || wall > time.Duration(k)*work+time.Microsecond {
					ok = false
				}
			})
		}
		env.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

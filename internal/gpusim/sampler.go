package gpusim

import (
	"time"

	"kubeshare/internal/metrics"
	"kubeshare/internal/sim"
)

// Sampler periodically records device utilization the way the NVML tool
// reports it: the fraction of the sampling interval during which the device
// was executing at least one kernel. The paper's Figure 9 is produced from
// exactly this signal averaged across the cluster's devices.
type Sampler struct {
	dev      *Device
	interval time.Duration
	series   *metrics.Series
	proc     *sim.Proc
}

// NewSampler starts sampling dev every interval into series. Sampling stops
// when Stop is called; an unstopped sampler does not keep the simulation
// alive past the last other event only if callers use RunUntil — Stop it
// before Env.Run to completion.
func NewSampler(env *sim.Env, dev *Device, interval time.Duration, series *metrics.Series) *Sampler {
	s := &Sampler{dev: dev, interval: interval, series: series}
	s.proc = env.Go("nvml-sampler", func(p *sim.Proc) {
		prev := dev.BusyTime()
		for !p.Killed() {
			p.Sleep(interval)
			busy := dev.BusyTime()
			util := float64(busy-prev) / float64(interval)
			series.Add(env.Now(), util)
			prev = busy
		}
	})
	return s
}

// Stop terminates the sampling loop.
func (s *Sampler) Stop() { s.proc.Kill(nil) }

// Series returns the series samples are recorded into.
func (s *Sampler) Series() *metrics.Series { return s.series }

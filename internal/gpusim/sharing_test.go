package gpusim

import (
	"errors"
	"testing"
	"time"

	"kubeshare/internal/sim"
)

func TestWeightedProcessorSharing(t *testing.T) {
	env := sim.NewEnv()
	dev := newDev(env)
	heavy := dev.OpenContext("heavy")
	light := dev.OpenContext("light")
	heavy.SetComputeWeight(0.75)
	light.SetComputeWeight(0.25)
	var th, tl time.Duration
	env.Go("h", func(p *sim.Proc) { heavy.Launch(p, 30*time.Millisecond); th = env.Now() })
	env.Go("l", func(p *sim.Proc) { light.Launch(p, 30*time.Millisecond); tl = env.Now() })
	env.Run()
	// While both run, heavy gets 75% of the device: its 30ms of work is done
	// at 40ms. Light has 10ms of work done by then; the remaining 20ms runs
	// at full rate, finishing at 60ms.
	// Completion times round monotonically to the nanosecond grid, so allow
	// a microsecond of slack.
	if d := (th - 40*time.Millisecond).Abs(); d > time.Microsecond {
		t.Fatalf("heavy finished at %v, want ≈40ms (75%% share)", th)
	}
	if d := (tl - 60*time.Millisecond).Abs(); d > time.Microsecond {
		t.Fatalf("light finished at %v, want ≈60ms (25%% share, then alone)", tl)
	}
}

func TestWeightedSharingUnitWeightsMatchUnweighted(t *testing.T) {
	env := sim.NewEnv()
	dev := newDev(env)
	c1 := dev.OpenContext("c1")
	c2 := dev.OpenContext("c2")
	c1.SetComputeWeight(1)
	c2.SetComputeWeight(1)
	var t1, t2 time.Duration
	env.Go("a", func(p *sim.Proc) { c1.Launch(p, 100*time.Millisecond); t1 = env.Now() })
	env.Go("b", func(p *sim.Proc) { c2.Launch(p, 100*time.Millisecond); t2 = env.Now() })
	env.Run()
	// Explicit unit weights must reproduce the legacy equal split exactly —
	// the bit-identity the token strategy's goldens rely on.
	if t1 != 200*time.Millisecond || t2 != 200*time.Millisecond {
		t.Fatalf("finish times %v %v, want 200ms each", t1, t2)
	}
}

func TestContextMemLimitOOM(t *testing.T) {
	env := sim.NewEnv()
	dev := newDev(env)
	ctx := dev.OpenContext("c1")
	ctx.SetMemLimit(1 << 20)
	if err := ctx.Alloc(2 << 20); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("alloc past context limit: %v, want ErrOutOfMemory", err)
	}
	if err := ctx.Alloc(1 << 20); err != nil {
		t.Fatalf("alloc within limit: %v", err)
	}
	if err := ctx.Alloc(1); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("alloc at full limit: %v, want ErrOutOfMemory", err)
	}
	// The device itself has room to spare: the limit is per-context.
	other := dev.OpenContext("c2")
	if err := other.Alloc(1 << 30); err != nil {
		t.Fatalf("unlimited sibling alloc: %v", err)
	}
}

func TestContextFaultPoisonsCoResident(t *testing.T) {
	env := sim.NewEnv()
	dev := newDev(env)
	victim := dev.OpenContext("victim")
	neighbor := dev.OpenContext("neighbor")
	idle := dev.OpenContext("idle")
	errs := map[string]error{}
	env.Go("v", func(p *sim.Proc) { errs["victim"] = victim.Launch(p, 50*time.Millisecond) })
	env.Go("n", func(p *sim.Proc) { errs["neighbor"] = neighbor.Launch(p, 50*time.Millisecond) })
	env.Go("fault", func(p *sim.Proc) {
		p.Sleep(10 * time.Millisecond)
		dev.InjectContextFault(victim)
	})
	env.Run()
	// The victim had kernels in flight, so every context with co-resident
	// kernels dies with it; the idle context and the device survive.
	for _, who := range []string{"victim", "neighbor"} {
		if !errors.Is(errs[who], ErrDeviceFault) {
			t.Fatalf("%s kernel: %v, want ErrDeviceFault", who, errs[who])
		}
	}
	if !victim.Faulted() || !neighbor.Faulted() {
		t.Fatal("co-resident contexts must be poisoned")
	}
	if idle.Faulted() || dev.Faulted() {
		t.Fatal("idle context and device must be spared")
	}
	var after error
	env.Go("idle", func(p *sim.Proc) { after = idle.Launch(p, 5*time.Millisecond) })
	env.Run()
	if after != nil {
		t.Fatalf("launch on spared context after fault: %v", after)
	}
}

func TestContextFaultIdleVictimOnly(t *testing.T) {
	env := sim.NewEnv()
	dev := newDev(env)
	victim := dev.OpenContext("victim")
	bystander := dev.OpenContext("bystander")
	var byErr error
	env.Go("b", func(p *sim.Proc) { byErr = bystander.Launch(p, 50*time.Millisecond) })
	env.Go("fault", func(p *sim.Proc) {
		p.Sleep(10 * time.Millisecond)
		// The victim has nothing in flight: the blast radius is just the
		// victim — the gated-sharing case, where at most one tenant's
		// kernels are resident at a time.
		dev.InjectContextFault(victim)
	})
	env.Run()
	if byErr != nil {
		t.Fatalf("bystander kernel: %v, want success (victim was idle)", byErr)
	}
	if !victim.Faulted() || bystander.Faulted() {
		t.Fatal("want victim poisoned, bystander spared")
	}
}

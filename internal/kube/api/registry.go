package api

import "fmt"

// The kind registry maps kind names to factories producing zero values of
// the concrete object type. The store's durability layer (WAL records and
// checkpoints) serializes objects as (kind, JSON) pairs; decoding them back
// into typed objects needs a way to construct the right concrete type from
// the kind string alone. Built-in kinds register here; custom resources
// (SharePod, SharePodSet, VGPU) register from their defining package's
// init, exactly like scheme registration in Kubernetes.
var kindRegistry = map[string]func() Object{}

// RegisterKind installs a factory for a kind. Registering the same kind
// twice panics: two packages claiming one kind is a wiring bug that would
// otherwise surface as silently misdecoded store state.
func RegisterKind(kind string, factory func() Object) {
	if kind == "" || factory == nil {
		panic("api: RegisterKind with empty kind or nil factory")
	}
	if _, dup := kindRegistry[kind]; dup {
		panic(fmt.Sprintf("api: kind %q registered twice", kind))
	}
	kindRegistry[kind] = factory
}

// NewObject returns a zero value of the kind's concrete type, or an error
// for unregistered kinds (a WAL or checkpoint holding such a kind cannot be
// restored and the caller must treat the record as corrupt).
func NewObject(kind string) (Object, error) {
	factory, ok := kindRegistry[kind]
	if !ok {
		return nil, fmt.Errorf("api: kind %q not registered", kind)
	}
	return factory(), nil
}

func init() {
	RegisterKind("Pod", func() Object { return &Pod{} })
	RegisterKind("Node", func() Object { return &Node{} })
	RegisterKind(KindEvent, func() Object { return &Event{} })
	RegisterKind("ReplicationController", func() Object { return &ReplicationController{} })
}

// Package api defines the Kubernetes object model used by the simulated
// control plane: pods, nodes, resource lists, bindings and events. Objects
// are plain data with value semantics (DeepCopy before sharing); behaviour
// lives in the components that watch them, exactly as in Kubernetes.
package api

import (
	"fmt"
	"time"
)

// Resource names understood by the stock scheduler and kubelet. Custom
// device resources (for example ResourceGPU) are opaque integer counts to
// both — the device plugin framework's deliberate limitation (§2.2 of the
// paper).
const (
	// ResourceCPU is measured in millicores.
	ResourceCPU = "cpu"
	// ResourceMemory is measured in bytes.
	ResourceMemory = "memory"
	// ResourceGPU is the NVIDIA device plugin's extended resource, measured
	// in whole devices.
	ResourceGPU = "nvidia.com/gpu"
)

// ResourceList maps resource names to integer quantities (millicores,
// bytes, or device counts).
type ResourceList map[string]int64

// Clone returns a deep copy.
func (r ResourceList) Clone() ResourceList {
	if r == nil {
		return nil
	}
	out := make(ResourceList, len(r))
	for k, v := range r {
		out[k] = v
	}
	return out
}

// Add accumulates other into r.
func (r ResourceList) Add(other ResourceList) {
	for k, v := range other {
		r[k] += v
	}
}

// Sub subtracts other from r.
func (r ResourceList) Sub(other ResourceList) {
	for k, v := range other {
		r[k] -= v
	}
}

// Fits reports whether need fits within r for every named resource.
func (r ResourceList) Fits(need ResourceList) bool {
	for k, v := range need {
		if v > r[k] {
			return false
		}
	}
	return true
}

// ObjectMeta is metadata common to all API objects.
type ObjectMeta struct {
	Name            string
	UID             string
	ResourceVersion int64
	Labels          map[string]string
	Annotations     map[string]string
	// CreationTime is virtual time at creation (set by the API server).
	CreationTime time.Duration
	// OwnerName links controller-created objects to their owner.
	OwnerName string
}

// CloneMeta returns a deep copy of the metadata.
func (m ObjectMeta) CloneMeta() ObjectMeta {
	out := m
	out.Labels = cloneMap(m.Labels)
	out.Annotations = cloneMap(m.Annotations)
	return out
}

func cloneMap(m map[string]string) map[string]string {
	if m == nil {
		return nil
	}
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Object is the interface all API objects implement. Key uniqueness is
// (Kind, Name).
type Object interface {
	// GetMeta returns a pointer to the object's metadata for the API server
	// to fill in versions and UIDs.
	GetMeta() *ObjectMeta
	// Kind returns the object kind, e.g. "Pod".
	Kind() string
	// DeepCopyObject returns a deep copy.
	DeepCopyObject() Object
}

// StatusCarrier is implemented by objects with a status subresource. The
// store uses it to keep spec and status writes from clobbering each other:
// Update preserves the stored status (ignoring the caller's status fields)
// and UpdateStatus preserves the stored spec and metadata. Objects that do
// not implement it keep whole-object write semantics.
type StatusCarrier interface {
	Object
	// SetStatusFrom overwrites the receiver's status with src's status.
	// src is guaranteed to be the same concrete type.
	SetStatusFrom(src Object)
}

// Key returns the store key of an object.
func Key(o Object) string { return o.Kind() + "/" + o.GetMeta().Name }

// KeyOf builds a store key from a kind and name.
func KeyOf(kind, name string) string { return kind + "/" + name }

// TraceKey returns the causal-trace chain key for an object: the owner's
// key for controller-created objects (OwnerName is already "Kind/Name"),
// else the object's own key. This is what threads a controller-created
// pod's scheduling and sync spans onto its owner's chain — a sharePod's
// holder and bound pods trace under "SharePod/<name>".
func TraceKey(o Object) string {
	if owner := o.GetMeta().OwnerName; owner != "" {
		return owner
	}
	return Key(o)
}

// --- Pod ---

// PodPhase is the lifecycle phase of a pod.
type PodPhase string

// Pod lifecycle phases.
const (
	PodPending   PodPhase = "Pending"
	PodRunning   PodPhase = "Running"
	PodSucceeded PodPhase = "Succeeded"
	PodFailed    PodPhase = "Failed"
)

// Container is one container in a pod. Its behaviour comes from the image
// registry (the container runtime looks Image up to find the entrypoint).
type Container struct {
	Name     string
	Image    string
	Env      map[string]string
	Requests ResourceList
	Limits   ResourceList
}

// Clone returns a deep copy.
func (c Container) Clone() Container {
	out := c
	out.Env = cloneMap(c.Env)
	out.Requests = c.Requests.Clone()
	out.Limits = c.Limits.Clone()
	return out
}

// PodSpec is the desired state of a pod.
type PodSpec struct {
	// NodeName is empty until the scheduler binds the pod.
	NodeName     string
	Containers   []Container
	NodeSelector map[string]string
}

// Clone returns a deep copy.
func (s PodSpec) Clone() PodSpec {
	out := s
	out.NodeSelector = cloneMap(s.NodeSelector)
	out.Containers = make([]Container, len(s.Containers))
	for i, c := range s.Containers {
		out.Containers[i] = c.Clone()
	}
	return out
}

// Requests returns the pod-level resource requests (sum over containers).
func (s PodSpec) Requests() ResourceList {
	total := ResourceList{}
	for _, c := range s.Containers {
		total.Add(c.Requests)
	}
	return total
}

// PodStatus is the observed state of a pod.
type PodStatus struct {
	Phase   PodPhase
	Message string
	// ScheduledTime/StartTime/FinishTime are virtual timestamps recorded by
	// the scheduler and kubelet; zero until set. StartTime is when all
	// containers entered running.
	ScheduledTime time.Duration
	StartTime     time.Duration
	FinishTime    time.Duration
}

// Pod is the smallest deployable unit.
type Pod struct {
	ObjectMeta
	Spec   PodSpec
	Status PodStatus
}

// GetMeta implements Object.
func (p *Pod) GetMeta() *ObjectMeta { return &p.ObjectMeta }

// Kind implements Object.
func (p *Pod) Kind() string { return "Pod" }

// DeepCopyObject implements Object.
func (p *Pod) DeepCopyObject() Object {
	out := *p
	out.ObjectMeta = p.CloneMeta()
	out.Spec = p.Spec.Clone()
	return &out
}

// SetStatusFrom implements StatusCarrier.
func (p *Pod) SetStatusFrom(src Object) { p.Status = src.(*Pod).Status }

// Terminated reports whether the pod reached a terminal phase.
func (p *Pod) Terminated() bool {
	return p.Status.Phase == PodSucceeded || p.Status.Phase == PodFailed
}

// --- Node ---

// NodeStatus is the observed state of a node.
type NodeStatus struct {
	// Capacity is the node's total resources; Allocatable is what the
	// scheduler may commit (devices appear here once their plugin
	// registers).
	Capacity    ResourceList
	Allocatable ResourceList
	Ready       bool
	// HeartbeatTime is the sim instant of the kubelet's last lease renewal;
	// the node-lifecycle controller marks the node NotReady when it goes
	// stale.
	HeartbeatTime time.Duration
}

// Node represents a worker machine.
type Node struct {
	ObjectMeta
	Status NodeStatus
}

// GetMeta implements Object.
func (n *Node) GetMeta() *ObjectMeta { return &n.ObjectMeta }

// Kind implements Object.
func (n *Node) Kind() string { return "Node" }

// DeepCopyObject implements Object.
func (n *Node) DeepCopyObject() Object {
	out := *n
	out.ObjectMeta = n.CloneMeta()
	out.Status.Capacity = n.Status.Capacity.Clone()
	out.Status.Allocatable = n.Status.Allocatable.Clone()
	return &out
}

// SetStatusFrom implements StatusCarrier.
func (n *Node) SetStatusFrom(src Object) {
	st := src.(*Node).Status
	st.Capacity = st.Capacity.Clone()
	st.Allocatable = st.Allocatable.Clone()
	n.Status = st
}

// MatchesSelector reports whether the node's labels satisfy sel.
func (n *Node) MatchesSelector(sel map[string]string) bool {
	for k, v := range sel {
		if n.Labels[k] != v {
			return false
		}
	}
	return true
}

// --- Event ---

// KindEvent is the store kind of Event objects.
const KindEvent = "Event"

// Event records something notable happening to an object — the
// Kubernetes Event resource. Events are persisted by the apiserver's
// telemetry sink (one per distinct (involved object, reason, source,
// type), deduplicated by bumping Count) and get the usual list/watch
// semantics, so controllers and tests can observe them like any other
// resource.
type Event struct {
	ObjectMeta
	// InvolvedKind/InvolvedName identify the object the event is about.
	InvolvedKind string
	InvolvedName string
	// Type is "Normal" or "Warning".
	Type   string
	Reason string
	// Source is the reporting component, e.g. "kubelet/node-1".
	Source  string
	Message string
	// Count is how many times this event occurred; FirstTime/LastTime
	// bracket the occurrences in virtual time.
	Count     int
	FirstTime time.Duration
	LastTime  time.Duration
}

// GetMeta implements Object.
func (e *Event) GetMeta() *ObjectMeta { return &e.ObjectMeta }

// Kind implements Object.
func (e *Event) Kind() string { return KindEvent }

// DeepCopyObject implements Object.
func (e *Event) DeepCopyObject() Object {
	out := *e
	out.ObjectMeta = e.CloneMeta()
	return &out
}

// --- ReplicationController ---

// ReplicationController ensures Replicas copies of Template exist. It is the
// higher-level controller used to demonstrate that KubeShare's sharePods
// compose with ordinary Kubernetes controllers (§4.6).
type ReplicationController struct {
	ObjectMeta
	Replicas int
	Selector map[string]string
	Template PodSpec
	// TemplateLabels are stamped onto created pods (and matched by Selector).
	TemplateLabels map[string]string
	// ReadyReplicas is maintained by the controller.
	ReadyReplicas int
}

// GetMeta implements Object.
func (rc *ReplicationController) GetMeta() *ObjectMeta { return &rc.ObjectMeta }

// Kind implements Object.
func (rc *ReplicationController) Kind() string { return "ReplicationController" }

// DeepCopyObject implements Object.
func (rc *ReplicationController) DeepCopyObject() Object {
	out := *rc
	out.ObjectMeta = rc.CloneMeta()
	out.Selector = cloneMap(rc.Selector)
	out.TemplateLabels = cloneMap(rc.TemplateLabels)
	out.Template = rc.Template.Clone()
	return &out
}

// MatchesLabels reports whether labels satisfy the controller's selector.
func (rc *ReplicationController) MatchesLabels(labels map[string]string) bool {
	if len(rc.Selector) == 0 {
		return false
	}
	for k, v := range rc.Selector {
		if labels[k] != v {
			return false
		}
	}
	return true
}

// Validate performs basic admission checks shared by pod-carrying objects.
func ValidatePodSpec(s PodSpec) error {
	if len(s.Containers) == 0 {
		return fmt.Errorf("api: pod spec has no containers")
	}
	seen := map[string]bool{}
	for _, c := range s.Containers {
		if c.Name == "" {
			return fmt.Errorf("api: container with empty name")
		}
		if seen[c.Name] {
			return fmt.Errorf("api: duplicate container name %q", c.Name)
		}
		seen[c.Name] = true
		if c.Image == "" {
			return fmt.Errorf("api: container %q has no image", c.Name)
		}
		for k, v := range c.Requests {
			if v < 0 {
				return fmt.Errorf("api: container %q requests negative %s", c.Name, k)
			}
		}
	}
	return nil
}

package api

import (
	"testing"
	"testing/quick"
)

func TestResourceListAddSubFits(t *testing.T) {
	r := ResourceList{ResourceCPU: 1000, ResourceGPU: 2}
	r.Add(ResourceList{ResourceCPU: 500, ResourceMemory: 100})
	if r[ResourceCPU] != 1500 || r[ResourceMemory] != 100 {
		t.Fatalf("after add: %v", r)
	}
	r.Sub(ResourceList{ResourceCPU: 1500})
	if r[ResourceCPU] != 0 {
		t.Fatalf("after sub: %v", r)
	}
	if !r.Fits(ResourceList{ResourceGPU: 2}) {
		t.Fatal("2 GPUs should fit")
	}
	if r.Fits(ResourceList{ResourceGPU: 3}) {
		t.Fatal("3 GPUs must not fit")
	}
	if r.Fits(ResourceList{"custom/dev": 1}) {
		t.Fatal("unknown resource must not fit")
	}
}

func TestResourceListCloneIsDeep(t *testing.T) {
	r := ResourceList{ResourceCPU: 1}
	c := r.Clone()
	c[ResourceCPU] = 99
	if r[ResourceCPU] != 1 {
		t.Fatal("clone aliases original")
	}
	if ResourceList(nil).Clone() != nil {
		t.Fatal("nil clone must be nil")
	}
}

func TestPodDeepCopyIsDeep(t *testing.T) {
	pod := &Pod{
		ObjectMeta: ObjectMeta{Name: "p", Labels: map[string]string{"a": "1"}},
		Spec: PodSpec{
			NodeSelector: map[string]string{"zone": "x"},
			Containers: []Container{{
				Name: "c", Image: "img",
				Env:      map[string]string{"K": "V"},
				Requests: ResourceList{ResourceCPU: 100},
			}},
		},
	}
	cp := pod.DeepCopyObject().(*Pod)
	cp.Labels["a"] = "2"
	cp.Spec.Containers[0].Env["K"] = "X"
	cp.Spec.Containers[0].Requests[ResourceCPU] = 999
	cp.Spec.NodeSelector["zone"] = "y"
	if pod.Labels["a"] != "1" || pod.Spec.Containers[0].Env["K"] != "V" ||
		pod.Spec.Containers[0].Requests[ResourceCPU] != 100 || pod.Spec.NodeSelector["zone"] != "x" {
		t.Fatal("DeepCopyObject shares state with original")
	}
}

func TestPodRequestsSumsContainers(t *testing.T) {
	spec := PodSpec{Containers: []Container{
		{Name: "a", Image: "i", Requests: ResourceList{ResourceCPU: 100, ResourceGPU: 1}},
		{Name: "b", Image: "i", Requests: ResourceList{ResourceCPU: 200}},
	}}
	total := spec.Requests()
	if total[ResourceCPU] != 300 || total[ResourceGPU] != 1 {
		t.Fatalf("requests = %v", total)
	}
}

func TestPodTerminated(t *testing.T) {
	p := &Pod{}
	for phase, want := range map[PodPhase]bool{
		PodPending: false, PodRunning: false, PodSucceeded: true, PodFailed: true,
	} {
		p.Status.Phase = phase
		if p.Terminated() != want {
			t.Fatalf("Terminated() for %s = %v", phase, p.Terminated())
		}
	}
}

func TestNodeMatchesSelector(t *testing.T) {
	n := &Node{ObjectMeta: ObjectMeta{Labels: map[string]string{"gpu": "v100", "zone": "a"}}}
	if !n.MatchesSelector(nil) || !n.MatchesSelector(map[string]string{"gpu": "v100"}) {
		t.Fatal("selector should match")
	}
	if n.MatchesSelector(map[string]string{"gpu": "a100"}) {
		t.Fatal("selector should not match")
	}
}

func TestValidatePodSpec(t *testing.T) {
	good := PodSpec{Containers: []Container{{Name: "c", Image: "i"}}}
	if err := ValidatePodSpec(good); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []PodSpec{
		{},
		{Containers: []Container{{Name: "", Image: "i"}}},
		{Containers: []Container{{Name: "c", Image: ""}}},
		{Containers: []Container{{Name: "c", Image: "i"}, {Name: "c", Image: "i"}}},
		{Containers: []Container{{Name: "c", Image: "i", Requests: ResourceList{ResourceCPU: -1}}}},
	}
	for i, spec := range cases {
		if err := ValidatePodSpec(spec); err == nil {
			t.Fatalf("case %d: invalid spec accepted", i)
		}
	}
}

func TestRCMatchesLabels(t *testing.T) {
	rc := &ReplicationController{Selector: map[string]string{"app": "x"}}
	if !rc.MatchesLabels(map[string]string{"app": "x", "extra": "y"}) {
		t.Fatal("should match")
	}
	if rc.MatchesLabels(map[string]string{"app": "y"}) {
		t.Fatal("should not match")
	}
	empty := &ReplicationController{}
	if empty.MatchesLabels(map[string]string{"app": "x"}) {
		t.Fatal("empty selector must match nothing")
	}
}

func TestKeyFormat(t *testing.T) {
	pod := &Pod{ObjectMeta: ObjectMeta{Name: "p1"}}
	if Key(pod) != "Pod/p1" || KeyOf("Pod", "p1") != "Pod/p1" {
		t.Fatalf("key = %q", Key(pod))
	}
}

// Property: Fits(need) implies Fits still holds after Add(need) then
// Sub(need) (add/sub are exact inverses).
func TestPropertyAddSubInverse(t *testing.T) {
	f := func(a, b uint16) bool {
		r := ResourceList{ResourceCPU: int64(a)}
		need := ResourceList{ResourceCPU: int64(b)}
		before := r[ResourceCPU]
		r.Add(need)
		r.Sub(need)
		return r[ResourceCPU] == before
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Package apiserver provides the kube-apiserver analogue: typed CRUD and
// watch access to the object store, with per-kind admission validation and
// optimistic-concurrency semantics. All cluster components — and KubeShare's
// custom controllers — interact exclusively through it.
//
// The client API distinguishes spec writes (Update/Mutate) from status
// writes (UpdateStatus/MutateStatus), mirroring the status subresource:
// a controller updating an object's status can never clobber a concurrent
// spec write and vice versa. Lists and watches can be narrowed server-side
// by label selector (ListSelector, WatchFiltered), answered from the
// store's indexes.
package apiserver

import (
	"errors"
	"fmt"

	"kubeshare/internal/kube/api"
	"kubeshare/internal/kube/labels"
	"kubeshare/internal/kube/store"
	"kubeshare/internal/obs"
	"kubeshare/internal/sim"
)

// WatchOptions narrows a watch subscription server-side: by exact object
// name, by label selector, and with or without replay of the current state.
type WatchOptions struct {
	// Name restricts delivery to the object with this exact name.
	Name string
	// Selector restricts delivery to objects whose labels match.
	Selector labels.Selector
	// Replay delivers the currently matching objects first as Added events
	// (list+watch semantics).
	Replay bool
}

// Server is the cluster's API frontend.
type Server struct {
	env        *sim.Env
	store      *store.Store
	validators map[string][]func(api.Object) error
	reflectors []*Reflector

	// Telemetry: the cluster-wide obs runtime plus cached request
	// counters. rt may be nil (observability off); the handles no-op.
	rt         *obs.Runtime
	reqWrites  *obs.Counter // create/update/delete mutations admitted
	reqReads   *obs.Counter // get/list/count/scan calls served
	reqWatches *obs.Counter // watch subscriptions opened (incl. resumes)
	refResumes *obs.Counter // reflector resume-from-revision reconnects
	refRelists *obs.Counter // reflector relist-on-gap reconnects
	relistVec  *obs.CounterVec // relists partitioned by consumer component
	restarts   *obs.Counter    // crash/restore cycles survived
}

// New returns a server over a fresh store with its own enabled telemetry
// runtime (components sharing the server share the runtime via Obs).
func New(env *sim.Env) *Server { return NewWithObs(env, obs.New(env)) }

// NewWithObs returns a server instrumented against rt. A nil rt disables
// observability: every telemetry call site degrades to a no-op, which is
// the obs-off arm of the instrumentation-overhead benchmark. A non-nil
// rt gets the server installed as its event sink, persisting every
// recorded event as an api.Event object with list/watch semantics.
func NewWithObs(env *sim.Env, rt *obs.Runtime) *Server {
	s := &Server{
		env:        env,
		store:      store.New(env),
		validators: make(map[string][]func(api.Object) error),
		rt:         rt,
		reqWrites:  rt.Counter("kubeshare_apiserver_write_requests_total"),
		reqReads:   rt.Counter("kubeshare_apiserver_read_requests_total"),
		reqWatches: rt.Counter("kubeshare_apiserver_watches_total"),
		refResumes: rt.Counter("kubeshare_apiserver_reflector_resumes_total"),
		refRelists: rt.Counter("kubeshare_apiserver_reflector_relists_total"),
		relistVec:  rt.CounterVec("kubeshare_reflector_relist_total", "consumer"),
		restarts:   rt.Counter("kubeshare_apiserver_restarts_total"),
	}
	if rt != nil {
		rt.SetEventSink(newEventSink(s))
	}
	return s
}

// Env returns the simulation environment.
func (s *Server) Env() *sim.Env { return s.env }

// Obs returns the telemetry runtime the server was built with (nil when
// observability is off). Components constructed around the server pull
// their instrumentation handles from here.
func (s *Server) Obs() *obs.Runtime { return s.rt }

// RegisterValidator adds an admission validator for a kind, run on Create
// and Update. Registering custom-resource validators is how KubeShare
// installs its SharePod CRD checks.
func (s *Server) RegisterValidator(kind string, fn func(api.Object) error) {
	s.validators[kind] = append(s.validators[kind], fn)
}

func (s *Server) validate(obj api.Object) error {
	if obj.GetMeta().Name == "" {
		return fmt.Errorf("apiserver: %s with empty name", obj.Kind())
	}
	for _, fn := range s.validators[obj.Kind()] {
		if err := fn(obj); err != nil {
			return fmt.Errorf("apiserver: admission of %s: %w", api.Key(obj), err)
		}
	}
	return nil
}

// Create validates and stores obj. Every admitted create (other than
// Events themselves) roots or extends the object's causal trace chain,
// so a sharePod's life is traceable from the submit instant.
func (s *Server) Create(obj api.Object) (api.Object, error) {
	if err := s.validate(obj); err != nil {
		return nil, err
	}
	out, err := s.store.Create(obj)
	if err == nil {
		s.reqWrites.Inc()
		if out.Kind() != api.KindEvent {
			s.rt.Tracer().Mark("apiserver", "create", api.Key(out), "")
		}
	}
	return out, err
}

// Update validates and replaces obj (ErrConflict on stale version). For
// kinds with a status subresource the stored status is preserved — use
// UpdateStatus for status writes.
func (s *Server) Update(obj api.Object) (api.Object, error) {
	if err := s.validate(obj); err != nil {
		return nil, err
	}
	s.reqWrites.Inc()
	return s.store.Update(obj)
}

// UpdateStatus validates and replaces only obj's status, preserving the
// stored spec and metadata (the status subresource write).
func (s *Server) UpdateStatus(obj api.Object) (api.Object, error) {
	if err := s.validate(obj); err != nil {
		return nil, err
	}
	s.reqWrites.Inc()
	return s.store.UpdateStatus(obj)
}

// Get fetches one object.
func (s *Server) Get(kind, name string) (api.Object, error) {
	s.reqReads.Inc()
	return s.store.Get(kind, name)
}

// Delete removes one object.
func (s *Server) Delete(kind, name string) error {
	s.reqWrites.Inc()
	return s.store.Delete(kind, name)
}

// List returns all objects of a kind.
func (s *Server) List(kind string) []api.Object {
	s.reqReads.Inc()
	return s.store.List(kind + "/")
}

// ListSelector returns the kind's objects whose labels match sel, answered
// from the store's label index.
func (s *Server) ListSelector(kind string, sel labels.Selector) []api.Object {
	s.reqReads.Inc()
	return s.store.ListSelector(kind, sel)
}

// Count returns the number of objects of a kind without listing them.
func (s *Server) Count(kind string) int {
	s.reqReads.Inc()
	return s.store.Count(kind)
}

// Scan iterates a kind's objects in name order without copying; see
// store.Scan for the read-only contract fn must honor.
func (s *Server) Scan(kind string, fn func(api.Object) bool) {
	s.reqReads.Inc()
	s.store.Scan(kind, fn)
}

// Watch subscribes to a kind (list+watch when replay is true).
func (s *Server) Watch(kind string, replay bool) *sim.Queue[store.Event] {
	s.reqWatches.Inc()
	return s.store.Watch(kind+"/", replay)
}

// WatchFiltered subscribes to a kind with server-side filtering by exact
// name and/or label selector; events the filter rejects are never
// delivered to the subscriber.
func (s *Server) WatchFiltered(kind string, opts WatchOptions) *sim.Queue[store.Event] {
	s.reqWatches.Inc()
	return s.store.WatchFiltered(kind+"/",
		store.WatchOptions{Name: opts.Name, Selector: opts.Selector}, opts.Replay)
}

// WatchResume re-subscribes to a kind after a watch drop, replaying every
// matching event that committed after fromRev from the server's bounded
// event history. Returns ErrGone (see IsGone) when fromRev has been
// compacted — the caller must relist and watch fresh.
func (s *Server) WatchResume(kind string, opts WatchOptions, fromRev int64) (*sim.Queue[store.Event], error) {
	s.reqWatches.Inc()
	return s.store.WatchFilteredFrom(kind+"/",
		store.WatchOptions{Name: opts.Name, Selector: opts.Selector}, fromRev)
}

// Revision returns the store-wide revision of the last mutation — the
// resume point a fresh watch should record.
func (s *Server) Revision() int64 { return s.store.Revision() }

// SetWatchHistoryCap bounds the resumable-watch event history (tests use a
// small cap to force the relist-on-gap path).
func (s *Server) SetWatchHistoryCap(n int) { s.store.SetHistoryCap(n) }

// StopWatch cancels a watch.
func (s *Server) StopWatch(q *sim.Queue[store.Event]) { s.store.StopWatch(q) }

// IsNotFound reports whether err is a missing-object error.
func IsNotFound(err error) bool { return errors.Is(err, store.ErrNotFound) }

// IsConflict reports whether err is an optimistic-concurrency conflict.
func IsConflict(err error) bool { return errors.Is(err, store.ErrConflict) }

// IsExists reports whether err is an already-exists error.
func IsExists(err error) bool { return errors.Is(err, store.ErrExists) }

// IsGone reports whether err marks a compacted (unresumable) watch revision.
func IsGone(err error) bool { return errors.Is(err, store.ErrGone) }

// Client is a typed view of the server for one object kind.
type Client[T api.Object] struct {
	s    *Server
	kind string
}

// NewClient returns a typed client. kind must match T's Kind().
func NewClient[T api.Object](s *Server, kind string) Client[T] {
	return Client[T]{s: s, kind: kind}
}

// Create stores obj and returns the stored copy.
func (c Client[T]) Create(obj T) (T, error) {
	var zero T
	out, err := c.s.Create(obj)
	if err != nil {
		return zero, err
	}
	return out.(T), nil
}

// Get fetches by name.
func (c Client[T]) Get(name string) (T, error) {
	var zero T
	out, err := c.s.Get(c.kind, name)
	if err != nil {
		return zero, err
	}
	return out.(T), nil
}

// Update replaces the stored object's spec and metadata. For kinds with a
// status subresource the stored status is preserved; use UpdateStatus to
// write status.
func (c Client[T]) Update(obj T) (T, error) {
	var zero T
	out, err := c.s.Update(obj)
	if err != nil {
		return zero, err
	}
	return out.(T), nil
}

// UpdateStatus replaces only the stored object's status (the status
// subresource write): the stored spec and metadata are preserved, so a
// controller reporting status can never clobber a concurrent spec write.
func (c Client[T]) UpdateStatus(obj T) (T, error) {
	var zero T
	out, err := c.s.UpdateStatus(obj)
	if err != nil {
		return zero, err
	}
	return out.(T), nil
}

// Delete removes by name.
func (c Client[T]) Delete(name string) error { return c.s.Delete(c.kind, name) }

// List returns all objects of the kind, sorted by name.
func (c Client[T]) List() []T {
	return toTyped[T](c.s.List(c.kind))
}

// ListSelector returns the kind's objects whose labels match sel, sorted by
// name. The query is answered from the store's label index in O(matching).
func (c Client[T]) ListSelector(sel labels.Selector) []T {
	return toTyped[T](c.s.ListSelector(c.kind, sel))
}

// Count returns the number of stored objects of the kind.
func (c Client[T]) Count() int { return c.s.Count(c.kind) }

// Scan calls fn on each stored object in name order without deep-copying,
// stopping early when fn returns false. The objects are the store's live
// instances: fn must treat them as strictly read-only and must not retain
// them. Use for aggregate reads (counters, samplers) where List's per-object
// clone would dominate; anything that mutates or keeps the object must use
// List/Get.
func (c Client[T]) Scan(fn func(T) bool) {
	c.s.Scan(c.kind, func(o api.Object) bool { return fn(o.(T)) })
}

func toTyped[T api.Object](objs []api.Object) []T {
	out := make([]T, len(objs))
	for i, o := range objs {
		out[i] = o.(T)
	}
	return out
}

// Watch subscribes to the kind.
func (c Client[T]) Watch(replay bool) *sim.Queue[store.Event] {
	return c.s.Watch(c.kind, replay)
}

// WatchFiltered subscribes to the kind with server-side name/selector
// filtering.
func (c Client[T]) WatchFiltered(opts WatchOptions) *sim.Queue[store.Event] {
	return c.s.WatchFiltered(c.kind, opts)
}

// Mutate runs a read-modify-write loop against the spec: it fetches name,
// applies mutate and updates, retrying on version conflicts. mutate must be
// idempotent. Status changes made by mutate are discarded for kinds with a
// status subresource — use MutateStatus for those.
func (c Client[T]) Mutate(name string, mutate func(T) error) (T, error) {
	return c.mutate(name, mutate, c.Update)
}

// MutateStatus is Mutate against the status subresource: only status
// changes made by mutate are persisted.
func (c Client[T]) MutateStatus(name string, mutate func(T) error) (T, error) {
	return c.mutate(name, mutate, c.UpdateStatus)
}

func (c Client[T]) mutate(name string, mutate func(T) error, write func(T) (T, error)) (T, error) {
	var zero T
	for {
		cur, err := c.Get(name)
		if err != nil {
			return zero, err
		}
		if err := mutate(cur); err != nil {
			return zero, err
		}
		out, err := write(cur)
		if err == nil {
			return out, nil
		}
		if !IsConflict(err) {
			return zero, err
		}
	}
}

// Pods returns the typed Pod client.
func Pods(s *Server) Client[*api.Pod] { return NewClient[*api.Pod](s, "Pod") }

// Nodes returns the typed Node client.
func Nodes(s *Server) Client[*api.Node] { return NewClient[*api.Node](s, "Node") }

// ReplicationControllers returns the typed RC client.
func ReplicationControllers(s *Server) Client[*api.ReplicationController] {
	return NewClient[*api.ReplicationController](s, "ReplicationController")
}

// Package apiserver provides the kube-apiserver analogue: typed CRUD and
// watch access to the object store, with per-kind admission validation and
// optimistic-concurrency semantics. All cluster components — and KubeShare's
// custom controllers — interact exclusively through it.
package apiserver

import (
	"errors"
	"fmt"

	"kubeshare/internal/kube/api"
	"kubeshare/internal/kube/store"
	"kubeshare/internal/sim"
)

// Server is the cluster's API frontend.
type Server struct {
	env        *sim.Env
	store      *store.Store
	validators map[string][]func(api.Object) error
}

// New returns a server over a fresh store.
func New(env *sim.Env) *Server {
	return &Server{
		env:        env,
		store:      store.New(env),
		validators: make(map[string][]func(api.Object) error),
	}
}

// Env returns the simulation environment.
func (s *Server) Env() *sim.Env { return s.env }

// RegisterValidator adds an admission validator for a kind, run on Create
// and Update. Registering custom-resource validators is how KubeShare
// installs its SharePod CRD checks.
func (s *Server) RegisterValidator(kind string, fn func(api.Object) error) {
	s.validators[kind] = append(s.validators[kind], fn)
}

func (s *Server) validate(obj api.Object) error {
	if obj.GetMeta().Name == "" {
		return fmt.Errorf("apiserver: %s with empty name", obj.Kind())
	}
	for _, fn := range s.validators[obj.Kind()] {
		if err := fn(obj); err != nil {
			return fmt.Errorf("apiserver: admission of %s: %w", api.Key(obj), err)
		}
	}
	return nil
}

// Create validates and stores obj.
func (s *Server) Create(obj api.Object) (api.Object, error) {
	if err := s.validate(obj); err != nil {
		return nil, err
	}
	return s.store.Create(obj)
}

// Update validates and replaces obj (ErrConflict on stale version).
func (s *Server) Update(obj api.Object) (api.Object, error) {
	if err := s.validate(obj); err != nil {
		return nil, err
	}
	return s.store.Update(obj)
}

// Get fetches one object.
func (s *Server) Get(kind, name string) (api.Object, error) { return s.store.Get(kind, name) }

// Delete removes one object.
func (s *Server) Delete(kind, name string) error { return s.store.Delete(kind, name) }

// List returns all objects of a kind.
func (s *Server) List(kind string) []api.Object { return s.store.List(kind + "/") }

// Watch subscribes to a kind (list+watch when replay is true).
func (s *Server) Watch(kind string, replay bool) *sim.Queue[store.Event] {
	return s.store.Watch(kind+"/", replay)
}

// StopWatch cancels a watch.
func (s *Server) StopWatch(q *sim.Queue[store.Event]) { s.store.StopWatch(q) }

// IsNotFound reports whether err is a missing-object error.
func IsNotFound(err error) bool { return errors.Is(err, store.ErrNotFound) }

// IsConflict reports whether err is an optimistic-concurrency conflict.
func IsConflict(err error) bool { return errors.Is(err, store.ErrConflict) }

// IsExists reports whether err is an already-exists error.
func IsExists(err error) bool { return errors.Is(err, store.ErrExists) }

// Client is a typed view of the server for one object kind.
type Client[T api.Object] struct {
	s    *Server
	kind string
}

// NewClient returns a typed client. kind must match T's Kind().
func NewClient[T api.Object](s *Server, kind string) Client[T] {
	return Client[T]{s: s, kind: kind}
}

// Create stores obj and returns the stored copy.
func (c Client[T]) Create(obj T) (T, error) {
	var zero T
	out, err := c.s.Create(obj)
	if err != nil {
		return zero, err
	}
	return out.(T), nil
}

// Get fetches by name.
func (c Client[T]) Get(name string) (T, error) {
	var zero T
	out, err := c.s.Get(c.kind, name)
	if err != nil {
		return zero, err
	}
	return out.(T), nil
}

// Update replaces the stored object.
func (c Client[T]) Update(obj T) (T, error) {
	var zero T
	out, err := c.s.Update(obj)
	if err != nil {
		return zero, err
	}
	return out.(T), nil
}

// Delete removes by name.
func (c Client[T]) Delete(name string) error { return c.s.Delete(c.kind, name) }

// List returns all objects of the kind, sorted by name.
func (c Client[T]) List() []T {
	objs := c.s.List(c.kind)
	out := make([]T, len(objs))
	for i, o := range objs {
		out[i] = o.(T)
	}
	return out
}

// Watch subscribes to the kind.
func (c Client[T]) Watch(replay bool) *sim.Queue[store.Event] {
	return c.s.Watch(c.kind, replay)
}

// Mutate runs a read-modify-write loop: it fetches name, applies mutate and
// updates, retrying on version conflicts. mutate must be idempotent.
func (c Client[T]) Mutate(name string, mutate func(T) error) (T, error) {
	var zero T
	for {
		cur, err := c.Get(name)
		if err != nil {
			return zero, err
		}
		if err := mutate(cur); err != nil {
			return zero, err
		}
		out, err := c.Update(cur)
		if err == nil {
			return out, nil
		}
		if !IsConflict(err) {
			return zero, err
		}
	}
}

// Pods returns the typed Pod client.
func Pods(s *Server) Client[*api.Pod] { return NewClient[*api.Pod](s, "Pod") }

// Nodes returns the typed Node client.
func Nodes(s *Server) Client[*api.Node] { return NewClient[*api.Node](s, "Node") }

// ReplicationControllers returns the typed RC client.
func ReplicationControllers(s *Server) Client[*api.ReplicationController] {
	return NewClient[*api.ReplicationController](s, "ReplicationController")
}

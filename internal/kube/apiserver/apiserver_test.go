package apiserver

import (
	"errors"
	"fmt"
	"testing"

	"kubeshare/internal/kube/api"
	"kubeshare/internal/kube/labels"
	"kubeshare/internal/kube/store"
	"kubeshare/internal/sim"
)

func newServer() (*sim.Env, *Server) {
	env := sim.NewEnv()
	return env, New(env)
}

func mkPod(name string) *api.Pod {
	return &api.Pod{
		ObjectMeta: api.ObjectMeta{Name: name},
		Spec:       api.PodSpec{Containers: []api.Container{{Name: "c", Image: "i"}}},
	}
}

func TestTypedClientRoundTrip(t *testing.T) {
	_, s := newServer()
	pods := Pods(s)
	created, err := pods.Create(mkPod("a"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := pods.Get("a")
	if err != nil {
		t.Fatal(err)
	}
	if got.UID != created.UID {
		t.Fatal("typed get mismatch")
	}
	if err := pods.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := pods.Get("a"); !IsNotFound(err) {
		t.Fatalf("err = %v, want not found", err)
	}
}

func TestEmptyNameRejected(t *testing.T) {
	_, s := newServer()
	if _, err := Pods(s).Create(mkPod("")); err == nil {
		t.Fatal("empty name accepted")
	}
}

func TestValidatorRunsOnCreateAndUpdate(t *testing.T) {
	_, s := newServer()
	boom := errors.New("rejected")
	s.RegisterValidator("Pod", func(o api.Object) error {
		if o.(*api.Pod).Status.Message == "bad" {
			return boom
		}
		return nil
	})
	pods := Pods(s)
	bad := mkPod("a")
	bad.Status.Message = "bad"
	if _, err := pods.Create(bad); !errors.Is(err, boom) {
		t.Fatalf("create err = %v", err)
	}
	good, err := pods.Create(mkPod("a"))
	if err != nil {
		t.Fatal(err)
	}
	good.Status.Message = "bad"
	if _, err := pods.Update(good); !errors.Is(err, boom) {
		t.Fatalf("update err = %v", err)
	}
}

func TestValidatorScopedToKind(t *testing.T) {
	_, s := newServer()
	s.RegisterValidator("Node", func(api.Object) error { return errors.New("no nodes") })
	if _, err := Pods(s).Create(mkPod("a")); err != nil {
		t.Fatalf("pod affected by node validator: %v", err)
	}
}

func TestMutateRetriesToSuccess(t *testing.T) {
	_, s := newServer()
	pods := Pods(s)
	pods.Create(mkPod("a"))
	out, err := pods.Mutate("a", func(p *api.Pod) error {
		p.Spec.NodeName = "n1"
		return nil
	})
	if err != nil || out.Spec.NodeName != "n1" {
		t.Fatalf("out=%+v err=%v", out.Spec, err)
	}
}

func TestMutateStatusWritesStatus(t *testing.T) {
	_, s := newServer()
	pods := Pods(s)
	pods.Create(mkPod("a"))
	out, err := pods.MutateStatus("a", func(p *api.Pod) error {
		p.Status.Phase = api.PodRunning
		return nil
	})
	if err != nil || out.Status.Phase != api.PodRunning {
		t.Fatalf("out=%+v err=%v", out.Status, err)
	}
}

func TestStatusSubresourceIsolation(t *testing.T) {
	_, s := newServer()
	pods := Pods(s)
	pods.Create(mkPod("a"))

	// A spec write carrying a (stale or garbage) status must not persist it.
	if _, err := pods.Mutate("a", func(p *api.Pod) error {
		p.Spec.NodeName = "n1"
		p.Status.Phase = api.PodFailed // discarded by subresource semantics
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	got, _ := pods.Get("a")
	if got.Status.Phase == api.PodFailed {
		t.Fatal("spec write persisted a status field")
	}

	// A status write must not clobber spec or labels.
	if _, err := pods.MutateStatus("a", func(p *api.Pod) error {
		p.Spec.NodeName = "bogus" // discarded
		p.Status.Phase = api.PodRunning
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	got, _ = pods.Get("a")
	if got.Spec.NodeName != "n1" || got.Status.Phase != api.PodRunning {
		t.Fatalf("spec=%q phase=%q, want n1/Running", got.Spec.NodeName, got.Status.Phase)
	}
}

func TestListSelectorThroughClient(t *testing.T) {
	_, s := newServer()
	pods := Pods(s)
	for i, lbls := range []map[string]string{
		{"app": "web"}, {"app": "db"}, {"app": "web", "tier": "front"},
	} {
		p := mkPod(string(rune('a' + i)))
		p.Labels = lbls
		pods.Create(p)
	}
	got := pods.ListSelector(labels.SelectorFromMap(map[string]string{"app": "web"}))
	if len(got) != 2 || got[0].Name != "a" || got[1].Name != "c" {
		t.Fatalf("ListSelector = %v", got)
	}
	if n := len(pods.ListSelector(labels.HasKey("tier"))); n != 1 {
		t.Fatalf("HasKey(tier) matched %d", n)
	}
}

func TestWatchFilteredByNameDoesNotWakeOnOthers(t *testing.T) {
	env, s := newServer()
	pods := Pods(s)
	pods.Create(mkPod("target"))
	q := pods.WatchFiltered(WatchOptions{Name: "target", Replay: true})
	env.Go("churn", func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			pods.Create(mkPod(fmt.Sprintf("noise-%d", i)))
		}
		pods.MutateStatus("target", func(pod *api.Pod) error {
			pod.Status.Phase = api.PodRunning
			return nil
		})
	})
	env.Run()
	// Replay of target + its one status update; none of the 20 noise events.
	var evs []store.Event
	for {
		ev, ok := q.TryGet()
		if !ok {
			break
		}
		evs = append(evs, ev)
	}
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2 (replay + update)", len(evs))
	}
	for _, ev := range evs {
		if ev.Object.GetMeta().Name != "target" {
			t.Fatalf("woke on %s", ev.Object.GetMeta().Name)
		}
	}
}

func TestWatchFilteredBySelector(t *testing.T) {
	env, s := newServer()
	pods := Pods(s)
	q := pods.WatchFiltered(WatchOptions{Selector: labels.HasKey("managed"), Replay: false})
	env.Go("churn", func(p *sim.Proc) {
		plain := mkPod("plain")
		pods.Create(plain)
		tagged := mkPod("tagged")
		tagged.Labels = map[string]string{"managed": "yes"}
		pods.Create(tagged)
	})
	env.Run()
	ev, ok := q.TryGet()
	if !ok || ev.Object.GetMeta().Name != "tagged" {
		t.Fatalf("ev=%v ok=%v", ev, ok)
	}
	if _, ok := q.TryGet(); ok {
		t.Fatal("unfiltered event delivered")
	}
}

func TestMutatePropagatesCallbackError(t *testing.T) {
	_, s := newServer()
	pods := Pods(s)
	pods.Create(mkPod("a"))
	boom := errors.New("boom")
	if _, err := pods.Mutate("a", func(*api.Pod) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestListTyped(t *testing.T) {
	_, s := newServer()
	pods := Pods(s)
	pods.Create(mkPod("b"))
	pods.Create(mkPod("a"))
	Nodes(s).Create(&api.Node{ObjectMeta: api.ObjectMeta{Name: "n"}})
	list := pods.List()
	if len(list) != 2 || list[0].Name != "a" {
		t.Fatalf("list = %v", list)
	}
}

func TestWatchThroughClient(t *testing.T) {
	env, s := newServer()
	pods := Pods(s)
	q := pods.Watch(false)
	var names []string
	env.Go("w", func(p *sim.Proc) {
		ev, _ := q.Get(p)
		names = append(names, ev.Object.GetMeta().Name)
	})
	env.Go("m", func(p *sim.Proc) { pods.Create(mkPod("x")) })
	env.Run()
	if len(names) != 1 || names[0] != "x" {
		t.Fatalf("names = %v", names)
	}
}

func TestErrorPredicates(t *testing.T) {
	_, s := newServer()
	pods := Pods(s)
	_, err := pods.Get("missing")
	if !IsNotFound(err) || IsConflict(err) || IsExists(err) {
		t.Fatalf("predicate mismatch for %v", err)
	}
	pods.Create(mkPod("a"))
	_, err = pods.Create(mkPod("a"))
	if !IsExists(err) {
		t.Fatalf("want exists, got %v", err)
	}
}

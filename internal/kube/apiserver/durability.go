package apiserver

import (
	"time"

	"kubeshare/internal/kube/store"
	"kubeshare/internal/obs"
	"kubeshare/internal/sim"
)

// DefaultCheckpointInterval is how often the periodic checkpointer
// serializes the store when EnableDurability is not told otherwise.
const DefaultCheckpointInterval = 30 * time.Second

// DurabilityConfig configures the apiserver's durable-state layer.
type DurabilityConfig struct {
	// CheckpointInterval is the periodic checkpointer's cadence. Zero takes
	// DefaultCheckpointInterval; negative disables periodic checkpoints,
	// leaving only the enable-time checkpoint plus the ever-growing WAL
	// (the degenerate point of the fig17 sweep).
	CheckpointInterval time.Duration
}

// EnableDurability attaches a write-ahead log and checkpoint medium to the
// store (see store/wal.go), takes an initial checkpoint of the current
// state, and starts the periodic checkpointer daemon. After this, Restart
// can crash the server and warm-recover it at any instant. Idempotent.
func (s *Server) EnableDurability(cfg DurabilityConfig) {
	if s.store.DurabilityEnabled() {
		return
	}
	walRecords := s.rt.Counter("kubeshare_store_wal_records_total")
	checkpointNS := s.rt.Counter("kubeshare_store_checkpoint_ns")
	s.store.EnableDurability(
		func(records int) { walRecords.Add(int64(records)) },
		func(bytes int) { checkpointNS.Add(int64(bytes) * store.DurableIONSPerByte) },
	)
	interval := cfg.CheckpointInterval
	if interval == 0 {
		interval = DefaultCheckpointInterval
	}
	if interval > 0 {
		s.env.GoDaemon("apiserver-checkpointer", func(p *sim.Proc) {
			for {
				p.Sleep(interval)
				s.store.Checkpoint()
			}
		})
	}
}

// Checkpoint forces a checkpoint now (tests and the restart chaos use it to
// pin the sweep's checkpoint freshness); returns the image size in bytes.
func (s *Server) Checkpoint() int { return s.store.Checkpoint() }

// Epoch counts the server's crash/restore cycles. Reflectors compare it
// across reconnects: a changed epoch forces a relist instead of a resume,
// because in-memory watch state (and possibly torn-tail-reverted
// mutations) did not survive the restart.
func (s *Server) Epoch() int64 { return s.store.Epoch() }

// TearWALTail damages the durable log's tail — the chaos hook simulating a
// crash mid-write. The next Restart must truncate the damage and recover.
func (s *Server) TearWALTail(n int) bool { return s.store.TearWALTail(n) }

// Durable exposes the medium's footprint (checkpoint bytes, WAL bytes,
// WAL records) for experiments sizing the recovery cost.
func (s *Server) Durable() (checkpointBytes, walBytes int, walRecords int64) {
	return s.store.DurableSizes()
}

// Restart simulates the apiserver process dying and recovering from its
// durable medium: every in-memory structure — objects, indexes, watch
// registrations, resumable history, the event sink's dedup index — is
// discarded and rebuilt by checkpoint load + WAL replay (torn tails
// truncated, never wedging). Watch queues close, so every reflector
// reconnects into the new epoch and relists; the event sink is recreated
// over the restored Events so deduplication and naming continue seamlessly.
// The restart is marked with first-class api.Events ("APIServerRestarted",
// plus "WALTornTail" when damage was cut), giving the restart a place in
// the deterministic event log. Requires EnableDurability.
func (s *Server) Restart() (store.RestoreStats, error) {
	st, err := s.store.Crash()
	if err != nil {
		return st, err
	}
	if s.rt != nil {
		s.rt.SetEventSink(newEventSink(s))
	}
	s.restarts.Inc()
	rec := s.rt.EventSource("apiserver")
	if st.TornTail {
		rec.Eventf("APIServer", "control-plane", obs.EventWarning, "WALTornTail",
			"corrupt log tail truncated during restore")
	}
	rec.Eventf("APIServer", "control-plane", obs.EventWarning, "APIServerRestarted",
		"epoch %d: restored rev %d (checkpoint rev %d + %d replayed records)",
		s.store.Epoch(), st.RestoredRev, st.CheckpointRev, st.Replayed)
	return st, nil
}

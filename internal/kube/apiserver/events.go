package apiserver

import (
	"fmt"

	"kubeshare/internal/kube/api"
	"kubeshare/internal/obs"
)

// Events returns the typed Event client. Events are ordinary stored
// objects: they can be listed, watched and reflected like any resource.
func Events(s *Server) Client[*api.Event] { return NewClient[*api.Event](s, api.KindEvent) }

// eventSink persists obs event records as api.Event objects. Repeats of
// the same event — same involved object, reason, source and type — are
// deduplicated Kubernetes-style into one object whose Count climbs and
// whose LastTime/Message track the latest occurrence, so a hot loop
// (say a throttled tenant) yields one object updated in place rather
// than unbounded store growth.
type eventSink struct {
	srv   *Server
	names map[string]string // dedup key -> stored object name
	seq   int
}

func newEventSink(s *Server) *eventSink {
	k := &eventSink{srv: s, names: map[string]string{}}
	// A sink recreated over a store that already holds events (an apiserver
	// restart, or a chaos-recovered control plane) must keep deduplicating
	// into the objects already there and must not reissue their names.
	for _, e := range Events(s).List() {
		key := e.InvolvedKind + "/" + e.InvolvedName + "/" + e.Reason + "/" + e.Source + "/" + e.Type
		k.names[key] = e.Name
		var n int
		if _, err := fmt.Sscanf(e.Name, "evt-%d", &n); err == nil && n > k.seq {
			k.seq = n
		}
	}
	return k
}

// RecordEvent implements obs.Sink.
func (k *eventSink) RecordEvent(e obs.EventRecord) {
	key := e.Kind + "/" + e.Name + "/" + e.Reason + "/" + e.Source + "/" + e.Type
	evs := Events(k.srv)
	if name, ok := k.names[key]; ok {
		if _, err := evs.Mutate(name, func(cur *api.Event) error {
			cur.Count++
			cur.LastTime = e.Time
			cur.Message = e.Message
			return nil
		}); err == nil || !IsNotFound(err) {
			return
		}
		// The stored object vanished (e.g. a test cleared the store);
		// fall through and recreate it.
		delete(k.names, key)
	}
	k.seq++
	name := fmt.Sprintf("evt-%05d", k.seq)
	_, err := evs.Create(&api.Event{
		ObjectMeta:   api.ObjectMeta{Name: name},
		InvolvedKind: e.Kind, InvolvedName: e.Name,
		Type: e.Type, Reason: e.Reason, Source: e.Source, Message: e.Message,
		Count: 1, FirstTime: e.Time, LastTime: e.Time,
	})
	if err == nil {
		k.names[key] = name
	}
}

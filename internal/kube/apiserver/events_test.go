package apiserver

import (
	"testing"
	"time"

	"kubeshare/internal/obs"
	"kubeshare/internal/sim"
)

// TestEventSinkDedup pins the Kubernetes-style dedup: repeats of the same
// (object, reason, source, type) collapse into one stored object whose
// Count climbs and LastTime/Message advance.
func TestEventSinkDedup(t *testing.T) {
	env := sim.NewEnv()
	s := New(env)
	rec := s.Obs().EventSource("kubelet/node-0")
	env.Go("emitter", func(p *sim.Proc) {
		rec.Eventf("Pod", "p1", obs.EventWarning, "FailedStart", "exit %d", 1)
		p.Sleep(time.Second)
		rec.Eventf("Pod", "p1", obs.EventWarning, "FailedStart", "exit %d", 2)
	})
	env.Run()
	evs := Events(s).List()
	if len(evs) != 1 {
		t.Fatalf("stored events = %d, want 1 deduped object", len(evs))
	}
	e := evs[0]
	if e.Count != 2 || e.FirstTime != 0 || e.LastTime != time.Second || e.Message != "exit 2" {
		t.Fatalf("deduped event = %+v", e)
	}
}

// TestEventSinkRestartRecovery replaces the sink with a freshly built one
// over the same store — a recorder restart. The new sink must rebuild its
// dedup index from the stored api.Events: a repeat of a pre-restart event
// updates the existing object in place, and a brand-new event gets a name
// that does not collide with the ones already issued.
func TestEventSinkRestartRecovery(t *testing.T) {
	env := sim.NewEnv()
	s := New(env)
	rec := s.Obs().EventSource("kubelet/node-0")
	env.Go("before", func(p *sim.Proc) {
		rec.Eventf("Pod", "p1", obs.EventWarning, "FailedStart", "exit 1")
		rec.Eventf("Pod", "p2", obs.EventNormal, "Started", "ok")
	})
	env.Run()
	if n := len(Events(s).List()); n != 2 {
		t.Fatalf("stored events before restart = %d", n)
	}

	// Restart the recorder: a new sink over the same (persisted) store.
	s.Obs().SetEventSink(newEventSink(s))

	env.Go("after", func(p *sim.Proc) {
		p.Sleep(time.Second)
		rec.Eventf("Pod", "p1", obs.EventWarning, "FailedStart", "exit 2") // pre-restart repeat
		rec.Eventf("Pod", "p3", obs.EventNormal, "Started", "ok")          // brand-new
	})
	env.Run()

	evs := Events(s).List()
	if len(evs) != 3 {
		t.Fatalf("stored events after restart = %d, want 3 (repeat deduped, new created)", len(evs))
	}
	byName := map[string]int{}
	names := map[string]bool{}
	for _, e := range evs {
		if names[e.Name] {
			t.Fatalf("duplicate event object name %q after restart", e.Name)
		}
		names[e.Name] = true
		byName[e.InvolvedName] = e.Count
	}
	if byName["p1"] != 2 {
		t.Fatalf("pre-restart event not deduped into existing object: counts %v", byName)
	}
	if byName["p3"] != 1 {
		t.Fatalf("post-restart event missing: counts %v", byName)
	}
}

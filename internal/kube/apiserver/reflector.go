package apiserver

import (
	"sort"

	"kubeshare/internal/kube/api"
	"kubeshare/internal/kube/store"
	"kubeshare/internal/obs"
	"kubeshare/internal/sim"
)

// Reflector is a watch subscription that survives stream drops. It wraps a
// filtered watch and tracks the last revision the consumer observed; when
// the underlying stream closes, the next Get transparently re-subscribes
// with WatchResume so the consumer misses nothing. When the resume point
// has been compacted out of the server's history (410 Gone), the reflector
// relists the filtered state and synthesizes the difference against what
// the consumer has already seen — Added for new objects, Modified for
// survivors, Deleted for vanished ones — so consumer caches built purely
// from events stay correct across arbitrarily long disconnects.
//
// Consumers call Get in a loop exactly as with sim.Queue: it returns
// (event, true), parking the proc while the stream is idle, and
// (zero, false) only after Stop.
type Reflector struct {
	srv      *Server
	kind     string
	consumer string
	opts     WatchOptions

	q       *sim.Queue[store.Event]
	lastRV  int64
	epoch   int64                 // server restart epoch at last (re)subscribe
	known   map[string]api.Object // last state delivered per name
	backlog []store.Event         // synthesized relist events awaiting delivery
	stopped bool

	resumes   int
	relists   int
	relistCtr *obs.Counter // per-consumer child of kubeshare_reflector_relist_total
}

// NewReflector subscribes to a kind with server-side filtering and drop
// resilience. With opts.Replay the current matching objects are delivered
// first as Added events, exactly like WatchFiltered.
func (s *Server) NewReflector(kind string, opts WatchOptions) *Reflector {
	return s.NewNamedReflector("anonymous", kind, opts)
}

// NewNamedReflector is NewReflector with the consuming component named, so
// relists attribute to it in the kubeshare_reflector_relist_total{consumer}
// family — after an apiserver restart, that family shows exactly which
// control loops re-synced.
func (s *Server) NewNamedReflector(consumer, kind string, opts WatchOptions) *Reflector {
	r := &Reflector{
		srv: s, kind: kind, consumer: consumer, opts: opts,
		known:     make(map[string]api.Object),
		relistCtr: s.relistVec.With(consumer),
	}
	r.q = s.WatchFiltered(kind, opts)
	// The watch is registered and the replay snapshot buffered in the same
	// instant, so the current revision is exactly the resume point: every
	// later mutation either lands in the queue or is recoverable from
	// history past this revision.
	r.lastRV = s.Revision()
	r.epoch = s.Epoch()
	s.reflectors = append(s.reflectors, r)
	return r
}

// Kind returns the watched kind (chaos targets reflectors by kind).
func (r *Reflector) Kind() string { return r.kind }

// Stats returns how many times the stream was resumed from history and how
// many times a compacted gap forced a relist.
func (r *Reflector) Stats() (resumes, relists int) { return r.resumes, r.relists }

// Get returns the next event, reconnecting as needed. ok is false only
// after Stop.
func (r *Reflector) Get(p *sim.Proc) (store.Event, bool) {
	for {
		if len(r.backlog) > 0 {
			ev := r.backlog[0]
			r.backlog[0] = store.Event{}
			r.backlog = r.backlog[1:]
			r.observe(ev)
			return ev, true
		}
		if ev, ok := r.q.Get(p); ok {
			r.observe(ev)
			return ev, true
		}
		if r.stopped {
			return store.Event{}, false
		}
		r.reconnect()
	}
}

// observe advances the resume cursor and the known-object cache.
func (r *Reflector) observe(ev store.Event) {
	if ev.Rev > r.lastRV {
		r.lastRV = ev.Rev
	}
	name := ev.Object.GetMeta().Name
	if ev.Type == store.Deleted {
		delete(r.known, name)
	} else {
		r.known[name] = ev.Object
	}
}

// reconnect re-establishes the subscription after a drop: resume from the
// last observed revision when the history still covers it, else relist and
// synthesize the diff into the backlog. Resume is never attempted across a
// restart epoch — the server's in-memory watch state died with the old
// process, and a torn-tail restore may have reverted mutations this
// consumer already observed, so only a relist-with-resync is sound.
func (r *Reflector) reconnect() {
	if e := r.srv.Epoch(); e == r.epoch {
		q, err := r.srv.WatchResume(r.kind, r.opts, r.lastRV)
		if err == nil {
			r.resumes++
			r.srv.refResumes.Inc()
			r.q = q
			return
		}
	}
	r.relist()
}

// relist handles the unrecoverable-gap path (410 Gone, or a restart
// epoch): subscribe fresh, snapshot the revision, and diff the filtered
// list against the consumer's view. Registration, revision and list happen
// without a yield, so the diff is atomic with the new subscription.
func (r *Reflector) relist() {
	r.relists++
	r.srv.refRelists.Inc()
	r.relistCtr.Inc()
	r.epoch = r.srv.Epoch()
	r.q = r.srv.WatchFiltered(r.kind, WatchOptions{Name: r.opts.Name, Selector: r.opts.Selector})
	r.lastRV = r.srv.Revision()
	cur := make(map[string]api.Object)
	for _, obj := range r.srv.ListSelector(r.kind, r.opts.Selector) {
		if r.opts.Name != "" && obj.GetMeta().Name != r.opts.Name {
			continue
		}
		cur[obj.GetMeta().Name] = obj
	}
	upserts := make([]string, 0, len(cur))
	for name := range cur {
		upserts = append(upserts, name)
	}
	sort.Strings(upserts)
	var gone []string
	for name := range r.known {
		if _, ok := cur[name]; !ok {
			gone = append(gone, name)
		}
	}
	sort.Strings(gone)
	for _, name := range upserts {
		typ := store.Added
		if _, seen := r.known[name]; seen {
			typ = store.Modified
		}
		r.backlog = append(r.backlog, store.Event{Type: typ, Object: cur[name], Rev: cur[name].GetMeta().ResourceVersion})
	}
	for _, name := range gone {
		// The consumer owns the copy it was delivered; hand it a fresh one.
		r.backlog = append(r.backlog, store.Event{Type: store.Deleted, Object: r.known[name].DeepCopyObject(), Rev: r.lastRV})
	}
}

// Drop severs the current stream without stopping the reflector — the
// fault chaos injects. Events already in flight drain; the next Get after
// the drain reconnects.
func (r *Reflector) Drop() {
	if r.stopped {
		return
	}
	r.srv.StopWatch(r.q)
}

// Stop ends the subscription permanently; pending Gets return ok=false.
func (r *Reflector) Stop() {
	if r.stopped {
		return
	}
	r.stopped = true
	r.srv.StopWatch(r.q)
	for i, other := range r.srv.reflectors {
		if other == r {
			r.srv.reflectors = append(r.srv.reflectors[:i], r.srv.reflectors[i+1:]...)
			break
		}
	}
}

// Reflectors returns the live reflectors, optionally narrowed to one kind
// ("" matches all). Chaos uses this to pick watch-drop targets.
func (s *Server) Reflectors(kind string) []*Reflector {
	var out []*Reflector
	for _, r := range s.reflectors {
		if kind == "" || r.kind == kind {
			out = append(out, r)
		}
	}
	return out
}

package apiserver

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"kubeshare/internal/kube/api"
	"kubeshare/internal/kube/labels"
	"kubeshare/internal/kube/store"
	"kubeshare/internal/sim"
	"kubeshare/internal/simrand"
)

func mkLabeledPod(name, app string) *api.Pod {
	return &api.Pod{
		ObjectMeta: api.ObjectMeta{Name: name, Labels: map[string]string{"app": app}},
		Spec:       api.PodSpec{Containers: []api.Container{{Name: "c", Image: "i"}}},
	}
}

// collect drains reflector events into a printable "TYPE name" trace.
func collectTrace(env *sim.Env, r *Reflector) *[]string {
	trace := &[]string{}
	env.Go("consumer", func(p *sim.Proc) {
		for {
			ev, ok := r.Get(p)
			if !ok {
				return
			}
			*trace = append(*trace, fmt.Sprintf("%s %s", ev.Type, ev.Object.GetMeta().Name))
		}
	})
	return trace
}

// TestReflectorResumeGoldenSequence is the watch-filter regression test: a
// filtered watch dropped mid-stream and resumed from history must deliver
// exactly the events an undropped watch would have — no duplicates, no
// gaps — as a golden event sequence.
func TestReflectorResumeGoldenSequence(t *testing.T) {
	env, s := newServer()
	sel := labels.SelectorFromMap(map[string]string{"app": "web"})
	r := s.NewReflector("Pod", WatchOptions{Selector: sel, Replay: true})
	trace := collectTrace(env, r)

	pods := Pods(s)
	if _, err := pods.Create(mkLabeledPod("w0", "web")); err != nil {
		t.Fatal(err)
	}
	env.Go("driver", func(p *sim.Proc) {
		p.Sleep(time.Second)
		mustCreate(t, pods, mkLabeledPod("w1", "web"))
		mustCreate(t, pods, mkLabeledPod("db0", "db")) // filtered out
		p.Sleep(time.Second)
		r.Drop()
		// Mutations during the outage: only recoverable via resume.
		mustCreate(t, pods, mkLabeledPod("w2", "web"))
		if _, err := pods.MutateStatus("w1", func(pod *api.Pod) error {
			pod.Status.Message = "updated"
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if err := pods.Delete("w0"); err != nil {
			t.Fatal(err)
		}
		p.Sleep(time.Second)
		mustCreate(t, pods, mkLabeledPod("w3", "web"))
	})
	env.RunUntil(10 * time.Second)

	want := []string{
		"ADDED w0",    // replay
		"ADDED w1",    // live
		"ADDED w2",    // resumed from history
		"MODIFIED w1", // resumed from history
		"DELETED w0",  // resumed from history
		"ADDED w3",    // live after resume
	}
	if !reflect.DeepEqual(*trace, want) {
		t.Fatalf("event sequence:\n got %q\nwant %q", *trace, want)
	}
	if resumes, relists := r.Stats(); resumes != 1 || relists != 0 {
		t.Fatalf("resumes=%d relists=%d, want 1/0", resumes, relists)
	}
	r.Stop()
}

// TestReflectorRelistOnCompactedGap drops the watch and then churns far past
// the history horizon, forcing the 410-Gone relist path; the synthesized
// diff must reconcile the consumer exactly (adds, modifies, deletes), again
// as a golden sequence.
func TestReflectorRelistOnCompactedGap(t *testing.T) {
	env, s := newServer()
	s.SetWatchHistoryCap(4)
	sel := labels.SelectorFromMap(map[string]string{"app": "web"})
	r := s.NewReflector("Pod", WatchOptions{Selector: sel, Replay: true})
	trace := collectTrace(env, r)

	pods := Pods(s)
	mustCreate(t, pods, mkLabeledPod("w0", "web"))
	mustCreate(t, pods, mkLabeledPod("w1", "web"))
	env.Go("driver", func(p *sim.Proc) {
		p.Sleep(time.Second)
		r.Drop()
		// Outage churn: delete w0, modify w1, add w2, plus unrelated noise
		// that flushes the 4-entry history so resume is impossible.
		if err := pods.Delete("w0"); err != nil {
			t.Fatal(err)
		}
		if _, err := pods.MutateStatus("w1", func(pod *api.Pod) error {
			pod.Status.Message = "survived"
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		mustCreate(t, pods, mkLabeledPod("w2", "web"))
		for i := 0; i < 8; i++ {
			mustCreate(t, pods, mkLabeledPod(fmt.Sprintf("noise%d", i), "db"))
		}
		p.Sleep(time.Second)
		mustCreate(t, pods, mkLabeledPod("w3", "web"))
	})
	env.RunUntil(10 * time.Second)

	want := []string{
		"ADDED w0", // replay
		"ADDED w1",
		"MODIFIED w1", // relist: survivor (state re-sent)
		"ADDED w2",    // relist: appeared during outage
		"DELETED w0",  // relist: vanished during outage
		"ADDED w3",    // live after relist
	}
	if !reflect.DeepEqual(*trace, want) {
		t.Fatalf("event sequence:\n got %q\nwant %q", *trace, want)
	}
	if resumes, relists := r.Stats(); resumes != 0 || relists != 1 {
		t.Fatalf("resumes=%d relists=%d, want 0/1", resumes, relists)
	}
	// The relisted survivor must carry the post-outage state.
	got, err := pods.Get("w1")
	if err != nil || got.Status.Message != "survived" {
		t.Fatalf("w1 state: %v %v", got, err)
	}
	r.Stop()
}

// TestReflectorRandomizedConvergence hammers a reflector with random
// mutations and drops; the event-built cache must always converge to the
// server's filtered list state.
func TestReflectorRandomizedConvergence(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		env, s := newServer()
		s.SetWatchHistoryCap(8)
		sel := labels.SelectorFromMap(map[string]string{"app": "web"})
		r := s.NewReflector("Pod", WatchOptions{Selector: sel, Replay: true})
		state := map[string]int64{} // name → last seen RV
		env.Go("consumer", func(p *sim.Proc) {
			for {
				ev, ok := r.Get(p)
				if !ok {
					return
				}
				name := ev.Object.GetMeta().Name
				if ev.Type == store.Deleted {
					delete(state, name)
				} else {
					state[name] = ev.Object.GetMeta().ResourceVersion
				}
			}
		})
		rng := simrand.New(seed)
		pods := Pods(s)
		env.Go("driver", func(p *sim.Proc) {
			live := []string{}
			for i := 0; i < 400; i++ {
				app := "web"
				if rng.Intn(3) == 0 {
					app = "db"
				}
				switch op := rng.Intn(10); {
				case op < 5 || len(live) == 0:
					name := fmt.Sprintf("p%d", i)
					mustCreate(t, pods, mkLabeledPod(name, app))
					live = append(live, name)
				case op < 8:
					if err := pods.Delete(live[rng.Intn(len(live))]); err != nil && !IsNotFound(err) {
						t.Error(err)
					}
				default:
					name := live[rng.Intn(len(live))]
					_, err := pods.MutateStatus(name, func(pod *api.Pod) error {
						pod.Status.Message = fmt.Sprintf("m%d", i)
						return nil
					})
					if err != nil && !IsNotFound(err) {
						t.Error(err)
					}
				}
				if rng.Intn(12) == 0 {
					r.Drop()
				}
				if rng.Intn(4) == 0 {
					p.Sleep(time.Duration(rng.Intn(50)) * time.Millisecond)
				}
			}
		})
		env.RunUntil(time.Hour)
		want := map[string]int64{}
		for _, pod := range pods.ListSelector(sel) {
			want[pod.Name] = pod.ResourceVersion
		}
		if !reflect.DeepEqual(state, want) {
			t.Fatalf("seed %d: cache diverged:\n got %v\nwant %v", seed, state, want)
		}
		r.Stop()
	}
}

func mustCreate(t *testing.T, pods Client[*api.Pod], p *api.Pod) {
	t.Helper()
	if _, err := pods.Create(p); err != nil {
		t.Fatal(err)
	}
}

package apiserver

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"kubeshare/internal/sim"
)

// TestReflectorRelistAcrossRestartEpoch: an apiserver restart closes every
// stream, and even though the restored store's history could satisfy a
// revision resume, the epoch fence must force a relist — the old process's
// watch bookkeeping is gone and a resume would trust state that no longer
// exists. The sequence across the restart is a golden: no event lost, no
// event duplicated, survivors re-synced exactly once.
func TestReflectorRelistAcrossRestartEpoch(t *testing.T) {
	env, s := newServer()
	s.EnableDurability(DurabilityConfig{})
	r := s.NewNamedReflector("test", "Pod", WatchOptions{Replay: true})
	trace := collectTrace(env, r)

	pods := Pods(s)
	mustCreate(t, pods, mkPod("w0"))
	env.Go("driver", func(p *sim.Proc) {
		p.Sleep(time.Second)
		mustCreate(t, pods, mkPod("w1"))
		p.Sleep(time.Second)
		if _, err := s.Restart(); err != nil {
			t.Errorf("restart: %v", err)
			return
		}
		mustCreate(t, pods, mkPod("w2"))
		p.Sleep(time.Second)
		if err := pods.Delete("w0"); err != nil {
			t.Errorf("delete: %v", err)
		}
	})
	env.RunUntil(10 * time.Second)

	want := []string{
		"ADDED w0",    // replay
		"ADDED w1",    // live
		"MODIFIED w0", // relist after restart: survivors re-synced
		"MODIFIED w1",
		"ADDED w2",   // post-restart mutation through the new epoch
		"DELETED w0", // live after relist
	}
	if !reflect.DeepEqual(*trace, want) {
		t.Fatalf("event sequence:\n got %q\nwant %q", *trace, want)
	}
	if resumes, relists := r.Stats(); resumes != 0 || relists != 1 {
		t.Fatalf("resumes=%d relists=%d, want 0/1 (epoch fence must forbid resume)", resumes, relists)
	}
	r.Stop()
}

// TestReflectorDropDuringRelistBacklog injects a watch drop while the
// restart-triggered relist backlog is still draining (the consumer paces
// one event per 100ms, so the second relist's diff races the first's
// delivery). The double-recovery must not double-deliver: every ADDED
// appears exactly once per object lifetime, and the final trace is a
// golden count per event.
func TestReflectorDropDuringRelistBacklog(t *testing.T) {
	env, s := newServer()
	s.EnableDurability(DurabilityConfig{})
	r := s.NewNamedReflector("test", "Pod", WatchOptions{Replay: true})
	var trace []string
	env.Go("slow-consumer", func(p *sim.Proc) {
		for {
			ev, ok := r.Get(p)
			if !ok {
				return
			}
			trace = append(trace, fmt.Sprintf("%s %s", ev.Type, ev.Object.GetMeta().Name))
			p.Sleep(100 * time.Millisecond) // pace delivery so drops land mid-backlog
		}
	})

	pods := Pods(s)
	for i := 0; i < 4; i++ {
		mustCreate(t, pods, mkPod(fmt.Sprintf("w%d", i)))
	}
	env.Go("driver", func(p *sim.Proc) {
		p.Sleep(time.Second)
		if _, err := s.Restart(); err != nil {
			t.Errorf("restart: %v", err)
			return
		}
		// The relist synthesized 4 MODIFIED events; the consumer drains one
		// every 100ms. Sever the stream while that backlog is mid-flight.
		p.Sleep(150 * time.Millisecond)
		r.Drop()
		p.Sleep(time.Second)
		mustCreate(t, pods, mkPod("w4"))
	})
	env.RunUntil(10 * time.Second)

	counts := map[string]int{}
	for _, ev := range trace {
		counts[ev]++
	}
	// Golden counts: one ADDED per object ever, and the restart's relist
	// re-syncs each survivor exactly once. The drop that landed mid-backlog
	// does NOT double-deliver: the backlog drains first, by which point the
	// consumer's cursor sits at the restored head inside the new epoch, so
	// the reconnect is a clean resume — not a second relist re-sending the
	// survivors.
	want := map[string]int{
		"ADDED w0": 1, "ADDED w1": 1, "ADDED w2": 1, "ADDED w3": 1,
		"MODIFIED w0": 1, "MODIFIED w1": 1, "MODIFIED w2": 1, "MODIFIED w3": 1,
		"ADDED w4": 1,
	}
	if !reflect.DeepEqual(counts, want) {
		t.Fatalf("event counts diverged (double delivery or loss):\n got %v\nwant %v\ntrace: %q", counts, want, trace)
	}
	if resumes, relists := r.Stats(); resumes != 1 || relists != 1 {
		t.Fatalf("resumes=%d relists=%d, want 1/1 (restart relists, drop resumes)", resumes, relists)
	}
	r.Stop()
}

// TestResumeFromPreRestartRevisionIsGone pins the client-visible fence: a
// raw WatchResume from a revision observed before the restart must get 410
// Gone (history died with the old process), never a silent partial stream.
func TestResumeFromPreRestartRevisionIsGone(t *testing.T) {
	env, s := newServer()
	s.EnableDurability(DurabilityConfig{})
	pods := Pods(s)
	mustCreate(t, pods, mkPod("a"))
	preRev := s.Revision()
	mustCreate(t, pods, mkPod("b"))
	env.Run()
	if _, err := s.Restart(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.WatchResume("Pod", WatchOptions{}, preRev); !IsGone(err) {
		t.Fatalf("resume from pre-restart revision: got %v, want 410 Gone", err)
	}
	// Resuming from the restored head is fine — nothing was lost.
	if _, err := s.WatchResume("Pod", WatchOptions{}, s.Revision()); err != nil {
		t.Fatalf("resume from restored head: %v", err)
	}
}

// Package backoff is the one retry-delay policy every control loop shares:
// capped decorrelated jitter, deterministically seeded from the consumer's
// name. It replaces the three ad-hoc implementations that had grown in the
// controller runner, the SharePodSet replacement path and the devlib
// token-manager reconnect — same failure, same name, same seed, same delay
// sequence on every run.
//
// The policy is AWS-style decorrelated jitter: each delay is drawn
// uniformly from [base, 3·prev] and capped, so consecutive delays grow
// roughly geometrically while synchronized failers spread out instead of
// thundering back in lockstep. Delays come off a seeded simrand stream, so
// they are virtual-clock deterministic — a property plain exponential
// jitter implementations kept re-deriving, each slightly differently.
package backoff

import (
	"hash/fnv"
	"time"

	"kubeshare/internal/simrand"
)

// Backoff produces one deterministic delay sequence. Not goroutine-safe;
// each retrying key or connection owns its own Backoff.
type Backoff struct {
	base time.Duration
	cap  time.Duration
	rng  *simrand.Source
	prev time.Duration
	n    int
}

// New returns a backoff seeded from name. base is the first delay's lower
// bound; delays never exceed cap. base <= 0 defaults to 100ms; cap below
// base is raised to base.
func New(name string, base, cap time.Duration) *Backoff {
	h := fnv.New64a()
	h.Write([]byte(name))
	return NewSeeded(int64(h.Sum64()), base, cap)
}

// NewSeeded is New with an explicit seed — for callers that already manage
// seed derivation (forked substreams, per-run seeds).
func NewSeeded(seed int64, base, cap time.Duration) *Backoff {
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if cap < base {
		cap = base
	}
	return &Backoff{base: base, cap: cap, rng: simrand.New(seed)}
}

// Next returns the delay to wait before the upcoming retry and advances the
// sequence: uniform in [base, 3·prev], capped, where prev is the previous
// delay (base on the first call).
func (b *Backoff) Next() time.Duration {
	prev := b.prev
	if prev == 0 {
		prev = b.base
	}
	hi := 3 * prev
	if hi > b.cap {
		hi = b.cap
	}
	d := b.base
	if hi > b.base {
		d = b.base + time.Duration(b.rng.Float64()*float64(hi-b.base))
	}
	b.prev = d
	b.n++
	return d
}

// Attempts returns how many delays Next has produced since the last Reset.
func (b *Backoff) Attempts() int { return b.n }

// Reset restarts the growth at base after a success. The random stream is
// not rewound — the next failure burst draws fresh jitter, which is the
// point of decorrelation.
func (b *Backoff) Reset() {
	b.prev = 0
	b.n = 0
}

package backoff

import (
	"testing"
	"time"
)

func TestBoundsAndGrowth(t *testing.T) {
	b := New("bounds", 100*time.Millisecond, 5*time.Second)
	prev := time.Duration(0)
	hitCap := false
	for i := 0; i < 50; i++ {
		lo := 100 * time.Millisecond
		hi := 3 * prev
		if prev == 0 {
			hi = 3 * lo
		}
		if hi > 5*time.Second {
			hi = 5 * time.Second
		}
		d := b.Next()
		if d < lo || d > hi {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]", i, d, lo, hi)
		}
		if d == 5*time.Second || hi == 5*time.Second {
			hitCap = true
		}
		prev = d
	}
	if !hitCap {
		t.Fatal("50 attempts never reached the cap's range")
	}
	if b.Attempts() != 50 {
		t.Fatalf("Attempts() = %d, want 50", b.Attempts())
	}
}

// TestDeterministicPerName: same name, same sequence; different names
// decorrelate.
func TestDeterministicPerName(t *testing.T) {
	a1, a2 := New("runner-a", 100*time.Millisecond, 10*time.Second), New("runner-a", 100*time.Millisecond, 10*time.Second)
	bdiff := New("runner-b", 100*time.Millisecond, 10*time.Second)
	same, diff := true, true
	for i := 0; i < 20; i++ {
		x := a1.Next()
		if x != a2.Next() {
			same = false
		}
		if x != bdiff.Next() {
			diff = false
		}
	}
	if !same {
		t.Fatal("identical names produced different sequences")
	}
	if diff {
		t.Fatal("different names produced identical sequences — seeding is not name-sensitive")
	}
}

// TestResetRestartsGrowthWithFreshJitter: after Reset the first delay drops
// back near base, but the stream does not replay the original jitter.
func TestResetRestartsGrowthWithFreshJitter(t *testing.T) {
	b := New("reset", 100*time.Millisecond, 10*time.Second)
	first := make([]time.Duration, 8)
	for i := range first {
		first[i] = b.Next()
	}
	b.Reset()
	if b.Attempts() != 0 {
		t.Fatalf("Attempts() = %d after Reset, want 0", b.Attempts())
	}
	replayed := true
	for i := range first {
		d := b.Next()
		if i == 0 && d > 300*time.Millisecond {
			t.Fatalf("first post-Reset delay %v not restarted from base range [100ms, 300ms]", d)
		}
		if d != first[i] {
			replayed = false
		}
	}
	if replayed {
		t.Fatal("post-Reset sequence replayed the original jitter — stream was rewound")
	}
}

func TestDefaultsAndDegenerateCap(t *testing.T) {
	b := NewSeeded(1, 0, 0)
	if d := b.Next(); d < 100*time.Millisecond {
		t.Fatalf("zero base did not default to 100ms: %v", d)
	}
	// cap == base pins every delay exactly at base.
	c := NewSeeded(1, time.Second, time.Second)
	for i := 0; i < 5; i++ {
		if d := c.Next(); d != time.Second {
			t.Fatalf("cap==base attempt %d: %v, want exactly 1s", i, d)
		}
	}
}

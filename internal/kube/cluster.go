// Package kube assembles the miniature Kubernetes cluster: API server,
// scheduler, controller manager, and per-node kubelets with container
// runtimes, GPUs and the NVIDIA device plugin. It is the testbed substitute
// for the paper's 8-node, 32-GPU AWS cluster.
package kube

import (
	"fmt"
	"time"

	"kubeshare/internal/gpusim"
	"kubeshare/internal/kube/api"
	"kubeshare/internal/kube/apiserver"
	"kubeshare/internal/kube/controller"
	"kubeshare/internal/kube/deviceplugin"
	"kubeshare/internal/kube/kubelet"
	"kubeshare/internal/kube/runtime"
	"kubeshare/internal/kube/scheduler"
	"kubeshare/internal/kube/store"
	"kubeshare/internal/obs"
	"kubeshare/internal/sim"
)

// NodeConfig describes one worker node.
type NodeConfig struct {
	Name     string
	GPUs     int
	GPUMem   int64 // defaults to gpusim.DefaultMemoryBytes
	Capacity api.ResourceList
	Labels   map[string]string
}

// Config describes a cluster.
type Config struct {
	Nodes []NodeConfig
	// Latency knobs; zero values take the component defaults.
	BindLatency      time.Duration
	StartLatency     time.Duration
	ImagePullLatency time.Duration
	SyncLatency      time.Duration
	// Failure-detection knobs; zero values take the component defaults.
	HeartbeatInterval time.Duration
	NodeLifecycle     controller.NodeLifecycleConfig
	// DisableObs turns the telemetry runtime off: no metrics, spans or
	// events are recorded anywhere in the cluster (the obs-off arm of
	// the instrumentation-overhead benchmark).
	DisableObs bool
}

// DefaultConfig mirrors the paper's testbed: n nodes of 4 V100s each.
func DefaultConfig(nodes int) Config {
	cfg := Config{}
	for i := 0; i < nodes; i++ {
		cfg.Nodes = append(cfg.Nodes, NodeConfig{Name: fmt.Sprintf("node-%d", i), GPUs: 4})
	}
	return cfg
}

// Node bundles one worker's components.
type Node struct {
	Name    string
	GPUs    []*gpusim.Device
	Runtime *runtime.Runtime
	Kubelet *kubelet.Kubelet
}

// Cluster is a fully wired control plane plus worker nodes.
type Cluster struct {
	Env *sim.Env
	// Obs is the cluster-wide telemetry runtime every component is
	// instrumented against; nil when Config.DisableObs was set.
	Obs           *obs.Runtime
	API           *apiserver.Server
	Scheduler     *scheduler.Scheduler
	RCManager     *controller.ReplicationManager
	NodeLifecycle *controller.NodeLifecycle
	Images        *runtime.ImageRegistry
	Nodes         []*Node
	nodeByName    map[string]*Node
}

// NewCluster builds and starts a cluster inside env. All components begin
// running at the current virtual instant.
func NewCluster(env *sim.Env, cfg Config) (*Cluster, error) {
	var rt *obs.Runtime
	if !cfg.DisableObs {
		rt = obs.New(env)
	}
	c := &Cluster{
		Env:        env,
		Obs:        rt,
		API:        apiserver.NewWithObs(env, rt),
		Images:     runtime.NewImageRegistry(),
		nodeByName: make(map[string]*Node),
	}
	c.API.RegisterValidator("Pod", func(o api.Object) error {
		return api.ValidatePodSpec(o.(*api.Pod).Spec)
	})
	c.Scheduler = scheduler.New(env, c.API, scheduler.Config{BindLatency: cfg.BindLatency})
	c.Scheduler.Start()
	c.RCManager = controller.NewReplicationManager(env, c.API)
	c.RCManager.Start()
	c.NodeLifecycle = controller.NewNodeLifecycle(env, c.API, cfg.NodeLifecycle)
	c.NodeLifecycle.Start()
	for _, nc := range cfg.Nodes {
		var gpus []*gpusim.Device
		for i := 0; i < nc.GPUs; i++ {
			gpus = append(gpus, gpusim.NewDevice(env, gpusim.Config{
				Index:       i,
				NodeName:    nc.Name,
				MemoryBytes: nc.GPUMem,
				Obs:         rt,
			}))
		}
		rt := runtime.New(env, c.Images, gpus, runtime.Config{StartLatency: cfg.StartLatency})
		devmgr := deviceplugin.NewManager()
		if len(gpus) > 0 {
			if err := devmgr.Register(deviceplugin.NewNvidiaPlugin(gpus)); err != nil {
				return nil, err
			}
		}
		kl := kubelet.New(env, c.API, devmgr, rt, kubelet.Config{
			NodeName:          nc.Name,
			Capacity:          nc.Capacity,
			Labels:            nc.Labels,
			ImagePullLatency:  cfg.ImagePullLatency,
			SyncLatency:       cfg.SyncLatency,
			HeartbeatInterval: cfg.HeartbeatInterval,
		})
		if err := kl.Start(); err != nil {
			return nil, err
		}
		node := &Node{Name: nc.Name, GPUs: gpus, Runtime: rt, Kubelet: kl}
		c.Nodes = append(c.Nodes, node)
		c.nodeByName[nc.Name] = node
	}
	return c, nil
}

// Node returns a worker by name.
func (c *Cluster) Node(name string) (*Node, bool) {
	n, ok := c.nodeByName[name]
	return n, ok
}

// Device resolves a GPU by UUID across all nodes.
func (c *Cluster) Device(uuid string) (*gpusim.Device, *Node, bool) {
	for _, n := range c.Nodes {
		for _, d := range n.GPUs {
			if d.UUID() == uuid {
				return d, n, true
			}
		}
	}
	return nil, nil, false
}

// AllGPUs returns every device in the cluster, node-major.
func (c *Cluster) AllGPUs() []*gpusim.Device {
	var out []*gpusim.Device
	for _, n := range c.Nodes {
		out = append(out, n.GPUs...)
	}
	return out
}

// Pods returns the typed pod client.
func (c *Cluster) Pods() apiserver.Client[*api.Pod] { return apiserver.Pods(c.API) }

// RCs returns the typed ReplicationController client.
func (c *Cluster) RCs() apiserver.Client[*api.ReplicationController] {
	return apiserver.ReplicationControllers(c.API)
}

// Nodes lists registered Node objects.
func (c *Cluster) NodeObjects() []*api.Node { return apiserver.Nodes(c.API).List() }

// WaitPodPhase parks p until the named pod reaches one of the phases (or is
// deleted, returning an error). It polls via watch events.
func (c *Cluster) WaitPodPhase(p *sim.Proc, name string, phases ...api.PodPhase) (*api.Pod, error) {
	match := func(pod *api.Pod) bool {
		for _, ph := range phases {
			if pod.Status.Phase == ph {
				return true
			}
		}
		return false
	}
	// Name-filtered subscription: unrelated pod churn never wakes the waiter.
	q := c.API.WatchFiltered("Pod", apiserver.WatchOptions{Name: name, Replay: true})
	defer c.API.StopWatch(q)
	for {
		ev, ok := q.Get(p)
		if !ok {
			return nil, fmt.Errorf("kube: watch closed waiting for %s", name)
		}
		pod := ev.Object.(*api.Pod)
		if ev.Type == store.Deleted {
			return nil, fmt.Errorf("kube: pod %s deleted while waiting", name)
		}
		if match(pod) {
			return pod, nil
		}
	}
}

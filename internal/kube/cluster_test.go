package kube

import (
	"errors"
	"testing"
	"time"

	"kubeshare/internal/kube/api"
	"kubeshare/internal/kube/runtime"
	"kubeshare/internal/sim"
)

// sleepImage registers an image whose entrypoint sleeps for d.
func sleepImage(c *Cluster, name string, d time.Duration) {
	c.Images.Register(name, func(ctx *runtime.Ctx) error {
		ctx.Proc.Sleep(d)
		return nil
	})
}

func simplePod(name, image string, req api.ResourceList) *api.Pod {
	return &api.Pod{
		ObjectMeta: api.ObjectMeta{Name: name},
		Spec: api.PodSpec{Containers: []api.Container{{
			Name: "main", Image: image, Requests: req,
		}}},
	}
}

func TestPodLifecycleEndToEnd(t *testing.T) {
	env := sim.NewEnv()
	c, err := NewCluster(env, DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	sleepImage(c, "work", 2*time.Second)
	var final *api.Pod
	env.Go("test", func(p *sim.Proc) {
		if _, err := c.Pods().Create(simplePod("p1", "work", api.ResourceList{api.ResourceCPU: 1000})); err != nil {
			t.Errorf("create: %v", err)
			return
		}
		pod, err := c.WaitPodPhase(p, "p1", api.PodSucceeded, api.PodFailed)
		if err != nil {
			t.Errorf("wait: %v", err)
			return
		}
		final = pod
	})
	env.Run()
	if final == nil {
		t.Fatal("pod never finished")
	}
	if final.Status.Phase != api.PodSucceeded {
		t.Fatalf("phase = %s (%s)", final.Status.Phase, final.Status.Message)
	}
	if final.Spec.NodeName != "node-0" {
		t.Fatalf("node = %q", final.Spec.NodeName)
	}
	if final.Status.ScheduledTime == 0 || final.Status.StartTime <= final.Status.ScheduledTime {
		t.Fatalf("timestamps: sched=%v start=%v", final.Status.ScheduledTime, final.Status.StartTime)
	}
	// Entrypoint slept 2s; finish = start + 2s.
	if got := final.Status.FinishTime - final.Status.StartTime; got != 2*time.Second {
		t.Fatalf("run duration = %v", got)
	}
}

func TestGPUPodGetsVisibleDevices(t *testing.T) {
	env := sim.NewEnv()
	c, _ := NewCluster(env, DefaultConfig(1))
	var visible string
	var hadCUDA bool
	c.Images.Register("gpu-app", func(ctx *runtime.Ctx) error {
		visible = ctx.Env["NVIDIA_VISIBLE_DEVICES"]
		hadCUDA = ctx.CUDA != nil
		if ctx.CUDA != nil {
			return ctx.CUDA.LaunchKernel(ctx.Proc, 10*time.Millisecond)
		}
		return nil
	})
	env.Go("test", func(p *sim.Proc) {
		c.Pods().Create(simplePod("g1", "gpu-app", api.ResourceList{api.ResourceGPU: 1}))
		if _, err := c.WaitPodPhase(p, "g1", api.PodSucceeded, api.PodFailed); err != nil {
			t.Errorf("wait: %v", err)
		}
	})
	env.Run()
	if !hadCUDA {
		t.Fatal("GPU pod had no CUDA handle")
	}
	if _, _, ok := c.Device(visible); !ok {
		t.Fatalf("NVIDIA_VISIBLE_DEVICES=%q does not name a cluster GPU", visible)
	}
	// The kernel must have run on that physical device.
	dev, _, _ := c.Device(visible)
	if dev.BusyTime() != 10*time.Millisecond {
		t.Fatalf("device busy %v, want 10ms", dev.BusyTime())
	}
}

func TestSchedulerRespectsGPUCounts(t *testing.T) {
	env := sim.NewEnv()
	c, _ := NewCluster(env, DefaultConfig(1)) // 4 GPUs
	sleepImage(c, "hog", time.Hour)
	env.Go("test", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			c.Pods().Create(simplePod(
				name("hog", i), "hog", api.ResourceList{api.ResourceGPU: 1}))
		}
	})
	env.RunUntil(30 * time.Second)
	bound, pending := 0, 0
	for _, pod := range c.Pods().List() {
		if pod.Spec.NodeName != "" {
			bound++
		} else {
			pending++
		}
	}
	if bound != 4 || pending != 1 {
		t.Fatalf("bound=%d pending=%d, want 4/1 (4 GPUs)", bound, pending)
	}
}

func TestPendingPodScheduledAfterRelease(t *testing.T) {
	env := sim.NewEnv()
	c, _ := NewCluster(env, DefaultConfig(1))
	sleepImage(c, "short", 5*time.Second)
	env.Go("test", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			c.Pods().Create(simplePod(
				name("j", i), "short", api.ResourceList{api.ResourceGPU: 1}))
		}
	})
	env.Run()
	for _, pod := range c.Pods().List() {
		if pod.Status.Phase != api.PodSucceeded {
			t.Fatalf("pod %s phase %s", pod.Name, pod.Status.Phase)
		}
	}
}

func TestNodeSelectorRespected(t *testing.T) {
	env := sim.NewEnv()
	cfg := Config{Nodes: []NodeConfig{
		{Name: "cpu-node", GPUs: 0},
		{Name: "gpu-node", GPUs: 2, Labels: map[string]string{"accel": "v100"}},
	}}
	c, _ := NewCluster(env, cfg)
	sleepImage(c, "w", time.Second)
	pod := simplePod("sel", "w", api.ResourceList{api.ResourceCPU: 100})
	pod.Spec.NodeSelector = map[string]string{"accel": "v100"}
	env.Go("test", func(p *sim.Proc) {
		c.Pods().Create(pod)
		got, err := c.WaitPodPhase(p, "sel", api.PodSucceeded)
		if err != nil {
			t.Errorf("wait: %v", err)
			return
		}
		if got.Spec.NodeName != "gpu-node" {
			t.Errorf("node = %s", got.Spec.NodeName)
		}
	})
	env.Run()
}

func TestPodSpreadAcrossNodesLeastAllocated(t *testing.T) {
	env := sim.NewEnv()
	c, _ := NewCluster(env, DefaultConfig(2))
	sleepImage(c, "w", time.Hour)
	env.Go("test", func(p *sim.Proc) {
		c.Pods().Create(simplePod("a", "w", api.ResourceList{api.ResourceCPU: 18000}))
		p.Sleep(5 * time.Second)
		c.Pods().Create(simplePod("b", "w", api.ResourceList{api.ResourceCPU: 18000}))
	})
	env.RunUntil(20 * time.Second)
	a, _ := c.Pods().Get("a")
	b, _ := c.Pods().Get("b")
	if a.Spec.NodeName == b.Spec.NodeName {
		t.Fatalf("least-allocated scoring put both pods on %s", a.Spec.NodeName)
	}
}

func TestFailedContainerMarksPodFailed(t *testing.T) {
	env := sim.NewEnv()
	c, _ := NewCluster(env, DefaultConfig(1))
	c.Images.Register("crash", func(ctx *runtime.Ctx) error {
		ctx.Proc.Sleep(time.Second)
		return errors.New("segfault")
	})
	env.Go("test", func(p *sim.Proc) {
		c.Pods().Create(simplePod("boom", "crash", nil))
		pod, err := c.WaitPodPhase(p, "boom", api.PodSucceeded, api.PodFailed)
		if err != nil {
			t.Errorf("wait: %v", err)
			return
		}
		if pod.Status.Phase != api.PodFailed || pod.Status.Message != "segfault" {
			t.Errorf("status = %+v", pod.Status)
		}
	})
	env.Run()
}

func TestUnknownImageFailsPod(t *testing.T) {
	env := sim.NewEnv()
	c, _ := NewCluster(env, DefaultConfig(1))
	env.Go("test", func(p *sim.Proc) {
		c.Pods().Create(simplePod("noimg", "ghost-image", nil))
		pod, _ := c.WaitPodPhase(p, "noimg", api.PodFailed)
		if pod == nil {
			t.Error("pod never failed")
		}
	})
	env.Run()
}

func TestDeletePodStopsContainersAndFreesGPU(t *testing.T) {
	env := sim.NewEnv()
	c, _ := NewCluster(env, DefaultConfig(1))
	started := false
	c.Images.Register("forever", func(ctx *runtime.Ctx) error {
		started = true
		ctx.Proc.Sleep(time.Hour)
		return nil
	})
	env.Go("test", func(p *sim.Proc) {
		c.Pods().Create(simplePod("d1", "forever", api.ResourceList{api.ResourceGPU: 4}))
		if _, err := c.WaitPodPhase(p, "d1", api.PodRunning); err != nil {
			t.Errorf("wait running: %v", err)
			return
		}
		if err := c.Pods().Delete("d1"); err != nil {
			t.Errorf("delete: %v", err)
		}
		// The GPUs must be reusable by a fresh pod.
		c.Pods().Create(simplePod("d2", "forever", api.ResourceList{api.ResourceGPU: 4}))
		if _, err := c.WaitPodPhase(p, "d2", api.PodRunning); err != nil {
			t.Errorf("d2 never ran: %v", err)
		}
		c.Pods().Delete("d2")
	})
	env.Run()
	if !started {
		t.Fatal("container never started")
	}
	node := c.Nodes[0]
	if got := node.Kubelet.DeviceManager().Capacity()[api.ResourceGPU]; got != 4 {
		t.Fatalf("GPU capacity corrupted: %d", got)
	}
	if env.Now() > time.Minute {
		t.Fatalf("deleted pods kept simulation alive until %v", env.Now())
	}
}

func TestReplicationControllerMaintainsReplicas(t *testing.T) {
	env := sim.NewEnv()
	c, _ := NewCluster(env, DefaultConfig(2))
	sleepImage(c, "svc", time.Hour)
	rc := &api.ReplicationController{
		ObjectMeta:     api.ObjectMeta{Name: "web"},
		Replicas:       3,
		Selector:       map[string]string{"app": "web"},
		TemplateLabels: map[string]string{"app": "web"},
		Template: api.PodSpec{Containers: []api.Container{{
			Name: "c", Image: "svc", Requests: api.ResourceList{api.ResourceCPU: 100},
		}}},
	}
	env.Go("test", func(p *sim.Proc) {
		if _, err := c.RCs().Create(rc); err != nil {
			t.Errorf("create rc: %v", err)
		}
	})
	env.RunUntil(10 * time.Second)
	pods := c.Pods().List()
	if len(pods) != 3 {
		t.Fatalf("pods = %d, want 3", len(pods))
	}
	// Scale down.
	env.Go("scale", func(p *sim.Proc) {
		c.RCs().Mutate("web", func(cur *api.ReplicationController) error {
			cur.Replicas = 1
			return nil
		})
	})
	env.RunUntil(20 * time.Second)
	live := 0
	for _, pod := range c.Pods().List() {
		if !pod.Terminated() {
			live++
		}
	}
	if live != 1 {
		t.Fatalf("live pods after scale-down = %d, want 1", live)
	}
	// Delete RC: pods garbage collected.
	env.Go("del", func(p *sim.Proc) { c.RCs().Delete("web") })
	env.RunUntil(30 * time.Second)
	if n := len(c.Pods().List()); n != 0 {
		t.Fatalf("orphan pods remain: %d", n)
	}
}

func TestConcurrentPodCreationAllScheduled(t *testing.T) {
	env := sim.NewEnv()
	c, _ := NewCluster(env, DefaultConfig(4))
	sleepImage(c, "w", 10*time.Second)
	const n = 16
	env.Go("test", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			c.Pods().Create(simplePod(name("c", i), "w", api.ResourceList{api.ResourceGPU: 1}))
		}
	})
	env.Run()
	succeeded := 0
	for _, pod := range c.Pods().List() {
		if pod.Status.Phase == api.PodSucceeded {
			succeeded++
		}
	}
	if succeeded != n {
		t.Fatalf("succeeded = %d, want %d", succeeded, n)
	}
}

func name(prefix string, i int) string {
	return prefix + "-" + string(rune('a'+i/26)) + string(rune('a'+i%26))
}

// Package controller provides the controller runtime of the simulated
// cluster: a work-queue reconciliation loop in the style of Kubernetes
// controllers, plus the ReplicationController built on it. KubeShare's two
// custom controllers (KubeShare-Sched and KubeShare-DevMgr) reuse the same
// Runner, which is the operator-pattern compatibility argument of §4.6.
package controller

import (
	"fmt"
	"strings"
	"time"

	"kubeshare/internal/kube/api"
	"kubeshare/internal/kube/apiserver"
	"kubeshare/internal/kube/backoff"
	"kubeshare/internal/kube/labels"
	"kubeshare/internal/sim"
)

// Reconcile processes one work-queue key. Returning an error requeues the
// key after the runner's backoff.
type Reconcile func(p *sim.Proc, key string) error

// DefaultBackoffCap bounds the per-key retry delay.
const DefaultBackoffCap = 5 * time.Second

// Runner is a single-worker reconciliation loop over a deduplicated work
// queue. Failing keys are retried under the shared backoff policy
// (decorrelated jitter seeded from runner name + key, so identical runs
// replay identically); a successful reconcile resets the key's backoff.
type Runner struct {
	name       string
	env        *sim.Env
	queue      *sim.Queue[string]
	queued     map[string]bool
	base       time.Duration
	backoffCap time.Duration
	failures   map[string]*backoff.Backoff
	fn         Reconcile
	proc       *sim.Proc
}

// NewRunner creates a runner; keys enqueued while already pending are
// coalesced. base is the base retry delay (default 100ms), growing per
// consecutive failure up to DefaultBackoffCap.
func NewRunner(env *sim.Env, name string, base time.Duration, fn Reconcile) *Runner {
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	cap := DefaultBackoffCap
	if base > cap {
		cap = base
	}
	return &Runner{
		name:       name,
		env:        env,
		queue:      sim.NewQueue[string](env),
		queued:     make(map[string]bool),
		base:       base,
		backoffCap: cap,
		failures:   make(map[string]*backoff.Backoff),
		fn:         fn,
	}
}

// Enqueue adds a key to the work queue (no-op when already pending).
func (r *Runner) Enqueue(key string) {
	if r.queued[key] {
		return
	}
	r.queued[key] = true
	r.queue.Put(key)
}

// EnqueueAfter schedules an Enqueue of key after d of virtual time — for
// reconcilers that defer work (replacement backoff) without failing the key.
func (r *Runner) EnqueueAfter(key string, d time.Duration) {
	r.env.After(d, func() { r.Enqueue(key) })
}

// Failures returns the key's consecutive-failure count (for tests and
// introspection).
func (r *Runner) Failures(key string) int {
	if b := r.failures[key]; b != nil {
		return b.Attempts()
	}
	return 0
}

// retryDelay advances the key's backoff sequence, creating it on the first
// failure. Seeding by runner name + key keeps failure bursts across keys
// decorrelated while identical runs replay identically.
func (r *Runner) retryDelay(key string) time.Duration {
	b := r.failures[key]
	if b == nil {
		b = backoff.New(r.name+"/"+key, r.base, r.backoffCap)
		r.failures[key] = b
	}
	return b.Next()
}

// Start launches the worker loop.
func (r *Runner) Start() {
	r.proc = r.env.Go("controller-"+r.name, func(p *sim.Proc) {
		for {
			key, ok := r.queue.Get(p)
			if !ok {
				return
			}
			delete(r.queued, key)
			if err := r.fn(p, key); err != nil {
				key := key
				r.env.After(r.retryDelay(key), func() { r.Enqueue(key) })
			} else if r.failures[key] != nil {
				delete(r.failures, key)
			}
		}
	})
}

// Stop terminates the worker loop.
func (r *Runner) Stop() {
	if r.proc != nil {
		r.proc.Kill(nil)
	}
}

// rcOwnerPrefix qualifies OwnerName references held by RC-created pods.
const rcOwnerPrefix = "ReplicationController/"

// ReplicationManager reconciles ReplicationController objects: it keeps
// Replicas pods matching each controller's selector alive, creating and
// deleting pods as needed.
type ReplicationManager struct {
	env    *sim.Env
	srv    *apiserver.Server
	runner *Runner
	serial int
}

// NewReplicationManager creates the manager; Start launches its watches.
func NewReplicationManager(env *sim.Env, srv *apiserver.Server) *ReplicationManager {
	m := &ReplicationManager{env: env, srv: srv}
	m.runner = NewRunner(env, "replication", 0, m.reconcile)
	return m
}

// Start begins watching RCs and pods and reconciling. The watches go
// through named reflectors so an apiserver restart — which closes every raw
// watch queue for good — only costs a relist, not the manager's liveness.
func (m *ReplicationManager) Start() {
	rcR := m.srv.NewNamedReflector("rc-manager", "ReplicationController", apiserver.WatchOptions{Replay: true})
	podR := m.srv.NewNamedReflector("rc-manager", "Pod", apiserver.WatchOptions{Replay: true})
	m.env.Go("rc-watch", func(p *sim.Proc) {
		for {
			ev, ok := rcR.Get(p)
			if !ok {
				return
			}
			m.runner.Enqueue(ev.Object.GetMeta().Name)
		}
	})
	m.env.Go("rc-watch-pods", func(p *sim.Proc) {
		for {
			ev, ok := podR.Get(p)
			if !ok {
				return
			}
			// Owner references are kind-qualified keys; only react to pods
			// owned by ReplicationControllers — other controllers (e.g.
			// KubeShare's DevMgr) own pods too.
			if owner := ev.Object.GetMeta().OwnerName; strings.HasPrefix(owner, rcOwnerPrefix) {
				m.runner.Enqueue(strings.TrimPrefix(owner, rcOwnerPrefix))
			}
		}
	})
	m.runner.Start()
}

func (m *ReplicationManager) reconcile(p *sim.Proc, name string) error {
	rcs := apiserver.ReplicationControllers(m.srv)
	rc, err := rcs.Get(name)
	if err != nil {
		if apiserver.IsNotFound(err) {
			m.cleanupOrphans(name)
			return nil
		}
		return err
	}
	pods := apiserver.Pods(m.srv)
	var owned []*api.Pod
	live := 0
	// The selector narrows the scan to label-matching pods via the store's
	// index; the owner check still runs here (ownership is metadata, not a
	// label).
	for _, pod := range pods.ListSelector(labels.Set(rc.Selector)) {
		if pod.OwnerName != rcOwnerPrefix+name || !rc.MatchesLabels(pod.Labels) {
			continue
		}
		owned = append(owned, pod)
		if !pod.Terminated() {
			live++
		}
	}
	for live < rc.Replicas {
		m.serial++
		pod := &api.Pod{
			ObjectMeta: api.ObjectMeta{
				Name:      fmt.Sprintf("%s-%d", rc.Name, m.serial),
				Labels:    rc.TemplateLabels,
				OwnerName: rcOwnerPrefix + rc.Name,
			},
			Spec: rc.Template.Clone(),
		}
		if _, err := pods.Create(pod); err != nil {
			return fmt.Errorf("replication %s: create: %w", name, err)
		}
		live++
	}
	// Scale down newest-first for determinism.
	for i := len(owned) - 1; i >= 0 && live > rc.Replicas; i-- {
		if owned[i].Terminated() {
			continue
		}
		if err := pods.Delete(owned[i].Name); err != nil && !apiserver.IsNotFound(err) {
			return err
		}
		live--
	}
	ready := 0
	for _, pod := range owned {
		if pod.Status.Phase == api.PodRunning {
			ready++
		}
	}
	if rc.ReadyReplicas != ready {
		_, err := rcs.Mutate(name, func(cur *api.ReplicationController) error {
			cur.ReadyReplicas = ready
			return nil
		})
		if err != nil && !apiserver.IsNotFound(err) {
			return err
		}
	}
	return nil
}

// cleanupOrphans deletes pods owned by a removed controller.
func (m *ReplicationManager) cleanupOrphans(owner string) {
	pods := apiserver.Pods(m.srv)
	for _, pod := range pods.List() {
		if pod.OwnerName == rcOwnerPrefix+owner {
			_ = pods.Delete(pod.Name)
		}
	}
}

package controller

import (
	"errors"
	"testing"
	"time"

	"kubeshare/internal/kube/api"
	"kubeshare/internal/kube/apiserver"
	"kubeshare/internal/sim"
)

func TestRunnerProcessesKeys(t *testing.T) {
	env := sim.NewEnv()
	var got []string
	r := NewRunner(env, "test", 0, func(p *sim.Proc, key string) error {
		got = append(got, key)
		return nil
	})
	r.Start()
	env.Go("t", func(p *sim.Proc) {
		r.Enqueue("a")
		r.Enqueue("b")
	})
	env.Run()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("got = %v", got)
	}
}

func TestRunnerCoalescesDuplicateKeys(t *testing.T) {
	env := sim.NewEnv()
	count := 0
	r := NewRunner(env, "test", 0, func(p *sim.Proc, key string) error {
		count++
		return nil
	})
	r.Start()
	env.Go("t", func(p *sim.Proc) {
		r.Enqueue("x")
		r.Enqueue("x")
		r.Enqueue("x")
	})
	env.Run()
	if count != 1 {
		t.Fatalf("reconciled %d times, want 1 (coalesced)", count)
	}
}

func TestRunnerRequeuesOnErrorWithBackoff(t *testing.T) {
	env := sim.NewEnv()
	var times []time.Duration
	r := NewRunner(env, "test", 200*time.Millisecond, func(p *sim.Proc, key string) error {
		times = append(times, env.Now())
		if len(times) < 3 {
			return errors.New("transient")
		}
		return nil
	})
	r.Start()
	env.Go("t", func(p *sim.Proc) { r.Enqueue("x") })
	env.Run()
	if len(times) != 3 {
		t.Fatalf("attempts = %d, want 3", len(times))
	}
	if d := times[1] - times[0]; d < 200*time.Millisecond {
		t.Fatalf("retry after %v, want ≥200ms backoff", d)
	}
}

func TestRunnerReEnqueueAfterProcessing(t *testing.T) {
	env := sim.NewEnv()
	count := 0
	r := NewRunner(env, "test", 0, func(p *sim.Proc, key string) error {
		count++
		return nil
	})
	r.Start()
	env.Go("t", func(p *sim.Proc) {
		r.Enqueue("x")
		p.Sleep(time.Second)
		r.Enqueue("x") // after the first reconcile completed: fresh work
	})
	env.Run()
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
}

func TestRunnerStop(t *testing.T) {
	env := sim.NewEnv()
	count := 0
	r := NewRunner(env, "test", 0, func(p *sim.Proc, key string) error {
		count++
		return nil
	})
	r.Start()
	env.Go("t", func(p *sim.Proc) {
		r.Enqueue("a")
		p.Sleep(time.Second)
		r.Stop()
		r.Enqueue("b") // after stop: queued but never processed
	})
	env.Run()
	if count != 1 {
		t.Fatalf("count = %d, want 1", count)
	}
}

// The ReplicationManager end-to-end behaviour is covered by the cluster
// integration tests; here we exercise its reconcile arithmetic directly.
func TestReplicationReconcileCounts(t *testing.T) {
	env := sim.NewEnv()
	srv := apiserver.New(env)
	m := NewReplicationManager(env, srv)
	m.Start()
	rc := &api.ReplicationController{
		ObjectMeta:     api.ObjectMeta{Name: "web"},
		Replicas:       2,
		Selector:       map[string]string{"app": "web"},
		TemplateLabels: map[string]string{"app": "web"},
		Template:       api.PodSpec{Containers: []api.Container{{Name: "c", Image: "i"}}},
	}
	env.Go("t", func(p *sim.Proc) {
		apiserver.ReplicationControllers(srv).Create(rc)
	})
	env.RunUntil(2 * time.Second)
	pods := apiserver.Pods(srv).List()
	if len(pods) != 2 {
		t.Fatalf("pods = %d", len(pods))
	}
	for _, pod := range pods {
		if pod.OwnerName != "ReplicationController/web" || pod.Labels["app"] != "web" {
			t.Fatalf("pod metadata wrong: %+v", pod.ObjectMeta)
		}
	}
	// A pod that matches the selector but has a different owner is ignored.
	env.Go("intruder", func(p *sim.Proc) {
		apiserver.Pods(srv).Create(&api.Pod{
			ObjectMeta: api.ObjectMeta{Name: "stranger", Labels: map[string]string{"app": "web"}},
			Spec:       api.PodSpec{Containers: []api.Container{{Name: "c", Image: "i"}}},
		})
	})
	env.RunUntil(4 * time.Second)
	if n := len(apiserver.Pods(srv).List()); n != 3 {
		t.Fatalf("pods = %d, want 3 (stranger untouched)", n)
	}
}

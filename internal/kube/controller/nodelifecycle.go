package controller

import (
	"time"

	"kubeshare/internal/kube/api"
	"kubeshare/internal/kube/apiserver"
	"kubeshare/internal/sim"
)

// NodeLifecycleConfig tunes failure detection.
type NodeLifecycleConfig struct {
	// CheckInterval is the sweep period (default 1s).
	CheckInterval time.Duration
	// Grace is how stale a heartbeat may be before the node is declared
	// NotReady (default 3s — a few missed renewals, not one hiccup).
	Grace time.Duration
	// EvictionTimeout is how long a node stays NotReady before its pods are
	// evicted (default 10s).
	EvictionTimeout time.Duration
}

func (c NodeLifecycleConfig) withDefaults() NodeLifecycleConfig {
	if c.CheckInterval == 0 {
		c.CheckInterval = time.Second
	}
	if c.Grace == 0 {
		c.Grace = 3 * time.Second
	}
	if c.EvictionTimeout == 0 {
		c.EvictionTimeout = 10 * time.Second
	}
	return c
}

// NodeLifecycle is the node-lifecycle controller: it watches kubelet
// heartbeats, marks silent nodes NotReady (unschedulable), and after an
// eviction timeout deletes the pods bound to them so owning controllers
// reschedule or replace the lost work. A node whose kubelet resumes
// heartbeating recovers: Ready is restored and the eviction clock resets —
// a flapping node that recovers within the timeout loses nothing.
type NodeLifecycle struct {
	env *sim.Env
	srv *apiserver.Server
	cfg NodeLifecycleConfig

	notReadySince map[string]time.Duration
	proc          *sim.Proc
}

// NewNodeLifecycle creates the controller; Start launches its sweep loop.
func NewNodeLifecycle(env *sim.Env, srv *apiserver.Server, cfg NodeLifecycleConfig) *NodeLifecycle {
	return &NodeLifecycle{
		env:           env,
		srv:           srv,
		cfg:           cfg.withDefaults(),
		notReadySince: make(map[string]time.Duration),
	}
}

// Start launches the periodic sweep as a daemon proc (it must not keep
// run-to-quiescence simulations alive).
func (nl *NodeLifecycle) Start() {
	nl.proc = nl.env.GoDaemon("node-lifecycle", func(p *sim.Proc) {
		for {
			p.Sleep(nl.cfg.CheckInterval)
			nl.sweep()
		}
	})
}

// Stop terminates the sweep loop.
func (nl *NodeLifecycle) Stop() {
	if nl.proc != nil {
		nl.proc.Kill(nil)
	}
}

func (nl *NodeLifecycle) sweep() {
	now := nl.env.Now()
	nodes := apiserver.Nodes(nl.srv)
	for _, node := range nodes.List() {
		name := node.Name
		stale := now-node.Status.HeartbeatTime > nl.cfg.Grace
		if !stale {
			if !node.Status.Ready {
				_, _ = nodes.MutateStatus(name, func(n *api.Node) error {
					n.Status.Ready = true
					return nil
				})
			}
			delete(nl.notReadySince, name)
			continue
		}
		if _, known := nl.notReadySince[name]; !known {
			nl.notReadySince[name] = now
			if node.Status.Ready {
				_, _ = nodes.MutateStatus(name, func(n *api.Node) error {
					n.Status.Ready = false
					return nil
				})
			}
		}
		// Level-triggered past the timeout: pods that land on the dead node
		// after a first eviction pass (in-flight binds) are swept too.
		if now-nl.notReadySince[name] >= nl.cfg.EvictionTimeout {
			nl.evict(name)
		}
	}
}

// evict deletes every non-terminated pod bound to the dead node. Deletion —
// not a Failed status — is deliberate: it is the one signal every owner
// already handles (the replication manager replaces deleted replicas,
// KubeShare-Sched requeues sharePods whose bound pod vanished, DevMgr
// recovers vGPUs whose holder disappeared).
func (nl *NodeLifecycle) evict(nodeName string) {
	pods := apiserver.Pods(nl.srv)
	for _, pod := range pods.List() {
		if pod.Spec.NodeName != nodeName || pod.Terminated() {
			continue
		}
		if err := pods.Delete(pod.Name); err != nil && !apiserver.IsNotFound(err) {
			return // the sweep retries next interval
		}
	}
}

// Package deviceplugin implements the Kubernetes device plugin framework
// (§2.2 of the paper): vendors register plugins with the kubelet, the
// kubelet advertises their devices as opaque integer-counted extended
// resources, and at pod admission it picks device instances and asks the
// plugin to Allocate them.
//
// Two deliberate properties of the real framework are preserved because
// KubeShare's whole design responds to them: allocation requests carry only
// a count (no fractional amounts, no identity of the requesting pod's
// wishes), and the *kubelet*, not the scheduler, decides which physical
// device a pod gets (implicit late binding, §3.2).
package deviceplugin

import (
	"fmt"
	"sort"
	"strings"

	"kubeshare/internal/gpusim"
	"kubeshare/internal/kube/api"
)

// Device is one plugin-managed device instance.
type Device struct {
	ID      string
	Healthy bool
}

// AllocateResponse carries the container runtime settings the kubelet
// injects into containers using the device.
type AllocateResponse struct {
	Env map[string]string
}

// Plugin is the vendor-implemented side of the framework.
type Plugin interface {
	// ResourceName returns the extended resource the plugin manages, e.g.
	// "nvidia.com/gpu".
	ResourceName() string
	// ListDevices enumerates device instances (the ListAndWatch analogue;
	// the simulated devices are static, so a single list suffices).
	ListDevices() []Device
	// Allocate prepares the given device IDs for attachment and returns the
	// container settings.
	Allocate(ids []string) (AllocateResponse, error)
}

// Manager is the kubelet's plugin registry and allocation bookkeeper.
type Manager struct {
	plugins map[string]*pluginState
}

type pluginState struct {
	plugin Plugin
	// free and inUse partition healthy device IDs.
	free  []string
	inUse map[string][]string // consumer (pod UID) → device IDs
}

// NewManager returns an empty manager.
func NewManager() *Manager {
	return &Manager{plugins: make(map[string]*pluginState)}
}

// Register installs a plugin (the framework's registration phase). Device
// IDs are sorted for deterministic allocation order.
func (m *Manager) Register(p Plugin) error {
	name := p.ResourceName()
	if _, ok := m.plugins[name]; ok {
		return fmt.Errorf("deviceplugin: resource %q already registered", name)
	}
	st := &pluginState{plugin: p, inUse: make(map[string][]string)}
	for _, d := range p.ListDevices() {
		if d.Healthy {
			st.free = append(st.free, d.ID)
		}
	}
	sort.Strings(st.free)
	m.plugins[name] = st
	return nil
}

// Capacity returns the advertised extended-resource counts, which the
// kubelet merges into the node's allocatable resources.
func (m *Manager) Capacity() api.ResourceList {
	out := api.ResourceList{}
	for name, st := range m.plugins {
		out[name] = int64(len(st.free))
		for _, ids := range st.inUse {
			out[name] += int64(len(ids))
		}
	}
	return out
}

// Allocate reserves n devices of the named resource for consumer and
// returns the merged container settings. Mirroring the framework, the
// manager (not the caller) picks which instances — first-free in sorted
// order.
func (m *Manager) Allocate(consumer, resource string, n int64) (AllocateResponse, error) {
	st, ok := m.plugins[resource]
	if !ok {
		return AllocateResponse{}, fmt.Errorf("deviceplugin: unknown resource %q", resource)
	}
	if n <= 0 {
		return AllocateResponse{}, fmt.Errorf("deviceplugin: allocate %d of %q", n, resource)
	}
	if int64(len(st.free)) < n {
		return AllocateResponse{}, fmt.Errorf("deviceplugin: %q: want %d devices, %d free", resource, n, len(st.free))
	}
	ids := append([]string(nil), st.free[:n]...)
	st.free = st.free[n:]
	resp, err := st.plugin.Allocate(ids)
	if err != nil {
		// Return the instances to the pool on vendor failure.
		st.free = append(ids, st.free...)
		sort.Strings(st.free)
		return AllocateResponse{}, fmt.Errorf("deviceplugin: vendor allocate: %w", err)
	}
	st.inUse[consumer] = append(st.inUse[consumer], ids...)
	return resp, nil
}

// Free returns every device held by consumer across all plugins.
func (m *Manager) Free(consumer string) {
	for _, st := range m.plugins {
		if ids, ok := st.inUse[consumer]; ok {
			st.free = append(st.free, ids...)
			sort.Strings(st.free)
			delete(st.inUse, consumer)
		}
	}
}

// InUse returns the device IDs held by consumer for a resource (sorted).
func (m *Manager) InUse(consumer, resource string) []string {
	st, ok := m.plugins[resource]
	if !ok {
		return nil
	}
	ids := append([]string(nil), st.inUse[consumer]...)
	sort.Strings(ids)
	return ids
}

// EnvVisibleDevices is the environment variable the NVIDIA stack reads to
// decide device visibility inside a container.
const EnvVisibleDevices = "NVIDIA_VISIBLE_DEVICES"

// NvidiaPlugin exposes a node's simulated GPUs through the framework, as
// the NVIDIA k8s-device-plugin does: device IDs are the GPU UUIDs and
// Allocate returns NVIDIA_VISIBLE_DEVICES.
type NvidiaPlugin struct {
	devices []*gpusim.Device
}

// NewNvidiaPlugin wraps the node's GPUs.
func NewNvidiaPlugin(devices []*gpusim.Device) *NvidiaPlugin {
	return &NvidiaPlugin{devices: devices}
}

// ResourceName implements Plugin.
func (n *NvidiaPlugin) ResourceName() string { return api.ResourceGPU }

// ListDevices implements Plugin.
func (n *NvidiaPlugin) ListDevices() []Device {
	out := make([]Device, len(n.devices))
	for i, d := range n.devices {
		out[i] = Device{ID: d.UUID(), Healthy: true}
	}
	return out
}

// Allocate implements Plugin.
func (n *NvidiaPlugin) Allocate(ids []string) (AllocateResponse, error) {
	known := map[string]bool{}
	for _, d := range n.devices {
		known[d.UUID()] = true
	}
	for _, id := range ids {
		if !known[id] {
			return AllocateResponse{}, fmt.Errorf("nvidia plugin: unknown device %q", id)
		}
	}
	return AllocateResponse{Env: map[string]string{EnvVisibleDevices: strings.Join(ids, ",")}}, nil
}

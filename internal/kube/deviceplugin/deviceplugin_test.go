package deviceplugin

import (
	"errors"
	"strings"
	"testing"

	"kubeshare/internal/gpusim"
	"kubeshare/internal/kube/api"
	"kubeshare/internal/sim"
)

type fakePlugin struct {
	name    string
	devices []Device
	fail    bool
}

func (f *fakePlugin) ResourceName() string  { return f.name }
func (f *fakePlugin) ListDevices() []Device { return f.devices }
func (f *fakePlugin) Allocate(ids []string) (AllocateResponse, error) {
	if f.fail {
		return AllocateResponse{}, errors.New("vendor failure")
	}
	return AllocateResponse{Env: map[string]string{"IDS": strings.Join(ids, ",")}}, nil
}

func devices(ids ...string) []Device {
	out := make([]Device, len(ids))
	for i, id := range ids {
		out[i] = Device{ID: id, Healthy: true}
	}
	return out
}

func TestRegisterAndCapacity(t *testing.T) {
	m := NewManager()
	if err := m.Register(&fakePlugin{name: "x/dev", devices: devices("a", "b", "c")}); err != nil {
		t.Fatal(err)
	}
	if got := m.Capacity()["x/dev"]; got != 3 {
		t.Fatalf("capacity = %d", got)
	}
	if err := m.Register(&fakePlugin{name: "x/dev"}); err == nil {
		t.Fatal("duplicate registration accepted")
	}
}

func TestUnhealthyDevicesExcluded(t *testing.T) {
	m := NewManager()
	m.Register(&fakePlugin{name: "x/dev", devices: []Device{{ID: "a", Healthy: true}, {ID: "b", Healthy: false}}})
	if got := m.Capacity()["x/dev"]; got != 1 {
		t.Fatalf("capacity = %d", got)
	}
}

func TestAllocateAndFree(t *testing.T) {
	m := NewManager()
	m.Register(&fakePlugin{name: "x/dev", devices: devices("b", "a")})
	resp, err := m.Allocate("pod1", "x/dev", 1)
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic first-free in sorted order.
	if resp.Env["IDS"] != "a" {
		t.Fatalf("allocated %q, want a", resp.Env["IDS"])
	}
	if got := m.InUse("pod1", "x/dev"); len(got) != 1 || got[0] != "a" {
		t.Fatalf("in use = %v", got)
	}
	// Capacity stays constant; free pool shrinks.
	if m.Capacity()["x/dev"] != 2 {
		t.Fatal("capacity changed by allocation")
	}
	if _, err := m.Allocate("pod2", "x/dev", 2); err == nil {
		t.Fatal("over-allocation succeeded")
	}
	m.Free("pod1")
	if _, err := m.Allocate("pod2", "x/dev", 2); err != nil {
		t.Fatalf("allocate after free: %v", err)
	}
}

func TestAllocateErrors(t *testing.T) {
	m := NewManager()
	m.Register(&fakePlugin{name: "x/dev", devices: devices("a")})
	if _, err := m.Allocate("p", "y/dev", 1); err == nil {
		t.Fatal("unknown resource accepted")
	}
	if _, err := m.Allocate("p", "x/dev", 0); err == nil {
		t.Fatal("zero-count allocation accepted")
	}
}

func TestVendorFailureReturnsDevices(t *testing.T) {
	m := NewManager()
	m.Register(&fakePlugin{name: "x/dev", devices: devices("a", "b"), fail: true})
	if _, err := m.Allocate("p", "x/dev", 2); err == nil {
		t.Fatal("vendor failure not propagated")
	}
	// Devices must be back in the pool.
	m.plugins["x/dev"].plugin.(*fakePlugin).fail = false
	if _, err := m.Allocate("p", "x/dev", 2); err != nil {
		t.Fatalf("devices leaked after vendor failure: %v", err)
	}
}

func TestFreeUnknownConsumerIsNoop(t *testing.T) {
	m := NewManager()
	m.Register(&fakePlugin{name: "x/dev", devices: devices("a")})
	m.Free("ghost")
	if m.Capacity()["x/dev"] != 1 {
		t.Fatal("capacity corrupted")
	}
}

func TestNvidiaPluginVisibleDevices(t *testing.T) {
	env := sim.NewEnv()
	d0 := gpusim.NewDevice(env, gpusim.Config{Index: 0, NodeName: "n"})
	d1 := gpusim.NewDevice(env, gpusim.Config{Index: 1, NodeName: "n"})
	p := NewNvidiaPlugin([]*gpusim.Device{d0, d1})
	if p.ResourceName() != api.ResourceGPU {
		t.Fatalf("resource = %s", p.ResourceName())
	}
	list := p.ListDevices()
	if len(list) != 2 || !list[0].Healthy {
		t.Fatalf("list = %v", list)
	}
	resp, err := p.Allocate([]string{d1.UUID(), d0.UUID()})
	if err != nil {
		t.Fatal(err)
	}
	want := d1.UUID() + "," + d0.UUID()
	if resp.Env[EnvVisibleDevices] != want {
		t.Fatalf("env = %q, want %q", resp.Env[EnvVisibleDevices], want)
	}
	if _, err := p.Allocate([]string{"GPU-bogus"}); err == nil {
		t.Fatal("unknown UUID accepted")
	}
}

func TestManagerWithNvidiaEndToEnd(t *testing.T) {
	env := sim.NewEnv()
	var devs []*gpusim.Device
	for i := 0; i < 4; i++ {
		devs = append(devs, gpusim.NewDevice(env, gpusim.Config{Index: i, NodeName: "n"}))
	}
	m := NewManager()
	if err := m.Register(NewNvidiaPlugin(devs)); err != nil {
		t.Fatal(err)
	}
	if m.Capacity()[api.ResourceGPU] != 4 {
		t.Fatal("wrong GPU capacity")
	}
	resp, err := m.Allocate("pod1", api.ResourceGPU, 2)
	if err != nil {
		t.Fatal(err)
	}
	uuids := strings.Split(resp.Env[EnvVisibleDevices], ",")
	if len(uuids) != 2 {
		t.Fatalf("visible = %v", uuids)
	}
}

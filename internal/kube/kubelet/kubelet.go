// Package kubelet implements the node agent: it registers its node with the
// API server, watches for pods bound to the node, performs the device
// plugin allocation phase, starts containers through the runtime, and
// reports pod status. Deleting a pod object stops its containers and frees
// its devices.
package kubelet

import (
	"fmt"
	"time"

	"kubeshare/internal/kube/api"
	"kubeshare/internal/kube/apiserver"
	"kubeshare/internal/kube/deviceplugin"
	"kubeshare/internal/kube/runtime"
	"kubeshare/internal/kube/store"
	"kubeshare/internal/obs"
	"kubeshare/internal/sim"
)

// Config parameterizes a kubelet.
type Config struct {
	NodeName string
	// Capacity is the node's CPU/memory capacity; extended resources are
	// contributed by registered device plugins.
	Capacity api.ResourceList
	// Labels are stamped onto the Node object.
	Labels map[string]string
	// ImagePullLatency models image pull time per pod (cached layers make
	// this mostly constant in steady state).
	ImagePullLatency time.Duration
	// SyncLatency models the kubelet's reaction time to a newly bound pod.
	SyncLatency time.Duration
	// HeartbeatInterval is the node-lease renewal period; the lifecycle
	// controller declares the node NotReady when renewals stop.
	HeartbeatInterval time.Duration
}

// Default latencies, tuned so that whole-pod creation lands in the paper's
// "less than a few seconds" regime (Figure 10 dashed line).
const (
	DefaultImagePullLatency  = 250 * time.Millisecond
	DefaultSyncLatency       = 50 * time.Millisecond
	DefaultHeartbeatInterval = time.Second
)

// Kubelet is one node's agent.
type Kubelet struct {
	env       *sim.Env
	srv       *apiserver.Server
	cfg       Config
	devmgr    *deviceplugin.Manager
	runtime   *runtime.Runtime
	workers   map[string]*podWorker // pod name → worker
	reflector *apiserver.Reflector
	proc      *sim.Proc
	hbProc    *sim.Proc
	crashed   bool

	// Telemetry (no-op handles when the cluster runs without obs).
	tracer     *obs.Tracer
	recorder   *obs.Recorder
	syncs      *obs.Counter
	allocFails *obs.Counter
	syncHist   *obs.Histogram
}

// podWorker tracks one pod's containers on the node.
type podWorker struct {
	pod      *api.Pod
	handles  []*runtime.Handle
	proc     *sim.Proc
	stopping bool
	released bool
}

// New creates a kubelet. Call Start to register the node and begin syncing.
func New(env *sim.Env, srv *apiserver.Server, devmgr *deviceplugin.Manager, rt *runtime.Runtime, cfg Config) *Kubelet {
	if cfg.ImagePullLatency == 0 {
		cfg.ImagePullLatency = DefaultImagePullLatency
	}
	if cfg.SyncLatency == 0 {
		cfg.SyncLatency = DefaultSyncLatency
	}
	if cfg.HeartbeatInterval == 0 {
		cfg.HeartbeatInterval = DefaultHeartbeatInterval
	}
	if cfg.Capacity == nil {
		cfg.Capacity = api.ResourceList{api.ResourceCPU: 36000, api.ResourceMemory: 244 << 30}
	}
	o := srv.Obs()
	return &Kubelet{
		env:        env,
		srv:        srv,
		cfg:        cfg,
		devmgr:     devmgr,
		runtime:    rt,
		workers:    make(map[string]*podWorker),
		tracer:     o.Tracer(),
		recorder:   o.EventSource("kubelet/" + cfg.NodeName),
		syncs:      o.CounterVec("kubeshare_kubelet_pod_syncs_total", "node").With(cfg.NodeName),
		allocFails: o.CounterVec("kubeshare_kubelet_allocation_failures_total", "node").With(cfg.NodeName),
		syncHist:   o.HistogramVec("kubeshare_kubelet_pod_sync_seconds", "node").With(cfg.NodeName),
	}
}

// NodeName returns the node this kubelet manages.
func (k *Kubelet) NodeName() string { return k.cfg.NodeName }

// DeviceManager returns the kubelet's device plugin manager.
func (k *Kubelet) DeviceManager() *deviceplugin.Manager { return k.devmgr }

// Runtime returns the node's container runtime.
func (k *Kubelet) Runtime() *runtime.Runtime { return k.runtime }

// Start registers the Node object (capacity merged with plugin devices) and
// launches the sync loop.
func (k *Kubelet) Start() error {
	capacity := k.cfg.Capacity.Clone()
	capacity.Add(k.devmgr.Capacity())
	node := &api.Node{
		ObjectMeta: api.ObjectMeta{Name: k.cfg.NodeName, Labels: k.cfg.Labels},
		Status: api.NodeStatus{
			Capacity:      capacity,
			Allocatable:   capacity.Clone(),
			Ready:         true,
			HeartbeatTime: k.env.Now(),
		},
	}
	if _, err := apiserver.Nodes(k.srv).Create(node); err != nil {
		return fmt.Errorf("kubelet %s: register node: %w", k.cfg.NodeName, err)
	}
	k.startLoops()
	return nil
}

// startLoops launches the watch-driven sync loop and the heartbeat loop.
func (k *Kubelet) startLoops() {
	k.reflector = k.srv.NewNamedReflector("kubelet", "Pod", apiserver.WatchOptions{Replay: true})
	k.proc = k.env.Go("kubelet-"+k.cfg.NodeName, k.syncLoop)
	k.hbProc = k.env.GoDaemon("kubelet-hb-"+k.cfg.NodeName, k.heartbeatLoop)
}

// heartbeatLoop renews the node lease. A heartbeat also re-asserts Ready,
// so a node the lifecycle controller declared dead recovers as soon as its
// kubelet resumes renewing.
func (k *Kubelet) heartbeatLoop(p *sim.Proc) {
	for {
		p.Sleep(k.cfg.HeartbeatInterval)
		_, err := apiserver.Nodes(k.srv).MutateStatus(k.cfg.NodeName, func(n *api.Node) error {
			n.Status.HeartbeatTime = k.env.Now()
			n.Status.Ready = true
			return nil
		})
		if err != nil && !apiserver.IsNotFound(err) {
			panic(fmt.Sprintf("kubelet %s: heartbeat: %v", k.cfg.NodeName, err))
		}
	}
}

// Stop terminates the sync loop and kills every container on the node.
func (k *Kubelet) Stop() {
	if k.proc != nil {
		k.proc.Kill(nil)
	}
	if k.hbProc != nil {
		k.hbProc.Kill(nil)
	}
	if k.reflector != nil {
		k.reflector.Stop()
	}
	for name, w := range k.workers {
		k.teardown(name, w)
	}
}

// Crash models an abrupt node failure: every loop and container dies on the
// spot and no status is reported — the control plane must notice via the
// stale heartbeat. Device-plugin state is local, so shares held by the dead
// containers are released (a rebooted node starts with free devices).
func (k *Kubelet) Crash() {
	if k.crashed {
		return
	}
	k.crashed = true
	k.Stop()
	k.proc, k.hbProc, k.reflector = nil, nil, nil
	k.workers = make(map[string]*podWorker)
}

// Restart brings a crashed node back. Containers did not survive the
// reboot, so any pod object still claiming to run here is deleted (the
// controllers that own those pods reschedule or replace them), then the
// loops start fresh and heartbeats resume.
func (k *Kubelet) Restart() error {
	if !k.crashed {
		return fmt.Errorf("kubelet %s: restart without crash", k.cfg.NodeName)
	}
	k.crashed = false
	pods := apiserver.Pods(k.srv)
	for _, pod := range pods.List() {
		if pod.Spec.NodeName == k.cfg.NodeName && !pod.Terminated() {
			if err := pods.Delete(pod.Name); err != nil && !apiserver.IsNotFound(err) {
				return fmt.Errorf("kubelet %s: restart cleanup: %w", k.cfg.NodeName, err)
			}
		}
	}
	_, err := apiserver.Nodes(k.srv).MutateStatus(k.cfg.NodeName, func(n *api.Node) error {
		n.Status.Ready = true
		n.Status.HeartbeatTime = k.env.Now()
		return nil
	})
	if err != nil {
		return fmt.Errorf("kubelet %s: restart: %w", k.cfg.NodeName, err)
	}
	k.startLoops()
	return nil
}

// Crashed reports whether the node is currently down.
func (k *Kubelet) Crashed() bool { return k.crashed }

// KillPod kills a pod's containers in place (a daemon dying, not an API
// deletion): the worker observes the exits and reports the pod Failed, so
// watching controllers detect the death. Reports whether the pod was
// running here.
func (k *Kubelet) KillPod(name string) bool {
	w, ok := k.workers[name]
	if !ok {
		return false
	}
	if len(w.handles) > 0 {
		for _, h := range w.handles {
			k.runtime.Stop(h)
		}
		return true
	}
	// Still in the admission phase: fail it directly.
	if w.proc != nil && !w.proc.Finished() {
		w.proc.Kill(nil)
	}
	k.release(w)
	k.failPod(name, "killed")
	return true
}

func (k *Kubelet) syncLoop(p *sim.Proc) {
	for {
		ev, ok := k.reflector.Get(p)
		if !ok {
			return
		}
		pod, ok := ev.Object.(*api.Pod)
		if !ok {
			continue
		}
		switch ev.Type {
		case store.Added, store.Modified:
			if pod.Spec.NodeName != k.cfg.NodeName || pod.Terminated() {
				continue
			}
			if _, managed := k.workers[pod.Name]; managed {
				continue
			}
			// The event carries a snapshot; re-read the live object so a
			// stale "Running" event cannot re-admit a pod that has already
			// reached a terminal phase (duplicate container starts).
			if cur, err := apiserver.Pods(k.srv).Get(pod.Name); err != nil || cur.Terminated() || cur.UID != pod.UID {
				continue
			}
			k.admit(pod)
		case store.Deleted:
			if w, managed := k.workers[pod.Name]; managed {
				k.teardown(pod.Name, w)
			}
		}
	}
}

// admit runs the device allocation phase and starts the pod's containers in
// a dedicated worker proc.
func (k *Kubelet) admit(pod *api.Pod) {
	w := &podWorker{pod: pod}
	k.workers[pod.Name] = w
	w.proc = k.env.Go("pod-"+pod.Name, func(p *sim.Proc) {
		// The sync span covers bind-observed to all-containers-running; it
		// lands on the pod's causal chain (the owning sharePod's for
		// KubeShare-managed pods).
		span := k.tracer.Start("kubelet", "pod-sync", api.TraceKey(pod))
		syncStart := k.env.Now()
		p.Sleep(k.cfg.SyncLatency)
		// Device plugin allocation phase: extended resources only; the
		// kubelet picks instances, the plugin returns container settings.
		extraEnv := map[string]string{}
		for _, c := range pod.Spec.Containers {
			for res, n := range c.Requests {
				if res == api.ResourceCPU || res == api.ResourceMemory || n == 0 {
					continue
				}
				resp, err := k.devmgr.Allocate(pod.UID, res, n)
				if err != nil {
					k.allocFails.Inc()
					k.recorder.Eventf("Pod", pod.Name, obs.EventWarning, "FailedAllocation",
						"device allocation of %s: %v", res, err)
					k.failPod(pod.Name, fmt.Sprintf("device allocation: %v", err))
					k.release(w)
					span.EndNote("failed: device allocation")
					return
				}
				for key, v := range resp.Env {
					extraEnv[key] = v
				}
			}
		}
		p.Sleep(k.cfg.ImagePullLatency)
		for _, c := range pod.Spec.Containers {
			h, err := k.runtime.Start(pod, c, extraEnv)
			if err != nil {
				k.recorder.Eventf("Pod", pod.Name, obs.EventWarning, "FailedStart",
					"start container %s: %v", c.Name, err)
				k.failPod(pod.Name, fmt.Sprintf("start container %s: %v", c.Name, err))
				for _, started := range w.handles {
					k.runtime.Stop(started)
				}
				k.release(w)
				span.EndNote("failed: container start")
				return
			}
			w.handles = append(w.handles, h)
		}
		for _, h := range w.handles {
			p.Wait(h.Started())
		}
		k.setPhase(pod.Name, api.PodRunning, "", func(pp *api.Pod) {
			pp.Status.StartTime = k.env.Now()
		})
		k.syncs.Inc()
		k.syncHist.ObserveDurationExemplar(k.env.Now()-syncStart, api.TraceKey(pod), span.ID())
		k.recorder.Eventf("Pod", pod.Name, obs.EventNormal, "Started",
			"pod running on %s", k.cfg.NodeName)
		span.EndNote("pod=%s", pod.Name)
		// Wait for all containers; first error decides the pod outcome.
		// The worker entry stays in k.workers until the pod object is
		// deleted, so stale watch snapshots can never re-admit the pod.
		var firstErr error
		for _, h := range w.handles {
			if err, _ := p.Wait(h.Done()).(error); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		k.release(w)
		if w.stopping {
			return // pod object already deleted; no status to report
		}
		if firstErr != nil {
			k.failPod(pod.Name, firstErr.Error())
		} else {
			k.setPhase(pod.Name, api.PodSucceeded, "", func(pp *api.Pod) {
				pp.Status.FinishTime = k.env.Now()
			})
		}
	})
}

// teardown stops a pod's containers and releases its devices. It is invoked
// on pod deletion or kubelet shutdown; the worker proc observes stopping
// and skips status reporting. Idempotent: a teardown racing a second
// invocation (pod delete during shutdown) neither double-stops nor
// double-frees.
func (k *Kubelet) teardown(name string, w *podWorker) {
	if !w.stopping {
		w.stopping = true
		for _, h := range w.handles {
			k.runtime.Stop(h)
		}
		if len(w.handles) == 0 && w.proc != nil && !w.proc.Finished() {
			// Worker still in the admission phase: kill it directly.
			w.proc.Kill(nil)
		}
	}
	k.release(w)
	delete(k.workers, name)
}

// release frees the pod's device shares exactly once, no matter how many
// paths (worker exit, teardown, crash, kill) reach it.
func (k *Kubelet) release(w *podWorker) {
	if w.released {
		return
	}
	w.released = true
	k.devmgr.Free(w.pod.UID)
}

func (k *Kubelet) setPhase(name string, phase api.PodPhase, msg string, extra func(*api.Pod)) {
	_, err := apiserver.Pods(k.srv).MutateStatus(name, func(p *api.Pod) error {
		p.Status.Phase = phase
		p.Status.Message = msg
		if extra != nil {
			extra(p)
		}
		return nil
	})
	if err != nil && !apiserver.IsNotFound(err) {
		panic(fmt.Sprintf("kubelet %s: update %s: %v", k.cfg.NodeName, name, err))
	}
}

func (k *Kubelet) failPod(name, msg string) {
	k.setPhase(name, api.PodFailed, msg, func(pp *api.Pod) {
		pp.Status.FinishTime = k.env.Now()
	})
}

// Package kubelet implements the node agent: it registers its node with the
// API server, watches for pods bound to the node, performs the device
// plugin allocation phase, starts containers through the runtime, and
// reports pod status. Deleting a pod object stops its containers and frees
// its devices.
package kubelet

import (
	"fmt"
	"time"

	"kubeshare/internal/kube/api"
	"kubeshare/internal/kube/apiserver"
	"kubeshare/internal/kube/deviceplugin"
	"kubeshare/internal/kube/runtime"
	"kubeshare/internal/kube/store"
	"kubeshare/internal/sim"
)

// Config parameterizes a kubelet.
type Config struct {
	NodeName string
	// Capacity is the node's CPU/memory capacity; extended resources are
	// contributed by registered device plugins.
	Capacity api.ResourceList
	// Labels are stamped onto the Node object.
	Labels map[string]string
	// ImagePullLatency models image pull time per pod (cached layers make
	// this mostly constant in steady state).
	ImagePullLatency time.Duration
	// SyncLatency models the kubelet's reaction time to a newly bound pod.
	SyncLatency time.Duration
}

// Default latencies, tuned so that whole-pod creation lands in the paper's
// "less than a few seconds" regime (Figure 10 dashed line).
const (
	DefaultImagePullLatency = 250 * time.Millisecond
	DefaultSyncLatency      = 50 * time.Millisecond
)

// Kubelet is one node's agent.
type Kubelet struct {
	env     *sim.Env
	srv     *apiserver.Server
	cfg     Config
	devmgr  *deviceplugin.Manager
	runtime *runtime.Runtime
	workers map[string]*podWorker // pod name → worker
	watchQ  *sim.Queue[store.Event]
	proc    *sim.Proc
}

// podWorker tracks one pod's containers on the node.
type podWorker struct {
	pod      *api.Pod
	handles  []*runtime.Handle
	proc     *sim.Proc
	stopping bool
}

// New creates a kubelet. Call Start to register the node and begin syncing.
func New(env *sim.Env, srv *apiserver.Server, devmgr *deviceplugin.Manager, rt *runtime.Runtime, cfg Config) *Kubelet {
	if cfg.ImagePullLatency == 0 {
		cfg.ImagePullLatency = DefaultImagePullLatency
	}
	if cfg.SyncLatency == 0 {
		cfg.SyncLatency = DefaultSyncLatency
	}
	if cfg.Capacity == nil {
		cfg.Capacity = api.ResourceList{api.ResourceCPU: 36000, api.ResourceMemory: 244 << 30}
	}
	return &Kubelet{
		env:     env,
		srv:     srv,
		cfg:     cfg,
		devmgr:  devmgr,
		runtime: rt,
		workers: make(map[string]*podWorker),
	}
}

// NodeName returns the node this kubelet manages.
func (k *Kubelet) NodeName() string { return k.cfg.NodeName }

// DeviceManager returns the kubelet's device plugin manager.
func (k *Kubelet) DeviceManager() *deviceplugin.Manager { return k.devmgr }

// Runtime returns the node's container runtime.
func (k *Kubelet) Runtime() *runtime.Runtime { return k.runtime }

// Start registers the Node object (capacity merged with plugin devices) and
// launches the sync loop.
func (k *Kubelet) Start() error {
	capacity := k.cfg.Capacity.Clone()
	capacity.Add(k.devmgr.Capacity())
	node := &api.Node{
		ObjectMeta: api.ObjectMeta{Name: k.cfg.NodeName, Labels: k.cfg.Labels},
		Status: api.NodeStatus{
			Capacity:    capacity,
			Allocatable: capacity.Clone(),
			Ready:       true,
		},
	}
	if _, err := apiserver.Nodes(k.srv).Create(node); err != nil {
		return fmt.Errorf("kubelet %s: register node: %w", k.cfg.NodeName, err)
	}
	k.watchQ = k.srv.Watch("Pod", true)
	k.proc = k.env.Go("kubelet-"+k.cfg.NodeName, k.syncLoop)
	return nil
}

// Stop terminates the sync loop and kills every container on the node.
func (k *Kubelet) Stop() {
	if k.proc != nil {
		k.proc.Kill(nil)
	}
	for name, w := range k.workers {
		k.teardown(name, w)
	}
}

func (k *Kubelet) syncLoop(p *sim.Proc) {
	for {
		ev, ok := k.watchQ.Get(p)
		if !ok {
			return
		}
		pod, ok := ev.Object.(*api.Pod)
		if !ok {
			continue
		}
		switch ev.Type {
		case store.Added, store.Modified:
			if pod.Spec.NodeName != k.cfg.NodeName || pod.Terminated() {
				continue
			}
			if _, managed := k.workers[pod.Name]; managed {
				continue
			}
			// The event carries a snapshot; re-read the live object so a
			// stale "Running" event cannot re-admit a pod that has already
			// reached a terminal phase (duplicate container starts).
			if cur, err := apiserver.Pods(k.srv).Get(pod.Name); err != nil || cur.Terminated() || cur.UID != pod.UID {
				continue
			}
			k.admit(pod)
		case store.Deleted:
			if w, managed := k.workers[pod.Name]; managed {
				k.teardown(pod.Name, w)
			}
		}
	}
}

// admit runs the device allocation phase and starts the pod's containers in
// a dedicated worker proc.
func (k *Kubelet) admit(pod *api.Pod) {
	w := &podWorker{pod: pod}
	k.workers[pod.Name] = w
	w.proc = k.env.Go("pod-"+pod.Name, func(p *sim.Proc) {
		p.Sleep(k.cfg.SyncLatency)
		// Device plugin allocation phase: extended resources only; the
		// kubelet picks instances, the plugin returns container settings.
		extraEnv := map[string]string{}
		for _, c := range pod.Spec.Containers {
			for res, n := range c.Requests {
				if res == api.ResourceCPU || res == api.ResourceMemory || n == 0 {
					continue
				}
				resp, err := k.devmgr.Allocate(pod.UID, res, n)
				if err != nil {
					k.failPod(pod.Name, fmt.Sprintf("device allocation: %v", err))
					k.devmgr.Free(pod.UID)
					return
				}
				for key, v := range resp.Env {
					extraEnv[key] = v
				}
			}
		}
		p.Sleep(k.cfg.ImagePullLatency)
		for _, c := range pod.Spec.Containers {
			h, err := k.runtime.Start(pod, c, extraEnv)
			if err != nil {
				k.failPod(pod.Name, fmt.Sprintf("start container %s: %v", c.Name, err))
				for _, started := range w.handles {
					k.runtime.Stop(started)
				}
				k.devmgr.Free(pod.UID)
				return
			}
			w.handles = append(w.handles, h)
		}
		for _, h := range w.handles {
			p.Wait(h.Started())
		}
		k.setPhase(pod.Name, api.PodRunning, "", func(pp *api.Pod) {
			pp.Status.StartTime = k.env.Now()
		})
		// Wait for all containers; first error decides the pod outcome.
		// The worker entry stays in k.workers until the pod object is
		// deleted, so stale watch snapshots can never re-admit the pod.
		var firstErr error
		for _, h := range w.handles {
			if err, _ := p.Wait(h.Done()).(error); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		k.devmgr.Free(pod.UID)
		if w.stopping {
			return // pod object already deleted; no status to report
		}
		if firstErr != nil {
			k.failPod(pod.Name, firstErr.Error())
		} else {
			k.setPhase(pod.Name, api.PodSucceeded, "", func(pp *api.Pod) {
				pp.Status.FinishTime = k.env.Now()
			})
		}
	})
}

// teardown stops a pod's containers and releases its devices. It is invoked
// on pod deletion or kubelet shutdown; the worker proc observes stopping
// and skips status reporting.
func (k *Kubelet) teardown(name string, w *podWorker) {
	w.stopping = true
	for _, h := range w.handles {
		k.runtime.Stop(h)
	}
	if len(w.handles) == 0 && w.proc != nil && !w.proc.Finished() {
		// Worker still in the admission phase: kill it directly.
		w.proc.Kill(nil)
	}
	k.devmgr.Free(w.pod.UID)
	delete(k.workers, name)
}

func (k *Kubelet) setPhase(name string, phase api.PodPhase, msg string, extra func(*api.Pod)) {
	_, err := apiserver.Pods(k.srv).MutateStatus(name, func(p *api.Pod) error {
		p.Status.Phase = phase
		p.Status.Message = msg
		if extra != nil {
			extra(p)
		}
		return nil
	})
	if err != nil && !apiserver.IsNotFound(err) {
		panic(fmt.Sprintf("kubelet %s: update %s: %v", k.cfg.NodeName, name, err))
	}
}

func (k *Kubelet) failPod(name, msg string) {
	k.setPhase(name, api.PodFailed, msg, func(pp *api.Pod) {
		pp.Status.FinishTime = k.env.Now()
	})
}

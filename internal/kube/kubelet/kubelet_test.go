package kubelet

import (
	"testing"
	"time"

	"kubeshare/internal/gpusim"
	"kubeshare/internal/kube/api"
	"kubeshare/internal/kube/apiserver"
	"kubeshare/internal/kube/deviceplugin"
	"kubeshare/internal/kube/runtime"
	"kubeshare/internal/sim"
)

// rig builds one kubelet against an apiserver, with an optional GPU plugin,
// and no scheduler (tests bind pods manually via Spec.NodeName).
func rig(t *testing.T, gpus int) (*sim.Env, *apiserver.Server, *Kubelet, *runtime.ImageRegistry) {
	t.Helper()
	env := sim.NewEnv()
	srv := apiserver.New(env)
	images := runtime.NewImageRegistry()
	var devs []*gpusim.Device
	for i := 0; i < gpus; i++ {
		devs = append(devs, gpusim.NewDevice(env, gpusim.Config{Index: i, NodeName: "n0"}))
	}
	rt := runtime.New(env, images, devs, runtime.Config{StartLatency: 50 * time.Millisecond})
	devmgr := deviceplugin.NewManager()
	if gpus > 0 {
		if err := devmgr.Register(deviceplugin.NewNvidiaPlugin(devs)); err != nil {
			t.Fatal(err)
		}
	}
	kl := New(env, srv, devmgr, rt, Config{
		NodeName:         "n0",
		ImagePullLatency: 50 * time.Millisecond,
		SyncLatency:      10 * time.Millisecond,
	})
	if err := kl.Start(); err != nil {
		t.Fatal(err)
	}
	return env, srv, kl, images
}

func boundPod(name string, req api.ResourceList) *api.Pod {
	return &api.Pod{
		ObjectMeta: api.ObjectMeta{Name: name},
		Spec: api.PodSpec{
			NodeName:   "n0",
			Containers: []api.Container{{Name: "c", Image: "app", Requests: req}},
		},
	}
}

func TestNodeRegistrationIncludesPluginCapacity(t *testing.T) {
	_, srv, _, _ := rig(t, 4)
	node, err := apiserver.Nodes(srv).Get("n0")
	if err != nil {
		t.Fatal(err)
	}
	if node.Status.Allocatable[api.ResourceGPU] != 4 {
		t.Fatalf("allocatable GPUs = %d", node.Status.Allocatable[api.ResourceGPU])
	}
	if !node.Status.Ready {
		t.Fatal("node not ready")
	}
}

func TestPodRunsAndSucceeds(t *testing.T) {
	env, srv, _, images := rig(t, 0)
	images.Register("app", func(ctx *runtime.Ctx) error {
		ctx.Proc.Sleep(time.Second)
		return nil
	})
	env.Go("t", func(p *sim.Proc) {
		apiserver.Pods(srv).Create(boundPod("p1", nil))
	})
	env.Run()
	pod, _ := apiserver.Pods(srv).Get("p1")
	if pod.Status.Phase != api.PodSucceeded {
		t.Fatalf("phase = %s (%s)", pod.Status.Phase, pod.Status.Message)
	}
	if pod.Status.StartTime == 0 || pod.Status.FinishTime-pod.Status.StartTime != time.Second {
		t.Fatalf("timestamps: %+v", pod.Status)
	}
}

func TestPodForOtherNodeIgnored(t *testing.T) {
	env, srv, _, images := rig(t, 0)
	images.Register("app", func(ctx *runtime.Ctx) error { return nil })
	env.Go("t", func(p *sim.Proc) {
		pod := boundPod("elsewhere", nil)
		pod.Spec.NodeName = "n1"
		apiserver.Pods(srv).Create(pod)
	})
	env.RunUntil(5 * time.Second)
	pod, _ := apiserver.Pods(srv).Get("elsewhere")
	if pod.Status.Phase != "" {
		t.Fatalf("foreign pod processed: %s", pod.Status.Phase)
	}
}

func TestDeviceAllocationInjectsEnv(t *testing.T) {
	env, srv, kl, images := rig(t, 2)
	var visible string
	images.Register("app", func(ctx *runtime.Ctx) error {
		visible = ctx.Env[deviceplugin.EnvVisibleDevices]
		ctx.Proc.Sleep(time.Second)
		return nil
	})
	env.Go("t", func(p *sim.Proc) {
		apiserver.Pods(srv).Create(boundPod("g", api.ResourceList{api.ResourceGPU: 2}))
		p.Sleep(500 * time.Millisecond)
		// While running, both devices are held.
		if got := kl.DeviceManager().InUse("", api.ResourceGPU); len(got) != 0 {
			t.Errorf("empty consumer has devices: %v", got)
		}
	})
	env.Run()
	if visible == "" {
		t.Fatal("NVIDIA_VISIBLE_DEVICES not injected")
	}
	// All devices returned after completion.
	if got := kl.DeviceManager().Capacity()[api.ResourceGPU]; got != 2 {
		t.Fatalf("capacity corrupted: %d", got)
	}
}

func TestDeviceAllocationFailureFailsPod(t *testing.T) {
	env, srv, _, images := rig(t, 1)
	images.Register("app", func(ctx *runtime.Ctx) error { return nil })
	env.Go("t", func(p *sim.Proc) {
		apiserver.Pods(srv).Create(boundPod("greedy", api.ResourceList{api.ResourceGPU: 3}))
	})
	env.Run()
	pod, _ := apiserver.Pods(srv).Get("greedy")
	if pod.Status.Phase != api.PodFailed {
		t.Fatalf("phase = %s, want Failed (only 1 GPU on node)", pod.Status.Phase)
	}
}

func TestInstantFailureDoesNotReadmit(t *testing.T) {
	// Regression: a container failing in the same instant it starts used to
	// re-admit forever off stale watch snapshots.
	env, srv, _, images := rig(t, 0)
	runs := 0
	images.Register("app", func(ctx *runtime.Ctx) error {
		runs++
		return errInstant
	})
	env.Go("t", func(p *sim.Proc) {
		apiserver.Pods(srv).Create(boundPod("crash", nil))
	})
	env.RunUntil(time.Minute)
	if runs != 1 {
		t.Fatalf("container ran %d times, want 1", runs)
	}
	pod, _ := apiserver.Pods(srv).Get("crash")
	if pod.Status.Phase != api.PodFailed {
		t.Fatalf("phase = %s", pod.Status.Phase)
	}
}

var errInstant = errInstantT{}

type errInstantT struct{}

func (errInstantT) Error() string { return "instant failure" }

func TestDeletionDuringAdmissionFreesDevices(t *testing.T) {
	env, srv, kl, images := rig(t, 2)
	images.Register("app", func(ctx *runtime.Ctx) error {
		ctx.Proc.Hibernate()
		return nil
	})
	env.Go("t", func(p *sim.Proc) {
		apiserver.Pods(srv).Create(boundPod("doomed", api.ResourceList{api.ResourceGPU: 2}))
		p.Sleep(30 * time.Millisecond) // inside the sync+pull window
		apiserver.Pods(srv).Delete("doomed")
		p.Sleep(time.Second)
		// Devices must be free again for a fresh pod.
		apiserver.Pods(srv).Create(boundPod("next", api.ResourceList{api.ResourceGPU: 2}))
		p.Sleep(time.Second)
		next, _ := apiserver.Pods(srv).Get("next")
		if next.Status.Phase != api.PodRunning {
			t.Errorf("next pod phase %s; devices leaked by deleted pod", next.Status.Phase)
		}
		apiserver.Pods(srv).Delete("next")
	})
	env.Run()
	if got := kl.DeviceManager().Capacity()[api.ResourceGPU]; got != 2 {
		t.Fatalf("capacity corrupted: %d", got)
	}
}

func TestMultiContainerPodWaitsForAll(t *testing.T) {
	env, srv, _, images := rig(t, 0)
	images.Register("fast", func(ctx *runtime.Ctx) error { ctx.Proc.Sleep(time.Second); return nil })
	images.Register("slow", func(ctx *runtime.Ctx) error { ctx.Proc.Sleep(3 * time.Second); return nil })
	env.Go("t", func(p *sim.Proc) {
		pod := &api.Pod{
			ObjectMeta: api.ObjectMeta{Name: "multi"},
			Spec: api.PodSpec{
				NodeName: "n0",
				Containers: []api.Container{
					{Name: "a", Image: "fast"},
					{Name: "b", Image: "slow"},
				},
			},
		}
		apiserver.Pods(srv).Create(pod)
	})
	env.Run()
	pod, _ := apiserver.Pods(srv).Get("multi")
	if pod.Status.Phase != api.PodSucceeded {
		t.Fatalf("phase = %s", pod.Status.Phase)
	}
	if got := pod.Status.FinishTime - pod.Status.StartTime; got != 3*time.Second {
		t.Fatalf("pod finished after %v, want the slow container's 3s", got)
	}
}

func TestAllocationFailureReleasesGrantedDevices(t *testing.T) {
	// A pod whose second container cannot be allocated must release the
	// devices already granted to its first — otherwise a partially admitted
	// pod pins GPUs forever.
	env, srv, kl, images := rig(t, 2)
	images.Register("app", func(ctx *runtime.Ctx) error {
		ctx.Proc.Sleep(time.Second)
		return nil
	})
	env.Go("t", func(p *sim.Proc) {
		pod := &api.Pod{
			ObjectMeta: api.ObjectMeta{Name: "partial"},
			Spec: api.PodSpec{
				NodeName: "n0",
				Containers: []api.Container{
					{Name: "a", Image: "app", Requests: api.ResourceList{api.ResourceGPU: 1}},
					{Name: "b", Image: "app", Requests: api.ResourceList{api.ResourceGPU: 2}},
				},
			},
		}
		apiserver.Pods(srv).Create(pod)
		p.Sleep(time.Second)
		// Both GPUs must be free again: a follow-up pod wanting the whole
		// node admits cleanly.
		apiserver.Pods(srv).Create(boundPod("next", api.ResourceList{api.ResourceGPU: 2}))
	})
	env.Run()
	pod, _ := apiserver.Pods(srv).Get("partial")
	if pod.Status.Phase != api.PodFailed {
		t.Fatalf("partial pod phase = %s, want Failed", pod.Status.Phase)
	}
	next, _ := apiserver.Pods(srv).Get("next")
	if next.Status.Phase != api.PodSucceeded {
		t.Fatalf("next pod phase = %s (%s); granted devices leaked by the failed admission",
			next.Status.Phase, next.Status.Message)
	}
	if got := kl.DeviceManager().Capacity()[api.ResourceGPU]; got != 2 {
		t.Fatalf("capacity corrupted: %d", got)
	}
}

func TestContainerStartFailureStopsStartedSiblings(t *testing.T) {
	// When a later container fails to start, the already started siblings
	// must be stopped and the pod's devices freed.
	env, srv, _, images := rig(t, 1)
	siblingRan := false
	images.Register("hang", func(ctx *runtime.Ctx) error {
		siblingRan = true
		ctx.Proc.Sleep(time.Hour)
		return nil
	})
	env.Go("t", func(p *sim.Proc) {
		pod := &api.Pod{
			ObjectMeta: api.ObjectMeta{Name: "halfstart"},
			Spec: api.PodSpec{
				NodeName: "n0",
				Containers: []api.Container{
					{Name: "a", Image: "hang", Requests: api.ResourceList{api.ResourceGPU: 1}},
					{Name: "b", Image: "no-such-image"},
				},
			},
		}
		apiserver.Pods(srv).Create(pod)
		p.Sleep(2 * time.Second)
		apiserver.Pods(srv).Create(boundPod("next", api.ResourceList{api.ResourceGPU: 1}))
	})
	images.Register("app", func(ctx *runtime.Ctx) error { return nil })
	env.RunUntil(time.Minute)
	pod, _ := apiserver.Pods(srv).Get("halfstart")
	if pod.Status.Phase != api.PodFailed {
		t.Fatalf("phase = %s, want Failed", pod.Status.Phase)
	}
	// The sibling was stopped inside its start window — its entrypoint must
	// never have run (a leaked container would enter it 50ms later and hang).
	if siblingRan {
		t.Fatal("started sibling container kept running after start failure")
	}
	next, _ := apiserver.Pods(srv).Get("next")
	if next.Status.Phase != api.PodSucceeded {
		t.Fatalf("next pod phase = %s; device not freed after start failure", next.Status.Phase)
	}
}

func TestNodeFlapDoesNotDoubleSchedule(t *testing.T) {
	// A transient NotReady (flap) with the kubelet alive must not disturb a
	// running pod, and a crash/restart cycle must not re-admit the stale pod:
	// the restart deletes it and the container runs exactly once.
	env, srv, kl, images := rig(t, 0)
	runs := 0
	images.Register("app", func(ctx *runtime.Ctx) error {
		runs++
		ctx.Proc.Sleep(time.Hour)
		return nil
	})
	env.Go("t", func(p *sim.Proc) {
		apiserver.Pods(srv).Create(boundPod("p1", nil))
		p.Sleep(2 * time.Second)
		// Flap: someone marks the node NotReady; the next heartbeat
		// re-asserts Ready and nothing is rescheduled.
		apiserver.Nodes(srv).MutateStatus("n0", func(n *api.Node) error {
			n.Status.Ready = false
			return nil
		})
		p.Sleep(3 * time.Second)
		if n, _ := apiserver.Nodes(srv).Get("n0"); !n.Status.Ready {
			t.Error("heartbeat did not re-assert Ready after the flap")
		}
		if runs != 1 {
			t.Errorf("container ran %d times after flap, want 1", runs)
		}
		// Hard flap: crash and restart. The stale pod object is deleted on
		// restart, and the replayed watch must not re-admit it.
		kl.Crash()
		p.Sleep(time.Second)
		if err := kl.Restart(); err != nil {
			t.Errorf("restart: %v", err)
		}
		p.Sleep(5 * time.Second)
	})
	env.RunUntil(time.Minute)
	if _, err := apiserver.Pods(srv).Get("p1"); !apiserver.IsNotFound(err) {
		t.Fatal("stale pod object survived the node restart")
	}
	if runs != 1 {
		t.Fatalf("container ran %d times across the flap, want exactly 1", runs)
	}
}

func TestKubeletStopKillsEverything(t *testing.T) {
	env, srv, kl, images := rig(t, 0)
	images.Register("app", func(ctx *runtime.Ctx) error {
		ctx.Proc.Hibernate()
		return nil
	})
	env.Go("t", func(p *sim.Proc) {
		apiserver.Pods(srv).Create(boundPod("p1", nil))
		p.Sleep(time.Second)
		kl.Stop()
	})
	env.Run()
	if env.Now() > 10*time.Second {
		t.Fatalf("containers survived kubelet stop until %v", env.Now())
	}
}

// Package labels implements label sets and selectors for the miniature
// control plane. Selectors are the filtering vocabulary shared by the
// store's label index, the API server's filtered lists and watches, and the
// typed clients: a selector both *matches* label maps and *exposes its
// requirements* so the store can satisfy it from an index instead of a full
// scan.
package labels

import (
	"sort"
	"strings"
)

// Set is a map of label key → value with selector semantics: a Set used as
// a Selector matches labels that carry every key with the exact value.
type Set map[string]string

// Operator is a requirement's comparison operator.
type Operator string

// Requirement operators. Equals can be answered directly from the store's
// key→value posting lists; Exists from the union of a key's posting lists;
// NotEquals and DoesNotExist only filter (they never narrow an index scan).
const (
	Equals       Operator = "="
	NotEquals    Operator = "!="
	Exists       Operator = "exists"
	DoesNotExist Operator = "!exists"
)

// Requirement is one clause of a selector: key <op> value.
type Requirement struct {
	Key   string
	Op    Operator
	Value string // empty for Exists / DoesNotExist
}

// Matches reports whether the requirement holds for the given labels.
func (r Requirement) Matches(labels map[string]string) bool {
	v, ok := labels[r.Key]
	switch r.Op {
	case Equals:
		return ok && v == r.Value
	case NotEquals:
		return !ok || v != r.Value
	case Exists:
		return ok
	case DoesNotExist:
		return !ok
	}
	return false
}

// String renders the requirement in kubectl-style syntax.
func (r Requirement) String() string {
	switch r.Op {
	case Equals:
		return r.Key + "=" + r.Value
	case NotEquals:
		return r.Key + "!=" + r.Value
	case Exists:
		return r.Key
	case DoesNotExist:
		return "!" + r.Key
	}
	return ""
}

// Selector filters objects by their labels. Implementations must be
// immutable after construction — the store and watchers hold them across
// mutations.
type Selector interface {
	// Matches reports whether the labels satisfy every requirement.
	Matches(labels map[string]string) bool
	// Empty reports whether the selector matches everything.
	Empty() bool
	// Requirements returns the selector's clauses, for index planning.
	Requirements() []Requirement
	// String renders the selector in kubectl-style comma syntax.
	String() string
}

// selector is the standard conjunction-of-requirements implementation.
type selector []Requirement

// Everything returns a selector matching all objects.
func Everything() Selector { return selector(nil) }

// NewSelector builds a selector from explicit requirements.
func NewSelector(reqs ...Requirement) Selector {
	out := make(selector, len(reqs))
	copy(out, reqs)
	return out
}

// SelectorFromMap builds an equality selector requiring every key=value
// pair in m. Requirements are sorted by key for determinism. A nil or empty
// map selects everything.
func SelectorFromMap(m map[string]string) Selector {
	if len(m) == 0 {
		return Everything()
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make(selector, 0, len(keys))
	for _, k := range keys {
		out = append(out, Requirement{Key: k, Op: Equals, Value: m[k]})
	}
	return out
}

// HasKey returns a selector matching objects that carry the label key,
// whatever its value.
func HasKey(key string) Selector {
	return selector{{Key: key, Op: Exists}}
}

// Matches implements Selector.
func (s selector) Matches(labels map[string]string) bool {
	for _, r := range s {
		if !r.Matches(labels) {
			return false
		}
	}
	return true
}

// Empty implements Selector.
func (s selector) Empty() bool { return len(s) == 0 }

// Requirements implements Selector.
func (s selector) Requirements() []Requirement {
	out := make([]Requirement, len(s))
	copy(out, s)
	return out
}

// String implements Selector.
func (s selector) String() string {
	parts := make([]string, len(s))
	for i, r := range s {
		parts[i] = r.String()
	}
	return strings.Join(parts, ",")
}

// Matches lets a plain Set act as a Selector.
func (s Set) Matches(labels map[string]string) bool {
	for k, v := range s {
		if labels[k] != v {
			return false
		}
	}
	return true
}

// Empty implements Selector for Set.
func (s Set) Empty() bool { return len(s) == 0 }

// Requirements implements Selector for Set.
func (s Set) Requirements() []Requirement {
	return SelectorFromMap(s).Requirements()
}

// String implements Selector for Set.
func (s Set) String() string { return SelectorFromMap(s).String() }

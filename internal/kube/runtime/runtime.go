// Package runtime is the container runtime ("Docker") of the simulated
// cluster. It starts containers as simulation processes, injects their
// environment, and resolves the CUDA library handle the application sees.
//
// The CUDA resolution step is the LD_PRELOAD hook point: by default a
// container with NVIDIA_VISIBLE_DEVICES gets the raw driver; KubeShare's
// device manager installs a LibraryHook on the runtime that wraps the
// driver with the vGPU frontend for the containers it manages.
package runtime

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"kubeshare/internal/cuda"
	"kubeshare/internal/gpusim"
	"kubeshare/internal/kube/api"
	"kubeshare/internal/sim"
)

// Entrypoint is a container's main function. Returning nil exits 0; an
// error marks the container failed. The entrypoint must do all blocking
// through ctx.Proc.
type Entrypoint func(ctx *Ctx) error

// Ctx is the execution context handed to a container entrypoint.
type Ctx struct {
	// Proc is the container's simulation process.
	Proc *sim.Proc
	// Pod and Container are deep copies of the API objects.
	Pod       *api.Pod
	Container api.Container
	// Env is the merged environment (spec env + device allocations).
	Env map[string]string
	// CUDA is the device library handle, nil when no device is visible.
	// Which implementation backs it is the runtime's LibraryHook decision.
	CUDA cuda.API
}

// ImageRegistry maps image names to entrypoints — the stand-in for a
// container image store.
type ImageRegistry struct {
	entries map[string]Entrypoint
}

// NewImageRegistry returns an empty registry.
func NewImageRegistry() *ImageRegistry {
	return &ImageRegistry{entries: make(map[string]Entrypoint)}
}

// Register binds an image name to an entrypoint, replacing any previous
// binding (retagging).
func (r *ImageRegistry) Register(image string, entry Entrypoint) {
	r.entries[image] = entry
}

// Lookup resolves an image name.
func (r *ImageRegistry) Lookup(image string) (Entrypoint, bool) {
	e, ok := r.entries[image]
	return e, ok
}

// LibraryHook lets an agent substitute the CUDA library a container loads.
// base is the raw driver for the container's first visible device (nil when
// none). Returning nil falls through to base.
type LibraryHook func(pod *api.Pod, c api.Container, base cuda.API) cuda.API

// State is a container's lifecycle state.
type State string

// Container states.
const (
	StateCreating State = "Creating"
	StateRunning  State = "Running"
	StateExited   State = "Exited"
)

// Config parameterizes the runtime's latency model.
type Config struct {
	// StartLatency models container creation (filesystem, cgroups, runtime
	// setup). The paper's Figure 10 dashed line puts whole-pod creation at
	// roughly a second; container start is its dominant term.
	StartLatency time.Duration
}

// DefaultStartLatency is used when Config.StartLatency is zero.
const DefaultStartLatency = 800 * time.Millisecond

// Runtime starts and stops containers on one node.
type Runtime struct {
	env     *sim.Env
	images  *ImageRegistry
	cfg     Config
	devices map[string]*gpusim.Device // UUID → device
	hooks   []LibraryHook
	nextID  int
}

// New returns a runtime for a node holding the given GPUs.
func New(env *sim.Env, images *ImageRegistry, devices []*gpusim.Device, cfg Config) *Runtime {
	if cfg.StartLatency == 0 {
		cfg.StartLatency = DefaultStartLatency
	}
	byUUID := make(map[string]*gpusim.Device, len(devices))
	for _, d := range devices {
		byUUID[d.UUID()] = d
	}
	return &Runtime{env: env, images: images, cfg: cfg, devices: byUUID}
}

// AddLibraryHook installs a CUDA library interposition hook. Hooks are
// consulted last-registered-first; the first non-nil result wins.
func (r *Runtime) AddLibraryHook(h LibraryHook) { r.hooks = append(r.hooks, h) }

// Device returns the node GPU with the given UUID.
func (r *Runtime) Device(uuid string) (*gpusim.Device, bool) {
	d, ok := r.devices[uuid]
	return d, ok
}

// Handle tracks one running container.
type Handle struct {
	ID      string
	state   State
	exitErr error
	proc    *sim.Proc
	started *sim.Event
	done    *sim.Event
	cudaAPI cuda.API
}

// State returns the container's lifecycle state.
func (h *Handle) State() State { return h.state }

// ExitErr returns the entrypoint's error (nil on success); meaningful once
// Done has fired.
func (h *Handle) ExitErr() error { return h.exitErr }

// Started fires when the entrypoint begins executing.
func (h *Handle) Started() *sim.Event { return h.started }

// Done fires when the container exits (normally or killed).
func (h *Handle) Done() *sim.Event { return h.done }

// errContainerKilled marks externally stopped containers.
var errContainerKilled = errors.New("runtime: container killed")

// Start launches a container for pod/c with the merged environment extraEnv
// (device allocations) layered over the spec env. The returned handle's
// Done event fires on exit.
func (r *Runtime) Start(pod *api.Pod, c api.Container, extraEnv map[string]string) (*Handle, error) {
	entry, ok := r.images.Lookup(c.Image)
	if !ok {
		return nil, fmt.Errorf("runtime: image %q not found", c.Image)
	}
	env := map[string]string{}
	for k, v := range c.Env {
		env[k] = v
	}
	for k, v := range extraEnv {
		env[k] = v
	}
	r.nextID++
	h := &Handle{
		ID:      fmt.Sprintf("ctr-%s-%s-%d", pod.Name, c.Name, r.nextID),
		state:   StateCreating,
		started: sim.NewEvent(r.env),
		done:    sim.NewEvent(r.env),
	}
	h.proc = r.env.Go(h.ID, func(p *sim.Proc) {
		defer func() {
			h.state = StateExited
			if h.cudaAPI != nil {
				h.cudaAPI.Close(p)
			}
			if p.Killed() && h.exitErr == nil {
				h.exitErr = errContainerKilled
			}
			// A container killed before its entrypoint ran never fired
			// Started; release those waiters too (Trigger is idempotent).
			h.started.Trigger(h.exitErr)
			h.done.Trigger(h.exitErr)
		}()
		p.Sleep(r.cfg.StartLatency)
		capi, err := r.resolveCUDA(pod, c, env, h.ID)
		if err != nil {
			h.exitErr = err
			return
		}
		h.cudaAPI = capi
		h.state = StateRunning
		h.started.Trigger(nil)
		h.exitErr = entry(&Ctx{Proc: p, Pod: pod, Container: c, Env: env, CUDA: capi})
	})
	return h, nil
}

// resolveCUDA builds the library handle a container loads: nil without
// visible devices, the raw driver otherwise, possibly replaced by a hook.
func (r *Runtime) resolveCUDA(pod *api.Pod, c api.Container, env map[string]string, owner string) (cuda.API, error) {
	visible := env["NVIDIA_VISIBLE_DEVICES"]
	var base cuda.API
	if visible != "" && visible != "none" {
		uuid := strings.Split(visible, ",")[0]
		dev, ok := r.devices[uuid]
		if !ok {
			return nil, fmt.Errorf("runtime: NVIDIA_VISIBLE_DEVICES names unknown device %q", uuid)
		}
		base = cuda.Open(dev, owner)
	}
	for i := len(r.hooks) - 1; i >= 0; i-- {
		if api := r.hooks[i](pod, c, base); api != nil {
			return api, nil
		}
	}
	return base, nil
}

// Stop kills a container; its Done event fires with a kill error. Stopping
// an exited container is a no-op.
func (r *Runtime) Stop(h *Handle) {
	if h.state == StateExited {
		return
	}
	h.proc.Kill(errContainerKilled)
}

// IsKilled reports whether err marks an externally stopped container.
func IsKilled(err error) bool { return errors.Is(err, errContainerKilled) }

package runtime

import (
	"errors"
	"testing"
	"time"

	"kubeshare/internal/cuda"
	"kubeshare/internal/gpusim"
	"kubeshare/internal/kube/api"
	"kubeshare/internal/sim"
)

func testRig(env *sim.Env, gpus int) (*Runtime, []*gpusim.Device) {
	images := NewImageRegistry()
	var devs []*gpusim.Device
	for i := 0; i < gpus; i++ {
		devs = append(devs, gpusim.NewDevice(env, gpusim.Config{Index: i, NodeName: "n"}))
	}
	return New(env, images, devs, Config{StartLatency: 100 * time.Millisecond}), devs
}

func pod(name string) *api.Pod {
	return &api.Pod{ObjectMeta: api.ObjectMeta{Name: name}}
}

func TestImageRegistryLookupAndRetag(t *testing.T) {
	r := NewImageRegistry()
	if _, ok := r.Lookup("missing"); ok {
		t.Fatal("lookup of missing image succeeded")
	}
	r.Register("img", func(*Ctx) error { return errors.New("v1") })
	r.Register("img", func(*Ctx) error { return errors.New("v2") })
	e, ok := r.Lookup("img")
	if !ok || e(nil).Error() != "v2" {
		t.Fatal("retag did not replace the entrypoint")
	}
}

func TestStartRunsEntrypointAfterLatency(t *testing.T) {
	env := sim.NewEnv()
	rt, _ := testRig(env, 0)
	var startedAt time.Duration
	rt.images.Register("app", func(ctx *Ctx) error {
		startedAt = env.Now()
		return nil
	})
	h, err := rt.Start(pod("p"), api.Container{Name: "c", Image: "app"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	env.Run()
	if startedAt != 100*time.Millisecond {
		t.Fatalf("entrypoint at %v, want 100ms", startedAt)
	}
	if h.State() != StateExited || h.ExitErr() != nil {
		t.Fatalf("state=%v err=%v", h.State(), h.ExitErr())
	}
}

func TestUnknownImageFailsFast(t *testing.T) {
	env := sim.NewEnv()
	rt, _ := testRig(env, 0)
	if _, err := rt.Start(pod("p"), api.Container{Name: "c", Image: "ghost"}, nil); err == nil {
		t.Fatal("unknown image accepted")
	}
}

func TestEnvMergeExtraWins(t *testing.T) {
	env := sim.NewEnv()
	rt, _ := testRig(env, 0)
	var got map[string]string
	rt.images.Register("app", func(ctx *Ctx) error { got = ctx.Env; return nil })
	c := api.Container{Name: "c", Image: "app", Env: map[string]string{"A": "spec", "B": "spec"}}
	rt.Start(pod("p"), c, map[string]string{"B": "alloc", "C": "alloc"})
	env.Run()
	if got["A"] != "spec" || got["B"] != "alloc" || got["C"] != "alloc" {
		t.Fatalf("env = %v", got)
	}
}

func TestCUDAResolution(t *testing.T) {
	env := sim.NewEnv()
	rt, devs := testRig(env, 2)
	var info cuda.DeviceInfo
	var had bool
	rt.images.Register("gpu", func(ctx *Ctx) error {
		had = ctx.CUDA != nil
		if had {
			info = ctx.CUDA.Device()
		}
		return nil
	})
	extra := map[string]string{"NVIDIA_VISIBLE_DEVICES": devs[1].UUID()}
	rt.Start(pod("p"), api.Container{Name: "c", Image: "gpu"}, extra)
	env.Run()
	if !had || info.UUID != devs[1].UUID() {
		t.Fatalf("CUDA resolution wrong: had=%v uuid=%s", had, info.UUID)
	}
}

func TestNoVisibleDevicesMeansNilCUDA(t *testing.T) {
	env := sim.NewEnv()
	rt, _ := testRig(env, 2)
	sawNil := false
	rt.images.Register("cpu", func(ctx *Ctx) error { sawNil = ctx.CUDA == nil; return nil })
	rt.Start(pod("p"), api.Container{Name: "c", Image: "cpu"}, nil)
	env.Run()
	if !sawNil {
		t.Fatal("container without visible devices got a CUDA handle")
	}
}

func TestUnknownUUIDFailsContainer(t *testing.T) {
	env := sim.NewEnv()
	rt, _ := testRig(env, 1)
	rt.images.Register("gpu", func(ctx *Ctx) error { return nil })
	h, err := rt.Start(pod("p"), api.Container{Name: "c", Image: "gpu"},
		map[string]string{"NVIDIA_VISIBLE_DEVICES": "GPU-bogus"})
	if err != nil {
		t.Fatal(err)
	}
	env.Run()
	if h.ExitErr() == nil {
		t.Fatal("bogus UUID did not fail the container")
	}
}

// hookAPI wraps a base API to observe interposition.
type hookAPI struct {
	cuda.API
	launches int
}

func (h *hookAPI) LaunchKernel(p *sim.Proc, work time.Duration) error {
	h.launches++
	return h.API.LaunchKernel(p, work)
}

func TestLibraryHookInterposes(t *testing.T) {
	env := sim.NewEnv()
	rt, devs := testRig(env, 1)
	var wrapped *hookAPI
	rt.AddLibraryHook(func(pod *api.Pod, c api.Container, base cuda.API) cuda.API {
		if base == nil {
			return nil
		}
		wrapped = &hookAPI{API: base}
		return wrapped
	})
	rt.images.Register("gpu", func(ctx *Ctx) error {
		return ctx.CUDA.LaunchKernel(ctx.Proc, time.Millisecond)
	})
	rt.Start(pod("p"), api.Container{Name: "c", Image: "gpu"},
		map[string]string{"NVIDIA_VISIBLE_DEVICES": devs[0].UUID()})
	env.Run()
	if wrapped == nil || wrapped.launches != 1 {
		t.Fatalf("hook not interposed (wrapped=%v)", wrapped)
	}
}

func TestHookLastRegisteredWins(t *testing.T) {
	env := sim.NewEnv()
	rt, devs := testRig(env, 1)
	order := ""
	rt.AddLibraryHook(func(_ *api.Pod, _ api.Container, base cuda.API) cuda.API {
		order += "first"
		return base
	})
	rt.AddLibraryHook(func(_ *api.Pod, _ api.Container, base cuda.API) cuda.API {
		order += "second"
		return base // non-nil: wins, first hook never runs
	})
	rt.images.Register("gpu", func(ctx *Ctx) error { return nil })
	rt.Start(pod("p"), api.Container{Name: "c", Image: "gpu"},
		map[string]string{"NVIDIA_VISIBLE_DEVICES": devs[0].UUID()})
	env.Run()
	if order != "second" {
		t.Fatalf("hook order = %q", order)
	}
}

func TestStopKillsAndFiresDone(t *testing.T) {
	env := sim.NewEnv()
	rt, _ := testRig(env, 0)
	rt.images.Register("forever", func(ctx *Ctx) error {
		ctx.Proc.Hibernate()
		return nil
	})
	h, _ := rt.Start(pod("p"), api.Container{Name: "c", Image: "forever"}, nil)
	env.Go("stopper", func(p *sim.Proc) {
		p.Wait(h.Started())
		rt.Stop(h)
	})
	env.Run()
	if h.State() != StateExited || !IsKilled(h.ExitErr()) {
		t.Fatalf("state=%v err=%v", h.State(), h.ExitErr())
	}
}

func TestStopDuringCreationReleasesWaiters(t *testing.T) {
	env := sim.NewEnv()
	rt, _ := testRig(env, 0)
	rt.images.Register("app", func(ctx *Ctx) error { return nil })
	h, _ := rt.Start(pod("p"), api.Container{Name: "c", Image: "app"}, nil)
	var released bool
	env.Go("waiter", func(p *sim.Proc) {
		p.Wait(h.Started())
		released = true
	})
	env.Go("stopper", func(p *sim.Proc) {
		p.Sleep(10 * time.Millisecond) // during the 100ms start latency
		rt.Stop(h)
	})
	env.Run()
	if !released {
		t.Fatal("Started waiter stuck after stop-during-creation")
	}
	if !IsKilled(h.ExitErr()) {
		t.Fatalf("err = %v", h.ExitErr())
	}
}

func TestStopExitedIsNoop(t *testing.T) {
	env := sim.NewEnv()
	rt, _ := testRig(env, 0)
	rt.images.Register("app", func(ctx *Ctx) error { return nil })
	h, _ := rt.Start(pod("p"), api.Container{Name: "c", Image: "app"}, nil)
	env.Run()
	rt.Stop(h) // must not panic
	if h.ExitErr() != nil {
		t.Fatalf("err = %v", h.ExitErr())
	}
}

func TestCUDAClosedOnExit(t *testing.T) {
	env := sim.NewEnv()
	rt, devs := testRig(env, 1)
	rt.images.Register("gpu", func(ctx *Ctx) error {
		_, err := ctx.CUDA.MemAlloc(ctx.Proc, 1<<20)
		return err
	})
	rt.Start(pod("p"), api.Container{Name: "c", Image: "gpu"},
		map[string]string{"NVIDIA_VISIBLE_DEVICES": devs[0].UUID()})
	env.Run()
	if devs[0].MemoryUsed() != 0 {
		t.Fatalf("device memory leaked: %d", devs[0].MemoryUsed())
	}
	if devs[0].ActiveContexts() != 0 {
		t.Fatal("context leaked after exit")
	}
}

// Package scheduler implements the default kube-scheduler: it watches for
// unbound pods, filters nodes on resource fit (including extended resources
// as opaque aggregate counts) and node selectors, scores by least
// allocation, and binds.
//
// Deliberately preserved limitation (§3.1–3.2 of the paper): the scheduler
// sees only each node's *total* extended-resource capacity — never the
// identity or per-device load of individual GPUs — and has no say in which
// physical device the kubelet attaches. KubeShare exists because of this.
package scheduler

import (
	"sort"
	"time"

	"kubeshare/internal/kube/api"
	"kubeshare/internal/kube/apiserver"
	"kubeshare/internal/kube/store"
	"kubeshare/internal/sim"
)

// Config parameterizes the scheduler.
type Config struct {
	// BindLatency models the per-pod scheduling cycle (queue pop, filter,
	// score, bind API call).
	BindLatency time.Duration
}

// DefaultBindLatency approximates the default scheduler's per-pod cycle.
const DefaultBindLatency = 10 * time.Millisecond

// Scheduler is the cluster's pod scheduler.
type Scheduler struct {
	env  *sim.Env
	srv  *apiserver.Server
	cfg  Config
	proc *sim.Proc

	nodes map[string]*api.Node
	pods  map[string]*api.Pod
	// pendingDirty marks that the pending set may have schedulable pods.
	wake *sim.Queue[struct{}]
}

// New creates a scheduler. Call Start to begin scheduling.
func New(env *sim.Env, srv *apiserver.Server, cfg Config) *Scheduler {
	if cfg.BindLatency == 0 {
		cfg.BindLatency = DefaultBindLatency
	}
	return &Scheduler{
		env:   env,
		srv:   srv,
		cfg:   cfg,
		nodes: make(map[string]*api.Node),
		pods:  make(map[string]*api.Pod),
		wake:  sim.NewQueue[struct{}](env),
	}
}

// Start launches the watch and scheduling loops.
func (s *Scheduler) Start() {
	podQ := s.srv.Watch("Pod", true)
	nodeQ := s.srv.Watch("Node", true)
	s.env.Go("kube-scheduler-watch-pods", func(p *sim.Proc) {
		for {
			ev, ok := podQ.Get(p)
			if !ok {
				return
			}
			pod := ev.Object.(*api.Pod)
			if ev.Type == store.Deleted {
				delete(s.pods, pod.Name)
			} else {
				s.pods[pod.Name] = pod
			}
			s.kick()
		}
	})
	s.env.Go("kube-scheduler-watch-nodes", func(p *sim.Proc) {
		for {
			ev, ok := nodeQ.Get(p)
			if !ok {
				return
			}
			node := ev.Object.(*api.Node)
			if ev.Type == store.Deleted {
				delete(s.nodes, node.Name)
			} else {
				s.nodes[node.Name] = node
			}
			s.kick()
		}
	})
	s.proc = s.env.Go("kube-scheduler", s.loop)
}

// kick nudges the scheduling loop (coalesced: at most one pending wakeup).
func (s *Scheduler) kick() {
	if s.wake.Len() == 0 {
		s.wake.Put(struct{}{})
	}
}

func (s *Scheduler) loop(p *sim.Proc) {
	for {
		if _, ok := s.wake.Get(p); !ok {
			return
		}
		for {
			pod := s.nextPending()
			if pod == nil {
				break
			}
			p.Sleep(s.cfg.BindLatency)
			s.scheduleOne(pod)
		}
	}
}

// nextPending returns the oldest unbound, unscheduled pod that fits some
// node right now, or nil.
func (s *Scheduler) nextPending() *api.Pod {
	var candidates []*api.Pod
	for _, pod := range s.pods {
		if pod.Spec.NodeName == "" && !pod.Terminated() {
			candidates = append(candidates, pod)
		}
	}
	sort.Slice(candidates, func(i, j int) bool {
		a, b := candidates[i], candidates[j]
		if a.CreationTime != b.CreationTime {
			return a.CreationTime < b.CreationTime
		}
		return a.Name < b.Name
	})
	for _, pod := range candidates {
		if s.pickNode(pod) != "" {
			return pod
		}
	}
	return nil
}

// committed sums the requests of non-terminated pods assigned to node.
func (s *Scheduler) committed(node string) api.ResourceList {
	total := api.ResourceList{}
	for _, pod := range s.pods {
		if pod.Spec.NodeName == node && !pod.Terminated() {
			total.Add(pod.Spec.Requests())
		}
	}
	return total
}

// pickNode runs filter + score and returns the chosen node name ("" when no
// node fits).
func (s *Scheduler) pickNode(pod *api.Pod) string {
	need := pod.Spec.Requests()
	type scored struct {
		name  string
		score float64
	}
	var fits []scored
	for name, node := range s.nodes {
		if !node.Status.Ready || !node.MatchesSelector(pod.Spec.NodeSelector) {
			continue
		}
		free := node.Status.Allocatable.Clone()
		free.Sub(s.committed(name))
		if !free.Fits(need) {
			continue
		}
		// Least-allocated scoring: prefer the node with the most residual
		// CPU fraction after placement (ties broken by name for
		// determinism).
		alloc := node.Status.Allocatable
		score := 0.0
		if alloc[api.ResourceCPU] > 0 {
			score = float64(free[api.ResourceCPU]-need[api.ResourceCPU]) / float64(alloc[api.ResourceCPU])
		}
		fits = append(fits, scored{name, score})
	}
	if len(fits) == 0 {
		return ""
	}
	sort.Slice(fits, func(i, j int) bool {
		if fits[i].score != fits[j].score {
			return fits[i].score > fits[j].score
		}
		return fits[i].name < fits[j].name
	})
	return fits[0].name
}

// scheduleOne binds pod to its chosen node.
func (s *Scheduler) scheduleOne(pod *api.Pod) {
	node := s.pickNode(pod)
	if node == "" {
		return
	}
	pods := apiserver.Pods(s.srv)
	updated, err := pods.Mutate(pod.Name, func(p *api.Pod) error {
		if p.Spec.NodeName == "" {
			p.Spec.NodeName = node
		}
		return nil
	})
	if err != nil {
		delete(s.pods, pod.Name) // deleted while in queue
		return
	}
	// ScheduledTime is status; written through the status subresource so the
	// bind above never races with kubelet phase reports.
	if updated, err = pods.MutateStatus(pod.Name, func(p *api.Pod) error {
		if p.Status.ScheduledTime == 0 {
			p.Status.ScheduledTime = s.env.Now()
		}
		return nil
	}); err != nil {
		delete(s.pods, pod.Name)
		return
	}
	s.pods[pod.Name] = updated
}

// Package scheduler implements the default kube-scheduler: it watches for
// unbound pods, filters nodes on resource fit (including extended resources
// as opaque aggregate counts) and node selectors, scores by least
// allocation, and binds.
//
// Deliberately preserved limitation (§3.1–3.2 of the paper): the scheduler
// sees only each node's *total* extended-resource capacity — never the
// identity or per-device load of individual GPUs — and has no say in which
// physical device the kubelet attaches. KubeShare exists because of this.
package scheduler

import (
	"sort"
	"time"

	"kubeshare/internal/kube/api"
	"kubeshare/internal/kube/apiserver"
	"kubeshare/internal/kube/store"
	"kubeshare/internal/obs"
	"kubeshare/internal/sim"
)

// Config parameterizes the scheduler.
type Config struct {
	// BindLatency models the per-pod scheduling cycle (queue pop, filter,
	// score, bind API call).
	BindLatency time.Duration
}

// DefaultBindLatency approximates the default scheduler's per-pod cycle.
const DefaultBindLatency = 10 * time.Millisecond

// Scheduler is the cluster's pod scheduler.
type Scheduler struct {
	env        *sim.Env
	srv        *apiserver.Server
	cfg        Config
	proc       *sim.Proc
	reflectors []*apiserver.Reflector
	watchProcs []*sim.Proc

	nodes map[string]*api.Node
	pods  map[string]*api.Pod
	// Incrementally maintained views of s.pods, updated from watch deltas so
	// the scheduling loop never rescans the full pod set:
	//   committed — per-node sum of requests of bound, non-terminated pods;
	//   pending   — unbound, non-terminated pods awaiting placement;
	//   order     — pending sorted by (CreationTime, Name), rebuilt lazily.
	committed map[string]api.ResourceList
	pending   map[string]*api.Pod
	order     []*api.Pod
	dirty     bool
	wake      *sim.Queue[struct{}]

	// Telemetry (no-op handles when the cluster runs without obs).
	tracer   *obs.Tracer
	binds    *obs.Counter
	depth    *obs.Gauge
	bindHist *obs.Histogram
}

// New creates a scheduler. Call Start to begin scheduling.
func New(env *sim.Env, srv *apiserver.Server, cfg Config) *Scheduler {
	if cfg.BindLatency == 0 {
		cfg.BindLatency = DefaultBindLatency
	}
	rt := srv.Obs()
	return &Scheduler{
		env:       env,
		srv:       srv,
		cfg:       cfg,
		nodes:     make(map[string]*api.Node),
		pods:      make(map[string]*api.Pod),
		committed: make(map[string]api.ResourceList),
		pending:   make(map[string]*api.Pod),
		wake:      sim.NewQueue[struct{}](env),
		tracer:    rt.Tracer(),
		binds:     rt.Counter("kubeshare_scheduler_binds_total"),
		depth:     rt.Gauge("kubeshare_scheduler_pending_pods"),
		bindHist:  rt.Histogram("kubeshare_scheduler_bind_latency_seconds"),
	}
}

// setPod is the single mutation point for s.pods; nil removes. It keeps the
// committed and pending views consistent by applying the old pod's
// contribution in reverse and then the new pod's forward.
func (s *Scheduler) setPod(name string, pod *api.Pod) {
	if old, ok := s.pods[name]; ok {
		if old.Spec.NodeName != "" && !old.Terminated() {
			s.nodeCommitted(old.Spec.NodeName).Sub(old.Spec.Requests())
		} else if _, p := s.pending[name]; p {
			delete(s.pending, name)
			s.dirty = true
		}
	}
	if pod == nil {
		delete(s.pods, name)
		return
	}
	s.pods[name] = pod
	if pod.Spec.NodeName != "" && !pod.Terminated() {
		s.nodeCommitted(pod.Spec.NodeName).Add(pod.Spec.Requests())
	} else if !pod.Terminated() {
		s.pending[name] = pod
		s.dirty = true
	}
	s.depth.Set(int64(len(s.pending)))
}

func (s *Scheduler) nodeCommitted(node string) api.ResourceList {
	rl := s.committed[node]
	if rl == nil {
		rl = api.ResourceList{}
		s.committed[node] = rl
	}
	return rl
}

// Start launches the watch and scheduling loops. The streams run through
// reflectors, so the incremental caches stay exact across watch drops.
func (s *Scheduler) Start() {
	podR := s.srv.NewNamedReflector("kube-scheduler", "Pod", apiserver.WatchOptions{Replay: true})
	nodeR := s.srv.NewNamedReflector("kube-scheduler", "Node", apiserver.WatchOptions{Replay: true})
	s.reflectors = append(s.reflectors, podR, nodeR)
	s.watchProcs = append(s.watchProcs, s.env.Go("kube-scheduler-watch-pods", func(p *sim.Proc) {
		for {
			ev, ok := podR.Get(p)
			if !ok {
				return
			}
			pod := ev.Object.(*api.Pod)
			if ev.Type == store.Deleted {
				s.setPod(pod.Name, nil)
			} else {
				s.setPod(pod.Name, pod)
			}
			s.kick()
		}
	}))
	s.watchProcs = append(s.watchProcs, s.env.Go("kube-scheduler-watch-nodes", func(p *sim.Proc) {
		for {
			ev, ok := nodeR.Get(p)
			if !ok {
				return
			}
			node := ev.Object.(*api.Node)
			if ev.Type == store.Deleted {
				delete(s.nodes, node.Name)
			} else {
				s.nodes[node.Name] = node
			}
			s.kick()
		}
	}))
	s.proc = s.env.Go("kube-scheduler", s.loop)
}

// Stop terminates the scheduler's loops and reflectors.
func (s *Scheduler) Stop() {
	if s.proc != nil {
		s.proc.Kill(nil)
	}
	for _, p := range s.watchProcs {
		p.Kill(nil)
	}
	for _, r := range s.reflectors {
		r.Stop()
	}
}

// kick nudges the scheduling loop (coalesced: at most one pending wakeup).
func (s *Scheduler) kick() {
	if s.wake.Len() == 0 {
		s.wake.Put(struct{}{})
	}
}

func (s *Scheduler) loop(p *sim.Proc) {
	for {
		if _, ok := s.wake.Get(p); !ok {
			return
		}
		for {
			pod := s.nextPending()
			if pod == nil {
				break
			}
			p.Sleep(s.cfg.BindLatency)
			s.scheduleOne(pod)
		}
	}
}

// nextPending returns the oldest unbound, unscheduled pod that fits some
// node right now, or nil.
func (s *Scheduler) nextPending() *api.Pod {
	if s.dirty {
		s.order = s.order[:0]
		for _, pod := range s.pending {
			s.order = append(s.order, pod)
		}
		sort.Slice(s.order, func(i, j int) bool {
			a, b := s.order[i], s.order[j]
			if a.CreationTime != b.CreationTime {
				return a.CreationTime < b.CreationTime
			}
			return a.Name < b.Name
		})
		s.dirty = false
	}
	for _, pod := range s.order {
		if s.pickNode(pod) != "" {
			return pod
		}
	}
	return nil
}

// candidate is the per-node view the phase functions operate on: the node
// object, its live committed resources and the pod's materialized requests.
type candidate struct {
	node *api.Node
	com  api.ResourceList
	need api.ResourceList
}

// nodeFilter reports whether the candidate node may host the pod; nodeScore
// ranks the survivors (higher is better). The slices below mirror the plugin
// phases of the core scheduling framework (internal/core/schedfw), kept as
// plain function tables here: this scheduler deliberately predates the
// framework architecturally — it sees only aggregate node capacity — and
// importing schedfw would invert the layering.
type nodeFilter func(pod *api.Pod, c candidate) bool
type nodeScore func(pod *api.Pod, c candidate) float64

var defaultFilters = []nodeFilter{
	// node readiness
	func(pod *api.Pod, c candidate) bool { return c.node.Status.Ready },
	// node selector
	func(pod *api.Pod, c candidate) bool { return c.node.MatchesSelector(pod.Spec.NodeSelector) },
	// aggregate resource fit (extended resources as opaque counts)
	func(pod *api.Pod, c candidate) bool {
		alloc := c.node.Status.Allocatable
		for k, v := range c.need {
			if v > alloc[k]-c.com[k] {
				return false
			}
		}
		return true
	},
}

var defaultScores = []nodeScore{
	// Least-allocated: prefer the node with the most residual CPU fraction
	// after placement.
	func(pod *api.Pod, c candidate) float64 {
		if a := c.node.Status.Allocatable[api.ResourceCPU]; a > 0 {
			return float64(a-c.com[api.ResourceCPU]-c.need[api.ResourceCPU]) / float64(a)
		}
		return 0
	},
}

// pickNode runs the filter phase then a score argmax and returns the chosen
// node name ("" when no node survives filtering). The filters read the
// per-node committed cache directly — no intermediate ResourceList is
// materialized — and (score, name) is a strict total order over candidates,
// so the argmax is deterministic over the unordered node map (ties broken by
// lowest name).
func (s *Scheduler) pickNode(pod *api.Pod) string {
	need := pod.Spec.Requests()
	best := ""
	bestScore := 0.0
candidates:
	for name, node := range s.nodes {
		c := candidate{node: node, com: s.committed[name], need: need}
		for _, f := range defaultFilters {
			if !f(pod, c) {
				continue candidates
			}
		}
		score := 0.0
		for _, sc := range defaultScores {
			score += sc(pod, c)
		}
		if best == "" || score > bestScore || (score == bestScore && name < best) {
			best, bestScore = name, score
		}
	}
	return best
}

// scheduleOne binds pod to its chosen node.
func (s *Scheduler) scheduleOne(pod *api.Pod) {
	node := s.pickNode(pod)
	if node == "" {
		return
	}
	pods := apiserver.Pods(s.srv)
	updated, err := pods.Mutate(pod.Name, func(p *api.Pod) error {
		if p.Spec.NodeName == "" {
			p.Spec.NodeName = node
		}
		return nil
	})
	if err != nil {
		s.setPod(pod.Name, nil) // deleted while in queue
		return
	}
	// ScheduledTime is status; written through the status subresource so the
	// bind above never races with kubelet phase reports.
	if updated, err = pods.MutateStatus(pod.Name, func(p *api.Pod) error {
		if p.Status.ScheduledTime == 0 {
			p.Status.ScheduledTime = s.env.Now()
		}
		return nil
	}); err != nil {
		s.setPod(pod.Name, nil)
		return
	}
	s.setPod(pod.Name, updated)
	s.binds.Inc()
	// Bind latency is submit-to-bind; the span lands on the pod's causal
	// chain (its owner's chain for controller-created pods, so sharePod
	// holder/bound pods trace under their sharePod).
	id := s.tracer.Record("kube-scheduler", "bind", api.TraceKey(updated), "node="+node, pod.CreationTime)
	s.bindHist.ObserveDurationExemplar(s.env.Now()-pod.CreationTime, api.TraceKey(updated), id)
}

package scheduler

import (
	"testing"
	"time"

	"kubeshare/internal/kube/api"
	"kubeshare/internal/kube/apiserver"
	"kubeshare/internal/sim"
)

// rig creates an apiserver with a started scheduler; no kubelets, so pods
// stay in whatever phase the test sets.
func rig() (*sim.Env, *apiserver.Server) {
	env := sim.NewEnv()
	srv := apiserver.New(env)
	New(env, srv, Config{}).Start()
	return env, srv
}

func addNode(srv *apiserver.Server, name string, cpu int64, gpus int64, labels map[string]string) {
	capacity := api.ResourceList{api.ResourceCPU: cpu, api.ResourceGPU: gpus}
	node := &api.Node{
		ObjectMeta: api.ObjectMeta{Name: name, Labels: labels},
		Status:     api.NodeStatus{Capacity: capacity, Allocatable: capacity.Clone(), Ready: true},
	}
	if _, err := apiserver.Nodes(srv).Create(node); err != nil {
		panic(err)
	}
}

func addPod(srv *apiserver.Server, name string, req api.ResourceList, sel map[string]string) {
	pod := &api.Pod{
		ObjectMeta: api.ObjectMeta{Name: name},
		Spec: api.PodSpec{
			NodeSelector: sel,
			Containers:   []api.Container{{Name: "c", Image: "i", Requests: req}},
		},
	}
	if _, err := apiserver.Pods(srv).Create(pod); err != nil {
		panic(err)
	}
}

func nodeOf(t *testing.T, srv *apiserver.Server, pod string) string {
	t.Helper()
	p, err := apiserver.Pods(srv).Get(pod)
	if err != nil {
		t.Fatal(err)
	}
	return p.Spec.NodeName
}

func TestBindsToOnlyNode(t *testing.T) {
	env, srv := rig()
	addNode(srv, "n0", 1000, 0, nil)
	env.Go("t", func(p *sim.Proc) { addPod(srv, "a", api.ResourceList{api.ResourceCPU: 500}, nil) })
	env.Run()
	if nodeOf(t, srv, "a") != "n0" {
		t.Fatalf("pod not bound")
	}
}

func TestRespectsCapacity(t *testing.T) {
	env, srv := rig()
	addNode(srv, "n0", 1000, 0, nil)
	env.Go("t", func(p *sim.Proc) {
		addPod(srv, "a", api.ResourceList{api.ResourceCPU: 700}, nil)
		addPod(srv, "b", api.ResourceList{api.ResourceCPU: 700}, nil)
	})
	env.RunUntil(10 * time.Second)
	bound := 0
	for _, name := range []string{"a", "b"} {
		if nodeOf(t, srv, name) != "" {
			bound++
		}
	}
	if bound != 1 {
		t.Fatalf("bound = %d, want 1 (capacity 1000, two 700m pods)", bound)
	}
}

func TestExtendedResourceAggregateCounting(t *testing.T) {
	env, srv := rig()
	addNode(srv, "n0", 100000, 4, nil)
	env.Go("t", func(p *sim.Proc) {
		for _, n := range []string{"g1", "g2", "g3", "g4", "g5"} {
			addPod(srv, n, api.ResourceList{api.ResourceGPU: 1}, nil)
		}
	})
	env.RunUntil(10 * time.Second)
	bound := 0
	for _, pod := range apiserver.Pods(srv).List() {
		if pod.Spec.NodeName != "" {
			bound++
		}
	}
	if bound != 4 {
		t.Fatalf("bound = %d, want 4 (GPU count)", bound)
	}
}

func TestPendingPodScheduledWhenCapacityFrees(t *testing.T) {
	env, srv := rig()
	addNode(srv, "n0", 1000, 0, nil)
	env.Go("t", func(p *sim.Proc) {
		addPod(srv, "big", api.ResourceList{api.ResourceCPU: 900}, nil)
		addPod(srv, "waiting", api.ResourceList{api.ResourceCPU: 500}, nil)
		p.Sleep(time.Second)
		if nodeOf(t, srv, "waiting") != "" {
			t.Error("waiting pod bound while capacity full")
		}
		// Terminate the big pod; the scheduler must react to the event.
		apiserver.Pods(srv).MutateStatus("big", func(cur *api.Pod) error {
			cur.Status.Phase = api.PodSucceeded
			return nil
		})
	})
	env.RunUntil(10 * time.Second)
	if nodeOf(t, srv, "waiting") == "" {
		t.Fatal("waiting pod never scheduled after capacity freed")
	}
}

func TestNodeSelectorFiltering(t *testing.T) {
	env, srv := rig()
	addNode(srv, "plain", 4000, 0, nil)
	addNode(srv, "gpu", 1000, 0, map[string]string{"accel": "v100"})
	env.Go("t", func(p *sim.Proc) {
		addPod(srv, "picky", api.ResourceList{api.ResourceCPU: 100}, map[string]string{"accel": "v100"})
	})
	env.Run()
	if got := nodeOf(t, srv, "picky"); got != "gpu" {
		t.Fatalf("node = %q, want gpu", got)
	}
}

func TestLeastAllocatedSpreads(t *testing.T) {
	env, srv := rig()
	addNode(srv, "n0", 1000, 0, nil)
	addNode(srv, "n1", 1000, 0, nil)
	env.Go("t", func(p *sim.Proc) {
		addPod(srv, "a", api.ResourceList{api.ResourceCPU: 400}, nil)
		p.Sleep(time.Second)
		addPod(srv, "b", api.ResourceList{api.ResourceCPU: 400}, nil)
	})
	env.Run()
	if nodeOf(t, srv, "a") == nodeOf(t, srv, "b") {
		t.Fatal("least-allocated scoring stacked both pods")
	}
}

func TestNotReadyNodeSkipped(t *testing.T) {
	env := sim.NewEnv()
	srv := apiserver.New(env)
	New(env, srv, Config{}).Start()
	node := &api.Node{
		ObjectMeta: api.ObjectMeta{Name: "down"},
		Status: api.NodeStatus{
			Capacity:    api.ResourceList{api.ResourceCPU: 1000},
			Allocatable: api.ResourceList{api.ResourceCPU: 1000},
			Ready:       false,
		},
	}
	apiserver.Nodes(srv).Create(node)
	env.Go("t", func(p *sim.Proc) { addPod(srv, "a", nil, nil) })
	env.RunUntil(5 * time.Second)
	if nodeOf(t, srv, "a") != "" {
		t.Fatal("pod bound to a not-ready node")
	}
}

func TestPreBoundPodLeftAlone(t *testing.T) {
	env, srv := rig()
	addNode(srv, "n0", 1000, 0, nil)
	env.Go("t", func(p *sim.Proc) {
		pod := &api.Pod{
			ObjectMeta: api.ObjectMeta{Name: "pinned"},
			Spec: api.PodSpec{
				NodeName:   "elsewhere",
				Containers: []api.Container{{Name: "c", Image: "i"}},
			},
		}
		apiserver.Pods(srv).Create(pod)
	})
	env.Run()
	if got := nodeOf(t, srv, "pinned"); got != "elsewhere" {
		t.Fatalf("scheduler rebound an explicitly placed pod to %q", got)
	}
}

func TestBindLatencyApplied(t *testing.T) {
	env := sim.NewEnv()
	srv := apiserver.New(env)
	New(env, srv, Config{BindLatency: 100 * time.Millisecond}).Start()
	addNode(srv, "n0", 1000, 0, nil)
	env.Go("t", func(p *sim.Proc) { addPod(srv, "a", nil, nil) })
	env.Run()
	pod, _ := apiserver.Pods(srv).Get("a")
	if pod.Status.ScheduledTime < 100*time.Millisecond {
		t.Fatalf("scheduled at %v, want ≥100ms", pod.Status.ScheduledTime)
	}
}

package store

import (
	"fmt"
	"math/rand"
	"testing"

	"kubeshare/internal/kube/api"
	"kubeshare/internal/kube/labels"
	"kubeshare/internal/sim"
)

// TestIndexConsistencyUnderChurn drives a long randomized create / update /
// update-status / delete sequence and checks, against a brute-force model,
// that the indexed paths stay exact: sorted lists, selector queries answered
// from the posting index, revision monotonicity, and watch-replay
// equivalence for subscriptions registered mid-churn.
func TestIndexConsistencyUnderChurn(t *testing.T) {
	env := sim.NewEnv()
	s := New(env)
	rng := rand.New(rand.NewSource(7))

	lblKeys := []string{"app", "tier", "zone"}
	lblVals := []string{"a", "b", "c"}
	randLabels := func() map[string]string {
		out := map[string]string{}
		for _, k := range lblKeys {
			if rng.Intn(2) == 0 {
				out[k] = lblVals[rng.Intn(len(lblVals))]
			}
		}
		return out
	}

	model := map[string]map[string]string{} // name → labels
	var kindQ, nameQ *sim.Queue[Event]
	const watchedName = "p-05"

	lastRev := s.Revision()
	for i := 0; i < 3000; i++ {
		name := fmt.Sprintf("p-%02d", rng.Intn(40))
		switch rng.Intn(5) {
		case 0: // create
			p := pod(name)
			p.Labels = randLabels()
			if _, err := s.Create(p); err == nil {
				model[name] = p.Labels
			}
		case 1, 2: // spec/label update
			if cur, err := s.Get("Pod", name); err == nil {
				cp := cur.(*api.Pod)
				cp.Labels = randLabels()
				cp.Spec.NodeName = fmt.Sprintf("n-%d", rng.Intn(4))
				if _, err := s.Update(cp); err != nil {
					t.Fatalf("update %s: %v", name, err)
				}
				model[name] = cp.Labels
			}
		case 3: // status update (must not disturb labels or the index)
			if cur, err := s.Get("Pod", name); err == nil {
				cp := cur.(*api.Pod)
				cp.Status.Phase = api.PodRunning
				if _, err := s.UpdateStatus(cp); err != nil {
					t.Fatalf("update status %s: %v", name, err)
				}
			}
		case 4: // delete
			if s.Delete("Pod", name) == nil {
				delete(model, name)
			}
		}
		if rev := s.Revision(); rev < lastRev {
			t.Fatalf("revision went backwards: %d < %d", rev, lastRev)
		} else {
			lastRev = rev
		}
		if i == 1000 {
			// Mid-churn subscriptions: replay must equal the state right now,
			// and folding subsequent deltas must track the live state.
			kindQ = s.Watch("Pod/", true)
			nameQ = s.WatchFiltered("Pod/", WatchOptions{Name: watchedName}, true)
		}
	}

	// Indexed list equals the model.
	final := s.List("Pod/")
	if len(final) != len(model) {
		t.Fatalf("list has %d objects, model %d", len(final), len(model))
	}
	for i, obj := range final {
		name := obj.GetMeta().Name
		if _, ok := model[name]; !ok {
			t.Fatalf("list contains %s, not in model", name)
		}
		if i > 0 && final[i-1].GetMeta().Name >= name {
			t.Fatalf("list unsorted at %d", i)
		}
	}

	// Selector queries answered from the posting index equal brute force.
	sels := []labels.Selector{
		labels.SelectorFromMap(map[string]string{"app": "a"}),
		labels.SelectorFromMap(map[string]string{"app": "b", "tier": "c"}),
		labels.HasKey("zone"),
		labels.NewSelector(labels.Requirement{Key: "app", Op: labels.NotEquals, Value: "a"}),
		labels.NewSelector(
			labels.Requirement{Key: "tier", Op: labels.Exists},
			labels.Requirement{Key: "zone", Op: labels.DoesNotExist},
		),
	}
	for _, sel := range sels {
		got := map[string]bool{}
		for _, obj := range s.ListSelector("Pod", sel) {
			got[obj.GetMeta().Name] = true
		}
		want := map[string]bool{}
		for name, lbls := range model {
			if sel.Matches(lbls) {
				want[name] = true
			}
		}
		if len(got) != len(want) {
			t.Fatalf("selector %q: got %d, want %d", sel, len(got), len(want))
		}
		for name := range want {
			if !got[name] {
				t.Fatalf("selector %q: missing %s", sel, name)
			}
		}
	}

	// Watch-replay equivalence: replay + folded deltas reproduce the final
	// state, including ResourceVersions.
	view := map[string]api.Object{}
	for {
		ev, ok := kindQ.TryGet()
		if !ok {
			break
		}
		if ev.Type == Deleted {
			delete(view, ev.Object.GetMeta().Name)
		} else {
			view[ev.Object.GetMeta().Name] = ev.Object
		}
	}
	if len(view) != len(final) {
		t.Fatalf("watch view has %d objects, list %d", len(view), len(final))
	}
	for _, obj := range final {
		got, ok := view[obj.GetMeta().Name]
		if !ok {
			t.Fatalf("watch view missing %s", obj.GetMeta().Name)
		}
		if got.GetMeta().ResourceVersion != obj.GetMeta().ResourceVersion {
			t.Fatalf("watch view of %s at RV %d, stored %d",
				obj.GetMeta().Name, got.GetMeta().ResourceVersion, obj.GetMeta().ResourceVersion)
		}
	}

	// Name-filtered watch: only events for the watched name, and its folded
	// state matches the store.
	var nameView api.Object
	deleted := false
	for {
		ev, ok := nameQ.TryGet()
		if !ok {
			break
		}
		if got := ev.Object.GetMeta().Name; got != watchedName {
			t.Fatalf("name-filtered watch delivered %s", got)
		}
		if ev.Type == Deleted {
			nameView, deleted = nil, true
		} else {
			nameView, deleted = ev.Object, false
		}
	}
	cur, err := s.Get("Pod", watchedName)
	switch {
	case err == nil && nameView == nil:
		// The object may have been created before the watch and never touched
		// after... impossible here: replay was on. With replay, nameView==nil
		// means it never existed after registration or was deleted.
		if !deleted {
			t.Fatalf("%s exists but name watch saw nothing", watchedName)
		}
		t.Fatalf("%s exists but name watch last saw a delete", watchedName)
	case err == nil:
		if nameView.GetMeta().ResourceVersion != cur.GetMeta().ResourceVersion {
			t.Fatalf("name watch at RV %d, stored %d",
				nameView.GetMeta().ResourceVersion, cur.GetMeta().ResourceVersion)
		}
	case nameView != nil:
		t.Fatalf("%s gone but name watch still sees it", watchedName)
	}
}

// TestStatusUpdatePreservesLabelIndex pins the subtle interaction between
// the status subresource and the label index: UpdateStatus keeps the stored
// labels, so a caller passing a copy with mutated labels must not corrupt
// the posting lists.
func TestStatusUpdatePreservesLabelIndex(t *testing.T) {
	env := sim.NewEnv()
	s := New(env)
	p := pod("a")
	p.Labels = map[string]string{"app": "web"}
	if _, err := s.Create(p); err != nil {
		t.Fatal(err)
	}
	cur, _ := s.Get("Pod", "a")
	cp := cur.(*api.Pod)
	cp.Labels = map[string]string{"app": "db"} // ignored by UpdateStatus
	cp.Status.Phase = api.PodRunning
	if _, err := s.UpdateStatus(cp); err != nil {
		t.Fatal(err)
	}
	if got := s.ListSelector("Pod", labels.SelectorFromMap(map[string]string{"app": "web"})); len(got) != 1 {
		t.Fatalf("app=web matched %d, want 1", len(got))
	}
	if got := s.ListSelector("Pod", labels.SelectorFromMap(map[string]string{"app": "db"})); len(got) != 0 {
		t.Fatalf("app=db matched %d, want 0", len(got))
	}
}

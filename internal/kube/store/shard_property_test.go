package store

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"kubeshare/internal/kube/api"
	"kubeshare/internal/kube/labels"
	"kubeshare/internal/sim"
)

// expectedEv is one entry of a worker's per-key op log: the event a
// single-lock store would deliver for the mutation. objRV is the delivered
// object's ResourceVersion (for Deleted, the pre-delete version).
type expectedEv struct {
	typ      EventType
	objRV    int64
	selMatch bool // labels matched app=a at delivery time
}

// TestShardChurnWatchEquivalence is the concurrency property test for the
// sharded store: several goroutines churn disjoint key ranges across two
// kinds (two shards) while filtered watches are live, under -race. Because
// each key has exactly one writer, the per-key event sequence a single-lock
// store would deliver is fully determined by that writer's op log — so every
// watcher (per-kind, selector-filtered, and generic-prefix) must observe
// exactly that sequence per key, with store-wide revisions strictly
// increasing along it, regardless of how shards interleave.
func TestShardChurnWatchEquivalence(t *testing.T) {
	env := sim.NewEnv()
	s := New(env)

	const (
		workers    = 8
		keysPer    = 12
		opsPer     = 400
		watchedSel = "a"
	)

	// Live watches registered before the churn: per-kind, selector-filtered
	// (Pod app=a), and a generic-prefix watch crossing both shards.
	podQ := s.Watch("Pod/", false)
	nodeQ := s.Watch("Node/", false)
	selQ := s.WatchFiltered("Pod/", WatchOptions{
		Selector: labels.SelectorFromMap(map[string]string{"app": watchedSel}),
	}, false)
	allQ := s.Watch("", false)

	logs := make([]map[string][]expectedEv, workers) // worker → key → op log
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		logs[w] = make(map[string][]expectedEv)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			kind := "Pod"
			if w%2 == 1 {
				kind = "Node"
			}
			make_ := func(name string, lbls map[string]string) api.Object {
				if kind == "Pod" {
					p := pod(name)
					p.Labels = lbls
					return p
				}
				return &api.Node{ObjectMeta: api.ObjectMeta{Name: name, Labels: lbls}}
			}
			randLabels := func() map[string]string {
				out := map[string]string{}
				if rng.Intn(2) == 0 {
					out["app"] = []string{"a", "b"}[rng.Intn(2)]
				}
				if rng.Intn(2) == 0 {
					out["tier"] = []string{"x", "y"}[rng.Intn(2)]
				}
				return out
			}
			curLabels := map[string]map[string]string{} // key → last stored labels
			for i := 0; i < opsPer; i++ {
				name := fmt.Sprintf("w%d-%02d", w, rng.Intn(keysPer))
				key := kind + "/" + name
				_, exists := curLabels[name]
				switch op := rng.Intn(5); {
				case op == 0 && !exists: // create
					lbls := randLabels()
					stored, err := s.Create(make_(name, lbls))
					if err != nil {
						t.Errorf("create %s: %v", key, err)
						return
					}
					curLabels[name] = lbls
					logs[w][key] = append(logs[w][key], expectedEv{
						Added, stored.GetMeta().ResourceVersion, lbls["app"] == watchedSel})
				case (op == 1 || op == 2) && exists: // label update
					cur, err := s.Get(kind, name)
					if err != nil {
						t.Errorf("get %s: %v", key, err)
						return
					}
					lbls := randLabels()
					cur.GetMeta().Labels = lbls
					stored, err := s.Update(cur)
					if err != nil {
						t.Errorf("update %s: %v", key, err)
						return
					}
					curLabels[name] = lbls
					logs[w][key] = append(logs[w][key], expectedEv{
						Modified, stored.GetMeta().ResourceVersion, lbls["app"] == watchedSel})
				case op == 3 && exists: // status update (labels preserved)
					cur, err := s.Get(kind, name)
					if err != nil {
						t.Errorf("get %s: %v", key, err)
						return
					}
					if p, ok := cur.(*api.Pod); ok {
						p.Status.Phase = api.PodRunning
					} else {
						cur.(*api.Node).Status.Ready = true
					}
					stored, err := s.UpdateStatus(cur)
					if err != nil {
						t.Errorf("update status %s: %v", key, err)
						return
					}
					logs[w][key] = append(logs[w][key], expectedEv{
						Modified, stored.GetMeta().ResourceVersion,
						curLabels[name]["app"] == watchedSel})
				case op == 4 && exists: // delete
					prior := logs[w][key][len(logs[w][key])-1]
					if err := s.Delete(kind, name); err != nil {
						t.Errorf("delete %s: %v", key, err)
						return
					}
					logs[w][key] = append(logs[w][key], expectedEv{
						Deleted, prior.objRV, curLabels[name]["app"] == watchedSel})
					delete(curLabels, name)
				}
			}
		}(w)
	}
	wg.Wait()

	// Merge the per-worker logs into per-key expected sequences.
	want := map[string][]expectedEv{}
	totalOps := 0
	for _, wl := range logs {
		for key, seq := range wl {
			want[key] = seq // keys are worker-disjoint, no merge needed
			totalOps += len(seq)
		}
	}
	if got := s.Revision(); got != int64(totalOps) {
		t.Fatalf("revision %d after %d mutations", got, totalOps)
	}

	drain := func(q *sim.Queue[Event]) map[string][]Event {
		out := map[string][]Event{}
		for {
			ev, ok := q.TryGet()
			if !ok {
				return out
			}
			key := api.Key(ev.Object)
			out[key] = append(out[key], ev)
		}
	}
	checkSeq := func(label, key string, got []Event, want []expectedEv) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("%s watch, key %s: %d events, want %d", label, key, len(got), len(want))
		}
		lastRev := int64(0)
		for i, ev := range got {
			if ev.Type != want[i].typ || ev.Object.GetMeta().ResourceVersion != want[i].objRV {
				t.Fatalf("%s watch, key %s, event %d: got (%s, rv=%d), want (%s, rv=%d)",
					label, key, i, ev.Type, ev.Object.GetMeta().ResourceVersion,
					want[i].typ, want[i].objRV)
			}
			if ev.Rev <= lastRev {
				t.Fatalf("%s watch, key %s, event %d: rev %d not increasing past %d",
					label, key, i, ev.Rev, lastRev)
			}
			lastRev = ev.Rev
		}
	}

	// Per-kind watches: every key's sequence equals the single-writer log.
	podEvs, nodeEvs, allEvs := drain(podQ), drain(nodeQ), drain(allQ)
	for key, seq := range want {
		var got []Event
		if key[:3] == "Pod" {
			got = podEvs[key]
		} else {
			got = nodeEvs[key]
		}
		checkSeq("kind", key, got, seq)
		checkSeq("generic-prefix", key, allEvs[key], seq)
	}
	// And nothing beyond the expected keys was delivered.
	if got, wantN := len(podEvs)+len(nodeEvs), len(want); got != wantN {
		t.Fatalf("kind watches saw %d keys, want %d", got, wantN)
	}

	// Selector watch: exactly the matching subsequence of each Pod key.
	selEvs := drain(selQ)
	for key, seq := range want {
		if key[:3] != "Pod" {
			continue
		}
		var filtered []expectedEv
		for _, e := range seq {
			if e.selMatch {
				filtered = append(filtered, e)
			}
		}
		checkSeq("selector", key, selEvs[key], filtered)
	}

	// Folding the per-kind streams reproduces the final store state.
	for _, kind := range []string{"Pod", "Node"} {
		evs := podEvs
		if kind == "Node" {
			evs = nodeEvs
		}
		view := map[string]int64{}
		for key, seq := range evs {
			last := seq[len(seq)-1]
			if last.Type != Deleted {
				view[key] = last.Object.GetMeta().ResourceVersion
			}
		}
		final := s.List(kind + "/")
		if len(final) != len(view) {
			t.Fatalf("%s: folded view has %d objects, list %d", kind, len(view), len(final))
		}
		var names []string
		for _, obj := range final {
			key := api.Key(obj)
			if view[key] != obj.GetMeta().ResourceVersion {
				t.Fatalf("%s: folded %s at rv=%d, stored %d",
					kind, key, view[key], obj.GetMeta().ResourceVersion)
			}
			names = append(names, obj.GetMeta().Name)
		}
		if !sort.StringsAreSorted(names) {
			t.Fatalf("%s list unsorted under concurrent churn: %v", kind, names)
		}
	}
}

// TestShardConcurrentReaders checks readers on one kind run against writers
// on another without torn results: list/scan/selector answers on the read
// side always reflect a committed prefix of the writer's op sequence.
func TestShardConcurrentReaders(t *testing.T) {
	env := sim.NewEnv()
	s := New(env)
	for i := 0; i < 64; i++ {
		p := pod(fmt.Sprintf("stable-%02d", i))
		p.Labels = map[string]string{"app": "a"}
		if _, err := s.Create(p); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer churns Nodes (another shard)
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			name := fmt.Sprintf("n-%02d", i%32)
			n := &api.Node{ObjectMeta: api.ObjectMeta{Name: name}}
			if _, err := s.Create(n); err != nil {
				s.Delete("Node", name)
			}
		}
	}()
	sel := labels.SelectorFromMap(map[string]string{"app": "a"})
	for r := 0; r < 2000; r++ {
		if got := s.Count("Pod"); got != 64 {
			t.Fatalf("count=%d, want 64", got)
		}
		if got := len(s.ListSelector("Pod", sel)); got != 64 {
			t.Fatalf("selector matched %d, want 64", got)
		}
		seen := 0
		s.Scan("Pod", func(api.Object) bool { seen++; return true })
		if seen != 64 {
			t.Fatalf("scan visited %d, want 64", seen)
		}
	}
	close(stop)
	wg.Wait()
}

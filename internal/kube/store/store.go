// Package store implements the etcd analogue backing the API server: a
// versioned object store with optimistic concurrency and prefix watches.
// Each mutation bumps a store-wide revision; every object carries the
// revision of its last write as its ResourceVersion.
//
// Objects are kept in per-kind buckets with a lazily sorted name index and
// a label posting index (key → value → names), so lists, selector queries
// and watch fan-out cost O(matching objects) instead of O(all keys).
// Watches can be filtered server-side by kind, exact name and label
// selector — subscribers never receive events they would discard.
//
// # Sharding and concurrency
//
// Buckets are striped across NumShards shards by kind hash, each guarded by
// its own RWMutex, so list/watch/scan traffic on disjoint kinds never
// contends and readers (samplers, parallel scheduling phases, the serve
// endpoints) run concurrently with each other and with a writer in another
// shard. Revisions come from one global atomic counter — mutations in the
// same shard serialize on the shard lock, so per-kind revision order is
// monotonic — and each shard additionally tracks the last revision it
// committed. Watch fan-out is per-shard: a mutation only visits its own
// kind's watcher list (plus the rare generic-prefix watchers, under their
// own lock). The resumable-watch history is global, under its own mutex;
// entries from different shards may interleave slightly out of global
// revision order, but per-kind order — the order a resuming subscriber
// replays — is always commit order.
//
// Mutations and watch registration are goroutine-safe, with one rule: the
// virtual clock must not advance while mutators run off the simulation
// goroutine (Create reads env.Now), and generic-prefix watch registration
// is simulation-goroutine-only.
package store

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"kubeshare/internal/kube/api"
	"kubeshare/internal/kube/labels"
	"kubeshare/internal/sim"
)

// Mutation errors.
var (
	// ErrNotFound is returned for reads and writes of missing keys.
	ErrNotFound = errors.New("store: object not found")
	// ErrExists is returned by Create when the key is already present.
	ErrExists = errors.New("store: object already exists")
	// ErrConflict is returned by Update when the caller's ResourceVersion is
	// stale (optimistic-concurrency failure).
	ErrConflict = errors.New("store: resource version conflict")
	// ErrGone is returned by WatchFilteredFrom when the requested revision
	// has been compacted out of the event history; the subscriber must
	// relist and start a fresh watch (the 410 Gone of the kube watch
	// protocol).
	ErrGone = errors.New("store: requested revision compacted")
)

// DefaultHistoryCap bounds the event history kept for resumable watches.
const DefaultHistoryCap = 4096

// NumShards is the stripe count: buckets live in shard fnv(kind)%NumShards.
// A small power of two keeps the fixed cost negligible while separating the
// hot kinds (SharePod, Pod, Node, VGPU, Event) onto distinct locks.
const NumShards = 16

// EventType classifies watch events.
type EventType string

// Watch event types.
const (
	Added    EventType = "ADDED"
	Modified EventType = "MODIFIED"
	Deleted  EventType = "DELETED"
)

// Event is one watch notification. Object is a deep copy owned by the
// receiver; for Deleted events it is the last stored state. Rev is the
// store-wide revision the mutation committed at — for Added/Modified it
// equals the object's ResourceVersion; for Deleted it is the revision the
// deletion consumed (the object copy keeps its pre-delete version).
type Event struct {
	Type   EventType
	Object api.Object
	Rev    int64
}

// WatchOptions narrows a watch subscription server-side. The zero value
// subscribes to everything under the watch's prefix.
type WatchOptions struct {
	// Name restricts delivery to the object with this exact name.
	Name string
	// Selector restricts delivery to objects whose labels match. For
	// Deleted events the last stored labels are consulted. Nil matches all.
	Selector labels.Selector
}

// matches reports whether an object with the given name and labels passes
// the filter.
func (o WatchOptions) matches(name string, lbls map[string]string) bool {
	if o.Name != "" && o.Name != name {
		return false
	}
	if o.Selector != nil && !o.Selector.Matches(lbls) {
		return false
	}
	return true
}

// watcher fans events out to one subscriber. Watchers registered with a
// plain "<Kind>/" prefix live in the per-kind bucket and are only visited
// for mutations of that kind; others are matched by generic prefix.
type watcher struct {
	prefix string
	opts   WatchOptions
	queue  *sim.Queue[Event]
}

// bucket holds one kind's objects plus its indexes.
type bucket struct {
	objs map[string]api.Object // name → stored object
	// sorted caches the names in order; rebuilt lazily after create/delete.
	// dirty is atomic and the rebuild is guarded by sortMu so concurrent
	// readers (shard RLock holders) can race to rebuild safely: writers only
	// set dirty under the shard's write lock, which excludes all readers.
	sorted []string
	sortMu sync.Mutex
	dirty  atomic.Bool
	// byLabel is the posting index: label key → value → set of names.
	byLabel map[string]map[string]map[string]struct{}
	// watchers subscribed to exactly this kind.
	watchers []*watcher
}

func newBucket() *bucket {
	return &bucket{
		objs:    make(map[string]api.Object),
		byLabel: make(map[string]map[string]map[string]struct{}),
	}
}

// names returns the bucket's object names sorted, rebuilding the cache if
// stale. Safe under the shard's read lock: the double-checked sortMu makes
// concurrent rebuilds exclusive, and a false dirty load happens-after the
// completed rebuild that cleared it.
func (b *bucket) names() []string {
	if b.dirty.Load() {
		b.sortMu.Lock()
		if b.dirty.Load() {
			b.sorted = b.sorted[:0]
			for n := range b.objs {
				b.sorted = append(b.sorted, n)
			}
			sort.Strings(b.sorted)
			b.dirty.Store(false)
		}
		b.sortMu.Unlock()
	}
	return b.sorted
}

func (b *bucket) indexLabels(name string, lbls map[string]string) {
	for k, v := range lbls {
		vals, ok := b.byLabel[k]
		if !ok {
			vals = make(map[string]map[string]struct{})
			b.byLabel[k] = vals
		}
		set, ok := vals[v]
		if !ok {
			set = make(map[string]struct{})
			vals[v] = set
		}
		set[name] = struct{}{}
	}
}

func (b *bucket) unindexLabels(name string, lbls map[string]string) {
	for k, v := range lbls {
		if vals, ok := b.byLabel[k]; ok {
			if set, ok := vals[v]; ok {
				delete(set, name)
				if len(set) == 0 {
					delete(vals, v)
				}
			}
			if len(vals) == 0 {
				delete(b.byLabel, k)
			}
		}
	}
}

// shard is one stripe of the store: a slice of the kind space under its own
// reader/writer lock, plus the stripe's last committed revision.
type shard struct {
	mu    sync.RWMutex
	kinds map[string]*bucket
	rev   int64 // last global revision committed in this shard (under mu)
}

// Store is the versioned object store.
type Store struct {
	env     *sim.Env
	rev     atomic.Int64
	nextUID atomic.Int64
	shards  [NumShards]shard

	// globalMu guards watchers whose prefix is not a plain "<Kind>/" — they
	// are matched by string prefix against every mutation.
	globalMu sync.Mutex
	global   []*watcher

	// histMu guards the bounded mutation log backing resumable watches.
	// Live entries are history[histHead:]; the head advances instead of
	// shifting, with an amortized compaction once the dead prefix
	// dominates. Entries own their Object copies.
	histMu     sync.Mutex
	history    []Event
	histHead   int
	histCap    int
	compactRev int64 // revision of the newest event dropped from history

	// Durability (see wal.go): dur is the simulated durable medium — nil
	// until EnableDurability, leaving the WAL append path a single nil
	// check. epoch counts crash/restore cycles; the hooks surface WAL and
	// checkpoint activity to the telemetry layer without the store
	// importing obs.
	dur          *Durable
	epoch        atomic.Int64
	onWALAppend  func(records int)
	onCheckpoint func(bytes int)
}

// New returns an empty store.
func New(env *sim.Env) *Store {
	s := &Store{env: env, histCap: DefaultHistoryCap}
	for i := range s.shards {
		s.shards[i].kinds = make(map[string]*bucket)
	}
	return s
}

// shardIndex stripes a kind across shards by FNV-1a hash.
func shardIndex(kind string) int {
	h := uint32(2166136261)
	for i := 0; i < len(kind); i++ {
		h ^= uint32(kind[i])
		h *= 16777619
	}
	return int(h % NumShards)
}

func (s *Store) shardFor(kind string) *shard { return &s.shards[shardIndex(kind)] }

// Revision returns the store-wide revision of the last mutation.
func (s *Store) Revision() int64 { return s.rev.Load() }

// ShardRev returns the last revision committed in the kind's shard — the
// per-shard counter the global revision folds over. A shard whose ShardRev
// is unchanged has seen no mutation, which lets scans skip it.
func (s *Store) ShardRev(kind string) int64 {
	sh := s.shardFor(kind)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.rev
}

// SetHistoryCap bounds the resumable-watch event history to n entries
// (default DefaultHistoryCap). Shrinking compacts immediately; resumes from
// before the compaction point return ErrGone. n <= 0 disables history, so
// every resume relists.
func (s *Store) SetHistoryCap(n int) {
	s.histMu.Lock()
	defer s.histMu.Unlock()
	s.histCap = n
	s.trimHistory()
}

// record appends a mutation to the history, taking ownership of ev.Object.
// Callers hold the mutating shard's lock, so per-kind history order is
// commit order even when shards append concurrently.
func (s *Store) record(ev Event) {
	s.histMu.Lock()
	defer s.histMu.Unlock()
	if s.histCap <= 0 {
		if ev.Rev > s.compactRev {
			s.compactRev = ev.Rev
		}
		return
	}
	s.history = append(s.history, ev)
	s.trimHistory()
}

func (s *Store) trimHistory() {
	for len(s.history)-s.histHead > s.histCap && s.histHead < len(s.history) {
		if rv := s.history[s.histHead].Rev; rv > s.compactRev {
			s.compactRev = rv
		}
		s.history[s.histHead] = Event{}
		s.histHead++
	}
	if s.histHead > len(s.history)/2 && s.histHead > 64 {
		live := copy(s.history, s.history[s.histHead:])
		for i := live; i < len(s.history); i++ {
			s.history[i] = Event{}
		}
		s.history = s.history[:live]
		s.histHead = 0
	}
}

// bucketOf returns the kind's bucket, creating it if needed. Caller holds
// the shard's write lock.
func (sh *shard) bucketOf(kind string) *bucket {
	b, ok := sh.kinds[kind]
	if !ok {
		b = newBucket()
		sh.kinds[kind] = b
	}
	return b
}

// kindNames returns all kind names sorted (for generic-prefix scans),
// visiting each shard under its read lock.
func (s *Store) kindNames() []string {
	var out []string
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k := range sh.kinds {
			out = append(out, k)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// Create inserts obj, assigning UID, CreationTime and ResourceVersion. The
// stored copy is returned.
func (s *Store) Create(obj api.Object) (api.Object, error) {
	kind := obj.Kind()
	name := obj.GetMeta().Name
	sh := s.shardFor(kind)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	b := sh.bucketOf(kind)
	if _, ok := b.objs[name]; ok {
		return nil, fmt.Errorf("%w: %s", ErrExists, api.Key(obj))
	}
	stored := obj.DeepCopyObject()
	meta := stored.GetMeta()
	rv := s.rev.Add(1)
	sh.rev = rv
	meta.ResourceVersion = rv
	meta.UID = fmt.Sprintf("uid-%d", s.nextUID.Add(1))
	meta.CreationTime = s.env.Now()
	b.objs[name] = stored
	b.dirty.Store(true)
	b.indexLabels(name, meta.Labels)
	s.notify(b, Event{Added, stored.DeepCopyObject(), rv})
	return stored.DeepCopyObject(), nil
}

// Update replaces the stored object. The caller's copy must carry the
// ResourceVersion it read; a stale version yields ErrConflict. UID and
// CreationTime are preserved from the stored object. For kinds with a
// status subresource (api.StatusCarrier) the stored status is preserved
// too — status writes go through UpdateStatus.
func (s *Store) Update(obj api.Object) (api.Object, error) {
	return s.update(obj, false)
}

// UpdateStatus replaces only the stored object's status, preserving spec
// and metadata (labels, annotations, owner) from the stored copy — the
// status-subresource write. Objects that do not implement
// api.StatusCarrier fall back to a whole-object Update.
func (s *Store) UpdateStatus(obj api.Object) (api.Object, error) {
	return s.update(obj, true)
}

func (s *Store) update(obj api.Object, statusOnly bool) (api.Object, error) {
	kind := obj.Kind()
	name := obj.GetMeta().Name
	sh := s.shardFor(kind)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	b := sh.bucketOf(kind)
	cur, ok := b.objs[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, api.Key(obj))
	}
	curMeta := cur.GetMeta()
	if obj.GetMeta().ResourceVersion != curMeta.ResourceVersion {
		return nil, fmt.Errorf("%w: %s (have %d, stored %d)", ErrConflict,
			api.Key(obj), obj.GetMeta().ResourceVersion, curMeta.ResourceVersion)
	}
	var stored api.Object
	if sc, carries := cur.(api.StatusCarrier); carries {
		if statusOnly {
			// Stored spec + metadata, caller's status.
			stored = cur.DeepCopyObject()
			stored.(api.StatusCarrier).SetStatusFrom(obj)
		} else {
			// Caller's spec + metadata, stored status.
			stored = obj.DeepCopyObject()
			stored.(api.StatusCarrier).SetStatusFrom(sc)
		}
	} else {
		stored = obj.DeepCopyObject()
	}
	meta := stored.GetMeta()
	rv := s.rev.Add(1)
	sh.rev = rv
	meta.ResourceVersion = rv
	meta.UID = curMeta.UID
	meta.CreationTime = curMeta.CreationTime
	b.unindexLabels(name, curMeta.Labels)
	b.objs[name] = stored
	b.indexLabels(name, meta.Labels)
	s.notify(b, Event{Modified, stored.DeepCopyObject(), rv})
	return stored.DeepCopyObject(), nil
}

// Delete removes the object by key.
func (s *Store) Delete(kind, name string) error {
	sh := s.shardFor(kind)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	b := sh.bucketOf(kind)
	cur, ok := b.objs[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, api.KeyOf(kind, name))
	}
	delete(b.objs, name)
	b.dirty.Store(true)
	b.unindexLabels(name, cur.GetMeta().Labels)
	rv := s.rev.Add(1)
	sh.rev = rv
	s.notify(b, Event{Deleted, cur.DeepCopyObject(), rv})
	return nil
}

// lookup returns the kind's bucket under the shard's read lock; the caller
// must invoke rel() when done with the bucket.
func (s *Store) lookup(kind string) (b *bucket, rel func()) {
	sh := s.shardFor(kind)
	sh.mu.RLock()
	b = sh.kinds[kind]
	return b, sh.mu.RUnlock
}

// Get returns a deep copy of the object by key.
func (s *Store) Get(kind, name string) (api.Object, error) {
	b, rel := s.lookup(kind)
	defer rel()
	if b != nil {
		if obj, ok := b.objs[name]; ok {
			return obj.DeepCopyObject(), nil
		}
	}
	return nil, fmt.Errorf("%w: %s", ErrNotFound, api.KeyOf(kind, name))
}

// Count returns the number of objects of a kind without copying them.
func (s *Store) Count(kind string) int {
	b, rel := s.lookup(kind)
	defer rel()
	if b != nil {
		return len(b.objs)
	}
	return 0
}

// List returns deep copies of all objects whose key has the given prefix
// (typically "<Kind>/"), sorted by key for determinism. A "<Kind>/..."
// prefix is answered from the kind's index in O(matching), holding only
// that kind's shard lock. Generic prefixes visit shards one at a time, so
// under concurrent mutation the result is per-kind consistent, not a global
// snapshot.
func (s *Store) List(prefix string) []api.Object {
	if kind, namePrefix, ok := splitPrefix(prefix); ok {
		b, rel := s.lookup(kind)
		defer rel()
		if b == nil {
			return nil
		}
		return b.list(namePrefix)
	}
	// Generic prefix ("" or a partial kind name): walk matching kinds in
	// key order.
	var out []api.Object
	for _, kind := range s.kindNames() {
		if !strings.HasPrefix(kind+"/", prefix) {
			continue
		}
		b, rel := s.lookup(kind)
		if b != nil {
			out = append(out, b.list("")...)
		}
		rel()
	}
	return out
}

// list returns deep copies of the bucket's objects whose name starts with
// namePrefix, in name order.
func (b *bucket) list(namePrefix string) []api.Object {
	names := b.names()
	lo := sort.SearchStrings(names, namePrefix)
	var out []api.Object
	for _, n := range names[lo:] {
		if !strings.HasPrefix(n, namePrefix) {
			break
		}
		out = append(out, b.objs[n].DeepCopyObject())
	}
	return out
}

// Scan calls fn on each of kind's objects in name order without copying,
// stopping early when fn returns false. The objects are the store's live
// instances: fn must treat them as read-only and must not retain them after
// returning — mutations or retained references would corrupt the store's
// copy-on-write discipline. Intended for samplers and aggregate metrics that
// would otherwise deep-copy the world once per tick. Scan holds only the
// kind's shard read lock, so scans of disjoint kinds run concurrently.
func (s *Store) Scan(kind string, fn func(api.Object) bool) {
	b, rel := s.lookup(kind)
	defer rel()
	if b == nil {
		return
	}
	for _, n := range b.names() {
		if !fn(b.objs[n]) {
			return
		}
	}
}

// ListSelector returns deep copies of the kind's objects whose labels match
// sel, sorted by name. Equality and existence requirements are answered
// from the label posting index; the smallest posting set drives the scan.
func (s *Store) ListSelector(kind string, sel labels.Selector) []api.Object {
	b, rel := s.lookup(kind)
	defer rel()
	if b == nil {
		return nil
	}
	return b.listSelector(sel)
}

// listSelector is ListSelector on a held bucket.
func (b *bucket) listSelector(sel labels.Selector) []api.Object {
	if sel == nil || sel.Empty() {
		return b.list("")
	}
	candidates := b.candidateNames(sel)
	if candidates == nil {
		// No indexable requirement: full (sorted) scan.
		var out []api.Object
		for _, n := range b.names() {
			if sel.Matches(b.objs[n].GetMeta().Labels) {
				out = append(out, b.objs[n].DeepCopyObject())
			}
		}
		return out
	}
	sort.Strings(candidates)
	var out []api.Object
	for _, n := range candidates {
		obj, ok := b.objs[n]
		if ok && sel.Matches(obj.GetMeta().Labels) {
			out = append(out, obj.DeepCopyObject())
		}
	}
	return out
}

// candidateNames returns the smallest posting set usable for sel, or nil
// when no requirement is indexable (caller falls back to a full scan). The
// result may contain false positives; callers must re-check Matches.
func (b *bucket) candidateNames(sel labels.Selector) []string {
	bestSize := -1
	var best []string
	for _, r := range sel.Requirements() {
		var size int
		switch r.Op {
		case labels.Equals:
			size = len(b.byLabel[r.Key][r.Value])
		case labels.Exists:
			for _, set := range b.byLabel[r.Key] {
				size += len(set)
			}
		default:
			continue // not indexable; filter-only
		}
		if bestSize == -1 || size < bestSize {
			bestSize = size
			best = nil
			switch r.Op {
			case labels.Equals:
				for n := range b.byLabel[r.Key][r.Value] {
					best = append(best, n)
				}
			case labels.Exists:
				for _, set := range b.byLabel[r.Key] {
					for n := range set {
						best = append(best, n)
					}
				}
			}
			if size == 0 {
				return []string{}
			}
		}
	}
	return best
}

// splitPrefix decomposes "<Kind>/<name-prefix>" into its parts; ok is false
// for prefixes without a slash (generic scans).
func splitPrefix(prefix string) (kind, namePrefix string, ok bool) {
	i := strings.IndexByte(prefix, '/')
	if i < 0 {
		return "", "", false
	}
	return prefix[:i], prefix[i+1:], true
}

// Watch subscribes to mutations of keys with the given prefix. When replay
// is true, the current matching objects are delivered first as Added events
// (list+watch semantics). Cancel the watch with StopWatch.
func (s *Store) Watch(prefix string, replay bool) *sim.Queue[Event] {
	return s.WatchFiltered(prefix, WatchOptions{}, replay)
}

// WatchFiltered is Watch narrowed by server-side filters: events are only
// delivered for objects passing opts (exact name and/or label selector).
// Replay delivers the currently matching objects as Added events. The
// filters run in the store, so subscribers never pay for events they would
// discard — the kube way of keeping watch fan-out O(interested parties).
// Kind-scoped registration (replay + subscribe) is atomic under the kind's
// shard lock, so no mutation is missed or duplicated across the boundary.
func (s *Store) WatchFiltered(prefix string, opts WatchOptions, replay bool) *sim.Queue[Event] {
	w := &watcher{prefix: prefix, opts: opts, queue: sim.NewQueue[Event](s.env)}
	if kind, namePrefix, ok := splitPrefix(prefix); ok && namePrefix == "" {
		sh := s.shardFor(kind)
		sh.mu.Lock()
		defer sh.mu.Unlock()
		b := sh.bucketOf(kind)
		if replay {
			for _, obj := range replayBucket(b, opts) {
				w.queue.Put(Event{Added, obj, obj.GetMeta().ResourceVersion})
			}
		}
		b.watchers = append(b.watchers, w)
		return w.queue
	}
	if replay {
		for _, obj := range s.replaySet(prefix, opts) {
			w.queue.Put(Event{Added, obj, obj.GetMeta().ResourceVersion})
		}
	}
	s.globalMu.Lock()
	s.global = append(s.global, w)
	s.globalMu.Unlock()
	return w.queue
}

// WatchFilteredFrom resumes a dropped watch: it subscribes like
// WatchFiltered but first replays, from the event history, every matching
// mutation that committed after fromRev — so a subscriber that recorded the
// last revision it saw misses nothing across a disconnect. When fromRev
// predates the compaction horizon the gap is unrecoverable and ErrGone is
// returned; the subscriber must relist and start fresh.
func (s *Store) WatchFilteredFrom(prefix string, opts WatchOptions, fromRev int64) (*sim.Queue[Event], error) {
	w := &watcher{prefix: prefix, opts: opts, queue: sim.NewQueue[Event](s.env)}
	kind, namePrefix, kindScoped := splitPrefix(prefix)
	kindScoped = kindScoped && namePrefix == ""
	var sh *shard
	if kindScoped {
		// Hold the shard lock across replay + subscribe so a concurrent
		// mutation is either in the replayed history or delivered live.
		sh = s.shardFor(kind)
		sh.mu.Lock()
		defer sh.mu.Unlock()
	}
	if rev := s.rev.Load(); fromRev > rev {
		// The subscriber observed a revision the store no longer has — a
		// torn-tail restore reverted mutations it saw. Its cache may hold
		// phantom state; only a relist can reconcile it.
		return nil, fmt.Errorf("%w: from %d, store at %d (reverted by restore)", ErrGone, fromRev, rev)
	}
	s.histMu.Lock()
	if fromRev < s.compactRev {
		s.histMu.Unlock()
		return nil, fmt.Errorf("%w: from %d, compacted through %d", ErrGone, fromRev, s.compactRev)
	}
	for _, ev := range s.history[s.histHead:] {
		if ev.Rev <= fromRev {
			continue
		}
		meta := ev.Object.GetMeta()
		if !strings.HasPrefix(api.Key(ev.Object), prefix) || !opts.matches(meta.Name, meta.Labels) {
			continue
		}
		w.queue.Put(Event{ev.Type, ev.Object.DeepCopyObject(), ev.Rev})
	}
	s.histMu.Unlock()
	if kindScoped {
		b := sh.bucketOf(kind)
		b.watchers = append(b.watchers, w)
	} else {
		s.globalMu.Lock()
		s.global = append(s.global, w)
		s.globalMu.Unlock()
	}
	return w.queue, nil
}

// replayBucket lists the objects a kind-scoped filtered watch replays from
// a held bucket, using the indexes where possible.
func replayBucket(b *bucket, opts WatchOptions) []api.Object {
	if opts.Name != "" {
		// Exact-name watch: at most one object.
		if obj, ok := b.objs[opts.Name]; ok {
			meta := obj.GetMeta()
			if opts.Selector == nil || opts.Selector.Matches(meta.Labels) {
				return []api.Object{obj.DeepCopyObject()}
			}
		}
		return nil
	}
	if opts.Selector != nil {
		return b.listSelector(opts.Selector)
	}
	return b.list("")
}

// replaySet lists the objects a generic-prefix filtered watch replays.
func (s *Store) replaySet(prefix string, opts WatchOptions) []api.Object {
	var out []api.Object
	for _, obj := range s.List(prefix) {
		if opts.matches(obj.GetMeta().Name, obj.GetMeta().Labels) {
			out = append(out, obj)
		}
	}
	return out
}

// StopWatch cancels a subscription created by Watch and closes its queue.
func (s *Store) StopWatch(q *sim.Queue[Event]) {
	s.globalMu.Lock()
	for i, w := range s.global {
		if w.queue == q {
			s.global = append(s.global[:i], s.global[i+1:]...)
			s.globalMu.Unlock()
			q.Close()
			return
		}
	}
	s.globalMu.Unlock()
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for _, b := range sh.kinds {
			for i, w := range b.watchers {
				if w.queue == q {
					b.watchers = append(b.watchers[:i], b.watchers[i+1:]...)
					sh.mu.Unlock()
					q.Close()
					return
				}
			}
		}
		sh.mu.Unlock()
	}
}

// notify fans an event out to the kind's watchers and any generic-prefix
// watchers, then records it into the resumable history (which takes
// ownership of ev.Object). Each subscriber gets its own copy so mutation
// never leaks between consumers. Callers hold the kind's shard write lock,
// which orders deliveries per kind; lock order is shard → global → history.
func (s *Store) notify(b *bucket, ev Event) {
	s.logMutation(ev)
	meta := ev.Object.GetMeta()
	for _, w := range b.watchers {
		if w.opts.matches(meta.Name, meta.Labels) {
			w.queue.Put(Event{ev.Type, ev.Object.DeepCopyObject(), ev.Rev})
		}
	}
	s.globalMu.Lock()
	if len(s.global) > 0 {
		key := api.Key(ev.Object)
		for _, w := range s.global {
			if strings.HasPrefix(key, w.prefix) && w.opts.matches(meta.Name, meta.Labels) {
				w.queue.Put(Event{ev.Type, ev.Object.DeepCopyObject(), ev.Rev})
			}
		}
	}
	s.globalMu.Unlock()
	s.record(ev)
}

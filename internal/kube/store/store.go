// Package store implements the etcd analogue backing the API server: a
// versioned object store with optimistic concurrency and prefix watches.
// Each mutation bumps a store-wide revision; every object carries the
// revision of its last write as its ResourceVersion.
package store

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"kubeshare/internal/kube/api"
	"kubeshare/internal/sim"
)

// Mutation errors.
var (
	// ErrNotFound is returned for reads and writes of missing keys.
	ErrNotFound = errors.New("store: object not found")
	// ErrExists is returned by Create when the key is already present.
	ErrExists = errors.New("store: object already exists")
	// ErrConflict is returned by Update when the caller's ResourceVersion is
	// stale (optimistic-concurrency failure).
	ErrConflict = errors.New("store: resource version conflict")
)

// EventType classifies watch events.
type EventType string

// Watch event types.
const (
	Added    EventType = "ADDED"
	Modified EventType = "MODIFIED"
	Deleted  EventType = "DELETED"
)

// Event is one watch notification. Object is a deep copy owned by the
// receiver; for Deleted events it is the last stored state.
type Event struct {
	Type   EventType
	Object api.Object
}

// watcher fans events out to one subscriber.
type watcher struct {
	prefix string
	queue  *sim.Queue[Event]
}

// Store is the versioned object store.
type Store struct {
	env      *sim.Env
	rev      int64
	objects  map[string]api.Object
	watchers []*watcher
	nextUID  int64
}

// New returns an empty store.
func New(env *sim.Env) *Store {
	return &Store{env: env, objects: make(map[string]api.Object)}
}

// Revision returns the store-wide revision of the last mutation.
func (s *Store) Revision() int64 { return s.rev }

// Create inserts obj, assigning UID, CreationTime and ResourceVersion. The
// stored copy is returned.
func (s *Store) Create(obj api.Object) (api.Object, error) {
	key := api.Key(obj)
	if _, ok := s.objects[key]; ok {
		return nil, fmt.Errorf("%w: %s", ErrExists, key)
	}
	stored := obj.DeepCopyObject()
	meta := stored.GetMeta()
	s.rev++
	s.nextUID++
	meta.ResourceVersion = s.rev
	meta.UID = fmt.Sprintf("uid-%d", s.nextUID)
	meta.CreationTime = s.env.Now()
	s.objects[key] = stored
	s.notify(Event{Added, stored.DeepCopyObject()})
	return stored.DeepCopyObject(), nil
}

// Update replaces the stored object. The caller's copy must carry the
// ResourceVersion it read; a stale version yields ErrConflict. UID and
// CreationTime are preserved from the stored object.
func (s *Store) Update(obj api.Object) (api.Object, error) {
	key := api.Key(obj)
	cur, ok := s.objects[key]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	curMeta := cur.GetMeta()
	if obj.GetMeta().ResourceVersion != curMeta.ResourceVersion {
		return nil, fmt.Errorf("%w: %s (have %d, stored %d)", ErrConflict,
			key, obj.GetMeta().ResourceVersion, curMeta.ResourceVersion)
	}
	stored := obj.DeepCopyObject()
	meta := stored.GetMeta()
	s.rev++
	meta.ResourceVersion = s.rev
	meta.UID = curMeta.UID
	meta.CreationTime = curMeta.CreationTime
	s.objects[key] = stored
	s.notify(Event{Modified, stored.DeepCopyObject()})
	return stored.DeepCopyObject(), nil
}

// Delete removes the object by key.
func (s *Store) Delete(kind, name string) error {
	key := api.KeyOf(kind, name)
	cur, ok := s.objects[key]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	delete(s.objects, key)
	s.rev++
	s.notify(Event{Deleted, cur.DeepCopyObject()})
	return nil
}

// Get returns a deep copy of the object by key.
func (s *Store) Get(kind, name string) (api.Object, error) {
	obj, ok := s.objects[api.KeyOf(kind, name)]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, api.KeyOf(kind, name))
	}
	return obj.DeepCopyObject(), nil
}

// List returns deep copies of all objects whose key has the given prefix
// (typically "<Kind>/"), sorted by key for determinism.
func (s *Store) List(prefix string) []api.Object {
	var keys []string
	for k := range s.objects {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	out := make([]api.Object, 0, len(keys))
	for _, k := range keys {
		out = append(out, s.objects[k].DeepCopyObject())
	}
	return out
}

// Watch subscribes to mutations of keys with the given prefix. When replay
// is true, the current matching objects are delivered first as Added events
// (list+watch semantics). Cancel the watch with StopWatch.
func (s *Store) Watch(prefix string, replay bool) *sim.Queue[Event] {
	w := &watcher{prefix: prefix, queue: sim.NewQueue[Event](s.env)}
	if replay {
		for _, obj := range s.List(prefix) {
			w.queue.Put(Event{Added, obj})
		}
	}
	s.watchers = append(s.watchers, w)
	return w.queue
}

// StopWatch cancels a subscription created by Watch and closes its queue.
func (s *Store) StopWatch(q *sim.Queue[Event]) {
	for i, w := range s.watchers {
		if w.queue == q {
			s.watchers = append(s.watchers[:i], s.watchers[i+1:]...)
			q.Close()
			return
		}
	}
}

func (s *Store) notify(ev Event) {
	key := api.Key(ev.Object)
	for _, w := range s.watchers {
		if strings.HasPrefix(key, w.prefix) {
			// Each subscriber gets its own copy so mutation never leaks
			// between consumers.
			w.queue.Put(Event{ev.Type, ev.Object.DeepCopyObject()})
		}
	}
}

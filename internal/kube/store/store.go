// Package store implements the etcd analogue backing the API server: a
// versioned object store with optimistic concurrency and prefix watches.
// Each mutation bumps a store-wide revision; every object carries the
// revision of its last write as its ResourceVersion.
//
// Objects are kept in per-kind buckets with a lazily sorted name index and
// a label posting index (key → value → names), so lists, selector queries
// and watch fan-out cost O(matching objects) instead of O(all keys).
// Watches can be filtered server-side by kind, exact name and label
// selector — subscribers never receive events they would discard.
package store

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"kubeshare/internal/kube/api"
	"kubeshare/internal/kube/labels"
	"kubeshare/internal/sim"
)

// Mutation errors.
var (
	// ErrNotFound is returned for reads and writes of missing keys.
	ErrNotFound = errors.New("store: object not found")
	// ErrExists is returned by Create when the key is already present.
	ErrExists = errors.New("store: object already exists")
	// ErrConflict is returned by Update when the caller's ResourceVersion is
	// stale (optimistic-concurrency failure).
	ErrConflict = errors.New("store: resource version conflict")
	// ErrGone is returned by WatchFilteredFrom when the requested revision
	// has been compacted out of the event history; the subscriber must
	// relist and start a fresh watch (the 410 Gone of the kube watch
	// protocol).
	ErrGone = errors.New("store: requested revision compacted")
)

// DefaultHistoryCap bounds the event history kept for resumable watches.
const DefaultHistoryCap = 4096

// EventType classifies watch events.
type EventType string

// Watch event types.
const (
	Added    EventType = "ADDED"
	Modified EventType = "MODIFIED"
	Deleted  EventType = "DELETED"
)

// Event is one watch notification. Object is a deep copy owned by the
// receiver; for Deleted events it is the last stored state. Rev is the
// store-wide revision the mutation committed at — for Added/Modified it
// equals the object's ResourceVersion; for Deleted it is the revision the
// deletion consumed (the object copy keeps its pre-delete version).
type Event struct {
	Type   EventType
	Object api.Object
	Rev    int64
}

// WatchOptions narrows a watch subscription server-side. The zero value
// subscribes to everything under the watch's prefix.
type WatchOptions struct {
	// Name restricts delivery to the object with this exact name.
	Name string
	// Selector restricts delivery to objects whose labels match. For
	// Deleted events the last stored labels are consulted. Nil matches all.
	Selector labels.Selector
}

// matches reports whether an object with the given name and labels passes
// the filter.
func (o WatchOptions) matches(name string, lbls map[string]string) bool {
	if o.Name != "" && o.Name != name {
		return false
	}
	if o.Selector != nil && !o.Selector.Matches(lbls) {
		return false
	}
	return true
}

// watcher fans events out to one subscriber. Watchers registered with a
// plain "<Kind>/" prefix live in the per-kind bucket and are only visited
// for mutations of that kind; others are matched by generic prefix.
type watcher struct {
	prefix string
	opts   WatchOptions
	queue  *sim.Queue[Event]
}

// bucket holds one kind's objects plus its indexes.
type bucket struct {
	objs map[string]api.Object // name → stored object
	// sorted caches the names in order; rebuilt lazily after create/delete.
	sorted []string
	dirty  bool
	// byLabel is the posting index: label key → value → set of names.
	byLabel map[string]map[string]map[string]struct{}
	// watchers subscribed to exactly this kind.
	watchers []*watcher
}

func newBucket() *bucket {
	return &bucket{
		objs:    make(map[string]api.Object),
		byLabel: make(map[string]map[string]map[string]struct{}),
	}
}

// names returns the bucket's object names sorted, rebuilding the cache if
// stale.
func (b *bucket) names() []string {
	if b.dirty {
		b.sorted = b.sorted[:0]
		for n := range b.objs {
			b.sorted = append(b.sorted, n)
		}
		sort.Strings(b.sorted)
		b.dirty = false
	}
	return b.sorted
}

func (b *bucket) indexLabels(name string, lbls map[string]string) {
	for k, v := range lbls {
		vals, ok := b.byLabel[k]
		if !ok {
			vals = make(map[string]map[string]struct{})
			b.byLabel[k] = vals
		}
		set, ok := vals[v]
		if !ok {
			set = make(map[string]struct{})
			vals[v] = set
		}
		set[name] = struct{}{}
	}
}

func (b *bucket) unindexLabels(name string, lbls map[string]string) {
	for k, v := range lbls {
		if vals, ok := b.byLabel[k]; ok {
			if set, ok := vals[v]; ok {
				delete(set, name)
				if len(set) == 0 {
					delete(vals, v)
				}
			}
			if len(vals) == 0 {
				delete(b.byLabel, k)
			}
		}
	}
}

// Store is the versioned object store.
type Store struct {
	env   *sim.Env
	rev   int64
	kinds map[string]*bucket
	// global holds watchers whose prefix is not a plain "<Kind>/" — they
	// are matched by string prefix against every mutation.
	global  []*watcher
	nextUID int64

	// history is the bounded mutation log backing resumable watches. Live
	// entries are history[histHead:]; the head advances instead of
	// shifting, with an amortized compaction once the dead prefix
	// dominates. Entries own their Object copies.
	history    []Event
	histHead   int
	histCap    int
	compactRev int64 // revision of the newest event dropped from history
}

// New returns an empty store.
func New(env *sim.Env) *Store {
	return &Store{env: env, kinds: make(map[string]*bucket), histCap: DefaultHistoryCap}
}

// Revision returns the store-wide revision of the last mutation.
func (s *Store) Revision() int64 { return s.rev }

// SetHistoryCap bounds the resumable-watch event history to n entries
// (default DefaultHistoryCap). Shrinking compacts immediately; resumes from
// before the compaction point return ErrGone. n <= 0 disables history, so
// every resume relists.
func (s *Store) SetHistoryCap(n int) {
	s.histCap = n
	s.trimHistory()
}

// record appends a mutation to the history, taking ownership of ev.Object.
func (s *Store) record(ev Event) {
	if s.histCap <= 0 {
		s.compactRev = ev.Rev
		return
	}
	s.history = append(s.history, ev)
	s.trimHistory()
}

func (s *Store) trimHistory() {
	for len(s.history)-s.histHead > s.histCap && s.histHead < len(s.history) {
		s.compactRev = s.history[s.histHead].Rev
		s.history[s.histHead] = Event{}
		s.histHead++
	}
	if s.histHead > len(s.history)/2 && s.histHead > 64 {
		live := copy(s.history, s.history[s.histHead:])
		for i := live; i < len(s.history); i++ {
			s.history[i] = Event{}
		}
		s.history = s.history[:live]
		s.histHead = 0
	}
}

func (s *Store) bucketOf(kind string) *bucket {
	b, ok := s.kinds[kind]
	if !ok {
		b = newBucket()
		s.kinds[kind] = b
	}
	return b
}

// kindNames returns all kind names sorted (for generic-prefix scans).
func (s *Store) kindNames() []string {
	out := make([]string, 0, len(s.kinds))
	for k := range s.kinds {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Create inserts obj, assigning UID, CreationTime and ResourceVersion. The
// stored copy is returned.
func (s *Store) Create(obj api.Object) (api.Object, error) {
	b := s.bucketOf(obj.Kind())
	name := obj.GetMeta().Name
	if _, ok := b.objs[name]; ok {
		return nil, fmt.Errorf("%w: %s", ErrExists, api.Key(obj))
	}
	stored := obj.DeepCopyObject()
	meta := stored.GetMeta()
	s.rev++
	s.nextUID++
	meta.ResourceVersion = s.rev
	meta.UID = fmt.Sprintf("uid-%d", s.nextUID)
	meta.CreationTime = s.env.Now()
	b.objs[name] = stored
	b.dirty = true
	b.indexLabels(name, meta.Labels)
	s.notify(b, Event{Added, stored.DeepCopyObject(), s.rev})
	return stored.DeepCopyObject(), nil
}

// Update replaces the stored object. The caller's copy must carry the
// ResourceVersion it read; a stale version yields ErrConflict. UID and
// CreationTime are preserved from the stored object. For kinds with a
// status subresource (api.StatusCarrier) the stored status is preserved
// too — status writes go through UpdateStatus.
func (s *Store) Update(obj api.Object) (api.Object, error) {
	return s.update(obj, false)
}

// UpdateStatus replaces only the stored object's status, preserving spec
// and metadata (labels, annotations, owner) from the stored copy — the
// status-subresource write. Objects that do not implement
// api.StatusCarrier fall back to a whole-object Update.
func (s *Store) UpdateStatus(obj api.Object) (api.Object, error) {
	return s.update(obj, true)
}

func (s *Store) update(obj api.Object, statusOnly bool) (api.Object, error) {
	b := s.bucketOf(obj.Kind())
	name := obj.GetMeta().Name
	cur, ok := b.objs[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, api.Key(obj))
	}
	curMeta := cur.GetMeta()
	if obj.GetMeta().ResourceVersion != curMeta.ResourceVersion {
		return nil, fmt.Errorf("%w: %s (have %d, stored %d)", ErrConflict,
			api.Key(obj), obj.GetMeta().ResourceVersion, curMeta.ResourceVersion)
	}
	var stored api.Object
	if sc, carries := cur.(api.StatusCarrier); carries {
		if statusOnly {
			// Stored spec + metadata, caller's status.
			stored = cur.DeepCopyObject()
			stored.(api.StatusCarrier).SetStatusFrom(obj)
		} else {
			// Caller's spec + metadata, stored status.
			stored = obj.DeepCopyObject()
			stored.(api.StatusCarrier).SetStatusFrom(sc)
		}
	} else {
		stored = obj.DeepCopyObject()
	}
	meta := stored.GetMeta()
	s.rev++
	meta.ResourceVersion = s.rev
	meta.UID = curMeta.UID
	meta.CreationTime = curMeta.CreationTime
	b.unindexLabels(name, curMeta.Labels)
	b.objs[name] = stored
	b.indexLabels(name, meta.Labels)
	s.notify(b, Event{Modified, stored.DeepCopyObject(), s.rev})
	return stored.DeepCopyObject(), nil
}

// Delete removes the object by key.
func (s *Store) Delete(kind, name string) error {
	b := s.bucketOf(kind)
	cur, ok := b.objs[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, api.KeyOf(kind, name))
	}
	delete(b.objs, name)
	b.dirty = true
	b.unindexLabels(name, cur.GetMeta().Labels)
	s.rev++
	s.notify(b, Event{Deleted, cur.DeepCopyObject(), s.rev})
	return nil
}

// Get returns a deep copy of the object by key.
func (s *Store) Get(kind, name string) (api.Object, error) {
	if b, ok := s.kinds[kind]; ok {
		if obj, ok := b.objs[name]; ok {
			return obj.DeepCopyObject(), nil
		}
	}
	return nil, fmt.Errorf("%w: %s", ErrNotFound, api.KeyOf(kind, name))
}

// Count returns the number of objects of a kind without copying them.
func (s *Store) Count(kind string) int {
	if b, ok := s.kinds[kind]; ok {
		return len(b.objs)
	}
	return 0
}

// List returns deep copies of all objects whose key has the given prefix
// (typically "<Kind>/"), sorted by key for determinism. A "<Kind>/..."
// prefix is answered from the kind's index in O(matching).
func (s *Store) List(prefix string) []api.Object {
	if kind, namePrefix, ok := splitPrefix(prefix); ok {
		b, exists := s.kinds[kind]
		if !exists {
			return nil
		}
		return b.list(namePrefix)
	}
	// Generic prefix ("" or a partial kind name): walk matching kinds in
	// key order.
	var out []api.Object
	for _, kind := range s.kindNames() {
		if !strings.HasPrefix(kind+"/", prefix) {
			continue
		}
		out = append(out, s.kinds[kind].list("")...)
	}
	return out
}

// list returns deep copies of the bucket's objects whose name starts with
// namePrefix, in name order.
func (b *bucket) list(namePrefix string) []api.Object {
	names := b.names()
	lo := sort.SearchStrings(names, namePrefix)
	var out []api.Object
	for _, n := range names[lo:] {
		if !strings.HasPrefix(n, namePrefix) {
			break
		}
		out = append(out, b.objs[n].DeepCopyObject())
	}
	return out
}

// Scan calls fn on each of kind's objects in name order without copying,
// stopping early when fn returns false. The objects are the store's live
// instances: fn must treat them as read-only and must not retain them after
// returning — mutations or retained references would corrupt the store's
// copy-on-write discipline. Intended for samplers and aggregate metrics that
// would otherwise deep-copy the world once per tick.
func (s *Store) Scan(kind string, fn func(api.Object) bool) {
	b, ok := s.kinds[kind]
	if !ok {
		return
	}
	for _, n := range b.names() {
		if !fn(b.objs[n]) {
			return
		}
	}
}

// ListSelector returns deep copies of the kind's objects whose labels match
// sel, sorted by name. Equality and existence requirements are answered
// from the label posting index; the smallest posting set drives the scan.
func (s *Store) ListSelector(kind string, sel labels.Selector) []api.Object {
	b, ok := s.kinds[kind]
	if !ok {
		return nil
	}
	if sel == nil || sel.Empty() {
		return b.list("")
	}
	candidates := b.candidateNames(sel)
	if candidates == nil {
		// No indexable requirement: full (sorted) scan.
		var out []api.Object
		for _, n := range b.names() {
			if sel.Matches(b.objs[n].GetMeta().Labels) {
				out = append(out, b.objs[n].DeepCopyObject())
			}
		}
		return out
	}
	sort.Strings(candidates)
	var out []api.Object
	for _, n := range candidates {
		obj, ok := b.objs[n]
		if ok && sel.Matches(obj.GetMeta().Labels) {
			out = append(out, obj.DeepCopyObject())
		}
	}
	return out
}

// candidateNames returns the smallest posting set usable for sel, or nil
// when no requirement is indexable (caller falls back to a full scan). The
// result may contain false positives; callers must re-check Matches.
func (b *bucket) candidateNames(sel labels.Selector) []string {
	bestSize := -1
	var best []string
	for _, r := range sel.Requirements() {
		var size int
		switch r.Op {
		case labels.Equals:
			size = len(b.byLabel[r.Key][r.Value])
		case labels.Exists:
			for _, set := range b.byLabel[r.Key] {
				size += len(set)
			}
		default:
			continue // not indexable; filter-only
		}
		if bestSize == -1 || size < bestSize {
			bestSize = size
			best = nil
			switch r.Op {
			case labels.Equals:
				for n := range b.byLabel[r.Key][r.Value] {
					best = append(best, n)
				}
			case labels.Exists:
				for _, set := range b.byLabel[r.Key] {
					for n := range set {
						best = append(best, n)
					}
				}
			}
			if size == 0 {
				return []string{}
			}
		}
	}
	return best
}

// splitPrefix decomposes "<Kind>/<name-prefix>" into its parts; ok is false
// for prefixes without a slash (generic scans).
func splitPrefix(prefix string) (kind, namePrefix string, ok bool) {
	i := strings.IndexByte(prefix, '/')
	if i < 0 {
		return "", "", false
	}
	return prefix[:i], prefix[i+1:], true
}

// Watch subscribes to mutations of keys with the given prefix. When replay
// is true, the current matching objects are delivered first as Added events
// (list+watch semantics). Cancel the watch with StopWatch.
func (s *Store) Watch(prefix string, replay bool) *sim.Queue[Event] {
	return s.WatchFiltered(prefix, WatchOptions{}, replay)
}

// WatchFiltered is Watch narrowed by server-side filters: events are only
// delivered for objects passing opts (exact name and/or label selector).
// Replay delivers the currently matching objects as Added events. The
// filters run in the store, so subscribers never pay for events they would
// discard — the kube way of keeping watch fan-out O(interested parties).
func (s *Store) WatchFiltered(prefix string, opts WatchOptions, replay bool) *sim.Queue[Event] {
	w := &watcher{prefix: prefix, opts: opts, queue: sim.NewQueue[Event](s.env)}
	if replay {
		for _, obj := range s.replaySet(prefix, opts) {
			w.queue.Put(Event{Added, obj, obj.GetMeta().ResourceVersion})
		}
	}
	if kind, namePrefix, ok := splitPrefix(prefix); ok && namePrefix == "" {
		b := s.bucketOf(kind)
		b.watchers = append(b.watchers, w)
	} else {
		s.global = append(s.global, w)
	}
	return w.queue
}

// WatchFilteredFrom resumes a dropped watch: it subscribes like
// WatchFiltered but first replays, from the event history, every matching
// mutation that committed after fromRev — so a subscriber that recorded the
// last revision it saw misses nothing across a disconnect. When fromRev
// predates the compaction horizon the gap is unrecoverable and ErrGone is
// returned; the subscriber must relist and start fresh.
func (s *Store) WatchFilteredFrom(prefix string, opts WatchOptions, fromRev int64) (*sim.Queue[Event], error) {
	if fromRev < s.compactRev {
		return nil, fmt.Errorf("%w: from %d, compacted through %d", ErrGone, fromRev, s.compactRev)
	}
	w := &watcher{prefix: prefix, opts: opts, queue: sim.NewQueue[Event](s.env)}
	for _, ev := range s.history[s.histHead:] {
		if ev.Rev <= fromRev {
			continue
		}
		meta := ev.Object.GetMeta()
		if !strings.HasPrefix(api.Key(ev.Object), prefix) || !opts.matches(meta.Name, meta.Labels) {
			continue
		}
		w.queue.Put(Event{ev.Type, ev.Object.DeepCopyObject(), ev.Rev})
	}
	if kind, namePrefix, ok := splitPrefix(prefix); ok && namePrefix == "" {
		b := s.bucketOf(kind)
		b.watchers = append(b.watchers, w)
	} else {
		s.global = append(s.global, w)
	}
	return w.queue, nil
}

// replaySet lists the objects a filtered watch replays, using the indexes
// where possible.
func (s *Store) replaySet(prefix string, opts WatchOptions) []api.Object {
	kind, namePrefix, ok := splitPrefix(prefix)
	if ok && namePrefix == "" && opts.Name != "" {
		// Exact-name watch: at most one object.
		if obj, err := s.Get(kind, opts.Name); err == nil {
			if opts.Selector == nil || opts.Selector.Matches(obj.GetMeta().Labels) {
				return []api.Object{obj}
			}
		}
		return nil
	}
	var objs []api.Object
	if ok && namePrefix == "" && opts.Selector != nil {
		objs = s.ListSelector(kind, opts.Selector)
	} else {
		objs = s.List(prefix)
	}
	var out []api.Object
	for _, obj := range objs {
		if opts.matches(obj.GetMeta().Name, obj.GetMeta().Labels) {
			out = append(out, obj)
		}
	}
	return out
}

// StopWatch cancels a subscription created by Watch and closes its queue.
func (s *Store) StopWatch(q *sim.Queue[Event]) {
	for i, w := range s.global {
		if w.queue == q {
			s.global = append(s.global[:i], s.global[i+1:]...)
			q.Close()
			return
		}
	}
	for _, b := range s.kinds {
		for i, w := range b.watchers {
			if w.queue == q {
				b.watchers = append(b.watchers[:i], b.watchers[i+1:]...)
				q.Close()
				return
			}
		}
	}
}

// notify fans an event out to the kind's watchers and any generic-prefix
// watchers, then records it into the resumable history (which takes
// ownership of ev.Object). Each subscriber gets its own copy so mutation
// never leaks between consumers.
func (s *Store) notify(b *bucket, ev Event) {
	meta := ev.Object.GetMeta()
	for _, w := range b.watchers {
		if w.opts.matches(meta.Name, meta.Labels) {
			w.queue.Put(Event{ev.Type, ev.Object.DeepCopyObject(), ev.Rev})
		}
	}
	if len(s.global) > 0 {
		key := api.Key(ev.Object)
		for _, w := range s.global {
			if strings.HasPrefix(key, w.prefix) && w.opts.matches(meta.Name, meta.Labels) {
				w.queue.Put(Event{ev.Type, ev.Object.DeepCopyObject(), ev.Rev})
			}
		}
	}
	s.record(ev)
}

package store

import (
	"errors"
	"testing"
	"testing/quick"

	"kubeshare/internal/kube/api"
	"kubeshare/internal/sim"
)

func pod(name string) *api.Pod {
	return &api.Pod{
		ObjectMeta: api.ObjectMeta{Name: name},
		Spec:       api.PodSpec{Containers: []api.Container{{Name: "c", Image: "i"}}},
	}
}

func TestCreateAssignsMetadata(t *testing.T) {
	env := sim.NewEnv()
	s := New(env)
	stored, err := s.Create(pod("a"))
	if err != nil {
		t.Fatal(err)
	}
	m := stored.GetMeta()
	if m.UID == "" || m.ResourceVersion == 0 {
		t.Fatalf("meta not filled: %+v", m)
	}
}

func TestCreateDuplicateFails(t *testing.T) {
	env := sim.NewEnv()
	s := New(env)
	if _, err := s.Create(pod("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create(pod("a")); err == nil {
		t.Fatal("duplicate create succeeded")
	}
}

func TestGetReturnsCopy(t *testing.T) {
	env := sim.NewEnv()
	s := New(env)
	s.Create(pod("a"))
	g1, _ := s.Get("Pod", "a")
	g1.(*api.Pod).Status.Phase = api.PodRunning
	g2, _ := s.Get("Pod", "a")
	if g2.(*api.Pod).Status.Phase == api.PodRunning {
		t.Fatal("Get returns aliased object")
	}
}

func TestUpdateConflictOnStaleVersion(t *testing.T) {
	env := sim.NewEnv()
	s := New(env)
	stored, _ := s.Create(pod("a"))
	fresh := stored.DeepCopyObject().(*api.Pod)
	stale := stored.DeepCopyObject().(*api.Pod)
	fresh.Status.Phase = api.PodRunning
	if _, err := s.Update(fresh); err != nil {
		t.Fatal(err)
	}
	stale.Status.Phase = api.PodFailed
	if _, err := s.Update(stale); !errors.Is(err, ErrConflict) {
		t.Fatalf("stale update err = %v, want conflict", err)
	}
}

func TestUpdatePreservesUIDAndCreationTime(t *testing.T) {
	env := sim.NewEnv()
	s := New(env)
	stored, _ := s.Create(pod("a"))
	orig := stored.GetMeta()
	upd := stored.DeepCopyObject().(*api.Pod)
	upd.UID = "spoofed"
	out, err := s.Update(upd)
	if err != nil {
		t.Fatal(err)
	}
	if out.GetMeta().UID != orig.UID {
		t.Fatal("UID not preserved across update")
	}
}

func TestDeleteAndNotFound(t *testing.T) {
	env := sim.NewEnv()
	s := New(env)
	s.Create(pod("a"))
	if err := s.Delete("Pod", "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("Pod", "a"); err == nil {
		t.Fatal("deleted object still readable")
	}
	if err := s.Delete("Pod", "a"); err == nil {
		t.Fatal("double delete succeeded")
	}
}

func TestListSortedAndPrefixed(t *testing.T) {
	env := sim.NewEnv()
	s := New(env)
	s.Create(pod("b"))
	s.Create(pod("a"))
	s.Create(&api.Node{ObjectMeta: api.ObjectMeta{Name: "n1"}})
	pods := s.List("Pod/")
	if len(pods) != 2 || pods[0].GetMeta().Name != "a" || pods[1].GetMeta().Name != "b" {
		t.Fatalf("list = %v", pods)
	}
}

func TestWatchReplayAndLiveEvents(t *testing.T) {
	env := sim.NewEnv()
	s := New(env)
	s.Create(pod("pre"))
	q := s.Watch("Pod/", true)
	var events []Event
	env.Go("w", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			ev, ok := q.Get(p)
			if !ok {
				return
			}
			events = append(events, ev)
		}
	})
	env.Go("mutator", func(p *sim.Proc) {
		p.Sleep(1)
		s.Create(pod("live"))
		stored, _ := s.Get("Pod", "live")
		stored.(*api.Pod).Status.Phase = api.PodRunning
		s.Update(stored)
		s.Delete("Pod", "live")
	})
	env.Run()
	want := []EventType{Added, Added, Modified, Deleted}
	if len(events) != 4 {
		t.Fatalf("events = %d", len(events))
	}
	for i, w := range want {
		if events[i].Type != w {
			t.Fatalf("event %d = %s, want %s", i, events[i].Type, w)
		}
	}
	if events[0].Object.GetMeta().Name != "pre" {
		t.Fatal("replay missing pre-existing object")
	}
}

func TestWatchPrefixFiltering(t *testing.T) {
	env := sim.NewEnv()
	s := New(env)
	q := s.Watch("Node/", false)
	var got []Event
	env.Go("w", func(p *sim.Proc) {
		for {
			ev, ok := q.Get(p)
			if !ok {
				return
			}
			got = append(got, ev)
		}
	})
	env.Go("m", func(p *sim.Proc) {
		s.Create(pod("a"))
		s.Create(&api.Node{ObjectMeta: api.ObjectMeta{Name: "n1"}})
		s.StopWatch(q)
	})
	env.Run()
	if len(got) != 1 || got[0].Object.Kind() != "Node" {
		t.Fatalf("got = %v", got)
	}
}

func TestWatchDeliversCopies(t *testing.T) {
	env := sim.NewEnv()
	s := New(env)
	q := s.Watch("Pod/", false)
	env.Go("m", func(p *sim.Proc) {
		s.Create(pod("a"))
	})
	env.Go("w", func(p *sim.Proc) {
		ev, _ := q.Get(p)
		ev.Object.(*api.Pod).Status.Phase = api.PodFailed
		stored, _ := s.Get("Pod", "a")
		if stored.(*api.Pod).Status.Phase == api.PodFailed {
			t.Error("watch event aliases stored object")
		}
	})
	env.Run()
}

func TestStopWatchClosesQueue(t *testing.T) {
	env := sim.NewEnv()
	s := New(env)
	q := s.Watch("Pod/", false)
	var closed bool
	env.Go("w", func(p *sim.Proc) {
		_, ok := q.Get(p)
		closed = !ok
	})
	env.Go("m", func(p *sim.Proc) { s.StopWatch(q) })
	env.Run()
	if !closed {
		t.Fatal("watch queue not closed")
	}
	s.Create(pod("a")) // must not panic (watcher removed)
}

// Property: resource versions strictly increase over any mutation sequence.
func TestPropertyResourceVersionMonotonic(t *testing.T) {
	f := func(ops []uint8) bool {
		env := sim.NewEnv()
		s := New(env)
		last := int64(0)
		names := []string{"a", "b", "c"}
		for _, op := range ops {
			name := names[int(op)%len(names)]
			switch (op / 3) % 3 {
			case 0:
				if stored, err := s.Create(pod(name)); err == nil {
					if v := stored.GetMeta().ResourceVersion; v <= last {
						return false
					} else {
						last = v
					}
				}
			case 1:
				if cur, err := s.Get("Pod", name); err == nil {
					if stored, err := s.Update(cur); err == nil {
						if v := stored.GetMeta().ResourceVersion; v <= last {
							return false
						} else {
							last = v
						}
					}
				}
			case 2:
				s.Delete("Pod", name)
			}
			if s.Revision() < last {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

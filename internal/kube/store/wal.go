// Durability: a deterministic write-ahead log plus periodic checkpoints,
// the etcd-analogue persistence layer behind apiserver crash/restart chaos.
//
// The durable medium is a byte buffer standing in for the WAL file and
// checkpoint file a real control plane fsyncs — it survives a Store crash
// because Crash only discards the in-memory object state and rebuilds it
// from the medium. Every mutation appends one framed record
// ([len][crc32][JSON payload]) under its shard lock, so per-kind record
// order is commit order; a checkpoint serializes the whole store under all
// shard locks and truncates the log.
//
// Restore loads the checkpoint, then replays the log in frame order. A torn
// tail — a truncated or corrupt final region, the crash-mid-write case — is
// detected by the frame length/CRC/decode checks, truncated off the medium,
// and replay stops there: the store recovers to the longest valid prefix
// and never wedges. Consumers that observed a reverted mutation are fenced
// by the revision rules (see WatchFilteredFrom) and by the restart epoch.
//
// All timestamps in this layer are virtual-clock values carried as int64
// nanoseconds; the file deliberately imports neither os nor time (enforced
// by tools/detvet) — durability is simulated, deterministic state, not host
// I/O.
package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"sort"
	"sync"

	"kubeshare/internal/kube/api"
	"kubeshare/internal/sim"
)

// Modeled durable-medium costs, in virtual nanoseconds. They price the
// outage a real restart of the same footprint would incur: sequential
// reads/writes at ~1 GB/s and a per-record replay cost covering decode and
// index insertion. RestoreStats.ModeledOutageNS and the fig17 experiment
// are built from these.
const (
	// DurableIONSPerByte prices sequential checkpoint/WAL reads and writes.
	DurableIONSPerByte = 1
	// ReplayNSPerRecord prices decoding and applying one WAL record.
	ReplayNSPerRecord = 2000
)

// walPut/walDelete tag WAL records. A put carries the full post-mutation
// stored object (spec-vs-status subresource merging already happened), so
// replay is a blind upsert; a delete carries only the key.
const (
	walPut    = "PUT"
	walDelete = "DEL"
)

// walRecord is one logged mutation.
type walRecord struct {
	Op   string
	Rev  int64
	Kind string
	Name string
	// Obj is the stored object after the mutation (nil for deletes).
	Obj json.RawMessage `json:",omitempty"`
}

// Durable is the simulated durable medium: the checkpoint area plus the
// append-only log. It is owned by the Store that writes it but survives
// Crash, exactly as the files under an etcd data dir survive the process.
type Durable struct {
	mu         sync.Mutex
	checkpoint []byte // last serialized checkpoint; nil before the first
	wal        []byte // framed records appended since that checkpoint
	records    int64  // frames currently in wal
}

// Sizes reports the medium's current footprint: checkpoint bytes, WAL bytes
// and WAL record count.
func (d *Durable) Sizes() (checkpointBytes, walBytes int, walRecords int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.checkpoint), len(d.wal), d.records
}

// DurableSizes is Durable.Sizes through the store (zeroes with durability
// off).
func (s *Store) DurableSizes() (checkpointBytes, walBytes int, walRecords int64) {
	if s.dur == nil {
		return 0, 0, 0
	}
	return s.dur.Sizes()
}

// checkpointKind is one kind's objects in a checkpoint, in name order.
type checkpointKind struct {
	Kind    string
	Objects []json.RawMessage
}

// checkpointState is the full serialized store: the revision counters and
// every object, grouped by kind (kinds sorted, objects name-sorted), so the
// encoding is byte-deterministic for a given store state.
type checkpointState struct {
	Rev       int64
	NextUID   int64
	ShardRevs [NumShards]int64
	Kinds     []checkpointKind
}

// RestoreStats describes one crash/restore cycle.
type RestoreStats struct {
	// CheckpointRev is the revision the loaded checkpoint was taken at
	// (zero when the store restored from an empty medium).
	CheckpointRev int64
	// RestoredRev is the store revision after replay; the next mutation
	// commits strictly above it.
	RestoredRev int64
	// Replayed is the number of WAL records applied on top of the
	// checkpoint.
	Replayed int
	// TornTail is true when the log ended in a truncated or corrupt region
	// that was cut off; mutations in it were reverted.
	TornTail bool
	// CheckpointBytes and WALBytes are the medium footprint read back.
	CheckpointBytes int
	WALBytes        int
	// ModeledOutageNS prices the restart a real system of this footprint
	// would pay: sequential re-read of checkpoint + log, plus per-record
	// replay (virtual nanoseconds; the simulated restore itself is
	// instantaneous).
	ModeledOutageNS int64
}

// EnableDurability attaches a fresh durable medium and takes an immediate
// checkpoint of the current state, so a crash at any later instant can
// restore everything (enabling on a non-empty store is the common case: the
// cluster wires its nodes first). Hooks observe the layer for telemetry:
// onAppend fires per batch of WAL records, onCheckpoint per checkpoint with
// the bytes written; either may be nil. Idempotent: re-enabling keeps the
// existing medium.
func (s *Store) EnableDurability(onAppend func(records int), onCheckpoint func(bytes int)) {
	if s.dur != nil {
		return
	}
	s.onWALAppend = onAppend
	s.onCheckpoint = onCheckpoint
	s.dur = &Durable{}
	s.Checkpoint()
}

// DurabilityEnabled reports whether the store has a durable medium.
func (s *Store) DurabilityEnabled() bool { return s.dur != nil }

// Epoch counts crash/restore cycles. Consumers (reflectors, schedulers)
// compare epochs across reconnects: a changed epoch means in-memory server
// state they depended on — watch registrations, possibly torn-tail-reverted
// mutations — did not survive, and they must relist rather than resume.
func (s *Store) Epoch() int64 { return s.epoch.Load() }

// logMutation appends one framed record for ev. Callers hold the mutating
// shard's lock, so per-kind frame order is commit order (frames from other
// shards may interleave, which replay tolerates: records only ever touch
// their own kind, and revision restoration folds with max).
func (s *Store) logMutation(ev Event) {
	if s.dur == nil {
		return
	}
	rec := walRecord{Rev: ev.Rev, Kind: ev.Object.Kind(), Name: ev.Object.GetMeta().Name}
	if ev.Type == Deleted {
		rec.Op = walDelete
	} else {
		rec.Op = walPut
		obj, err := json.Marshal(ev.Object)
		if err != nil {
			panic(fmt.Sprintf("store: wal encode %s: %v", api.Key(ev.Object), err))
		}
		rec.Obj = obj
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		panic(fmt.Sprintf("store: wal frame %s/%s: %v", rec.Kind, rec.Name, err))
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	d := s.dur
	d.mu.Lock()
	d.wal = append(d.wal, hdr[:]...)
	d.wal = append(d.wal, payload...)
	d.records++
	d.mu.Unlock()
	if s.onWALAppend != nil {
		s.onWALAppend(1)
	}
}

// Checkpoint serializes the whole store to the durable medium and truncates
// the WAL. It runs under every shard's write lock (taken in index order),
// so the image is a consistent cut: the global revision equals the max
// committed revision across shards and no mutation straddles the boundary.
// Returns the checkpoint size in bytes (0 when durability is off).
func (s *Store) Checkpoint() int {
	if s.dur == nil {
		return 0
	}
	for i := range s.shards {
		s.shards[i].mu.Lock()
	}
	ck := checkpointState{Rev: s.rev.Load(), NextUID: s.nextUID.Load()}
	for i := range s.shards {
		ck.ShardRevs[i] = s.shards[i].rev
	}
	var kinds []string
	for i := range s.shards {
		for k := range s.shards[i].kinds {
			kinds = append(kinds, k)
		}
	}
	sort.Strings(kinds)
	for _, kind := range kinds {
		b := s.shards[shardIndex(kind)].kinds[kind]
		ks := checkpointKind{Kind: kind}
		for _, name := range b.names() {
			obj, err := json.Marshal(b.objs[name])
			if err != nil {
				panic(fmt.Sprintf("store: checkpoint encode %s/%s: %v", kind, name, err))
			}
			ks.Objects = append(ks.Objects, obj)
		}
		ck.Kinds = append(ck.Kinds, ks)
	}
	image, err := json.Marshal(ck)
	if err != nil {
		panic(fmt.Sprintf("store: checkpoint encode: %v", err))
	}
	for i := len(s.shards) - 1; i >= 0; i-- {
		s.shards[i].mu.Unlock()
	}
	d := s.dur
	d.mu.Lock()
	d.checkpoint = image
	d.wal = d.wal[:0]
	d.records = 0
	d.mu.Unlock()
	if s.onCheckpoint != nil {
		s.onCheckpoint(len(image))
	}
	return len(image)
}

// TearWALTail damages the durable log's tail — the chaos hook simulating a
// crash mid-write. n > 0 truncates the last n bytes (clamped); n <= 0 flips
// the final byte in place (a CRC failure). Reports whether there was any
// log to damage.
func (s *Store) TearWALTail(n int) bool {
	if s.dur == nil {
		return false
	}
	d := s.dur
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.wal) == 0 {
		return false
	}
	if n <= 0 {
		d.wal[len(d.wal)-1] ^= 0xFF
		return true
	}
	if n > len(d.wal) {
		n = len(d.wal)
	}
	d.wal = d.wal[:len(d.wal)-n]
	return true
}

// Crash discards every piece of in-memory state — objects, indexes, watch
// registrations, resumable history — as an apiserver process death would,
// then restores from the durable medium: checkpoint load plus WAL replay
// with torn-tail truncation. All watch queues close (subscribers see EOF
// and must reconnect), the restart epoch increments, and the compaction
// horizon moves to the restored revision so every resume-from-before-the-
// crash gets ErrGone and relists. Returns an error only when durability was
// never enabled.
func (s *Store) Crash() (RestoreStats, error) {
	if s.dur == nil {
		return RestoreStats{}, fmt.Errorf("store: Crash without durability enabled")
	}
	// 1. Tear down: collect every watch queue, clear all object state.
	var doomed []*sim.Queue[Event]
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for _, b := range sh.kinds {
			for _, w := range b.watchers {
				doomed = append(doomed, w.queue)
			}
		}
		sh.kinds = make(map[string]*bucket)
		sh.rev = 0
		sh.mu.Unlock()
	}
	s.globalMu.Lock()
	for _, w := range s.global {
		doomed = append(doomed, w.queue)
	}
	s.global = nil
	s.globalMu.Unlock()
	s.histMu.Lock()
	s.history = nil
	s.histHead = 0
	s.histMu.Unlock()

	// 2. Read the medium back, validating the WAL and truncating a torn
	// tail in place.
	d := s.dur
	d.mu.Lock()
	image := d.checkpoint
	wal, torn, replayable := validateWAL(d.wal)
	if torn {
		d.wal = d.wal[:len(wal)]
		d.records = int64(replayable)
	}
	d.mu.Unlock()

	st := RestoreStats{TornTail: torn, CheckpointBytes: len(image), WALBytes: len(wal)}

	// 3. Checkpoint load.
	var ck checkpointState
	if len(image) > 0 {
		if err := json.Unmarshal(image, &ck); err != nil {
			// A corrupt checkpoint is unrecoverable by design: it is written
			// atomically (never appended), so this is a programming error,
			// not a crash artifact.
			panic(fmt.Sprintf("store: checkpoint corrupt: %v", err))
		}
	}
	st.CheckpointRev = ck.Rev
	maxRev := ck.Rev
	nextUID := ck.NextUID
	for _, ks := range ck.Kinds {
		sh := s.shardFor(ks.Kind)
		sh.mu.Lock()
		b := sh.bucketOf(ks.Kind)
		for _, raw := range ks.Objects {
			obj, err := decodeObject(ks.Kind, raw)
			if err != nil {
				panic(fmt.Sprintf("store: checkpoint decode %s: %v", ks.Kind, err))
			}
			meta := obj.GetMeta()
			b.objs[meta.Name] = obj
			b.indexLabels(meta.Name, meta.Labels)
		}
		b.dirty.Store(true)
		sh.mu.Unlock()
	}
	for i := range s.shards {
		s.shards[i].mu.Lock()
		s.shards[i].rev = ck.ShardRevs[i]
		s.shards[i].mu.Unlock()
	}

	// 4. WAL replay over the valid prefix.
	off := 0
	for off < len(wal) {
		n := int(binary.LittleEndian.Uint32(wal[off:]))
		payload := wal[off+8 : off+8+n]
		off += 8 + n
		var rec walRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			panic("store: validated wal record failed to decode") // validateWAL checked this
		}
		sh := s.shardFor(rec.Kind)
		sh.mu.Lock()
		b := sh.bucketOf(rec.Kind)
		switch rec.Op {
		case walPut:
			obj, err := decodeObject(rec.Kind, rec.Obj)
			if err != nil {
				panic(fmt.Sprintf("store: wal decode %s/%s: %v", rec.Kind, rec.Name, err))
			}
			meta := obj.GetMeta()
			if prev, ok := b.objs[meta.Name]; ok {
				b.unindexLabels(meta.Name, prev.GetMeta().Labels)
			}
			b.objs[meta.Name] = obj
			b.indexLabels(meta.Name, meta.Labels)
			if uid := parseUID(meta.UID); uid > nextUID {
				nextUID = uid
			}
		case walDelete:
			if prev, ok := b.objs[rec.Name]; ok {
				b.unindexLabels(rec.Name, prev.GetMeta().Labels)
				delete(b.objs, rec.Name)
			}
		}
		b.dirty.Store(true)
		if rec.Rev > sh.rev {
			sh.rev = rec.Rev
		}
		sh.mu.Unlock()
		if rec.Rev > maxRev {
			maxRev = rec.Rev
		}
		st.Replayed++
	}

	// 5. Counters resume strictly above everything restored: the global
	// revision is the max over the checkpoint cut and every replayed
	// record, so the next mutation's revision exceeds every shard's.
	s.rev.Store(maxRev)
	s.nextUID.Store(nextUID)
	s.histMu.Lock()
	s.compactRev = maxRev
	s.histMu.Unlock()
	s.epoch.Add(1)

	// 6. Close the dead queues last (closing wakes parked consumers, whose
	// reconnects must observe the fully restored state).
	for _, q := range doomed {
		q.Close()
	}

	st.RestoredRev = maxRev
	st.ModeledOutageNS = int64(st.CheckpointBytes+st.WALBytes)*DurableIONSPerByte +
		int64(st.Replayed)*ReplayNSPerRecord
	return st, nil
}

// validateWAL scans the framed log and returns the longest valid prefix,
// whether a torn tail was cut, and the record count of the prefix. A frame
// is valid when its header fits, its declared length fits, its CRC matches
// and its payload decodes as a walRecord.
func validateWAL(wal []byte) (valid []byte, torn bool, records int) {
	off := 0
	for off < len(wal) {
		if len(wal)-off < 8 {
			return wal[:off], true, records
		}
		n := int(binary.LittleEndian.Uint32(wal[off:]))
		if n <= 0 || n > len(wal)-off-8 {
			return wal[:off], true, records
		}
		payload := wal[off+8 : off+8+n]
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(wal[off+4:]) {
			return wal[:off], true, records
		}
		var rec walRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return wal[:off], true, records
		}
		off += 8 + n
		records++
	}
	return wal, false, records
}

// decodeObject rebuilds a typed object from its kind and JSON form via the
// kind registry.
func decodeObject(kind string, raw json.RawMessage) (api.Object, error) {
	obj, err := api.NewObject(kind)
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(raw, obj); err != nil {
		return nil, err
	}
	return obj, nil
}

// parseUID extracts N from the store's "uid-N" UID scheme (0 for foreign
// forms), letting restore advance the UID counter past every restored
// object.
func parseUID(uid string) int64 {
	var n int64
	if _, err := fmt.Sscanf(uid, "uid-%d", &n); err != nil {
		return 0
	}
	return n
}

package store

import (
	"errors"
	"fmt"
	"testing"

	"kubeshare/internal/kube/api"
	"kubeshare/internal/kube/labels"
	"kubeshare/internal/sim"
	"kubeshare/internal/simrand"
)

// testKinds are the registered kinds the durability tests churn over; they
// hash to distinct shards often enough to exercise the per-shard revision
// restoration.
var testKinds = []string{"Pod", "Node", api.KindEvent, "ReplicationController"}

func newTestObj(kind, name string, labels map[string]string) api.Object {
	obj, err := api.NewObject(kind)
	if err != nil {
		panic(err)
	}
	meta := obj.GetMeta()
	meta.Name = name
	meta.Labels = labels
	return obj
}

// churn applies n seeded random mutations to the store and returns how many
// were applied (conflicting ops — create-exists, delete-missing — count as
// applied no-ops so two stores fed the same stream stay in lockstep).
func churn(t *testing.T, s *Store, rng *simrand.Source, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		kind := testKinds[rng.Intn(len(testKinds))]
		name := fmt.Sprintf("obj-%d", rng.Intn(12))
		switch rng.Intn(3) {
		case 0:
			lbl := map[string]string{"tier": fmt.Sprintf("t%d", rng.Intn(3))}
			if _, err := s.Create(newTestObj(kind, name, lbl)); err != nil && !errors.Is(err, ErrExists) {
				t.Fatalf("create %s/%s: %v", kind, name, err)
			}
		case 1:
			cur, err := s.Get(kind, name)
			if err != nil {
				continue
			}
			cur.GetMeta().Labels = map[string]string{"tier": fmt.Sprintf("t%d", rng.Intn(3))}
			if _, err := s.Update(cur); err != nil && !errors.Is(err, ErrConflict) {
				t.Fatalf("update %s/%s: %v", kind, name, err)
			}
		case 2:
			if err := s.Delete(kind, name); err != nil && !errors.Is(err, ErrNotFound) {
				t.Fatalf("delete %s/%s: %v", kind, name, err)
			}
		}
	}
}

// fingerprint captures everything the monotonicity property compares:
// global revision, per-shard revisions, and every object's key, UID,
// version and labels.
func fingerprint(s *Store) string {
	out := fmt.Sprintf("rev=%d", s.Revision())
	for i := range s.shards {
		s.shards[i].mu.RLock()
		out += fmt.Sprintf(" sh%d=%d", i, s.shards[i].rev)
		s.shards[i].mu.RUnlock()
	}
	for _, kind := range testKinds {
		for _, obj := range s.List(kind + "/") {
			m := obj.GetMeta()
			out += fmt.Sprintf("\n%s/%s uid=%s rv=%d tier=%s", kind, m.Name, m.UID, m.ResourceVersion, m.Labels["tier"])
		}
	}
	return out
}

// TestRestoreComposesWithChurn is the revision-monotonicity property test:
// (churn → checkpoint/crash/restore interleaved) must be indistinguishable
// from uninterrupted live churn — same objects, same UIDs, same
// ResourceVersions, same per-shard and global revisions — and the global
// revision must resume strictly above the checkpoint's max across all
// shards, so post-restore mutations never reuse a revision.
func TestRestoreComposesWithChurn(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		env := sim.NewEnv()
		live := New(env)
		durable := New(env)
		durable.EnableDurability(nil, nil)

		liveRng := simrand.New(seed).Fork("ops")
		durRng := simrand.New(seed).Fork("ops")
		ctlRng := simrand.New(seed).Fork("control")
		for round := 0; round < 6; round++ {
			n := 20 + ctlRng.Intn(30)
			churn(t, live, liveRng, n)
			churn(t, durable, durRng, n)
			if ctlRng.Intn(2) == 0 {
				durable.Checkpoint()
			}
			before := durable.Revision()
			st, err := durable.Crash()
			if err != nil {
				t.Fatalf("seed %d round %d: crash: %v", seed, round, err)
			}
			if st.RestoredRev != before {
				t.Fatalf("seed %d round %d: restored rev %d != pre-crash rev %d (clean log must lose nothing)",
					seed, round, st.RestoredRev, before)
			}
			for i := range durable.shards {
				durable.shards[i].mu.RLock()
				shRev := durable.shards[i].rev
				durable.shards[i].mu.RUnlock()
				if shRev > st.RestoredRev {
					t.Fatalf("seed %d round %d: shard %d rev %d above restored global %d",
						seed, round, i, shRev, st.RestoredRev)
				}
			}
		}
		if got, want := fingerprint(durable), fingerprint(live); got != want {
			t.Fatalf("seed %d: durable store diverged from live churn\n--- durable\n%s\n--- live\n%s", seed, got, want)
		}
	}
}

// TestCheckpointRestoreRoundTrip checks the plain path: state checkpointed,
// more state logged, crash, everything back.
func TestCheckpointRestoreRoundTrip(t *testing.T) {
	env := sim.NewEnv()
	s := New(env)
	s.EnableDurability(nil, nil)
	if _, err := s.Create(newTestObj("Pod", "a", map[string]string{"app": "x"})); err != nil {
		t.Fatal(err)
	}
	s.Checkpoint()
	if _, err := s.Create(newTestObj("Node", "n1", nil)); err != nil {
		t.Fatal(err)
	}
	cur, _ := s.Get("Pod", "a")
	cur.GetMeta().Labels = map[string]string{"app": "y"}
	if _, err := s.Update(cur); err != nil {
		t.Fatal(err)
	}
	preRev := s.Revision()

	st, err := s.Crash()
	if err != nil {
		t.Fatal(err)
	}
	if st.TornTail {
		t.Fatal("clean log reported torn tail")
	}
	if st.Replayed != 2 {
		t.Fatalf("replayed %d records, want 2", st.Replayed)
	}
	if s.Revision() != preRev {
		t.Fatalf("revision %d after restore, want %d", s.Revision(), preRev)
	}
	pod, err := s.Get("Pod", "a")
	if err != nil {
		t.Fatalf("pod lost: %v", err)
	}
	if pod.GetMeta().Labels["app"] != "y" {
		t.Fatalf("pod label %q, want post-checkpoint update %q", pod.GetMeta().Labels["app"], "y")
	}
	if _, err := s.Get("Node", "n1"); err != nil {
		t.Fatalf("wal-only node lost: %v", err)
	}
	// The label index must be restored too, not just the objects.
	sel := labels.SelectorFromMap(map[string]string{"app": "y"})
	if got := len(s.ListSelector("Pod", sel)); got != 1 {
		t.Fatalf("label index returned %d pods for app=y, want 1", got)
	}
	if s.Epoch() != 1 {
		t.Fatalf("epoch %d, want 1", s.Epoch())
	}
}

// TestTornTailTruncateAndRecover damages the log tail both ways — truncated
// mid-frame and CRC-corrupted — and requires restore to cut the damage and
// recover the longest valid prefix without wedging.
func TestTornTailTruncateAndRecover(t *testing.T) {
	for _, tearBytes := range []int{0, 3} { // 0 = flip last byte, 3 = truncate mid-frame
		env := sim.NewEnv()
		s := New(env)
		s.EnableDurability(nil, nil)
		for i := 0; i < 5; i++ {
			if _, err := s.Create(newTestObj("Pod", fmt.Sprintf("p%d", i), nil)); err != nil {
				t.Fatal(err)
			}
		}
		if !s.TearWALTail(tearBytes) {
			t.Fatal("nothing to tear")
		}
		st, err := s.Crash()
		if err != nil {
			t.Fatal(err)
		}
		if !st.TornTail {
			t.Fatalf("tear=%d: restore did not report a torn tail", tearBytes)
		}
		if st.Replayed != 4 {
			t.Fatalf("tear=%d: replayed %d records, want the 4-record valid prefix", tearBytes, st.Replayed)
		}
		if _, err := s.Get("Pod", "p4"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("tear=%d: torn record's object survived: %v", tearBytes, err)
		}
		if _, err := s.Get("Pod", "p3"); err != nil {
			t.Fatalf("tear=%d: valid prefix lost: %v", tearBytes, err)
		}
		// The store must stay fully usable: a re-create of the reverted
		// object gets a fresh revision strictly above the restored one.
		obj, err := s.Create(newTestObj("Pod", "p4", nil))
		if err != nil {
			t.Fatalf("tear=%d: create after torn-tail restore: %v", tearBytes, err)
		}
		if obj.GetMeta().ResourceVersion <= st.RestoredRev {
			t.Fatalf("tear=%d: post-restore rev %d not above restored %d",
				tearBytes, obj.GetMeta().ResourceVersion, st.RestoredRev)
		}
		// A second crash replays the already-truncated log cleanly.
		st2, err := s.Crash()
		if err != nil {
			t.Fatalf("tear=%d: second crash: %v", tearBytes, err)
		}
		if st2.TornTail {
			t.Fatalf("tear=%d: second restore reports torn tail again", tearBytes)
		}
	}
}

// TestWatchFencingAcrossRestore checks both revision fences: a resume from
// before the restore point is Gone (history died with the process), and a
// resume from a revision above the restored one — a consumer that observed
// a torn-tail-reverted mutation — is Gone too.
func TestWatchFencingAcrossRestore(t *testing.T) {
	env := sim.NewEnv()
	s := New(env)
	s.EnableDurability(nil, nil)
	for i := 0; i < 4; i++ {
		if _, err := s.Create(newTestObj("Pod", fmt.Sprintf("p%d", i), nil)); err != nil {
			t.Fatal(err)
		}
	}
	midRev := s.Revision() - 2
	s.TearWALTail(1)
	st, err := s.Crash()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.WatchFilteredFrom("Pod/", WatchOptions{}, midRev); !errors.Is(err, ErrGone) {
		t.Fatalf("resume from pre-restart rev %d: got %v, want ErrGone", midRev, err)
	}
	if _, err := s.WatchFilteredFrom("Pod/", WatchOptions{}, st.RestoredRev+1); !errors.Is(err, ErrGone) {
		t.Fatalf("resume from reverted rev %d: got %v, want ErrGone", st.RestoredRev+1, err)
	}
	if _, err := s.WatchFilteredFrom("Pod/", WatchOptions{}, st.RestoredRev); err != nil {
		t.Fatalf("resume from restored rev: %v", err)
	}
}

// TestCrashClosesWatchQueues: both kind-scoped and generic watchers see
// their queues close at the crash instant.
func TestCrashClosesWatchQueues(t *testing.T) {
	env := sim.NewEnv()
	s := New(env)
	s.EnableDurability(nil, nil)
	kindQ := s.Watch("Pod/", false)
	var genericQ *sim.Queue[Event]
	env.Go("setup", func(p *sim.Proc) {
		genericQ = s.Watch("", false)
	})
	env.Run()
	if _, err := s.Crash(); err != nil {
		t.Fatal(err)
	}
	if !kindQ.Closed() {
		t.Fatal("kind-scoped watch queue survived the crash")
	}
	if !genericQ.Closed() {
		t.Fatal("generic watch queue survived the crash")
	}
}

package metrics

import (
	"fmt"
	"io"
	"math"
	"strings"
	"time"
)

// Chart renders time series as a column-per-bucket ASCII chart, so the
// timeline figures (6 and 9) are readable straight from the terminal
// without a plotting stack.
type Chart struct {
	Title string
	// Height is the number of text rows for the value axis (default 10).
	Height int
	// Width is the number of time buckets (default 60).
	Width int
	// YMax fixes the axis top; 0 auto-scales to the series maximum.
	YMax   float64
	series []*Series
	marks  []rune
}

// chartMarks are assigned to series in order.
var chartMarks = []rune{'*', 'o', '+', 'x', '#', '@'}

// NewChart creates an empty chart.
func NewChart(title string) *Chart {
	return &Chart{Title: title, Height: 10, Width: 60}
}

// Add registers a series with the next free mark rune.
func (c *Chart) Add(s *Series) *Chart {
	c.series = append(c.series, s)
	c.marks = append(c.marks, chartMarks[(len(c.series)-1)%len(chartMarks)])
	return c
}

// Render writes the chart to w. Each column is the bucket-average of the
// series; overlapping series at one cell keep the earlier mark.
func (c *Chart) Render(w io.Writer) {
	if len(c.series) == 0 {
		fmt.Fprintf(w, "== %s == (no series)\n", c.Title)
		return
	}
	var tMax time.Duration
	yMax := c.YMax
	for _, s := range c.series {
		if n := s.Len(); n > 0 {
			if last := s.Points[n-1].T; last > tMax {
				tMax = last
			}
		}
		if c.YMax == 0 {
			if m := s.Max(); m > yMax {
				yMax = m
			}
		}
	}
	if tMax == 0 || yMax == 0 {
		fmt.Fprintf(w, "== %s == (empty)\n", c.Title)
		return
	}
	bucket := tMax / time.Duration(c.Width)
	if bucket <= 0 {
		bucket = 1
	}
	// grid[row][col] with row 0 at the top.
	grid := make([][]rune, c.Height)
	for i := range grid {
		grid[i] = []rune(strings.Repeat(" ", c.Width))
	}
	for si, s := range c.series {
		ds := s.Downsample(bucket)
		for _, p := range ds.Points {
			col := int(p.T / bucket)
			if col >= c.Width {
				col = c.Width - 1
			}
			frac := p.V / yMax
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			row := c.Height - 1 - int(math.Round(frac*float64(c.Height-1)))
			if grid[row][col] == ' ' {
				grid[row][col] = c.marks[si]
			}
		}
	}
	if c.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", c.Title)
	}
	for i, row := range grid {
		label := ""
		switch i {
		case 0:
			label = trimFloat(yMax)
		case c.Height - 1:
			label = "0"
		}
		fmt.Fprintf(w, "%8s |%s\n", label, string(row))
	}
	fmt.Fprintf(w, "%8s +%s\n", "", strings.Repeat("-", c.Width))
	fmt.Fprintf(w, "%8s 0%s%v\n", "", strings.Repeat(" ", c.Width-len(fmt.Sprint(tMax.Round(time.Second)))), tMax.Round(time.Second))
	var legend []string
	for i, s := range c.series {
		legend = append(legend, fmt.Sprintf("%c %s", c.marks[i], s.Name))
	}
	fmt.Fprintf(w, "%8s %s\n", "", strings.Join(legend, "   "))
}

// String renders the chart to a string.
func (c *Chart) String() string {
	var b strings.Builder
	c.Render(&b)
	return b.String()
}

package metrics

import (
	"strings"
	"testing"
	"time"
)

func rampSeries(name string, n int, scale float64) *Series {
	s := &Series{Name: name}
	for i := 0; i < n; i++ {
		s.Add(time.Duration(i)*time.Second, float64(i)*scale)
	}
	return s
}

func TestChartRendersAllSeries(t *testing.T) {
	c := NewChart("demo").Add(rampSeries("up", 60, 1)).Add(rampSeries("flat", 60, 0))
	out := c.String()
	if !strings.Contains(out, "== demo ==") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "* up") || !strings.Contains(out, "o flat") {
		t.Fatalf("legend missing: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + height rows + axis + time row + legend
	if len(lines) != 1+10+1+1+1 {
		t.Fatalf("lines = %d", len(lines))
	}
	// The ramp must reach the top row; the flat series sits on the bottom.
	if !strings.Contains(lines[1], "*") {
		t.Fatalf("ramp never reaches the top: %q", lines[1])
	}
	if !strings.Contains(lines[10], "o") {
		t.Fatalf("flat series not on the bottom row: %q", lines[10])
	}
}

func TestChartAutoScaleLabels(t *testing.T) {
	c := NewChart("scale").Add(rampSeries("s", 10, 2.5)) // max 22.5
	out := c.String()
	if !strings.Contains(out, "22.5") {
		t.Fatalf("y-axis max label missing: %q", out)
	}
}

func TestChartFixedYMax(t *testing.T) {
	c := NewChart("fixed")
	c.YMax = 1.0
	s := &Series{Name: "u"}
	s.Add(0, 0.5)
	s.Add(time.Minute, 0.5)
	c.Add(s)
	out := c.String()
	lines := strings.Split(out, "\n")
	// Value 0.5 of max 1.0 → middle row, not the top.
	if strings.Contains(lines[1], "*") {
		t.Fatal("0.5 rendered at the 1.0 row")
	}
}

func TestChartEmpty(t *testing.T) {
	if out := NewChart("e").String(); !strings.Contains(out, "no series") {
		t.Fatalf("out = %q", out)
	}
	empty := &Series{Name: "none"}
	if out := NewChart("e").Add(empty).String(); !strings.Contains(out, "empty") {
		t.Fatalf("out = %q", out)
	}
}

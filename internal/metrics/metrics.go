// Package metrics provides the measurement layer shared by the simulated
// cluster and the experiment harness: time series, sliding-window
// accumulators, counters, summary statistics and table/CSV rendering for the
// figures reproduced from the paper.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Point is one sample of a time series, at virtual time T.
type Point struct {
	T time.Duration
	V float64
}

// Series is an append-only time series. Samples must be appended in
// nondecreasing time order (the recorder enforces this).
type Series struct {
	Name   string
	Points []Point
}

// Add appends a sample. It panics when t is before the last sample, which
// would indicate a harness bug (the DES clock never runs backwards).
func (s *Series) Add(t time.Duration, v float64) {
	if n := len(s.Points); n > 0 && t < s.Points[n-1].T {
		panic(fmt.Sprintf("metrics: out-of-order sample on %q: %v < %v", s.Name, t, s.Points[n-1].T))
	}
	s.Points = append(s.Points, Point{t, v})
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Points) }

// Last returns the most recent sample value, or 0 for an empty series.
func (s *Series) Last() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	return s.Points[len(s.Points)-1].V
}

// Mean returns the unweighted mean of the sample values.
func (s *Series) Mean() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range s.Points {
		sum += p.V
	}
	return sum / float64(len(s.Points))
}

// Max returns the maximum sample value, or 0 for an empty series.
func (s *Series) Max() float64 {
	m := math.Inf(-1)
	for _, p := range s.Points {
		if p.V > m {
			m = p.V
		}
	}
	if math.IsInf(m, -1) {
		return 0
	}
	return m
}

// TimeWeightedMean treats the series as a step function (each sample holds
// until the next) and returns its average over [from, to].
func (s *Series) TimeWeightedMean(from, to time.Duration) float64 {
	if to <= from || len(s.Points) == 0 {
		return 0
	}
	var acc float64
	cur := 0.0
	last := from
	for _, p := range s.Points {
		if p.T <= from {
			cur = p.V
			continue
		}
		if p.T >= to {
			break
		}
		acc += cur * float64(p.T-last)
		cur = p.V
		last = p.T
	}
	acc += cur * float64(to-last)
	return acc / float64(to-from)
}

// Downsample returns a copy of the series averaged into buckets of width w
// (sample-count average per bucket), for compact printing of long timelines.
func (s *Series) Downsample(w time.Duration) *Series {
	out := &Series{Name: s.Name}
	if w <= 0 || len(s.Points) == 0 {
		out.Points = append(out.Points, s.Points...)
		return out
	}
	var bucket time.Duration
	sum, n := 0.0, 0
	flush := func() {
		if n > 0 {
			out.Points = append(out.Points, Point{bucket, sum / float64(n)})
		}
		sum, n = 0, 0
	}
	for _, p := range s.Points {
		b := p.T / w * w
		if n > 0 && b != bucket {
			flush()
		}
		bucket = b
		sum += p.V
		n++
	}
	flush()
	return out
}

// Recorder is a set of named series.
type Recorder struct {
	series map[string]*Series
	order  []string
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{series: make(map[string]*Series)}
}

// Series returns the named series, creating it on first use.
func (r *Recorder) Series(name string) *Series {
	s, ok := r.series[name]
	if !ok {
		s = &Series{Name: name}
		r.series[name] = s
		r.order = append(r.order, name)
	}
	return s
}

// Observe appends a sample to the named series.
func (r *Recorder) Observe(name string, t time.Duration, v float64) {
	r.Series(name).Add(t, v)
}

// Names returns the series names in creation order.
func (r *Recorder) Names() []string {
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}

// Counter is a monotonically increasing event count.
type Counter struct{ n int64 }

// Inc adds one.
func (c *Counter) Inc() { c.n++ }

// Add adds d; negative deltas panic.
func (c *Counter) Add(d int64) {
	if d < 0 {
		panic("metrics: negative Counter.Add")
	}
	c.n += d
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n }

// Summary computes order statistics over a value set.
type Summary struct{ vals []float64 }

// Observe adds a value.
func (s *Summary) Observe(v float64) { s.vals = append(s.vals, v) }

// N returns the number of observations.
func (s *Summary) N() int { return len(s.vals) }

// Mean returns the arithmetic mean (0 when empty).
func (s *Summary) Mean() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.vals {
		sum += v
	}
	return sum / float64(len(s.vals))
}

// Stddev returns the population standard deviation.
func (s *Summary) Stddev() float64 {
	if len(s.vals) < 2 {
		return 0
	}
	m := s.Mean()
	acc := 0.0
	for _, v := range s.vals {
		acc += (v - m) * (v - m)
	}
	return math.Sqrt(acc / float64(len(s.vals)))
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) using
// nearest-rank interpolation; 0 when empty.
func (s *Summary) Percentile(p float64) float64 {
	if len(s.vals) == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.vals...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Min returns the minimum observation (0 when empty).
func (s *Summary) Min() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	m := s.vals[0]
	for _, v := range s.vals {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the maximum observation (0 when empty).
func (s *Summary) Max() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	m := s.vals[0]
	for _, v := range s.vals {
		if v > m {
			m = v
		}
	}
	return m
}

// Package metrics provides the measurement layer shared by the simulated
// cluster and the experiment harness: time series, sliding-window
// accumulators, counters, summary statistics and table/CSV rendering for the
// figures reproduced from the paper.
package metrics

import (
	"math"
	"sort"
	"time"

	"kubeshare/internal/obs/tsdb"
)

// Point is one sample of a time series, at virtual time T. It is the tsdb
// point type: the repository keeps exactly one time-series representation
// (see internal/obs/tsdb).
type Point = tsdb.Point

// Series is an append-only time series — an alias of the tsdb series, so
// the experiment harness, charts and the telemetry database all share one
// type. The zero value is unbounded; tsdb.NewSeries builds bounded ones.
type Series = tsdb.Series

// Recorder is a set of named series.
type Recorder struct {
	series map[string]*Series
	order  []string
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{series: make(map[string]*Series)}
}

// Series returns the named series, creating it on first use.
func (r *Recorder) Series(name string) *Series {
	s, ok := r.series[name]
	if !ok {
		s = &Series{Name: name}
		r.series[name] = s
		r.order = append(r.order, name)
	}
	return s
}

// Observe appends a sample to the named series.
func (r *Recorder) Observe(name string, t time.Duration, v float64) {
	r.Series(name).Add(t, v)
}

// Names returns the series names in creation order.
func (r *Recorder) Names() []string {
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}

// Counter is a monotonically increasing event count.
type Counter struct{ n int64 }

// Inc adds one.
func (c *Counter) Inc() { c.n++ }

// Add adds d; negative deltas panic.
func (c *Counter) Add(d int64) {
	if d < 0 {
		panic("metrics: negative Counter.Add")
	}
	c.n += d
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n }

// Summary computes order statistics over a value set.
type Summary struct{ vals []float64 }

// Observe adds a value.
func (s *Summary) Observe(v float64) { s.vals = append(s.vals, v) }

// N returns the number of observations.
func (s *Summary) N() int { return len(s.vals) }

// Mean returns the arithmetic mean (0 when empty).
func (s *Summary) Mean() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.vals {
		sum += v
	}
	return sum / float64(len(s.vals))
}

// Stddev returns the population standard deviation.
func (s *Summary) Stddev() float64 {
	if len(s.vals) < 2 {
		return 0
	}
	m := s.Mean()
	acc := 0.0
	for _, v := range s.vals {
		acc += (v - m) * (v - m)
	}
	return math.Sqrt(acc / float64(len(s.vals)))
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) using
// nearest-rank interpolation; 0 when empty.
func (s *Summary) Percentile(p float64) float64 {
	if len(s.vals) == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.vals...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Min returns the minimum observation (0 when empty).
func (s *Summary) Min() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	m := s.vals[0]
	for _, v := range s.vals {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the maximum observation (0 when empty).
func (s *Summary) Max() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	m := s.vals[0]
	for _, v := range s.vals {
		if v > m {
			m = v
		}
	}
	return m
}

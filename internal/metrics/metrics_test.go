package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestSeriesAddAndStats(t *testing.T) {
	var s Series
	s.Add(0, 1)
	s.Add(time.Second, 3)
	s.Add(2*time.Second, 5)
	if s.Len() != 3 || s.Last() != 5 || s.Mean() != 3 || s.Max() != 5 {
		t.Fatalf("len=%d last=%v mean=%v max=%v", s.Len(), s.Last(), s.Mean(), s.Max())
	}
}

func TestSeriesOutOfOrderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var s Series
	s.Add(time.Second, 1)
	s.Add(0, 2)
}

func TestEmptySeriesStats(t *testing.T) {
	var s Series
	if s.Last() != 0 || s.Mean() != 0 || s.Max() != 0 {
		t.Fatal("empty series stats must be zero")
	}
}

func TestTimeWeightedMeanStepFunction(t *testing.T) {
	var s Series
	s.Add(0, 0)
	s.Add(time.Second, 1) // value 1 for [1s,3s): 2 of 3 seconds
	got := s.TimeWeightedMean(0, 3*time.Second)
	if math.Abs(got-2.0/3.0) > 1e-9 {
		t.Fatalf("got %v", got)
	}
}

func TestTimeWeightedMeanValueBeforeWindow(t *testing.T) {
	var s Series
	s.Add(0, 4) // holds through the whole queried window
	got := s.TimeWeightedMean(10*time.Second, 20*time.Second)
	if got != 4 {
		t.Fatalf("got %v, want 4", got)
	}
}

func TestDownsample(t *testing.T) {
	var s Series
	for i := 0; i < 10; i++ {
		s.Add(time.Duration(i)*time.Second, float64(i))
	}
	d := s.Downsample(5 * time.Second)
	if d.Len() != 2 {
		t.Fatalf("len = %d", d.Len())
	}
	if d.Points[0].V != 2 || d.Points[1].V != 7 {
		t.Fatalf("points = %v", d.Points)
	}
}

func TestRecorderSeriesIdentityAndOrder(t *testing.T) {
	r := NewRecorder()
	r.Observe("b", 0, 1)
	r.Observe("a", 0, 2)
	r.Observe("b", time.Second, 3)
	if r.Series("b").Len() != 2 {
		t.Fatal("series identity broken")
	}
	names := r.Names()
	if names[0] != "b" || names[1] != "a" {
		t.Fatalf("names = %v", names)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("value = %d", c.Value())
	}
}

func TestCounterNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var c Counter
	c.Add(-1)
}

func TestSummaryStats(t *testing.T) {
	var s Summary
	for _, v := range []float64{1, 2, 3, 4, 5} {
		s.Observe(v)
	}
	if s.N() != 5 || s.Mean() != 3 || s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("n=%d mean=%v min=%v max=%v", s.N(), s.Mean(), s.Min(), s.Max())
	}
	if math.Abs(s.Stddev()-math.Sqrt(2)) > 1e-9 {
		t.Fatalf("stddev = %v", s.Stddev())
	}
	if s.Percentile(50) != 3 {
		t.Fatalf("p50 = %v", s.Percentile(50))
	}
	if s.Percentile(0) != 1 || s.Percentile(100) != 5 {
		t.Fatal("p0/p100 wrong")
	}
}

func TestSummaryPercentileInterpolates(t *testing.T) {
	var s Summary
	s.Observe(0)
	s.Observe(10)
	if got := s.Percentile(50); got != 5 {
		t.Fatalf("p50 = %v, want 5", got)
	}
}

func TestUsageWindowBasic(t *testing.T) {
	u := NewUsageWindow(10 * time.Second)
	u.AddSpan(0, 2*time.Second)
	u.AddSpan(4*time.Second, 6*time.Second)
	if got := u.Rate(10 * time.Second); math.Abs(got-0.4) > 1e-9 {
		t.Fatalf("rate = %v, want 0.4", got)
	}
}

func TestUsageWindowEviction(t *testing.T) {
	u := NewUsageWindow(10 * time.Second)
	u.AddSpan(0, 10*time.Second)
	// At t=25s the span is entirely outside [15s,25s].
	if got := u.Rate(25 * time.Second); got != 0 {
		t.Fatalf("rate = %v, want 0", got)
	}
	if u.n != 0 {
		t.Fatal("evicted spans not freed")
	}
}

func TestUsageWindowStraddlingSpan(t *testing.T) {
	u := NewUsageWindow(10 * time.Second)
	u.AddSpan(0, 8*time.Second)
	// Window [5s,15s] overlaps [0,8s] by 3s.
	if got := u.Rate(15 * time.Second); math.Abs(got-0.3) > 1e-9 {
		t.Fatalf("rate = %v, want 0.3", got)
	}
}

func TestUsageWindowFutureClamp(t *testing.T) {
	u := NewUsageWindow(10 * time.Second)
	u.AddSpan(0, 20*time.Second) // span extends past "now"
	if got := u.Rate(10 * time.Second); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("rate = %v, want 1.0", got)
	}
}

func TestUsageWindowZeroLengthSpanIgnored(t *testing.T) {
	u := NewUsageWindow(time.Second)
	u.AddSpan(time.Second, time.Second)
	if u.Rate(2*time.Second) != 0 {
		t.Fatal("zero-length span counted")
	}
}

// Property: rate is always within [0,1] for disjoint in-order spans.
func TestPropertyUsageWindowRateBounded(t *testing.T) {
	f := func(gaps []uint8) bool {
		u := NewUsageWindow(5 * time.Second)
		var cursor time.Duration
		for _, g := range gaps {
			busy := time.Duration(g%50) * 100 * time.Millisecond
			idle := time.Duration(g/50) * 100 * time.Millisecond
			u.AddSpan(cursor, cursor+busy)
			cursor += busy + idle
			r := u.Rate(cursor)
			if r < 0 || r > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTableRenderAligned(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("short", 1.5)
	tb.AddRow("a-longer-name", 22.25)
	out := tb.String()
	if !strings.Contains(out, "== demo ==") {
		t.Fatal("missing title")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	if !strings.HasPrefix(lines[4], "a-longer-name  22.25") {
		t.Fatalf("row misaligned: %q", lines[4])
	}
}

func TestTableFloatTrim(t *testing.T) {
	tb := NewTable("", "v")
	tb.AddRow(2.0)
	tb.AddRow(2.5)
	tb.AddRow(0.125)
	if tb.Rows[0][0] != "2" || tb.Rows[1][0] != "2.5" || tb.Rows[2][0] != "0.125" {
		t.Fatalf("rows = %v", tb.Rows)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow(1, "x,y")
	var b strings.Builder
	if err := tb.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,\"x,y\"\n"
	if b.String() != want {
		t.Fatalf("csv = %q, want %q", b.String(), want)
	}
}

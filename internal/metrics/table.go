package metrics

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned result table used by the experiment
// harness to print the rows/series each paper figure reports.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row formatted with fmt.Sprint on each cell.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// trimFloat renders floats compactly (3 significant decimals, no trailing
// zeros).
func trimFloat(v float64) string {
	s := fmt.Sprintf("%.3f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// Render writes the table, column aligned, to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// WriteCSV writes the table (headers plus rows, no title) as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

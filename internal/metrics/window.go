package metrics

import "time"

// UsageWindow tracks how much "busy time" an entity accumulated within a
// trailing window of virtual time — the accounting structure behind the
// paper's sliding-window GPU usage rate (§4.5). Intervals are recorded as
// [start, end) busy spans; Rate(now) returns busy/window over
// [now-window, now].
//
// Spans live in a ring buffer and the sum of their lengths is maintained
// incrementally, so Busy/Rate cost O(1) amortized for the disjoint spans
// real callers record (each query pays only eviction, already charged to the
// span that is dropped, plus a pro-rata correction for the prefix of spans
// straddling the window start — at most one when spans are disjoint).
type UsageWindow struct {
	window time.Duration
	spans  []span // ring buffer, capacity a power of two
	head   int
	n      int
	busy   time.Duration // sum of full lengths of retained spans
	maxEnd time.Duration // latest end ever recorded; guards the fast path
}

type span struct{ start, end time.Duration }

// NewUsageWindow returns a tracker over the given trailing window width.
func NewUsageWindow(window time.Duration) *UsageWindow {
	if window <= 0 {
		panic("metrics: non-positive usage window")
	}
	return &UsageWindow{window: window}
}

// Window returns the configured window width.
func (u *UsageWindow) Window() time.Duration { return u.window }

func (u *UsageWindow) at(i int) *span { return &u.spans[(u.head+i)&(len(u.spans)-1)] }

// AddSpan records a busy interval [start, end). Spans must be appended in
// nondecreasing start order; overlapping or zero-length spans are tolerated
// (overlaps are counted twice — callers record disjoint token-hold spans).
func (u *UsageWindow) AddSpan(start, end time.Duration) {
	if end <= start {
		return
	}
	if u.n == len(u.spans) {
		size := len(u.spans) * 2
		if size == 0 {
			size = 16
		}
		grown := make([]span, size)
		for i := 0; i < u.n; i++ {
			grown[i] = *u.at(i)
		}
		u.spans = grown
		u.head = 0
	}
	u.spans[(u.head+u.n)&(len(u.spans)-1)] = span{start, end}
	u.n++
	u.busy += end - start
	if end > u.maxEnd {
		u.maxEnd = end
	}
}

// evict drops spans that ended before the window start, deducting their full
// length from the running busy sum.
func (u *UsageWindow) evict(now time.Duration) {
	cut := now - u.window
	for u.n > 0 {
		sp := u.at(0)
		if sp.end > cut {
			return
		}
		u.busy -= sp.end - sp.start
		*sp = span{}
		u.head = (u.head + 1) & (len(u.spans) - 1)
		u.n--
	}
}

// Busy returns the busy time accumulated within [now-window, now]. Spans
// straddling the window start are counted pro rata.
func (u *UsageWindow) Busy(now time.Duration) time.Duration {
	u.evict(now)
	if u.maxEnd > now {
		// A span reaches past the query point (only possible when querying
		// the past): take the exact-clipping slow path.
		return u.rescan(now)
	}
	cut := now - u.window
	busy := u.busy
	// Starts are nondecreasing, so spans straddling the window start form a
	// prefix; deduct the part of each that slid out of the window. The
	// deduction is clamped to the span length: a short span nested behind a
	// longer one can lie entirely before the cut yet stay retained, because
	// eviction stops at the first span whose end is inside the window.
	for i := 0; i < u.n; i++ {
		sp := u.at(i)
		if sp.start >= cut {
			break
		}
		out := cut - sp.start
		if rest := sp.end - sp.start; out > rest {
			out = rest
		}
		busy -= out
	}
	return busy
}

// rescan is the reference computation: clip every retained span to
// [now-window, now] and sum.
func (u *UsageWindow) rescan(now time.Duration) time.Duration {
	cut := now - u.window
	var busy time.Duration
	for i := 0; i < u.n; i++ {
		sp := u.at(i)
		s, e := sp.start, sp.end
		if s < cut {
			s = cut
		}
		if e > now {
			e = now
		}
		if e > s {
			busy += e - s
		}
	}
	return busy
}

// Rate returns the busy fraction of the window at time now, in [0, 1] for
// disjoint spans.
func (u *UsageWindow) Rate(now time.Duration) float64 {
	return float64(u.Busy(now)) / float64(u.window)
}
